package fzmod_test

import (
	"bytes"
	"encoding/binary"
	"math"
	"testing"

	"fzmod"
	"fzmod/internal/sdrbench"
)

func facadeField() ([]float32, fzmod.Dims) {
	dims := fzmod.Dims3(32, 32, 8)
	return sdrbench.GenHURR(dims, 7), dims
}

func TestFacadeRoundtrip(t *testing.T) {
	p := fzmod.NewPlatform()
	data, dims := facadeField()
	for _, pl := range fzmod.Presets() {
		blob, err := pl.Compress(p, data, dims, fzmod.Rel(1e-3))
		if err != nil {
			t.Fatalf("%s: %v", pl.Name(), err)
		}
		back, gotDims, err := fzmod.Decompress(p, blob)
		if err != nil {
			t.Fatalf("%s: %v", pl.Name(), err)
		}
		if gotDims != dims {
			t.Fatalf("%s: dims %v", pl.Name(), gotDims)
		}
		q, err := fzmod.Evaluate(p, data, back)
		if err != nil {
			t.Fatal(err)
		}
		if q.PSNR < 40 {
			t.Errorf("%s: PSNR %.1f suspiciously low at 1e-3", pl.Name(), q.PSNR)
		}
	}
}

func TestFacadeBoundHelpers(t *testing.T) {
	if fzmod.Rel(1e-3).Value != 1e-3 || fzmod.Abs(0.5).Value != 0.5 {
		t.Error("bound constructors")
	}
	if fzmod.Rel(1e-3).Mode == fzmod.Abs(1e-3).Mode {
		t.Error("Rel and Abs must differ in mode")
	}
}

func TestFacadeDimsHelpers(t *testing.T) {
	if fzmod.Dims1(9).N() != 9 || fzmod.Dims2(3, 4).N() != 12 || fzmod.Dims3(2, 2, 2).N() != 8 {
		t.Error("dims helpers")
	}
}

func TestFacadeSecondary(t *testing.T) {
	p := fzmod.NewPlatform()
	data, dims := facadeField()
	pl := fzmod.WithZstdSlot(fzmod.Speed())
	blob, err := pl.Compress(p, data, dims, fzmod.Rel(1e-3))
	if err != nil {
		t.Fatal(err)
	}
	back, _, err := fzmod.Decompress(p, blob)
	if err != nil {
		t.Fatal(err)
	}
	var maxAbs float64
	for _, v := range data {
		if a := math.Abs(float64(v)); a > maxAbs {
			maxAbs = a
		}
	}
	// Rel 1e-3 of the HURR range; generous check that the data came back.
	if i := fzmod.VerifyBound(data, back, 1e-3*2*maxAbs); i != -1 {
		t.Errorf("bound violated at %d", i)
	}
}

func TestFacadeMetrics(t *testing.T) {
	if fzmod.CompressionRatio(100, 10) != 10 {
		t.Error("CompressionRatio")
	}
	if s := fzmod.OverallSpeedup(200, 100, 2); math.Abs(s-1) > 1e-9 {
		t.Errorf("OverallSpeedup = %v", s)
	}
}

func TestFacadePlatforms(t *testing.T) {
	if fzmod.NewPlatform().LinkBandwidth <= fzmod.NewV100Platform().LinkBandwidth {
		t.Error("H100 default platform should have higher link bandwidth")
	}
}

func TestFacadeQualityPipelineName(t *testing.T) {
	if fzmod.QualityPipeline().Name() != "fzmod-quality" {
		t.Error("quality preset name")
	}
	if fzmod.Default().Name() != "fzmod-default" || fzmod.Speed().Name() != "fzmod-speed" {
		t.Error("preset names")
	}
}

func TestFacadeStreamRoundtrip(t *testing.T) {
	p := fzmod.NewPlatform()
	data, dims := facadeField()
	mn, mx := data[0], data[0]
	for _, v := range data {
		mn, mx = min(mn, v), max(mx, v)
	}
	absEB := 1e-3 * float64(mx-mn)

	raw := make([]byte, 4*len(data))
	for i, v := range data {
		binary.LittleEndian.PutUint32(raw[4*i:], math.Float32bits(v))
	}
	var stream bytes.Buffer
	written, err := fzmod.CompressStream(p, fzmod.Default(), bytes.NewReader(raw), dims,
		fzmod.Abs(absEB), &stream, fzmod.StreamOpts{ChunkElems: dims.N() / 4, Window: 2})
	if err != nil {
		t.Fatal(err)
	}
	if written != int64(stream.Len()) || written == 0 {
		t.Fatalf("written %d, buffer %d", written, stream.Len())
	}
	var out bytes.Buffer
	gotDims, err := fzmod.DecompressStream(p, &stream, &out, fzmod.StreamOpts{Window: 2})
	if err != nil {
		t.Fatal(err)
	}
	if gotDims != dims {
		t.Fatalf("dims %v, want %v", gotDims, dims)
	}
	for i := 0; i < dims.N(); i++ {
		got := math.Float32frombits(binary.LittleEndian.Uint32(out.Bytes()[4*i:]))
		if d := math.Abs(float64(got) - float64(data[i])); d > absEB {
			t.Fatalf("bound %g violated at %d: diff %g", absEB, i, d)
		}
	}
}
