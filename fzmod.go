// Package fzmod is the public API of the FZModules reproduction: a
// heterogeneous framework for assembling error-bounded lossy compression
// pipelines for scientific floating-point data, after Ruiter, Tian & Song,
// "FZModules: A Heterogeneous Computing Framework for Customizable
// Scientific Data Compression Pipelines" (SC Workshops '25).
//
// # Quick start
//
//	platform := fzmod.NewPlatform()
//	pipeline := fzmod.Default()
//	blob, err := pipeline.Compress(platform, data, fzmod.Dims3(512, 512, 512), fzmod.Rel(1e-4))
//	...
//	back, dims, err := fzmod.Decompress(platform, blob)
//
// Every call lowers to one sequential-task-flow (STF) graph executed by a
// single scheduler (§3.3.1): compression declares per-chunk
// predict → encode → serialize (→ secondary) sub-graphs joined by an
// assembly task, decompression the mirrored fetch → decode → reconstruct
// chains, and the scheduler runs the graph over bounded per-place stream
// pools with pooled scratch buffers. Inputs of at least AutoChunkElems
// elements (64 MiB of float32) are partitioned into independent slabs
// along the slowest dimension automatically; smaller fields lower to a
// one-chunk graph producing a monolithic container. Decompress accepts
// both container flavors. To control chunking explicitly — chunk size in
// elements, scheduler width, or chunking below the automatic threshold —
// call CompressChunked:
//
//	blob, err := pipeline.CompressChunked(platform, data, dims, fzmod.Rel(1e-4),
//	    fzmod.ChunkOpts{ChunkElems: 1 << 21, Workers: 8})
//
// Fields larger than memory (or arriving over a socket or pipe) stream
// through the same engine: CompressStream consumes an io.Reader slab
// window by slab window into an append-mode streaming container, and
// DecompressStream mirrors it, with resident memory bounded by
// StreamOpts.Window rather than the field size:
//
//	_, err := pipeline.CompressStream(platform, file, dims, fzmod.Abs(absEB), out,
//	    fzmod.StreamOpts{Window: 4})
//
// The relative bound is resolved against the whole field's value range
// before chunking, so chunked and monolithic compression enforce the
// identical error tolerance. The Report variants
// (CompressChunkedReport, DecompressReport) additionally return an
// ExecReport with the executed task trace, the dependency DAG in Graphviz
// dot syntax, and buffer-pool reuse statistics.
//
// # Random-access region reads
//
// Containers need not be decoded whole: DecompressRegion serves an
// arbitrary subvolume by fetching and decoding only the slab chunks the
// selection intersects, against any storage backend implementing
// ChunkFetcher — an in-memory blob (NewBytesFetcher), a local file
// (NewFileFetcher), or an HTTP object behind Range requests
// (NewHTTPFetcher):
//
//	fetcher := fzmod.NewHTTPFetcher("https://data.example/field.fzmc", nil)
//	region, err := fzmod.DecompressRegion(platform, fetcher,
//	    fzmod.RegionSel{X0: 0, X1: 64, Y0: 0, Y1: 64, Z0: 128, Z1: 160},
//	    fzmod.RegionOpts{})
//
// For repeated selections from one artifact, OpenRegion parses the chunk
// index once and an optional SlabCache (RegionOpts.Cache) keeps decoded
// slabs resident across reads — and across Regions, since entries are
// keyed by container content — so overlapping requests pay each chunk's
// fetch-and-decode cost once. The byte-level container layout the region
// planner indexes against is specified normatively in docs/FORMAT.md.
//
// Three preset pipelines reproduce the paper's §3.3 designs: Default
// (Lorenzo + histogram + CPU Huffman), Speed (Lorenzo + FZ-GPU
// bitshuffle/dictionary), and Quality (G-Interp spline interpolation +
// top-k histogram + Huffman). Custom pipelines are assembled from the
// module registry; see the examples directory.
package fzmod

import (
	"context"
	"io"
	"net/http"

	"fzmod/internal/core"
	"fzmod/internal/device"
	"fzmod/internal/fzio"
	"fzmod/internal/grid"
	"fzmod/internal/metrics"
	"fzmod/internal/preprocess"
)

// Re-exported core types. The facade keeps downstream imports to one
// package for the common path while power users can reach the internal
// modules through the same structures.
type (
	// Pipeline is a composed compressor (see core.Pipeline).
	Pipeline = core.Pipeline
	// Compressor is the uniform compress/decompress contract.
	Compressor = core.Compressor
	// Platform is the simulated heterogeneous execution platform.
	Platform = device.Platform
	// Dims describes field geometry (x fastest).
	Dims = grid.Dims
	// ErrorBound is a tolerance plus interpretation mode.
	ErrorBound = preprocess.ErrorBound
	// Quality bundles reconstruction-quality statistics.
	Quality = metrics.Quality
	// Opts is the unified options surface shared by every entry point:
	// Workers (total parallelism budget), ChunkElems (write-path chunk
	// granularity), Window (streaming slabs in flight) and Cache (decoded
	// slabs shared across region reads). ChunkOpts, StreamOpts,
	// DecompressOpts and RegionOpts are aliases of it, so one struct can
	// configure a whole request pipeline — the fzmodd daemon maps its
	// request parameters 1:1 onto this type. The zero value always selects
	// an operation's documented defaults.
	Opts = core.Opts
	// ChunkOpts configures the chunked task graph (see
	// Pipeline.CompressChunked); an alias of the unified Opts — the zero
	// value selects sane defaults.
	ChunkOpts = core.ChunkOpts
	// StreamOpts configures the streaming (out-of-core) entry points:
	// chunk granularity, slabs in flight, scheduler width. The zero value
	// selects sane defaults.
	StreamOpts = core.StreamOpts
	// ExecReport is the execution evidence of one task-graph run: trace,
	// DAG, critical path, buffer-pool reuse statistics and — for region
	// reads — the chunk and slab-cache accounting in its Region field.
	ExecReport = core.ExecReport
	// RegionSel selects the half-open subvolume [X0,X1)×[Y0,Y1)×[Z0,Z1) of
	// a field in its native x-fastest coordinates (see DecompressRegion).
	RegionSel = core.RegionSel
	// RegionOpts configures region reads: the Workers parallelism budget
	// and an optional shared SlabCache. The zero value decodes with the
	// platform's full width and no cache.
	RegionOpts = core.RegionOpts
	// RegionStats summarizes one region read: chunks intersected, chunks
	// decoded vs. served from cache, and payload bytes fetched.
	RegionStats = core.RegionStats
	// Region is an open container positioned for random-access reads: the
	// chunk index is parsed once and selections are served with per-chunk
	// fetch → decode → reconstruct sub-graphs. Safe for concurrent Reads.
	Region = core.Region
	// SlabCache is the size-bounded LRU of decoded slabs shared between
	// region reads; create with NewSlabCache.
	SlabCache = core.SlabCache
	// ChunkFetcher serves byte ranges of one container artifact — the
	// pluggable storage abstraction region reads are built on.
	// Implementations must be safe for concurrent ReadRange calls.
	ChunkFetcher = fzio.ChunkFetcher
	// Snapshot is a read-only, point-in-time copy of a platform's
	// counters — transfer and launch traffic, scratch-pool gets/hits/puts,
	// region slab-cache hits, and the active SIMD kernel tier. Obtain one
	// with Stats; it is plain data, safe to export.
	Snapshot = device.Snapshot
	// PoolStats is the scratch-pool traffic snapshot carried in
	// Snapshot.Pool (gets, hits, puts; HitRate derives reuse).
	PoolStats = device.PoolStats
)

// Chunking policy of the default executor, re-exported from core.
const (
	// DefaultChunkElems is the default chunk granularity in elements.
	DefaultChunkElems = core.DefaultChunkElems
	// AutoChunkElems is the input size in elements at which Compress
	// switches to the chunked executor automatically.
	AutoChunkElems = core.AutoChunkElems
)

// NewPlatform returns the default platform, modeled on the paper's H100
// node (Table 1).
func NewPlatform() *Platform { return device.NewH100Platform() }

// NewV100Platform returns the paper's V100 node model (lower host link
// bandwidth; used for the Figure 3 speedup variant).
func NewV100Platform() *Platform { return device.NewV100Platform() }

// Default returns the FZMod-Default preset pipeline.
func Default() *Pipeline { return core.NewDefault() }

// Speed returns the FZMod-Speed preset pipeline.
func Speed() *Pipeline { return core.NewSpeed() }

// Quality returns the FZMod-Quality preset pipeline.
func QualityPipeline() *Pipeline { return core.NewQuality() }

// Presets returns the three evaluated pipelines in paper order.
func Presets() []*Pipeline { return core.Presets() }

// WithZstdSlot attaches the secondary lossless encoder (the paper's zstd
// slot, backed by the built-in LZ codec) to a pipeline.
func WithZstdSlot(pl *Pipeline) *Pipeline { return pl.WithSecondary(core.LZSecondary{}) }

// Dims1 describes a 1-D field.
func Dims1(n int) Dims { return grid.D1(n) }

// Dims2 describes a 2-D field (x fastest).
func Dims2(x, y int) Dims { return grid.D2(x, y) }

// Dims3 describes a 3-D field (x fastest).
func Dims3(x, y, z int) Dims { return grid.D3(x, y, z) }

// Rel builds a value-range-relative error bound (the paper's evaluation
// setting).
func Rel(v float64) ErrorBound { return preprocess.RelBound(v) }

// Abs builds an absolute error bound.
func Abs(v float64) ErrorBound { return preprocess.AbsBound(v) }

// CompressStream compresses a dims-shaped field of little-endian float32
// values read from r into a streaming container written to w, holding at
// most opts.Window slabs in memory — the out-of-core path for fields
// larger than RAM, network sockets and shell pipes. The bound must be
// absolute (resolve a relative bound first); per-chunk output is
// bit-identical to CompressChunked on the same field. Returns the
// compressed bytes written. Equivalent to pl.CompressStream.
func CompressStream(p *Platform, pl *Pipeline, r io.Reader, dims Dims, eb ErrorBound, w io.Writer, opts StreamOpts) (int64, error) {
	return pl.CompressStream(p, r, dims, eb, w, opts)
}

// CompressStreamCtx is CompressStream bounded by ctx: once the context is
// canceled or its deadline passes, task bodies not yet started are
// abandoned at their dispatch boundary, the current window drains, pooled
// intermediates are swept back, and the context's error is returned —
// canceling a request stops its work instead of orphaning it. Every
// non-ctx entry point is equivalent to its Ctx variant with
// context.Background().
func CompressStreamCtx(ctx context.Context, p *Platform, pl *Pipeline, r io.Reader, dims Dims, eb ErrorBound, w io.Writer, opts StreamOpts) (int64, error) {
	return pl.CompressStreamCtx(ctx, p, r, dims, eb, w, opts)
}

// DecompressStream reconstructs a streaming container read from r,
// writing the field to w as little-endian float32 bytes in storage order
// with at most opts.Window chunks in flight. Returns the field geometry.
func DecompressStream(p *Platform, r io.Reader, w io.Writer, opts StreamOpts) (Dims, error) {
	return core.DecompressStream(p, r, w, opts)
}

// DecompressStreamCtx is DecompressStream bounded by ctx, with the
// cancellation semantics of CompressStreamCtx.
func DecompressStreamCtx(ctx context.Context, p *Platform, r io.Reader, w io.Writer, opts StreamOpts) (Dims, error) {
	return core.DecompressStreamCtx(ctx, p, r, w, opts)
}

// Decompress reconstructs a field from any FZModules container using the
// module registry; the container is self-describing.
func Decompress(p *Platform, blob []byte) ([]float32, Dims, error) {
	return core.Decompress(p, blob)
}

// DecompressCtx is Decompress bounded by ctx, with the cancellation
// semantics of CompressStreamCtx: unstarted task bodies are abandoned at
// their dispatch boundary and the context's error is returned.
func DecompressCtx(ctx context.Context, p *Platform, blob []byte) ([]float32, Dims, error) {
	return core.DecompressCtx(ctx, p, blob)
}

// DecompressOpts configures the decompression executor; the zero value
// selects the platform's full worker width.
type DecompressOpts = core.DecompressOpts

// DecompressWithOpts is Decompress with an explicit parallelism budget:
// opts.Workers bounds both the chunk-level scheduler width and every
// kernel launch of the operation, mirroring ChunkOpts.Workers on the
// write path.
func DecompressWithOpts(p *Platform, blob []byte, opts DecompressOpts) ([]float32, Dims, error) {
	return core.DecompressWithOpts(p, blob, opts)
}

// DecompressWithOptsCtx is DecompressWithOpts bounded by ctx.
func DecompressWithOptsCtx(ctx context.Context, p *Platform, blob []byte, opts DecompressOpts) ([]float32, Dims, error) {
	return core.DecompressWithOptsCtx(ctx, p, blob, opts)
}

// DecompressReport is Decompress returning the executor report.
func DecompressReport(p *Platform, blob []byte) ([]float32, Dims, *ExecReport, error) {
	return core.DecompressReport(p, blob)
}

// FullRegion selects a field's entire extent.
func FullRegion(d Dims) RegionSel { return core.FullRegion(d) }

// NewSlabCache creates a decoded-slab cache bounded to budgetBytes; pass
// it in RegionOpts.Cache to share decode work across region reads.
func NewSlabCache(budgetBytes int64) *SlabCache { return core.NewSlabCache(budgetBytes) }

// NewBytesFetcher serves region reads from an in-memory container blob.
func NewBytesFetcher(blob []byte) ChunkFetcher { return fzio.NewBytesFetcher(blob) }

// NewFileFetcher serves region reads from a container file on local
// storage; the returned fetcher also implements io.Closer.
func NewFileFetcher(path string) (ChunkFetcher, error) { return fzio.NewFileFetcher(path) }

// NewHTTPFetcher serves region reads from a container published over HTTP
// using Range requests, so selections transfer only the chunks they need.
// A nil client selects http.DefaultClient.
func NewHTTPFetcher(url string, client *http.Client) ChunkFetcher {
	return fzio.NewHTTPFetcher(url, client)
}

// OpenRegion fetches the container index behind f (never the chunk
// payloads) and returns a Region serving subvolume reads. Works on chunked
// (FZMC), streamed (FZMS) and monolithic (FZMD) artifacts.
func OpenRegion(p *Platform, f ChunkFetcher, opts RegionOpts) (*Region, error) {
	return core.OpenRegion(p, f, opts)
}

// DecompressRegion decodes the selected subvolume of the container behind
// f, fetching and decoding only the slab chunks the selection intersects.
// The result is a sel.Dims()-shaped field in x-fastest order. One-shot
// convenience over OpenRegion + Region.Read; open a Region (with a
// SlabCache in opts) when serving repeated selections from one artifact.
func DecompressRegion(p *Platform, f ChunkFetcher, sel RegionSel, opts RegionOpts) ([]float32, error) {
	return core.DecompressRegion(p, f, sel, opts)
}

// DecompressRegionCtx is DecompressRegion bounded by ctx, with the
// cancellation semantics of CompressStreamCtx: unstarted fetch/decode
// bodies are abandoned at their dispatch boundary and the context's error
// is returned.
func DecompressRegionCtx(ctx context.Context, p *Platform, f ChunkFetcher, sel RegionSel, opts RegionOpts) ([]float32, error) {
	return core.DecompressRegionCtx(ctx, p, f, sel, opts)
}

// DecompressRegionReport is DecompressRegion returning the executor
// report; report.Region carries the chunk and cache accounting.
func DecompressRegionReport(p *Platform, f ChunkFetcher, sel RegionSel, opts RegionOpts) ([]float32, *ExecReport, error) {
	return core.DecompressRegionReport(p, f, sel, opts)
}

// Stats snapshots the platform's live counters into a read-only value:
// simulated transfer volumes, kernel/host launch counts, scratch-pool
// traffic (Pool.Gets == Pool.Puts when every checkout has been returned),
// region slab-cache accounting, and the active SIMD kernel tier. This is
// the supported way to observe a platform — metrics endpoints and
// external users need never reach into internals.
func Stats(p *Platform) Snapshot { return p.Snapshot() }

// Evaluate computes reconstruction quality (PSNR, NRMSE, max error).
func Evaluate(p *Platform, original, reconstructed []float32) (Quality, error) {
	return metrics.Evaluate(p, device.Host, original, reconstructed)
}

// VerifyBound reports the first index violating the absolute bound, or -1.
func VerifyBound(original, reconstructed []float32, absEB float64) int {
	return metrics.VerifyBound(original, reconstructed, absEB)
}

// CompressionRatio is input size over compressed size.
func CompressionRatio(inputBytes, compressedBytes int) float64 {
	return metrics.CompressionRatio(inputBytes, compressedBytes)
}

// OverallSpeedup evaluates the paper's Eq. 1 end-to-end speedup model.
func OverallSpeedup(throughputGBs, bandwidthGBs, ratio float64) float64 {
	return metrics.OverallSpeedup(throughputGBs, bandwidthGBs, ratio)
}

// Verifiable integrity and salvage. Version ≥ 2 chunked (FZMC) and
// streamed (FZMS) artifacts carry a SHA-256 Merkle tree over their chunk
// payloads: the per-chunk leaf hashes live in the chunk table, the root
// after it, so a reader can prove any fetched payload belongs to the
// artifact without trusting the byte transport. Region reads verify
// proofs automatically over HTTP-backed fetchers (opt in elsewhere with
// Opts.VerifyProofs) and refuse tampered bytes with ErrProofMismatch —
// even bytes a 32-bit CRC collision would let through. For artifacts
// that are already damaged, SurveyArtifact classifies every chunk,
// SalvageChunked rebuilds a valid container from the intact ones, and
// DecompressSalvage decodes what survived behind a DamageMask.

// ErrProofMismatch marks bytes that contradict a container's Merkle
// tree: a fetched payload whose inclusion proof does not fold to the
// recorded root, or an index whose root disagrees with its own entries.
// Never retried (the stored bytes are wrong; refetching cannot help).
var ErrProofMismatch = fzio.ErrProofMismatch

// ErrCRCMismatch marks a payload whose CRC32 contradicts the container
// index — corruption detected before decode, never retried.
var ErrCRCMismatch = fzio.ErrCRCMismatch

type (
	// Survey is the damage report of one artifact: per-chunk intact /
	// corrupt / missing verdicts plus container-level facts (Merkle root
	// verification, truncation). Produce one with SurveyArtifact.
	Survey = fzio.Survey
	// SurveyChunk is one chunk's salvage verdict within a Survey.
	SurveyChunk = fzio.SurveyChunk
	// DamageMask records which planes of a salvage-read field are real
	// and which are zero-filled fabrication (see DecompressSalvage).
	DamageMask = core.DamageMask
)

// Chunk survey states, as reported in SurveyChunk.State.
const (
	// ChunkIntact marks a chunk that passes every integrity check its
	// artifact carries.
	ChunkIntact = fzio.ChunkIntact
	// ChunkCorrupt marks a chunk present but failing an integrity check.
	ChunkCorrupt = fzio.ChunkCorrupt
	// ChunkMissing marks a chunk lying (at least partly) beyond the end
	// of a truncated artifact.
	ChunkMissing = fzio.ChunkMissing
)

// SurveyArtifact walks the whole artifact behind f and classifies every
// chunk as intact, corrupt or missing, tolerating damage the normal
// readers refuse (truncated payloads, tampered roots, cut trailers).
// Errors only when nothing at all is recoverable.
func SurveyArtifact(f ChunkFetcher) (*Survey, error) { return fzio.SurveyArtifact(f) }

// SalvageChunked rebuilds a fully valid chunked (FZMC) container from
// every intact chunk of the damaged artifact behind f; recovered chunk
// payloads are bit-identical to the originals, and the rebuilt container
// carries fresh CRCs, leaf hashes and Merkle root over the survivors.
// The Survey reports what made it and what was lost.
func SalvageChunked(f ChunkFetcher) ([]byte, *Survey, error) { return fzio.SalvageChunked(f) }

// DecompressSalvage decodes whatever survives of a damaged artifact at
// its full recorded geometry: planes covered by intact chunks decode
// normally, damaged or missing planes come back zero-filled, and the
// DamageMask says which is which. Values are never silently wrong — the
// mask is the only place uncertainty lives.
func DecompressSalvage(p *Platform, f ChunkFetcher, opts DecompressOpts) ([]float32, *DamageMask, error) {
	return core.DecompressSalvage(p, f, opts)
}
