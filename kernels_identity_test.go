package fzmod_test

import (
	"bytes"
	"runtime"
	"testing"
	"time"

	"fzmod"
	"fzmod/internal/kernels/dispatch"
	"fzmod/internal/sdrbench"
)

// TestKernelTierContainerIdentity compresses the same fields under the
// pure-Go kernels and under the auto-detected SIMD tier and requires the
// container bytes to match exactly — the dispatch layer's whole contract
// is that the tiers are bit-identical, not merely error-bounded. On hosts
// without a vector tier the two runs collapse to the same path and the
// test degenerates to a determinism check.
func TestKernelTierContainerIdentity(t *testing.T) {
	if err := dispatch.Use("purego"); err != nil {
		t.Fatal(err)
	}
	restored := false
	restore := func() {
		if !restored {
			restored = true
			if err := dispatch.Use("auto"); err != nil {
				t.Fatal(err)
			}
		}
	}
	defer restore()

	p := fzmod.NewPlatform()
	dims := fzmod.Dims3(48, 40, 20)
	fields := map[string][]float32{
		"hurr": sdrbench.GenHURR(dims, 11),
		"nyx":  sdrbench.GenNYX(dims, 12),
	}
	type key struct{ pipeline, field string }
	ref := map[key][]byte{}
	for _, pl := range fzmod.Presets() {
		for name, data := range fields {
			blob, err := pl.Compress(p, data, dims, fzmod.Rel(1e-3))
			if err != nil {
				t.Fatalf("purego %s/%s: %v", pl.Name(), name, err)
			}
			ref[key{pl.Name(), name}] = blob
		}
	}

	restore()
	t.Logf("comparing purego against tier %q", dispatch.Active())
	for _, pl := range fzmod.Presets() {
		for name, data := range fields {
			blob, err := pl.Compress(p, data, dims, fzmod.Rel(1e-3))
			if err != nil {
				t.Fatalf("%s %s/%s: %v", dispatch.Active(), pl.Name(), name, err)
			}
			want := ref[key{pl.Name(), name}]
			if !bytes.Equal(blob, want) {
				t.Errorf("%s/%s: container bytes differ between purego (%d bytes) and %s (%d bytes)",
					pl.Name(), name, len(want), dispatch.Active(), len(blob))
			}
		}
	}
}

// TestKernelTierIdentityNYXLarge is the paper-scale check: the 256³ NYX
// field (64 MiB) compressed single-core under the pure-Go kernels and
// under the auto-detected tier must produce identical container bytes, and
// on AVX2 hardware the vector tier must be meaningfully faster (the
// conservative 1.3× floor here tolerates loaded CI runners; the benchmark
// gates track the real ≥2× margin). Skipped in -short mode.
func TestKernelTierIdentityNYXLarge(t *testing.T) {
	if testing.Short() {
		t.Skip("64 MiB field in -short mode")
	}
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))

	p := fzmod.NewPlatform()
	dims := fzmod.Dims3(256, 256, 256)
	data := sdrbench.GenNYX(dims, 77)
	pl := fzmod.Default()

	// compress returns the container bytes and the best-of-two wall time
	// under the currently installed kernel tier.
	compress := func() ([]byte, float64) {
		var blob []byte
		var best float64
		for pass := 0; pass < 2; pass++ {
			t0 := time.Now()
			b, err := pl.Compress(p, data, dims, fzmod.Rel(1e-4))
			sec := time.Since(t0).Seconds()
			if err != nil {
				t.Fatalf("%s: %v", dispatch.Active(), err)
			}
			blob = b
			if pass == 0 || sec < best {
				best = sec
			}
		}
		return blob, best
	}

	if err := dispatch.Use("purego"); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := dispatch.Use("auto"); err != nil {
			t.Fatal(err)
		}
	}()
	ref, refSec := compress()

	if err := dispatch.Use("auto"); err != nil {
		t.Fatal(err)
	}
	blob, tierSec := compress()

	if !bytes.Equal(blob, ref) {
		t.Errorf("256³ NYX container bytes differ between purego (%d bytes) and %s (%d bytes)",
			len(ref), dispatch.Active(), len(blob))
	}
	gbs := func(sec float64) float64 { return float64(4*dims.N()) / sec / 1e9 }
	t.Logf("single-core 256³ NYX compress: purego %.3f GB/s, %s %.3f GB/s (%.2fx)",
		gbs(refSec), dispatch.Active(), gbs(tierSec), refSec/tierSec)
	if dispatch.Active() == dispatch.AVX2 && refSec/tierSec < 1.3 {
		t.Errorf("avx2 tier only %.2fx over purego on 256³ NYX, want well above 1.3x",
			refSec/tierSec)
	}
}
