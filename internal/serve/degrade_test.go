package serve

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strings"
	"testing"
	"time"

	"fzmod/internal/grid"
)

// This file tests graceful degradation: live worker-budget resizing that
// never drops queued requests, drain-aware shutdown that completes
// in-flight work, Retry-After on every shed/unavailable response, and the
// batcher owning zero goroutines after close.

func TestAdmissionResizeGrowGrantsQueued(t *testing.T) {
	a := NewAdmission(2, 8, 0)
	l1, _ := a.Acquire(context.Background(), 1)
	l2, _ := a.Acquire(context.Background(), 1)

	got := make(chan *Lease, 1)
	go func() {
		l, err := a.Acquire(context.Background(), 1)
		if err != nil {
			t.Errorf("queued acquire: %v", err)
		}
		got <- l
	}()
	waitFor(t, "waiter queued", func() bool { return a.QueueDepth() == 1 })

	// Growing the budget must grant the waiter with no lease released.
	a.Resize(4)
	select {
	case l := <-got:
		l.Release()
	case <-time.After(2 * time.Second):
		t.Fatal("resize did not grant the queued waiter")
	}
	l1.Release()
	l2.Release()
	if a.Budget() != 4 || a.InUse() != 0 {
		t.Fatalf("budget=%d inUse=%d after resize+release, want 4/0", a.Budget(), a.InUse())
	}
}

func TestAdmissionResizeShrinkClampsQueued(t *testing.T) {
	a := NewAdmission(4, 8, 0)
	wide, _ := a.Acquire(context.Background(), 4)

	got := make(chan *Lease, 1)
	go func() {
		l, err := a.Acquire(context.Background(), 4) // wants the whole old budget
		if err != nil {
			t.Errorf("queued acquire: %v", err)
		}
		got <- l
	}()
	waitFor(t, "waiter queued", func() bool { return a.QueueDepth() == 1 })

	// Shrink below the waiter's ask: it must be clamped, not starved —
	// once the wide lease releases, it runs at the new budget's width.
	a.Resize(2)
	wide.Release()
	select {
	case l := <-got:
		if l.Workers() != 2 {
			t.Fatalf("post-shrink lease width = %d, want clamped to 2", l.Workers())
		}
		l.Release()
	case <-time.After(2 * time.Second):
		t.Fatal("queued waiter starved by shrink")
	}
	if a.InUse() != 0 {
		t.Fatalf("inUse = %d after all releases", a.InUse())
	}
}

func TestServerDrainCompletesInFlight(t *testing.T) {
	// One worker, infinite queue patience, no batching: a held lease pins
	// a request in flight deterministically.
	s, ts := testServer(t, Config{Workers: 1, MaxQueue: 8, MaxWait: -1, BatchThreshold: -1})
	dims := grid.D3(16, 12, 10)
	_, body := testFieldBytes(t, dims)

	hold, err := s.Admission().Acquire(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	type result struct {
		resp *http.Response
		body []byte
		err  error
	}
	inflight := make(chan result, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/v1/compress?dims=16x12x10&eb=1e-3", "application/octet-stream", strings.NewReader(string(body)))
		var out []byte
		if err == nil {
			out, _ = io.ReadAll(resp.Body)
			resp.Body.Close()
		}
		inflight <- result{resp, out, err}
	}()
	waitFor(t, "request in flight", func() bool { return s.InFlight() == 1 })

	drained := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		drained <- s.Drain(ctx)
	}()
	waitFor(t, "draining flag", func() bool { return s.Draining() })

	// Mid-drain: data plane refuses with 503 + Retry-After, readiness
	// flips, liveness and metrics stay up.
	resp, _ := doPost(t, ts.URL+"/v1/compress?dims=16x12x10&eb=1e-3", body)
	if resp.StatusCode != http.StatusServiceUnavailable || resp.Header.Get("Retry-After") == "" {
		t.Fatalf("mid-drain compress: status %d, Retry-After %q", resp.StatusCode, resp.Header.Get("Retry-After"))
	}
	resp, _ = doReq(t, http.MethodGet, ts.URL+"/readyz", nil)
	if resp.StatusCode != http.StatusServiceUnavailable || resp.Header.Get("Retry-After") == "" {
		t.Fatalf("mid-drain readyz: status %d", resp.StatusCode)
	}
	resp, _ = doReq(t, http.MethodGet, ts.URL+"/healthz", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("mid-drain healthz: status %d, liveness must survive draining", resp.StatusCode)
	}
	resp, metricsBody := doReq(t, http.MethodGet, ts.URL+"/metrics", nil)
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(metricsBody), "fzmodd_draining 1") {
		t.Fatalf("mid-drain metrics: status %d, draining gauge missing", resp.StatusCode)
	}

	// The in-flight request must complete, not be dropped: hand it the
	// worker and both it and the drain finish.
	hold.Release()
	r := <-inflight
	if r.err != nil || r.resp.StatusCode != http.StatusOK {
		t.Fatalf("in-flight request during drain: %v, status %v", r.err, r.resp)
	}
	if len(r.body) == 0 {
		t.Fatal("in-flight compress returned an empty container")
	}
	if err := <-drained; err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if s.InFlight() != 0 {
		t.Fatalf("InFlight = %d after drain", s.InFlight())
	}
}

func TestServerDrainDeadline(t *testing.T) {
	s, ts := testServer(t, Config{Workers: 1, MaxQueue: 8, MaxWait: -1, BatchThreshold: -1})
	dims := grid.D3(16, 12, 10)
	_, body := testFieldBytes(t, dims)

	hold, _ := s.Admission().Acquire(context.Background(), 1)
	done := make(chan struct{})
	go func() {
		defer close(done)
		doPost(t, ts.URL+"/v1/compress?dims=16x12x10&eb=1e-3", body)
	}()
	waitFor(t, "request in flight", func() bool { return s.InFlight() == 1 })

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := s.Drain(ctx); err == nil {
		t.Fatal("Drain returned nil with a request still pinned in flight")
	}
	hold.Release() // let the request and the test server shut down cleanly
	<-done
}

func TestRetryAfterOnShed(t *testing.T) {
	// MaxQueue -1 sheds immediately once the budget is leased out.
	s, ts := testServer(t, Config{Workers: 1, MaxQueue: -1, BatchThreshold: -1})
	dims := grid.D3(16, 12, 10)
	_, body := testFieldBytes(t, dims)

	hold, err := s.Admission().Acquire(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	defer hold.Release()
	resp, out := doPost(t, ts.URL+"/v1/compress?dims=16x12x10&eb=1e-3", body)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("shed status = %d (%s), want 429", resp.StatusCode, out)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
}

func TestAdminBudgetEndpoint(t *testing.T) {
	s, ts := testServer(t, Config{Workers: 2})

	resp, out := doPost(t, ts.URL+"/v1/admin/budget?workers=5", nil)
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(out), `"budget":5`) {
		t.Fatalf("budget resize: status %d body %s", resp.StatusCode, out)
	}
	if s.Admission().Budget() != 5 {
		t.Fatalf("budget = %d after admin resize, want 5", s.Admission().Budget())
	}
	resp, out = doReq(t, http.MethodGet, ts.URL+"/v1/admin/budget", nil)
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(out), `"budget":5`) {
		t.Fatalf("budget read-back: status %d body %s", resp.StatusCode, out)
	}
	resp, _ = doPost(t, ts.URL+"/v1/admin/budget?workers=zero", nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad workers value: status %d, want 400", resp.StatusCode)
	}
	resp, metricsBody := doReq(t, http.MethodGet, ts.URL+"/metrics", nil)
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(metricsBody), "fzmodd_admission_budget 5") {
		t.Fatal("resized budget not visible in /metrics")
	}
}

// TestBatcherCloseReleasesGoroutines asserts the satellite contract: a
// part-filled batch with its max-wait timer armed is flushed by close,
// every item gets a result, and no batcher goroutine (run workers or
// timer callbacks) outlives close.
func TestBatcherCloseReleasesGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	results := make(chan int, 8)
	b := newBatcher(100, 1<<30, time.Hour, func(items []*batchItem) {
		for _, it := range items {
			it.resp <- batchResult{}
		}
		results <- len(items)
	})
	for i := 0; i < 3; i++ {
		it := &batchItem{req: &compressReq{ctx: context.Background()}, resp: make(chan batchResult, 1)}
		if err := b.enqueue(it); err != nil {
			t.Fatal(err)
		}
	}
	func() {
		b.mu.Lock()
		defer b.mu.Unlock()
		if b.timer == nil {
			t.Fatal("max-wait timer not armed on a part-filled batch")
		}
	}()

	b.close() // must flush the pending 3 and wait for the run to deliver
	if n := <-results; n != 3 {
		t.Fatalf("close flushed a batch of %d, want 3", n)
	}
	func() {
		b.mu.Lock()
		defer b.mu.Unlock()
		if b.timer != nil {
			t.Fatal("max-wait timer still armed after close")
		}
	}()
	if err := b.enqueue(&batchItem{}); err != ErrClosed {
		t.Fatalf("enqueue after close = %v, want ErrClosed", err)
	}
	waitFor(t, "batcher goroutines exit", func() bool {
		return runtime.NumGoroutine() <= before
	})
}

// waitFor polls cond up to 5s; the chaos and drain tests use it instead
// of bare sleeps so they stay fast when the condition is already true.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal(fmt.Sprintf("timed out waiting for %s", what))
}
