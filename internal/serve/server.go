package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"fzmod/internal/core"
	"fzmod/internal/device"
	"fzmod/internal/fzio"
	"fzmod/internal/grid"
	"fzmod/internal/preprocess"
)

// stageBytes sizes the pooled staging buffer for float32<->byte I/O.
const stageBytes = 256 << 10

// Config sizes the daemon. The zero value of every field selects a
// sensible default (a negative value, where noted, selects "none").
type Config struct {
	// Preset is the pipeline compress requests use when they name none:
	// "default", "speed" or "quality". Default "default".
	Preset string
	// Workers is the global parallelism budget the admission controller
	// leases from — the daemon-wide analogue of Opts.Workers. Default:
	// the platform's worker width.
	Workers int
	// DefaultLease is the workers a request leases when it names none.
	// Default 1: under load, cross-request parallelism beats per-request
	// width.
	DefaultLease int
	// MaxQueue bounds the requests waiting for a lease; beyond it
	// requests shed with 429. Default 64; negative sheds at once when the
	// budget is exhausted.
	MaxQueue int
	// MaxWait bounds how long a request may queue before shedding with
	// 429. Default 2s; negative waits forever.
	MaxWait time.Duration
	// BatchItems / BatchBytes are the batcher's size triggers (pending
	// requests / pending raw payload bytes). Defaults 8 and 4 MiB.
	BatchItems int
	BatchBytes int
	// BatchWait is the batcher's max-wait trigger. Default 2ms.
	BatchWait time.Duration
	// BatchThreshold routes compress payloads of at most this many raw
	// bytes through the batcher. Default 256 KiB; negative disables
	// coalescing.
	BatchThreshold int
	// CacheBytes budgets the shared decoded-slab cache serving region
	// reads. Default 256 MiB.
	CacheBytes int64
	// RequestTimeout caps each request's execution (compression observes
	// it at every task dispatch boundary). Default: none.
	RequestTimeout time.Duration
	// MaxBodyBytes caps request bodies. Default 1 GiB.
	MaxBodyBytes int64
}

// withDefaults resolves the zero values against the platform.
func (c Config) withDefaults(p *device.Platform) Config {
	if c.Preset == "" {
		c.Preset = "default"
	}
	if c.Workers <= 0 {
		c.Workers = p.Workers(device.Accel)
	}
	if c.DefaultLease <= 0 {
		c.DefaultLease = 1
	}
	switch {
	case c.MaxQueue == 0:
		c.MaxQueue = 64
	case c.MaxQueue < 0:
		c.MaxQueue = 0
	}
	switch {
	case c.MaxWait == 0:
		c.MaxWait = 2 * time.Second
	case c.MaxWait < 0:
		c.MaxWait = 0
	}
	if c.BatchItems <= 0 {
		c.BatchItems = 8
	}
	if c.BatchBytes <= 0 {
		c.BatchBytes = 4 << 20
	}
	if c.BatchWait <= 0 {
		c.BatchWait = 2 * time.Millisecond
	}
	if c.BatchThreshold == 0 {
		c.BatchThreshold = 256 << 10
	}
	if c.CacheBytes <= 0 {
		c.CacheBytes = 256 << 20
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 30
	}
	return c
}

// Server is the multi-tenant compression service: every request executes
// over one shared warm Platform (and its BufPool), leases its parallelism
// from one admission controller, and region reads share one SlabCache.
type Server struct {
	cfg   Config
	p     *device.Platform
	adm   *Admission
	batch *Batcher
	cache *core.SlabCache
	met   metrics
	mux   *http.ServeMux

	// Drain lifecycle: once draining flips, data-plane requests are
	// refused with 503 + Retry-After while control endpoints (/healthz,
	// /readyz, /metrics, /v1/admin/*) stay up; inflight tracks data-plane
	// requests still executing so Drain can wait them out.
	draining  atomic.Bool
	inflight  sync.WaitGroup
	inflightN atomic.Int64

	objMu   sync.RWMutex
	objects map[string][]byte
}

// New builds a server over the platform. The platform's pools stay warm
// across requests — that sharing is the point of the daemon.
func New(p *device.Platform, cfg Config) *Server {
	cfg = cfg.withDefaults(p)
	s := &Server{
		cfg:     cfg,
		p:       p,
		adm:     NewAdmission(cfg.Workers, cfg.MaxQueue, cfg.MaxWait),
		cache:   core.NewSlabCache(cfg.CacheBytes),
		objects: make(map[string][]byte),
	}
	s.batch = newBatcher(cfg.BatchItems, cfg.BatchBytes, cfg.BatchWait, s.runBatch)
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/compress", s.handleCompress)
	mux.HandleFunc("/v1/decompress", s.handleDecompress)
	mux.HandleFunc("/v1/probe", s.handleProbe)
	mux.HandleFunc("/v1/objects/", s.handleObjects)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/readyz", s.handleReadyz)
	mux.HandleFunc("/v1/admin/budget", s.handleAdminBudget)
	s.mux = mux
	return s
}

// Handler returns the daemon's HTTP surface: the route mux behind the
// drain gate, which refuses data-plane work on a draining server and
// tracks in-flight requests for Drain to wait on.
func (s *Server) Handler() http.Handler { return http.HandlerFunc(s.serveHTTP) }

// controlPath reports whether p is a control endpoint that must stay
// reachable while draining — health, readiness, metrics and admin.
func controlPath(p string) bool {
	return p == "/healthz" || p == "/readyz" || p == "/metrics" ||
		strings.HasPrefix(p, "/v1/admin/")
}

// serveHTTP is the drain gate in front of the mux.
func (s *Server) serveHTTP(w http.ResponseWriter, r *http.Request) {
	if controlPath(r.URL.Path) {
		s.mux.ServeHTTP(w, r)
		return
	}
	if s.draining.Load() {
		s.met.errShed.Add(1)
		w.Header().Set("Retry-After", retryAfterSecs)
		http.Error(w, "server draining", http.StatusServiceUnavailable)
		return
	}
	s.inflight.Add(1)
	s.inflightN.Add(1)
	defer func() {
		s.inflightN.Add(-1)
		s.inflight.Done()
	}()
	s.mux.ServeHTTP(w, r)
}

// Draining reports whether the server has begun shutting down.
func (s *Server) Draining() bool { return s.draining.Load() }

// InFlight returns the data-plane requests currently executing.
func (s *Server) InFlight() int64 { return s.inflightN.Load() }

// Drain gracefully shuts the server down: stop accepting data-plane
// requests (503 + Retry-After; /readyz flips not-ready), flush the
// batcher and wait for its runs to deliver, then wait for every in-flight
// request to finish. The ctx deadline bounds the wait; on expiry Drain
// returns the ctx error with requests still in flight. Idempotent —
// later calls wait on the same shutdown.
func (s *Server) Drain(ctx context.Context) error {
	s.draining.Store(true)
	done := make(chan struct{})
	go func() {
		s.batch.close()   // flush pending items; wait for batch runs
		s.inflight.Wait() // wait for every admitted request
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("serve: drain deadline with %d requests in flight: %w", s.InFlight(), ctx.Err())
	}
}

// Platform returns the shared execution platform (its Snapshot feeds
// load-test reports).
func (s *Server) Platform() *device.Platform { return s.p }

// Admission returns the admission controller (load tests read its
// counters).
func (s *Server) Admission() *Admission { return s.adm }

// Close flushes the batcher and waits for its runs; in-flight requests
// finish on their own. Prefer Drain for a full graceful shutdown.
func (s *Server) Close() { s.batch.close() }

// reqCtx derives the request execution context, applying the configured
// per-request timeout.
func (s *Server) reqCtx(r *http.Request) (context.Context, context.CancelFunc) {
	if s.cfg.RequestTimeout > 0 {
		return context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	}
	return r.Context(), func() {}
}

// retryAfterSecs is the Retry-After hint on every 429/503: long enough
// for a load balancer to rotate away, short enough that a retrying client
// rides out a transient overload.
const retryAfterSecs = "1"

// fail maps an execution error onto its status class: 429 for admission
// shed, 503 for canceled/expired requests, 500 otherwise. The retryable
// classes (429, 503) carry Retry-After so well-behaved clients back off
// instead of hammering an overloaded or draining daemon.
func (s *Server) fail(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrOverloaded) || errors.Is(err, ErrClosed):
		s.met.errShed.Add(1)
		w.Header().Set("Retry-After", retryAfterSecs)
		http.Error(w, err.Error(), http.StatusTooManyRequests)
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		s.met.errCanceled.Add(1)
		w.Header().Set("Retry-After", retryAfterSecs)
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
	default:
		s.met.errInternal.Add(1)
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// badRequest rejects a malformed request with 400.
func (s *Server) badRequest(w http.ResponseWriter, format string, args ...any) {
	s.met.errBadRequest.Add(1)
	http.Error(w, fmt.Sprintf(format, args...), http.StatusBadRequest)
}

// pipelineFor resolves a preset name.
func pipelineFor(name string) (*core.Pipeline, error) {
	switch name {
	case "default":
		return core.NewDefault(), nil
	case "speed":
		return core.NewSpeed(), nil
	case "quality":
		return core.NewQuality(), nil
	default:
		return nil, fmt.Errorf("unknown preset %q (want default, speed, quality)", name)
	}
}

// parseDims parses "XxYxZ" (1–3 axes, x fastest).
func parseDims(s string) (grid.Dims, error) {
	if s == "" {
		return grid.Dims{}, fmt.Errorf("missing dims")
	}
	parts := strings.Split(strings.ToLower(s), "x")
	if len(parts) > 3 {
		return grid.Dims{}, fmt.Errorf("dims %q: want XxYxZ with at most 3 axes", s)
	}
	ext := [3]int{1, 1, 1}
	for i, part := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || v < 1 {
			return grid.Dims{}, fmt.Errorf("dims %q: bad extent %q", s, part)
		}
		ext[i] = v
	}
	d := grid.Dims{X: ext[0], Y: ext[1], Z: ext[2]}
	if !d.Valid() {
		return grid.Dims{}, fmt.Errorf("dims %q: invalid geometry", s)
	}
	return d, nil
}

// parseBound parses eb + mode query params into an error bound.
func parseBound(ebStr, mode string) (preprocess.ErrorBound, error) {
	v, err := strconv.ParseFloat(ebStr, 64)
	if err != nil || v <= 0 {
		return preprocess.ErrorBound{}, fmt.Errorf("eb %q: want a positive float", ebStr)
	}
	switch mode {
	case "", "rel":
		return preprocess.RelBound(v), nil
	case "abs":
		return preprocess.AbsBound(v), nil
	default:
		return preprocess.ErrorBound{}, fmt.Errorf("mode %q: want rel or abs", mode)
	}
}

// parseSel parses "i0:i1,j0:j1,k0:k1" (trailing axes optional) against
// the field geometry, defaulting omitted axes to their full extent.
func parseSel(s string, d grid.Dims) (core.RegionSel, error) {
	sel := core.FullRegion(d)
	if s == "" {
		return sel, nil
	}
	axes := strings.Split(s, ",")
	if len(axes) > 3 {
		return core.RegionSel{}, fmt.Errorf("sel %q: at most 3 axes", s)
	}
	set := func(lo, hi *int, spec string) error {
		bounds := strings.SplitN(spec, ":", 2)
		if len(bounds) != 2 {
			return fmt.Errorf("sel %q: axis %q: want lo:hi", s, spec)
		}
		l, err1 := strconv.Atoi(strings.TrimSpace(bounds[0]))
		h, err2 := strconv.Atoi(strings.TrimSpace(bounds[1]))
		if err1 != nil || err2 != nil {
			return fmt.Errorf("sel %q: axis %q: bad bound", s, spec)
		}
		*lo, *hi = l, h
		return nil
	}
	targets := [][2]*int{{&sel.X0, &sel.X1}, {&sel.Y0, &sel.Y1}, {&sel.Z0, &sel.Z1}}
	for i, spec := range axes {
		if err := set(targets[i][0], targets[i][1], spec); err != nil {
			return core.RegionSel{}, err
		}
	}
	return sel, nil
}

// parseWorkers resolves the request's lease size (its Opts.Workers).
func (s *Server) parseWorkers(q string) (int, error) {
	if q == "" {
		return s.cfg.DefaultLease, nil
	}
	v, err := strconv.Atoi(q)
	if err != nil || v < 1 {
		return 0, fmt.Errorf("workers %q: want a positive integer", q)
	}
	return v, nil
}

// readBody reads the request body up to the configured cap.
func (s *Server) readBody(w http.ResponseWriter, r *http.Request) ([]byte, error) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		return nil, fmt.Errorf("reading body: %w", err)
	}
	s.met.bytesIn.Add(int64(len(body)))
	return body, nil
}

// timingHeaders exposes the batch lifecycle to the caller.
func timingHeaders(h http.Header, t BatchTiming, batched bool) {
	h.Set("X-Fzmod-Queue-Ns", strconv.FormatInt(t.Queued().Nanoseconds(), 10))
	h.Set("X-Fzmod-Flush-Ns", strconv.FormatInt(t.Flush().Nanoseconds(), 10))
	h.Set("X-Fzmod-Execute-Ns", strconv.FormatInt(t.Execute().Nanoseconds(), 10))
	h.Set("X-Fzmod-Batched", strconv.FormatBool(batched))
}

// handleCompress serves POST /v1/compress: the body is the raw
// little-endian float32 field, geometry and bound ride in query
// parameters (dims=XxYxZ, eb=1e-4, mode=rel|abs, preset=..., workers=N,
// chunk=ELEMS), and the response body is the container. Payloads at most
// BatchThreshold bytes coalesce through the batcher; the response
// headers carry the queue/flush/execute split either way.
func (s *Server) handleCompress(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	s.met.reqCompress.Add(1)
	q := r.URL.Query()
	dims, err := parseDims(q.Get("dims"))
	if err != nil {
		s.badRequest(w, "%v", err)
		return
	}
	eb, err := parseBound(q.Get("eb"), q.Get("mode"))
	if err != nil {
		s.badRequest(w, "%v", err)
		return
	}
	preset := q.Get("preset")
	if preset == "" {
		preset = s.cfg.Preset
	}
	if _, err := pipelineFor(preset); err != nil {
		s.badRequest(w, "%v", err)
		return
	}
	workers, err := s.parseWorkers(q.Get("workers"))
	if err != nil {
		s.badRequest(w, "%v", err)
		return
	}
	chunkElems := 0
	if c := q.Get("chunk"); c != "" {
		chunkElems, err = strconv.Atoi(c)
		if err != nil || chunkElems < 1 {
			s.badRequest(w, "chunk %q: want a positive element count", c)
			return
		}
	}
	rawBytes := dims.N() * 4
	if int64(rawBytes) > s.cfg.MaxBodyBytes {
		s.badRequest(w, "dims %v: %d raw bytes exceed the %d-byte body cap", dims, rawBytes, s.cfg.MaxBodyBytes)
		return
	}

	ctx, cancel := s.reqCtx(r)
	defer cancel()

	// The field stages through a pooled slab: request churn rides the
	// platform's warm BufPool, not the garbage collector.
	bp := s.p.ScratchPool()
	valsSlab := bp.GetF32(dims.N(), false)
	defer bp.PutF32(valsSlab)
	stage := bp.GetBytes(stageBytes, false)
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	err = device.ReadF32(body, valsSlab.Data, stage.Data)
	bp.PutBytes(stage)
	if err != nil {
		s.badRequest(w, "reading %d float32 values for dims %v: %v", dims.N(), dims, err)
		return
	}
	if n, _ := body.Read(make([]byte, 1)); n != 0 {
		s.badRequest(w, "body longer than dims %v (%d raw bytes)", dims, rawBytes)
		return
	}
	s.met.bytesIn.Add(int64(rawBytes))

	req := &compressReq{
		ctx:        ctx,
		preset:     preset,
		vals:       valsSlab.Data,
		dims:       dims,
		eb:         eb,
		chunkElems: chunkElems,
		workers:    workers,
	}

	var res batchResult
	if s.cfg.BatchThreshold > 0 && rawBytes <= s.cfg.BatchThreshold {
		// Coalesced path: wait for the batch to deliver on our channel.
		it := &batchItem{req: req, resp: make(chan batchResult, 1)}
		if err := s.batch.enqueue(it); err != nil {
			s.fail(w, err)
			return
		}
		res = <-it.resp
	} else {
		lease, err := s.adm.Acquire(ctx, workers)
		if err != nil {
			s.fail(w, err)
			return
		}
		now := time.Now()
		res.timing = BatchTiming{Enqueued: now, Flushed: now, Started: now}
		res.blob, res.err = s.compressOne(req, lease.Workers())
		res.timing.Done = time.Now()
		lease.Release()
	}
	if res.err != nil {
		s.fail(w, res.err)
		return
	}
	s.met.rawBytes.Add(int64(rawBytes))
	s.met.compressedBytes.Add(int64(len(res.blob)))
	s.met.bytesOut.Add(int64(len(res.blob)))
	h := w.Header()
	h.Set("Content-Type", "application/octet-stream")
	h.Set("X-Fzmod-Ratio", strconv.FormatFloat(ratio(int64(rawBytes), int64(len(res.blob))), 'g', 5, 64))
	timingHeaders(h, res.timing, s.cfg.BatchThreshold > 0 && rawBytes <= s.cfg.BatchThreshold)
	w.Write(res.blob)
}

// compressOne runs one parsed request at the leased width.
func (s *Server) compressOne(req *compressReq, width int) ([]byte, error) {
	pl, err := pipelineFor(req.preset)
	if err != nil {
		return nil, err
	}
	opts := core.ChunkOpts{Workers: width, ChunkElems: req.chunkElems}
	if req.chunkElems > 0 || req.dims.N() >= core.AutoChunkElems {
		return pl.CompressChunkedCtx(req.ctx, s.p, req.vals, req.dims, req.eb, opts)
	}
	return pl.CompressCtx(req.ctx, s.p.WithWorkers(width), req.vals, req.dims, req.eb)
}

// runBatch executes one sealed batch under a single lease sized to the
// batch (clamped to the budget), delivering every item's result on its
// own channel. A caller that canceled while queued is skipped, not
// compressed.
func (s *Server) runBatch(items []*batchItem) {
	lease, err := s.adm.Acquire(context.Background(), len(items))
	if err != nil {
		now := time.Now()
		for _, it := range items {
			it.timing.Started, it.timing.Done = now, now
			it.resp <- batchResult{timing: it.timing, err: err}
		}
		return
	}
	defer lease.Release()
	for _, it := range items {
		it.timing.Started = time.Now()
		var res batchResult
		if err := it.req.ctx.Err(); err != nil {
			res.err = err
		} else {
			res.blob, res.err = s.compressOne(it.req, lease.Workers())
		}
		it.timing.Done = time.Now()
		res.timing = it.timing
		it.resp <- res
	}
}

// handleDecompress serves POST /v1/decompress: the body is any FZModules
// container, the response the raw little-endian float32 field with its
// geometry in X-Fzmod-Dims.
func (s *Server) handleDecompress(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	s.met.reqDecompress.Add(1)
	workers, err := s.parseWorkers(r.URL.Query().Get("workers"))
	if err != nil {
		s.badRequest(w, "%v", err)
		return
	}
	blob, err := s.readBody(w, r)
	if err != nil {
		s.badRequest(w, "%v", err)
		return
	}
	// Parse the container index before spending a lease: junk is the
	// caller's fault, not the daemon's.
	if _, err := fzio.FetchIndex(fzio.NewBytesFetcher(blob)); err != nil {
		s.badRequest(w, "not an FZModules container: %v", err)
		return
	}
	ctx, cancel := s.reqCtx(r)
	defer cancel()
	lease, err := s.adm.Acquire(ctx, workers)
	if err != nil {
		s.fail(w, err)
		return
	}
	vals, dims, err := core.DecompressWithOptsCtx(ctx, s.p, blob, core.DecompressOpts{Workers: lease.Workers()})
	lease.Release()
	if err != nil {
		s.fail(w, err)
		return
	}
	s.writeField(w, vals, dims)
}

// writeField streams a field as little-endian float32 bytes with its
// geometry in X-Fzmod-Dims.
func (s *Server) writeField(w http.ResponseWriter, vals []float32, dims grid.Dims) {
	h := w.Header()
	h.Set("Content-Type", "application/octet-stream")
	h.Set("X-Fzmod-Dims", fmt.Sprintf("%dx%dx%d", dims.X, dims.Y, dims.Z))
	h.Set("Content-Length", strconv.Itoa(len(vals)*4))
	bp := s.p.ScratchPool()
	stage := bp.GetBytes(stageBytes, false)
	defer bp.PutBytes(stage)
	if err := device.WriteF32(w, vals, stage.Data); err != nil {
		return // client went away mid-body; nothing to report
	}
	s.met.bytesOut.Add(int64(len(vals) * 4))
}

// probeResponse is the JSON shape of POST /v1/probe.
type probeResponse struct {
	Flavor        string  `json:"flavor"`
	Pipeline      string  `json:"pipeline"`
	Dims          [3]int  `json:"dims"`
	EB            float64 `json:"eb"`
	RelEB         float64 `json:"rel_eb,omitempty"`
	Planes        int     `json:"planes,omitempty"`
	Chunks        int     `json:"chunks"`
	PayloadBytes  int64   `json:"payload_bytes"`
	ArtifactBytes int64   `json:"artifact_bytes"`
}

// handleProbe serves POST /v1/probe: the body is a container (or its
// index-bearing prefix plus trailer — the whole artifact is simplest),
// the response its parsed identity without decoding any payload.
func (s *Server) handleProbe(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	s.met.reqProbe.Add(1)
	blob, err := s.readBody(w, r)
	if err != nil {
		s.badRequest(w, "%v", err)
		return
	}
	ix, err := fzio.FetchIndex(fzio.NewBytesFetcher(blob))
	if err != nil {
		s.badRequest(w, "not an FZModules container: %v", err)
		return
	}
	var payload int64
	for _, ref := range ix.Chunks {
		payload += int64(ref.Length)
	}
	resp := probeResponse{
		Flavor:        ix.Flavor,
		Pipeline:      ix.Header.Pipeline,
		Dims:          [3]int{ix.Header.Dims.X, ix.Header.Dims.Y, ix.Header.Dims.Z},
		EB:            ix.Header.EB,
		RelEB:         ix.Header.RelEB,
		Planes:        ix.Header.Planes,
		Chunks:        ix.NumChunks(),
		PayloadBytes:  payload,
		ArtifactBytes: ix.ArtifactSize,
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp)
}

// handleObjects routes the in-memory object store:
//
//	PUT    /v1/objects/<name>         store a container
//	GET    /v1/objects/<name>         fetch it back
//	DELETE /v1/objects/<name>         drop it
//	GET    /v1/objects/<name>/region  random-access read (?sel=i0:i1,...)
//
// Region reads over stored objects share the server's SlabCache, so
// overlapping selections from any number of tenants decode each chunk
// once.
func (s *Server) handleObjects(w http.ResponseWriter, r *http.Request) {
	name := strings.TrimPrefix(r.URL.Path, "/v1/objects/")
	if region := strings.TrimSuffix(name, "/region"); region != name {
		s.handleRegion(w, r, region)
		return
	}
	if name == "" || strings.Contains(name, "/") {
		s.badRequest(w, "object name %q: want /v1/objects/<name>", name)
		return
	}
	s.met.reqObjects.Add(1)
	switch r.Method {
	case http.MethodPut, http.MethodPost:
		blob, err := s.readBody(w, r)
		if err != nil {
			s.badRequest(w, "%v", err)
			return
		}
		if _, err := fzio.FetchIndex(fzio.NewBytesFetcher(blob)); err != nil {
			s.badRequest(w, "not an FZModules container: %v", err)
			return
		}
		s.objMu.Lock()
		s.objects[name] = blob
		s.objMu.Unlock()
		w.WriteHeader(http.StatusCreated)
	case http.MethodGet:
		s.objMu.RLock()
		blob, ok := s.objects[name]
		s.objMu.RUnlock()
		if !ok {
			http.Error(w, fmt.Sprintf("no object %q", name), http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Write(blob)
		s.met.bytesOut.Add(int64(len(blob)))
	case http.MethodDelete:
		s.objMu.Lock()
		delete(s.objects, name)
		s.objMu.Unlock()
		w.WriteHeader(http.StatusNoContent)
	default:
		http.Error(w, "PUT, GET or DELETE", http.StatusMethodNotAllowed)
	}
}

// handleRegion serves GET /v1/objects/<name>/region?sel=i0:i1,j0:j1,k0:k1:
// the selected subvolume of a stored container, decoding only the chunks
// the selection intersects, with cache/decode accounting in the response
// headers.
func (s *Server) handleRegion(w http.ResponseWriter, r *http.Request, name string) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	s.met.reqRegion.Add(1)
	s.objMu.RLock()
	blob, ok := s.objects[name]
	s.objMu.RUnlock()
	if !ok {
		http.Error(w, fmt.Sprintf("no object %q", name), http.StatusNotFound)
		return
	}
	workers, err := s.parseWorkers(r.URL.Query().Get("workers"))
	if err != nil {
		s.badRequest(w, "%v", err)
		return
	}
	ctx, cancel := s.reqCtx(r)
	defer cancel()
	lease, err := s.adm.Acquire(ctx, workers)
	if err != nil {
		s.fail(w, err)
		return
	}
	defer lease.Release()
	reg, err := core.OpenRegion(s.p, fzio.NewBytesFetcher(blob), core.RegionOpts{
		Workers: lease.Workers(),
		Cache:   s.cache,
		// Stored objects are opaque tenant uploads; proof-check every
		// chunk against the container's Merkle root (vacuous on v1 and
		// monolithic artifacts, which carry none).
		VerifyProofs: true,
	})
	if err != nil {
		s.fail(w, err)
		return
	}
	d := reg.Dims()
	sel, err := parseSel(r.URL.Query().Get("sel"), d)
	if err != nil {
		s.badRequest(w, "%v", err)
		return
	}
	if sel.X0 < 0 || sel.X1 > d.X || sel.X0 >= sel.X1 ||
		sel.Y0 < 0 || sel.Y1 > d.Y || sel.Y0 >= sel.Y1 ||
		sel.Z0 < 0 || sel.Z1 > d.Z || sel.Z0 >= sel.Z1 {
		s.badRequest(w, "sel %v: outside field %dx%dx%d", sel, d.X, d.Y, d.Z)
		return
	}
	vals, rep, err := reg.ReadReportCtx(ctx, sel)
	if err != nil {
		s.fail(w, err)
		return
	}
	h := w.Header()
	if rep != nil && rep.Region != nil {
		h.Set("X-Fzmod-Region-Chunks", strconv.Itoa(rep.Region.Chunks))
		h.Set("X-Fzmod-Region-Decoded", strconv.Itoa(rep.Region.Decoded))
		h.Set("X-Fzmod-Region-Cache-Hits", strconv.Itoa(rep.Region.CacheHits))
		h.Set("X-Fzmod-Region-Dedup-Hits", strconv.Itoa(rep.Region.DedupHits))
		h.Set("X-Fzmod-Region-Fetch-Attempts", strconv.FormatInt(rep.Region.FetchAttempts, 10))
		h.Set("X-Fzmod-Region-Proof-Verified", strconv.FormatInt(rep.Region.ProofVerified, 10))
		s.met.proofVerified.Add(rep.Region.ProofVerified)
	}
	s.writeField(w, vals, sel.Dims())
}

// handleMetrics serves GET /metrics in the Prometheus text format.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.writeMetrics(w)
}

// handleHealthz reports liveness: 200 as long as the process serves HTTP,
// draining or not — a draining daemon is alive, just not ready.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	io.WriteString(w, "ok\n")
}

// handleReadyz reports readiness for new work: 503 once draining so load
// balancers rotate the instance out while in-flight requests complete.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		w.Header().Set("Retry-After", retryAfterSecs)
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	io.WriteString(w, "ready\n")
}

// handleAdminBudget serves POST /v1/admin/budget?workers=N: hot-reload
// the admission controller's worker budget without dropping queued
// requests (growth grants queued waiters immediately; shrink takes
// effect as leases release). GET returns the current budget. The same
// reload path backs SIGHUP in cmd/fzmodd.
func (s *Server) handleAdminBudget(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		// fallthrough to the response below
	case http.MethodPost:
		n, err := strconv.Atoi(r.URL.Query().Get("workers"))
		if err != nil || n < 1 {
			s.badRequest(w, "workers %q: want a positive integer", r.URL.Query().Get("workers"))
			return
		}
		s.adm.Resize(n)
	default:
		http.Error(w, "GET or POST", http.StatusMethodNotAllowed)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{
		"budget": s.adm.Budget(),
		"in_use": s.adm.InUse(),
		"queued": s.adm.QueueDepth(),
	})
}
