package serve

import (
	"fmt"
	"io"
	"sync/atomic"
)

// metrics is the server's flat counter set, in the spirit of a
// single-struct metrics block: one atomic per fact, no registry. The
// /metrics endpoint renders them in the Prometheus text exposition
// format together with gauges read live from the admission controller,
// the batcher, the slab cache and Platform.Snapshot.
type metrics struct {
	reqCompress   atomic.Int64
	reqDecompress atomic.Int64
	reqProbe      atomic.Int64
	reqRegion     atomic.Int64
	reqObjects    atomic.Int64

	errBadRequest atomic.Int64
	errInternal   atomic.Int64
	errShed       atomic.Int64
	errCanceled   atomic.Int64

	bytesIn  atomic.Int64
	bytesOut atomic.Int64
	// proofVerified counts chunk payloads that passed Merkle inclusion
	// verification during region reads (v2 artifacts only; v1 and
	// monolithic containers carry no root and contribute nothing).
	proofVerified atomic.Int64
	// rawBytes / compressedBytes feed the aggregate compression ratio:
	// uncompressed field volume vs. container volume across compresses.
	rawBytes        atomic.Int64
	compressedBytes atomic.Int64
}

// writeMetrics renders the full exposition: serve counters, admission
// and batcher state, slab-cache accounting, and the platform snapshot.
func (s *Server) writeMetrics(w io.Writer) {
	m := &s.met
	snap := s.p.Snapshot()
	cs := s.cache.Stats()

	fmt.Fprintf(w, "# HELP fzmodd_requests_total Requests served, by endpoint.\n")
	fmt.Fprintf(w, "# TYPE fzmodd_requests_total counter\n")
	fmt.Fprintf(w, "fzmodd_requests_total{endpoint=%q} %d\n", "compress", m.reqCompress.Load())
	fmt.Fprintf(w, "fzmodd_requests_total{endpoint=%q} %d\n", "decompress", m.reqDecompress.Load())
	fmt.Fprintf(w, "fzmodd_requests_total{endpoint=%q} %d\n", "probe", m.reqProbe.Load())
	fmt.Fprintf(w, "fzmodd_requests_total{endpoint=%q} %d\n", "region", m.reqRegion.Load())
	fmt.Fprintf(w, "fzmodd_requests_total{endpoint=%q} %d\n", "objects", m.reqObjects.Load())

	fmt.Fprintf(w, "# HELP fzmodd_errors_total Failed requests, by class.\n")
	fmt.Fprintf(w, "# TYPE fzmodd_errors_total counter\n")
	fmt.Fprintf(w, "fzmodd_errors_total{class=%q} %d\n", "bad_request", m.errBadRequest.Load())
	fmt.Fprintf(w, "fzmodd_errors_total{class=%q} %d\n", "internal", m.errInternal.Load())
	fmt.Fprintf(w, "fzmodd_errors_total{class=%q} %d\n", "shed", m.errShed.Load())
	fmt.Fprintf(w, "fzmodd_errors_total{class=%q} %d\n", "canceled", m.errCanceled.Load())

	fmt.Fprintf(w, "# TYPE fzmodd_bytes_in_total counter\n")
	fmt.Fprintf(w, "fzmodd_bytes_in_total %d\n", m.bytesIn.Load())
	fmt.Fprintf(w, "# TYPE fzmodd_bytes_out_total counter\n")
	fmt.Fprintf(w, "fzmodd_bytes_out_total %d\n", m.bytesOut.Load())
	fmt.Fprintf(w, "# TYPE fzmodd_raw_bytes_total counter\n")
	fmt.Fprintf(w, "fzmodd_raw_bytes_total %d\n", m.rawBytes.Load())
	fmt.Fprintf(w, "# TYPE fzmodd_compressed_bytes_total counter\n")
	fmt.Fprintf(w, "fzmodd_compressed_bytes_total %d\n", m.compressedBytes.Load())
	fmt.Fprintf(w, "# HELP fzmodd_region_proofs_verified_total Chunk payloads that passed Merkle proof verification in region reads.\n")
	fmt.Fprintf(w, "# TYPE fzmodd_region_proofs_verified_total counter\n")
	fmt.Fprintf(w, "fzmodd_region_proofs_verified_total %d\n", m.proofVerified.Load())
	fmt.Fprintf(w, "# HELP fzmodd_compression_ratio Aggregate raw/compressed volume.\n")
	fmt.Fprintf(w, "# TYPE fzmodd_compression_ratio gauge\n")
	fmt.Fprintf(w, "fzmodd_compression_ratio %g\n", ratio(m.rawBytes.Load(), m.compressedBytes.Load()))

	fmt.Fprintf(w, "# HELP fzmodd_admission_budget Total leasable workers.\n")
	fmt.Fprintf(w, "# TYPE fzmodd_admission_budget gauge\n")
	fmt.Fprintf(w, "fzmodd_admission_budget %d\n", s.adm.Budget())
	fmt.Fprintf(w, "# TYPE fzmodd_admission_in_use gauge\n")
	fmt.Fprintf(w, "fzmodd_admission_in_use %d\n", s.adm.InUse())
	fmt.Fprintf(w, "# HELP fzmodd_queue_depth Requests waiting for a worker lease.\n")
	fmt.Fprintf(w, "# TYPE fzmodd_queue_depth gauge\n")
	fmt.Fprintf(w, "fzmodd_queue_depth %d\n", s.adm.QueueDepth())
	fmt.Fprintf(w, "# TYPE fzmodd_leases_granted_total counter\n")
	fmt.Fprintf(w, "fzmodd_leases_granted_total %d\n", s.adm.Granted())
	fmt.Fprintf(w, "# HELP fzmodd_shed_total Requests refused by the admission controller.\n")
	fmt.Fprintf(w, "# TYPE fzmodd_shed_total counter\n")
	fmt.Fprintf(w, "fzmodd_shed_total %d\n", s.adm.Shed())

	fmt.Fprintf(w, "# HELP fzmodd_batches_total Coalesced batches, by flush trigger.\n")
	fmt.Fprintf(w, "# TYPE fzmodd_batches_total counter\n")
	fmt.Fprintf(w, "fzmodd_batches_total{trigger=%q} %d\n", "size", s.batch.FlushesBySize())
	fmt.Fprintf(w, "fzmodd_batches_total{trigger=%q} %d\n", "wait", s.batch.FlushesByWait())
	fmt.Fprintf(w, "# TYPE fzmodd_batched_requests_total counter\n")
	fmt.Fprintf(w, "fzmodd_batched_requests_total %d\n", s.batch.Items())

	fmt.Fprintf(w, "# HELP fzmodd_pool_hit_rate Scratch-pool slab reuse rate.\n")
	fmt.Fprintf(w, "# TYPE fzmodd_pool_hit_rate gauge\n")
	fmt.Fprintf(w, "fzmodd_pool_hit_rate %g\n", snap.Pool.HitRate())
	fmt.Fprintf(w, "# TYPE fzmodd_pool_gets_total counter\n")
	fmt.Fprintf(w, "fzmodd_pool_gets_total %d\n", snap.Pool.Gets)
	fmt.Fprintf(w, "# TYPE fzmodd_pool_puts_total counter\n")
	fmt.Fprintf(w, "fzmodd_pool_puts_total %d\n", snap.Pool.Puts)

	fmt.Fprintf(w, "# HELP fzmodd_slab_cache_hit_rate Region slab-cache hit rate.\n")
	fmt.Fprintf(w, "# TYPE fzmodd_slab_cache_hit_rate gauge\n")
	fmt.Fprintf(w, "fzmodd_slab_cache_hit_rate %g\n", ratio64(cs.Hits, cs.Hits+cs.Misses))
	fmt.Fprintf(w, "# TYPE fzmodd_slab_cache_hits_total counter\n")
	fmt.Fprintf(w, "fzmodd_slab_cache_hits_total %d\n", cs.Hits)
	fmt.Fprintf(w, "# TYPE fzmodd_slab_cache_misses_total counter\n")
	fmt.Fprintf(w, "fzmodd_slab_cache_misses_total %d\n", cs.Misses)
	fmt.Fprintf(w, "# TYPE fzmodd_slab_cache_evictions_total counter\n")
	fmt.Fprintf(w, "fzmodd_slab_cache_evictions_total %d\n", cs.Evictions)
	fmt.Fprintf(w, "# TYPE fzmodd_slab_cache_bytes gauge\n")
	fmt.Fprintf(w, "fzmodd_slab_cache_bytes %d\n", cs.Bytes)
	fmt.Fprintf(w, "# HELP fzmodd_slab_singleflight_dedup_total Chunk decodes served by another reader's in-flight decode.\n")
	fmt.Fprintf(w, "# TYPE fzmodd_slab_singleflight_dedup_total counter\n")
	fmt.Fprintf(w, "fzmodd_slab_singleflight_dedup_total %d\n", cs.DedupHits)
	fmt.Fprintf(w, "# HELP fzmodd_slab_flights In-progress chunk decodes.\n")
	fmt.Fprintf(w, "# TYPE fzmodd_slab_flights gauge\n")
	fmt.Fprintf(w, "fzmodd_slab_flights %d\n", cs.Flights)

	fmt.Fprintf(w, "# HELP fzmodd_draining Whether the server is draining (1) or serving (0).\n")
	fmt.Fprintf(w, "# TYPE fzmodd_draining gauge\n")
	fmt.Fprintf(w, "fzmodd_draining %d\n", b2i(s.draining.Load()))
	fmt.Fprintf(w, "# HELP fzmodd_inflight_requests Data-plane requests currently executing.\n")
	fmt.Fprintf(w, "# TYPE fzmodd_inflight_requests gauge\n")
	fmt.Fprintf(w, "fzmodd_inflight_requests %d\n", s.InFlight())

	fmt.Fprintf(w, "# TYPE fzmodd_kernel_launches_total counter\n")
	fmt.Fprintf(w, "fzmodd_kernel_launches_total %d\n", snap.KernelLaunches)
	fmt.Fprintf(w, "# TYPE fzmodd_host_launches_total counter\n")
	fmt.Fprintf(w, "fzmodd_host_launches_total %d\n", snap.HostLaunches)
	fmt.Fprintf(w, "# HELP fzmodd_kernel_tier Active SIMD kernel tier (1 = active).\n")
	fmt.Fprintf(w, "# TYPE fzmodd_kernel_tier gauge\n")
	fmt.Fprintf(w, "fzmodd_kernel_tier{tier=%q} 1\n", snap.Kernels)
}

func ratio(raw, compressed int64) float64 {
	if compressed <= 0 {
		return 0
	}
	return float64(raw) / float64(compressed)
}

func b2i(v bool) int {
	if v {
		return 1
	}
	return 0
}

func ratio64(num, den int64) float64 {
	if den <= 0 {
		return 0
	}
	return float64(num) / float64(den)
}
