package serve

import (
	"context"
	"sync"
	"testing"
	"time"

	"fzmod/internal/grid"
)

// collectBatches returns a run func that records every sealed batch and
// acknowledges each item.
func collectBatches(mu *sync.Mutex, batches *[][]*batchItem) func([]*batchItem) {
	return func(items []*batchItem) {
		now := time.Now()
		mu.Lock()
		*batches = append(*batches, items)
		mu.Unlock()
		for _, it := range items {
			it.timing.Started, it.timing.Done = now, now
			it.resp <- batchResult{timing: it.timing}
		}
	}
}

func testItem(elems int) *batchItem {
	return &batchItem{
		req:  &compressReq{ctx: context.Background(), vals: make([]float32, elems), dims: grid.D1(elems)},
		resp: make(chan batchResult, 1),
	}
}

func TestBatcherFlushesOnItemCount(t *testing.T) {
	var mu sync.Mutex
	var batches [][]*batchItem
	b := newBatcher(3, 1<<30, time.Hour, collectBatches(&mu, &batches))
	items := []*batchItem{testItem(8), testItem(8), testItem(8)}
	for _, it := range items {
		if err := b.enqueue(it); err != nil {
			t.Fatal(err)
		}
	}
	for _, it := range items {
		<-it.resp
	}
	mu.Lock()
	defer mu.Unlock()
	if len(batches) != 1 || len(batches[0]) != 3 {
		t.Fatalf("batches = %d of sizes %v, want one batch of 3", len(batches), sizes(batches))
	}
	if b.FlushesBySize() != 1 || b.FlushesByWait() != 0 {
		t.Fatalf("flush counters size=%d wait=%d, want 1, 0", b.FlushesBySize(), b.FlushesByWait())
	}
}

func TestBatcherFlushesOnByteSize(t *testing.T) {
	var mu sync.Mutex
	var batches [][]*batchItem
	// 100-float items are 400 bytes each; the 600-byte cap seals at two.
	b := newBatcher(100, 600, time.Hour, collectBatches(&mu, &batches))
	a, c := testItem(100), testItem(100)
	b.enqueue(a)
	b.enqueue(c)
	<-a.resp
	<-c.resp
	mu.Lock()
	defer mu.Unlock()
	if len(batches) != 1 || len(batches[0]) != 2 {
		t.Fatalf("batches = %d of sizes %v, want one batch of 2", len(batches), sizes(batches))
	}
}

func TestBatcherFlushesOnMaxWait(t *testing.T) {
	var mu sync.Mutex
	var batches [][]*batchItem
	b := newBatcher(100, 1<<30, 5*time.Millisecond, collectBatches(&mu, &batches))
	it := testItem(8)
	t0 := time.Now()
	if err := b.enqueue(it); err != nil {
		t.Fatal(err)
	}
	res := <-it.resp
	if waited := time.Since(t0); waited < 5*time.Millisecond {
		t.Fatalf("flushed after %v, before the 5ms max-wait", waited)
	}
	if b.FlushesByWait() != 1 || b.FlushesBySize() != 0 {
		t.Fatalf("flush counters wait=%d size=%d, want 1, 0", b.FlushesByWait(), b.FlushesBySize())
	}
	if res.timing.Queued() < 0 || res.timing.Flush() < 0 || res.timing.Execute() < 0 {
		t.Fatalf("timing not monotonic: %+v", res.timing)
	}
	if res.timing.Enqueued.IsZero() || res.timing.Flushed.IsZero() || res.timing.Started.IsZero() || res.timing.Done.IsZero() {
		t.Fatalf("timing incomplete: %+v", res.timing)
	}
}

// TestBatcherStaleTimerDoesNotDoubleFlush: a size flush must neutralize
// the armed max-wait timer so it cannot seal the next batch early.
func TestBatcherStaleTimerDoesNotDoubleFlush(t *testing.T) {
	var mu sync.Mutex
	var batches [][]*batchItem
	b := newBatcher(2, 1<<30, 20*time.Millisecond, collectBatches(&mu, &batches))
	a, c := testItem(8), testItem(8)
	b.enqueue(a)
	b.enqueue(c) // size flush; the timer from a's enqueue is now stale
	<-a.resp
	<-c.resp
	d := testItem(8)
	b.enqueue(d)
	time.Sleep(30 * time.Millisecond) // let both the stale and live timers fire
	<-d.resp
	mu.Lock()
	defer mu.Unlock()
	if len(batches) != 2 || len(batches[0]) != 2 || len(batches[1]) != 1 {
		t.Fatalf("batches of sizes %v, want [2 1]", sizes(batches))
	}
	if b.FlushesBySize() != 1 || b.FlushesByWait() != 1 {
		t.Fatalf("flush counters size=%d wait=%d, want 1, 1", b.FlushesBySize(), b.FlushesByWait())
	}
}

func TestBatcherCloseFlushesAndRefuses(t *testing.T) {
	var mu sync.Mutex
	var batches [][]*batchItem
	b := newBatcher(100, 1<<30, time.Hour, collectBatches(&mu, &batches))
	it := testItem(8)
	b.enqueue(it)
	b.close()
	<-it.resp
	if err := b.enqueue(testItem(8)); err != ErrClosed {
		t.Fatalf("enqueue after close = %v, want ErrClosed", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(batches) != 1 {
		t.Fatalf("close flushed %d batches, want 1", len(batches))
	}
}

func sizes(batches [][]*batchItem) []int {
	out := make([]int, len(batches))
	for i, b := range batches {
		out[i] = len(b)
	}
	return out
}
