package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"fzmod/internal/device"
	"fzmod/internal/grid"
	fzmetrics "fzmod/internal/metrics"
	"fzmod/internal/preprocess"
	"fzmod/internal/sdrbench"
)

// testServer builds a server over a small deterministic platform.
func testServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(device.NewTestPlatform(), cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

// testFieldBytes renders a synthetic field as the daemon's wire format.
func testFieldBytes(t *testing.T, dims grid.Dims) ([]float32, []byte) {
	t.Helper()
	vals := sdrbench.GenHURR(dims, 7)
	var buf bytes.Buffer
	if err := device.WriteF32(&buf, vals, make([]byte, 64<<10)); err != nil {
		t.Fatal(err)
	}
	return vals, buf.Bytes()
}

func doPost(t *testing.T, url string, body []byte) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	out, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

func doReq(t *testing.T, method, url string, body []byte) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(method, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	out, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

// decodeF32 parses a little-endian float32 response body.
func decodeF32(t *testing.T, blob []byte) []float32 {
	t.Helper()
	if len(blob)%4 != 0 {
		t.Fatalf("f32 body length %d not a multiple of 4", len(blob))
	}
	out := make([]float32, len(blob)/4)
	if err := device.ReadF32(bytes.NewReader(blob), out, make([]byte, 64<<10)); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestServeCompressDecompressRoundtrip(t *testing.T) {
	_, ts := testServer(t, Config{})
	dims := grid.D3(16, 12, 10)
	vals, body := testFieldBytes(t, dims)

	resp, blob := doPost(t, ts.URL+"/v1/compress?dims=16x12x10&eb=1e-3", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("compress status %d: %s", resp.StatusCode, blob)
	}
	if resp.Header.Get("X-Fzmod-Ratio") == "" || resp.Header.Get("X-Fzmod-Queue-Ns") == "" {
		t.Fatal("compress response missing ratio/timing headers")
	}

	resp, raw := doPost(t, ts.URL+"/v1/decompress", blob)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("decompress status %d: %s", resp.StatusCode, raw)
	}
	if got := resp.Header.Get("X-Fzmod-Dims"); got != "16x12x10" {
		t.Fatalf("X-Fzmod-Dims = %q, want 16x12x10", got)
	}
	dec := decodeF32(t, raw)
	if len(dec) != dims.N() {
		t.Fatalf("decompressed %d values, want %d", len(dec), dims.N())
	}
	if i := fzmetrics.VerifyBound(vals, dec, relResolved(t, vals, 1e-3)); i != -1 {
		t.Fatalf("bound violated at %d", i)
	}
}

// relResolved resolves a relative bound the way the pipeline does.
func relResolved(t *testing.T, vals []float32, rel float64) float64 {
	t.Helper()
	p := device.NewTestPlatform()
	abs, _, err := preprocess.Resolve(p, device.Host, vals, preprocess.RelBound(rel))
	if err != nil {
		t.Fatal(err)
	}
	return abs
}

func TestServeCompressBatchedAndDirectAgree(t *testing.T) {
	// Threshold between the two payload sizes: the small field batches,
	// the same field compressed with batching disabled must byte-match.
	sBatched, tsBatched := testServer(t, Config{BatchThreshold: 1 << 20})
	_, tsDirect := testServer(t, Config{BatchThreshold: -1})
	dims := grid.D3(16, 12, 10)
	_, body := testFieldBytes(t, dims)
	url := "/v1/compress?dims=16x12x10&eb=1e-3"

	respB, blobB := doPost(t, tsBatched.URL+url, body)
	respD, blobD := doPost(t, tsDirect.URL+url, body)
	if respB.StatusCode != http.StatusOK || respD.StatusCode != http.StatusOK {
		t.Fatalf("status %d / %d", respB.StatusCode, respD.StatusCode)
	}
	if respB.Header.Get("X-Fzmod-Batched") != "true" {
		t.Fatal("small payload did not take the batched path")
	}
	if respD.Header.Get("X-Fzmod-Batched") != "false" {
		t.Fatal("batching-disabled server still batched")
	}
	if !bytes.Equal(blobB, blobD) {
		t.Fatal("batched and direct compression produced different containers")
	}
	if sBatched.batch.Items() == 0 {
		t.Fatal("batcher saw no items")
	}
}

func TestServeProbe(t *testing.T) {
	_, ts := testServer(t, Config{})
	dims := grid.D3(24, 20, 32)
	_, body := testFieldBytes(t, dims)
	// Force a chunked container so the probe reports several chunks.
	resp, blob := doPost(t, ts.URL+fmt.Sprintf("/v1/compress?dims=24x20x32&eb=1e-3&chunk=%d", 24*20*8), body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("compress status %d: %s", resp.StatusCode, blob)
	}
	resp, out := doPost(t, ts.URL+"/v1/probe", blob)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("probe status %d: %s", resp.StatusCode, out)
	}
	var pr probeResponse
	if err := json.Unmarshal(out, &pr); err != nil {
		t.Fatal(err)
	}
	if pr.Dims != [3]int{24, 20, 32} {
		t.Fatalf("probe dims %v, want [24 20 32]", pr.Dims)
	}
	if pr.Chunks != 4 {
		t.Fatalf("probe chunks %d, want 4", pr.Chunks)
	}
	if pr.ArtifactBytes != int64(len(blob)) {
		t.Fatalf("probe artifact bytes %d, want %d", pr.ArtifactBytes, len(blob))
	}
}

func TestServeObjectsAndRegion(t *testing.T) {
	_, ts := testServer(t, Config{})
	dims := grid.D3(24, 20, 32)
	vals, body := testFieldBytes(t, dims)
	resp, blob := doPost(t, ts.URL+fmt.Sprintf("/v1/compress?dims=24x20x32&eb=1e-3&chunk=%d", 24*20*8), body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("compress status %d: %s", resp.StatusCode, blob)
	}

	resp, _ = doReq(t, http.MethodPut, ts.URL+"/v1/objects/field", blob)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("put status %d, want 201", resp.StatusCode)
	}
	resp, got := doReq(t, http.MethodGet, ts.URL+"/v1/objects/field", nil)
	if resp.StatusCode != http.StatusOK || !bytes.Equal(got, blob) {
		t.Fatalf("get returned status %d, %d bytes; want the stored container", resp.StatusCode, len(got))
	}

	// A region read crossing a chunk boundary must match the source field.
	resp, raw := doReq(t, http.MethodGet, ts.URL+"/v1/objects/field/region?sel=2:14,3:17,6:26", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("region status %d: %s", resp.StatusCode, raw)
	}
	if resp.Header.Get("X-Fzmod-Region-Chunks") == "" {
		t.Fatal("region response missing chunk accounting headers")
	}
	dec := decodeF32(t, raw)
	absEB := relResolved(t, vals, 1e-3)
	i := 0
	for z := 6; z < 26; z++ {
		for y := 3; y < 17; y++ {
			for x := 2; x < 14; x++ {
				want := vals[(z*20+y)*24+x]
				diff := float64(dec[i]) - float64(want)
				if diff < -absEB || diff > absEB {
					t.Fatalf("region value (%d,%d,%d) = %g, want within %g of %g", x, y, z, dec[i], absEB, want)
				}
				i++
			}
		}
	}

	// Repeat read: served from the shared slab cache.
	doReq(t, http.MethodGet, ts.URL+"/v1/objects/field/region?sel=2:14,3:17,6:26", nil)
	resp, metricsOut := doReq(t, http.MethodGet, ts.URL+"/metrics", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status %d", resp.StatusCode)
	}
	if !strings.Contains(string(metricsOut), "fzmodd_slab_cache_hits_total") {
		t.Fatal("metrics missing slab cache counters")
	}

	resp, _ = doReq(t, http.MethodDelete, ts.URL+"/v1/objects/field", nil)
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete status %d, want 204", resp.StatusCode)
	}
	resp, _ = doReq(t, http.MethodGet, ts.URL+"/v1/objects/field", nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("get after delete status %d, want 404", resp.StatusCode)
	}
}

func TestServeMalformedRequests(t *testing.T) {
	_, ts := testServer(t, Config{})
	dims := grid.D3(8, 8, 8)
	_, body := testFieldBytes(t, dims)
	cases := []struct {
		name   string
		method string
		url    string
		body   []byte
	}{
		{"missing dims", http.MethodPost, "/v1/compress?eb=1e-3", body},
		{"bad dims", http.MethodPost, "/v1/compress?dims=0x8x8&eb=1e-3", body},
		{"missing eb", http.MethodPost, "/v1/compress?dims=8x8x8", body},
		{"negative eb", http.MethodPost, "/v1/compress?dims=8x8x8&eb=-1", body},
		{"bad mode", http.MethodPost, "/v1/compress?dims=8x8x8&eb=1e-3&mode=wat", body},
		{"bad preset", http.MethodPost, "/v1/compress?dims=8x8x8&eb=1e-3&preset=wat", body},
		{"bad workers", http.MethodPost, "/v1/compress?dims=8x8x8&eb=1e-3&workers=0", body},
		{"short body", http.MethodPost, "/v1/compress?dims=8x8x8&eb=1e-3", body[:100]},
		{"long body", http.MethodPost, "/v1/compress?dims=8x8x8&eb=1e-3", append(body, 0)},
		{"junk decompress", http.MethodPost, "/v1/decompress", []byte("not a container")},
		{"junk probe", http.MethodPost, "/v1/probe", []byte("junk")},
		{"junk object", http.MethodPut, "/v1/objects/x", []byte("junk")},
		{"nested object name", http.MethodPut, "/v1/objects/a/b", body},
	}
	for _, tc := range cases {
		resp, out := doReq(t, tc.method, ts.URL+tc.url, tc.body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (%s)", tc.name, resp.StatusCode, bytes.TrimSpace(out))
		}
	}
	// Wrong methods are 405, missing objects 404.
	resp, _ := doReq(t, http.MethodGet, ts.URL+"/v1/compress?dims=8x8x8&eb=1e-3", nil)
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET compress: status %d, want 405", resp.StatusCode)
	}
	resp, _ = doReq(t, http.MethodGet, ts.URL+"/v1/objects/ghost/region?sel=0:1", nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("region of missing object: status %d, want 404", resp.StatusCode)
	}
}

func TestServeRegionSelectionOutOfBounds(t *testing.T) {
	_, ts := testServer(t, Config{})
	dims := grid.D3(24, 20, 32)
	_, body := testFieldBytes(t, dims)
	_, blob := doPost(t, ts.URL+fmt.Sprintf("/v1/compress?dims=24x20x32&eb=1e-3&chunk=%d", 24*20*8), body)
	doReq(t, http.MethodPut, ts.URL+"/v1/objects/f", blob)
	for _, sel := range []string{"0:100", "5:2", "0:4,0:4,0:4,0:4", "a:b"} {
		resp, out := doReq(t, http.MethodGet, ts.URL+"/v1/objects/f/region?sel="+sel, nil)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("sel %q: status %d, want 400 (%s)", sel, resp.StatusCode, bytes.TrimSpace(out))
		}
	}
}

func TestServeShedsWith429(t *testing.T) {
	// Budget 1, no queue, batching off: a held lease sheds everyone else.
	s, ts := testServer(t, Config{Workers: 1, MaxQueue: -1, BatchThreshold: -1})
	lease, err := s.adm.Acquire(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	dims := grid.D3(8, 8, 8)
	_, body := testFieldBytes(t, dims)
	resp, out := doPost(t, ts.URL+"/v1/compress?dims=8x8x8&eb=1e-3", body)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d (%s), want 429", resp.StatusCode, bytes.TrimSpace(out))
	}
	lease.Release()
	resp, out = doPost(t, ts.URL+"/v1/compress?dims=8x8x8&eb=1e-3", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d after release (%s), want 200", resp.StatusCode, bytes.TrimSpace(out))
	}
	if s.adm.Shed() != 1 {
		t.Fatalf("shed %d, want 1", s.adm.Shed())
	}
}

// TestServeRequestTimeoutAbortsGraph: the ISSUE's cancellation
// acceptance — an in-flight request's deadline aborts its task graph
// mid-flight with 503, and the shared pool still balances (no slab leak,
// no stuck workers).
func TestServeRequestTimeoutAbortsGraph(t *testing.T) {
	s, ts := testServer(t, Config{RequestTimeout: time.Nanosecond, BatchThreshold: -1})
	dims := grid.D3(24, 20, 32)
	_, body := testFieldBytes(t, dims)
	resp, out := doPost(t, ts.URL+"/v1/compress?dims=24x20x32&eb=1e-3", body)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d (%s), want 503", resp.StatusCode, bytes.TrimSpace(out))
	}
	// The canceled graph must return every pooled slab it checked out.
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := s.p.ScratchPool().Stats()
		if st.Gets == st.Puts {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("scratch pool unbalanced after canceled request: gets=%d puts=%d", st.Gets, st.Puts)
		}
		time.Sleep(time.Millisecond)
	}
	if s.adm.InUse() != 0 {
		t.Fatalf("in use %d after canceled request, want 0", s.adm.InUse())
	}
}

func TestServeMetricsExposition(t *testing.T) {
	_, ts := testServer(t, Config{})
	dims := grid.D3(8, 8, 8)
	_, body := testFieldBytes(t, dims)
	doPost(t, ts.URL+"/v1/compress?dims=8x8x8&eb=1e-3", body)
	resp, out := doReq(t, http.MethodGet, ts.URL+"/metrics", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status %d", resp.StatusCode)
	}
	text := string(out)
	for _, want := range []string{
		`fzmodd_requests_total{endpoint="compress"} 1`,
		"fzmodd_admission_budget",
		"fzmodd_queue_depth 0",
		"fzmodd_pool_hit_rate",
		"fzmodd_kernel_tier{tier=",
		"fzmodd_compression_ratio",
		"fzmodd_batches_total{trigger=",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	// Every exposition line is `name[{labels}] value` or a comment — the
	// flat-text contract scrapers rely on.
	for _, line := range strings.Split(strings.TrimSpace(text), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if fields := strings.Fields(line); len(fields) != 2 {
			t.Errorf("malformed metrics line %q", line)
		}
	}
}

// TestServeConcurrentMixedLoad drives every endpoint from many clients at
// once over one shared platform — the -race multi-tenant smoke at the
// HTTP layer.
func TestServeConcurrentMixedLoad(t *testing.T) {
	s, ts := testServer(t, Config{Workers: 4, MaxQueue: 128, MaxWait: 30 * time.Second})
	dims := grid.D3(24, 20, 32)
	_, body := testFieldBytes(t, dims)
	url := fmt.Sprintf("/v1/compress?dims=24x20x32&eb=1e-3&chunk=%d", 24*20*8)
	_, blob := doPost(t, ts.URL+url, body)
	doReq(t, http.MethodPut, ts.URL+"/v1/objects/shared", blob)

	const clients = 8
	var wg sync.WaitGroup
	errs := make([]error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for it := 0; it < 3; it++ {
				var resp *http.Response
				var err error
				switch (i + it) % 3 {
				case 0:
					resp, err = http.Post(ts.URL+url, "application/octet-stream", bytes.NewReader(body))
				case 1:
					resp, err = http.Post(ts.URL+"/v1/decompress", "application/octet-stream", bytes.NewReader(blob))
				case 2:
					resp, err = http.Get(ts.URL + "/v1/objects/shared/region?sel=0:12,0:10,0:16")
				}
				if err != nil {
					errs[i] = err
					return
				}
				got, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs[i] = fmt.Errorf("client %d iter %d: status %d: %s", i, it, resp.StatusCode, bytes.TrimSpace(got))
					return
				}
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if peak, budget := s.adm.Peak(), s.adm.Budget(); peak > budget {
		t.Fatalf("peak %d exceeded budget %d", peak, budget)
	}
	st := s.p.ScratchPool().Stats()
	if st.Gets != st.Puts {
		t.Fatalf("scratch pool unbalanced: gets=%d puts=%d", st.Gets, st.Puts)
	}
}
