package serve

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"fzmod/internal/grid"
	"fzmod/internal/preprocess"
)

// Small compress requests are coalesced: instead of each paying its own
// admission round-trip, pending requests accumulate until a size trigger
// (items or raw bytes) or a max-wait trigger fires, then the whole batch
// executes under one worker lease, each caller receiving its result on
// its own response channel along with queue/flush/execute timestamps.

// ErrClosed marks work submitted to a draining server.
var ErrClosed = errors.New("serve: server closed")

// BatchTiming records the life of one coalesced request: Enqueued when
// the handler queued it, Flushed when a trigger sealed its batch, Started
// when its own compression began, Done when its result was ready.
type BatchTiming struct {
	Enqueued time.Time
	Flushed  time.Time
	Started  time.Time
	Done     time.Time
}

// Queued is the time spent waiting for a flush trigger.
func (t BatchTiming) Queued() time.Duration { return t.Flushed.Sub(t.Enqueued) }

// Flush is the time between the flush trigger and this request's
// execution start (admission wait plus earlier batch members).
func (t BatchTiming) Flush() time.Duration { return t.Started.Sub(t.Flushed) }

// Execute is the compression time itself.
func (t BatchTiming) Execute() time.Duration { return t.Done.Sub(t.Started) }

// compressReq is one parsed compress request, batched or direct.
type compressReq struct {
	ctx        context.Context
	preset     string
	vals       []float32
	dims       grid.Dims
	eb         preprocess.ErrorBound
	chunkElems int
	workers    int
}

// batchResult is what a coalesced caller receives on its channel.
type batchResult struct {
	blob   []byte
	timing BatchTiming
	err    error
}

// batchItem couples a request with its per-caller response channel.
type batchItem struct {
	req    *compressReq
	resp   chan batchResult
	timing BatchTiming
}

// Batcher coalesces batchItems and hands sealed batches to run (on a
// fresh goroutine, in seal order). Flush triggers: maxItems pending,
// maxBytes of raw payload pending, or maxWait since the batch's first
// item. run must deliver exactly one result to every item.
type Batcher struct {
	maxItems int
	maxBytes int
	maxWait  time.Duration
	run      func([]*batchItem)

	mu      sync.Mutex
	pending []*batchItem
	bytes   int
	gen     int // bumps on every flush; stale timers no-op
	timer   *time.Timer
	closed  bool
	runs    sync.WaitGroup // in-flight run goroutines; close waits them out

	flushSize atomic.Int64
	flushWait atomic.Int64
	items     atomic.Int64
}

// newBatcher builds a batcher over run. maxItems and maxBytes floor at 1;
// maxWait <= 0 flushes every enqueue immediately (batching disabled in
// all but name).
func newBatcher(maxItems, maxBytes int, maxWait time.Duration, run func([]*batchItem)) *Batcher {
	if maxItems < 1 {
		maxItems = 1
	}
	if maxBytes < 1 {
		maxBytes = 1
	}
	return &Batcher{maxItems: maxItems, maxBytes: maxBytes, maxWait: maxWait, run: run}
}

// enqueue admits one item, arming the max-wait timer with the batch's
// first item and flushing on a size trigger.
func (b *Batcher) enqueue(it *batchItem) error {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return ErrClosed
	}
	it.timing.Enqueued = time.Now()
	b.pending = append(b.pending, it)
	b.bytes += len(it.req.vals) * 4
	b.items.Add(1)
	if len(b.pending) >= b.maxItems || b.bytes >= b.maxBytes || b.maxWait <= 0 {
		b.flushLocked(&b.flushSize)
	} else if len(b.pending) == 1 {
		gen := b.gen
		b.timer = time.AfterFunc(b.maxWait, func() { b.flushGen(gen) })
	}
	b.mu.Unlock()
	return nil
}

// flushGen fires the max-wait trigger for generation gen; a stale gen
// means the batch already flushed on size.
func (b *Batcher) flushGen(gen int) {
	b.mu.Lock()
	if b.gen == gen && len(b.pending) > 0 {
		b.flushLocked(&b.flushWait)
	}
	b.mu.Unlock()
}

// flushLocked seals the pending batch, stamps Flushed, and hands it to
// run on a fresh goroutine. Caller holds mu.
func (b *Batcher) flushLocked(trigger *atomic.Int64) {
	items := b.pending
	b.pending = nil
	b.bytes = 0
	b.gen++
	if b.timer != nil {
		b.timer.Stop()
		b.timer = nil
	}
	if len(items) == 0 {
		return
	}
	trigger.Add(1)
	now := time.Now()
	for _, it := range items {
		it.timing.Flushed = now
	}
	b.runs.Add(1)
	go func() {
		defer b.runs.Done()
		b.run(items)
	}()
}

// close flushes whatever is pending, refuses further enqueues, and waits
// for every in-flight batch run to deliver its results — after close
// returns, the batcher owns no goroutines and its max-wait timer is
// stopped.
func (b *Batcher) close() {
	b.mu.Lock()
	if !b.closed {
		b.closed = true
		b.flushLocked(&b.flushSize)
	}
	b.mu.Unlock()
	b.runs.Wait()
}

// FlushesBySize and FlushesByWait report how many batches each trigger
// sealed; Items the total coalesced requests.
func (b *Batcher) FlushesBySize() int64 { return b.flushSize.Load() }

// FlushesByWait reports batches sealed by the max-wait timer.
func (b *Batcher) FlushesByWait() int64 { return b.flushWait.Load() }

// Items reports the total requests that went through the batcher.
func (b *Batcher) Items() int64 { return b.items.Load() }
