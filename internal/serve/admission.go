// Package serve is the multi-tenant compression service behind cmd/fzmodd:
// an HTTP daemon exposing compress / decompress / probe / region-read
// endpoints over one warm shared device.Platform, BufPool and SlabCache.
// An admission controller treats the platform's worker count as a global
// parallelism budget — every request leases a slice of it, excess requests
// queue with a max-wait and are shed with 429 beyond a bound — and small
// compress requests coalesce into batches. /metrics exports flat counters
// fed from the serve-level request accounting plus Platform.Snapshot.
package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"
)

// ErrOverloaded marks a request the admission controller refused: the
// wait queue was full, or the request queued longer than the configured
// max-wait. HTTP handlers map it to 429 Too Many Requests.
var ErrOverloaded = errors.New("serve: overloaded")

// Admission is a counting-semaphore admission controller over a global
// worker budget. A request Acquires a lease of n workers; while the
// budget is exhausted requests wait in FIFO order (a waiter is only
// granted when it reaches the head and its lease fits — larger requests
// are not starved by smaller ones slipping past). Waiters beyond maxQueue
// and waiters that outwait maxWait are shed with ErrOverloaded.
type Admission struct {
	maxQueue int
	maxWait  time.Duration

	mu     sync.Mutex
	budget int // mutable: Resize hot-reloads it under mu
	inUse  int
	peak   int
	queue  []*waiter

	granted int64
	queued  int64
	shed    int64
}

// waiter.n is the width the waiter will be granted; a shrink may clamp it
// while queued (under mu), so Acquire reads it back only after the grant
// channel closes.
type waiter struct {
	n       int
	granted chan struct{}
}

// NewAdmission sizes a controller: budget is the total concurrently
// leasable workers (min 1), maxQueue the bound on waiting requests (0
// sheds immediately once the budget is exhausted), maxWait how long a
// waiter may queue before being shed (0 waits forever).
func NewAdmission(budget, maxQueue int, maxWait time.Duration) *Admission {
	if budget < 1 {
		budget = 1
	}
	if maxQueue < 0 {
		maxQueue = 0
	}
	return &Admission{budget: budget, maxQueue: maxQueue, maxWait: maxWait}
}

// Lease is a granted slice of the worker budget. Release returns it
// (idempotent); Workers is the width the holder may run with.
type Lease struct {
	a    *Admission
	n    int
	once sync.Once
}

// Workers returns the leased parallelism.
func (l *Lease) Workers() int { return l.n }

// Release hands the leased workers back and grants queued waiters that
// now fit. Safe to call more than once.
func (l *Lease) Release() {
	l.once.Do(func() { l.a.release(l.n) })
}

// Acquire leases n workers (clamped to [1, budget]), waiting in FIFO
// order behind earlier requests when the budget is exhausted. It returns
// ErrOverloaded when the wait queue is full or maxWait elapses first, and
// ctx.Err() when the caller's context ends while queued.
func (a *Admission) Acquire(ctx context.Context, n int) (*Lease, error) {
	if n < 1 {
		n = 1
	}

	a.mu.Lock()
	if n > a.budget {
		n = a.budget
	}
	if len(a.queue) == 0 && a.inUse+n <= a.budget {
		a.grantLocked(n)
		a.mu.Unlock()
		return &Lease{a: a, n: n}, nil
	}
	if len(a.queue) >= a.maxQueue {
		a.shed++
		depth := len(a.queue)
		a.mu.Unlock()
		return nil, fmt.Errorf("%w: %d requests already queued", ErrOverloaded, depth)
	}
	w := &waiter{n: n, granted: make(chan struct{})}
	a.queue = append(a.queue, w)
	a.queued++
	a.mu.Unlock()

	var timeout <-chan time.Time
	if a.maxWait > 0 {
		t := time.NewTimer(a.maxWait)
		defer t.Stop()
		timeout = t.C
	}
	// After the grant channel closes, w.n is the granted width — a
	// concurrent Resize shrink may have clamped it below the requested n.
	select {
	case <-w.granted:
		return &Lease{a: a, n: w.n}, nil
	case <-timeout:
		if a.abandon(w, true) {
			return nil, fmt.Errorf("%w: queued longer than %v", ErrOverloaded, a.maxWait)
		}
		// The grant raced the timeout; it is ours, so run with it.
		<-w.granted
		return &Lease{a: a, n: w.n}, nil
	case <-ctx.Done():
		if a.abandon(w, false) {
			return nil, ctx.Err()
		}
		// Granted concurrently with cancellation — the caller is leaving,
		// hand the workers straight back.
		<-w.granted
		a.release(w.n)
		return nil, ctx.Err()
	}
}

// grantLocked charges n workers to the budget. Caller holds mu.
func (a *Admission) grantLocked(n int) {
	a.inUse += n
	a.granted++
	if a.inUse > a.peak {
		a.peak = a.inUse
	}
}

// abandon removes w from the queue, counting it as shed when the
// controller (not the caller's context) gave up on it; false means w was
// already granted (its channel is, or is about to be, closed).
func (a *Admission) abandon(w *waiter, shed bool) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	for i, q := range a.queue {
		if q == w {
			a.queue = append(a.queue[:i], a.queue[i+1:]...)
			if shed {
				a.shed++
			}
			return true
		}
	}
	return false
}

// release returns n workers and grants waiters from the head while their
// leases fit.
func (a *Admission) release(n int) {
	a.mu.Lock()
	a.inUse -= n
	grants := a.grantFittingLocked()
	a.mu.Unlock()
	for _, w := range grants {
		close(w.granted)
	}
}

// grantFittingLocked dequeues waiters from the head while their leases
// fit the budget, returning them for the caller to signal outside mu.
func (a *Admission) grantFittingLocked() []*waiter {
	var grants []*waiter
	for len(a.queue) > 0 {
		w := a.queue[0]
		if a.inUse+w.n > a.budget {
			break
		}
		a.grantLocked(w.n)
		a.queue = a.queue[1:]
		grants = append(grants, w)
	}
	return grants
}

// Resize hot-reloads the worker budget without dropping queued requests.
// Growing immediately grants queued waiters that now fit; shrinking takes
// effect as leases release (outstanding leases are never revoked) and
// clamps queued waiters' widths to the new budget so none is starved by
// asking for more workers than will ever exist again.
func (a *Admission) Resize(budget int) {
	if budget < 1 {
		budget = 1
	}
	a.mu.Lock()
	a.budget = budget
	for _, w := range a.queue {
		if w.n > budget {
			w.n = budget
		}
	}
	grants := a.grantFittingLocked()
	a.mu.Unlock()
	for _, w := range grants {
		close(w.granted)
	}
}

// Budget returns the total leasable workers.
func (a *Admission) Budget() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.budget
}

// InUse returns the workers currently leased.
func (a *Admission) InUse() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.inUse
}

// Peak returns the high-water mark of leased workers — never above
// Budget, which is the controller's core invariant.
func (a *Admission) Peak() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.peak
}

// QueueDepth returns the requests currently waiting.
func (a *Admission) QueueDepth() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.queue)
}

// Shed returns the cumulative requests refused (queue full or max-wait).
func (a *Admission) Shed() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.shed
}

// Granted returns the cumulative leases granted.
func (a *Admission) Granted() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.granted
}
