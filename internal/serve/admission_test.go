package serve

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestAdmissionGrantsWithinBudget(t *testing.T) {
	a := NewAdmission(4, 8, 0)
	l1, err := a.Acquire(context.Background(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if l1.Workers() != 3 || a.InUse() != 3 {
		t.Fatalf("lease %d workers, in use %d; want 3, 3", l1.Workers(), a.InUse())
	}
	l2, err := a.Acquire(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	l1.Release()
	l1.Release() // idempotent
	l2.Release()
	if a.InUse() != 0 {
		t.Fatalf("in use %d after releases, want 0", a.InUse())
	}
	if a.Granted() != 2 {
		t.Fatalf("granted %d, want 2", a.Granted())
	}
}

func TestAdmissionClampsOversizedLease(t *testing.T) {
	a := NewAdmission(2, 0, 0)
	l, err := a.Acquire(context.Background(), 100)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Release()
	if l.Workers() != 2 {
		t.Fatalf("lease %d workers, want clamp to budget 2", l.Workers())
	}
}

func TestAdmissionQueuesFIFO(t *testing.T) {
	a := NewAdmission(1, 8, 0)
	hold, err := a.Acquire(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	order := make(chan int, 2)
	var wg sync.WaitGroup
	start := func(id int) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			l, err := a.Acquire(context.Background(), 1)
			if err != nil {
				t.Error(err)
				return
			}
			order <- id
			l.Release()
		}()
	}
	start(1)
	for a.QueueDepth() < 1 {
		time.Sleep(time.Millisecond)
	}
	start(2)
	for a.QueueDepth() < 2 {
		time.Sleep(time.Millisecond)
	}
	hold.Release()
	wg.Wait()
	if first, second := <-order, <-order; first != 1 || second != 2 {
		t.Fatalf("grant order %d,%d; want FIFO 1,2", first, second)
	}
}

func TestAdmissionShedsWhenQueueFull(t *testing.T) {
	a := NewAdmission(1, 0, 0)
	hold, err := a.Acquire(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	defer hold.Release()
	if _, err := a.Acquire(context.Background(), 1); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("err = %v, want ErrOverloaded", err)
	}
	if a.Shed() != 1 {
		t.Fatalf("shed %d, want 1", a.Shed())
	}
}

func TestAdmissionShedsOnMaxWait(t *testing.T) {
	a := NewAdmission(1, 8, 5*time.Millisecond)
	hold, err := a.Acquire(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	defer hold.Release()
	t0 := time.Now()
	if _, err := a.Acquire(context.Background(), 1); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("err = %v, want ErrOverloaded", err)
	}
	if waited := time.Since(t0); waited < 5*time.Millisecond {
		t.Fatalf("shed after %v, before the 5ms max-wait", waited)
	}
	if a.Shed() != 1 || a.QueueDepth() != 0 {
		t.Fatalf("shed=%d depth=%d, want 1, 0", a.Shed(), a.QueueDepth())
	}
}

func TestAdmissionContextCancelWhileQueued(t *testing.T) {
	a := NewAdmission(1, 8, 0)
	hold, err := a.Acquire(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := a.Acquire(ctx, 1)
		done <- err
	}()
	for a.QueueDepth() < 1 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// A caller-canceled wait is not the controller's refusal.
	if a.Shed() != 0 {
		t.Fatalf("shed %d, want 0 for caller cancellation", a.Shed())
	}
	hold.Release()
	if a.InUse() != 0 {
		t.Fatalf("in use %d, want 0 (canceled waiter must not hold workers)", a.InUse())
	}
}

// TestAdmissionBudgetNeverExceeded hammers the controller from many
// goroutines with mixed lease widths and verifies the core invariant via
// the peak high-water mark.
func TestAdmissionBudgetNeverExceeded(t *testing.T) {
	const budget = 4
	a := NewAdmission(budget, 64, 0)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for it := 0; it < 50; it++ {
				l, err := a.Acquire(context.Background(), 1+(i+it)%budget)
				if err != nil {
					t.Error(err)
					return
				}
				l.Release()
			}
		}(i)
	}
	wg.Wait()
	if a.Peak() > budget {
		t.Fatalf("peak %d leased workers exceeded budget %d", a.Peak(), budget)
	}
	if a.InUse() != 0 {
		t.Fatalf("in use %d after all releases, want 0", a.InUse())
	}
	if a.Granted() != 16*50 {
		t.Fatalf("granted %d, want %d", a.Granted(), 16*50)
	}
}

// TestAdmissionWideLeaseNotStarved: a queued wide request must be granted
// even while narrow requests keep arriving (FIFO head-of-line semantics).
func TestAdmissionWideLeaseNotStarved(t *testing.T) {
	a := NewAdmission(4, 64, 0)
	hold, err := a.Acquire(context.Background(), 4)
	if err != nil {
		t.Fatal(err)
	}
	wide := make(chan struct{})
	go func() {
		l, err := a.Acquire(context.Background(), 4)
		if err == nil {
			l.Release()
		}
		close(wide)
	}()
	for a.QueueDepth() < 1 {
		time.Sleep(time.Millisecond)
	}
	// Narrow competitors pile in behind the wide request.
	for i := 0; i < 4; i++ {
		go func() {
			if l, err := a.Acquire(context.Background(), 1); err == nil {
				l.Release()
			}
		}()
	}
	hold.Release()
	select {
	case <-wide:
	case <-time.After(5 * time.Second):
		t.Fatal("wide lease starved behind narrow arrivals")
	}
}
