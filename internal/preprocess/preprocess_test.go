package preprocess

import (
	"testing"

	"fzmod/internal/device"
)

var tp = device.NewTestPlatform()

func TestResolveAbs(t *testing.T) {
	data := []float32{-2, 0, 6}
	eb, st, err := Resolve(tp, device.Accel, data, AbsBound(1e-3))
	if err != nil {
		t.Fatal(err)
	}
	if eb != 1e-3 {
		t.Errorf("abs eb = %v, want 1e-3", eb)
	}
	if st.Min != -2 || st.Max != 6 || st.Range != 8 {
		t.Errorf("stats = %+v", st)
	}
}

func TestResolveRel(t *testing.T) {
	data := []float32{-2, 0, 6} // range 8
	eb, _, err := Resolve(tp, device.Accel, data, RelBound(1e-2))
	if err != nil {
		t.Fatal(err)
	}
	if eb != 8e-2 {
		t.Errorf("rel eb = %v, want 0.08", eb)
	}
}

func TestResolveConstantField(t *testing.T) {
	data := []float32{5, 5, 5}
	eb, _, err := Resolve(tp, device.Accel, data, RelBound(1e-2))
	if err != nil {
		t.Fatal(err)
	}
	if eb != 1e-2 {
		t.Errorf("constant-field rel eb = %v, want raw value", eb)
	}
}

func TestResolveErrors(t *testing.T) {
	if _, _, err := Resolve(tp, device.Accel, []float32{1}, AbsBound(0)); err == nil {
		t.Error("zero bound should fail")
	}
	if _, _, err := Resolve(tp, device.Accel, []float32{1}, AbsBound(-1)); err == nil {
		t.Error("negative bound should fail")
	}
	if _, _, err := Resolve(tp, device.Accel, nil, AbsBound(1)); err == nil {
		t.Error("empty input should fail")
	}
}

func TestBoundModeString(t *testing.T) {
	if Abs.String() != "abs" || Rel.String() != "rel" {
		t.Error("BoundMode.String mismatch")
	}
}
