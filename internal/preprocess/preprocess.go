// Package preprocess implements the preprocessing stage of FZModules
// pipelines (§3.2): resolving the user-provided error bound against the
// data. The main decision at this stage is whether the bound is absolute or
// value-range relative; a relative bound requires a min/max reduction over
// the input so the bound can be normalized by the data range, which is the
// setting every compressor in the paper's evaluation uses ("all compressors
// used their value-range-based relative error bound setting").
package preprocess

import (
	"errors"
	"fmt"

	"fzmod/internal/device"
	"fzmod/internal/kernels"
)

// BoundMode selects how the user's error bound is interpreted.
type BoundMode int

const (
	// Abs: the bound is an absolute error tolerance.
	Abs BoundMode = iota
	// Rel: the bound is relative to the data value range (max-min); the
	// effective absolute bound is bound*(max-min).
	Rel
)

// String returns "abs" or "rel".
func (m BoundMode) String() string {
	if m == Rel {
		return "rel"
	}
	return "abs"
}

// ErrorBound is a user-specified tolerance plus its interpretation mode.
type ErrorBound struct {
	Value float64
	Mode  BoundMode
}

// RelBound constructs a value-range-relative bound (the paper's setting).
func RelBound(v float64) ErrorBound { return ErrorBound{Value: v, Mode: Rel} }

// AbsBound constructs an absolute bound.
func AbsBound(v float64) ErrorBound { return ErrorBound{Value: v, Mode: Abs} }

// Stats captures the extrema gathered during preprocessing; downstream
// modules reuse them (e.g. PSNR normalization).
type Stats struct {
	Min, Max float32
	Range    float64
}

// Resolve computes the effective absolute error bound for data, running the
// min/max reduction kernel at place when the mode is relative.
func Resolve(p *device.Platform, place device.Place, data []float32, eb ErrorBound) (float64, Stats, error) {
	if eb.Value <= 0 {
		return 0, Stats{}, fmt.Errorf("preprocess: error bound must be positive, got %g", eb.Value)
	}
	if len(data) == 0 {
		return 0, Stats{}, errors.New("preprocess: empty input")
	}
	mn, mx := kernels.MinMaxF32(p, place, data)
	st := Stats{Min: mn, Max: mx, Range: float64(mx) - float64(mn)}
	if eb.Mode == Abs {
		return eb.Value, st, nil
	}
	r := st.Range
	if r == 0 {
		// Constant field: any positive absolute bound preserves it; use
		// the raw value so the quantizer still produces all-zero codes.
		r = 1
	}
	return eb.Value * r, st, nil
}
