package histogram

import (
	"math/rand"
	"testing"

	"fzmod/internal/device"
	"fzmod/internal/kernels/dispatch"
)

var tp = device.NewTestPlatform()

func naive(codes []uint16, bins int) []uint32 {
	out := make([]uint32, bins)
	for _, c := range codes {
		out[c]++
	}
	return out
}

func TestStandardMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	codes := make([]uint16, 100_000)
	for i := range codes {
		codes[i] = uint16(rng.Intn(1024))
	}
	got, err := Standard(tp, device.Accel, codes, 1024)
	if err != nil {
		t.Fatal(err)
	}
	want := naive(codes, 1024)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("bin %d: got %d, want %d", i, got[i], want[i])
		}
	}
}

func TestStandardEmpty(t *testing.T) {
	got, err := Standard(tp, device.Accel, nil, 16)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range got {
		if v != 0 {
			t.Fatal("empty input must give zero histogram")
		}
	}
}

func TestStandardErrors(t *testing.T) {
	if _, err := Standard(tp, device.Accel, []uint16{5}, 0); err == nil {
		t.Error("zero bins should fail")
	}
	if _, err := Standard(tp, device.Accel, []uint16{5}, 4); err == nil {
		t.Error("out-of-range code should fail")
	}
}

func TestTopKExactForTopSymbols(t *testing.T) {
	// Spiky distribution: symbol 512 dominates, like high-quality
	// predictor output.
	rng := rand.New(rand.NewSource(2))
	codes := make([]uint16, 200_000)
	for i := range codes {
		r := rng.Float64()
		switch {
		case r < 0.80:
			codes[i] = 512
		case r < 0.90:
			codes[i] = 511
		case r < 0.97:
			codes[i] = 513
		default:
			codes[i] = uint16(rng.Intn(1024))
		}
	}
	got, err := TopK(tp, device.Accel, codes, 1024, 16)
	if err != nil {
		t.Fatal(err)
	}
	want := naive(codes, 1024)
	for _, s := range []int{511, 512, 513} {
		if got[s] != want[s] {
			t.Errorf("top symbol %d: got %d, want exact %d", s, got[s], want[s])
		}
	}
	// Every occurring symbol must be present (Huffman needs a code).
	for s := range want {
		if want[s] > 0 && got[s] == 0 {
			t.Errorf("occurring symbol %d missing from top-k histogram", s)
		}
		if want[s] == 0 && got[s] != 0 {
			t.Errorf("absent symbol %d has count %d", s, got[s])
		}
	}
}

func TestTopKDefaultK(t *testing.T) {
	codes := []uint16{1, 1, 1, 2, 3}
	got, err := TopK(tp, device.Accel, codes, 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got[1] != 3 {
		t.Errorf("got[1] = %d, want 3", got[1])
	}
}

func TestTopKLargeK(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	codes := make([]uint16, 50_000)
	for i := range codes {
		codes[i] = uint16(rng.Intn(512))
	}
	got, err := TopK(tp, device.Accel, codes, 1024, 600)
	if err != nil {
		t.Fatal(err)
	}
	want := naive(codes, 1024)
	// With k larger than distinct symbols and dense sampling, counts for
	// sampled-in symbols are exact; every present symbol is nonzero.
	for s := range want {
		if want[s] > 0 && got[s] == 0 {
			t.Fatalf("symbol %d lost", s)
		}
	}
}

func TestTopKEmpty(t *testing.T) {
	got, err := TopK(tp, device.Accel, nil, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 8 {
		t.Fatal("wrong length")
	}
}

func TestTopKErrors(t *testing.T) {
	if _, err := TopK(tp, device.Accel, []uint16{9}, 4, 2); err == nil {
		t.Error("out-of-range code should fail")
	}
	if _, err := TopK(tp, device.Accel, []uint16{1}, 0, 2); err == nil {
		t.Error("zero bins should fail")
	}
}

func TestSpikiness(t *testing.T) {
	spiky := []uint32{1000, 1, 1, 1}
	flat := []uint32{250, 250, 250, 250}
	if s := Spikiness(spiky, 1); s < 0.99 {
		t.Errorf("spiky top-1 mass = %v, want > .99", s)
	}
	if s := Spikiness(flat, 1); s > 0.26 {
		t.Errorf("flat top-1 mass = %v, want .25", s)
	}
	if Spikiness(nil, 3) != 0 {
		t.Error("empty histogram spikiness should be 0")
	}
	if s := Spikiness(flat, 100); s != 1 {
		t.Errorf("k>bins mass = %v, want 1", s)
	}
}

// benchKernelTiers runs f once per kernel implementation tier this build
// supports, so one run reports the accumulate+merge kernels under both the
// vector tier and the purego fallback.
func benchKernelTiers(b *testing.B, f func(b *testing.B)) {
	b.Helper()
	defer func() { _ = dispatch.Use("auto") }()
	for _, tier := range dispatch.Tiers() {
		if err := dispatch.Use(tier); err != nil {
			b.Fatalf("Use(%q): %v", tier, err)
		}
		b.Run(tier, f)
	}
}

func BenchmarkStandard(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	codes := make([]uint16, 1<<21)
	for i := range codes {
		codes[i] = uint16(rng.Intn(1024))
	}
	benchKernelTiers(b, func(b *testing.B) {
		b.SetBytes(int64(2 * len(codes)))
		for i := 0; i < b.N; i++ {
			if _, err := Standard(tp, device.Host, codes, 1024); err != nil {
				b.Fatal(err)
			}
		}
	})
}
