// Package histogram provides the GPU-accelerated data-analysis stage of
// FZModules (§3.2): the Huffman encoder "requires a histogram of the
// quantization codes be provided", and the framework offers two module
// variants — a standard privatized parallel histogram, and a top-k variant
// that "outperforms when the distribution of quantization codes has many
// repeating values", the typical shape of spline-predicted codes.
package histogram

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"fzmod/internal/device"
)

// Standard computes the exact histogram of codes over [0, bins) with
// per-worker privatized counters merged at the end — the same structure as
// the shared-memory-privatized CUDA histogram. Each worker accumulates
// 8-way unrolled into four interleaved counter tables (the CPU analogue of
// sub-histogramming across shared-memory banks), which breaks the
// store-to-load dependency that serializes repeated increments of the same
// bin — the common case for the spiky code distributions predictors emit.
func Standard(p *device.Platform, place device.Place, codes []uint16, bins int) ([]uint32, error) {
	if bins <= 0 {
		return nil, fmt.Errorf("histogram: bins must be positive, got %d", bins)
	}
	out := make([]uint32, bins)
	pool := p.ScratchPool()
	var mu sync.Mutex
	var oob atomic.Bool
	p.LaunchGrid(place, len(codes), func(lo, hi int) {
		slab := pool.GetU32(4*bins, true) // 4 privatized sub-tables, pooled
		t0 := slab.Data[:bins]
		t1 := slab.Data[bins : 2*bins]
		t2 := slab.Data[2*bins : 3*bins]
		t3 := slab.Data[3*bins : 4*bins]
		cs := codes[lo:hi]
		i := 0
		for ; i+8 <= len(cs); i += 8 {
			c0, c1, c2, c3 := cs[i], cs[i+1], cs[i+2], cs[i+3]
			c4, c5, c6, c7 := cs[i+4], cs[i+5], cs[i+6], cs[i+7]
			if int(c0) >= bins || int(c1) >= bins || int(c2) >= bins || int(c3) >= bins ||
				int(c4) >= bins || int(c5) >= bins || int(c6) >= bins || int(c7) >= bins {
				oob.Store(true)
				pool.PutU32(slab)
				return
			}
			t0[c0]++
			t1[c1]++
			t2[c2]++
			t3[c3]++
			t0[c4]++
			t1[c5]++
			t2[c6]++
			t3[c7]++
		}
		for ; i < len(cs); i++ {
			c := cs[i]
			if int(c) >= bins {
				oob.Store(true)
				pool.PutU32(slab)
				return
			}
			t0[c]++
		}
		mu.Lock()
		for i := range out {
			out[i] += t0[i] + t1[i] + t2[i] + t3[i]
		}
		mu.Unlock()
		pool.PutU32(slab)
	})
	if oob.Load() {
		return nil, fmt.Errorf("histogram: code out of range [0,%d)", bins)
	}
	return out, nil
}

// TopK computes a histogram specialized for spiky distributions: it finds
// the k most frequent codes from a strided sample, counts those exactly in
// a single pass with a small dense table, and assigns every other occurring
// code a floor count of 1. The Huffman tree built from it is near-optimal
// when the top-k codes dominate (high-quality predictors concentrate codes
// around the zero-residual center), while touching far less counter memory
// per element than the standard variant.
func TopK(p *device.Platform, place device.Place, codes []uint16, bins, k int) ([]uint32, error) {
	if bins <= 0 {
		return nil, fmt.Errorf("histogram: bins must be positive, got %d", bins)
	}
	if k <= 0 || k > bins {
		k = 256
		if k > bins {
			k = bins
		}
	}
	if len(codes) == 0 {
		return make([]uint32, bins), nil
	}

	// Pass 1: sampled candidate selection.
	sample := make([]uint32, bins)
	stride := len(codes)/65536 + 1
	for i := 0; i < len(codes); i += stride {
		c := codes[i]
		if int(c) >= bins {
			return nil, fmt.Errorf("histogram: code %d out of range [0,%d)", c, bins)
		}
		sample[c]++
	}
	type cand struct {
		code  int
		count uint32
	}
	cands := make([]cand, 0, 64)
	for code, cnt := range sample {
		if cnt > 0 {
			cands = append(cands, cand{code, cnt})
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].count != cands[j].count {
			return cands[i].count > cands[j].count
		}
		return cands[i].code < cands[j].code
	})
	if len(cands) > k {
		cands = cands[:k]
	}
	topSlot := make([]int16, bins)
	for i := range topSlot {
		topSlot[i] = -1
	}
	for slot, c := range cands {
		topSlot[c.code] = int16(slot)
	}

	// Pass 2: exact counts for top-k, presence bits for the rest.
	counts := make([]uint32, len(cands))
	present := make([]bool, bins)
	pool := p.ScratchPool()
	var mu sync.Mutex
	var oob atomic.Bool
	p.LaunchGrid(place, len(codes), func(lo, hi int) {
		localSlab := pool.GetU32(len(cands), true)
		presentSlab := pool.GetBytes(bins, true)
		local, localPresent := localSlab.Data, presentSlab.Data
		release := func() { pool.PutU32(localSlab); pool.PutBytes(presentSlab) }
		for _, c := range codes[lo:hi] {
			if int(c) >= bins {
				oob.Store(true)
				release()
				return
			}
			if s := topSlot[c]; s >= 0 {
				local[s]++
			} else {
				localPresent[c] = 1
			}
		}
		mu.Lock()
		for i, v := range local {
			counts[i] += v
		}
		for i, b := range localPresent {
			if b != 0 {
				present[i] = true
			}
		}
		mu.Unlock()
		release()
	})
	if oob.Load() {
		return nil, fmt.Errorf("histogram: code out of range [0,%d)", bins)
	}

	out := make([]uint32, bins)
	for slot, c := range cands {
		out[c.code] = counts[slot]
	}
	for code, b := range present {
		if b && out[code] == 0 {
			out[code] = 1
		}
	}
	return out, nil
}

// Spikiness returns the fraction of mass held by the k most frequent bins,
// the statistic pipelines can use to pick between Standard and TopK.
func Spikiness(hist []uint32, k int) float64 {
	var total uint64
	top := make([]uint32, len(hist))
	copy(top, hist)
	for _, v := range hist {
		total += uint64(v)
	}
	if total == 0 {
		return 0
	}
	sort.Slice(top, func(i, j int) bool { return top[i] > top[j] })
	if k > len(top) {
		k = len(top)
	}
	var mass uint64
	for _, v := range top[:k] {
		mass += uint64(v)
	}
	return float64(mass) / float64(total)
}
