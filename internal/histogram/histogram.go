// Package histogram provides the GPU-accelerated data-analysis stage of
// FZModules (§3.2): the Huffman encoder "requires a histogram of the
// quantization codes be provided", and the framework offers two module
// variants — a standard privatized parallel histogram, and a top-k variant
// that "outperforms when the distribution of quantization codes has many
// repeating values", the typical shape of spline-predicted codes.
package histogram

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"fzmod/internal/device"
	"fzmod/internal/kernels/dispatch"
)

// Standard computes the exact histogram of codes over [0, bins) with
// per-worker privatized counters merged at the end — the same structure as
// the shared-memory-privatized CUDA histogram. Each worker accumulates
// into four interleaved counter tables (the CPU analogue of
// sub-histogramming across shared-memory banks), which breaks the
// store-to-load dependency that serializes repeated increments of the same
// bin — the common case for the spiky code distributions predictors emit.
// Accumulation and the final table merge run through the dispatched SIMD
// kernels (dispatch.HistAccum validates sixteen codes with one vector
// compare on AVX2; dispatch.HistMerge folds the sub-tables eight bins at a
// time), with the 8-way unrolled pure-Go loop as fallback.
func Standard(p *device.Platform, place device.Place, codes []uint16, bins int) ([]uint32, error) {
	if bins <= 0 {
		return nil, fmt.Errorf("histogram: bins must be positive, got %d", bins)
	}
	out := make([]uint32, bins)
	pool := p.ScratchPool()
	var mu sync.Mutex
	var oob atomic.Bool
	p.LaunchGrid(place, len(codes), func(lo, hi int) {
		slab := pool.GetU32(4*bins, true) // 4 privatized sub-tables, pooled
		if !dispatch.HistAccum(slab.Data, codes[lo:hi], bins) {
			oob.Store(true)
			pool.PutU32(slab)
			return
		}
		mu.Lock()
		dispatch.HistMerge(out, slab.Data)
		mu.Unlock()
		pool.PutU32(slab)
	})
	if oob.Load() {
		return nil, fmt.Errorf("histogram: code out of range [0,%d)", bins)
	}
	return out, nil
}

// TopK computes a histogram specialized for spiky distributions: it finds
// the k most frequent codes from a strided sample, counts those exactly in
// a single pass with a small dense table, and assigns every other occurring
// code a floor count of 1. The Huffman tree built from it is near-optimal
// when the top-k codes dominate (high-quality predictors concentrate codes
// around the zero-residual center), while touching far less counter memory
// per element than the standard variant.
func TopK(p *device.Platform, place device.Place, codes []uint16, bins, k int) ([]uint32, error) {
	if bins <= 0 {
		return nil, fmt.Errorf("histogram: bins must be positive, got %d", bins)
	}
	if k <= 0 || k > bins {
		k = 256
		if k > bins {
			k = bins
		}
	}
	if len(codes) == 0 {
		return make([]uint32, bins), nil
	}

	// Pass 1: sampled candidate selection.
	sample := make([]uint32, bins)
	stride := len(codes)/65536 + 1
	for i := 0; i < len(codes); i += stride {
		c := codes[i]
		if int(c) >= bins {
			return nil, fmt.Errorf("histogram: code %d out of range [0,%d)", c, bins)
		}
		sample[c]++
	}
	type cand struct {
		code  int
		count uint32
	}
	cands := make([]cand, 0, 64)
	for code, cnt := range sample {
		if cnt > 0 {
			cands = append(cands, cand{code, cnt})
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].count != cands[j].count {
			return cands[i].count > cands[j].count
		}
		return cands[i].code < cands[j].code
	})
	if len(cands) > k {
		cands = cands[:k]
	}
	topSlot := make([]int16, bins)
	for i := range topSlot {
		topSlot[i] = -1
	}
	for slot, c := range cands {
		topSlot[c.code] = int16(slot)
	}

	// Pass 2: exact counts for top-k, presence bits for the rest.
	counts := make([]uint32, len(cands))
	present := make([]bool, bins)
	pool := p.ScratchPool()
	var mu sync.Mutex
	var oob atomic.Bool
	p.LaunchGrid(place, len(codes), func(lo, hi int) {
		localSlab := pool.GetU32(len(cands), true)
		presentSlab := pool.GetBytes(bins, true)
		local, localPresent := localSlab.Data, presentSlab.Data
		release := func() { pool.PutU32(localSlab); pool.PutBytes(presentSlab) }
		for _, c := range codes[lo:hi] {
			if int(c) >= bins {
				oob.Store(true)
				release()
				return
			}
			if s := topSlot[c]; s >= 0 {
				local[s]++
			} else {
				localPresent[c] = 1
			}
		}
		mu.Lock()
		for i, v := range local {
			counts[i] += v
		}
		for i, b := range localPresent {
			if b != 0 {
				present[i] = true
			}
		}
		mu.Unlock()
		release()
	})
	if oob.Load() {
		return nil, fmt.Errorf("histogram: code out of range [0,%d)", bins)
	}

	out := make([]uint32, bins)
	for slot, c := range cands {
		out[c.code] = counts[slot]
	}
	for code, b := range present {
		if b && out[code] == 0 {
			out[code] = 1
		}
	}
	return out, nil
}

// Spikiness returns the fraction of mass held by the k most frequent bins,
// the statistic pipelines can use to pick between Standard and TopK.
func Spikiness(hist []uint32, k int) float64 {
	var total uint64
	top := make([]uint32, len(hist))
	copy(top, hist)
	for _, v := range hist {
		total += uint64(v)
	}
	if total == 0 {
		return 0
	}
	sort.Slice(top, func(i, j int) bool { return top[i] > top[j] })
	if k > len(top) {
		k = len(top)
	}
	var mass uint64
	for _, v := range top[:k] {
		mass += uint64(v)
	}
	return float64(mass) / float64(total)
}
