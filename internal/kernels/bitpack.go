package kernels

// Bit-level packing primitives shared by the fixed-length encoder (cuSZp2
// baseline) and the bitshuffle encoders (FZ-GPU, PFPL, FZMod-Speed).

// PackBits packs the low `width` bits of each value in vals into a dense
// little-endian bit stream appended to dst, returning the extended slice.
// width must be in [0, 32]; width 0 appends nothing.
func PackBits(dst []byte, vals []uint32, width int) []byte {
	if width == 0 {
		return dst
	}
	totalBits := len(vals) * width
	need := (totalBits + 7) / 8
	start := len(dst)
	dst = append(dst, make([]byte, need)...)
	bitPos := 0
	for _, v := range vals {
		v &= widthMask(width)
		bytePos := start + bitPos/8
		shift := uint(bitPos % 8)
		// A value spans at most 5 bytes for width<=32 plus shift<8.
		acc := uint64(v) << shift
		for b := 0; acc != 0; b++ {
			dst[bytePos+b] |= byte(acc)
			acc >>= 8
		}
		bitPos += width
	}
	return dst
}

// UnpackBits extracts n values of `width` bits each from src starting at
// bitOffset, returning the values and the bit offset just past them.
func UnpackBits(src []byte, bitOffset, n, width int) ([]uint32, int) {
	out := make([]uint32, n)
	if width == 0 {
		return out, bitOffset
	}
	mask := widthMask(width)
	pos := bitOffset
	for i := 0; i < n; i++ {
		bytePos := pos / 8
		shift := uint(pos % 8)
		var acc uint64
		for b := 0; b < 5 && bytePos+b < len(src); b++ {
			acc |= uint64(src[bytePos+b]) << (8 * uint(b))
		}
		out[i] = uint32(acc>>shift) & mask
		pos += width
	}
	return out, pos
}

func widthMask(width int) uint32 {
	if width >= 32 {
		return ^uint32(0)
	}
	return (1 << uint(width)) - 1
}

// BitsFor returns the number of bits needed to represent v (0 → 0 bits).
func BitsFor(v uint32) int {
	n := 0
	for v != 0 {
		n++
		v >>= 1
	}
	return n
}

// ZigZag maps a signed delta to an unsigned code with small magnitudes
// mapping to small codes: 0→0, -1→1, 1→2, -2→3, ...
func ZigZag(v int32) uint32 { return uint32((v << 1) ^ (v >> 31)) }

// UnZigZag inverts ZigZag.
func UnZigZag(u uint32) int32 { return int32(u>>1) ^ -int32(u&1) }

// ZigZag16 is the wrapping 16-bit zigzag map, a bijection on uint16: the
// fzg encoder recenters arbitrary code alphabets with it without overflow.
func ZigZag16(v int16) uint16 { return uint16((v << 1) ^ (v >> 15)) }

// UnZigZag16 inverts ZigZag16.
func UnZigZag16(u uint16) int16 { return int16(u>>1) ^ -int16(u&1) }

// Bitshuffle transposes the bits of a tile of 16-bit values: output bit-plane
// b holds bit b of every value, consecutively. Tiles are processed
// independently so the kernel parallelizes across tiles exactly like the
// FZ-GPU shuffle kernel. len(vals) must be a multiple of 8 within each tile
// boundary handled by the caller; trailing partial bytes are zero-padded.
func Bitshuffle(vals []uint16) []byte {
	n := len(vals)
	bytesPerPlane := (n + 7) / 8
	out := make([]byte, 16*bytesPerPlane)
	for plane := 0; plane < 16; plane++ {
		base := plane * bytesPerPlane
		for i, v := range vals {
			if v>>uint(plane)&1 != 0 {
				out[base+i/8] |= 1 << uint(i%8)
			}
		}
	}
	return out
}

// Unbitshuffle inverts Bitshuffle for n original values.
func Unbitshuffle(src []byte, n int) []uint16 {
	bytesPerPlane := (n + 7) / 8
	out := make([]uint16, n)
	for plane := 0; plane < 16; plane++ {
		base := plane * bytesPerPlane
		for i := 0; i < n; i++ {
			if src[base+i/8]>>uint(i%8)&1 != 0 {
				out[i] |= 1 << uint(plane)
			}
		}
	}
	return out
}

// Bitshuffle32 transposes the bits of a tile of 32-bit values, the PFPL
// variant of the shuffle: output bit-plane b holds bit b of every value.
func Bitshuffle32(vals []uint32) []byte {
	n := len(vals)
	bytesPerPlane := (n + 7) / 8
	out := make([]byte, 32*bytesPerPlane)
	for plane := 0; plane < 32; plane++ {
		base := plane * bytesPerPlane
		for i, v := range vals {
			if v>>uint(plane)&1 != 0 {
				out[base+i/8] |= 1 << uint(i%8)
			}
		}
	}
	return out
}

// Unbitshuffle32 inverts Bitshuffle32 for n original values.
func Unbitshuffle32(src []byte, n int) []uint32 {
	bytesPerPlane := (n + 7) / 8
	out := make([]uint32, n)
	for plane := 0; plane < 32; plane++ {
		base := plane * bytesPerPlane
		for i := 0; i < n; i++ {
			if src[base+i/8]>>uint(i%8)&1 != 0 {
				out[i] |= 1 << uint(plane)
			}
		}
	}
	return out
}
