// Package kernels provides the GPU-style parallel primitives the compression
// modules are built from: grid reductions, exclusive prefix sums, gather /
// scatter, and bit packing. Each primitive follows the two-phase
// block-then-combine structure its CUDA counterpart uses (per-block partial
// results followed by a combine step), so module code written against this
// package has the same pass structure as the paper's kernels.
package kernels

import (
	"math"
	"sync"

	"fzmod/internal/device"
)

// MinMaxF32 computes the minimum and maximum of data with a two-phase grid
// reduction at place. It is the extrema kernel behind relative-error-bound
// normalization (§3.2: "needing to find the data minimum and maximum to
// normalize the user provided error by the data range").
func MinMaxF32(p *device.Platform, place device.Place, data []float32) (mn, mx float32) {
	if len(data) == 0 {
		return 0, 0
	}
	type partial struct {
		mn, mx float32
	}
	var mu sync.Mutex
	mn, mx = float32(math.Inf(1)), float32(math.Inf(-1))
	p.LaunchGrid(place, len(data), func(lo, hi int) {
		lmn, lmx := data[lo], data[lo]
		for _, v := range data[lo+1 : hi] {
			if v < lmn {
				lmn = v
			}
			if v > lmx {
				lmx = v
			}
		}
		mu.Lock()
		if lmn < mn {
			mn = lmn
		}
		if lmx > mx {
			mx = lmx
		}
		mu.Unlock()
	})
	return mn, mx
}

// SumF64 accumulates data in float64 with per-block partials, matching the
// numerically safe reduction used for PSNR/MSE computation.
func SumF64(p *device.Platform, place device.Place, data []float64) float64 {
	var mu sync.Mutex
	var total float64
	p.LaunchGrid(place, len(data), func(lo, hi int) {
		var local float64
		for _, v := range data[lo:hi] {
			local += v
		}
		mu.Lock()
		total += local
		mu.Unlock()
	})
	return total
}

// CountU16 counts occurrences of target in codes with a grid reduction.
func CountU16(p *device.Platform, place device.Place, codes []uint16, target uint16) int {
	var mu sync.Mutex
	var total int
	p.LaunchGrid(place, len(codes), func(lo, hi int) {
		local := 0
		for _, c := range codes[lo:hi] {
			if c == target {
				local++
			}
		}
		mu.Lock()
		total += local
		mu.Unlock()
	})
	return total
}
