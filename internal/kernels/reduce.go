// Package kernels provides the GPU-style parallel primitives the compression
// modules are built from: grid reductions, exclusive prefix sums, gather /
// scatter, and bit packing. Each primitive follows the two-phase
// block-then-combine structure its CUDA counterpart uses (per-block partial
// results followed by a combine step), so module code written against this
// package has the same pass structure as the paper's kernels.
package kernels

import (
	"math"
	"sync"

	"fzmod/internal/device"
)

// MinMaxF32 computes the minimum and maximum of data with a two-phase grid
// reduction at place. It is the extrema kernel behind relative-error-bound
// normalization (§3.2: "needing to find the data minimum and maximum to
// normalize the user provided error by the data range").
func MinMaxF32(p *device.Platform, place device.Place, data []float32) (mn, mx float32) {
	if len(data) == 0 {
		return 0, 0
	}
	type partial struct {
		mn, mx float32
	}
	var mu sync.Mutex
	mn, mx = float32(math.Inf(1)), float32(math.Inf(-1))
	p.LaunchGrid(place, len(data), func(lo, hi int) {
		// Four independent accumulator lanes break the compare-update
		// dependency chain; the lanes fold together before the merge.
		lmn, lmx := data[lo], data[lo]
		mn1, mx1 := lmn, lmx
		mn2, mx2 := lmn, lmx
		mn3, mx3 := lmn, lmx
		i := lo
		for ; i+4 <= hi; i += 4 {
			v0, v1, v2, v3 := data[i], data[i+1], data[i+2], data[i+3]
			if v0 < lmn {
				lmn = v0
			}
			if v0 > lmx {
				lmx = v0
			}
			if v1 < mn1 {
				mn1 = v1
			}
			if v1 > mx1 {
				mx1 = v1
			}
			if v2 < mn2 {
				mn2 = v2
			}
			if v2 > mx2 {
				mx2 = v2
			}
			if v3 < mn3 {
				mn3 = v3
			}
			if v3 > mx3 {
				mx3 = v3
			}
		}
		for ; i < hi; i++ {
			if v := data[i]; v < lmn {
				lmn = v
			} else if v > lmx {
				lmx = v
			}
		}
		if mn1 < lmn {
			lmn = mn1
		}
		if mn2 < lmn {
			lmn = mn2
		}
		if mn3 < lmn {
			lmn = mn3
		}
		if mx1 > lmx {
			lmx = mx1
		}
		if mx2 > lmx {
			lmx = mx2
		}
		if mx3 > lmx {
			lmx = mx3
		}
		mu.Lock()
		if lmn < mn {
			mn = lmn
		}
		if lmx > mx {
			mx = lmx
		}
		mu.Unlock()
	})
	return mn, mx
}

// SumF64 accumulates data in float64 with per-block partials, matching the
// numerically safe reduction used for PSNR/MSE computation.
func SumF64(p *device.Platform, place device.Place, data []float64) float64 {
	var mu sync.Mutex
	var total float64
	p.LaunchGrid(place, len(data), func(lo, hi int) {
		var local float64
		for _, v := range data[lo:hi] {
			local += v
		}
		mu.Lock()
		total += local
		mu.Unlock()
	})
	return total
}

// CountU16 counts occurrences of target in codes with a grid reduction.
func CountU16(p *device.Platform, place device.Place, codes []uint16, target uint16) int {
	var mu sync.Mutex
	var total int
	p.LaunchGrid(place, len(codes), func(lo, hi int) {
		local := 0
		for _, c := range codes[lo:hi] {
			if c == target {
				local++
			}
		}
		mu.Lock()
		total += local
		mu.Unlock()
	})
	return total
}
