// Package kernels provides the GPU-style parallel primitives the compression
// modules are built from: grid reductions, exclusive prefix sums, gather /
// scatter, and bit packing. Each primitive follows the two-phase
// block-then-combine structure its CUDA counterpart uses (per-block partial
// results followed by a combine step), so module code written against this
// package has the same pass structure as the paper's kernels.
package kernels

import (
	"sync"

	"fzmod/internal/device"
)

// minMaxBlock is the per-block extent of the MinMaxF32 tree reduction.
const minMaxBlock = 1 << 16

// MinMaxF32 computes the minimum and maximum of data with a two-phase tree
// reduction at place: phase 1 reduces fixed-extent blocks into a pooled
// partials array — each block writes its own disjoint slots, so there is
// no merge lock for concurrent blocks to contend on and the result is
// deterministic regardless of scheduling — and phase 2 folds the partials.
// It is the extrema kernel behind relative-error-bound normalization
// (§3.2: "needing to find the data minimum and maximum to normalize the
// user provided error by the data range").
func MinMaxF32(p *device.Platform, place device.Place, data []float32) (mn, mx float32) {
	if len(data) == 0 {
		return 0, 0
	}
	nBlocks := (len(data) + minMaxBlock - 1) / minMaxBlock
	if nBlocks == 1 {
		return minMaxRange(data)
	}
	slab := p.ScratchPool().GetF32(2*nBlocks, false)
	partials := slab.Data
	p.LaunchBlocks(place, nBlocks, func(lo, hi int) {
		for b := lo; b < hi; b++ {
			end := (b + 1) * minMaxBlock
			if end > len(data) {
				end = len(data)
			}
			partials[2*b], partials[2*b+1] = minMaxRange(data[b*minMaxBlock : end])
		}
	})
	mn, mx = partials[0], partials[1]
	for b := 1; b < nBlocks; b++ {
		if partials[2*b] < mn {
			mn = partials[2*b]
		}
		if partials[2*b+1] > mx {
			mx = partials[2*b+1]
		}
	}
	p.ScratchPool().PutF32(slab)
	return mn, mx
}

// minMaxRange scans one contiguous range with four independent accumulator
// lanes, breaking the compare-update dependency chain.
func minMaxRange(data []float32) (mn, mx float32) {
	lmn, lmx := data[0], data[0]
	mn1, mx1 := lmn, lmx
	mn2, mx2 := lmn, lmx
	mn3, mx3 := lmn, lmx
	i := 0
	for ; i+4 <= len(data); i += 4 {
		v0, v1, v2, v3 := data[i], data[i+1], data[i+2], data[i+3]
		if v0 < lmn {
			lmn = v0
		}
		if v0 > lmx {
			lmx = v0
		}
		if v1 < mn1 {
			mn1 = v1
		}
		if v1 > mx1 {
			mx1 = v1
		}
		if v2 < mn2 {
			mn2 = v2
		}
		if v2 > mx2 {
			mx2 = v2
		}
		if v3 < mn3 {
			mn3 = v3
		}
		if v3 > mx3 {
			mx3 = v3
		}
	}
	for ; i < len(data); i++ {
		if v := data[i]; v < lmn {
			lmn = v
		} else if v > lmx {
			lmx = v
		}
	}
	if mn1 < lmn {
		lmn = mn1
	}
	if mn2 < lmn {
		lmn = mn2
	}
	if mn3 < lmn {
		lmn = mn3
	}
	if mx1 > lmx {
		lmx = mx1
	}
	if mx2 > lmx {
		lmx = mx2
	}
	if mx3 > lmx {
		lmx = mx3
	}
	return lmn, lmx
}

// SumF64 accumulates data in float64 with per-block partials, matching the
// numerically safe reduction used for PSNR/MSE computation.
func SumF64(p *device.Platform, place device.Place, data []float64) float64 {
	var mu sync.Mutex
	var total float64
	p.LaunchGrid(place, len(data), func(lo, hi int) {
		var local float64
		for _, v := range data[lo:hi] {
			local += v
		}
		mu.Lock()
		total += local
		mu.Unlock()
	})
	return total
}

// CountU16 counts occurrences of target in codes with a grid reduction.
func CountU16(p *device.Platform, place device.Place, codes []uint16, target uint16) int {
	var mu sync.Mutex
	var total int
	p.LaunchGrid(place, len(codes), func(lo, hi int) {
		local := 0
		for _, c := range codes[lo:hi] {
			if c == target {
				local++
			}
		}
		mu.Lock()
		total += local
		mu.Unlock()
	})
	return total
}
