// Package kernels provides the GPU-style parallel primitives the compression
// modules are built from: grid reductions, exclusive prefix sums, gather /
// scatter, and bit packing. Each primitive follows the two-phase
// block-then-combine structure its CUDA counterpart uses (per-block partial
// results followed by a combine step), so module code written against this
// package has the same pass structure as the paper's kernels.
package kernels

import (
	"sync"

	"fzmod/internal/device"
	"fzmod/internal/kernels/dispatch"
)

// minMaxBlock is the per-block extent of the MinMaxF32 tree reduction.
const minMaxBlock = 1 << 16

// MinMaxF32 computes the minimum and maximum of data with a two-phase tree
// reduction at place: phase 1 reduces fixed-extent blocks into a pooled
// partials array — each block writes its own disjoint slots, so there is
// no merge lock for concurrent blocks to contend on and the result is
// deterministic regardless of scheduling — and phase 2 folds the partials.
// It is the extrema kernel behind relative-error-bound normalization
// (§3.2: "needing to find the data minimum and maximum to normalize the
// user provided error by the data range"). Per-range scans run through the
// dispatched SIMD kernel (dispatch.MinMaxF32), with the pure-Go lane scan
// as fallback.
func MinMaxF32(p *device.Platform, place device.Place, data []float32) (mn, mx float32) {
	if len(data) == 0 {
		return 0, 0
	}
	nBlocks := (len(data) + minMaxBlock - 1) / minMaxBlock
	if nBlocks == 1 {
		return dispatch.MinMaxF32(data)
	}
	slab := p.ScratchPool().GetF32(2*nBlocks, false)
	partials := slab.Data
	p.LaunchBlocks(place, nBlocks, func(lo, hi int) {
		for b := lo; b < hi; b++ {
			end := (b + 1) * minMaxBlock
			if end > len(data) {
				end = len(data)
			}
			partials[2*b], partials[2*b+1] = dispatch.MinMaxF32(data[b*minMaxBlock : end])
		}
	})
	mn, mx = partials[0], partials[1]
	for b := 1; b < nBlocks; b++ {
		if partials[2*b] < mn {
			mn = partials[2*b]
		}
		if partials[2*b+1] > mx {
			mx = partials[2*b+1]
		}
	}
	p.ScratchPool().PutF32(slab)
	return mn, mx
}

// SumF64 accumulates data in float64 with per-block partials, matching the
// numerically safe reduction used for PSNR/MSE computation.
func SumF64(p *device.Platform, place device.Place, data []float64) float64 {
	var mu sync.Mutex
	var total float64
	p.LaunchGrid(place, len(data), func(lo, hi int) {
		var local float64
		for _, v := range data[lo:hi] {
			local += v
		}
		mu.Lock()
		total += local
		mu.Unlock()
	})
	return total
}

// CountU16 counts occurrences of target in codes with a grid reduction.
func CountU16(p *device.Platform, place device.Place, codes []uint16, target uint16) int {
	var mu sync.Mutex
	var total int
	p.LaunchGrid(place, len(codes), func(lo, hi int) {
		local := 0
		for _, c := range codes[lo:hi] {
			if c == target {
				local++
			}
		}
		mu.Lock()
		total += local
		mu.Unlock()
	})
	return total
}
