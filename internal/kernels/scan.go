package kernels

import (
	"fzmod/internal/device"
)

// ExclusiveScan computes the exclusive prefix sum of src into a new slice
// and returns it together with the total. The implementation is the classic
// three-phase GPU scan: per-block sequential scan producing block sums, a
// scan over the block sums, then a per-block offset add. Stream compaction
// in the FZ-GPU dictionary encoder and the outlier compaction in the Lorenzo
// module are built on it.
func ExclusiveScan(p *device.Platform, place device.Place, src []uint32) (out []uint32, total uint32) {
	out = make([]uint32, len(src))
	total = ExclusiveScanInto(p, place, src, out)
	return out, total
}

// ExclusiveScanInto is ExclusiveScan writing into caller-provided storage
// (len(out) must equal len(src)), so hot paths can scan into pooled slabs.
func ExclusiveScanInto(p *device.Platform, place device.Place, src, out []uint32) (total uint32) {
	n := len(src)
	if n == 0 {
		return 0
	}
	const block = 4096
	nBlocks := (n + block - 1) / block
	sums := p.ScratchPool().GetU32(nBlocks, false)
	blockSums := sums.Data

	// Phase 1: per-block exclusive scan, blocks fanned over the workers.
	p.LaunchBlocks(place, nBlocks, func(blo, bhi int) {
		for b := blo; b < bhi; b++ {
			lo, hi := b*block, (b+1)*block
			if hi > n {
				hi = n
			}
			var acc uint32
			for i := lo; i < hi; i++ {
				out[i] = acc
				acc += src[i]
			}
			blockSums[b] = acc
		}
	})

	// Phase 2: sequential scan of block sums (nBlocks is small).
	var acc uint32
	for b := 0; b < nBlocks; b++ {
		s := blockSums[b]
		blockSums[b] = acc
		acc += s
	}
	total = acc

	// Phase 3: add block offsets — one unit-stride constant-offset loop per
	// block instead of a per-element division to locate the block.
	p.LaunchBlocks(place, nBlocks, func(blo, bhi int) {
		for b := blo; b < bhi; b++ {
			lo, hi := b*block, (b+1)*block
			if hi > n {
				hi = n
			}
			s := blockSums[b]
			for i := lo; i < hi; i++ {
				out[i] += s
			}
		}
	})
	p.ScratchPool().PutU32(sums)
	return total
}

// CompactU32 performs stream compaction: it writes the indices i for which
// keep[i] != 0 into a dense output array using an exclusive scan of the
// keep flags, the standard GPU compaction idiom. The offset array is pooled
// scratch; only the compacted result is a fresh allocation.
func CompactU32(p *device.Platform, place device.Place, keep []uint32) []uint32 {
	pool := p.ScratchPool()
	off := pool.GetU32(len(keep), false)
	offsets := off.Data
	total := ExclusiveScanInto(p, place, keep, offsets)
	out := make([]uint32, total)
	p.LaunchGrid(place, len(keep), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if keep[i] != 0 {
				out[offsets[i]] = uint32(i)
			}
		}
	})
	pool.PutU32(off)
	return out
}

// GatherF32 writes dst[j] = src[idx[j]] in parallel.
func GatherF32(p *device.Platform, place device.Place, dst, src []float32, idx []uint32) {
	p.LaunchGrid(place, len(idx), func(lo, hi int) {
		for j := lo; j < hi; j++ {
			dst[j] = src[idx[j]]
		}
	})
}

// ScatterF32 writes dst[idx[j]] = src[j] in parallel. Indices must be
// unique, as they are for outlier scatter in decompression.
func ScatterF32(p *device.Platform, place device.Place, dst, src []float32, idx []uint32) {
	p.LaunchGrid(place, len(idx), func(lo, hi int) {
		for j := lo; j < hi; j++ {
			dst[idx[j]] = src[j]
		}
	})
}
