// Package dispatch selects a SIMD implementation tier for the framework's
// five hottest per-element loops — Lorenzo fused quantize+residual rows,
// histogram accumulation, MinMaxF32, outlier code scanning, and the Huffman
// encode length-summing pre-pass — at process start, keeping the pure-Go
// word-level kernels as the always-available fallback.
//
// Tiers:
//
//   - "avx2"   — amd64 with AVX2 (detected via CPUID + XGETBV, no
//     dependencies; the OS must have enabled YMM state).
//   - "neon"   — arm64; ASIMD is architecturally baseline. Only the kernels
//     the Go arm64 assembler can express are NEON; the rest of the tier
//     stays pure Go per kernel.
//   - "purego" — the portable reference implementations. Always compiled,
//     always selectable, and the only tier under the `purego` build tag or
//     on other GOARCHes.
//
// Selection order: the FZMOD_KERNELS environment variable ("purego",
// "avx2", "neon", or "auto") is consulted once at init; an empty, unknown,
// or unsupported value falls back to auto-detection. Tests can re-point the
// tier at runtime with Use — kernels are plain package-level function
// variables, so Use must not race with kernel callers (call it from
// TestMain or a serial test only).
//
// Every non-purego kernel is bit-identical to its pure-Go twin on all
// inputs, including non-finite floats (QuantizeF32 reports out-of-range for
// NaN/Inf in every tier); the cross-implementation property and fuzz tests
// in this package enforce that on odd lengths and alignments.
package dispatch

import (
	"fmt"
	"os"
	"strings"
)

// Tier names accepted by Use and returned by Active.
const (
	PureGo = "purego"
	AVX2   = "avx2"
	NEON   = "neon"
)

// The dispatched kernels. Assigned once during package init (and by Use in
// tests); the default values make the package usable even if selection is
// bypassed.
var (
	// QuantizeF32 writes q[i] = int32(round(data[i]*scale)) for i <
	// len(data), rounding half away from zero (math.Round). It returns
	// false — with q partially written — when any rounded value falls
	// outside [-lim, lim]; NaN and ±Inf always fall outside. len(q) must
	// be >= len(data).
	QuantizeF32 func(data []float32, q []int32, scale, lim float64) bool = quantizeF32PureGo

	// DiffCodes1 emits the 1-D Lorenzo residual codes for a quantized row:
	// for each i < len(codes), d = q[i+1] - q[i] and codes[i] = uint16(d +
	// r32) when -r32 < d < r32, else 0 (the outlier escape). len(q) must
	// be >= len(codes)+1.
	DiffCodes1 func(q []int32, codes []uint16, r32 int32) = diffCodes1PureGo

	// DiffCodes2 is DiffCodes1 for the 2-D stencil:
	// d = q[i+1] - q[i] - up[i+1] + up[i].
	DiffCodes2 func(q, up []int32, codes []uint16, r32 int32) = diffCodes2PureGo

	// DiffCodes3 is DiffCodes1 for the full 3-D stencil:
	// d = q[i+1]-q[i] - up[i+1]+up[i] - back[i+1]+back[i] + backUp[i+1]-backUp[i].
	DiffCodes3 func(q, up, back, backUp []int32, codes []uint16, r32 int32) = diffCodes3PureGo

	// MinMaxF32 returns the minimum and maximum of a non-empty slice with
	// the comparison semantics of the scalar accumulator loop: NaN values
	// never replace an accumulator, and when -0.0 and +0.0 are both
	// candidates the result's sign is unspecified (they compare equal).
	MinMaxF32 func(data []float32) (mn, mx float32) = minMaxF32PureGo

	// HistAccum accumulates codes into the four privatized sub-tables of
	// tabs (len(tabs) == 4*bins, pre-zeroed by the caller) and returns
	// false — with tabs contents unspecified — when any code is >= bins.
	// The four sub-tables break the store-to-load dependency of repeated
	// increments to one bin; HistMerge folds them.
	HistAccum func(tabs []uint32, codes []uint16, bins int) bool = histAccumPureGo

	// HistMerge adds the four sub-tables of tabs into out:
	// out[i] += tabs[i] + tabs[b+i] + tabs[2b+i] + tabs[3b+i] with
	// b = len(out); len(tabs) must be 4*len(out).
	HistMerge func(out, tabs []uint32) = histMergePureGo

	// NextZero returns the index of the first zero code (the outlier
	// escape), or -1 when none occurs.
	NextZero func(codes []uint16) int = nextZeroPureGo

	// SumLengths sums lengths32[c] over every code c, the Huffman encode
	// sizing pre-pass. It returns ok=false when any code is out of range
	// or maps to a zero length (symbol absent from the codebook); the sum
	// is then unspecified and the caller re-scans scalar for the exact
	// offending symbol. Table entries must be at most 255 (they are
	// Huffman code lengths widened from uint8), which lets vector tiers
	// accumulate in 32-bit lanes.
	SumLengths func(lengths32 []uint32, codes []uint16) (bits uint64, ok bool) = sumLengthsPureGo
)

// active names the installed tier.
var active = PureGo

// vectorRows is set by tiers whose QuantizeF32 and DiffCodes kernels are
// genuinely vector implementations. The Lorenzo predictor only switches to
// its two-phase row structure (quantize the row, then emit codes from the
// stored lattice) when that structure buys vector speed; with scalar
// kernels the single-pass fused rows are faster.
var vectorRows bool

// VectorRows reports whether the installed tier runs the Lorenzo row
// kernels (QuantizeF32 + DiffCodes*) as vector code.
func VectorRows() bool { return vectorRows }

// Active returns the name of the installed implementation tier: "avx2",
// "neon", or "purego". On arm64 a "neon" tier may still run individual
// kernels pure-Go; PerKernel lists the split.
func Active() string { return active }

// PerKernel returns the implementation behind each dispatched kernel for
// the installed tier, keyed by kernel name — execution evidence for
// ExecReport and benchmark rows.
func PerKernel() map[string]string { return perKernel() }

// Tiers returns the implementation tiers this build supports on this CPU,
// purego first: {"purego"} or {"purego", "avx2"/"neon"}. Benchmarks
// iterate it (with Use) to report every implementation in one run.
func Tiers() []string {
	if best := bestName(); best != PureGo {
		return []string{PureGo, best}
	}
	return []string{PureGo}
}

// Use installs an implementation tier by name ("purego", "avx2", "neon",
// or "auto" for the best supported). It returns an error — leaving the
// installed tier unchanged — when the name is unknown or the tier is not
// supported on this CPU. Kernels are plain function variables: Use must
// not run concurrently with kernel callers.
func Use(name string) error {
	switch n := strings.ToLower(strings.TrimSpace(name)); n {
	case "auto", "":
		installPureGo()
		installBest()
		return nil
	case PureGo:
		installPureGo()
		active = PureGo
		return nil
	default:
		if installTier(n) {
			active = n
			return nil
		}
		return fmt.Errorf("dispatch: kernel tier %q not supported on this CPU (have %q)", name, bestName())
	}
}

// installPureGo points every kernel at its portable reference.
func installPureGo() {
	QuantizeF32 = quantizeF32PureGo
	DiffCodes1 = diffCodes1PureGo
	DiffCodes2 = diffCodes2PureGo
	DiffCodes3 = diffCodes3PureGo
	MinMaxF32 = minMaxF32PureGo
	HistAccum = histAccumPureGo
	HistMerge = histMergePureGo
	NextZero = nextZeroPureGo
	SumLengths = sumLengthsPureGo
	vectorRows = false
	active = PureGo
}

// installBest installs the best tier the CPU supports (purego when no
// vector tier is available).
func installBest() {
	if name := bestName(); name != PureGo {
		if installTier(name) {
			active = name
		}
	}
}

func init() {
	installPureGo()
	if err := Use(os.Getenv("FZMOD_KERNELS")); err != nil {
		// Unknown or unsupported request: fall back to auto-detection
		// rather than failing init; Active()/PerKernel() report what ran.
		_ = Use("auto")
	}
}
