package dispatch

import "math"

// The portable reference kernels. These are the word-level scalar loops the
// repo's PR-4 rewrite established (four accumulator lanes, 8-way unrolls,
// borrow-trick zero scanning); every vector tier is tested bit-identical
// against them, so they are both the fallback and the specification.

func quantizeF32PureGo(data []float32, q []int32, scale, lim float64) bool {
	for i, v := range data {
		t := math.Round(float64(v) * scale)
		// The negated in-range form rejects NaN too (both comparisons are
		// false for NaN), matching the vector tiers' ordered compares.
		if !(t <= lim && t >= -lim) {
			return false
		}
		q[i] = int32(t)
	}
	return true
}

func diffCodes1PureGo(q []int32, codes []uint16, r32 int32) {
	for i := range codes {
		d := q[i+1] - q[i]
		if d > -r32 && d < r32 {
			codes[i] = uint16(d + r32)
		} else {
			codes[i] = 0
		}
	}
}

func diffCodes2PureGo(q, up []int32, codes []uint16, r32 int32) {
	for i := range codes {
		d := q[i+1] - q[i] - up[i+1] + up[i]
		if d > -r32 && d < r32 {
			codes[i] = uint16(d + r32)
		} else {
			codes[i] = 0
		}
	}
}

func diffCodes3PureGo(q, up, back, backUp []int32, codes []uint16, r32 int32) {
	for i := range codes {
		d := q[i+1] - q[i] - up[i+1] + up[i] - back[i+1] + back[i] + backUp[i+1] - backUp[i]
		if d > -r32 && d < r32 {
			codes[i] = uint16(d + r32)
		} else {
			codes[i] = 0
		}
	}
}

// minMaxF32PureGo scans with four independent accumulator lanes, breaking
// the compare-update dependency chain. All lanes seed from data[0], so NaN
// elements (which never win a comparison) cannot leak into the result
// unless data[0] itself is NaN — the same policy the vector tiers follow.
func minMaxF32PureGo(data []float32) (mn, mx float32) {
	lmn, lmx := data[0], data[0]
	mn1, mx1 := lmn, lmx
	mn2, mx2 := lmn, lmx
	mn3, mx3 := lmn, lmx
	i := 0
	for ; i+4 <= len(data); i += 4 {
		v0, v1, v2, v3 := data[i], data[i+1], data[i+2], data[i+3]
		if v0 < lmn {
			lmn = v0
		}
		if v0 > lmx {
			lmx = v0
		}
		if v1 < mn1 {
			mn1 = v1
		}
		if v1 > mx1 {
			mx1 = v1
		}
		if v2 < mn2 {
			mn2 = v2
		}
		if v2 > mx2 {
			mx2 = v2
		}
		if v3 < mn3 {
			mn3 = v3
		}
		if v3 > mx3 {
			mx3 = v3
		}
	}
	for ; i < len(data); i++ {
		if v := data[i]; v < lmn {
			lmn = v
		} else if v > lmx {
			lmx = v
		}
	}
	if mn1 < lmn {
		lmn = mn1
	}
	if mn2 < lmn {
		lmn = mn2
	}
	if mn3 < lmn {
		lmn = mn3
	}
	if mx1 > lmx {
		lmx = mx1
	}
	if mx2 > lmx {
		lmx = mx2
	}
	if mx3 > lmx {
		lmx = mx3
	}
	return lmn, lmx
}

func histAccumPureGo(tabs []uint32, codes []uint16, bins int) bool {
	t0 := tabs[:bins]
	t1 := tabs[bins : 2*bins]
	t2 := tabs[2*bins : 3*bins]
	t3 := tabs[3*bins : 4*bins]
	i := 0
	for ; i+8 <= len(codes); i += 8 {
		c0, c1, c2, c3 := codes[i], codes[i+1], codes[i+2], codes[i+3]
		c4, c5, c6, c7 := codes[i+4], codes[i+5], codes[i+6], codes[i+7]
		if int(c0) >= bins || int(c1) >= bins || int(c2) >= bins || int(c3) >= bins ||
			int(c4) >= bins || int(c5) >= bins || int(c6) >= bins || int(c7) >= bins {
			return false
		}
		t0[c0]++
		t1[c1]++
		t2[c2]++
		t3[c3]++
		t0[c4]++
		t1[c5]++
		t2[c6]++
		t3[c7]++
	}
	for ; i < len(codes); i++ {
		c := codes[i]
		if int(c) >= bins {
			return false
		}
		t0[c]++
	}
	return true
}

func histMergePureGo(out, tabs []uint32) {
	b := len(out)
	t0 := tabs[:b]
	t1 := tabs[b : 2*b]
	t2 := tabs[2*b : 3*b]
	t3 := tabs[3*b : 4*b]
	for i := range out {
		out[i] += t0[i] + t1[i] + t2[i] + t3[i]
	}
}

// nextZeroPureGo tests eight codes per iteration with the branch-free
// borrow trick ((c-1) &^ c has its top bit set exactly when c == 0) and
// only walks a group that contains a zero.
func nextZeroPureGo(codes []uint16) int {
	i := 0
	for ; i+8 <= len(codes); i += 8 {
		c0, c1, c2, c3 := codes[i], codes[i+1], codes[i+2], codes[i+3]
		c4, c5, c6, c7 := codes[i+4], codes[i+5], codes[i+6], codes[i+7]
		z := (c0-1)&^c0 | (c1-1)&^c1 | (c2-1)&^c2 | (c3-1)&^c3 |
			(c4-1)&^c4 | (c5-1)&^c5 | (c6-1)&^c6 | (c7-1)&^c7
		if z&0x8000 != 0 {
			for j := i; ; j++ {
				if codes[j] == 0 {
					return j
				}
			}
		}
	}
	for ; i < len(codes); i++ {
		if codes[i] == 0 {
			return i
		}
	}
	return -1
}

func sumLengthsPureGo(lengths32 []uint32, codes []uint16) (uint64, bool) {
	var bits uint64
	for _, s := range codes {
		if int(s) >= len(lengths32) || lengths32[s] == 0 {
			return 0, false
		}
		bits += uint64(lengths32[s])
	}
	return bits, true
}
