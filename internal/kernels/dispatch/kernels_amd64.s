//go:build !purego

#include "textflag.h"

// AVX2 kernel cores. Every function processes only whole vector groups
// (the Go wrappers in kernels_amd64.go own the scalar tails) and uses
// unaligned loads throughout, so callers never need aligned slices.

// Double-precision constants for the round-half-away-from-zero sequence.
DATA roundconst<>+0(SB)/8, $0x3FE0000000000000 // 0.5
DATA roundconst<>+8(SB)/8, $0x3FF0000000000000 // 1.0
GLOBL roundconst<>(SB), RODATA|NOPTR, $16

// func quantAVX2Asm(data []float32, q []int32, scale, lim float64) bool
//
// q[i] = int32(round(data[i]*scale)) with round-half-away-from-zero,
// exactly math.Round: r = copysign(trunc(|t|) + (|t|-trunc(|t|) >= 0.5), t).
// The naive trunc(t + copysign(0.5, t)) is NOT math.Round (it rounds
// 0.49999999999999994 up, because t+0.5 rounds to 1.0 in float64); the
// trunc/frac form has no such double rounding. Lanes whose rounded value
// falls outside [-lim, lim] — including NaN, for which every ordered
// compare is false — clear the ok accumulator and the function returns
// false. len(data) must be a multiple of 8.
TEXT ·quantAVX2Asm(SB), NOSPLIT, $0-65
	MOVQ data_base+0(FP), SI
	MOVQ data_len+8(FP), CX
	MOVQ q_base+24(FP), DI
	VBROADCASTSD scale+48(FP), Y8
	VBROADCASTSD lim+56(FP), Y9
	VPCMPEQD Y15, Y15, Y15             // ok accumulator: all ones
	VPSRLQ   $1, Y15, Y11              // 0x7FFF... abs mask
	VPSLLQ   $63, Y15, Y12             // 0x8000... sign mask
	VXORPD   Y12, Y9, Y14              // -lim
	VBROADCASTSD roundconst<>+0(SB), Y13 // 0.5
	VBROADCASTSD roundconst<>+8(SB), Y10 // 1.0

quantloop:
	CMPQ CX, $8
	JL   quantdone
	VMOVUPS (SI), Y0                   // 8 x f32
	VCVTPS2PD X0, Y1                   // lanes 0-3 -> f64
	VEXTRACTF128 $1, Y0, X2
	VCVTPS2PD X2, Y2                   // lanes 4-7 -> f64
	VMULPD Y8, Y1, Y1                  // t = v * scale
	VMULPD Y8, Y2, Y2

	// Round lanes 0-3.
	VANDPD   Y11, Y1, Y3               // |t|
	VROUNDPD $3, Y3, Y4                // trunc(|t|)
	VSUBPD   Y4, Y3, Y5                // frac = |t| - trunc(|t|)
	VCMPPD   $13, Y13, Y5, Y5          // frac >= 0.5 (GE_OS)
	VANDPD   Y10, Y5, Y5               // 1.0 where the half rounds away
	VADDPD   Y5, Y4, Y4
	VANDPD   Y12, Y1, Y6               // sign of t
	VORPD    Y6, Y4, Y4                // r = copysign(rounded, t)
	VCMPPD   $2, Y9, Y4, Y5            // r <= lim (LE_OS)
	VCMPPD   $13, Y14, Y4, Y6          // r >= -lim
	VANDPD   Y6, Y5, Y5
	VANDPD   Y5, Y15, Y15
	VCVTTPD2DQY Y4, X1                 // exact: r is integral and in range

	// Round lanes 4-7.
	VANDPD   Y11, Y2, Y3
	VROUNDPD $3, Y3, Y4
	VSUBPD   Y4, Y3, Y5
	VCMPPD   $13, Y13, Y5, Y5
	VANDPD   Y10, Y5, Y5
	VADDPD   Y5, Y4, Y4
	VANDPD   Y12, Y2, Y6
	VORPD    Y6, Y4, Y4
	VCMPPD   $2, Y9, Y4, Y5
	VCMPPD   $13, Y14, Y4, Y6
	VANDPD   Y6, Y5, Y5
	VANDPD   Y5, Y15, Y15
	VCVTTPD2DQY Y4, X2

	VINSERTI128 $1, X2, Y1, Y1
	VMOVDQU Y1, (DI)
	ADDQ $32, SI
	ADDQ $32, DI
	SUBQ $8, CX
	JMP  quantloop

quantdone:
	VMOVMSKPD Y15, AX                  // 4 bits, one per f64 lane
	CMPL AX, $0xF
	SETEQ ret+64(FP)
	VZEROUPPER
	RET

// emitcodes packs a ymm of eight int32 residuals d into eight uint16
// codes at (DI): code = uint16(d+r32) when -r32 < d < r32, else 0.
// In: Y0 = d, Y8 = r32 broadcast, Y9 = -r32 broadcast. Clobbers Y0-Y5.
#define EMITCODES \
	VPCMPGTD Y9, Y0, Y4 \ // d > -r32
	VPCMPGTD Y0, Y8, Y5 \ // r32 > d
	VPAND    Y5, Y4, Y4 \
	VPADDD   Y8, Y0, Y0 \ // d + r32 (in (0, 2*r32) when in range)
	VPAND    Y4, Y0, Y0 \ // escapes -> 0
	VEXTRACTI128 $1, Y0, X1 \
	VPACKUSDW X1, X0, X0 \ // exact: masked values are in [0, 65535]
	VMOVDQU  X0, (DI)

// func diff1AVX2Asm(q []int32, codes []uint16, r32 int32)
// codes[i] = enc(q[i+1] - q[i]); len(codes) a multiple of 8,
// len(q) >= len(codes)+1.
TEXT ·diff1AVX2Asm(SB), NOSPLIT, $0-52
	MOVQ q_base+0(FP), SI
	MOVQ codes_base+24(FP), DI
	MOVQ codes_len+32(FP), CX
	MOVL r32+48(FP), AX
	VMOVD AX, X0
	VPBROADCASTD X0, Y8                // r32
	NEGL AX
	VMOVD AX, X0
	VPBROADCASTD X0, Y9                // -r32

diff1loop:
	CMPQ CX, $8
	JL   diff1done
	VMOVDQU 4(SI), Y0                  // q[i+1..i+8]
	VMOVDQU (SI), Y1                   // q[i..i+7]
	VPSUBD  Y1, Y0, Y0                 // d = q[i+1] - q[i]
	EMITCODES
	ADDQ $32, SI
	ADDQ $16, DI
	SUBQ $8, CX
	JMP  diff1loop

diff1done:
	VZEROUPPER
	RET

// func diff2AVX2Asm(q, up []int32, codes []uint16, r32 int32)
// codes[i] = enc(q[i+1]-q[i] - up[i+1]+up[i]); len(codes) a multiple of 8.
TEXT ·diff2AVX2Asm(SB), NOSPLIT, $0-76
	MOVQ q_base+0(FP), SI
	MOVQ up_base+24(FP), DX
	MOVQ codes_base+48(FP), DI
	MOVQ codes_len+56(FP), CX
	MOVL r32+72(FP), AX
	VMOVD AX, X0
	VPBROADCASTD X0, Y8
	NEGL AX
	VMOVD AX, X0
	VPBROADCASTD X0, Y9

diff2loop:
	CMPQ CX, $8
	JL   diff2done
	VMOVDQU 4(SI), Y0
	VMOVDQU (SI), Y1
	VPSUBD  Y1, Y0, Y0                 // q[i+1] - q[i]
	VMOVDQU 4(DX), Y2
	VMOVDQU (DX), Y3
	VPSUBD  Y3, Y2, Y2                 // up[i+1] - up[i]
	VPSUBD  Y2, Y0, Y0
	EMITCODES
	ADDQ $32, SI
	ADDQ $32, DX
	ADDQ $16, DI
	SUBQ $8, CX
	JMP  diff2loop

diff2done:
	VZEROUPPER
	RET

// func diff3AVX2Asm(q, up, back, backUp []int32, codes []uint16, r32 int32)
// codes[i] = enc(q[i+1]-q[i] - up[i+1]+up[i] - back[i+1]+back[i]
// + backUp[i+1]-backUp[i]); len(codes) a multiple of 8.
TEXT ·diff3AVX2Asm(SB), NOSPLIT, $0-124
	MOVQ q_base+0(FP), SI
	MOVQ up_base+24(FP), DX
	MOVQ back_base+48(FP), R8
	MOVQ backUp_base+72(FP), R9
	MOVQ codes_base+96(FP), DI
	MOVQ codes_len+104(FP), CX
	MOVL r32+120(FP), AX
	VMOVD AX, X0
	VPBROADCASTD X0, Y8
	NEGL AX
	VMOVD AX, X0
	VPBROADCASTD X0, Y9

diff3loop:
	CMPQ CX, $8
	JL   diff3done
	VMOVDQU 4(SI), Y0
	VMOVDQU (SI), Y1
	VPSUBD  Y1, Y0, Y0                 // q[i+1] - q[i]
	VMOVDQU 4(DX), Y2
	VMOVDQU (DX), Y3
	VPSUBD  Y3, Y2, Y2                 // up[i+1] - up[i]
	VPSUBD  Y2, Y0, Y0
	VMOVDQU 4(R8), Y2
	VMOVDQU (R8), Y3
	VPSUBD  Y3, Y2, Y2                 // back[i+1] - back[i]
	VPSUBD  Y2, Y0, Y0
	VMOVDQU 4(R9), Y2
	VMOVDQU (R9), Y3
	VPSUBD  Y3, Y2, Y2                 // backUp[i+1] - backUp[i]
	VPADDD  Y2, Y0, Y0
	EMITCODES
	ADDQ $32, SI
	ADDQ $32, DX
	ADDQ $32, R8
	ADDQ $32, R9
	ADDQ $16, DI
	SUBQ $8, CX
	JMP  diff3loop

diff3done:
	VZEROUPPER
	RET

// func minMaxAVX2Asm(data []float32) (mn, mx float32)
//
// Eight accumulator lanes seeded from data[0]. Operand order puts the
// fresh value in the first-source slot of VMINPS/VMAXPS, so a NaN element
// never replaces an accumulator (min/max return the second source on
// unordered compares) — the scalar loop's semantics. len(data) must be a
// non-zero multiple of 8.
TEXT ·minMaxAVX2Asm(SB), NOSPLIT, $0-32
	MOVQ data_base+0(FP), SI
	MOVQ data_len+8(FP), CX
	VBROADCASTSS (SI), Y0              // mn lanes
	VMOVAPS Y0, Y1                     // mx lanes

minmaxloop:
	CMPQ CX, $8
	JL   minmaxdone
	VMOVUPS (SI), Y2
	VMINPS  Y0, Y2, Y0                 // min(v, acc): NaN v keeps acc
	VMAXPS  Y1, Y2, Y1
	ADDQ $32, SI
	SUBQ $8, CX
	JMP  minmaxloop

minmaxdone:
	VEXTRACTF128 $1, Y0, X2
	VMINPS X0, X2, X0
	VPSHUFD $0x4E, X0, X2
	VMINPS X0, X2, X0
	VPSHUFD $0xB1, X0, X2
	VMINPS X0, X2, X0
	VMOVSS X0, mn+24(FP)
	VEXTRACTF128 $1, Y1, X2
	VMAXPS X1, X2, X1
	VPSHUFD $0x4E, X1, X2
	VMAXPS X1, X2, X1
	VPSHUFD $0xB1, X1, X2
	VMAXPS X1, X2, X1
	VMOVSS X1, mx+28(FP)
	VZEROUPPER
	RET

// func histAccumAVX2Asm(tabs []uint32, codes []uint16, bins int) bool
//
// Sixteen codes per iteration: one vector compare validates the whole
// group against bins (VPMAXUW against bins-1 — a code is in range iff the
// unsigned max leaves bins-1 unchanged), then the increments scatter into
// the four privatized sub-tables with position-mod-4 assignment, the same
// mapping as the scalar loop so the tables match bit for bit. AVX2 has no
// scatter; the increments are the irreducible scalar core of any
// vectorized histogram. len(codes) must be a multiple of 16.
TEXT ·histAccumAVX2Asm(SB), NOSPLIT, $0-57
	MOVQ tabs_base+0(FP), R8           // t0
	MOVQ codes_base+24(FP), SI
	MOVQ codes_len+32(FP), CX
	MOVQ bins+48(FP), AX
	LEAQ (R8)(AX*4), R9                // t1
	LEAQ (R9)(AX*4), R10               // t2
	LEAQ (R10)(AX*4), R11              // t3
	DECQ AX                            // bins-1 fits uint16 (bins <= 65536)
	VMOVD AX, X0
	VPBROADCASTW X0, Y7

histloop:
	CMPQ CX, $16
	JL   histok
	VMOVDQU  (SI), Y0
	VPMAXUW  Y7, Y0, Y1
	VPCMPEQW Y7, Y1, Y1                // all-ones iff code <= bins-1
	VPMOVMSKB Y1, DX
	CMPL DX, $-1
	JNE  histfail

	MOVQ 0(SI), DX                     // codes 0-3 -> t0..t3
	MOVWLZX DX, BX
	INCL (R8)(BX*4)
	SHRQ $16, DX
	MOVWLZX DX, BX
	INCL (R9)(BX*4)
	SHRQ $16, DX
	MOVWLZX DX, BX
	INCL (R10)(BX*4)
	SHRQ $16, DX
	INCL (R11)(DX*4)

	MOVQ 8(SI), DX                     // codes 4-7 -> t0..t3
	MOVWLZX DX, BX
	INCL (R8)(BX*4)
	SHRQ $16, DX
	MOVWLZX DX, BX
	INCL (R9)(BX*4)
	SHRQ $16, DX
	MOVWLZX DX, BX
	INCL (R10)(BX*4)
	SHRQ $16, DX
	INCL (R11)(DX*4)

	MOVQ 16(SI), DX                    // codes 8-11 -> t0..t3
	MOVWLZX DX, BX
	INCL (R8)(BX*4)
	SHRQ $16, DX
	MOVWLZX DX, BX
	INCL (R9)(BX*4)
	SHRQ $16, DX
	MOVWLZX DX, BX
	INCL (R10)(BX*4)
	SHRQ $16, DX
	INCL (R11)(DX*4)

	MOVQ 24(SI), DX                    // codes 12-15 -> t0..t3
	MOVWLZX DX, BX
	INCL (R8)(BX*4)
	SHRQ $16, DX
	MOVWLZX DX, BX
	INCL (R9)(BX*4)
	SHRQ $16, DX
	MOVWLZX DX, BX
	INCL (R10)(BX*4)
	SHRQ $16, DX
	INCL (R11)(DX*4)

	ADDQ $32, SI
	SUBQ $16, CX
	JMP  histloop

histok:
	MOVB $1, ret+56(FP)
	VZEROUPPER
	RET

histfail:
	MOVB $0, ret+56(FP)
	VZEROUPPER
	RET

// func histMergeAVX2Asm(out, tabs []uint32, stride int)
// out[i] += tabs[i] + tabs[stride+i] + tabs[2*stride+i] + tabs[3*stride+i],
// eight bins per iteration. len(out) must be a multiple of 8.
TEXT ·histMergeAVX2Asm(SB), NOSPLIT, $0-56
	MOVQ out_base+0(FP), DI
	MOVQ out_len+8(FP), CX
	MOVQ tabs_base+24(FP), SI
	MOVQ stride+48(FP), AX
	LEAQ (SI)(AX*4), R9
	LEAQ (R9)(AX*4), R10
	LEAQ (R10)(AX*4), R11

mergeloop:
	CMPQ CX, $8
	JL   mergedone
	VMOVDQU (SI), Y0
	VPADDD  (R9), Y0, Y0
	VPADDD  (R10), Y0, Y0
	VPADDD  (R11), Y0, Y0
	VPADDD  (DI), Y0, Y0
	VMOVDQU Y0, (DI)
	ADDQ $32, SI
	ADDQ $32, R9
	ADDQ $32, R10
	ADDQ $32, R11
	ADDQ $32, DI
	SUBQ $8, CX
	JMP  mergeloop

mergedone:
	VZEROUPPER
	RET

// func nextZeroAVX2Asm(codes []uint16) int
// Index of the first zero code in the leading multiple-of-16 prefix, else
// -1. One compare+movemask tests sixteen codes; BSF pinpoints the word.
TEXT ·nextZeroAVX2Asm(SB), NOSPLIT, $0-32
	MOVQ codes_base+0(FP), SI
	MOVQ codes_len+8(FP), CX
	XORQ R8, R8                        // running base index
	VPXOR Y1, Y1, Y1

zeroloop:
	CMPQ CX, $16
	JL   zeronone
	VMOVDQU  (SI), Y0
	VPCMPEQW Y1, Y0, Y0
	VPMOVMSKB Y0, AX
	TESTL AX, AX
	JNZ  zerofound
	ADDQ $32, SI
	ADDQ $16, R8
	SUBQ $16, CX
	JMP  zeroloop

zerofound:
	BSFL AX, AX                        // first matching byte
	SHRL $1, AX                        // -> word lane
	ADDQ AX, R8
	MOVQ R8, ret+24(FP)
	VZEROUPPER
	RET

zeronone:
	MOVQ $-1, ret+24(FP)
	VZEROUPPER
	RET

// func sumLengthsAVX2Asm(lengths32 []uint32, codes []uint16) (sum uint64, ok bool)
//
// Eight codes per iteration: widen, range-check against len(lengths32)
// BEFORE the table gather (an out-of-range lane must never issue a load),
// gather the lengths with VPGATHERDD, reject zero lengths, accumulate in
// eight uint32 lanes. The wrapper caps a call at 1Mi codes so the lanes
// cannot wrap. len(codes) must be a multiple of 8.
TEXT ·sumLengthsAVX2Asm(SB), NOSPLIT, $0-57
	MOVQ lengths32_base+0(FP), R8
	MOVQ lengths32_len+8(FP), R9
	MOVQ codes_base+24(FP), SI
	MOVQ codes_len+32(FP), CX
	MOVQ $65536, AX                    // clamp: uint16 codes index at most 65535
	CMPQ R9, AX
	CMOVQLT R9, AX
	VMOVD AX, X0
	VPBROADCASTD X0, Y7                // table length, signed-safe
	VPXOR Y6, Y6, Y6                   // zero
	VPXOR Y5, Y5, Y5                   // lane sums

sumloop:
	CMPQ CX, $8
	JL   sumdone
	VPMOVZXWD (SI), Y0                 // 8 codes -> 8 x u32 indexes
	VPCMPGTD  Y0, Y7, Y1               // len > idx, per lane
	VPMOVMSKB Y1, AX
	CMPL AX, $-1
	JNE  sumfail
	VPCMPEQD Y2, Y2, Y2                // gather mask: all lanes
	VPGATHERDD Y2, (R8)(Y0*4), Y3
	VPCMPEQD Y6, Y3, Y4                // zero-length symbol?
	VPMOVMSKB Y4, AX
	TESTL AX, AX
	JNZ  sumfail
	VPADDD Y3, Y5, Y5
	ADDQ $16, SI
	SUBQ $8, CX
	JMP  sumloop

sumdone:
	VEXTRACTI128 $1, Y5, X1
	VPADDD  X1, X5, X5
	VPSHUFD $0x4E, X5, X1
	VPADDD  X1, X5, X5
	VPSHUFD $0xB1, X5, X1
	VPADDD  X1, X5, X5
	VMOVD   X5, AX
	MOVQ AX, sum+48(FP)
	MOVB $1, ok+56(FP)
	VZEROUPPER
	RET

sumfail:
	MOVQ $0, sum+48(FP)
	MOVB $0, ok+56(FP)
	VZEROUPPER
	RET
