//go:build purego || (!amd64 && !arm64)

package dispatch

// Fallback tier plumbing: under the purego build tag, or on GOARCHes
// without a vector tier, only the portable reference kernels exist.

func bestName() string { return PureGo }

func installTier(string) bool { return false }

func perKernel() map[string]string {
	return map[string]string{
		"quantize":    PureGo,
		"diff_codes":  PureGo,
		"minmax":      PureGo,
		"hist_accum":  PureGo,
		"hist_merge":  PureGo,
		"next_zero":   PureGo,
		"sum_lengths": PureGo,
	}
}
