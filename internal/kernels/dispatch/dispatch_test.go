package dispatch

import (
	"math"
	"math/rand"
	"testing"
)

// forEachTier runs f once under every tier this build supports, always
// restoring auto-detection afterwards. Under the purego tag (or on other
// GOARCHes) only the reference tier exists and the sweep degenerates to a
// self-check, which is exactly the contract: purego IS the specification.
func forEachTier(t *testing.T, f func(t *testing.T)) {
	t.Helper()
	tiers := []string{PureGo}
	if b := bestName(); b != PureGo {
		tiers = append(tiers, b)
	}
	defer func() {
		if err := Use("auto"); err != nil {
			t.Fatalf("restoring auto tier: %v", err)
		}
	}()
	for _, tier := range tiers {
		if err := Use(tier); err != nil {
			t.Fatalf("Use(%q): %v", tier, err)
		}
		t.Run(tier, f)
	}
}

// offsetF32 returns an n-element slice whose backing array starts off
// elements into a larger allocation, exercising unaligned vector heads.
func offsetF32(n, off int) []float32 { return make([]float32, n+off)[off : off+n] }
func offsetI32(n, off int) []int32   { return make([]int32, n+off)[off : off+n] }
func offsetU16(n, off int) []uint16  { return make([]uint16, n+off)[off : off+n] }
func offsetU32(n, off int) []uint32  { return make([]uint32, n+off)[off : off+n] }

func TestQuantizeF32Equivalence(t *testing.T) {
	forEachTier(t, func(t *testing.T) {
		rng := rand.New(rand.NewSource(1))
		specials := []float32{
			float32(math.NaN()), float32(math.Inf(1)), float32(math.Inf(-1)),
			0.5, -0.5, 1.5, -2.5, 0, float32(math.Copysign(0, -1)),
		}
		for n := 0; n <= 200; n++ {
			for off := 0; off < 4; off++ {
				data := offsetF32(n, off)
				for i := range data {
					data[i] = float32(rng.NormFloat64() * 100)
				}
				// A second pass re-runs with specials (NaN/Inf/halves)
				// scattered in, which must flip the result to false in
				// both implementations at any position.
				for pass := 0; pass < 2; pass++ {
					if pass == 1 && n > 0 {
						for k := 0; k < 1+n/16; k++ {
							data[rng.Intn(n)] = specials[rng.Intn(len(specials))]
						}
					}
					scale := []float64{1, 0.1, 1e6 / 3}[rng.Intn(3)]
					lim := []float64{1 << 29, 40}[rng.Intn(2)]
					got := offsetI32(n, off)
					want := make([]int32, n)
					okGot := QuantizeF32(data, got, scale, lim)
					okWant := quantizeF32PureGo(data, want, scale, lim)
					if okGot != okWant {
						t.Fatalf("n=%d off=%d pass=%d scale=%g lim=%g: ok=%v want %v",
							n, off, pass, scale, lim, okGot, okWant)
					}
					if !okGot {
						continue // q contents unspecified on failure
					}
					for i := range want {
						if got[i] != want[i] {
							t.Fatalf("n=%d off=%d i=%d v=%x: q=%d want %d",
								n, off, i, math.Float32bits(data[i]), got[i], want[i])
						}
					}
				}
			}
		}
	})
}

// TestQuantizeF32Rounding pins the exact math.Round cases where the naive
// trunc(t+0.5) vectorization diverges: halves round away from zero and the
// largest float64 below 0.5 rounds to zero.
func TestQuantizeF32Rounding(t *testing.T) {
	forEachTier(t, func(t *testing.T) {
		data := make([]float32, 16)
		for i := range data {
			data[i] = float32(i) + 0.5
		}
		data[8], data[9], data[10], data[11] = -0.5, -1.5, -2.5, -3.5
		q := make([]int32, 16)
		if !QuantizeF32(data, q, 1, 1<<29) {
			t.Fatal("halves flagged out of range")
		}
		for i, v := range data {
			if want := int32(math.Round(float64(v))); q[i] != want {
				t.Fatalf("round(%v) = %d, want %d", v, q[i], want)
			}
		}
		// 0.4999999999999999 * 1.0 < 0.5 exactly in float64: must round to
		// 0, not 1. (The float32 0.49999997 scaled by 1 exercises the same
		// sub-half branch on the f32->f64 widened value.)
		sub := make([]float32, 8)
		for i := range sub {
			sub[i] = 0.49999997
		}
		if !QuantizeF32(sub, q[:8], 1, 1<<29) {
			t.Fatal("sub-half flagged out of range")
		}
		for i := 0; i < 8; i++ {
			if q[i] != 0 {
				t.Fatalf("round(0.49999997) = %d, want 0", q[i])
			}
		}
	})
}

func TestDiffCodesEquivalence(t *testing.T) {
	forEachTier(t, func(t *testing.T) {
		rng := rand.New(rand.NewSource(2))
		radii := []int32{1, 2, 255, 512, 32768, 40000}
		for n := 0; n <= 200; n += 1 {
			for off := 0; off < 4; off++ {
				mk := func() []int32 {
					s := offsetI32(n+1, off)
					for i := range s {
						// Mix small steps (in-range codes) with huge jumps
						// (escapes, including int32-wrapping differences).
						if rng.Intn(8) == 0 {
							s[i] = int32(rng.Uint32())
						} else {
							s[i] = int32(rng.Intn(1024) - 512)
						}
					}
					return s
				}
				q, up, back, backUp := mk(), mk(), mk(), mk()
				r32 := radii[rng.Intn(len(radii))]
				got := offsetU16(n, off)
				want := make([]uint16, n)

				DiffCodes1(q, got, r32)
				diffCodes1PureGo(q, want, r32)
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("diff1 n=%d off=%d r=%d i=%d: %d want %d", n, off, r32, i, got[i], want[i])
					}
				}
				DiffCodes2(q, up, got, r32)
				diffCodes2PureGo(q, up, want, r32)
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("diff2 n=%d off=%d r=%d i=%d: %d want %d", n, off, r32, i, got[i], want[i])
					}
				}
				DiffCodes3(q, up, back, backUp, got, r32)
				diffCodes3PureGo(q, up, back, backUp, want, r32)
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("diff3 n=%d off=%d r=%d i=%d: %d want %d", n, off, r32, i, got[i], want[i])
					}
				}
			}
		}
	})
}

func TestMinMaxF32Equivalence(t *testing.T) {
	forEachTier(t, func(t *testing.T) {
		rng := rand.New(rand.NewSource(3))
		for n := 1; n <= 200; n++ {
			for off := 0; off < 4; off++ {
				data := offsetF32(n, off)
				for i := range data {
					data[i] = float32(rng.NormFloat64())
				}
				if n > 2 && rng.Intn(2) == 0 {
					data[1+rng.Intn(n-1)] = float32(math.NaN())
				}
				gmn, gmx := MinMaxF32(data)
				wmn, wmx := minMaxF32PureGo(data)
				// Compare as values: ±0 sign is unspecified, NaN==NaN via
				// bit check.
				eq := func(a, b float32) bool {
					return a == b || (math.IsNaN(float64(a)) && math.IsNaN(float64(b)))
				}
				if !eq(gmn, wmn) || !eq(gmx, wmx) {
					t.Fatalf("n=%d off=%d: (%v,%v) want (%v,%v)", n, off, gmn, gmx, wmn, wmx)
				}
			}
		}
		// NaN in the seed position sticks, by contract, in every tier.
		nan := float32(math.NaN())
		data := []float32{nan, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15,
			16, 17, 18, 19, 20, 21, 22, 23, 24, 25, 26, 27, 28, 29, 30, 31, 32}
		mn, mx := MinMaxF32(data)
		if !math.IsNaN(float64(mn)) || !math.IsNaN(float64(mx)) {
			t.Fatalf("NaN seed: got (%v, %v), want NaN accumulators", mn, mx)
		}
	})
}

func TestHistEquivalence(t *testing.T) {
	forEachTier(t, func(t *testing.T) {
		rng := rand.New(rand.NewSource(4))
		for _, bins := range []int{2, 17, 256, 1024, 65536} {
			lengths := []int{0, 1, 7, 8, 15, 16, 17, 31, 33, 100, 200}
			if bins == 65536 {
				lengths = []int{100} // keep the big-table case cheap
			}
			for _, n := range lengths {
				for off := 0; off < 4; off++ {
					codes := offsetU16(n, off)
					for i := range codes {
						codes[i] = uint16(rng.Intn(bins))
					}
					oob := n > 0 && bins < 65536 && rng.Intn(2) == 0
					if oob {
						codes[rng.Intn(n)] = uint16(bins) // one past the end
					}
					got := offsetU32(4*bins, off)
					want := make([]uint32, 4*bins)
					okGot := HistAccum(got, codes, bins)
					okWant := histAccumPureGo(want, codes, bins)
					if okGot != okWant {
						t.Fatalf("bins=%d n=%d off=%d oob=%v: ok=%v want %v", bins, n, off, oob, okGot, okWant)
					}
					if !okGot {
						continue // table contents unspecified on failure
					}
					for i := range want {
						if got[i] != want[i] {
							t.Fatalf("bins=%d n=%d off=%d tab[%d]=%d want %d", bins, n, off, i, got[i], want[i])
						}
					}
					// Merge equivalence on the freshly built tables, with a
					// non-zero destination to cover the += semantics.
					outGot := offsetU32(bins, off)
					outWant := make([]uint32, bins)
					for i := 0; i < bins; i++ {
						outGot[i] = uint32(i)
						outWant[i] = uint32(i)
					}
					HistMerge(outGot, got)
					histMergePureGo(outWant, want)
					for i := range outWant {
						if outGot[i] != outWant[i] {
							t.Fatalf("merge bins=%d n=%d out[%d]=%d want %d", bins, n, i, outGot[i], outWant[i])
						}
					}
				}
			}
		}
	})
}

func TestNextZeroEquivalence(t *testing.T) {
	forEachTier(t, func(t *testing.T) {
		rng := rand.New(rand.NewSource(5))
		for n := 0; n <= 200; n++ {
			for off := 0; off < 4; off++ {
				codes := offsetU16(n, off)
				for i := range codes {
					codes[i] = uint16(1 + rng.Intn(1000))
				}
				// Three shapes: no zero, one zero at a random position, and
				// a zero in every 16-group (early exits).
				for pass := 0; pass < 3 && pass <= n; pass++ {
					switch pass {
					case 1:
						codes[rng.Intn(n)] = 0
					case 2:
						for i := 0; i < n; i += 16 {
							codes[i+rng.Intn(min(16, n-i))] = 0
						}
					}
					got := NextZero(codes)
					want := nextZeroPureGo(codes)
					if got != want {
						t.Fatalf("n=%d off=%d pass=%d: %d want %d", n, off, pass, got, want)
					}
				}
			}
		}
	})
}

func TestSumLengthsEquivalence(t *testing.T) {
	forEachTier(t, func(t *testing.T) {
		rng := rand.New(rand.NewSource(6))
		table := offsetU32(300, 1)
		for i := range table {
			table[i] = uint32(1 + rng.Intn(32))
		}
		table[17] = 0 // a hole: symbol with no code
		for n := 0; n <= 200; n++ {
			for off := 0; off < 4; off++ {
				codes := offsetU16(n, off)
				for i := range codes {
					codes[i] = uint16(rng.Intn(299))
					if codes[i] == 17 {
						codes[i] = 18
					}
				}
				for pass := 0; pass < 3 && pass <= n; pass++ {
					switch pass {
					case 1:
						codes[rng.Intn(n)] = 17 // zero-length symbol
					case 2:
						codes[rng.Intn(n)] = 300 // out of table range
					}
					gotBits, gotOK := SumLengths(table, codes)
					wantBits, wantOK := sumLengthsPureGo(table, codes)
					if gotBits != wantBits || gotOK != wantOK {
						t.Fatalf("n=%d off=%d pass=%d: (%d,%v) want (%d,%v)",
							n, off, pass, gotBits, gotOK, wantBits, wantOK)
					}
				}
			}
		}
	})
}

// TestSumLengthsLargeSpan crosses the assembly wrapper's 1 Mi-code span
// boundary so the per-span lane accumulation and carry into the uint64
// total is exercised.
func TestSumLengthsLargeSpan(t *testing.T) {
	if testing.Short() {
		t.Skip("large allocation")
	}
	forEachTier(t, func(t *testing.T) {
		table := []uint32{0, 7, 255}
		codes := make([]uint16, (1<<20)+12345)
		for i := range codes {
			codes[i] = uint16(1 + i%2)
		}
		got, okGot := SumLengths(table, codes)
		want, okWant := sumLengthsPureGo(table, codes)
		if got != want || okGot != okWant {
			t.Fatalf("(%d,%v) want (%d,%v)", got, okGot, want, okWant)
		}
	})
}

func TestUse(t *testing.T) {
	defer func() {
		if err := Use("auto"); err != nil {
			t.Fatalf("restoring auto tier: %v", err)
		}
	}()
	if err := Use("purego"); err != nil {
		t.Fatalf("Use(purego): %v", err)
	}
	if Active() != PureGo {
		t.Fatalf("Active() = %q after Use(purego)", Active())
	}
	if VectorRows() {
		t.Fatal("VectorRows() true under purego")
	}
	for k, impl := range PerKernel() {
		if impl != PureGo {
			t.Fatalf("PerKernel()[%q] = %q under purego", k, impl)
		}
	}
	if err := Use("bogus"); err == nil {
		t.Fatal("Use(bogus) succeeded")
	}
	if Active() != PureGo {
		t.Fatalf("failed Use changed the tier to %q", Active())
	}
	if err := Use("auto"); err != nil {
		t.Fatalf("Use(auto): %v", err)
	}
	if Active() != bestName() {
		t.Fatalf("Active() = %q, want best %q", Active(), bestName())
	}
	if Active() != PureGo && !VectorRows() {
		t.Fatalf("tier %q installed without vector rows", Active())
	}
}

// FuzzKernelEquivalence feeds arbitrary byte strings through every
// dispatched kernel and its pure-Go twin, asserting bit-identical results.
// The installed tier is whatever init detected, so on AVX2 hosts this
// fuzzes the assembly; under -tags purego it degenerates to a self-check.
func FuzzKernelEquivalence(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{0x7f, 0xc0, 0, 0, 0x3f, 0x80, 0, 0, 0xff, 0x80, 0, 0}) // NaN, 1, -Inf
	seed := make([]byte, 133)
	for i := range seed {
		seed[i] = byte(i * 37)
	}
	f.Add(seed)
	f.Fuzz(func(t *testing.T, raw []byte) {
		// float32 view for quantize/minmax; uint16 view for codes.
		fs := make([]float32, len(raw)/4)
		for i := range fs {
			fs[i] = math.Float32frombits(uint32(raw[4*i]) | uint32(raw[4*i+1])<<8 |
				uint32(raw[4*i+2])<<16 | uint32(raw[4*i+3])<<24)
		}
		us := make([]uint16, len(raw)/2)
		for i := range us {
			us[i] = uint16(raw[2*i]) | uint16(raw[2*i+1])<<8
		}

		qGot := make([]int32, len(fs))
		qWant := make([]int32, len(fs))
		okGot := QuantizeF32(fs, qGot, 0.25, 1<<29)
		okWant := quantizeF32PureGo(fs, qWant, 0.25, 1<<29)
		if okGot != okWant {
			t.Fatalf("quantize ok=%v want %v", okGot, okWant)
		}
		if okGot {
			for i := range qWant {
				if qGot[i] != qWant[i] {
					t.Fatalf("quantize[%d] = %d want %d (bits %x)", i, qGot[i], qWant[i], math.Float32bits(fs[i]))
				}
			}
		}

		if len(fs) > 0 {
			gmn, gmx := MinMaxF32(fs)
			wmn, wmx := minMaxF32PureGo(fs)
			if math.Float32bits(gmn) != math.Float32bits(wmn) && gmn != wmn {
				t.Fatalf("min %v want %v", gmn, wmn)
			}
			if math.Float32bits(gmx) != math.Float32bits(wmx) && gmx != wmx {
				t.Fatalf("max %v want %v", gmx, wmx)
			}
		}

		if len(us) > 0 {
			q := make([]int32, len(us)+1)
			up := make([]int32, len(us)+1)
			for i := range q {
				q[i] = int32(uint32(raw[i%len(raw)])<<8) - 8000
				up[i] = int32(uint32(raw[(i*3+1)%len(raw)])) - 100
			}
			codes := us[:len(us)-1+1]
			gotC := make([]uint16, len(codes))
			wantC := make([]uint16, len(codes))
			DiffCodes1(q[:len(codes)+1], gotC, 512)
			diffCodes1PureGo(q[:len(codes)+1], wantC, 512)
			for i := range wantC {
				if gotC[i] != wantC[i] {
					t.Fatalf("diff1[%d] = %d want %d", i, gotC[i], wantC[i])
				}
			}
			DiffCodes3(q[:len(codes)+1], up[:len(codes)+1], q[:len(codes)+1], up[:len(codes)+1], gotC, 512)
			diffCodes3PureGo(q[:len(codes)+1], up[:len(codes)+1], q[:len(codes)+1], up[:len(codes)+1], wantC, 512)
			for i := range wantC {
				if gotC[i] != wantC[i] {
					t.Fatalf("diff3[%d] = %d want %d", i, gotC[i], wantC[i])
				}
			}
		}

		const bins = 256
		masked := make([]uint16, len(us))
		for i, c := range us {
			masked[i] = c & 0x1FF // half in range, half out
		}
		hGot := make([]uint32, 4*bins)
		hWant := make([]uint32, 4*bins)
		hOKGot := HistAccum(hGot, masked, bins)
		hOKWant := histAccumPureGo(hWant, masked, bins)
		if hOKGot != hOKWant {
			t.Fatalf("hist ok=%v want %v", hOKGot, hOKWant)
		}
		if hOKGot {
			for i := range hWant {
				if hGot[i] != hWant[i] {
					t.Fatalf("hist[%d] = %d want %d", i, hGot[i], hWant[i])
				}
			}
		}

		if got, want := NextZero(us), nextZeroPureGo(us); got != want {
			t.Fatalf("nextZero = %d want %d", got, want)
		}

		table := make([]uint32, 512)
		for i := range table {
			table[i] = uint32(i % 33) // zeros at multiples of 33
		}
		gotBits, gotOK := SumLengths(table, masked)
		wantBits, wantOK := sumLengthsPureGo(table, masked)
		if gotBits != wantBits || gotOK != wantOK {
			t.Fatalf("sumLengths (%d,%v) want (%d,%v)", gotBits, gotOK, wantBits, wantOK)
		}
	})
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Microbenchmarks report every tier this build supports so before/after
// numbers for the dispatch layer come from one run.

func benchTiers(b *testing.B, f func(b *testing.B)) {
	b.Helper()
	defer func() { _ = Use("auto") }()
	for _, tier := range Tiers() {
		if err := Use(tier); err != nil {
			b.Fatalf("Use(%q): %v", tier, err)
		}
		b.Run(tier, f)
	}
}

func BenchmarkQuantizeF32(b *testing.B) {
	data := make([]float32, 1<<16)
	rng := rand.New(rand.NewSource(7))
	for i := range data {
		data[i] = float32(rng.NormFloat64())
	}
	q := make([]int32, len(data))
	benchTiers(b, func(b *testing.B) {
		b.SetBytes(int64(4 * len(data)))
		for i := 0; i < b.N; i++ {
			QuantizeF32(data, q, 1e4, 1<<29)
		}
	})
}

func BenchmarkDiffCodes3(b *testing.B) {
	n := 1 << 16
	q := make([]int32, n+1)
	up := make([]int32, n+1)
	rng := rand.New(rand.NewSource(8))
	for i := range q {
		q[i] = int32(rng.Intn(100))
		up[i] = int32(rng.Intn(100))
	}
	codes := make([]uint16, n)
	benchTiers(b, func(b *testing.B) {
		b.SetBytes(int64(4 * n))
		for i := 0; i < b.N; i++ {
			DiffCodes3(q, up, q, up, codes, 512)
		}
	})
}

func BenchmarkMinMaxF32Kernel(b *testing.B) {
	data := make([]float32, 1<<16)
	rng := rand.New(rand.NewSource(9))
	for i := range data {
		data[i] = float32(rng.NormFloat64())
	}
	benchTiers(b, func(b *testing.B) {
		b.SetBytes(int64(4 * len(data)))
		for i := 0; i < b.N; i++ {
			MinMaxF32(data)
		}
	})
}

func BenchmarkHistAccum(b *testing.B) {
	const bins = 1024
	codes := make([]uint16, 1<<16)
	rng := rand.New(rand.NewSource(10))
	for i := range codes {
		codes[i] = uint16(rng.Intn(bins))
	}
	tabs := make([]uint32, 4*bins)
	benchTiers(b, func(b *testing.B) {
		b.SetBytes(int64(2 * len(codes)))
		for i := 0; i < b.N; i++ {
			HistAccum(tabs, codes, bins)
		}
	})
}

func BenchmarkNextZero(b *testing.B) {
	codes := make([]uint16, 1<<16)
	for i := range codes {
		codes[i] = 1
	}
	benchTiers(b, func(b *testing.B) {
		b.SetBytes(int64(2 * len(codes)))
		for i := 0; i < b.N; i++ {
			NextZero(codes)
		}
	})
}

func BenchmarkSumLengths(b *testing.B) {
	table := make([]uint32, 1024)
	for i := range table {
		table[i] = uint32(1 + i%24)
	}
	codes := make([]uint16, 1<<16)
	rng := rand.New(rand.NewSource(11))
	for i := range codes {
		codes[i] = uint16(rng.Intn(1024))
	}
	benchTiers(b, func(b *testing.B) {
		b.SetBytes(int64(2 * len(codes)))
		for i := 0; i < b.N; i++ {
			SumLengths(table, codes)
		}
	})
}
