//go:build arm64 && !purego

package dispatch

// The arm64 tier: ASIMD (NEON) is architecturally baseline on arm64, so
// there is no feature probe — but only the kernels the Go arm64 assembler
// can express cleanly run as vector code (it has no vector float min/max,
// signed vector compare, or widen/narrow mnemonics). The rest of the tier
// stays pure Go per kernel, and PerKernel reports the split. vectorRows
// stays false: without a vector quantizer the Lorenzo two-phase row
// structure would pay its extra pass without the vector payoff.

func bestName() string { return NEON }

func installTier(name string) bool {
	if name != NEON {
		return false
	}
	installPureGo()
	HistMerge = histMergeNEON
	NextZero = nextZeroNEON
	return true
}

func perKernel() map[string]string {
	m := map[string]string{
		"quantize":    PureGo,
		"diff_codes":  PureGo,
		"minmax":      PureGo,
		"hist_accum":  PureGo,
		"hist_merge":  PureGo,
		"next_zero":   PureGo,
		"sum_lengths": PureGo,
	}
	if active == NEON {
		m["hist_merge"] = NEON
		m["next_zero"] = NEON
	}
	return m
}
