//go:build amd64 && !purego

package dispatch

// Assembly cores (kernels_amd64.s). Each processes the longest prefix its
// vector width covers (8 or 16 elements per iteration, unaligned loads, so
// any slice alignment is fine); the Go wrappers finish the scalar tails
// with the purego reference, which keeps every result bit-identical to the
// fallback at any length.

func quantAVX2Asm(data []float32, q []int32, scale, lim float64) bool
func diff1AVX2Asm(q []int32, codes []uint16, r32 int32)
func diff2AVX2Asm(q, up []int32, codes []uint16, r32 int32)
func diff3AVX2Asm(q, up, back, backUp []int32, codes []uint16, r32 int32)
func minMaxAVX2Asm(data []float32) (mn, mx float32)
func histAccumAVX2Asm(tabs []uint32, codes []uint16, bins int) bool
func histMergeAVX2Asm(out, tabs []uint32, stride int)
func nextZeroAVX2Asm(codes []uint16) int
func sumLengthsAVX2Asm(lengths32 []uint32, codes []uint16) (sum uint64, ok bool)

func quantizeF32AVX2(data []float32, q []int32, scale, lim float64) bool {
	n8 := len(data) &^ 7
	if n8 > 0 && !quantAVX2Asm(data[:n8], q[:n8], scale, lim) {
		return false
	}
	return quantizeF32PureGo(data[n8:], q[n8:len(data)], scale, lim)
}

// maxPackRadius bounds the quantizer radius the assembly diff kernels can
// pack exactly: in-range codes are d+r32 in (0, 2*r32), and VPACKUSDW's
// unsigned saturation matches Go's uint16 conversion only up to 65535.
// Codes are uint16 so real codebooks never exceed this; larger radii (only
// reachable through direct kernel calls) take the reference path.
const maxPackRadius = 1 << 15

func diffCodes1AVX2(q []int32, codes []uint16, r32 int32) {
	if r32 > maxPackRadius {
		diffCodes1PureGo(q, codes, r32)
		return
	}
	n8 := len(codes) &^ 7
	if n8 > 0 {
		diff1AVX2Asm(q, codes[:n8], r32)
	}
	diffCodes1PureGo(q[n8:], codes[n8:], r32)
}

func diffCodes2AVX2(q, up []int32, codes []uint16, r32 int32) {
	if r32 > maxPackRadius {
		diffCodes2PureGo(q, up, codes, r32)
		return
	}
	n8 := len(codes) &^ 7
	if n8 > 0 {
		diff2AVX2Asm(q, up, codes[:n8], r32)
	}
	diffCodes2PureGo(q[n8:], up[n8:], codes[n8:], r32)
}

func diffCodes3AVX2(q, up, back, backUp []int32, codes []uint16, r32 int32) {
	if r32 > maxPackRadius {
		diffCodes3PureGo(q, up, back, backUp, codes, r32)
		return
	}
	n8 := len(codes) &^ 7
	if n8 > 0 {
		diff3AVX2Asm(q, up, back, backUp, codes[:n8], r32)
	}
	diffCodes3PureGo(q[n8:], up[n8:], back[n8:], backUp[n8:], codes[n8:], r32)
}

func minMaxF32AVX2(data []float32) (float32, float32) {
	n8 := len(data) &^ 7
	if n8 < 32 {
		return minMaxF32PureGo(data)
	}
	mn, mx := minMaxAVX2Asm(data[:n8])
	for _, v := range data[n8:] {
		if v < mn {
			mn = v
		} else if v > mx {
			mx = v
		}
	}
	return mn, mx
}

func histAccumAVX2(tabs []uint32, codes []uint16, bins int) bool {
	n16 := len(codes) &^ 15
	if n16 > 0 && !histAccumAVX2Asm(tabs, codes[:n16], bins) {
		return false
	}
	return histAccumPureGo(tabs, codes[n16:], bins)
}

func histMergeAVX2(out, tabs []uint32) {
	b := len(out)
	n8 := b &^ 7
	if n8 > 0 {
		histMergeAVX2Asm(out[:n8], tabs, b)
	}
	for i := n8; i < b; i++ {
		out[i] += tabs[i] + tabs[b+i] + tabs[2*b+i] + tabs[3*b+i]
	}
}

func nextZeroAVX2(codes []uint16) int {
	n16 := len(codes) &^ 15
	if n16 > 0 {
		if idx := nextZeroAVX2Asm(codes[:n16]); idx >= 0 {
			return idx
		}
	}
	for i := n16; i < len(codes); i++ {
		if codes[i] == 0 {
			return i
		}
	}
	return -1
}

func sumLengthsAVX2(lengths32 []uint32, codes []uint16) (uint64, bool) {
	var bits uint64
	// Spans bound the asm core's eight uint32 lane accumulators: 1 Mi codes
	// per call times the Huffman length ceiling (code lengths are <= 32,
	// and the dispatch contract caps table entries at 255) stays far below
	// 2^32 per lane.
	const span = 1 << 20
	n8 := len(codes) &^ 7
	for lo := 0; lo < n8; lo += span {
		hi := lo + span
		if hi > n8 {
			hi = n8
		}
		s, ok := sumLengthsAVX2Asm(lengths32, codes[lo:hi])
		if !ok {
			return 0, false
		}
		bits += s
	}
	tail, ok := sumLengthsPureGo(lengths32, codes[n8:])
	if !ok {
		return 0, false
	}
	return bits + tail, true
}
