//go:build arm64 && !purego

package dispatch

// Assembly cores (kernels_arm64.s). As on amd64, each processes only whole
// vector groups and the Go wrappers finish the scalar tails with the
// purego reference, keeping results bit-identical to the fallback.

func histMergeNEONAsm(out, tabs []uint32, stride int)
func nextZeroNEONAsm(codes []uint16) int

func histMergeNEON(out, tabs []uint32) {
	b := len(out)
	n8 := b &^ 7
	if n8 > 0 {
		histMergeNEONAsm(out[:n8], tabs, b)
	}
	for i := n8; i < b; i++ {
		out[i] += tabs[i] + tabs[b+i] + tabs[2*b+i] + tabs[3*b+i]
	}
}

func nextZeroNEON(codes []uint16) int {
	n16 := len(codes) &^ 15
	if n16 > 0 {
		if idx := nextZeroNEONAsm(codes[:n16]); idx >= 0 {
			return idx
		}
	}
	for i := n16; i < len(codes); i++ {
		if codes[i] == 0 {
			return i
		}
	}
	return -1
}
