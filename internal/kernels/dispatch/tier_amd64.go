//go:build amd64 && !purego

package dispatch

// CPUID/XGETBV probes, implemented in cpuid_amd64.s. Hand-rolled rather
// than golang.org/x/sys/cpu so the module stays pure-stdlib.
func cpuid(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)
func xgetbv() (eax, edx uint32)

// hasAVX2 reports CPU and OS support for AVX2: the CPUID feature bit plus
// OSXSAVE with XMM and YMM state enabled in XCR0 (without which the OS
// does not preserve the upper YMM halves across context switches).
func hasAVX2() bool {
	maxID, _, _, _ := cpuid(0, 0)
	if maxID < 7 {
		return false
	}
	_, _, ecx1, _ := cpuid(1, 0)
	const osxsave = 1 << 27
	const avx = 1 << 28
	if ecx1&osxsave == 0 || ecx1&avx == 0 {
		return false
	}
	if eax, _ := xgetbv(); eax&0x6 != 0x6 { // XMM and YMM state
		return false
	}
	_, ebx7, _, _ := cpuid(7, 0)
	const avx2 = 1 << 5
	return ebx7&avx2 != 0
}

func bestName() string {
	if hasAVX2() {
		return AVX2
	}
	return PureGo
}

// installTier installs the amd64 AVX2 tier: every dispatched kernel has a
// vector implementation here.
func installTier(name string) bool {
	if name != AVX2 || !hasAVX2() {
		return false
	}
	QuantizeF32 = quantizeF32AVX2
	DiffCodes1 = diffCodes1AVX2
	DiffCodes2 = diffCodes2AVX2
	DiffCodes3 = diffCodes3AVX2
	MinMaxF32 = minMaxF32AVX2
	HistAccum = histAccumAVX2
	HistMerge = histMergeAVX2
	NextZero = nextZeroAVX2
	SumLengths = sumLengthsAVX2
	vectorRows = true
	return true
}

func perKernel() map[string]string {
	impl := active
	return map[string]string{
		"quantize":    impl,
		"diff_codes":  impl,
		"minmax":      impl,
		"hist_accum":  impl,
		"hist_merge":  impl,
		"next_zero":   impl,
		"sum_lengths": impl,
	}
}
