//go:build !purego

#include "textflag.h"

// NEON kernel cores. Only whole vector groups; unaligned loads are native
// on arm64, so callers never need aligned slices.

// func histMergeNEONAsm(out, tabs []uint32, stride int)
// out[i] += tabs[i] + tabs[stride+i] + tabs[2*stride+i] + tabs[3*stride+i],
// eight bins per iteration. len(out) must be a multiple of 8.
TEXT ·histMergeNEONAsm(SB), NOSPLIT, $0-56
	MOVD out_base+0(FP), R0
	MOVD out_len+8(FP), R1
	MOVD tabs_base+24(FP), R2
	MOVD stride+48(FP), R3
	LSL  $2, R3, R3          // element stride -> byte stride
	ADD  R3, R2, R4          // t1
	ADD  R3, R4, R5          // t2
	ADD  R3, R5, R6          // t3

mergeloop:
	CMP  $8, R1
	BLT  mergedone
	VLD1.P 32(R2), [V0.S4, V1.S4]
	VLD1.P 32(R4), [V2.S4, V3.S4]
	VLD1.P 32(R5), [V4.S4, V5.S4]
	VLD1.P 32(R6), [V6.S4, V7.S4]
	VLD1 (R0), [V16.S4, V17.S4]
	VADD V2.S4, V0.S4, V0.S4
	VADD V3.S4, V1.S4, V1.S4
	VADD V6.S4, V4.S4, V4.S4
	VADD V7.S4, V5.S4, V5.S4
	VADD V4.S4, V0.S4, V0.S4
	VADD V5.S4, V1.S4, V1.S4
	VADD V16.S4, V0.S4, V0.S4
	VADD V17.S4, V1.S4, V1.S4
	VST1.P [V0.S4, V1.S4], 32(R0)
	SUB  $8, R1
	B    mergeloop

mergedone:
	RET

// func nextZeroNEONAsm(codes []uint16) int
// Index of the first zero code in the leading multiple-of-16 prefix, else
// -1. One compare pair covers sixteen codes; a hit falls back to a scalar
// walk of that group (the group is known to contain a zero, so the walk
// terminates inside it).
TEXT ·nextZeroNEONAsm(SB), NOSPLIT, $0-32
	MOVD codes_base+0(FP), R0
	MOVD codes_len+8(FP), R1
	MOVD ZR, R2              // running base index
	VEOR V0.B16, V0.B16, V0.B16

zeroloop:
	CMP  $16, R1
	BLT  zeronone
	VLD1.P 32(R0), [V1.H8, V2.H8]
	VCMEQ V0.H8, V1.H8, V3.H8
	VCMEQ V0.H8, V2.H8, V4.H8
	VORR V4.B16, V3.B16, V5.B16
	VUADDLV V5.H8, V6        // nonzero iff any lane matched
	VMOV V6.S[0], R3
	CBNZ R3, zerofound
	ADD  $16, R2
	SUB  $16, R1
	B    zeroloop

zerofound:
	SUB  $32, R0             // back to the start of the matching group

zeroscan:
	MOVHU.P 2(R0), R3
	CBZ  R3, zerohit
	ADD  $1, R2
	B    zeroscan

zerohit:
	MOVD R2, ret+24(FP)
	RET

zeronone:
	MOVD $-1, R3
	MOVD R3, ret+24(FP)
	RET
