package kernels

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"fzmod/internal/device"
)

var tp = device.NewTestPlatform()

func TestMinMaxF32(t *testing.T) {
	data := []float32{3, -7.5, 0, 12.25, 12.24, -7.4}
	mn, mx := MinMaxF32(tp, device.Accel, data)
	if mn != -7.5 || mx != 12.25 {
		t.Errorf("MinMax = (%v, %v), want (-7.5, 12.25)", mn, mx)
	}
}

func TestMinMaxF32Empty(t *testing.T) {
	mn, mx := MinMaxF32(tp, device.Accel, nil)
	if mn != 0 || mx != 0 {
		t.Errorf("MinMax(nil) = (%v, %v), want (0, 0)", mn, mx)
	}
}

func TestMinMaxF32Large(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	data := make([]float32, 100_000)
	wantMn, wantMx := float32(math.Inf(1)), float32(math.Inf(-1))
	for i := range data {
		data[i] = float32(rng.NormFloat64())
		if data[i] < wantMn {
			wantMn = data[i]
		}
		if data[i] > wantMx {
			wantMx = data[i]
		}
	}
	mn, mx := MinMaxF32(tp, device.Accel, data)
	if mn != wantMn || mx != wantMx {
		t.Errorf("MinMax = (%v, %v), want (%v, %v)", mn, mx, wantMn, wantMx)
	}
}

func TestSumF64(t *testing.T) {
	data := make([]float64, 10_000)
	for i := range data {
		data[i] = 1.0 / 16
	}
	got := SumF64(tp, device.Accel, data)
	if math.Abs(got-625) > 1e-9 {
		t.Errorf("SumF64 = %v, want 625", got)
	}
}

func TestCountU16(t *testing.T) {
	codes := make([]uint16, 50_000)
	for i := range codes {
		codes[i] = uint16(i % 7)
	}
	got := CountU16(tp, device.Accel, codes, 3)
	want := 0
	for _, c := range codes {
		if c == 3 {
			want++
		}
	}
	if got != want {
		t.Errorf("CountU16 = %d, want %d", got, want)
	}
}

func TestExclusiveScanMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{0, 1, 5, 4095, 4096, 4097, 20_000} {
		src := make([]uint32, n)
		for i := range src {
			src[i] = uint32(rng.Intn(10))
		}
		got, total := ExclusiveScan(tp, device.Accel, src)
		var acc uint32
		for i := 0; i < n; i++ {
			if got[i] != acc {
				t.Fatalf("n=%d: scan[%d] = %d, want %d", n, i, got[i], acc)
			}
			acc += src[i]
		}
		if total != acc {
			t.Fatalf("n=%d: total = %d, want %d", n, total, acc)
		}
	}
}

func TestCompactU32(t *testing.T) {
	keep := []uint32{0, 1, 0, 0, 1, 1, 0, 1}
	got := CompactU32(tp, device.Accel, keep)
	want := []uint32{1, 4, 5, 7}
	if len(got) != len(want) {
		t.Fatalf("compact len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("compact[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestGatherScatterInverse(t *testing.T) {
	n := 10_000
	rng := rand.New(rand.NewSource(3))
	src := make([]float32, n)
	for i := range src {
		src[i] = rng.Float32()
	}
	idx := make([]uint32, n/4)
	perm := rng.Perm(n)
	for i := range idx {
		idx[i] = uint32(perm[i])
	}
	gathered := make([]float32, len(idx))
	GatherF32(tp, device.Accel, gathered, src, idx)
	dst := make([]float32, n)
	ScatterF32(tp, device.Accel, dst, gathered, idx)
	for j, i := range idx {
		if dst[i] != src[i] {
			t.Fatalf("scatter∘gather not identity at idx[%d]=%d", j, i)
		}
	}
}

func TestPackUnpackBitsRoundtrip(t *testing.T) {
	for width := 0; width <= 32; width++ {
		rng := rand.New(rand.NewSource(int64(width)))
		vals := make([]uint32, 257)
		for i := range vals {
			vals[i] = rng.Uint32() & widthMask(width)
		}
		packed := PackBits(nil, vals, width)
		got, end := UnpackBits(packed, 0, len(vals), width)
		if width > 0 && end != len(vals)*width {
			t.Fatalf("width %d: end bit = %d, want %d", width, end, len(vals)*width)
		}
		for i := range vals {
			if got[i] != vals[i] {
				t.Fatalf("width %d: vals[%d] = %d, want %d", width, i, got[i], vals[i])
			}
		}
	}
}

func TestPackBitsAppendsToExisting(t *testing.T) {
	dst := []byte{0xAA}
	dst = PackBits(dst, []uint32{0b101, 0b011}, 3)
	if dst[0] != 0xAA {
		t.Error("PackBits must not clobber existing prefix")
	}
	got, _ := UnpackBits(dst, 8, 2, 3)
	if got[0] != 0b101 || got[1] != 0b011 {
		t.Errorf("unpacked %v", got)
	}
}

func TestBitsFor(t *testing.T) {
	cases := map[uint32]int{0: 0, 1: 1, 2: 2, 3: 2, 4: 3, 255: 8, 256: 9, math.MaxUint32: 32}
	for v, want := range cases {
		if got := BitsFor(v); got != want {
			t.Errorf("BitsFor(%d) = %d, want %d", v, got, want)
		}
	}
}

func TestZigZagRoundtrip(t *testing.T) {
	f := func(v int32) bool { return UnZigZag(ZigZag(v)) == v }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	// Small magnitudes map to small codes.
	if ZigZag(0) != 0 || ZigZag(-1) != 1 || ZigZag(1) != 2 || ZigZag(-2) != 3 {
		t.Error("ZigZag ordering violated")
	}
}

func TestBitshuffleRoundtrip(t *testing.T) {
	for _, n := range []int{1, 7, 8, 9, 255, 256, 1024, 1000} {
		rng := rand.New(rand.NewSource(int64(n)))
		vals := make([]uint16, n)
		for i := range vals {
			vals[i] = uint16(rng.Uint32())
		}
		got := Unbitshuffle(Bitshuffle(vals), n)
		for i := range vals {
			if got[i] != vals[i] {
				t.Fatalf("n=%d: roundtrip mismatch at %d", n, i)
			}
		}
	}
}

func TestBitshuffleConcentratesZeros(t *testing.T) {
	// Small values → high bit-planes are all zero bytes; that property is
	// what the FZ-GPU dictionary stage exploits.
	vals := make([]uint16, 1024)
	for i := range vals {
		vals[i] = uint16(i % 4) // only 2 bit-planes populated
	}
	sh := Bitshuffle(vals)
	zeroBytes := 0
	for _, b := range sh {
		if b == 0 {
			zeroBytes++
		}
	}
	if zeroBytes < len(sh)*13/16 {
		t.Errorf("expected ≥13/16 zero bytes after shuffle of 2-bit values, got %d/%d", zeroBytes, len(sh))
	}
}

func TestBitshuffleProperty(t *testing.T) {
	f := func(vals []uint16) bool {
		got := Unbitshuffle(Bitshuffle(vals), len(vals))
		for i := range vals {
			if got[i] != vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestScanProperty(t *testing.T) {
	f := func(src []uint32) bool {
		// Bound values to avoid overflow ambiguity in the check.
		for i := range src {
			src[i] %= 1000
		}
		got, total := ExclusiveScan(tp, device.Accel, src)
		var acc uint32
		for i := range src {
			if got[i] != acc {
				return false
			}
			acc += src[i]
		}
		return total == acc
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestZigZag16Bijection(t *testing.T) {
	seen := make(map[uint16]bool, 1<<16)
	for v := 0; v < 1<<16; v++ {
		u := ZigZag16(int16(v))
		if seen[u] {
			t.Fatalf("ZigZag16 not injective at %d", v)
		}
		seen[u] = true
		if UnZigZag16(u) != int16(v) {
			t.Fatalf("UnZigZag16(ZigZag16(%d)) = %d", int16(v), UnZigZag16(u))
		}
	}
}

func TestBitshuffle32Roundtrip(t *testing.T) {
	for _, n := range []int{1, 8, 9, 4096, 1000} {
		rng := rand.New(rand.NewSource(int64(n)))
		vals := make([]uint32, n)
		for i := range vals {
			vals[i] = rng.Uint32()
		}
		got := Unbitshuffle32(Bitshuffle32(vals), n)
		for i := range vals {
			if got[i] != vals[i] {
				t.Fatalf("n=%d mismatch at %d", n, i)
			}
		}
	}
}

func TestBitshuffle32Property(t *testing.T) {
	f := func(vals []uint32) bool {
		got := Unbitshuffle32(Bitshuffle32(vals), len(vals))
		for i := range vals {
			if got[i] != vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
