// Package sdrbench generates synthetic stand-ins for the four SDRBench
// datasets the paper evaluates on (Table 2): CESM-ATM (climate), HACC
// (cosmology particles), Hurricane ISABEL, and Nyx (cosmology fields). The
// real datasets cannot ship with this reproduction, so each generator is
// designed to match the statistical character that drives compression
// behaviour on its original:
//
//   - CESM-ATM: layered 2.5-D fields — smooth large-scale spectral modes,
//     a strong latitudinal gradient, and fine-scale variability (the
//     sub-grid texture real model output has, which differencing
//     predictors amplify and interpolation averages). Very compressible
//     at loose bounds.
//   - HACC: unordered 1-D particle coordinates with strong clustering
//     (halos) — locally correlated but globally jumpy; the hardest stream
//     for interpolation predictors, matching the paper's observation that
//     HACC ratios collapse at tight bounds.
//   - HURR: a hurricane-like vortex — a rotational flow field with an eye,
//     rain bands, and broadband turbulence.
//   - NYX: lognormal baryon-density-like field — exp of a smooth Gaussian
//     process, producing the huge dynamic range that gives Nyx its extreme
//     ratios at loose relative bounds.
//
// All generators are deterministic in (dims, seed).
package sdrbench

import (
	"fmt"
	"math"
	"math/rand"

	"fzmod/internal/grid"
)

// Dataset identifies one of the four evaluation datasets.
type Dataset int

const (
	CESM Dataset = iota
	HACC
	HURR
	NYX
)

// String returns the paper's dataset name.
func (d Dataset) String() string {
	switch d {
	case CESM:
		return "CESM-ATM"
	case HACC:
		return "HACC"
	case HURR:
		return "HURR"
	case NYX:
		return "NYX"
	default:
		return fmt.Sprintf("dataset(%d)", int(d))
	}
}

// All lists the four datasets in the paper's table order.
func All() []Dataset { return []Dataset{CESM, HACC, HURR, NYX} }

// DefaultDims returns the container-scale dimensions used by the benchmark
// harness (scaled from Table 2, same dimensional character).
func DefaultDims(d Dataset) grid.Dims {
	switch d {
	case CESM:
		return grid.D3(512, 256, 8) // 3600×1800×26 scaled
	case HACC:
		return grid.D1(4 << 20) // 280,953,867 particles scaled
	case HURR:
		return grid.D3(128, 128, 64) // 500×500×100 scaled
	default:
		return grid.D3(128, 128, 128) // 512³ scaled
	}
}

// Generate produces the synthetic field for a dataset at the given dims.
func Generate(d Dataset, dims grid.Dims, seed int64) []float32 {
	switch d {
	case CESM:
		return GenCESM(dims, seed)
	case HACC:
		return GenHACC(dims.N(), seed)
	case HURR:
		return GenHURR(dims, seed)
	default:
		return GenNYX(dims, seed)
	}
}

// mode is one random spectral component.
type mode struct {
	kx, ky, kz float64
	phase      float64
	amp        float64
}

// spectralModes draws nModes random-phase components with a power-law
// spectrum |k|^-slope, the standard synthesis for smooth geophysical
// fields.
func spectralModes(rng *rand.Rand, nModes int, slope, kMax float64) []mode {
	modes := make([]mode, nModes)
	var varSum float64
	for i := range modes {
		k := math.Pow(rng.Float64(), 2)*kMax + 0.02 // bias toward large scales
		theta := rng.Float64() * math.Pi
		phi := rng.Float64() * 2 * math.Pi
		amp := math.Pow(k/0.02, -slope)
		modes[i] = mode{
			kx:    k * math.Sin(theta) * math.Cos(phi),
			ky:    k * math.Sin(theta) * math.Sin(phi),
			kz:    k * math.Cos(theta),
			phase: rng.Float64() * 2 * math.Pi,
			amp:   amp,
		}
		varSum += amp * amp / 2
	}
	// Normalize to unit variance so callers control field magnitude.
	norm := 1 / math.Sqrt(varSum)
	for i := range modes {
		modes[i].amp *= norm
	}
	return modes
}

func evalModes(modes []mode, x, y, z float64) float64 {
	var v float64
	for _, m := range modes {
		v += m.amp * math.Cos(m.kx*x+m.ky*y+m.kz*z+m.phase)
	}
	return v
}

// GenCESM synthesizes a layered climate field: per-level smooth spectral
// modes, a latitudinal temperature-like gradient, and weak observational
// noise. Levels are correlated but not identical, as in atmosphere model
// output.
func GenCESM(dims grid.Dims, seed int64) []float32 {
	rng := rand.New(rand.NewSource(seed ^ 0xCE5A))
	base := spectralModes(rng, 24, 1.4, 0.10)
	detail := spectralModes(rng, 12, 1.0, 0.25)
	out := make([]float32, dims.N())
	noise := rand.New(rand.NewSource(seed ^ 0x7071))
	for z := 0; z < dims.Z; z++ {
		lvl := 230 + 3*float64(z) // stratified mean state
		for y := 0; y < dims.Y; y++ {
			lat := (float64(y)/float64(dims.Y) - 0.5) * math.Pi
			latGrad := 40 * math.Cos(lat) // warm equator, cold poles
			for x := 0; x < dims.X; x++ {
				// Vertical levels are correlated (mild z scaling), as in
				// real atmosphere output where adjacent pressure levels
				// track each other.
				fx, fy, fz := float64(x), float64(y), float64(z)*3
				v := lvl + latGrad +
					6*evalModes(base, fx, fy, fz) +
					1.5*evalModes(detail, fx, fy, fz) +
					0.005*noise.NormFloat64()
				out[dims.Idx(x, y, z)] = float32(v)
			}
		}
	}
	return out
}

// GenHACC synthesizes one coordinate array of n clustered particles:
// particles belong to halos (Gaussian blobs around halo centers) with a
// uniform background fraction, over a 256 Mpc-like box. Consecutive
// particles in file order share halos in runs, reproducing the weak local
// correlation of the real snapshots.
func GenHACC(n int, seed int64) []float32 {
	rng := rand.New(rand.NewSource(seed ^ 0x4ACC))
	const box = 256.0
	out := make([]float32, n)
	nHalos := n/4096 + 8
	centers := make([]float64, nHalos)
	scales := make([]float64, nHalos)
	for i := range centers {
		centers[i] = rng.Float64() * box
		scales[i] = 0.2 + 2*rng.Float64()
	}
	i := 0
	for i < n {
		// A run of particles from one halo, or background.
		run := 16 + rng.Intn(512)
		if i+run > n {
			run = n - i
		}
		if rng.Float64() < 0.15 {
			for j := 0; j < run; j++ {
				out[i] = float32(rng.Float64() * box)
				i++
			}
		} else {
			h := rng.Intn(nHalos)
			c, s := centers[h], scales[h]
			for j := 0; j < run; j++ {
				v := c + rng.NormFloat64()*s
				// Periodic wrap keeps coordinates in the box.
				v = math.Mod(math.Mod(v, box)+box, box)
				out[i] = float32(v)
				i++
			}
		}
	}
	return out
}

// GenHURR synthesizes a hurricane-like flow magnitude: a Rankine-style
// vortex with an eye at a height-dependent center, spiral rain bands, and
// broadband turbulence increasing away from the core.
func GenHURR(dims grid.Dims, seed int64) []float32 {
	rng := rand.New(rand.NewSource(seed ^ 0x4052))
	turb := spectralModes(rng, 32, 0.9, 0.3)
	out := make([]float32, dims.N())
	cx0, cy0 := 0.55*float64(dims.X), 0.45*float64(dims.Y)
	rCore := 0.06 * float64(dims.X)
	for z := 0; z < dims.Z; z++ {
		tilt := 0.02 * float64(z)
		cx := cx0 + tilt*float64(dims.X)*0.1
		cy := cy0 - tilt*float64(dims.Y)*0.05
		decay := math.Exp(-float64(z) / (0.7 * float64(dims.Z)))
		for y := 0; y < dims.Y; y++ {
			for x := 0; x < dims.X; x++ {
				dx, dy := float64(x)-cx, float64(y)-cy
				r := math.Hypot(dx, dy)
				// Rankine vortex tangential speed profile.
				var speed float64
				if r < rCore {
					speed = 60 * r / rCore
				} else {
					speed = 60 * math.Pow(rCore/r, 0.6)
				}
				angle := math.Atan2(dy, dx)
				band := 8 * math.Cos(3*angle-0.15*r)
				t := 2 * evalModes(turb, float64(x), float64(y), float64(z)*2)
				v := decay*(speed+band) + t
				out[dims.Idx(x, y, z)] = float32(v)
			}
		}
	}
	return out
}

// GenNYX synthesizes a baryon-density-like field: exp of a smooth Gaussian
// random field, scaled to the mean density, yielding the multi-decade
// dynamic range (voids vs halo peaks) characteristic of Nyx output.
func GenNYX(dims grid.Dims, seed int64) []float32 {
	rng := rand.New(rand.NewSource(seed ^ 0x9A78))
	modes := spectralModes(rng, 28, 1.4, 0.09)
	out := make([]float32, dims.N())
	// Fixed physical box: grid resolution varies, structure does not.
	sx := 256.0 / float64(dims.X)
	sy := 256.0 / float64(dims.Y)
	sz := 256.0 / float64(dims.Z)
	for z := 0; z < dims.Z; z++ {
		for y := 0; y < dims.Y; y++ {
			for x := 0; x < dims.X; x++ {
				g := evalModes(modes, float64(x)*sx, float64(y)*sy, float64(z)*sz)
				// Lognormal with deep voids: most of the box sits decades
				// below the halo peaks, as in real baryon density.
				out[dims.Idx(x, y, z)] = float32(1e9 * math.Exp(3.4*g))
			}
		}
	}
	return out
}
