package sdrbench

import (
	"math"
	"testing"

	"fzmod/internal/grid"
)

func TestDeterministic(t *testing.T) {
	for _, d := range All() {
		dims := grid.D3(16, 16, 4)
		if d == HACC {
			dims = grid.D1(4096)
		}
		a := Generate(d, dims, 7)
		b := Generate(d, dims, 7)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%v not deterministic at %d", d, i)
			}
		}
		c := Generate(d, dims, 8)
		same := true
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
		if same {
			t.Errorf("%v ignores seed", d)
		}
	}
}

func TestAllFinite(t *testing.T) {
	for _, d := range All() {
		dims := grid.D3(24, 24, 8)
		if d == HACC {
			dims = grid.D1(10000)
		}
		data := Generate(d, dims, 1)
		if len(data) != dims.N() {
			t.Fatalf("%v: len %d, want %d", d, len(data), dims.N())
		}
		for i, v := range data {
			if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
				t.Fatalf("%v: non-finite value at %d", d, i)
			}
		}
	}
}

func stats(data []float32) (mean, std, mn, mx float64) {
	mn, mx = math.Inf(1), math.Inf(-1)
	for _, v := range data {
		f := float64(v)
		mean += f
		if f < mn {
			mn = f
		}
		if f > mx {
			mx = f
		}
	}
	mean /= float64(len(data))
	for _, v := range data {
		d := float64(v) - mean
		std += d * d
	}
	std = math.Sqrt(std / float64(len(data)))
	return
}

func TestCESMHasLatitudinalStructure(t *testing.T) {
	dims := grid.D3(64, 64, 4)
	data := GenCESM(dims, 3)
	// Equator band should be warmer than pole band on average.
	var pole, equator float64
	for x := 0; x < dims.X; x++ {
		pole += float64(data[dims.Idx(x, 0, 0)])
		equator += float64(data[dims.Idx(x, dims.Y/2, 0)])
	}
	if equator <= pole {
		t.Error("CESM equator not warmer than pole; gradient missing")
	}
}

func TestCESMSmoothness(t *testing.T) {
	// Neighbor deltas must be far smaller than the field range — the
	// property that makes climate data compressible.
	dims := grid.D3(64, 64, 2)
	data := GenCESM(dims, 4)
	_, _, mn, mx := stats(data)
	var sumD float64
	var nD int
	for y := 0; y < dims.Y; y++ {
		for x := 1; x < dims.X; x++ {
			d := math.Abs(float64(data[dims.Idx(x, y, 0)]) - float64(data[dims.Idx(x-1, y, 0)]))
			sumD += d
			nD++
		}
	}
	meanDelta := sumD / float64(nD)
	if meanDelta > (mx-mn)/50 {
		t.Errorf("CESM mean neighbor delta %.3f too large vs range %.3f", meanDelta, mx-mn)
	}
}

func TestHACCInBoxAndClustered(t *testing.T) {
	data := GenHACC(200_000, 5)
	for i, v := range data {
		if v < 0 || v >= 256 {
			t.Fatalf("particle %d out of box: %v", i, v)
		}
	}
	// Clustering: consecutive-particle deltas should be bimodal — many
	// small (same halo) and some large (halo switch). Check that the
	// median delta is much smaller than the mean delta.
	deltas := make([]float64, 0, len(data)-1)
	var sum float64
	for i := 1; i < len(data); i++ {
		d := math.Abs(float64(data[i]) - float64(data[i-1]))
		deltas = append(deltas, d)
		sum += d
	}
	mean := sum / float64(len(deltas))
	small := 0
	for _, d := range deltas {
		if d < mean/4 {
			small++
		}
	}
	if float64(small)/float64(len(deltas)) < 0.5 {
		t.Error("HACC deltas not clustered: file order lacks halo runs")
	}
}

func TestHURRHasVortexCore(t *testing.T) {
	dims := grid.D3(64, 64, 8)
	data := GenHURR(dims, 6)
	// Peak wind should be near the eye wall, not at the domain edge.
	var edge, inner float64
	var nEdge, nInner int
	cx, cy := int(0.55*float64(dims.X)), int(0.45*float64(dims.Y))
	for y := 0; y < dims.Y; y++ {
		for x := 0; x < dims.X; x++ {
			v := float64(data[dims.Idx(x, y, 0)])
			dx, dy := x-cx, y-cy
			r := math.Hypot(float64(dx), float64(dy))
			if r < 8 {
				inner += v
				nInner++
			} else if r > float64(dims.X)/2 {
				edge += v
				nEdge++
			}
		}
	}
	if inner/float64(nInner) <= edge/float64(nEdge) {
		t.Error("HURR core winds not stronger than far field")
	}
}

func TestNYXDynamicRange(t *testing.T) {
	dims := grid.D3(32, 32, 32)
	data := GenNYX(dims, 7)
	_, _, mn, mx := stats(data)
	if mn <= 0 {
		t.Fatal("NYX density must be positive")
	}
	if mx/mn < 100 {
		t.Errorf("NYX dynamic range %.1f too small; want ≥ 2 decades", mx/mn)
	}
}

func TestDefaultDims(t *testing.T) {
	for _, d := range All() {
		dims := DefaultDims(d)
		if !dims.Valid() || dims.N() == 0 {
			t.Errorf("%v: invalid default dims %v", d, dims)
		}
	}
	if DefaultDims(HACC).Rank() != 1 {
		t.Error("HACC must be 1-D")
	}
	if DefaultDims(NYX).Rank() != 3 {
		t.Error("NYX must be 3-D")
	}
}

func TestNames(t *testing.T) {
	want := map[Dataset]string{CESM: "CESM-ATM", HACC: "HACC", HURR: "HURR", NYX: "NYX"}
	for d, name := range want {
		if d.String() != name {
			t.Errorf("%d.String() = %q, want %q", d, d.String(), name)
		}
	}
	if Dataset(9).String() != "dataset(9)" {
		t.Error("unknown dataset formatting")
	}
}
