package bench

import (
	"strings"
	"testing"
)

func scalingReport(eff float64) *ChunkedReport {
	return &ChunkedReport{Rows: []ChunkedRow{
		{Executor: "monolithic", CompGBs: 0.3},                                         // no efficiency: skipped
		{Executor: "chunked-p8-w1", GoMaxProcs: 8, Workers: 1, ScalingEfficiency: 1.0}, // w1 anchor
		{Executor: "chunked-p8-w8", GoMaxProcs: 8, Workers: 8, ScalingEfficiency: eff}, // gated row
		{Executor: "stream-w4", CompGBs: 0.3},                                          // no efficiency: skipped
	}}
}

func TestCompareScaling(t *testing.T) {
	base := scalingReport(0.8)
	cases := []struct {
		name string
		new  *ChunkedReport
		tol  float64
		fail bool
	}{
		{"unchanged", scalingReport(0.8), 0.2, false},
		{"within tolerance", scalingReport(0.65), 0.2, false},
		{"improvement", scalingReport(0.99), 0.2, false},
		{"regressed", scalingReport(0.5), 0.2, true},
		{"missing row skipped", &ChunkedReport{Rows: []ChunkedRow{{Executor: "other", ScalingEfficiency: 0.01}}}, 0.2, false},
	}
	for _, tc := range cases {
		err := CompareScaling(base, tc.new, tc.tol)
		if tc.fail && err == nil {
			t.Errorf("%s: expected failure", tc.name)
		}
		if !tc.fail && err != nil {
			t.Errorf("%s: unexpected %v", tc.name, err)
		}
		if tc.fail && err != nil && !strings.Contains(err.Error(), "scaling efficiency") {
			t.Errorf("%s: error %q missing fragment", tc.name, err)
		}
	}
	// Rows without an efficiency on either side never trip the gate (old
	// baselines, monolithic, stream rows).
	legacy := &ChunkedReport{Rows: []ChunkedRow{{Executor: "chunked-p8-w8"}}}
	if err := CompareScaling(legacy, scalingReport(0.01), 0.2); err != nil {
		t.Errorf("legacy baseline: %v", err)
	}
	if err := CompareScaling(base, legacy, 0.2); err != nil {
		t.Errorf("legacy new report: %v", err)
	}
}

// TestCompareThroughputSkipsMultiCoreRows pins the gate split: absolute
// GB/s applies to single-core rows only; multi-core matrix rows are
// covered by the relative scaling gate instead.
func TestCompareThroughputSkipsMultiCoreRows(t *testing.T) {
	base := &ChunkedReport{Rows: []ChunkedRow{
		{Executor: "chunked-p8-w8", GoMaxProcs: 8, CompGBs: 2.0, DecGBs: 2.0},
		{Executor: "chunked-p1-w1", GoMaxProcs: 1, CompGBs: 0.35, DecGBs: 0.5},
	}}
	slow := &ChunkedReport{Rows: []ChunkedRow{
		{Executor: "chunked-p8-w8", GoMaxProcs: 8, CompGBs: 0.1, DecGBs: 0.1}, // skipped
		{Executor: "chunked-p1-w1", GoMaxProcs: 1, CompGBs: 0.35, DecGBs: 0.5},
	}}
	if err := CompareThroughput(base, slow, 0.2); err != nil {
		t.Errorf("multi-core row should be skipped: %v", err)
	}
	slow.Rows[1].CompGBs = 0.1 // single-core regression must still trip
	if err := CompareThroughput(base, slow, 0.2); err == nil {
		t.Error("single-core regression not caught")
	}
}

// TestCompareThroughputSkipsKernelMismatch pins the cross-implementation
// exemption: a purego run gated against an AVX2 baseline (or vice versa)
// must not fail on absolute GB/s — the tiers differ by design. A legacy
// baseline with no tier recorded counts as a mismatch against a tiered run.
func TestCompareThroughputSkipsKernelMismatch(t *testing.T) {
	base := &ChunkedReport{Kernels: "avx2", Rows: []ChunkedRow{
		{Executor: "chunked-p1-w1", GoMaxProcs: 1, CompGBs: 1.0, DecGBs: 1.0},
	}}
	slow := &ChunkedReport{Kernels: "purego", Rows: []ChunkedRow{
		{Executor: "chunked-p1-w1", GoMaxProcs: 1, CompGBs: 0.3, DecGBs: 0.3},
	}}
	if err := CompareThroughput(base, slow, 0.2); err != nil {
		t.Errorf("cross-tier comparison should be skipped: %v", err)
	}
	legacy := &ChunkedReport{Rows: base.Rows}
	if err := CompareThroughput(legacy, slow, 0.2); err != nil {
		t.Errorf("legacy-baseline cross-tier comparison should be skipped: %v", err)
	}
	slow.Kernels = "avx2" // same tier: the gate must re-arm
	if err := CompareThroughput(base, slow, 0.2); err == nil {
		t.Error("same-tier regression not caught")
	}
}

// TestCalibrationSpeedup sanity-checks the synthetic scaling calibration:
// procs=1 is exactly 1, and every result is clamped to [1, procs] so the
// efficiency denominator min(workers, calibration) stays well-defined on
// any host.
func TestCalibrationSpeedup(t *testing.T) {
	if got := calibrationSpeedup(1); got != 1 {
		t.Errorf("calibrationSpeedup(1) = %v, want 1", got)
	}
	if testing.Short() {
		t.Skip("multi-proc calibration run in -short mode")
	}
	if got := calibrationSpeedup(2); got < 1 || got > 2 {
		t.Errorf("calibrationSpeedup(2) = %v, want within [1, 2]", got)
	}
}
