// Package bench is the evaluation harness: it regenerates every table and
// figure of the paper's §4 against the synthetic SDRBench stand-ins. Both
// cmd/fzbench and the root testing.B benchmarks drive these entry points,
// so the printed rows and the benchmark measurements come from one
// implementation.
package bench

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"fzmod/internal/baseline/cuszp2"
	"fzmod/internal/baseline/fzgpu"
	"fzmod/internal/baseline/pfpl"
	"fzmod/internal/baseline/sz3"
	"fzmod/internal/core"
	"fzmod/internal/device"
	"fzmod/internal/grid"
	"fzmod/internal/metrics"
	"fzmod/internal/preprocess"
	"fzmod/internal/sdrbench"
)

// Scale selects workload size.
type Scale int

const (
	// Small quarters each dimension — quick CI-grade runs.
	Small Scale = iota
	// Full uses the harness defaults from sdrbench.DefaultDims.
	Full
)

// EBs are the paper's three evaluation bounds (Table 3, Figures 1–3).
var EBs = []float64{1e-2, 1e-4, 1e-6}

// Dims returns the workload geometry for a dataset at a scale.
func Dims(ds sdrbench.Dataset, sc Scale) grid.Dims {
	d := sdrbench.DefaultDims(ds)
	if sc == Small {
		q := func(v int) int {
			v /= 4
			if v < 8 {
				v = 8
			}
			return v
		}
		switch d.Rank() {
		case 1:
			return grid.D1(d.X / 16)
		case 2:
			return grid.D2(q(d.X), q(d.Y))
		default:
			return grid.D3(q(d.X), q(d.Y), q(d.Z))
		}
	}
	return d
}

// Compressors returns the evaluated compressors in the paper's figure
// legend order: FZ-GPU, FZMod-default, FZMod-quality, FZMod-speed, PFPL,
// cuSZp2, with SZ3 appended for the CR/rate-distortion experiments.
func Compressors() []core.Compressor {
	return append(GPUCompressors(), sz3.New())
}

// GPUCompressors returns the throughput-comparison set (paper Figures 1–3
// exclude SZ3 as the low-throughput CPU reference).
func GPUCompressors() []core.Compressor {
	return []core.Compressor{
		fzgpu.Compressor{},
		core.NewDefault(),
		core.NewQuality(),
		core.NewSpeed(),
		pfpl.Compressor{},
		cuszp2.Compressor{},
	}
}

// Result is one (compressor, dataset, eb) measurement.
type Result struct {
	Compressor string
	Dataset    string
	EB         float64
	CR         float64
	Bitrate    float64 // bits per value
	PSNR       float64
	CompGBs    float64 // compression throughput
	DecompGBs  float64 // decompression throughput
	CompErr    error   // non-nil when the compressor rejected the setting
}

// datasets are generated once per (dataset, dims) and cached: generation
// costs more than compression at full scale.
var (
	cacheMu sync.Mutex
	cache   = map[string][]float32{}
)

// Data returns the (cached) primary synthetic field for a dataset.
func Data(ds sdrbench.Dataset, sc Scale) ([]float32, grid.Dims) {
	return DataField(ds, sc, 0)
}

// fieldSeeds generates distinct fields of the same dataset: Table 3
// reports ratios averaged over a dataset's fields (Table 2: 33/6/20/6
// fields), which this harness approximates with three.
var fieldSeeds = []int64{42, 1042, 90042}

// DataField returns the (cached) synthetic field with the given field
// index.
func DataField(ds sdrbench.Dataset, sc Scale, field int) ([]float32, grid.Dims) {
	dims := Dims(ds, sc)
	seed := fieldSeeds[field%len(fieldSeeds)]
	key := fmt.Sprintf("%v-%v-%d", ds, dims, seed)
	cacheMu.Lock()
	defer cacheMu.Unlock()
	if d, ok := cache[key]; ok {
		return d, dims
	}
	d := sdrbench.Generate(ds, dims, seed)
	cache[key] = d
	return d, dims
}

// RunOne measures one compressor on one dataset at one bound: timed
// compression, timed decompression, bound verification, and quality.
func RunOne(p *device.Platform, c core.Compressor, data []float32, dims grid.Dims, eb float64) Result {
	r := Result{Compressor: c.Name(), EB: eb}
	inBytes := 4 * dims.N()

	t0 := time.Now()
	blob, err := c.Compress(p, data, dims, preprocess.RelBound(eb))
	compSec := time.Since(t0).Seconds()
	if err != nil {
		// Matches the paper's Table 3 footnote: some pipelines reject
		// some (dataset, eb) combinations; the cell is reported empty.
		r.CompErr = err
		return r
	}
	t0 = time.Now()
	dec, _, err := c.Decompress(p, blob)
	decompSec := time.Since(t0).Seconds()
	if err != nil {
		r.CompErr = fmt.Errorf("decompress: %w", err)
		return r
	}
	absEB, _, _ := preprocess.Resolve(p, device.Host, data, preprocess.RelBound(eb))
	if i := metrics.VerifyBound(data, dec, absEB); i != -1 {
		r.CompErr = fmt.Errorf("bound violated at index %d", i)
		return r
	}
	q, err := metrics.Evaluate(p, device.Host, data, dec)
	if err != nil {
		r.CompErr = err
		return r
	}
	r.CR = metrics.CompressionRatio(inBytes, len(blob))
	r.Bitrate = metrics.Bitrate(dims.N(), len(blob))
	r.PSNR = q.PSNR
	r.CompGBs = metrics.Throughput(inBytes, compSec)
	r.DecompGBs = metrics.Throughput(inBytes, decompSec)
	return r
}

// Table3 regenerates the compression-ratio table: datasets × bounds ×
// compressors, with each cell the average over the dataset's fields, as in
// the paper ("Average Compression Ratios"). A compressor that rejects any
// field at a bound gets an empty cell, mirroring the paper's dropped HACC
// entries.
func Table3(w io.Writer, p *device.Platform, sc Scale) []Result {
	cs := Compressors()
	fmt.Fprintf(w, "Table 3: average compression ratios over %d fields (synthetic SDRBench stand-ins)\n", len(fieldSeeds))
	fmt.Fprintf(w, "%-10s %-8s", "Dataset", "eb")
	for _, c := range cs {
		fmt.Fprintf(w, " %14s", c.Name())
	}
	fmt.Fprintln(w)
	var out []Result
	for _, ds := range sdrbench.All() {
		for _, eb := range EBs {
			fmt.Fprintf(w, "%-10s %-8.0e", ds, eb)
			row := make([]Result, len(cs))
			for i, c := range cs {
				var sum float64
				ok := true
				for field := range fieldSeeds {
					data, dims := DataField(ds, sc, field)
					r := RunOne(p, c, data, dims, eb)
					if field == 0 {
						row[i] = r
						row[i].Dataset = ds.String()
					}
					if r.CompErr != nil {
						row[i].CompErr = r.CompErr
						ok = false
						break
					}
					sum += r.CR
				}
				if !ok {
					fmt.Fprintf(w, " %14s", "–")
					continue
				}
				row[i].CR = sum / float64(len(fieldSeeds))
				fmt.Fprintf(w, " %14.1f", row[i].CR)
			}
			fmt.Fprintln(w)
			out = append(out, row...)
		}
	}
	return out
}

// Fig1 regenerates the compression/decompression throughput figure.
func Fig1(w io.Writer, p *device.Platform, sc Scale) []Result {
	cs := GPUCompressors()
	fmt.Fprintf(w, "Figure 1: throughput in GB/s (shape comparison; absolute values are single-core Go)\n")
	var out []Result
	for _, dir := range []string{"compression", "decompression"} {
		fmt.Fprintf(w, "[%s]\n%-10s %-8s", dir, "Dataset", "eb")
		for _, c := range cs {
			fmt.Fprintf(w, " %14s", c.Name())
		}
		fmt.Fprintln(w)
		for _, ds := range sdrbench.All() {
			data, dims := Data(ds, sc)
			for _, eb := range EBs {
				fmt.Fprintf(w, "%-10s %-8.0e", ds, eb)
				for _, c := range cs {
					r := RunOne(p, c, data, dims, eb)
					r.Dataset = ds.String()
					if dir == "compression" {
						out = append(out, r)
					}
					v := r.CompGBs
					if dir == "decompression" {
						v = r.DecompGBs
					}
					if r.CompErr != nil {
						fmt.Fprintf(w, " %14s", "–")
					} else {
						fmt.Fprintf(w, " %14.3f", v)
					}
				}
				fmt.Fprintln(w)
			}
		}
	}
	return out
}

// paperPeakGBs is cuSZp2's approximate peak compression throughput on the
// paper's H100 (Figure 1 top row, ~600 GB/s). It anchors the bandwidth
// calibration below.
const paperPeakGBs = 600.0

// Speedup regenerates Figures 2 (H100 model) and 3 (V100 model): Eq. 1
// with the platform's measured-bandwidth figure from Table 1.
//
// Eq. 1 depends only on the ratio T/BW and on CR. Our compressors run on
// one Go core, so absolute T is ~3 orders of magnitude below the paper's
// GPUs; applying the paper's BW directly would make every speedup ~0 and
// erase the figure's shape. Instead the link bandwidth is rescaled by a
// single calibration factor — the ratio of our fastest measured compressor
// to cuSZp2's paper throughput — which preserves every T/BW ratio and
// therefore the figure's who-wins-where structure. The factor is printed
// with the table.
func Speedup(w io.Writer, p *device.Platform, sc Scale) []Result {
	cs := GPUCompressors()

	// Pass 1: measure everything.
	rows := make(map[string][]Result)
	var order []string
	peak := 0.0
	for _, ds := range sdrbench.All() {
		data, dims := Data(ds, sc)
		for _, eb := range EBs {
			key := fmt.Sprintf("%-10s %-8.0e", ds, eb)
			order = append(order, key)
			for _, c := range cs {
				r := RunOne(p, c, data, dims, eb)
				r.Dataset = ds.String()
				rows[key] = append(rows[key], r)
				if r.CompGBs > peak {
					peak = r.CompGBs
				}
			}
		}
	}
	scale := peak / paperPeakGBs
	bwGBs := p.LinkBandwidth / 1e9 * scale

	fmt.Fprintf(w, "Overall speedup (Eq. 1), BW=%.2f GB/s (Table 1) x calibration %.3g = %.4f GB/s (%s)\n",
		p.LinkBandwidth/1e9, scale, bwGBs, p.Name)
	fmt.Fprintf(w, "%-10s %-8s", "Dataset", "eb")
	for _, c := range cs {
		fmt.Fprintf(w, " %14s", c.Name())
	}
	fmt.Fprintln(w)
	var out []Result
	for _, key := range order {
		fmt.Fprint(w, key)
		for _, r := range rows[key] {
			out = append(out, r)
			if r.CompErr != nil {
				fmt.Fprintf(w, " %14s", "–")
				continue
			}
			sp := metrics.OverallSpeedup(r.CompGBs, bwGBs, r.CR)
			fmt.Fprintf(w, " %14.2f", sp)
		}
		fmt.Fprintln(w)
	}
	return out
}

// Fig4EBs is the rate–distortion sweep grid.
var Fig4EBs = []float64{1e-1, 1e-2, 1e-3, 1e-4, 1e-5, 1e-6}

// Fig4 regenerates the rate–distortion curves: (bitrate, PSNR) series per
// compressor per dataset over the bound sweep.
func Fig4(w io.Writer, p *device.Platform, sc Scale) []Result {
	cs := Compressors()
	fmt.Fprintf(w, "Figure 4: rate-distortion (bitrate bits/value → PSNR dB)\n")
	var out []Result
	for _, ds := range sdrbench.All() {
		data, dims := Data(ds, sc)
		fmt.Fprintf(w, "[%s]\n", ds)
		for _, c := range cs {
			fmt.Fprintf(w, "  %-16s", c.Name())
			series := make([]Result, 0, len(Fig4EBs))
			for _, eb := range Fig4EBs {
				r := RunOne(p, c, data, dims, eb)
				r.Dataset = ds.String()
				if r.CompErr == nil {
					series = append(series, r)
				}
				out = append(out, r)
			}
			sort.Slice(series, func(i, j int) bool { return series[i].Bitrate < series[j].Bitrate })
			for _, r := range series {
				fmt.Fprintf(w, " (%.2f, %.1f)", r.Bitrate, r.PSNR)
			}
			fmt.Fprintln(w)
		}
	}
	return out
}
