package bench

import (
	"bytes"
	"fmt"
	"io"
	"runtime"
	"time"

	"fzmod/internal/core"
	"fzmod/internal/device"
	"fzmod/internal/metrics"
	"fzmod/internal/preprocess"
	"fzmod/internal/sdrbench"
)

// StreamComparison prints the streaming-executor measurement; see
// StreamComparisonReport for the machine-readable form.
func StreamComparison(w io.Writer, p *device.Platform, sc Scale) error {
	_, err := StreamComparisonReport(w, p, sc)
	return err
}

// StreamComparisonReport measures the out-of-core streaming path on the
// same workload as the chunked comparison (so the two reports share one
// baseline file): compression from an io.Reader and decompression to an
// io.Writer at window widths 1, 2, 4 and 8, with the window doubling as
// the scheduler width. Rows carry the ChunkedRow schema — comp/dec GB/s,
// ratio, steady-state allocs — under executor names "stream-wN", and every
// row's output is verified against the error bound before it is reported.
func StreamComparisonReport(w io.Writer, p *device.Platform, sc Scale) (*ChunkedReport, error) {
	dims := chunkedDims(sc)
	data := sdrbench.GenNYX(dims, 77)
	raw := device.F32Bytes(data)
	pl := core.NewDefault()
	inBytes := len(raw)
	chunkElems := dims.N() / 8 // eight chunks, matching the chunked rows

	absEB, _, err := preprocess.Resolve(p, device.Host, data, preprocess.RelBound(1e-4))
	if err != nil {
		return nil, err
	}
	eb := preprocess.AbsBound(absEB)

	report := &ChunkedReport{
		Experiment: "stream",
		Workload:   fmt.Sprintf("nyx-%v", dims),
		Pipeline:   pl.Name(),
		RelEB:      1e-4,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Kernels:    p.KernelImpl(),
	}

	fmt.Fprintf(w, "Streaming (out-of-core) executor: %s, %v (%.0f MiB), eb=rel 1e-4 resolved, %d-elem chunks\n",
		pl.Name(), dims, float64(inBytes)/(1<<20), chunkElems)
	fmt.Fprintf(w, "%-16s %8s %10s %10s %8s %12s\n", "executor", "chunks", "comp GB/s", "dec GB/s", "ratio", "allocs/op")

	var stream bytes.Buffer
	var field bytes.Buffer
	for _, window := range []int{1, 2, 4, 8} {
		opts := core.StreamOpts{ChunkElems: chunkElems, Window: window, Workers: window}
		name := fmt.Sprintf("stream-w%d", window)

		// Best-of-two timing, matching the chunked matrix rows: scheduler
		// and GC noise is one-sided, and the throughput gate needs per-row
		// noise well under its tolerance.
		var written int64
		var compSec, decSec float64
		for pass := 0; pass < 2; pass++ {
			stream.Reset()
			t0 := time.Now()
			n, err := pl.CompressStream(p, bytes.NewReader(raw), dims, eb, &stream, opts)
			sec := time.Since(t0).Seconds()
			if err != nil {
				return nil, fmt.Errorf("%s compress: %w", name, err)
			}
			written = n
			if pass == 0 || sec < compSec {
				compSec = sec
			}

			field.Reset()
			field.Grow(inBytes)
			t0 = time.Now()
			gotDims, err := core.DecompressStream(p, bytes.NewReader(stream.Bytes()), &field, opts)
			sec = time.Since(t0).Seconds()
			if err != nil {
				return nil, fmt.Errorf("%s decompress: %w", name, err)
			}
			if pass == 0 || sec < decSec {
				decSec = sec
			}
			if gotDims != dims {
				return nil, fmt.Errorf("%s: dims %v, want %v", name, gotDims, dims)
			}
			dec := device.BytesF32(field.Bytes())
			if i := metrics.VerifyBound(data, dec, absEB); i != -1 {
				return nil, fmt.Errorf("%s: bound violated at %d", name, i)
			}
		}

		// Steady-state allocation; measureAllocs re-warms the pools and
		// holds the GC off during the measured run, exactly as the
		// chunked rows do.
		allocs, bytesOp := measureAllocs(func() {
			if _, err := pl.CompressStream(p, bytes.NewReader(raw), dims, eb, io.Discard, opts); err != nil {
				panic(err)
			}
		})
		r := ChunkedRow{
			Executor: name, Workers: window, Chunks: 8,
			CompGBs:     metrics.Throughput(inBytes, compSec),
			DecGBs:      metrics.Throughput(inBytes, decSec),
			Ratio:       metrics.CompressionRatio(inBytes, int(written)),
			AllocsPerOp: allocs, BytesPerOp: bytesOp,
		}
		report.Rows = append(report.Rows, r)
		fmt.Fprintf(w, "%-16s %8d %10.3f %10.3f %8.1f %12d\n", name, r.Chunks,
			r.CompGBs, r.DecGBs, r.Ratio, r.AllocsPerOp)
	}
	return report, nil
}

// CompareThroughput checks every row of new against the matching baseline
// row and returns an error when compression or decompression throughput
// regressed beyond tolerance (e.g. 0.35 = new may be up to 35% slower).
// Improvements never fail, and rows missing from the baseline are skipped,
// so a refreshed experiment list does not break older baselines.
//
// Matrix rows measured above GOMAXPROCS=1 are skipped: absolute GB/s on
// oversubscribed multi-core rows varies with the runner's core count and
// load, so those rows are gated relatively, through CompareScaling's
// within-run scaling_efficiency, while the single-core rows (where a
// kernel regression shows undiluted) keep the absolute gate.
//
// When the two reports record different kernel implementation tiers
// (purego vs avx2/neon, or a legacy baseline with no tier recorded against
// a tiered run), the whole gate is skipped: absolute GB/s between
// implementations differs by design, and failing a purego CI lane against
// an AVX2 baseline would gate on hardware, not on a regression. Refresh
// the baseline on matching hardware to re-arm the gate.
func CompareThroughput(baseline, new *ChunkedReport, tolerance float64) error {
	if baseline.Kernels != new.Kernels {
		return nil
	}
	for _, row := range new.Rows {
		if row.GoMaxProcs > 1 {
			continue
		}
		base := baseline.Row(row.Executor)
		if base == nil {
			continue
		}
		if floor := base.CompGBs * (1 - tolerance); base.CompGBs > 0 && row.CompGBs < floor {
			return fmt.Errorf("bench: %s comp throughput regressed: %.3f GB/s < %.3f (baseline %.3f -%.0f%%)",
				row.Executor, row.CompGBs, floor, base.CompGBs, 100*tolerance)
		}
		if floor := base.DecGBs * (1 - tolerance); base.DecGBs > 0 && row.DecGBs < floor {
			return fmt.Errorf("bench: %s dec throughput regressed: %.3f GB/s < %.3f (baseline %.3f -%.0f%%)",
				row.Executor, row.DecGBs, floor, base.DecGBs, 100*tolerance)
		}
	}
	return nil
}
