package bench

import (
	"bytes"
	"testing"
)

// TestServeLoadReport smoke-runs the serve load test at minimum scale and
// checks the report's structural invariants: all three request classes
// ran their full request count with zero errors (an error fails the run
// outright) and produced sane latency percentiles.
func TestServeLoadReport(t *testing.T) {
	if testing.Short() {
		t.Skip("spins up an in-process HTTP load test")
	}
	var buf bytes.Buffer
	const clients, iters = 3, 1
	report, err := ServeLoadReport(&buf, Small, clients, iters)
	if err != nil {
		t.Fatalf("ServeLoadReport: %v\n%s", err, buf.String())
	}
	if report.Experiment != "serve" {
		t.Errorf("experiment = %q, want serve", report.Experiment)
	}
	for _, want := range []string{"serve-small", "serve-large", "serve-region"} {
		row := report.Row(want)
		if row == nil {
			t.Fatalf("report missing row %q:\n%s", want, buf.String())
		}
		if row.Requests != clients*iters {
			t.Errorf("%s: %d requests, want %d", want, row.Requests, clients*iters)
		}
		if row.P50Ms <= 0 || row.P99Ms < row.P50Ms {
			t.Errorf("%s: implausible latency percentiles p50=%g p99=%g", want, row.P50Ms, row.P99Ms)
		}
		if row.CompGBs <= 0 {
			t.Errorf("%s: nonpositive throughput %g", want, row.CompGBs)
		}
	}
}
