package bench

import (
	"strings"
	"testing"
)

func gateReport(comp, dec float64) *ChunkedReport {
	return &ChunkedReport{Rows: []ChunkedRow{
		{Executor: "stream-w4", CompGBs: comp, DecGBs: dec, AllocsPerOp: 1000},
	}}
}

func TestCompareThroughput(t *testing.T) {
	base := gateReport(1.0, 2.0)
	cases := []struct {
		name     string
		new      *ChunkedReport
		tol      float64
		fail     bool
		fragment string
	}{
		{"within tolerance", gateReport(0.7, 1.4), 0.35, false, ""},
		{"improvement", gateReport(3.0, 6.0), 0.35, false, ""},
		{"comp regressed", gateReport(0.5, 2.0), 0.35, true, "comp throughput"},
		{"dec regressed", gateReport(1.0, 1.0), 0.35, true, "dec throughput"},
		{"unknown row skipped", &ChunkedReport{Rows: []ChunkedRow{{Executor: "other", CompGBs: 0.01}}}, 0.35, false, ""},
	}
	for _, tc := range cases {
		err := CompareThroughput(base, tc.new, tc.tol)
		if tc.fail && err == nil {
			t.Errorf("%s: expected failure", tc.name)
		}
		if !tc.fail && err != nil {
			t.Errorf("%s: unexpected %v", tc.name, err)
		}
		if tc.fail && err != nil && !strings.Contains(err.Error(), tc.fragment) {
			t.Errorf("%s: error %q missing %q", tc.name, err, tc.fragment)
		}
	}
	// Zero-throughput baseline rows (hand-edited or failed runs) never trip
	// the gate.
	if err := CompareThroughput(gateReport(0, 0), gateReport(0.001, 0.001), 0.35); err != nil {
		t.Errorf("zero baseline: %v", err)
	}
}
