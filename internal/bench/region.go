package bench

import (
	"fmt"
	"io"
	"runtime"
	"time"

	"fzmod/internal/core"
	"fzmod/internal/device"
	"fzmod/internal/fzio"
	"fzmod/internal/metrics"
	"fzmod/internal/preprocess"
	"fzmod/internal/sdrbench"
)

// RegionComparison measures random-access region reads and prints the
// table; see RegionComparisonReport for the machine-readable form.
func RegionComparison(w io.Writer, p *device.Platform, sc Scale) error {
	_, err := RegionComparisonReport(w, p, sc)
	return err
}

// RegionComparisonReport measures the random-access read path over one
// chunked container (8 slab chunks, same geometry as the chunked matrix):
//
//   - region-1of8-cold: a chunk-interior slice read with a cold cache —
//     the fetch+decode cost of touching 1 of 8 chunks, with the fraction
//     of container bytes actually fetched (the byte-economy claim).
//   - region-1of8-warm: the same slice re-read through a shared slab
//     cache — the pure copy-out cost once the slab is resident.
//   - region-scan-warm: a deterministic sweep of overlapping slices
//     through the shared cache — the mixed regime with its observed
//     cache hit rate.
//   - region-full: the whole field through the region path, cold — the
//     overhead bound against plain full decompression.
//
// Throughput is output bytes over wall time (best of two passes, like the
// chunked matrix); every row's values are verified against slicing the
// full decompression before it is reported. Cold rows record
// fetch_fraction, warm rows cache_hit_rate; both land in ChunkedRow
// fields absent from historical baselines, so the allocs/GB/s/scaling
// gates skip region rows until a baseline records them.
func RegionComparisonReport(w io.Writer, p *device.Platform, sc Scale) (*ChunkedReport, error) {
	dims := chunkedDims(sc)
	data := sdrbench.GenNYX(dims, 77)
	eb := preprocess.RelBound(1e-4)
	pl := core.NewDefault()
	chunkElems := dims.N() / 8

	blob, err := pl.CompressChunked(p, data, dims, eb, core.ChunkOpts{ChunkElems: chunkElems})
	if err != nil {
		return nil, err
	}
	full, _, err := core.Decompress(p, blob)
	if err != nil {
		return nil, err
	}

	report := &ChunkedReport{
		Experiment: "region",
		Workload:   fmt.Sprintf("nyx-%v", dims),
		Pipeline:   pl.Name(),
		RelEB:      1e-4,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Kernels:    p.KernelImpl(),
	}
	fmt.Fprintf(w, "Random-access region reads: %s, %v container (%d chunks, %d bytes)\n",
		pl.Name(), dims, 8, len(blob))
	fmt.Fprintf(w, "%-18s %8s %10s %10s %10s\n", "scenario", "chunks", "read GB/s", "hit rate", "fetched")

	// verify checks a region read against slicing the full decompression —
	// a bench row must never report throughput for wrong bytes.
	verify := func(name string, sel core.RegionSel, got []float32) error {
		sd := sel.Dims()
		if len(got) != sd.N() {
			return fmt.Errorf("bench: %s returned %d values, want %d", name, len(got), sd.N())
		}
		i := 0
		for z := sel.Z0; z < sel.Z1; z++ {
			for y := sel.Y0; y < sel.Y1; y++ {
				for x := sel.X0; x < sel.X1; x++ {
					if got[i] != full[dims.Idx(x, y, z)] {
						return fmt.Errorf("bench: %s mismatch at (%d,%d,%d)", name, x, y, z)
					}
					i++
				}
			}
		}
		return nil
	}

	// row runs one scenario: fn performs the reads of one pass against a
	// fresh (cold) or shared (warm) cache and returns the aggregate region
	// stats; throughput is selected output bytes over the best of two
	// passes.
	row := func(name string, fn func() (int, core.RegionStats, error)) (*ChunkedRow, error) {
		var best float64
		var outBytes int
		var rs core.RegionStats
		for pass := 0; pass < 2; pass++ {
			t0 := time.Now()
			n, stats, err := fn()
			sec := time.Since(t0).Seconds()
			if err != nil {
				return nil, fmt.Errorf("%s: %w", name, err)
			}
			outBytes, rs = n, stats
			if pass == 0 || sec < best {
				best = sec
			}
		}
		r := ChunkedRow{
			Executor:   name,
			GoMaxProcs: report.GoMaxProcs,
			Workers:    report.GoMaxProcs,
			Chunks:     rs.Chunks,
			DecGBs:     metrics.Throughput(outBytes, best),
		}
		if served := rs.CacheHits + rs.Decoded; served > 0 {
			r.CacheHitRate = float64(rs.CacheHits) / float64(served)
		}
		r.FetchFraction = float64(rs.PayloadBytes) / float64(len(blob))
		report.Rows = append(report.Rows, r)
		fmt.Fprintf(w, "%-18s %8d %10.3f %10.2f %9.1f%%\n",
			name, r.Chunks, r.DecGBs, r.CacheHitRate, 100*r.FetchFraction)
		return &report.Rows[len(report.Rows)-1], nil
	}

	// A slice interior to the fourth chunk: every chunk holds dims.Z/8
	// slowest-dim planes.
	slab := dims.Z / 8
	oneChunk := core.RegionSel{
		X0: dims.X / 4, X1: 3 * dims.X / 4,
		Y0: dims.Y / 4, Y1: 3 * dims.Y / 4,
		Z0: 3*slab + 1, Z1: 4*slab - 1,
	}

	read := func(sel core.RegionSel, cache *core.SlabCache) (int, core.RegionStats, error) {
		out, rep, err := core.DecompressRegionReport(p, fzio.NewBytesFetcher(blob), sel,
			core.RegionOpts{Cache: cache})
		if err != nil {
			return 0, core.RegionStats{}, err
		}
		if err := verify(sel.String(), sel, out); err != nil {
			return 0, core.RegionStats{}, err
		}
		return 4 * len(out), *rep.Region, nil
	}

	if _, err := row("region-1of8-cold", func() (int, core.RegionStats, error) {
		return read(oneChunk, nil)
	}); err != nil {
		return nil, err
	}

	warm := core.NewSlabCache(int64(len(data)) * 8)
	if _, _, err := read(oneChunk, warm); err != nil { // populate
		return nil, err
	}
	if _, err := row("region-1of8-warm", func() (int, core.RegionStats, error) {
		return read(oneChunk, warm)
	}); err != nil {
		return nil, err
	}

	// A deterministic sweep of overlapping z-slices through the shared
	// cache: each read covers two adjacent chunks, stepping one chunk per
	// read, so steady state is one hit + one decode until the wrap.
	if _, err := row("region-scan-warm", func() (int, core.RegionStats, error) {
		scan := core.NewSlabCache(int64(len(data)) * 8)
		var total int
		var agg core.RegionStats
		for i := 0; i < 8; i++ {
			z0 := (i * slab) % (dims.Z - slab)
			sel := core.RegionSel{X0: 0, X1: dims.X, Y0: 0, Y1: dims.Y, Z0: z0, Z1: z0 + slab + 1}
			n, rs, err := read(sel, scan)
			if err != nil {
				return 0, core.RegionStats{}, err
			}
			total += n
			agg.Chunks += rs.Chunks
			agg.Decoded += rs.Decoded
			agg.CacheHits += rs.CacheHits
			agg.PayloadBytes += rs.PayloadBytes
		}
		return total, agg, nil
	}); err != nil {
		return nil, err
	}

	if _, err := row("region-full", func() (int, core.RegionStats, error) {
		return read(core.FullRegion(dims), nil)
	}); err != nil {
		return nil, err
	}
	return report, nil
}
