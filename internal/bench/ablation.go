package bench

import (
	"fmt"
	"io"
	"time"

	"fzmod/internal/core"
	"fzmod/internal/device"
	"fzmod/internal/encoder/huffman"
	"fzmod/internal/histogram"
	"fzmod/internal/preprocess"
	"fzmod/internal/sdrbench"
)

// STFAblation measures FZMod-Default decompression through the sequential
// path and through the task-flow pipeline (§3.3.1), reporting whether the
// independent stages actually overlapped. The paper avoids performance
// claims for the experimental CUDASTF path; this ablation documents the
// overhead/overlap trade the same way.
func STFAblation(w io.Writer, p *device.Platform, sc Scale) error {
	data, dims := Data(sdrbench.CESM, sc)
	blob, err := core.NewDefault().Compress(p, data, dims, preprocess.RelBound(1e-4))
	if err != nil {
		return err
	}

	t0 := time.Now()
	seq, _, err := core.Decompress(p, blob)
	seqSec := time.Since(t0).Seconds()
	if err != nil {
		return err
	}
	t0 = time.Now()
	stf, _, report, err := core.DecompressSTF(p, blob)
	stfSec := time.Since(t0).Seconds()
	if err != nil {
		return err
	}
	for i := range seq {
		if seq[i] != stf[i] {
			return fmt.Errorf("stf ablation: results diverge at %d", i)
		}
	}
	fmt.Fprintf(w, "STF ablation (FZMod-Default decompression, %s, %v):\n", sdrbench.CESM, dims)
	fmt.Fprintf(w, "  sequential: %8.1f ms\n", seqSec*1e3)
	fmt.Fprintf(w, "  task-flow:  %8.1f ms  (branches overlapped: %v, tasks: %d)\n",
		stfSec*1e3, report.Overlapped(), len(report.Trace))
	fmt.Fprintf(w, "  DAG:\n%s", report.DOT)
	return nil
}

// HistAblation compares the standard and top-k histogram modules (§3.2) on
// both predictors' code streams: build time and the Huffman stream size
// each induces. The paper's guidance — top-k suits the spiky distributions
// high-quality prediction produces — is checked directly.
func HistAblation(w io.Writer, p *device.Platform, sc Scale) error {
	data, dims := Data(sdrbench.CESM, sc)
	absEB, _, err := preprocess.Resolve(p, device.Accel, data, preprocess.RelBound(1e-4))
	if err != nil {
		return err
	}
	preds := []struct {
		name string
		pr   core.Predictor
	}{
		{"lorenzo", core.LorenzoPredictor{}},
		{"spline", core.NewQuality().Pred},
	}
	fmt.Fprintf(w, "Histogram ablation (%s @1e-4): build time and induced Huffman size\n", sdrbench.CESM)
	for _, pd := range preds {
		pred, err := pd.pr.Predict(p, device.Accel, data, dims, absEB)
		if err != nil {
			return err
		}
		bins := 2 * pred.Radius
		t0 := time.Now()
		hStd, err := histogram.Standard(p, device.Accel, pred.Codes, bins)
		stdSec := time.Since(t0).Seconds()
		if err != nil {
			return err
		}
		t0 = time.Now()
		hTop, err := histogram.TopK(p, device.Accel, pred.Codes, bins, 0)
		topSec := time.Since(t0).Seconds()
		if err != nil {
			return err
		}
		szStd, err := huffSize(p, pred.Codes, hStd)
		if err != nil {
			return err
		}
		szTop, err := huffSize(p, pred.Codes, hTop)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "  %-8s spikiness(top-32)=%.3f\n", pd.name, histogram.Spikiness(hStd, 32))
		fmt.Fprintf(w, "    standard: %6.2f ms → %8d bytes\n", stdSec*1e3, szStd)
		fmt.Fprintf(w, "    top-k:    %6.2f ms → %8d bytes (%+.2f%%)\n",
			topSec*1e3, szTop, 100*float64(szTop-szStd)/float64(szStd))
	}
	return nil
}

func huffSize(p *device.Platform, codes []uint16, hist []uint32) (int, error) {
	blob, err := huffman.Compress(p, device.Host, codes, hist)
	if err != nil {
		return 0, err
	}
	return len(blob), nil
}

// SecondaryAblation measures the effect of the zstd-slot LZ pass on each
// preset pipeline (§3.2: "a secondary lossless encoder can be attempted").
func SecondaryAblation(w io.Writer, p *device.Platform, sc Scale) error {
	data, dims := Data(sdrbench.CESM, sc)
	fmt.Fprintf(w, "Secondary-encoder ablation (%s @1e-4):\n", sdrbench.CESM)
	for _, pl := range core.Presets() {
		plain, err := pl.Compress(p, data, dims, preprocess.RelBound(1e-4))
		if err != nil {
			return err
		}
		withSec, err := pl.WithSecondary(core.LZSecondary{}).Compress(p, data, dims, preprocess.RelBound(1e-4))
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "  %-16s %8d B → %8d B (%+.2f%%)\n", pl.Name(),
			len(plain), len(withSec), 100*float64(len(withSec)-len(plain))/float64(len(plain)))
	}
	return nil
}

// PlaceAblation measures the Huffman stage at the host vs the accelerator
// place (DESIGN ablation 3). The paper keeps Huffman on the CPU; in this
// simulated runtime both places are goroutine pools, so the difference is
// pool width and launch accounting — the ablation documents that the
// framework lets a pipeline flip the assignment with one field.
func PlaceAblation(w io.Writer, p *device.Platform, sc Scale) error {
	data, dims := Data(sdrbench.CESM, sc)
	fmt.Fprintf(w, "Encoder-place ablation (FZMod-Default, %s @1e-4):\n", sdrbench.CESM)
	for _, place := range []device.Place{device.Host, device.Accel} {
		pl := core.NewDefault()
		pl.EncPlace = place
		t0 := time.Now()
		blob, err := pl.Compress(p, data, dims, preprocess.RelBound(1e-4))
		sec := time.Since(t0).Seconds()
		if err != nil {
			return err
		}
		if _, _, err := core.Decompress(p, blob); err != nil {
			return err
		}
		fmt.Fprintf(w, "  huffman@%-6v %8.1f ms  %8d B\n", place, sec*1e3, len(blob))
	}
	return nil
}

// FusionAblation quantifies the fused-vs-staged gap the paper observes
// between FZ-GPU and FZMod-Speed (same data-reduction techniques).
func FusionAblation(w io.Writer, p *device.Platform, sc Scale) error {
	data, dims := Data(sdrbench.NYX, sc)
	fmt.Fprintf(w, "Fusion ablation (%s @1e-4): staged FZMod-Speed vs fused FZ-GPU\n", sdrbench.NYX)
	for _, c := range GPUCompressors() {
		name := c.Name()
		if name != "fzmod-speed" && name != "fz-gpu" {
			continue
		}
		r := RunOne(p, c, data, dims, 1e-4)
		if r.CompErr != nil {
			return r.CompErr
		}
		fmt.Fprintf(w, "  %-12s comp %7.3f GB/s  decomp %7.3f GB/s  CR %6.1f\n",
			name, r.CompGBs, r.DecompGBs, r.CR)
	}
	return nil
}
