package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/debug"
	"time"

	"fzmod/internal/core"
	"fzmod/internal/device"
	"fzmod/internal/grid"
	"fzmod/internal/metrics"
	"fzmod/internal/preprocess"
	"fzmod/internal/sdrbench"
)

// chunkedDims returns the geometry of the chunked-executor comparison
// field: 64 MiB (the paper-scale slab regime) at Full, 8 MiB at Small so a
// CI run still exercises several chunks.
func chunkedDims(sc Scale) grid.Dims {
	if sc == Full {
		return grid.D3(256, 256, 256) // 16 Mi elements, 64 MiB
	}
	return grid.D3(128, 128, 128) // 2 Mi elements, 8 MiB
}

// ChunkedRow is one executor configuration's measurement.
type ChunkedRow struct {
	Executor    string  `json:"executor"`
	Workers     int     `json:"workers"`
	Chunks      int     `json:"chunks"`
	CompGBs     float64 `json:"comp_gbs"`
	DecGBs      float64 `json:"dec_gbs"`
	Ratio       float64 `json:"ratio"`
	AllocsPerOp uint64  `json:"allocs_per_op"`
	BytesPerOp  uint64  `json:"bytes_per_op"`
}

// ChunkedReport is the machine-readable result of the chunked-executor
// comparison, the record CI regresses against (fzbench -json/-baseline).
type ChunkedReport struct {
	Experiment string       `json:"experiment"`
	Workload   string       `json:"workload"`
	Pipeline   string       `json:"pipeline"`
	RelEB      float64      `json:"rel_eb"`
	GoMaxProcs int          `json:"go_max_procs"`
	Rows       []ChunkedRow `json:"rows"`
}

// WriteJSON writes the report, indented, to path.
func (r *ChunkedReport) WriteJSON(path string) error {
	blob, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(blob, '\n'), 0o644)
}

// LoadChunkedReport reads a report written by WriteJSON.
func LoadChunkedReport(path string) (*ChunkedReport, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r ChunkedReport
	if err := json.Unmarshal(blob, &r); err != nil {
		return nil, fmt.Errorf("bench: parsing %s: %w", path, err)
	}
	return &r, nil
}

// Row returns the row for an executor name, or nil.
func (r *ChunkedReport) Row(executor string) *ChunkedRow {
	for i := range r.Rows {
		if r.Rows[i].Executor == executor {
			return &r.Rows[i]
		}
	}
	return nil
}

// CompareAllocs checks every row of new against the matching baseline row
// and returns an error when allocs/op regressed beyond tolerance (e.g.
// 0.2 = +20%). Rows missing from the baseline are skipped.
func CompareAllocs(baseline, new *ChunkedReport, tolerance float64) error {
	for _, row := range new.Rows {
		base := baseline.Row(row.Executor)
		if base == nil || base.AllocsPerOp == 0 {
			continue
		}
		limit := float64(base.AllocsPerOp) * (1 + tolerance)
		if float64(row.AllocsPerOp) > limit {
			return fmt.Errorf("bench: %s allocs/op regressed: %d > %d (baseline %d +%.0f%%)",
				row.Executor, row.AllocsPerOp, uint64(limit), base.AllocsPerOp, 100*tolerance)
		}
	}
	return nil
}

// ChunkedComparison measures the chunked task-graph executor against the
// monolithic (one-chunk graph) pipeline on one synthetic field and prints
// the table; see ChunkedComparisonReport for the machine-readable form.
func ChunkedComparison(w io.Writer, p *device.Platform, sc Scale) error {
	_, err := ChunkedComparisonReport(w, p, sc)
	return err
}

// ChunkedComparisonReport measures compression and decompression
// throughput at 1, 2, 4 and 8 workers plus the monolithic path, with the
// compression ratio, chunk count, and steady-state compression allocs/op
// per row. Output bytes are verified to round-trip within the bound before
// a row is reported.
func ChunkedComparisonReport(w io.Writer, p *device.Platform, sc Scale) (*ChunkedReport, error) {
	dims := chunkedDims(sc)
	data := sdrbench.GenNYX(dims, 77)
	eb := preprocess.RelBound(1e-4)
	pl := core.NewDefault()
	inBytes := 4 * dims.N()
	// Eight chunks regardless of scale, so Small runs see the same fan-out.
	chunkElems := dims.N() / 8

	report := &ChunkedReport{
		Experiment: "chunked",
		Workload:   fmt.Sprintf("nyx-%v", dims),
		Pipeline:   pl.Name(),
		RelEB:      1e-4,
		GoMaxProcs: runtime.GOMAXPROCS(0),
	}

	fmt.Fprintf(w, "Chunked vs monolithic executor: %s, %v (%.0f MiB), eb=rel 1e-4, %d-elem chunks\n",
		pl.Name(), dims, float64(inBytes)/(1<<20), chunkElems)
	fmt.Fprintf(w, "%-16s %8s %10s %10s %8s %12s\n", "executor", "chunks", "comp GB/s", "dec GB/s", "ratio", "allocs/op")

	absEB, _, err := preprocess.Resolve(p, device.Host, data, eb)
	if err != nil {
		return nil, err
	}
	row := func(name string, workers, chunks int, compress func() ([]byte, error)) error {
		t0 := time.Now()
		blob, err := compress()
		compSec := time.Since(t0).Seconds()
		if err != nil {
			return fmt.Errorf("%s compress: %w", name, err)
		}
		t0 = time.Now()
		dec, gotDims, err := core.Decompress(p, blob)
		decSec := time.Since(t0).Seconds()
		if err != nil {
			return fmt.Errorf("%s decompress: %w", name, err)
		}
		if gotDims != dims {
			return fmt.Errorf("%s: dims %v, want %v", name, gotDims, dims)
		}
		if i := metrics.VerifyBound(data, dec, absEB); i != -1 {
			return fmt.Errorf("%s: bound violated at %d", name, i)
		}
		// Steady-state allocation count; measureAllocs re-warms the
		// scratch pools and holds the GC off so the measurement reflects
		// the recycled hot path, not pool-refill timing accidents.
		allocs, bytes := measureAllocs(func() {
			if _, err := compress(); err != nil {
				panic(err)
			}
		})
		r := ChunkedRow{
			Executor: name, Workers: workers, Chunks: chunks,
			CompGBs:     metrics.Throughput(inBytes, compSec),
			DecGBs:      metrics.Throughput(inBytes, decSec),
			Ratio:       metrics.CompressionRatio(inBytes, len(blob)),
			AllocsPerOp: allocs, BytesPerOp: bytes,
		}
		report.Rows = append(report.Rows, r)
		fmt.Fprintf(w, "%-16s %8d %10.3f %10.3f %8.1f %12d\n", name, chunks,
			r.CompGBs, r.DecGBs, r.Ratio, r.AllocsPerOp)
		return nil
	}

	if err := row("monolithic", 1, 1, func() ([]byte, error) {
		return pl.CompressMonolithic(p, data, dims, eb)
	}); err != nil {
		return nil, err
	}
	for _, workers := range []int{1, 2, 4, 8} {
		name := fmt.Sprintf("chunked-w%d", workers)
		opts := core.ChunkOpts{ChunkElems: chunkElems, Workers: workers}
		if err := row(name, workers, 8, func() ([]byte, error) {
			return pl.CompressChunked(p, data, dims, eb, opts)
		}); err != nil {
			return nil, err
		}
	}
	return report, nil
}

// measureAllocs returns the steady-state heap allocation delta (count,
// bytes) of one fn run. The GC is disabled for the measurement: a
// collection landing mid-run empties the scratch-slab sync.Pools, and the
// slab refills then masquerade as steady-state allocation — the historical
// chunked-w4 27 MB/op outlier (vs ~18.6 MB for w1/w2/w8) was exactly this
// measurement artifact, not a pool-return miss (gets and puts balance on
// every worker path). fn runs once un-measured to re-warm the pools after
// the initial forced collection, then once measured.
// Scheduling still varies the op's concurrent slab footprint at higher
// worker counts (a run whose stages happen to overlap more checks out more
// slabs than the warm-up left pooled), so the minimum over a few measured
// runs is reported: it is the reproducible steady-state cost.
func measureAllocs(fn func()) (allocs, bytes uint64) {
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	runtime.GC()
	fn() // re-warm: the collection above emptied one pool generation
	var before, after runtime.MemStats
	for i := 0; i < 3; i++ {
		runtime.ReadMemStats(&before)
		fn()
		runtime.ReadMemStats(&after)
		a, b := after.Mallocs-before.Mallocs, after.TotalAlloc-before.TotalAlloc
		if i == 0 || a < allocs {
			allocs = a
		}
		if i == 0 || b < bytes {
			bytes = b
		}
	}
	return allocs, bytes
}
