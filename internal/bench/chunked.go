package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"fzmod/internal/core"
	"fzmod/internal/device"
	"fzmod/internal/grid"
	"fzmod/internal/metrics"
	"fzmod/internal/preprocess"
	"fzmod/internal/sdrbench"
)

// chunkedDims returns the geometry of the chunked-executor comparison
// field: 64 MiB (the paper-scale slab regime) at Full, 8 MiB at Small so a
// CI run still exercises several chunks.
func chunkedDims(sc Scale) grid.Dims {
	if sc == Full {
		return grid.D3(256, 256, 256) // 16 Mi elements, 64 MiB
	}
	return grid.D3(128, 128, 128) // 2 Mi elements, 8 MiB
}

// ChunkedRow is one executor configuration's measurement.
type ChunkedRow struct {
	Executor string `json:"executor"`
	// GoMaxProcs is the GOMAXPROCS the row ran under (0 on legacy rows:
	// the report-level value applies).
	GoMaxProcs int     `json:"go_max_procs,omitempty"`
	Workers    int     `json:"workers"`
	Chunks     int     `json:"chunks"`
	CompGBs    float64 `json:"comp_gbs"`
	DecGBs     float64 `json:"dec_gbs"`
	Ratio      float64 `json:"ratio"`
	// SpeedupComp/SpeedupDec are the row's throughput over the w1 row at
	// the same GOMAXPROCS (chunked matrix rows only).
	SpeedupComp float64 `json:"speedup_comp,omitempty"`
	SpeedupDec  float64 `json:"speedup_dec,omitempty"`
	// ScalingEfficiency is min(SpeedupComp, SpeedupDec) divided by the
	// parallelism the host can actually deliver at the row's configuration
	// — min(Workers, CalibrationSpeedup) — so 1.0 means the executor
	// extracted all the parallelism the machine offered. Normalizing by
	// measured rather than requested parallelism keeps the value portable:
	// a w8 row on a 1-core runner calibrates to ~1× available parallelism
	// and scores ~1.0 instead of ~0.125, so the CompareScaling gate fires
	// only when the executor falls behind its own machine, not when the
	// machine has fewer cores than the baseline's.
	ScalingEfficiency float64 `json:"scaling_efficiency,omitempty"`
	// CalibrationSpeedup is the synthetic-load speedup the host delivered
	// at this row's GOMAXPROCS (see calibrationSpeedup) — the denominator
	// evidence behind ScalingEfficiency.
	CalibrationSpeedup float64 `json:"calibration_speedup,omitempty"`
	AllocsPerOp        uint64  `json:"allocs_per_op"`
	BytesPerOp         uint64  `json:"bytes_per_op"`
	// CacheHitRate/FetchFraction are region-experiment observations: the
	// slab-cache hit fraction over the row's reads, and the compressed
	// bytes fetched as a fraction of the whole container (region rows
	// only; comparisons skip rows absent from the baseline, so adding
	// them never trips an existing gate).
	CacheHitRate  float64 `json:"cache_hit_rate,omitempty"`
	FetchFraction float64 `json:"fetch_fraction,omitempty"`
	// P50Ms/P99Ms/Requests are serve-experiment observations: per-request
	// latency percentiles and the request count behind them (serve rows
	// only; like the region fields, comparisons skip rows absent from the
	// baseline, so adding them never trips an existing gate).
	P50Ms    float64 `json:"p50_ms,omitempty"`
	P99Ms    float64 `json:"p99_ms,omitempty"`
	Requests int     `json:"requests,omitempty"`
	// FaultRate/FetchAttempts/FetchRetries are faults-experiment
	// observations: the injected transient-fault probability the row ran
	// under and the fetch attempts/retries the retry layer spent absorbing
	// it (faults rows only; absent from historical baselines, so gates
	// skip them).
	FaultRate     float64 `json:"fault_rate,omitempty"`
	FetchAttempts int64   `json:"fetch_attempts,omitempty"`
	FetchRetries  int64   `json:"fetch_retries,omitempty"`
	// ProofVerifications counts chunk payloads that passed Merkle
	// inclusion verification during the row's reads (faults rows only;
	// omitempty keeps historical baselines comparable, so gates skip it).
	ProofVerifications int64 `json:"proof_verifications,omitempty"`
}

// ChunkedReport is the machine-readable result of the chunked-executor
// comparison, the record CI regresses against (fzbench -json/-baseline).
type ChunkedReport struct {
	Experiment string  `json:"experiment"`
	Workload   string  `json:"workload"`
	Pipeline   string  `json:"pipeline"`
	RelEB      float64 `json:"rel_eb"`
	GoMaxProcs int     `json:"go_max_procs"`
	// Kernels records which kernel implementation tier produced the run
	// ("avx2", "neon" or "purego"). Absolute throughput is only comparable
	// between runs of the same tier; CompareThroughput skips its gate when
	// baseline and new disagree. Empty on legacy baselines.
	Kernels string       `json:"kernels,omitempty"`
	Rows    []ChunkedRow `json:"rows"`
}

// WriteJSON writes the report, indented, to path.
func (r *ChunkedReport) WriteJSON(path string) error {
	blob, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(blob, '\n'), 0o644)
}

// LoadChunkedReport reads a report written by WriteJSON.
func LoadChunkedReport(path string) (*ChunkedReport, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r ChunkedReport
	if err := json.Unmarshal(blob, &r); err != nil {
		return nil, fmt.Errorf("bench: parsing %s: %w", path, err)
	}
	return &r, nil
}

// Row returns the row for an executor name, or nil.
func (r *ChunkedReport) Row(executor string) *ChunkedRow {
	for i := range r.Rows {
		if r.Rows[i].Executor == executor {
			return &r.Rows[i]
		}
	}
	return nil
}

// CompareAllocs checks every row of new against the matching baseline row
// and returns an error when allocs/op regressed beyond tolerance (e.g.
// 0.2 = +20%). Rows missing from the baseline are skipped.
func CompareAllocs(baseline, new *ChunkedReport, tolerance float64) error {
	for _, row := range new.Rows {
		base := baseline.Row(row.Executor)
		if base == nil || base.AllocsPerOp == 0 {
			continue
		}
		limit := float64(base.AllocsPerOp) * (1 + tolerance)
		if float64(row.AllocsPerOp) > limit {
			return fmt.Errorf("bench: %s allocs/op regressed: %d > %d (baseline %d +%.0f%%)",
				row.Executor, row.AllocsPerOp, uint64(limit), base.AllocsPerOp, 100*tolerance)
		}
	}
	return nil
}

// ChunkedComparison measures the chunked task-graph executor against the
// monolithic (one-chunk graph) pipeline on one synthetic field and prints
// the table; see ChunkedComparisonReport for the machine-readable form.
func ChunkedComparison(w io.Writer, p *device.Platform, sc Scale) error {
	_, err := ChunkedComparisonReport(w, p, sc)
	return err
}

// matrixProcs and matrixWorkers span the multi-core scaling matrix: every
// GOMAXPROCS setting crossed with every worker budget.
var (
	matrixProcs   = []int{1, 2, 4, 8}
	matrixWorkers = []int{1, 2, 4, 8}
)

// calibrationSink keeps the calibration loop's result observable so the
// compiler cannot delete the workload.
var calibrationSink uint64

// calibrationSpeedup measures how much CPU-bound parallel speedup the host
// actually delivers at the current GOMAXPROCS: the throughput of procs
// goroutines each running one synthetic work unit, relative to a single
// goroutine running one. The unit is a register-resident xorshift
// reduction — no memory pressure, no locks — so the number is a pure proxy
// for schedulable cores, not for the compressor's own behavior. On a
// 1-core runner it comes back ~1 regardless of procs; on an unloaded
// 8-core host, ~procs. Best-of-two on both sides, clamped to [1, procs].
// Callers must have set runtime.GOMAXPROCS to the setting under test.
func calibrationSpeedup(procs int) float64 {
	if procs <= 1 {
		return 1
	}
	unit := func() uint64 {
		x := uint64(0x9E3779B97F4A7C15)
		var acc uint64
		for i := 0; i < 1<<22; i++ {
			x ^= x << 13
			x ^= x >> 7
			x ^= x << 17
			acc += x
		}
		return acc
	}
	run := func(n int) float64 {
		var best float64
		for pass := 0; pass < 2; pass++ {
			var wg sync.WaitGroup
			t0 := time.Now()
			for i := 0; i < n; i++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					atomic.AddUint64(&calibrationSink, unit())
				}()
			}
			wg.Wait()
			if sec := time.Since(t0).Seconds(); pass == 0 || sec < best {
				best = sec
			}
		}
		return best
	}
	t1 := run(1)
	tn := run(procs)
	if t1 <= 0 || tn <= 0 {
		return 1
	}
	sp := float64(procs) * t1 / tn
	if sp < 1 {
		sp = 1
	}
	if sp > float64(procs) {
		sp = float64(procs)
	}
	return sp
}

// ChunkedComparisonReport measures the multi-core scaling matrix of the
// chunked executor: GOMAXPROCS ∈ {1,2,4,8} × worker budget ∈ {1,2,4,8},
// plus the monolithic path at the host's GOMAXPROCS. Each row records
// compression/decompression throughput, ratio, its speedup over the w1 row
// at the same GOMAXPROCS, and the resulting scaling efficiency —
// min speedup over min(workers, calibrated parallelism), where the
// calibration is a synthetic CPU-bound load measured at the same
// GOMAXPROCS (calibrationSpeedup); the GOMAXPROCS=1 rows additionally record
// steady-state compression allocs/op. Output bytes are verified to
// round-trip within the bound before a row is reported. The worker budget
// caps the operation's total parallelism (scheduler and kernel width), so
// the w-axis measures true shared-nothing chunk-worker scaling.
func ChunkedComparisonReport(w io.Writer, p *device.Platform, sc Scale) (*ChunkedReport, error) {
	dims := chunkedDims(sc)
	data := sdrbench.GenNYX(dims, 77)
	eb := preprocess.RelBound(1e-4)
	pl := core.NewDefault()
	inBytes := 4 * dims.N()
	// Eight chunks regardless of scale, so Small runs see the same fan-out.
	chunkElems := dims.N() / 8
	hostProcs := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(hostProcs)

	report := &ChunkedReport{
		Experiment: "chunked",
		Workload:   fmt.Sprintf("nyx-%v", dims),
		Pipeline:   pl.Name(),
		RelEB:      1e-4,
		GoMaxProcs: hostProcs,
		Kernels:    p.KernelImpl(),
	}

	fmt.Fprintf(w, "Chunked executor multi-core matrix: %s, %v (%.0f MiB), eb=rel 1e-4, %d-elem chunks, host GOMAXPROCS=%d\n",
		pl.Name(), dims, float64(inBytes)/(1<<20), chunkElems, hostProcs)
	fmt.Fprintf(w, "%-16s %6s %8s %10s %10s %8s %8s %12s\n",
		"executor", "procs", "chunks", "comp GB/s", "dec GB/s", "ratio", "eff", "allocs/op")

	absEB, _, err := preprocess.Resolve(p, device.Host, data, eb)
	if err != nil {
		return nil, err
	}
	// row measures one configuration: compress, decompress, verify, and —
	// when withAllocs — the steady-state allocation profile (measureAllocs
	// re-warms the scratch pools and holds the GC off so the measurement
	// reflects the recycled hot path, not pool-refill timing accidents).
	// Timing is best-of-two: scheduler and GC noise is one-sided, and a
	// 16-row matrix gated at ±20% per row needs per-row noise well under
	// that.
	row := func(name string, procs, workers, chunks int, withAllocs bool,
		compress func() ([]byte, error), decompress func([]byte) ([]float32, grid.Dims, error)) (*ChunkedRow, error) {
		var blob []byte
		var compSec, decSec float64
		for pass := 0; pass < 2; pass++ {
			t0 := time.Now()
			b, err := compress()
			sec := time.Since(t0).Seconds()
			if err != nil {
				return nil, fmt.Errorf("%s compress: %w", name, err)
			}
			blob = b
			if pass == 0 || sec < compSec {
				compSec = sec
			}
			t0 = time.Now()
			dec, gotDims, err := decompress(blob)
			sec = time.Since(t0).Seconds()
			if err != nil {
				return nil, fmt.Errorf("%s decompress: %w", name, err)
			}
			if pass == 0 || sec < decSec {
				decSec = sec
			}
			if gotDims != dims {
				return nil, fmt.Errorf("%s: dims %v, want %v", name, gotDims, dims)
			}
			if i := metrics.VerifyBound(data, dec, absEB); i != -1 {
				return nil, fmt.Errorf("%s: bound violated at %d", name, i)
			}
		}
		r := ChunkedRow{
			Executor: name, GoMaxProcs: procs, Workers: workers, Chunks: chunks,
			CompGBs: metrics.Throughput(inBytes, compSec),
			DecGBs:  metrics.Throughput(inBytes, decSec),
			Ratio:   metrics.CompressionRatio(inBytes, len(blob)),
		}
		if withAllocs {
			r.AllocsPerOp, r.BytesPerOp = measureAllocs(func() {
				if _, err := compress(); err != nil {
					panic(err)
				}
			})
		}
		report.Rows = append(report.Rows, r)
		return &report.Rows[len(report.Rows)-1], nil
	}
	printRow := func(r *ChunkedRow) {
		eff := "-"
		if r.ScalingEfficiency > 0 {
			eff = fmt.Sprintf("%.2f", r.ScalingEfficiency)
		}
		fmt.Fprintf(w, "%-16s %6d %8d %10.3f %10.3f %8.1f %8s %12d\n", r.Executor,
			r.GoMaxProcs, r.Chunks, r.CompGBs, r.DecGBs, r.Ratio, eff, r.AllocsPerOp)
	}

	// The monolithic reference row is pinned to GOMAXPROCS=1 on every
	// runner: it is the single-core baseline the allocs and absolute-GB/s
	// gates compare across machines (a host-GOMAXPROCS row would be
	// skipped by CompareThroughput's multi-core exemption and its
	// per-op worker allocations would vary with the runner's core count);
	// multi-core behavior is the matrix's job.
	runtime.GOMAXPROCS(1)
	monoPlat := device.NewH100Platform()
	mono, err := row("monolithic", 1, 1, 1, true, func() ([]byte, error) {
		return pl.CompressMonolithic(monoPlat, data, dims, eb)
	}, func(blob []byte) ([]float32, grid.Dims, error) {
		return core.Decompress(monoPlat, blob)
	})
	monoPlat.Close()
	runtime.GOMAXPROCS(hostProcs)
	if err != nil {
		return nil, err
	}
	printRow(mono)

	for _, procs := range matrixProcs {
		runtime.GOMAXPROCS(procs)
		// The synthetic calibration measures what parallel speedup this
		// host actually delivers at this GOMAXPROCS — the honest
		// denominator for the rows' scaling efficiency below.
		calib := calibrationSpeedup(procs)
		// A fresh platform per GOMAXPROCS setting: its worker widths and
		// persistent grid pools are sized at creation. Closed at the end of
		// the p-block (and on the error path) so matrix cells don't
		// accumulate parked grid workers.
		plat := device.NewH100Platform()
		var base *ChunkedRow
		for _, workers := range matrixWorkers {
			name := fmt.Sprintf("chunked-p%d-w%d", procs, workers)
			opts := core.ChunkOpts{ChunkElems: chunkElems, Workers: workers}
			r, err := row(name, procs, workers, 8, procs == 1, func() ([]byte, error) {
				return pl.CompressChunked(plat, data, dims, eb, opts)
			}, func(blob []byte) ([]float32, grid.Dims, error) {
				return core.DecompressWithOpts(plat, blob, core.DecompressOpts{Workers: workers})
			})
			if err != nil {
				plat.Close()
				runtime.GOMAXPROCS(hostProcs)
				return nil, err
			}
			if workers == 1 {
				base = r
			}
			if base != nil && base.CompGBs > 0 && base.DecGBs > 0 {
				r.SpeedupComp = r.CompGBs / base.CompGBs
				r.SpeedupDec = r.DecGBs / base.DecGBs
				r.ScalingEfficiency = r.SpeedupComp
				if r.SpeedupDec < r.SpeedupComp {
					r.ScalingEfficiency = r.SpeedupDec
				}
				// Normalize by what this machine could deliver, not by the
				// requested worker count: asking for 8 workers on a 1-core
				// runner is not an executor failure.
				avail := calib
				if w := float64(r.Workers); w < avail {
					avail = w
				}
				if avail < 1 {
					avail = 1
				}
				r.ScalingEfficiency /= avail
				r.CalibrationSpeedup = calib
			}
			printRow(r)
		}
		plat.Close()
	}
	runtime.GOMAXPROCS(hostProcs)
	return report, nil
}

// CompareScaling checks every matrix row of new against the matching
// baseline row and fails when scaling efficiency dropped below
// (1-tolerance)× the recorded baseline — the parallel-scaling regression
// gate. Rows without an efficiency on either side (monolithic, stream,
// legacy baselines) are skipped, and improvements never fail.
func CompareScaling(baseline, new *ChunkedReport, tolerance float64) error {
	for _, row := range new.Rows {
		base := baseline.Row(row.Executor)
		if base == nil || base.ScalingEfficiency <= 0 || row.ScalingEfficiency <= 0 {
			continue
		}
		if floor := base.ScalingEfficiency * (1 - tolerance); row.ScalingEfficiency < floor {
			return fmt.Errorf("bench: %s scaling efficiency regressed: %.3f < %.3f (baseline %.3f -%.0f%%)",
				row.Executor, row.ScalingEfficiency, floor, base.ScalingEfficiency, 100*tolerance)
		}
	}
	return nil
}

// measureAllocs returns the steady-state heap allocation delta (count,
// bytes) of one fn run. The GC is disabled for the measurement: a
// collection landing mid-run empties the scratch-slab sync.Pools, and the
// slab refills then masquerade as steady-state allocation — the historical
// chunked-w4 27 MB/op outlier (vs ~18.6 MB for w1/w2/w8) was exactly this
// measurement artifact, not a pool-return miss (gets and puts balance on
// every worker path). fn runs once un-measured to re-warm the pools after
// the initial forced collection, then once measured.
// Scheduling still varies the op's concurrent slab footprint at higher
// worker counts (a run whose stages happen to overlap more checks out more
// slabs than the warm-up left pooled), so the minimum over a few measured
// runs is reported: it is the reproducible steady-state cost.
func measureAllocs(fn func()) (allocs, bytes uint64) {
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	runtime.GC()
	fn() // re-warm: the collection above emptied one pool generation
	var before, after runtime.MemStats
	for i := 0; i < 3; i++ {
		runtime.ReadMemStats(&before)
		fn()
		runtime.ReadMemStats(&after)
		a, b := after.Mallocs-before.Mallocs, after.TotalAlloc-before.TotalAlloc
		if i == 0 || a < allocs {
			allocs = a
		}
		if i == 0 || b < bytes {
			bytes = b
		}
	}
	return allocs, bytes
}
