package bench

import (
	"fmt"
	"io"
	"time"

	"fzmod/internal/core"
	"fzmod/internal/device"
	"fzmod/internal/grid"
	"fzmod/internal/metrics"
	"fzmod/internal/preprocess"
	"fzmod/internal/sdrbench"
)

// chunkedDims returns the geometry of the chunked-executor comparison
// field: 64 MiB (the paper-scale slab regime) at Full, 8 MiB at Small so a
// CI run still exercises several chunks.
func chunkedDims(sc Scale) grid.Dims {
	if sc == Full {
		return grid.D3(256, 256, 256) // 16 Mi elements, 64 MiB
	}
	return grid.D3(128, 128, 128) // 2 Mi elements, 8 MiB
}

// ChunkedComparison measures the chunked concurrent executor against the
// monolithic pipeline on one synthetic field: compression and
// decompression throughput at 1, 2, 4 and 8 workers, with the compression
// ratio and the chunk count per row. Output bytes are verified to
// round-trip within the bound before a row is reported.
func ChunkedComparison(w io.Writer, p *device.Platform, sc Scale) error {
	dims := chunkedDims(sc)
	data := sdrbench.GenNYX(dims, 77)
	eb := preprocess.RelBound(1e-4)
	pl := core.NewDefault()
	inBytes := 4 * dims.N()
	// Eight chunks regardless of scale, so Small runs see the same fan-out.
	chunkElems := dims.N() / 8

	fmt.Fprintf(w, "Chunked vs monolithic executor: %s, %v (%.0f MiB), eb=rel 1e-4, %d-elem chunks\n",
		pl.Name(), dims, float64(inBytes)/(1<<20), chunkElems)
	fmt.Fprintf(w, "%-16s %8s %10s %10s %8s\n", "executor", "chunks", "comp GB/s", "dec GB/s", "ratio")

	absEB, _, err := preprocess.Resolve(p, device.Host, data, eb)
	if err != nil {
		return err
	}
	row := func(name string, chunks int, compress func() ([]byte, error)) error {
		t0 := time.Now()
		blob, err := compress()
		compSec := time.Since(t0).Seconds()
		if err != nil {
			return fmt.Errorf("%s compress: %w", name, err)
		}
		t0 = time.Now()
		dec, gotDims, err := core.Decompress(p, blob)
		decSec := time.Since(t0).Seconds()
		if err != nil {
			return fmt.Errorf("%s decompress: %w", name, err)
		}
		if gotDims != dims {
			return fmt.Errorf("%s: dims %v, want %v", name, gotDims, dims)
		}
		if i := metrics.VerifyBound(data, dec, absEB); i != -1 {
			return fmt.Errorf("%s: bound violated at %d", name, i)
		}
		fmt.Fprintf(w, "%-16s %8d %10.3f %10.3f %8.1f\n", name, chunks,
			metrics.Throughput(inBytes, compSec), metrics.Throughput(inBytes, decSec),
			metrics.CompressionRatio(inBytes, len(blob)))
		return nil
	}

	if err := row("monolithic", 1, func() ([]byte, error) {
		return pl.CompressMonolithic(p, data, dims, eb)
	}); err != nil {
		return err
	}
	for _, workers := range []int{1, 2, 4, 8} {
		name := fmt.Sprintf("chunked-w%d", workers)
		opts := core.ChunkOpts{ChunkElems: chunkElems, Workers: workers}
		if err := row(name, 8, func() ([]byte, error) {
			return pl.CompressChunked(p, data, dims, eb, opts)
		}); err != nil {
			return err
		}
	}
	return nil
}
