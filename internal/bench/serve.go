package bench

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"sync"
	"time"

	"fzmod/internal/device"
	"fzmod/internal/grid"
	"fzmod/internal/metrics"
	"fzmod/internal/sdrbench"
	"fzmod/internal/serve"
)

// The serve experiment load-tests the fzmodd service surface in-process:
// an httptest server over internal/serve with N concurrent clients
// driving three request classes — small compresses (the batched path),
// large compresses (the direct admission path) and cached region reads —
// and reports per-class p50/p99 latency plus aggregate raw-field GB/s.
// Every response is checked; a single failed request fails the run,
// which is the zero-errors property CI leans on.

// serveClass is one request class of the load test.
type serveClass struct {
	name string
	// fire issues one request and returns the raw field bytes it moved.
	fire func(c *http.Client, base string) (int, error)
}

// quantile returns the q-quantile (0..1) of sorted latencies, in ms.
func quantile(sorted []time.Duration, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return float64(sorted[i]) / float64(time.Millisecond)
}

// ServeLoadReport runs the load test with `clients` concurrent clients
// each issuing `iters` requests per class, and returns the
// machine-readable report (experiment "serve"). clients and iters floor
// at 1; with clients < 2 the admission controller is never contended, so
// CI runs it at 8.
func ServeLoadReport(w io.Writer, sc Scale, clients, iters int) (*ChunkedReport, error) {
	if clients < 1 {
		clients = 1
	}
	if iters < 1 {
		iters = 1
	}
	smallDims := grid.D3(32, 32, 32) // 128 KiB: under the batch threshold
	largeDims := grid.D3(96, 96, 96) // ~3.4 MiB: direct admission path
	if sc == Full {
		largeDims = grid.D3(192, 192, 192)
	}
	small := sdrbench.GenNYX(smallDims, 11)
	large := sdrbench.GenNYX(largeDims, 12)
	smallBody := f32Bytes(small)
	largeBody := f32Bytes(large)

	p := device.NewH100Platform()
	srv := serve.New(p, serve.Config{
		// Queue deep enough that clients*classes concurrent requests wait
		// instead of shedding: the load test measures latency under
		// contention, not the shed path.
		MaxQueue: clients * 4,
		MaxWait:  30 * time.Second,
	})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Seed one object for the region class: compress the large field
	// through the service itself, then store it.
	client := ts.Client()
	blob, err := post(client, ts.URL+fmt.Sprintf("/v1/compress?dims=%s&eb=1e-3&chunk=%d",
		dimsArg(largeDims), largeDims.N()/8), largeBody)
	if err != nil {
		return nil, fmt.Errorf("seeding region object: %w", err)
	}
	req, _ := http.NewRequest(http.MethodPut, ts.URL+"/v1/objects/load", bytes.NewReader(blob))
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		return nil, fmt.Errorf("storing region object: status %d", resp.StatusCode)
	}
	regionBytes := (largeDims.X / 2) * (largeDims.Y / 2) * largeDims.Z * 4
	regionURL := fmt.Sprintf("/v1/objects/load/region?sel=0:%d,0:%d,0:%d",
		largeDims.X/2, largeDims.Y/2, largeDims.Z)

	classes := []serveClass{
		{"serve-small", func(c *http.Client, base string) (int, error) {
			_, err := post(c, base+fmt.Sprintf("/v1/compress?dims=%s&eb=1e-3", dimsArg(smallDims)), smallBody)
			return len(smallBody), err
		}},
		{"serve-large", func(c *http.Client, base string) (int, error) {
			_, err := post(c, base+fmt.Sprintf("/v1/compress?dims=%s&eb=1e-3&chunk=%d",
				dimsArg(largeDims), largeDims.N()/8), largeBody)
			return len(largeBody), err
		}},
		{"serve-region", func(c *http.Client, base string) (int, error) {
			body, err := get(c, base+regionURL)
			if err != nil {
				return 0, err
			}
			if len(body) != regionBytes {
				return 0, fmt.Errorf("region read returned %d bytes, want %d", len(body), regionBytes)
			}
			return regionBytes, nil
		}},
	}

	report := &ChunkedReport{
		Experiment: "serve",
		Workload:   fmt.Sprintf("nyx-%v+%v", smallDims, largeDims),
		Pipeline:   "default",
		RelEB:      1e-3,
		GoMaxProcs: srv.Admission().Budget(),
		Kernels:    p.KernelImpl(),
	}
	fmt.Fprintf(w, "Serve load test: %d clients x %d iters/class, budget %d workers\n",
		clients, iters, srv.Admission().Budget())
	fmt.Fprintf(w, "%-14s %8s %10s %10s %10s %8s\n", "class", "reqs", "p50 ms", "p99 ms", "GB/s", "errors")

	for _, cl := range classes {
		lats := make([]time.Duration, 0, clients*iters)
		var mu sync.Mutex
		var wg sync.WaitGroup
		var totalBytes int64
		errs := make([]error, clients)
		t0 := time.Now()
		for i := 0; i < clients; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				c := ts.Client()
				for it := 0; it < iters; it++ {
					r0 := time.Now()
					n, err := cl.fire(c, ts.URL)
					lat := time.Since(r0)
					if err != nil {
						errs[i] = fmt.Errorf("client %d iter %d: %w", i, it, err)
						return
					}
					mu.Lock()
					lats = append(lats, lat)
					totalBytes += int64(n)
					mu.Unlock()
				}
			}(i)
		}
		wg.Wait()
		wall := time.Since(t0).Seconds()
		for _, err := range errs {
			if err != nil {
				return nil, fmt.Errorf("%s: %w", cl.name, err)
			}
		}
		sort.Slice(lats, func(a, b int) bool { return lats[a] < lats[b] })
		row := ChunkedRow{
			Executor: cl.name,
			Workers:  clients,
			CompGBs:  metrics.Throughput(int(totalBytes), wall),
			P50Ms:    quantile(lats, 0.50),
			P99Ms:    quantile(lats, 0.99),
			Requests: len(lats),
		}
		report.Rows = append(report.Rows, row)
		fmt.Fprintf(w, "%-14s %8d %10.2f %10.2f %10.3f %8d\n",
			row.Executor, row.Requests, row.P50Ms, row.P99Ms, row.CompGBs, 0)
	}
	fmt.Fprintf(w, "admission: granted=%d shed=%d peak=%d/%d\n",
		srv.Admission().Granted(), srv.Admission().Shed(),
		srv.Admission().Peak(), srv.Admission().Budget())
	if shed := srv.Admission().Shed(); shed > 0 {
		return nil, fmt.Errorf("bench: %d requests shed under a %d-deep queue — queue sizing bug", shed, clients*4)
	}
	return report, nil
}

// dimsArg renders dims in the daemon's XxYxZ query syntax.
func dimsArg(d grid.Dims) string { return fmt.Sprintf("%dx%dx%d", d.X, d.Y, d.Z) }

// f32Bytes renders a field as the daemon's little-endian wire format.
func f32Bytes(vals []float32) []byte {
	var buf bytes.Buffer
	stage := make([]byte, 64<<10)
	if err := device.WriteF32(&buf, vals, stage); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

// post issues one POST and returns the response body, erroring on any
// non-200 status.
func post(c *http.Client, url string, body []byte) ([]byte, error) {
	resp, err := c.Post(url, "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("POST %s: status %d: %s", url, resp.StatusCode, bytes.TrimSpace(out))
	}
	return out, nil
}

// get issues one GET and returns the response body, erroring on any
// non-200 status.
func get(c *http.Client, url string) ([]byte, error) {
	resp, err := c.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s: status %d: %s", url, resp.StatusCode, bytes.TrimSpace(out))
	}
	return out, nil
}
