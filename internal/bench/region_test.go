package bench

import (
	"bytes"
	"strings"
	"testing"
)

// TestRegionComparisonReport smoke-runs the region experiment at Small
// scale and checks the report's structural invariants: the byte-economy
// rows really fetch a fraction of the container, and the warm row is
// served from the cache.
func TestRegionComparisonReport(t *testing.T) {
	var buf bytes.Buffer
	report, err := RegionComparisonReport(&buf, tp, Small)
	if err != nil {
		t.Fatalf("RegionComparisonReport: %v\n%s", err, buf.String())
	}
	if report.Experiment != "region" {
		t.Errorf("experiment = %q, want region", report.Experiment)
	}
	for _, want := range []string{"region-1of8-cold", "region-1of8-warm", "region-scan-warm", "region-full"} {
		if report.Row(want) == nil {
			t.Fatalf("report missing row %q:\n%s", want, buf.String())
		}
	}

	cold := report.Row("region-1of8-cold")
	if cold.Chunks != 1 || cold.FetchFraction <= 0 || cold.FetchFraction > 0.25 {
		t.Errorf("cold 1-of-8 read should fetch ≤1/4 of the container: %+v", cold)
	}
	warm := report.Row("region-1of8-warm")
	if warm.CacheHitRate != 1 {
		t.Errorf("warm re-read should be a pure cache hit: %+v", warm)
	}
	if warm.FetchFraction != 0 {
		t.Errorf("warm re-read should fetch no payload bytes: %+v", warm)
	}
	scan := report.Row("region-scan-warm")
	if scan.CacheHitRate <= 0 || scan.CacheHitRate >= 1 {
		t.Errorf("scan should mix hits and decodes: %+v", scan)
	}
	full := report.Row("region-full")
	if full.Chunks != 8 || full.FetchFraction < 0.9 {
		t.Errorf("full region read should touch every chunk: %+v", full)
	}
	if !strings.Contains(buf.String(), "hit rate") {
		t.Errorf("table header missing: %q", buf.String())
	}
}
