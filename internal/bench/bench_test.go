package bench

import (
	"bytes"
	"strings"
	"testing"

	"fzmod/internal/core"
	"fzmod/internal/device"
	"fzmod/internal/grid"
	"fzmod/internal/sdrbench"
)

var tp = device.NewTestPlatform()

func TestDimsScales(t *testing.T) {
	for _, ds := range sdrbench.All() {
		small, full := Dims(ds, Small), Dims(ds, Full)
		if small.N() >= full.N() {
			t.Errorf("%v: small %v not smaller than full %v", ds, small, full)
		}
		if small.Rank() != full.Rank() {
			t.Errorf("%v: scaling changed rank", ds)
		}
	}
}

func TestDataCached(t *testing.T) {
	a, dims := Data(sdrbench.HURR, Small)
	b, _ := Data(sdrbench.HURR, Small)
	if &a[0] != &b[0] {
		t.Error("Data should return the cached slice")
	}
	if dims != Dims(sdrbench.HURR, Small) {
		t.Error("dims mismatch")
	}
}

func TestCompressorSets(t *testing.T) {
	gpu := GPUCompressors()
	all := Compressors()
	if len(all) != len(gpu)+1 {
		t.Fatalf("Compressors should append sz3: %d vs %d", len(all), len(gpu))
	}
	if all[len(all)-1].Name() != "sz3" {
		t.Error("sz3 must be last (paper excludes it from throughput figures)")
	}
	for _, c := range gpu {
		if c.Name() == "sz3" {
			t.Error("sz3 in GPU set")
		}
	}
}

func TestRunOneProducesConsistentResult(t *testing.T) {
	data, dims := Data(sdrbench.HURR, Small)
	r := RunOne(tp, core.NewDefault(), data, dims, 1e-3)
	if r.CompErr != nil {
		t.Fatal(r.CompErr)
	}
	if r.CR <= 1 || r.Bitrate <= 0 || r.PSNR <= 0 || r.CompGBs <= 0 || r.DecompGBs <= 0 {
		t.Errorf("implausible result: %+v", r)
	}
	// bitrate and CR are two views of the same size: CR = 32/bitrate.
	if got := 32 / r.Bitrate; got/r.CR < 0.99 || got/r.CR > 1.01 {
		t.Errorf("CR %.3f inconsistent with bitrate %.3f", r.CR, r.Bitrate)
	}
}

func TestRunOneReportsRejection(t *testing.T) {
	// FZ-GPU rejects 1e-6 on CESM (16-bit residual overflow); RunOne must
	// carry the error rather than fake numbers.
	data, dims := Data(sdrbench.CESM, Small)
	var found bool
	for _, c := range GPUCompressors() {
		if c.Name() == "fz-gpu" {
			r := RunOne(tp, c, data, dims, 1e-6)
			if r.CompErr == nil {
				t.Skip("fz-gpu accepted 1e-6 on this field")
			}
			found = true
		}
	}
	if !found {
		t.Fatal("fz-gpu not in GPU set")
	}
}

func TestTable3Writer(t *testing.T) {
	var buf bytes.Buffer
	results := Table3(&buf, tp, Small)
	out := buf.String()
	for _, want := range []string{"Table 3", "CESM-ATM", "NYX", "sz3", "fzmod-default"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
	// 4 datasets × 3 bounds × 7 compressors.
	if len(results) != 4*3*7 {
		t.Errorf("result count = %d, want 84", len(results))
	}
}

func TestSpeedupWriterCalibration(t *testing.T) {
	var buf bytes.Buffer
	h := device.NewH100Platform()
	results := Speedup(&buf, h, Small)
	out := buf.String()
	if !strings.Contains(out, "calibration") {
		t.Error("speedup output must state the bandwidth calibration")
	}
	if len(results) != 4*3*6 {
		t.Errorf("result count = %d, want 72", len(results))
	}
}

func TestFig1Writer(t *testing.T) {
	var buf bytes.Buffer
	Fig1(&buf, tp, Small)
	out := buf.String()
	if !strings.Contains(out, "[compression]") || !strings.Contains(out, "[decompression]") {
		t.Error("Fig1 output must contain both directions")
	}
}

func TestAblationsRun(t *testing.T) {
	var buf bytes.Buffer
	if err := STFAblation(&buf, tp, Small); err != nil {
		t.Errorf("STFAblation: %v", err)
	}
	if !strings.Contains(buf.String(), "digraph stf") {
		t.Error("STF ablation should dump the DAG")
	}
	buf.Reset()
	if err := HistAblation(&buf, tp, Small); err != nil {
		t.Errorf("HistAblation: %v", err)
	}
	if !strings.Contains(buf.String(), "spikiness") {
		t.Error("hist ablation should report spikiness")
	}
	buf.Reset()
	if err := SecondaryAblation(&buf, tp, Small); err != nil {
		t.Errorf("SecondaryAblation: %v", err)
	}
	buf.Reset()
	if err := FusionAblation(&buf, tp, Small); err != nil {
		t.Errorf("FusionAblation: %v", err)
	}
	if !strings.Contains(buf.String(), "fz-gpu") || !strings.Contains(buf.String(), "fzmod-speed") {
		t.Error("fusion ablation should compare both encoders")
	}
	buf.Reset()
	if err := PlaceAblation(&buf, tp, Small); err != nil {
		t.Errorf("PlaceAblation: %v", err)
	}
	if !strings.Contains(buf.String(), "huffman@host") || !strings.Contains(buf.String(), "huffman@accel") {
		t.Error("place ablation should compare both places")
	}
}

func TestDimsHelperSmallFloor(t *testing.T) {
	// The quartering must never produce degenerate dims.
	for _, ds := range sdrbench.All() {
		d := Dims(ds, Small)
		if !d.Valid() {
			t.Errorf("%v: invalid small dims %v", ds, d)
		}
	}
	_ = grid.Dims{}
}
