package bench

import (
	"errors"
	"fmt"
	"io"
	"runtime"
	"time"

	"fzmod/internal/core"
	"fzmod/internal/device"
	"fzmod/internal/fzio"
	"fzmod/internal/metrics"
	"fzmod/internal/preprocess"
	"fzmod/internal/sdrbench"
)

// FaultsComparison measures resilient reads under injected faults and
// prints the table; see FaultsComparisonReport for the machine-readable
// form.
func FaultsComparison(w io.Writer, p *device.Platform, sc Scale) error {
	_, err := FaultsComparisonReport(w, p, sc)
	return err
}

// FaultsComparisonReport is the resilience experiment: full-container
// region reads through a retrying fetcher over a seeded fault injector,
// at increasing transient-fault rates. Every row's output is verified
// bit-identical to the fault-free full decompression before any
// throughput is reported — the experiment's claim is exactly that reads
// stay correct while the retry layer absorbs the faults, with the cost
// visible as fetch attempts and retries. Rows:
//
//   - faults-0: the fault-free baseline through the same stack.
//   - faults-30: 30% transient error rate plus 10% truncated ranges —
//     the acceptance threshold for the chaos suite.
//   - faults-50: half of all fetch attempts fail; the read still
//     completes bit-identically.
//
// After the rate rows, the experiment verifies the complementary
// contract: a corrupted payload (bit flips on every fetch) must be
// refused with a CRC mismatch, never silently decoded — corruption is
// not a retryable fault.
func FaultsComparisonReport(w io.Writer, p *device.Platform, sc Scale) (*ChunkedReport, error) {
	dims := chunkedDims(sc)
	data := sdrbench.GenNYX(dims, 77)
	eb := preprocess.RelBound(1e-4)
	pl := core.NewDefault()

	blob, err := pl.CompressChunked(p, data, dims, eb, core.ChunkOpts{ChunkElems: dims.N() / 8})
	if err != nil {
		return nil, err
	}
	full, _, err := core.Decompress(p, blob)
	if err != nil {
		return nil, err
	}

	report := &ChunkedReport{
		Experiment: "faults",
		Workload:   fmt.Sprintf("nyx-%v", dims),
		Pipeline:   pl.Name(),
		RelEB:      1e-4,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Kernels:    p.KernelImpl(),
	}
	fmt.Fprintf(w, "Resilient reads under injected faults: %s, %v container (%d bytes)\n",
		pl.Name(), dims, len(blob))
	fmt.Fprintf(w, "%-12s %10s %10s %10s %10s\n", "scenario", "fault rate", "read GB/s", "attempts", "retries")

	sel := core.FullRegion(dims)
	row := func(name string, errorRate, truncateRate float64, seed int64) error {
		var best float64
		var attempts, retries, proofs int64
		for pass := 0; pass < 2; pass++ {
			faulty := fzio.NewFaultFetcher(fzio.NewBytesFetcher(blob), fzio.FaultConfig{
				Seed:         seed + int64(pass),
				ErrorRate:    errorRate,
				TruncateRate: truncateRate,
			})
			retrying := fzio.NewRetryFetcher(faulty, fzio.RetryPolicy{
				MaxAttempts: 16,
				Sleep:       func(time.Duration) {}, // measure decode cost, not backoff
			})
			t0 := time.Now()
			out, rep, err := core.DecompressRegionReport(p, retrying, sel, core.RegionOpts{VerifyProofs: true})
			sec := time.Since(t0).Seconds()
			if err != nil {
				return fmt.Errorf("%s: %w", name, err)
			}
			for i := range full {
				if out[i] != full[i] {
					return fmt.Errorf("%s: byte-diverged at element %d under faults", name, i)
				}
			}
			attempts, retries, proofs = rep.Region.FetchAttempts, rep.Region.FetchRetries, rep.Region.ProofVerified
			if errorRate > 0 && retries == 0 {
				return fmt.Errorf("%s: no retries at a %g fault rate — injector inert", name, errorRate)
			}
			if proofs == 0 {
				return fmt.Errorf("%s: no proof verifications on a Merkle-rooted container", name)
			}
			if pass == 0 || sec < best {
				best = sec
			}
		}
		r := ChunkedRow{
			Executor:           name,
			GoMaxProcs:         report.GoMaxProcs,
			Workers:            report.GoMaxProcs,
			Chunks:             8,
			DecGBs:             metrics.Throughput(4*len(full), best),
			FaultRate:          errorRate,
			FetchAttempts:      attempts,
			FetchRetries:       retries,
			ProofVerifications: proofs,
		}
		report.Rows = append(report.Rows, r)
		fmt.Fprintf(w, "%-12s %9.0f%% %10.3f %10d %10d\n",
			name, 100*errorRate, r.DecGBs, attempts, retries)
		return nil
	}

	if err := row("faults-0", 0, 0, 11); err != nil {
		return nil, err
	}
	if err := row("faults-30", 0.30, 0.10, 13); err != nil {
		return nil, err
	}
	if err := row("faults-50", 0.50, 0.10, 17); err != nil {
		return nil, err
	}

	// Corruption is the non-retryable side of the taxonomy: wrong bytes
	// must surface as a CRC failure, never as silently wrong values.
	corrupting := fzio.NewRetryFetcher(
		fzio.NewFaultFetcher(fzio.NewBytesFetcher(blob), fzio.FaultConfig{Seed: 19, CorruptRate: 1}),
		fzio.RetryPolicy{MaxAttempts: 16, Sleep: func(time.Duration) {}})
	if _, err := core.DecompressRegion(p, corrupting, sel, core.RegionOpts{}); err == nil {
		return nil, errors.New("bench: corrupted payload decoded silently")
	} else if !errors.Is(err, fzio.ErrCRCMismatch) {
		return nil, fmt.Errorf("bench: corrupted payload failed with %w, want a CRC mismatch", err)
	} else if corrupting.Retries() != 0 {
		return nil, fmt.Errorf("bench: CRC failures were retried %d times", corrupting.Retries())
	}
	fmt.Fprintf(w, "%-12s corruption refused with CRC mismatch, 0 retries\n", "faults-crc")

	// The adversarial tier: corruption crafted to preserve CRC32 slips
	// past the checksum and must be caught one layer up, by Merkle proof
	// verification — again without retries, since a proof mismatch is as
	// permanent as a CRC one.
	colliding := fzio.NewRetryFetcher(
		fzio.NewFaultFetcher(fzio.NewBytesFetcher(blob), fzio.FaultConfig{Seed: 23, CollideCRCRate: 1}),
		fzio.RetryPolicy{MaxAttempts: 16, Sleep: func(time.Duration) {}})
	if _, err := core.DecompressRegion(p, colliding, sel, core.RegionOpts{VerifyProofs: true}); err == nil {
		return nil, errors.New("bench: CRC-colliding corruption decoded silently")
	} else if !errors.Is(err, fzio.ErrProofMismatch) {
		return nil, fmt.Errorf("bench: CRC-colliding corruption failed with %w, want a proof mismatch", err)
	} else if colliding.Retries() != 0 {
		return nil, fmt.Errorf("bench: proof failures were retried %d times", colliding.Retries())
	}
	fmt.Fprintf(w, "%-12s CRC-colliding corruption refused with proof mismatch, 0 retries\n", "faults-proof")
	return report, nil
}
