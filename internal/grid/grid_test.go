package grid

import (
	"testing"
	"testing/quick"
)

func TestConstructors(t *testing.T) {
	if d := D1(7); d != (Dims{7, 1, 1}) {
		t.Errorf("D1: %+v", d)
	}
	if d := D2(3, 4); d != (Dims{3, 4, 1}) {
		t.Errorf("D2: %+v", d)
	}
	if d := D3(2, 3, 4); d != (Dims{2, 3, 4}) {
		t.Errorf("D3: %+v", d)
	}
}

func TestN(t *testing.T) {
	if D3(2, 3, 4).N() != 24 {
		t.Error("N mismatch")
	}
}

func TestRank(t *testing.T) {
	cases := []struct {
		d    Dims
		want int
	}{
		{D1(5), 1}, {D2(5, 2), 2}, {D3(5, 2, 2), 3},
		{Dims{5, 1, 1}, 1}, {Dims{1, 1, 1}, 1},
		// A z-extent forces rank 3 even with singleton y.
		{Dims{4, 1, 3}, 3},
	}
	for _, c := range cases {
		if got := c.d.Rank(); got != c.want {
			t.Errorf("Rank(%v) = %d, want %d", c.d, got, c.want)
		}
	}
}

func TestIdxCoordsInverse(t *testing.T) {
	d := D3(5, 7, 3)
	for z := 0; z < d.Z; z++ {
		for y := 0; y < d.Y; y++ {
			for x := 0; x < d.X; x++ {
				i := d.Idx(x, y, z)
				gx, gy, gz := d.Coords(i)
				if gx != x || gy != y || gz != z {
					t.Fatalf("Coords(Idx(%d,%d,%d)) = (%d,%d,%d)", x, y, z, gx, gy, gz)
				}
			}
		}
	}
}

func TestIdxXFastest(t *testing.T) {
	d := D3(4, 3, 2)
	if d.Idx(1, 0, 0) != 1 {
		t.Error("x must be the fastest dimension")
	}
	if d.Idx(0, 1, 0) != 4 {
		t.Error("y stride must be X")
	}
	if d.Idx(0, 0, 1) != 12 {
		t.Error("z stride must be X*Y")
	}
}

func TestValid(t *testing.T) {
	if !D3(1, 1, 1).Valid() {
		t.Error("1x1x1 should be valid")
	}
	for _, d := range []Dims{{0, 1, 1}, {1, 0, 1}, {1, 1, 0}, {-1, 1, 1}} {
		if d.Valid() {
			t.Errorf("%v should be invalid", d)
		}
	}
}

func TestString(t *testing.T) {
	cases := map[string]Dims{
		"5":     D1(5),
		"5x4":   D2(5, 4),
		"5x4x3": D3(5, 4, 3),
		"9x1x3": {9, 1, 3},
	}
	for want, d := range cases {
		if got := d.String(); got != want {
			t.Errorf("%+v.String() = %q, want %q", d, got, want)
		}
	}
}

func TestPropertyIdxBijective(t *testing.T) {
	f := func(x, y, z uint8) bool {
		d := Dims{int(x%16) + 1, int(y%16) + 1, int(z%16) + 1}
		seen := make(map[int]bool, d.N())
		for zz := 0; zz < d.Z; zz++ {
			for yy := 0; yy < d.Y; yy++ {
				for xx := 0; xx < d.X; xx++ {
					i := d.Idx(xx, yy, zz)
					if i < 0 || i >= d.N() || seen[i] {
						return false
					}
					seen[i] = true
				}
			}
		}
		return len(seen) == d.N()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
