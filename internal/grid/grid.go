// Package grid provides the small shared geometry vocabulary for the
// compression modules: dataset dimensions and index arithmetic for 1-D,
// 2-D and 3-D fields stored in x-fastest (C row-major, reversed) order.
package grid

import "fmt"

// Dims describes a field of X*Y*Z float values with x varying fastest:
// index = x + X*(y + Y*z). 2-D fields use Z=1, 1-D fields Y=Z=1.
type Dims struct {
	X, Y, Z int
}

// D1 returns 1-D dims of length n.
func D1(n int) Dims { return Dims{n, 1, 1} }

// D2 returns 2-D dims (x fastest).
func D2(x, y int) Dims { return Dims{x, y, 1} }

// D3 returns 3-D dims (x fastest).
func D3(x, y, z int) Dims { return Dims{x, y, z} }

// N returns the total element count.
func (d Dims) N() int { return d.X * d.Y * d.Z }

// Rank returns 1, 2 or 3 according to the trailing singleton dimensions.
func (d Dims) Rank() int {
	switch {
	case d.Z > 1:
		return 3
	case d.Y > 1:
		return 2
	default:
		return 1
	}
}

// Idx maps (x, y, z) to the linear index.
func (d Dims) Idx(x, y, z int) int { return x + d.X*(y+d.Y*z) }

// Coords inverts Idx.
func (d Dims) Coords(i int) (x, y, z int) {
	x = i % d.X
	i /= d.X
	y = i % d.Y
	z = i / d.Y
	return
}

// Valid reports whether all extents are positive.
func (d Dims) Valid() bool { return d.X > 0 && d.Y > 0 && d.Z > 0 }

// String renders "XxYxZ" with trailing singletons omitted.
func (d Dims) String() string {
	switch d.Rank() {
	case 3:
		return fmt.Sprintf("%dx%dx%d", d.X, d.Y, d.Z)
	case 2:
		return fmt.Sprintf("%dx%d", d.X, d.Y)
	default:
		return fmt.Sprintf("%d", d.X)
	}
}
