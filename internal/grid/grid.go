// Package grid provides the small shared geometry vocabulary for the
// compression modules: dataset dimensions and index arithmetic for 1-D,
// 2-D and 3-D fields stored in x-fastest (C row-major, reversed) order.
package grid

import "fmt"

// Dims describes a field of X*Y*Z float values with x varying fastest:
// index = x + X*(y + Y*z). 2-D fields use Z=1, 1-D fields Y=Z=1.
type Dims struct {
	X, Y, Z int
}

// D1 returns 1-D dims of length n.
func D1(n int) Dims { return Dims{n, 1, 1} }

// D2 returns 2-D dims (x fastest).
func D2(x, y int) Dims { return Dims{x, y, 1} }

// D3 returns 3-D dims (x fastest).
func D3(x, y, z int) Dims { return Dims{x, y, z} }

// N returns the total element count.
func (d Dims) N() int { return d.X * d.Y * d.Z }

// Rank returns 1, 2 or 3 according to the trailing singleton dimensions.
func (d Dims) Rank() int {
	switch {
	case d.Z > 1:
		return 3
	case d.Y > 1:
		return 2
	default:
		return 1
	}
}

// Idx maps (x, y, z) to the linear index.
func (d Dims) Idx(x, y, z int) int { return x + d.X*(y+d.Y*z) }

// Coords inverts Idx.
func (d Dims) Coords(i int) (x, y, z int) {
	x = i % d.X
	i /= d.X
	y = i % d.Y
	z = i / d.Y
	return
}

// Valid reports whether all extents are positive.
func (d Dims) Valid() bool { return d.X > 0 && d.Y > 0 && d.Z > 0 }

// PlaneElems returns the element count of one plane orthogonal to the
// slowest-varying dimension: X*Y for 3-D fields, X for 2-D, 1 for 1-D.
// Because storage is x-fastest, such planes are contiguous in memory.
func (d Dims) PlaneElems() int {
	switch d.Rank() {
	case 3:
		return d.X * d.Y
	case 2:
		return d.X
	default:
		return 1
	}
}

// SlowExtent returns the extent of the slowest-varying dimension (Z for
// 3-D, Y for 2-D, X for 1-D).
func (d Dims) SlowExtent() int {
	switch d.Rank() {
	case 3:
		return d.Z
	case 2:
		return d.Y
	default:
		return d.X
	}
}

// Slab is one contiguous block of a field partitioned along its
// slowest-varying dimension. Because storage is x-fastest, a slab covers
// the linear element range [Lo, Lo+Dims.N()) of the parent field. Planes
// records the slab's extent along the parent's slowest dimension
// explicitly: a short slab can drop rank (one z-plane of a 3-D field is a
// 2-D field), which silently changes what Dims.SlowExtent would report.
type Slab struct {
	Dims   Dims // slab geometry (full extent in the fast dimensions)
	Lo     int  // linear element offset of the slab start in the parent
	Planes int  // extent along the parent's slowest dimension
}

// Elems returns the slab's element count.
func (s Slab) Elems() int { return s.Dims.N() }

// Bytes returns the slab's size in bytes as float32 storage, the amount a
// streaming executor reads per slab window.
func (s Slab) Bytes() int { return 4 * s.Dims.N() }

// WithSlowExtent returns d with the slowest-varying dimension replaced,
// the geometry of a slab of n planes cut from a d-shaped field.
func (d Dims) WithSlowExtent(n int) Dims {
	switch d.Rank() {
	case 3:
		return Dims{d.X, d.Y, n}
	case 2:
		return Dims{d.X, n, 1}
	default:
		return Dims{n, 1, 1}
	}
}

// SplitSlabs partitions d into contiguous slabs of at most planes planes
// along the slowest-varying dimension. planes <= 0 or planes >=
// SlowExtent() yields a single slab covering the whole field.
func SplitSlabs(d Dims, planes int) []Slab {
	total := d.SlowExtent()
	if planes <= 0 || planes >= total {
		return []Slab{{Dims: d, Lo: 0, Planes: total}}
	}
	plane := d.PlaneElems()
	out := make([]Slab, 0, (total+planes-1)/planes)
	for lo := 0; lo < total; lo += planes {
		k := planes
		if lo+k > total {
			k = total - lo
		}
		out = append(out, Slab{Dims: d.WithSlowExtent(k), Lo: lo * plane, Planes: k})
	}
	return out
}

// String renders "XxYxZ" with trailing singletons omitted.
func (d Dims) String() string {
	switch d.Rank() {
	case 3:
		return fmt.Sprintf("%dx%dx%d", d.X, d.Y, d.Z)
	case 2:
		return fmt.Sprintf("%dx%d", d.X, d.Y)
	default:
		return fmt.Sprintf("%d", d.X)
	}
}
