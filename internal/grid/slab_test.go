package grid

import "testing"

func TestSplitSlabsCoversField(t *testing.T) {
	cases := []struct {
		dims   Dims
		planes int
		want   int // expected slab count
	}{
		{D3(8, 8, 16), 4, 4},
		{D3(8, 8, 17), 4, 5}, // ragged tail
		{D3(8, 8, 16), 16, 1},
		{D3(8, 8, 16), 0, 1},
		{D3(8, 8, 16), 100, 1},
		{D2(10, 9), 2, 5},
		{D1(13), 5, 3},
	}
	for _, tc := range cases {
		slabs := SplitSlabs(tc.dims, tc.planes)
		if len(slabs) != tc.want {
			t.Errorf("SplitSlabs(%v, %d): %d slabs, want %d", tc.dims, tc.planes, len(slabs), tc.want)
			continue
		}
		// Slabs must tile the linear index space contiguously.
		next := 0
		planes := 0
		for i, sl := range slabs {
			if sl.Lo != next {
				t.Errorf("%v/%d: slab %d starts at %d, want %d", tc.dims, tc.planes, i, sl.Lo, next)
			}
			if sl.Dims.N() != sl.Planes*tc.dims.PlaneElems() {
				t.Errorf("%v/%d: slab %d has %d elements, want %d planes x %d", tc.dims, tc.planes, i, sl.Dims.N(), sl.Planes, tc.dims.PlaneElems())
			}
			if sl.Elems() != sl.Dims.N() || sl.Bytes() != 4*sl.Dims.N() {
				t.Errorf("%v/%d: slab %d Elems/Bytes inconsistent", tc.dims, tc.planes, i)
			}
			next += sl.Dims.N()
			planes += sl.Planes
		}
		if next != tc.dims.N() {
			t.Errorf("%v/%d: slabs cover %d elements, field has %d", tc.dims, tc.planes, next, tc.dims.N())
		}
		if planes != tc.dims.SlowExtent() {
			t.Errorf("%v/%d: slabs cover %d planes, field has %d", tc.dims, tc.planes, planes, tc.dims.SlowExtent())
		}
	}
}

func TestSlowExtentAndPlaneElems(t *testing.T) {
	cases := []struct {
		d           Dims
		slow, plane int
		replaced    Dims
	}{
		{D3(4, 5, 6), 6, 20, D3(4, 5, 2)},
		{D2(4, 5), 5, 4, D2(4, 2)},
		{D1(7), 7, 1, D1(2)},
	}
	for _, tc := range cases {
		if got := tc.d.SlowExtent(); got != tc.slow {
			t.Errorf("%v.SlowExtent() = %d, want %d", tc.d, got, tc.slow)
		}
		if got := tc.d.PlaneElems(); got != tc.plane {
			t.Errorf("%v.PlaneElems() = %d, want %d", tc.d, got, tc.plane)
		}
		if got := tc.d.WithSlowExtent(2); got != tc.replaced {
			t.Errorf("%v.WithSlowExtent(2) = %v, want %v", tc.d, got, tc.replaced)
		}
	}
}
