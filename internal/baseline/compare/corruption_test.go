package compare

import (
	"math/rand"
	"testing"

	"fzmod/internal/core"
	"fzmod/internal/grid"
	"fzmod/internal/preprocess"
	"fzmod/internal/sdrbench"
)

// TestCorruptionNeverPanics is the failure-injection sweep: for every
// compressor, take a valid container and apply byte flips, truncations and
// extensions at sampled positions. Decompression must either succeed (the
// flip landed somewhere harmless — impossible here because the container
// CRCs every segment) or return an error; it must never panic or hang.
func TestCorruptionNeverPanics(t *testing.T) {
	dims := grid.D3(16, 16, 8)
	data := sdrbench.GenHURR(dims, 21)
	rng := rand.New(rand.NewSource(99))

	for _, c := range all() {
		blob, err := c.Compress(tp, data, dims, preprocess.RelBound(1e-3))
		if err != nil {
			t.Fatalf("%s: %v", c.Name(), err)
		}
		decompress := func(b []byte) {
			defer func() {
				if r := recover(); r != nil {
					t.Errorf("%s: panic on corrupt input: %v", c.Name(), r)
				}
			}()
			_, _, _ = c.Decompress(tp, b)
		}

		// Byte flips at 64 sampled positions.
		for trial := 0; trial < 64; trial++ {
			mut := append([]byte(nil), blob...)
			mut[rng.Intn(len(mut))] ^= byte(1 + rng.Intn(255))
			decompress(mut)
		}
		// Truncations at 16 sampled lengths.
		for trial := 0; trial < 16; trial++ {
			decompress(blob[:rng.Intn(len(blob))])
		}
		// Random garbage suffix.
		garbage := append(append([]byte(nil), blob...), make([]byte, 64)...)
		rng.Read(garbage[len(blob):])
		decompress(garbage)
		// Random garbage entirely.
		junk := make([]byte, 256)
		rng.Read(junk)
		decompress(junk)
	}
}

// TestCorruptionDetectedByCRC verifies that a payload flip inside any
// segment of a pipeline container is detected (the container checksums
// every segment, so a silent wrong answer would be a format bug).
func TestCorruptionDetectedByCRC(t *testing.T) {
	dims := grid.D3(16, 16, 8)
	data := sdrbench.GenHURR(dims, 22)
	blob, err := core.NewDefault().Compress(tp, data, dims, preprocess.RelBound(1e-3))
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := core.Decompress(tp, blob)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	silent := 0
	for trial := 0; trial < 128; trial++ {
		mut := append([]byte(nil), blob...)
		// Restrict flips to the payload region (skip the header ~64 B) so
		// every flip hits a CRC-protected segment.
		pos := 64 + rng.Intn(len(mut)-64)
		mut[pos] ^= 0xA5
		got, _, err := core.Decompress(tp, mut)
		if err != nil {
			continue
		}
		for i := range want {
			if got[i] != want[i] {
				silent++
				break
			}
		}
	}
	if silent > 0 {
		t.Errorf("%d/128 payload corruptions produced silently wrong output", silent)
	}
}

// TestDeterministicStreams checks that every compressor is bit-reproducible
// for a fixed input — required for the container CRCs to be meaningful and
// for cache-keyed workflows.
func TestDeterministicStreams(t *testing.T) {
	dims := grid.D3(16, 12, 6)
	data := sdrbench.GenNYX(dims, 23)
	for _, c := range all() {
		a, err := c.Compress(tp, data, dims, preprocess.RelBound(1e-3))
		if err != nil {
			t.Fatalf("%s: %v", c.Name(), err)
		}
		b, err := c.Compress(tp, data, dims, preprocess.RelBound(1e-3))
		if err != nil {
			t.Fatalf("%s: %v", c.Name(), err)
		}
		if len(a) != len(b) {
			t.Fatalf("%s: nondeterministic size %d vs %d", c.Name(), len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: nondeterministic byte at %d", c.Name(), i)
			}
		}
	}
}
