// Package compare cross-checks the relative behaviour of all seven
// compressors (three FZModules pipelines + four baselines) against the
// qualitative shape of the paper's Table 3 and Figure 4.
package compare

import (
	"testing"

	"fzmod/internal/baseline/cuszp2"
	"fzmod/internal/baseline/fzgpu"
	"fzmod/internal/baseline/pfpl"
	"fzmod/internal/baseline/sz3"
	"fzmod/internal/core"
	"fzmod/internal/device"
	"fzmod/internal/grid"
	"fzmod/internal/metrics"
	"fzmod/internal/preprocess"
	"fzmod/internal/sdrbench"
)

var tp = device.NewTestPlatform()

func all() []core.Compressor {
	out := []core.Compressor{}
	for _, pl := range core.Presets() {
		out = append(out, pl)
	}
	return append(out,
		cuszp2.Compressor{}, fzgpu.Compressor{}, pfpl.Compressor{}, sz3.New())
}

func ratioOf(t *testing.T, c core.Compressor, data []float32, dims grid.Dims, eb float64) float64 {
	t.Helper()
	blob, err := c.Compress(tp, data, dims, preprocess.RelBound(eb))
	if err != nil {
		t.Fatalf("%s: %v", c.Name(), err)
	}
	got, _, err := c.Decompress(tp, blob)
	if err != nil {
		t.Fatalf("%s: %v", c.Name(), err)
	}
	absEB, _, _ := preprocess.Resolve(tp, device.Host, data, preprocess.RelBound(eb))
	if i := metrics.VerifyBound(data, got, absEB); i != -1 {
		t.Fatalf("%s: bound violated at %d (%v vs %v)", c.Name(), i, data[i], got[i])
	}
	return metrics.CompressionRatio(4*dims.N(), len(blob))
}

func TestEverythingRoundtripsEverywhere(t *testing.T) {
	for _, ds := range sdrbench.All() {
		dims := grid.D3(20, 18, 6)
		if ds == sdrbench.HACC {
			dims = grid.D1(20000)
		}
		data := sdrbench.Generate(ds, dims, 9)
		for _, c := range all() {
			ratioOf(t, c, data, dims, 1e-3)
		}
	}
}

func TestSZ3HasBestRatioOnSmoothData(t *testing.T) {
	// Table 3 headline: "SZ3 has the best compression ratio across the
	// board" — assert it on the two smooth datasets at two bounds.
	// Larger grids than the other tests: SZ3's wide-alphabet Huffman
	// table is a fixed cost that only amortizes at realistic sizes.
	for _, ds := range []sdrbench.Dataset{sdrbench.CESM, sdrbench.NYX} {
		dims := grid.D3(64, 64, 16)
		if ds == sdrbench.NYX {
			dims = grid.D3(48, 48, 48)
		}
		data := sdrbench.Generate(ds, dims, 10)
		for _, eb := range []float64{1e-2, 1e-4} {
			best := ""
			bestCR := 0.0
			for _, c := range all() {
				cr := ratioOf(t, c, data, dims, eb)
				if cr > bestCR {
					bestCR, best = cr, c.Name()
				}
			}
			if best != "sz3" {
				t.Errorf("%v eb %g: best CR is %s (%.1f), paper shape says sz3", ds, eb, best, bestCR)
			}
		}
	}
}

func TestSpeedPipelineLowestRatioAmongFZMod(t *testing.T) {
	// Table 3: FZMod-Speed consistently trades CR away.
	dims := grid.D3(32, 32, 8)
	data := sdrbench.GenCESM(dims, 11)
	crDefault := ratioOf(t, core.NewDefault(), data, dims, 1e-4)
	crSpeed := ratioOf(t, core.NewSpeed(), data, dims, 1e-4)
	if crSpeed >= crDefault {
		t.Errorf("speed CR %.1f should trail default %.1f", crSpeed, crDefault)
	}
}

func TestPFPLBeatsFixedLengthAtLooseBound(t *testing.T) {
	// Table 3 at 1e-2 on Nyx: PFPL ahead of cuSZp2 — its recursive zero
	// elimination collapses the exact-zero runs the lognormal voids
	// quantize to.
	dims := grid.D3(32, 32, 32)
	data := sdrbench.GenNYX(dims, 12)
	crP := ratioOf(t, pfpl.Compressor{}, data, dims, 1e-2)
	crC := ratioOf(t, cuszp2.Compressor{}, data, dims, 1e-2)
	if crP <= crC {
		t.Errorf("PFPL CR %.1f should beat cuSZp2 %.1f at loose bounds", crP, crC)
	}
}

func TestRateDistortionShape(t *testing.T) {
	// Figure 4 shape: at a fixed tight bound, the high-quality group
	// (sz3, default, quality, pfpl) reaches higher PSNR per bit than the
	// throughput group (speed, fz-gpu, cuszp2). Check a weaker invariant
	// robust to synthetic data: sz3's bitrate is the lowest while PSNR
	// stays at least comparable (within 3 dB of the best).
	dims := grid.D3(64, 64, 16)
	data := sdrbench.GenCESM(dims, 13)
	type point struct {
		name    string
		bitrate float64
		psnr    float64
	}
	var pts []point
	for _, c := range all() {
		blob, err := c.Compress(tp, data, dims, preprocess.RelBound(1e-4))
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := c.Decompress(tp, blob)
		if err != nil {
			t.Fatal(err)
		}
		q, err := metrics.Evaluate(tp, device.Host, data, got)
		if err != nil {
			t.Fatal(err)
		}
		pts = append(pts, point{c.Name(), metrics.Bitrate(dims.N(), len(blob)), q.PSNR})
	}
	minRate, maxPSNR := pts[0], pts[0]
	for _, pt := range pts[1:] {
		if pt.bitrate < minRate.bitrate {
			minRate = pt
		}
		if pt.psnr > maxPSNR.psnr {
			maxPSNR = pt
		}
	}
	if minRate.name != "sz3" {
		t.Errorf("lowest bitrate is %s (%.2f b/v), paper shape says sz3", minRate.name, minRate.bitrate)
	}
	for _, pt := range pts {
		if pt.name == "sz3" && pt.psnr < maxPSNR.psnr-3 {
			t.Errorf("sz3 PSNR %.1f more than 3 dB behind best %.1f", pt.psnr, maxPSNR.psnr)
		}
	}
}
