package fzgpu

import (
	"testing"

	"fzmod/internal/device"
	"fzmod/internal/grid"
	"fzmod/internal/metrics"
	"fzmod/internal/preprocess"
	"fzmod/internal/sdrbench"
)

var tp = device.NewTestPlatform()

func TestRoundtripAllDatasets(t *testing.T) {
	var c Compressor
	for _, ds := range sdrbench.All() {
		dims := grid.D3(24, 20, 8)
		if ds == sdrbench.HACC {
			dims = grid.D1(50000)
		}
		data := sdrbench.Generate(ds, dims, 1)
		for _, eb := range []float64{1e-2, 1e-4} {
			blob, err := c.Compress(tp, data, dims, preprocess.RelBound(eb))
			if err != nil {
				t.Fatalf("%v eb %g: %v", ds, eb, err)
			}
			got, gotDims, err := c.Decompress(tp, blob)
			if err != nil {
				t.Fatalf("%v eb %g: %v", ds, eb, err)
			}
			if gotDims != dims {
				t.Fatal("dims mismatch")
			}
			absEB, _, _ := preprocess.Resolve(tp, device.Accel, data, preprocess.RelBound(eb))
			if i := metrics.VerifyBound(data, got, absEB); i != -1 {
				t.Fatalf("%v eb %g: bound violated at %d: %v vs %v", ds, eb, i, data[i], got[i])
			}
		}
	}
}

func TestRanks(t *testing.T) {
	var c Compressor
	for _, dims := range []grid.Dims{grid.D1(5000), grid.D2(80, 60), grid.D3(20, 25, 10)} {
		data := sdrbench.GenHURR(dims, 2)
		blob, err := c.Compress(tp, data, dims, preprocess.RelBound(1e-3))
		if err != nil {
			t.Fatalf("%v: %v", dims, err)
		}
		got, _, err := c.Decompress(tp, blob)
		if err != nil {
			t.Fatalf("%v: %v", dims, err)
		}
		absEB, _, _ := preprocess.Resolve(tp, device.Accel, data, preprocess.RelBound(1e-3))
		if i := metrics.VerifyBound(data, got, absEB); i != -1 {
			t.Fatalf("%v: bound violated at %d", dims, i)
		}
	}
}

func TestCompressesSmoothData(t *testing.T) {
	var c Compressor
	dims := grid.D3(32, 32, 16)
	data := sdrbench.GenCESM(dims, 3)
	blob, err := c.Compress(tp, data, dims, preprocess.RelBound(1e-2))
	if err != nil {
		t.Fatal(err)
	}
	if cr := metrics.CompressionRatio(4*dims.N(), len(blob)); cr < 4 {
		t.Errorf("CR = %.1f on smooth data at 1e-2, want ≥ 4", cr)
	}
}

func TestResidualOverflowReported(t *testing.T) {
	var c Compressor
	// Alternating extremes at a tight bound force residuals beyond int16.
	data := make([]float32, 1024)
	for i := range data {
		if i%2 == 0 {
			data[i] = 1000
		} else {
			data[i] = -1000
		}
	}
	if _, err := c.Compress(tp, data, grid.D1(1024), preprocess.AbsBound(1e-3)); err == nil {
		t.Error("16-bit residual overflow should be reported, not silently wrapped")
	}
}

func TestErrors(t *testing.T) {
	var c Compressor
	if _, err := c.Compress(tp, make([]float32, 3), grid.D1(4), preprocess.RelBound(1e-3)); err == nil {
		t.Error("dims mismatch should fail")
	}
	if _, _, err := c.Decompress(tp, []byte("garbage")); err == nil {
		t.Error("garbage should fail")
	}
	dims := grid.D1(5000)
	data := sdrbench.GenHACC(dims.N(), 4)
	blob, err := c.Compress(tp, data, dims, preprocess.RelBound(1e-3))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Decompress(tp, blob[:len(blob)/3]); err == nil {
		t.Error("truncated container should fail")
	}
}
