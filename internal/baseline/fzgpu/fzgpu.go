// Package fzgpu reproduces the FZ-GPU baseline (§2.2): the cuSZ Lorenzo
// predictor fused with bitshuffle and zero-block dictionary encoding in a
// single pass over tiles. The fused kernel recomputes neighbor
// pre-quantizations on the fly instead of staging a codes array, which is
// the structural difference from FZMod-Speed (same data-reduction
// techniques, staged through the framework) that the paper calls out when
// FZMod-Speed "performs worse at times due to not being a fused-kernel
// implementation".
//
// Like the original, residuals are carried in 16 bits with no outlier
// escape: a residual that cannot be represented makes Compress return an
// error telling the caller to relax the bound.
package fzgpu

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/bits"
	"sync/atomic"

	"fzmod/internal/device"
	"fzmod/internal/fzio"
	"fzmod/internal/grid"
	"fzmod/internal/kernels"
	"fzmod/internal/preprocess"
)

const pipelineName = "fz-gpu"

const (
	tileValues = 1024
	tileBytes  = 16 * tileValues / 8
	blockBytes = 32
	blocksPer  = tileBytes / blockBytes
)

// Compressor implements core.Compressor.
type Compressor struct{}

// Name implements core.Compressor.
func (Compressor) Name() string { return pipelineName }

// Compress implements core.Compressor.
func (Compressor) Compress(p *device.Platform, data []float32, dims grid.Dims, eb preprocess.ErrorBound) ([]byte, error) {
	if dims.N() != len(data) {
		return nil, fmt.Errorf("fz-gpu: dims %v do not match %d values", dims, len(data))
	}
	absEB, _, err := preprocess.Resolve(p, device.Accel, data, eb)
	if err != nil {
		return nil, err
	}
	n := len(data)
	inv2eb := 1.0 / (2 * absEB)
	nTiles := (n + tileValues - 1) / tileValues

	// Residual at linear index i, recomputing neighbor prequantization on
	// the fly (dual-quant, fused style — no staged lattice array).
	q := func(x, y, z int) int64 {
		if x < 0 || y < 0 || z < 0 {
			return 0
		}
		return int64(math.Round(float64(data[dims.Idx(x, y, z)]) * inv2eb))
	}
	rank := dims.Rank()
	resid := func(i int) int64 {
		x, y, z := dims.Coords(i)
		switch rank {
		case 1:
			return q(x, y, z) - q(x-1, y, z)
		case 2:
			return q(x, y, z) - q(x-1, y, z) - q(x, y-1, z) + q(x-1, y-1, z)
		default:
			return q(x, y, z) -
				q(x-1, y, z) - q(x, y-1, z) - q(x, y, z-1) +
				q(x-1, y-1, z) + q(x-1, y, z-1) + q(x, y-1, z-1) -
				q(x-1, y-1, z-1)
		}
	}

	// Fused kernel: per tile, residual → zigzag16 → bitshuffle → bitmap.
	bitmaps := make([]uint64, nTiles)
	shuffled := make([]byte, nTiles*tileBytes)
	var overflow atomic.Bool
	p.LaunchGrid(device.Accel, nTiles, func(lo, hi int) {
		var tile [tileValues]uint16
		for t := lo; t < hi; t++ {
			start, end := t*tileValues, (t+1)*tileValues
			if end > n {
				end = n
			}
			for i := start; i < end; i++ {
				d := resid(i)
				if d > math.MaxInt16 || d < math.MinInt16 {
					overflow.Store(true)
					return
				}
				tile[i-start] = kernels.ZigZag16(int16(d))
			}
			for i := end - start; i < tileValues; i++ {
				tile[i] = 0
			}
			sh := kernels.Bitshuffle(tile[:])
			copy(shuffled[t*tileBytes:], sh)
			var bm uint64
			for b := 0; b < blocksPer; b++ {
				blk := sh[b*blockBytes : (b+1)*blockBytes]
				for _, by := range blk {
					if by != 0 {
						bm |= 1 << uint(b)
						break
					}
				}
			}
			bitmaps[t] = bm
		}
	})
	if overflow.Load() {
		return nil, fmt.Errorf("fz-gpu: residual exceeds 16-bit range at eb %g; relax the bound", absEB)
	}

	sizes := make([]uint32, nTiles)
	for t, bm := range bitmaps {
		sizes[t] = uint32(bits.OnesCount64(bm) * blockBytes)
	}
	offsets, total := kernels.ExclusiveScan(p, device.Accel, sizes)

	payload := make([]byte, nTiles*8+int(total))
	for t, bm := range bitmaps {
		binary.LittleEndian.PutUint64(payload[8*t:], bm)
	}
	base := nTiles * 8
	p.LaunchGrid(device.Accel, nTiles, func(lo, hi int) {
		for t := lo; t < hi; t++ {
			dst := base + int(offsets[t])
			bm := bitmaps[t]
			src := t * tileBytes
			for b := 0; b < blocksPer; b++ {
				if bm&(1<<uint(b)) != 0 {
					copy(payload[dst:dst+blockBytes], shuffled[src+b*blockBytes:])
					dst += blockBytes
				}
			}
		}
	})

	c := fzio.New(fzio.Header{Pipeline: pipelineName, Dims: dims, EB: absEB})
	if err := c.Add("payload", payload); err != nil {
		return nil, err
	}
	return c.Marshal()
}

// Decompress implements core.Compressor.
func (Compressor) Decompress(p *device.Platform, blob []byte) ([]float32, grid.Dims, error) {
	c, err := fzio.Unmarshal(blob)
	if err != nil {
		return nil, grid.Dims{}, err
	}
	if c.Header.Pipeline != pipelineName {
		return nil, grid.Dims{}, fmt.Errorf("fz-gpu: container built by %q", c.Header.Pipeline)
	}
	payload, err := c.Segment("payload")
	if err != nil {
		return nil, grid.Dims{}, err
	}
	dims := c.Header.Dims
	n := dims.N()
	nTiles := (n + tileValues - 1) / tileValues
	if len(payload) < nTiles*8 {
		return nil, grid.Dims{}, fmt.Errorf("fz-gpu: payload shorter than bitmap table")
	}
	bitmaps := make([]uint64, nTiles)
	sizes := make([]uint32, nTiles)
	for t := range bitmaps {
		bitmaps[t] = binary.LittleEndian.Uint64(payload[8*t:])
		sizes[t] = uint32(bits.OnesCount64(bitmaps[t]) * blockBytes)
	}
	offsets, total := kernels.ExclusiveScan(p, device.Accel, sizes)
	base := nTiles * 8
	if len(payload) < base+int(total) {
		return nil, grid.Dims{}, fmt.Errorf("fz-gpu: payload shorter than block table claims")
	}

	// Unshuffle tiles into the residual lattice.
	lattice := make([]int32, n)
	p.LaunchGrid(device.Accel, nTiles, func(lo, hi int) {
		var sh [tileBytes]byte
		for t := lo; t < hi; t++ {
			for i := range sh {
				sh[i] = 0
			}
			src := base + int(offsets[t])
			bm := bitmaps[t]
			for b := 0; b < blocksPer; b++ {
				if bm&(1<<uint(b)) != 0 {
					copy(sh[b*blockBytes:(b+1)*blockBytes], payload[src:])
					src += blockBytes
				}
			}
			vals := kernels.Unbitshuffle(sh[:], tileValues)
			start, end := t*tileValues, (t+1)*tileValues
			if end > n {
				end = n
			}
			for i := start; i < end; i++ {
				lattice[i] = int32(kernels.UnZigZag16(vals[i-start]))
			}
		}
	})

	// Invert the separable Lorenzo difference with per-dimension prefix
	// sums, then scale off the lattice.
	prefixSums(p, lattice, dims)
	out := make([]float32, n)
	scale := 2 * c.Header.EB
	p.LaunchGrid(device.Accel, n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = float32(float64(lattice[i]) * scale)
		}
	})
	return out, dims, nil
}

func prefixSums(p *device.Platform, q []int32, dims grid.Dims) {
	nx, ny, nz := dims.X, dims.Y, dims.Z
	p.LaunchGrid(device.Accel, ny*nz, func(lo, hi int) {
		for l := lo; l < hi; l++ {
			base := l * nx
			var acc int32
			for x := 0; x < nx; x++ {
				acc += q[base+x]
				q[base+x] = acc
			}
		}
	})
	if dims.Rank() >= 2 {
		p.LaunchGrid(device.Accel, nx*nz, func(lo, hi int) {
			for l := lo; l < hi; l++ {
				x, z := l%nx, l/nx
				var acc int32
				for y := 0; y < ny; y++ {
					i := dims.Idx(x, y, z)
					acc += q[i]
					q[i] = acc
				}
			}
		})
	}
	if dims.Rank() >= 3 {
		p.LaunchGrid(device.Accel, nx*ny, func(lo, hi int) {
			for l := lo; l < hi; l++ {
				x, y := l%nx, l/nx
				var acc int32
				for z := 0; z < nz; z++ {
					i := dims.Idx(x, y, z)
					acc += q[i]
					q[i] = acc
				}
			}
		})
	}
}
