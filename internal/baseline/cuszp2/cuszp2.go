// Package cuszp2 reproduces the cuSZp2 baseline the paper compares against
// (§2.2): a throughput-first fused design — one pass performs 1-D offset
// prediction on pre-quantized values and per-block fixed-length bit
// packing, with no histogram, tree or dictionary stage. That single-pass
// structure is what gives cuSZp2 the highest throughput in Figure 1, and
// its block-granular fixed-length coding is why its ratio trails the
// Huffman pipelines in Table 3.
package cuszp2

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync/atomic"

	"fzmod/internal/device"
	"fzmod/internal/fzio"
	"fzmod/internal/grid"
	"fzmod/internal/kernels"
	"fzmod/internal/preprocess"
)

// blockValues is the fixed-length coding granularity (cuSZp2 uses 32).
const blockValues = 32

const pipelineName = "cuszp2"

// maxLattice guards int32 pre-quantization.
const maxLattice = 1 << 29

// Compressor implements core.Compressor.
type Compressor struct{}

// Name implements core.Compressor.
func (Compressor) Name() string { return pipelineName }

// Compress implements core.Compressor.
func (Compressor) Compress(p *device.Platform, data []float32, dims grid.Dims, eb preprocess.ErrorBound) ([]byte, error) {
	if dims.N() != len(data) {
		return nil, fmt.Errorf("cuszp2: dims %v do not match %d values", dims, len(data))
	}
	absEB, _, err := preprocess.Resolve(p, device.Accel, data, eb)
	if err != nil {
		return nil, err
	}
	n := len(data)
	nBlocks := (n + blockValues - 1) / blockValues
	inv2eb := 1.0 / (2 * absEB)

	// Kernel 1 (fused predict+measure): per block, pre-quantize, delta
	// within the block, zigzag, and record the bit width needed. The
	// block's first quantized value (its "head") is carried in a separate
	// chained side stream so in-block widths cover only true residuals.
	widths := make([]byte, nBlocks)
	heads := make([]int32, nBlocks)
	codes := make([]uint32, n)
	var overflow atomic.Bool
	p.LaunchGrid(device.Accel, nBlocks, func(lo, hi int) {
		for b := lo; b < hi; b++ {
			start, end := b*blockValues, (b+1)*blockValues
			if end > n {
				end = n
			}
			var prev int32
			maxBits := 0
			for i := start; i < end; i++ {
				q := math.Round(float64(data[i]) * inv2eb)
				if q > maxLattice || q < -maxLattice {
					overflow.Store(true)
					return
				}
				qi := int32(q)
				if i == start {
					heads[b] = qi
					prev = qi
					continue
				}
				z := kernels.ZigZag(qi - prev)
				prev = qi
				codes[i] = z
				if w := kernels.BitsFor(z); w > maxBits {
					maxBits = w
				}
			}
			widths[b] = byte(maxBits)
		}
	})
	if overflow.Load() {
		return nil, fmt.Errorf("cuszp2: error bound %g too tight for data magnitude", absEB)
	}

	// Head side stream: delta-chained varints (sequential but tiny).
	headStream := binary.AppendUvarint(nil, uint64(nBlocks))
	var prevHead int32
	for _, h := range heads {
		headStream = binary.AppendUvarint(headStream, uint64(kernels.ZigZag(h-prevHead)))
		prevHead = h
	}

	// Offsets via scan of per-block byte sizes, then kernel 2 packs.
	sizes := make([]uint32, nBlocks)
	for b := range sizes {
		cnt := blockValues - 1
		if (b+1)*blockValues > n {
			cnt = n - b*blockValues - 1
		}
		if cnt < 0 {
			cnt = 0
		}
		sizes[b] = uint32((cnt*int(widths[b]) + 7) / 8)
	}
	offsets, total := kernels.ExclusiveScan(p, device.Accel, sizes)

	payload := make([]byte, nBlocks+int(total))
	copy(payload, widths)
	base := nBlocks
	p.LaunchGrid(device.Accel, nBlocks, func(lo, hi int) {
		for b := lo; b < hi; b++ {
			start, end := b*blockValues, (b+1)*blockValues
			if end > n {
				end = n
			}
			w := int(widths[b])
			if w == 0 || end-start < 2 {
				continue
			}
			packed := kernels.PackBits(nil, codes[start+1:end], w)
			copy(payload[base+int(offsets[b]):], packed)
		}
	})

	c := fzio.New(fzio.Header{Pipeline: pipelineName, Dims: dims, EB: absEB})
	if err := c.Add("heads", headStream); err != nil {
		return nil, err
	}
	if err := c.Add("payload", payload); err != nil {
		return nil, err
	}
	return c.Marshal()
}

// Decompress implements core.Compressor.
func (Compressor) Decompress(p *device.Platform, blob []byte) ([]float32, grid.Dims, error) {
	c, err := fzio.Unmarshal(blob)
	if err != nil {
		return nil, grid.Dims{}, err
	}
	if c.Header.Pipeline != pipelineName {
		return nil, grid.Dims{}, fmt.Errorf("cuszp2: container built by %q", c.Header.Pipeline)
	}
	payload, err := c.Segment("payload")
	if err != nil {
		return nil, grid.Dims{}, err
	}
	headStream, err := c.Segment("heads")
	if err != nil {
		return nil, grid.Dims{}, err
	}
	dims := c.Header.Dims
	n := dims.N()
	nBlocks := (n + blockValues - 1) / blockValues
	if len(payload) < nBlocks {
		return nil, grid.Dims{}, fmt.Errorf("cuszp2: payload shorter than width table")
	}
	nb, k := binary.Uvarint(headStream)
	if k <= 0 || int(nb) != nBlocks {
		return nil, grid.Dims{}, fmt.Errorf("cuszp2: head stream inconsistent with dims")
	}
	heads := make([]int32, nBlocks)
	pos := k
	var prevHead int32
	for b := 0; b < nBlocks; b++ {
		z, k := binary.Uvarint(headStream[pos:])
		if k <= 0 {
			return nil, grid.Dims{}, fmt.Errorf("cuszp2: truncated head stream")
		}
		pos += k
		prevHead += kernels.UnZigZag(uint32(z))
		heads[b] = prevHead
	}
	widths := payload[:nBlocks]
	sizes := make([]uint32, nBlocks)
	for b := range sizes {
		cnt := blockValues - 1
		if (b+1)*blockValues > n {
			cnt = n - b*blockValues - 1
		}
		if cnt < 0 {
			cnt = 0
		}
		sizes[b] = uint32((cnt*int(widths[b]) + 7) / 8)
	}
	offsets, total := kernels.ExclusiveScan(p, device.Accel, sizes)
	if len(payload) < nBlocks+int(total) {
		return nil, grid.Dims{}, fmt.Errorf("cuszp2: payload shorter than block table claims")
	}

	out := make([]float32, n)
	scale := 2 * c.Header.EB
	var bad atomic.Bool
	p.LaunchGrid(device.Accel, nBlocks, func(lo, hi int) {
		for b := lo; b < hi; b++ {
			start, end := b*blockValues, (b+1)*blockValues
			if end > n {
				end = n
			}
			cnt := end - start
			w := int(widths[b])
			if w > 32 {
				bad.Store(true)
				return
			}
			acc := heads[b]
			out[start] = float32(float64(acc) * scale)
			if cnt < 2 {
				continue
			}
			var vals []uint32
			if w == 0 {
				vals = make([]uint32, cnt-1)
			} else {
				vals, _ = kernels.UnpackBits(payload[nBlocks+int(offsets[b]):], 0, cnt-1, w)
			}
			for i := 0; i < cnt-1; i++ {
				acc += kernels.UnZigZag(vals[i])
				out[start+1+i] = float32(float64(acc) * scale)
			}
		}
	})
	if bad.Load() {
		return nil, grid.Dims{}, fmt.Errorf("cuszp2: corrupt width table")
	}
	return out, dims, nil
}
