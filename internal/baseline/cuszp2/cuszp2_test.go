package cuszp2

import (
	"testing"

	"fzmod/internal/device"
	"fzmod/internal/grid"
	"fzmod/internal/metrics"
	"fzmod/internal/preprocess"
	"fzmod/internal/sdrbench"
)

var tp = device.NewTestPlatform()

func TestRoundtripAllDatasets(t *testing.T) {
	var c Compressor
	for _, ds := range sdrbench.All() {
		dims := grid.D3(24, 20, 8)
		if ds == sdrbench.HACC {
			dims = grid.D1(50000)
		}
		data := sdrbench.Generate(ds, dims, 1)
		for _, eb := range []float64{1e-2, 1e-4} {
			blob, err := c.Compress(tp, data, dims, preprocess.RelBound(eb))
			if err != nil {
				t.Fatalf("%v eb %g: %v", ds, eb, err)
			}
			got, gotDims, err := c.Decompress(tp, blob)
			if err != nil {
				t.Fatalf("%v eb %g: %v", ds, eb, err)
			}
			if gotDims != dims {
				t.Fatalf("dims mismatch")
			}
			absEB, _, _ := preprocess.Resolve(tp, device.Accel, data, preprocess.RelBound(eb))
			if i := metrics.VerifyBound(data, got, absEB); i != -1 {
				t.Fatalf("%v eb %g: bound violated at %d", ds, eb, i)
			}
		}
	}
}

func TestCompressesSmoothData(t *testing.T) {
	var c Compressor
	dims := grid.D3(32, 32, 16)
	data := sdrbench.GenCESM(dims, 2)
	blob, err := c.Compress(tp, data, dims, preprocess.RelBound(1e-2))
	if err != nil {
		t.Fatal(err)
	}
	if cr := metrics.CompressionRatio(4*dims.N(), len(blob)); cr < 3 {
		t.Errorf("CR = %.1f on smooth data at 1e-2, want ≥ 3", cr)
	}
}

func TestErrors(t *testing.T) {
	var c Compressor
	if _, err := c.Compress(tp, make([]float32, 3), grid.D1(4), preprocess.RelBound(1e-3)); err == nil {
		t.Error("dims mismatch should fail")
	}
	if _, err := c.Compress(tp, []float32{1e30, -1e30}, grid.D1(2), preprocess.AbsBound(1e-9)); err == nil {
		t.Error("lattice overflow should fail")
	}
	if _, _, err := c.Decompress(tp, []byte("garbage")); err == nil {
		t.Error("garbage should fail")
	}
	// Wrong-pipeline container.
	data := make([]float32, 64)
	blob, _ := c.Compress(tp, data, grid.D1(64), preprocess.AbsBound(1))
	_ = blob
}

func TestDecompressTruncated(t *testing.T) {
	var c Compressor
	dims := grid.D1(10000)
	data := sdrbench.GenHACC(dims.N(), 3)
	blob, err := c.Compress(tp, data, dims, preprocess.RelBound(1e-3))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Decompress(tp, blob[:len(blob)/2]); err == nil {
		t.Error("truncated container should fail")
	}
}

func TestConstantBlocksCostOneByte(t *testing.T) {
	// Constant data → all deltas zero → width 0 blocks: payload is just
	// the width table.
	var c Compressor
	dims := grid.D1(32 * 1000)
	data := make([]float32, dims.N())
	for i := range data {
		data[i] = 7.25
	}
	blob, err := c.Compress(tp, data, dims, preprocess.AbsBound(1e-3))
	if err != nil {
		t.Fatal(err)
	}
	if len(blob) > 2300 {
		t.Errorf("constant field compressed to %d bytes, want ~2KB (width+head tables only)", len(blob))
	}
}
