// Package sz3 reproduces the SZ3 baseline (§2.1/2.3): the modular CPU
// compressor whose high-quality prediction gives it "the highest CR for
// all datasets and error bounds" in Table 3. The reproduction composes the
// same stages SZ3 does: a multi-level interpolation predictor with
// per-level auto-tuned interpolants and dimension orders, a wide quantizer
// (large radius keeps almost every residual in-band), Huffman entropy
// coding, and a mandatory LZ secondary pass. All stages run at the host
// place: SZ3 is the CPU reference point, an order of magnitude slower than
// the GPU designs but ahead on rate–distortion.
package sz3

import (
	"fmt"

	"fzmod/internal/core"
	"fzmod/internal/device"
	"fzmod/internal/grid"
	"fzmod/internal/predictor/spline"
	"fzmod/internal/preprocess"
)

// Radius is SZ3's quantizer radius: 16× wider than the GPU pipelines, so
// rough regions stay in-band instead of escaping to outliers.
const Radius = 8192

// Compressor implements core.Compressor via an internal core.Pipeline with
// SZ3's module choices.
type Compressor struct {
	pl *core.Pipeline
}

// New builds the SZ3 baseline.
func New() *Compressor {
	pl := &core.Pipeline{
		PipelineName: "sz3",
		Pred: core.SplinePredictor{Config: spline.Config{
			Mode:      spline.Auto,
			TuneOrder: true,
			Radius:    Radius,
			MaxLevel:  5,
		}},
		Enc:       core.HuffmanEncoder{Hist: core.HistStandard},
		Sec:       core.LZSecondary{},
		PredPlace: device.Host,
		EncPlace:  device.Host,
	}
	return &Compressor{pl: pl}
}

// Name implements core.Compressor.
func (*Compressor) Name() string { return "sz3" }

// Compress implements core.Compressor.
func (c *Compressor) Compress(p *device.Platform, data []float32, dims grid.Dims, eb preprocess.ErrorBound) ([]byte, error) {
	blob, err := c.pl.Compress(p, data, dims, eb)
	if err != nil {
		return nil, fmt.Errorf("sz3: %w", err)
	}
	return blob, nil
}

// Decompress implements core.Compressor.
func (c *Compressor) Decompress(p *device.Platform, blob []byte) ([]float32, grid.Dims, error) {
	return c.pl.Decompress(p, blob)
}

func init() {
	// SZ3's predictor configuration must be resolvable from containers it
	// wrote; the registry key comes from SplinePredictor.Name() ("spline-
	// auto"), which presets.go registers with the default radius. Radius
	// travels in the container header, so the registered instance decodes
	// SZ3 streams too — nothing further to register here.
}
