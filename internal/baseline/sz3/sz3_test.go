package sz3

import (
	"testing"

	"fzmod/internal/device"
	"fzmod/internal/grid"
	"fzmod/internal/metrics"
	"fzmod/internal/preprocess"
	"fzmod/internal/sdrbench"
)

var tp = device.NewTestPlatform()

func TestRoundtripAllDatasets(t *testing.T) {
	c := New()
	for _, ds := range sdrbench.All() {
		dims := grid.D3(24, 20, 8)
		if ds == sdrbench.HACC {
			dims = grid.D1(30000)
		}
		data := sdrbench.Generate(ds, dims, 1)
		for _, eb := range []float64{1e-2, 1e-4} {
			blob, err := c.Compress(tp, data, dims, preprocess.RelBound(eb))
			if err != nil {
				t.Fatalf("%v eb %g: %v", ds, eb, err)
			}
			got, gotDims, err := c.Decompress(tp, blob)
			if err != nil {
				t.Fatalf("%v eb %g: %v", ds, eb, err)
			}
			if gotDims != dims {
				t.Fatal("dims mismatch")
			}
			absEB, _, _ := preprocess.Resolve(tp, device.Host, data, preprocess.RelBound(eb))
			if i := metrics.VerifyBound(data, got, absEB); i != -1 {
				t.Fatalf("%v eb %g: bound violated at %d", ds, eb, i)
			}
		}
	}
}

func TestName(t *testing.T) {
	if New().Name() != "sz3" {
		t.Error("name mismatch")
	}
}

func TestErrors(t *testing.T) {
	c := New()
	if _, err := c.Compress(tp, make([]float32, 3), grid.D1(4), preprocess.RelBound(1e-3)); err == nil {
		t.Error("dims mismatch should fail")
	}
	if _, _, err := c.Decompress(tp, []byte("garbage")); err == nil {
		t.Error("garbage should fail")
	}
}
