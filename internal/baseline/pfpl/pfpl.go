// Package pfpl reproduces the PFPL baseline (§2.2, Fallin et al.): a
// portable CPU/GPU compressor with strict error-bound enforcement built
// from an efficient quantizer, delta coding, bitshuffle, and zero
// elimination. The zero-elimination stage is why the paper finds PFPL "can
// take smooth data and transform it into having long sequences of zeros
// which are eliminated by its last stage", giving it the best GPU-side
// ratios at loose bounds (Table 3).
//
// Strictness: values whose quantization cannot be represented exactly are
// carried verbatim in per-chunk raw escapes, so the bound holds on every
// input (PFPL's "guaranteed error bounds" property).
package pfpl

import (
	"encoding/binary"
	"fmt"
	"math"

	"fzmod/internal/device"
	"fzmod/internal/fzio"
	"fzmod/internal/grid"
	"fzmod/internal/kernels"
	"fzmod/internal/preprocess"
)

const pipelineName = "pfpl"

// chunkValues is the independent processing granularity.
const chunkValues = 4096

// blockBytes is the zero-elimination granularity: fine 8-byte blocks, with
// the elimination applied recursively (the bitmap itself is zero-eliminated
// again), reproducing PFPL's repeated zero elimination that turns long
// zero runs into almost nothing.
const blockBytes = 8

// zeLevels is the recursion depth of the zero elimination.
const zeLevels = 2

// zeroEliminate compresses one level: bitmap of nonzero blocks ‖ blocks.
func zeroEliminate(src []byte) []byte {
	nBlocks := (len(src) + blockBytes - 1) / blockBytes
	bitmap := make([]byte, (nBlocks+7)/8)
	payload := make([]byte, 0, len(src)/4)
	for b := 0; b < nBlocks; b++ {
		lo, hi := b*blockBytes, (b+1)*blockBytes
		if hi > len(src) {
			hi = len(src)
		}
		zero := true
		for _, by := range src[lo:hi] {
			if by != 0 {
				zero = false
				break
			}
		}
		if !zero {
			bitmap[b/8] |= 1 << uint(b%8)
			payload = append(payload, src[lo:hi]...)
		}
	}
	out := make([]byte, 0, len(bitmap)+len(payload))
	out = append(out, bitmap...)
	return append(out, payload...)
}

// zeroExpand inverts zeroEliminate for an original length n, returning the
// restored bytes and how much of src was consumed.
func zeroExpand(src []byte, n int) ([]byte, int, error) {
	nBlocks := (n + blockBytes - 1) / blockBytes
	bmLen := (nBlocks + 7) / 8
	if len(src) < bmLen {
		return nil, 0, fmt.Errorf("pfpl: truncated ZE bitmap")
	}
	bitmap := src[:bmLen]
	pos := bmLen
	out := make([]byte, n)
	for b := 0; b < nBlocks; b++ {
		if bitmap[b/8]>>uint(b%8)&1 == 0 {
			continue
		}
		lo, hi := b*blockBytes, (b+1)*blockBytes
		if hi > n {
			hi = n
		}
		if pos+hi-lo > len(src) {
			return nil, 0, fmt.Errorf("pfpl: truncated ZE payload")
		}
		copy(out[lo:hi], src[pos:])
		pos += hi - lo
	}
	return out, pos, nil
}

// maxLattice bounds representable quantizations; beyond it the chunk falls
// back to raw storage.
const maxLattice = 1 << 29

// Compressor implements core.Compressor.
type Compressor struct{}

// Name implements core.Compressor.
func (Compressor) Name() string { return pipelineName }

// chunk layout: 1 flag byte (0 = coded, 1 = raw) followed by either the
// raw float32 values or bitmap ‖ nonzero blocks of the bitshuffled
// delta-coded quantizations.
func encodeChunk(data []float32, inv2eb float64) []byte {
	n := len(data)
	codes := make([]uint32, n)
	var prev int32
	for i, v := range data {
		q := math.Round(float64(v) * inv2eb)
		if q > maxLattice || q < -maxLattice {
			// Raw escape keeps the bound strict.
			out := make([]byte, 1+4*n)
			out[0] = 1
			copy(out[1:], device.F32Bytes(data))
			return out
		}
		qi := int32(q)
		codes[i] = kernels.ZigZag(qi - prev)
		prev = qi
	}
	sh := kernels.Bitshuffle32(codes)
	// Recursive zero elimination: level 1 over the shuffled planes, level
	// 2 over level 1's output (whose bitmap bytes are themselves mostly
	// zero on smooth data).
	lvl1 := zeroEliminate(sh)
	lvl2 := zeroEliminate(lvl1)
	out := make([]byte, 0, 5+len(lvl2))
	out = append(out, 0)
	out = binary.AppendUvarint(out, uint64(len(lvl1)))
	return append(out, lvl2...)
}

func decodeChunk(blob []byte, n int, scale float64, out []float32) error {
	if len(blob) < 1 {
		return fmt.Errorf("pfpl: empty chunk")
	}
	if blob[0] == 1 {
		if len(blob) < 1+4*n {
			return fmt.Errorf("pfpl: truncated raw chunk")
		}
		copy(out, device.BytesF32(blob[1:1+4*n]))
		return nil
	}
	shLen := 32 * ((n + 7) / 8)
	lvl1Len, k := binary.Uvarint(blob[1:])
	if k <= 0 {
		return fmt.Errorf("pfpl: truncated chunk header")
	}
	lvl1, _, err := zeroExpand(blob[1+k:], int(lvl1Len))
	if err != nil {
		return err
	}
	sh, _, err := zeroExpand(lvl1, shLen)
	if err != nil {
		return err
	}
	codes := kernels.Unbitshuffle32(sh, n)
	var acc int32
	for i := 0; i < n; i++ {
		acc += kernels.UnZigZag(codes[i])
		out[i] = float32(float64(acc) * scale)
	}
	return nil
}

// Compress implements core.Compressor.
func (Compressor) Compress(p *device.Platform, data []float32, dims grid.Dims, eb preprocess.ErrorBound) ([]byte, error) {
	if dims.N() != len(data) {
		return nil, fmt.Errorf("pfpl: dims %v do not match %d values", dims, len(data))
	}
	// PFPL's REL mode is point-wise normalized absolute error (NOA),
	// which for a full-range normalization matches the other compressors'
	// range-relative bound (§4.2 note).
	absEB, _, err := preprocess.Resolve(p, device.Host, data, eb)
	if err != nil {
		return nil, err
	}
	n := len(data)
	inv2eb := 1.0 / (2 * absEB)
	nChunks := (n + chunkValues - 1) / chunkValues
	chunks := make([][]byte, nChunks)
	p.LaunchGrid(device.Host, nChunks, func(lo, hi int) {
		for ci := lo; ci < hi; ci++ {
			start, end := ci*chunkValues, (ci+1)*chunkValues
			if end > n {
				end = n
			}
			chunks[ci] = encodeChunk(data[start:end], inv2eb)
		}
	})

	payload := binary.AppendUvarint(nil, uint64(nChunks))
	for _, ch := range chunks {
		payload = binary.AppendUvarint(payload, uint64(len(ch)))
	}
	for _, ch := range chunks {
		payload = append(payload, ch...)
	}
	c := fzio.New(fzio.Header{Pipeline: pipelineName, Dims: dims, EB: absEB})
	if err := c.Add("payload", payload); err != nil {
		return nil, err
	}
	return c.Marshal()
}

// Decompress implements core.Compressor.
func (Compressor) Decompress(p *device.Platform, blob []byte) ([]float32, grid.Dims, error) {
	c, err := fzio.Unmarshal(blob)
	if err != nil {
		return nil, grid.Dims{}, err
	}
	if c.Header.Pipeline != pipelineName {
		return nil, grid.Dims{}, fmt.Errorf("pfpl: container built by %q", c.Header.Pipeline)
	}
	payload, err := c.Segment("payload")
	if err != nil {
		return nil, grid.Dims{}, err
	}
	dims := c.Header.Dims
	n := dims.N()
	nChunks64, k := binary.Uvarint(payload)
	if k <= 0 {
		return nil, grid.Dims{}, fmt.Errorf("pfpl: truncated chunk count")
	}
	if want := uint64((n + chunkValues - 1) / chunkValues); nChunks64 != want {
		return nil, grid.Dims{}, fmt.Errorf("pfpl: chunk count %d inconsistent with dims", nChunks64)
	}
	nChunks := int(nChunks64)
	pos := k
	sizes := make([]int, nChunks)
	for i := range sizes {
		sz, k := binary.Uvarint(payload[pos:])
		if k <= 0 {
			return nil, grid.Dims{}, fmt.Errorf("pfpl: truncated size table")
		}
		pos += k
		sizes[i] = int(sz)
	}
	offsets := make([]int, nChunks+1)
	offsets[0] = pos
	for i, sz := range sizes {
		offsets[i+1] = offsets[i] + sz
	}
	if offsets[nChunks] > len(payload) {
		return nil, grid.Dims{}, fmt.Errorf("pfpl: payload shorter than size table claims")
	}

	out := make([]float32, n)
	scale := 2 * c.Header.EB
	errs := make([]error, nChunks)
	p.LaunchGrid(device.Host, nChunks, func(lo, hi int) {
		for ci := lo; ci < hi; ci++ {
			start, end := ci*chunkValues, (ci+1)*chunkValues
			if end > n {
				end = n
			}
			errs[ci] = decodeChunk(payload[offsets[ci]:offsets[ci+1]], end-start, scale, out[start:end])
		}
	})
	for _, e := range errs {
		if e != nil {
			return nil, grid.Dims{}, e
		}
	}
	return out, dims, nil
}

// ZeroBlockFraction reports the fraction of shuffled blocks eliminated for
// a data sample — the statistic behind PFPL's loose-bound advantage; used
// by the ablation bench.
func ZeroBlockFraction(data []float32, absEB float64) float64 {
	if len(data) == 0 {
		return 0
	}
	inv2eb := 1.0 / (2 * absEB)
	codes := make([]uint32, len(data))
	var prev int32
	for i, v := range data {
		q := int32(math.Round(float64(v) * inv2eb))
		codes[i] = kernels.ZigZag(q - prev)
		prev = q
	}
	sh := kernels.Bitshuffle32(codes)
	nBlocks := (len(sh) + blockBytes - 1) / blockBytes
	zero := 0
	for b := 0; b < nBlocks; b++ {
		lo, hi := b*blockBytes, (b+1)*blockBytes
		if hi > len(sh) {
			hi = len(sh)
		}
		z := true
		for _, by := range sh[lo:hi] {
			if by != 0 {
				z = false
				break
			}
		}
		if z {
			zero++
		}
	}
	return float64(zero) / float64(nBlocks)
}
