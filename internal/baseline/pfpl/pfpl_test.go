package pfpl

import (
	"testing"

	"fzmod/internal/device"
	"fzmod/internal/grid"
	"fzmod/internal/metrics"
	"fzmod/internal/preprocess"
	"fzmod/internal/sdrbench"
)

var tp = device.NewTestPlatform()

func TestRoundtripAllDatasets(t *testing.T) {
	var c Compressor
	for _, ds := range sdrbench.All() {
		dims := grid.D3(24, 20, 8)
		if ds == sdrbench.HACC {
			dims = grid.D1(50000)
		}
		data := sdrbench.Generate(ds, dims, 1)
		for _, eb := range []float64{1e-2, 1e-4, 1e-6} {
			blob, err := c.Compress(tp, data, dims, preprocess.RelBound(eb))
			if err != nil {
				t.Fatalf("%v eb %g: %v", ds, eb, err)
			}
			got, gotDims, err := c.Decompress(tp, blob)
			if err != nil {
				t.Fatalf("%v eb %g: %v", ds, eb, err)
			}
			if gotDims != dims {
				t.Fatal("dims mismatch")
			}
			absEB, _, _ := preprocess.Resolve(tp, device.Host, data, preprocess.RelBound(eb))
			if i := metrics.VerifyBound(data, got, absEB); i != -1 {
				t.Fatalf("%v eb %g: bound violated at %d", ds, eb, i)
			}
		}
	}
}

func TestHighRatioAtLooseBounds(t *testing.T) {
	// The paper's Table 3 shape: PFPL shines at 1e-2 on smooth data via
	// zero elimination.
	var c Compressor
	dims := grid.D3(32, 32, 16)
	data := sdrbench.GenCESM(dims, 2)
	blob, err := c.Compress(tp, data, dims, preprocess.RelBound(1e-2))
	if err != nil {
		t.Fatal(err)
	}
	if cr := metrics.CompressionRatio(4*dims.N(), len(blob)); cr < 6 {
		t.Errorf("CR = %.1f at 1e-2 on smooth data, want ≥ 6", cr)
	}
}

func TestStrictBoundOnHostileData(t *testing.T) {
	// Huge magnitudes force the raw-escape path; the bound must still
	// hold exactly (guaranteed error bounds).
	var c Compressor
	data := []float32{1e30, -1e30, 5, 1e28, 0, -3}
	dims := grid.D1(len(data))
	blob, err := c.Compress(tp, data, dims, preprocess.AbsBound(1e-6))
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := c.Decompress(tp, blob)
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if data[i] != got[i] {
			t.Fatalf("raw escape not exact at %d: %v vs %v", i, data[i], got[i])
		}
	}
}

func TestZeroBlockFraction(t *testing.T) {
	smooth := make([]float32, 8192)
	for i := range smooth {
		smooth[i] = 100 // constant → all-zero codes
	}
	if f := ZeroBlockFraction(smooth, 1e-3); f < 0.95 {
		t.Errorf("constant data zero-block fraction = %.2f, want ~1", f)
	}
	if ZeroBlockFraction(nil, 1e-3) != 0 {
		t.Error("empty data should give 0")
	}
}

func TestErrors(t *testing.T) {
	var c Compressor
	if _, err := c.Compress(tp, make([]float32, 3), grid.D1(4), preprocess.RelBound(1e-3)); err == nil {
		t.Error("dims mismatch should fail")
	}
	if _, _, err := c.Decompress(tp, []byte("garbage")); err == nil {
		t.Error("garbage should fail")
	}
	dims := grid.D1(20000)
	data := sdrbench.GenHACC(dims.N(), 4)
	blob, err := c.Compress(tp, data, dims, preprocess.RelBound(1e-3))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Decompress(tp, blob[:len(blob)/2]); err == nil {
		t.Error("truncated container should fail")
	}
}
