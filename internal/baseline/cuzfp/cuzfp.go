// Package cuzfp implements a cuZFP-style fixed-rate transform compressor,
// the related-work design the paper contrasts with error-bounded pipelines
// (§2.2: cuZFP "uses a discrete orthogonal transform and attains high
// ratio and throughput, but doesn't support error-bounded compression only
// fixed-rate mode"). It is provided as a framework extension module — it
// does not implement core.Compressor because its contract is a bit budget,
// not an error bound, which is exactly the distinction the paper draws.
//
// The design follows ZFP's structure: the field is cut into 4³ blocks
// (4-wide lines / 4×4 planes for lower ranks), each block is aligned to a
// common exponent in fixed point, decorrelated with ZFP's reversible
// lifted transform along each dimension, reordered by total sequency, and
// the negabinary bit planes are emitted most-significant first until the
// per-block bit budget is exhausted. Blocks are independent, so both
// directions parallelize over blocks like the CUDA implementation.
package cuzfp

import (
	"encoding/binary"
	"fmt"
	"math"

	"fzmod/internal/device"
	"fzmod/internal/grid"
)

// BlockSide is the block edge length (ZFP uses 4).
const BlockSide = 4

// maxRate is the largest supported rate in bits per value: beyond the
// fixed-point precision there is nothing left to send.
const maxRate = 30

// Compressor is a fixed-rate transform codec. Rate is the compressed bits
// per value (per block: Rate × block size bits, plus a small header).
type Compressor struct {
	Rate int
}

// Name identifies the codec.
func (c Compressor) Name() string { return fmt.Sprintf("cuzfp-r%d", c.Rate) }

// blockGeom describes how a field decomposes into blocks.
type blockGeom struct {
	dims       grid.Dims
	bx, by, bz int // block counts per dimension
	vals       int // values per block (4, 16 or 64 by rank)
	rank       int
}

func geom(dims grid.Dims) blockGeom {
	g := blockGeom{dims: dims, rank: dims.Rank()}
	ceil := func(v int) int { return (v + BlockSide - 1) / BlockSide }
	g.bx = ceil(dims.X)
	g.by, g.bz = 1, 1
	g.vals = BlockSide
	if g.rank >= 2 {
		g.by = ceil(dims.Y)
		g.vals *= BlockSide
	}
	if g.rank >= 3 {
		g.bz = ceil(dims.Z)
		g.vals *= BlockSide
	}
	return g
}

func (g blockGeom) count() int { return g.bx * g.by * g.bz }

// gather copies block b into buf (padding out-of-range positions with the
// block's edge values, ZFP's padding rule simplified to clamp).
func (g blockGeom) gather(data []float32, b int, buf []float64) {
	ox := (b % g.bx) * BlockSide
	oy := (b / g.bx % g.by) * BlockSide
	oz := (b / (g.bx * g.by)) * BlockSide
	clamp := func(v, hi int) int {
		if v >= hi {
			return hi - 1
		}
		return v
	}
	i := 0
	nz, ny := 1, 1
	if g.rank >= 2 {
		ny = BlockSide
	}
	if g.rank >= 3 {
		nz = BlockSide
	}
	for z := 0; z < nz; z++ {
		for y := 0; y < ny; y++ {
			for x := 0; x < BlockSide; x++ {
				xi := clamp(ox+x, g.dims.X)
				yi := clamp(oy+y, g.dims.Y)
				zi := clamp(oz+z, g.dims.Z)
				buf[i] = float64(data[g.dims.Idx(xi, yi, zi)])
				i++
			}
		}
	}
}

// scatter writes block b from buf back to data, skipping padded positions.
func (g blockGeom) scatter(data []float32, b int, buf []float64) {
	ox := (b % g.bx) * BlockSide
	oy := (b / g.bx % g.by) * BlockSide
	oz := (b / (g.bx * g.by)) * BlockSide
	i := 0
	nz, ny := 1, 1
	if g.rank >= 2 {
		ny = BlockSide
	}
	if g.rank >= 3 {
		nz = BlockSide
	}
	for z := 0; z < nz; z++ {
		for y := 0; y < ny; y++ {
			for x := 0; x < BlockSide; x++ {
				if ox+x < g.dims.X && oy+y < g.dims.Y && oz+z < g.dims.Z {
					data[g.dims.Idx(ox+x, oy+y, oz+z)] = float32(buf[i])
				}
				i++
			}
		}
	}
}

// fwdLift is ZFP's reversible 4-point lifted transform.
func fwdLift(p []int32, s int) {
	x, y, z, w := p[0], p[s], p[2*s], p[3*s]
	x += w
	x >>= 1
	w -= x
	z += y
	z >>= 1
	y -= z
	x += z
	x >>= 1
	z -= x
	w += y
	w >>= 1
	y -= w
	w += y >> 1
	y -= w >> 1
	p[0], p[s], p[2*s], p[3*s] = x, y, z, w
}

// invLift inverts fwdLift exactly.
func invLift(p []int32, s int) {
	x, y, z, w := p[0], p[s], p[2*s], p[3*s]
	y += w >> 1
	w -= y >> 1
	y += w
	w <<= 1
	w -= y
	z += x
	x <<= 1
	x -= z
	y += z
	z <<= 1
	z -= y
	w += x
	x <<= 1
	x -= w
	p[0], p[s], p[2*s], p[3*s] = x, y, z, w
}

// transform applies the lifted transform along every dimension of a block.
func transform(coef []int32, rank int, inverse bool) {
	lift := fwdLift
	if inverse {
		lift = invLift
	}
	switch rank {
	case 1:
		lift(coef, 1)
	case 2:
		if !inverse {
			for y := 0; y < 4; y++ {
				lift(coef[4*y:], 1) // along x
			}
			for x := 0; x < 4; x++ {
				lift(coef[x:], 4) // along y
			}
		} else {
			for x := 0; x < 4; x++ {
				lift(coef[x:], 4)
			}
			for y := 0; y < 4; y++ {
				lift(coef[4*y:], 1)
			}
		}
	default:
		if !inverse {
			for z := 0; z < 4; z++ {
				for y := 0; y < 4; y++ {
					lift(coef[16*z+4*y:], 1)
				}
			}
			for z := 0; z < 4; z++ {
				for x := 0; x < 4; x++ {
					lift(coef[16*z+x:], 4)
				}
			}
			for y := 0; y < 4; y++ {
				for x := 0; x < 4; x++ {
					lift(coef[4*y+x:], 16)
				}
			}
		} else {
			for y := 0; y < 4; y++ {
				for x := 0; x < 4; x++ {
					lift(coef[4*y+x:], 16)
				}
			}
			for z := 0; z < 4; z++ {
				for x := 0; x < 4; x++ {
					lift(coef[16*z+x:], 4)
				}
			}
			for z := 0; z < 4; z++ {
				for y := 0; y < 4; y++ {
					lift(coef[16*z+4*y:], 1)
				}
			}
		}
	}
}

// sequency orders coefficients by total frequency so high-information
// coefficients come first in the embedded stream.
func sequencyOrder(rank int) []int {
	var order []int
	switch rank {
	case 1:
		order = []int{0, 1, 2, 3}
	case 2:
		order = make([]int, 0, 16)
		for total := 0; total <= 6; total++ {
			for y := 0; y < 4; y++ {
				for x := 0; x < 4; x++ {
					if x+y == total {
						order = append(order, 4*y+x)
					}
				}
			}
		}
	default:
		order = make([]int, 0, 64)
		for total := 0; total <= 9; total++ {
			for z := 0; z < 4; z++ {
				for y := 0; y < 4; y++ {
					for x := 0; x < 4; x++ {
						if x+y+z == total {
							order = append(order, 16*z+4*y+x)
						}
					}
				}
			}
		}
	}
	return order
}

// negabinary maps two's complement to negabinary so magnitude ordering
// survives bit-plane truncation (ZFP's trick).
func negabinary(v int32) uint32 { return (uint32(v) + 0xAAAAAAAA) ^ 0xAAAAAAAA }

// unNegabinary inverts negabinary.
func unNegabinary(u uint32) int32 { return int32((u ^ 0xAAAAAAAA) - 0xAAAAAAAA) }

// Compress encodes data at the configured rate. Layout: uvarint dims ‖
// uvarint rate ‖ per block: u8 exponent bias ‖ rate×vals bits of embedded
// bit planes.
func (c Compressor) Compress(p *device.Platform, data []float32, dims grid.Dims) ([]byte, error) {
	if dims.N() != len(data) {
		return nil, fmt.Errorf("cuzfp: dims %v do not match %d values", dims, len(data))
	}
	if c.Rate < 1 || c.Rate > maxRate {
		return nil, fmt.Errorf("cuzfp: rate %d out of range [1,%d]", c.Rate, maxRate)
	}
	g := geom(dims)
	order := sequencyOrder(g.rank)
	nBlocks := g.count()
	blockBits := c.Rate * g.vals
	blockBytes := (blockBits + 7) / 8

	head := binary.AppendUvarint(nil, uint64(dims.X))
	head = binary.AppendUvarint(head, uint64(dims.Y))
	head = binary.AppendUvarint(head, uint64(dims.Z))
	head = binary.AppendUvarint(head, uint64(c.Rate))
	out := make([]byte, len(head)+nBlocks*(1+blockBytes))
	copy(out, head)
	payload := len(head)

	p.LaunchGrid(device.Accel, nBlocks, func(lo, hi int) {
		buf := make([]float64, g.vals)
		coef := make([]int32, g.vals)
		for b := lo; b < hi; b++ {
			g.gather(data, b, buf)
			// Common exponent alignment.
			maxAbs := 0.0
			for _, v := range buf {
				if a := math.Abs(v); a > maxAbs {
					maxAbs = a
				}
			}
			e := 0
			if maxAbs > 0 {
				_, e = math.Frexp(maxAbs)
			}
			scale := math.Ldexp(1, 28-e) // keep headroom for transform growth
			for i, v := range buf {
				coef[i] = int32(v * scale)
			}
			transform(coef, g.rank, false)

			dst := payload + b*(1+blockBytes)
			out[dst] = byte(e + 128) // biased exponent
			emitPlanes(out[dst+1:dst+1+blockBytes], coef, order, blockBits)
		}
	})
	return out, nil
}

// emitPlanes writes negabinary bit planes MSB-first in sequency order
// until the bit budget is exhausted.
func emitPlanes(dst []byte, coef []int32, order []int, budget int) {
	bit := 0
	for plane := 31; plane >= 0 && bit < budget; plane-- {
		for _, idx := range order {
			if bit >= budget {
				return
			}
			if negabinary(coef[idx])>>uint(plane)&1 != 0 {
				dst[bit/8] |= 1 << uint(bit%8)
			}
			bit++
		}
	}
}

// readPlanes inverts emitPlanes, leaving unsent low planes zero.
func readPlanes(src []byte, coef []uint32, order []int, budget int) {
	bit := 0
	for plane := 31; plane >= 0 && bit < budget; plane-- {
		for _, idx := range order {
			if bit >= budget {
				return
			}
			if src[bit/8]>>uint(bit%8)&1 != 0 {
				coef[idx] |= 1 << uint(plane)
			}
			bit++
		}
	}
}

// Decompress inverts Compress.
func (c Compressor) Decompress(p *device.Platform, blob []byte) ([]float32, grid.Dims, error) {
	var dims [3]uint64
	pos := 0
	for i := range dims {
		v, k := binary.Uvarint(blob[pos:])
		if k <= 0 {
			return nil, grid.Dims{}, fmt.Errorf("cuzfp: truncated dims")
		}
		dims[i], pos = v, pos+k
	}
	rate64, k := binary.Uvarint(blob[pos:])
	if k <= 0 || rate64 < 1 || rate64 > maxRate {
		return nil, grid.Dims{}, fmt.Errorf("cuzfp: bad rate")
	}
	pos += k
	d := grid.Dims{X: int(dims[0]), Y: int(dims[1]), Z: int(dims[2])}
	if !d.Valid() {
		return nil, grid.Dims{}, fmt.Errorf("cuzfp: invalid dims %v", d)
	}
	g := geom(d)
	order := sequencyOrder(g.rank)
	nBlocks := g.count()
	blockBits := int(rate64) * g.vals
	blockBytes := (blockBits + 7) / 8
	if len(blob) < pos+nBlocks*(1+blockBytes) {
		return nil, grid.Dims{}, fmt.Errorf("cuzfp: stream shorter than block table")
	}

	out := make([]float32, d.N())
	p.LaunchGrid(device.Accel, nBlocks, func(lo, hi int) {
		buf := make([]float64, g.vals)
		nb := make([]uint32, g.vals)
		coef := make([]int32, g.vals)
		for b := lo; b < hi; b++ {
			src := pos + b*(1+blockBytes)
			e := int(blob[src]) - 128
			for i := range nb {
				nb[i] = 0
			}
			readPlanes(blob[src+1:src+1+blockBytes], nb, order, blockBits)
			for i, u := range nb {
				coef[i] = unNegabinary(u)
			}
			transform(coef, g.rank, true)
			scale := math.Ldexp(1, e-28)
			for i, q := range coef {
				buf[i] = float64(q) * scale
			}
			g.scatter(out, b, buf)
		}
	})
	return out, d, nil
}

// CompressedSize reports the exact output size for a field, the defining
// property of fixed-rate coding.
func (c Compressor) CompressedSize(dims grid.Dims) int {
	g := geom(dims)
	blockBytes := (c.Rate*g.vals + 7) / 8
	head := binary.AppendUvarint(nil, uint64(dims.X))
	head = binary.AppendUvarint(head, uint64(dims.Y))
	head = binary.AppendUvarint(head, uint64(dims.Z))
	head = binary.AppendUvarint(head, uint64(c.Rate))
	return len(head) + g.count()*(1+blockBytes)
}
