package cuzfp

import (
	"math"
	"math/rand"
	"testing"

	"fzmod/internal/device"
	"fzmod/internal/grid"
	"fzmod/internal/metrics"
	"fzmod/internal/sdrbench"
)

var tp = device.NewTestPlatform()

// The ZFP lift truncates low bits (the >>1 steps), so forward∘inverse is
// not bit-exact — the codec never needs it to be: the decoder only inverts
// coefficients it decoded, and the truncation is part of the fixed-point
// approximation. The tests check the actual contracts: near-identity of
// forward∘inverse (few fixed-point ULPs) and exactness of the decode-side
// pair inverse∘(what was encoded).
func TestLiftNearInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 1000; trial++ {
		p := make([]int32, 4)
		q := make([]int32, 4)
		for i := range p {
			p[i] = int32(rng.Intn(1<<26) - 1<<25)
			q[i] = p[i]
		}
		fwdLift(q, 1)
		invLift(q, 1)
		for i := range p {
			if d := p[i] - q[i]; d > 8 || d < -8 {
				t.Fatalf("trial %d: lift roundtrip error %d at %d", trial, d, i)
			}
		}
	}
}

func TestTransformNearInverseAllRanks(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, rank := range []int{1, 2, 3} {
		n := 4
		if rank >= 2 {
			n *= 4
		}
		if rank >= 3 {
			n *= 4
		}
		for trial := 0; trial < 200; trial++ {
			p := make([]int32, n)
			q := make([]int32, n)
			for i := range p {
				p[i] = int32(rng.Intn(1<<24) - 1<<23)
				q[i] = p[i]
			}
			transform(q, rank, false)
			transform(q, rank, true)
			for i := range p {
				// Error grows with rank (one truncating pass per dim).
				if d := p[i] - q[i]; d > 64 || d < -64 {
					t.Fatalf("rank %d trial %d: transform roundtrip error %d", rank, trial, d)
				}
			}
		}
	}
}

func TestDecodeSideExactness(t *testing.T) {
	// What the decoder actually does — invLift on decoded coefficients —
	// must be deterministic: same coefficients in, same samples out.
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 200; trial++ {
		c := make([]int32, 64)
		for i := range c {
			c[i] = int32(rng.Intn(1<<20) - 1<<19)
		}
		a := append([]int32(nil), c...)
		b := append([]int32(nil), c...)
		transform(a, 3, true)
		transform(b, 3, true)
		for i := range a {
			if a[i] != b[i] {
				t.Fatal("inverse transform nondeterministic")
			}
		}
	}
}

func TestNegabinaryBijection(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 10000; trial++ {
		v := int32(rng.Uint32())
		if unNegabinary(negabinary(v)) != v {
			t.Fatalf("negabinary not invertible for %d", v)
		}
	}
	// Small magnitudes have high planes zero (truncation-friendly).
	if negabinary(0) != 0 {
		t.Error("negabinary(0) must be 0")
	}
	if negabinary(1)>>8 != 0 || negabinary(-1)>>8 != 0 {
		t.Error("small values must occupy low negabinary planes")
	}
}

func TestSequencyOrderPermutations(t *testing.T) {
	for rank, n := range map[int]int{1: 4, 2: 16, 3: 64} {
		order := sequencyOrder(rank)
		if len(order) != n {
			t.Fatalf("rank %d: order length %d", rank, len(order))
		}
		seen := make(map[int]bool)
		for _, idx := range order {
			if idx < 0 || idx >= n || seen[idx] {
				t.Fatalf("rank %d: order not a permutation", rank)
			}
			seen[idx] = true
		}
		if order[0] != 0 {
			t.Errorf("rank %d: DC coefficient must come first", rank)
		}
	}
}

func TestFixedSize(t *testing.T) {
	for _, rate := range []int{1, 4, 8, 16} {
		c := Compressor{Rate: rate}
		dims := grid.D3(17, 9, 5) // non-multiple of 4 on purpose
		data := sdrbench.GenHURR(dims, 4)
		blob, err := c.Compress(tp, data, dims)
		if err != nil {
			t.Fatal(err)
		}
		if len(blob) != c.CompressedSize(dims) {
			t.Errorf("rate %d: size %d, want exactly %d", rate, len(blob), c.CompressedSize(dims))
		}
	}
}

func TestErrorDecreasesWithRate(t *testing.T) {
	dims := grid.D3(32, 32, 16)
	data := sdrbench.GenHURR(dims, 5)
	var prevPSNR float64
	for _, rate := range []int{2, 4, 8, 16, 24} {
		c := Compressor{Rate: rate}
		blob, err := c.Compress(tp, data, dims)
		if err != nil {
			t.Fatal(err)
		}
		got, gotDims, err := c.Decompress(tp, blob)
		if err != nil {
			t.Fatal(err)
		}
		if gotDims != dims {
			t.Fatal("dims mismatch")
		}
		q, err := metrics.Evaluate(tp, device.Host, data, got)
		if err != nil {
			t.Fatal(err)
		}
		if q.PSNR <= prevPSNR {
			t.Errorf("rate %d: PSNR %.1f not above rate-lower %.1f", rate, q.PSNR, prevPSNR)
		}
		prevPSNR = q.PSNR
	}
	if prevPSNR < 90 {
		t.Errorf("rate 24 PSNR %.1f suspiciously low", prevPSNR)
	}
}

func TestHighRateNearLossless(t *testing.T) {
	dims := grid.D2(40, 28)
	data := sdrbench.GenCESM(grid.D3(40, 28, 1), 6)
	c := Compressor{Rate: 28}
	blob, err := c.Compress(tp, data, dims)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := c.Decompress(tp, blob)
	if err != nil {
		t.Fatal(err)
	}
	var maxAbs, maxErr float64
	for i := range data {
		if a := math.Abs(float64(data[i])); a > maxAbs {
			maxAbs = a
		}
		if e := math.Abs(float64(data[i]) - float64(got[i])); e > maxErr {
			maxErr = e
		}
	}
	if maxErr > maxAbs*1e-5 {
		t.Errorf("rate-28 max error %g vs magnitude %g", maxErr, maxAbs)
	}
}

func TestAllRanksRoundtrip(t *testing.T) {
	for _, dims := range []grid.Dims{grid.D1(1000), grid.D2(33, 21), grid.D3(9, 14, 6)} {
		data := sdrbench.GenNYX(grid.D3(dims.X, dims.Y, dims.Z), 7)
		c := Compressor{Rate: 12}
		blob, err := c.Compress(tp, data, dims)
		if err != nil {
			t.Fatalf("%v: %v", dims, err)
		}
		got, gotDims, err := c.Decompress(tp, blob)
		if err != nil {
			t.Fatalf("%v: %v", dims, err)
		}
		if gotDims != dims || len(got) != dims.N() {
			t.Fatalf("%v: bad geometry back", dims)
		}
	}
}

func TestErrors(t *testing.T) {
	c := Compressor{Rate: 8}
	if _, err := c.Compress(tp, make([]float32, 3), grid.D1(4)); err == nil {
		t.Error("dims mismatch should fail")
	}
	if _, err := (Compressor{Rate: 0}).Compress(tp, make([]float32, 4), grid.D1(4)); err == nil {
		t.Error("zero rate should fail")
	}
	if _, err := (Compressor{Rate: 99}).Compress(tp, make([]float32, 4), grid.D1(4)); err == nil {
		t.Error("excessive rate should fail")
	}
	if _, _, err := c.Decompress(tp, nil); err == nil {
		t.Error("empty blob should fail")
	}
	data := make([]float32, 64)
	blob, _ := c.Compress(tp, data, grid.D1(64))
	if _, _, err := c.Decompress(tp, blob[:len(blob)/2]); err == nil {
		t.Error("truncated blob should fail")
	}
}

func TestName(t *testing.T) {
	if (Compressor{Rate: 8}).Name() != "cuzfp-r8" {
		t.Error("name")
	}
}
