package device

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Typed views over Buffer storage. A GPU exposes device memory as raw bytes
// reinterpreted by kernels; we mirror that with explicit little-endian
// encode/decode helpers rather than unsafe casts, keeping the package
// portable and race-detector friendly.

// AllocF32 allocates a device-place buffer holding n float32 values.
func (p *Platform) AllocF32(place Place, n int) *Buffer { return p.Alloc(place, 4*n) }

// AllocU16 allocates a device-place buffer holding n uint16 values.
func (p *Platform) AllocU16(place Place, n int) *Buffer { return p.Alloc(place, 2*n) }

// AllocU32 allocates a device-place buffer holding n uint32 values.
func (p *Platform) AllocU32(place Place, n int) *Buffer { return p.Alloc(place, 4*n) }

// F32 reads the float32 at index i.
func (b *Buffer) F32(i int) float32 {
	return math.Float32frombits(binary.LittleEndian.Uint32(b.data[4*i:]))
}

// SetF32 writes the float32 at index i.
func (b *Buffer) SetF32(i int, v float32) {
	binary.LittleEndian.PutUint32(b.data[4*i:], math.Float32bits(v))
}

// U16 reads the uint16 at index i.
func (b *Buffer) U16(i int) uint16 { return binary.LittleEndian.Uint16(b.data[2*i:]) }

// SetU16 writes the uint16 at index i.
func (b *Buffer) SetU16(i int, v uint16) { binary.LittleEndian.PutUint16(b.data[2*i:], v) }

// U32 reads the uint32 at index i.
func (b *Buffer) U32(i int) uint32 { return binary.LittleEndian.Uint32(b.data[4*i:]) }

// SetU32 writes the uint32 at index i.
func (b *Buffer) SetU32(i int, v uint32) { binary.LittleEndian.PutUint32(b.data[4*i:], v) }

// F32Slice decodes the whole buffer as float32s into dst (allocated when nil).
func (b *Buffer) F32Slice(dst []float32) []float32 {
	n := len(b.data) / 4
	if dst == nil {
		dst = make([]float32, n)
	}
	for i := 0; i < n && i < len(dst); i++ {
		dst[i] = b.F32(i)
	}
	return dst
}

// PutF32Slice encodes src into the buffer starting at element 0.
func (b *Buffer) PutF32Slice(src []float32) {
	for i, v := range src {
		b.SetF32(i, v)
	}
}

// F32Bytes converts a float32 slice to its little-endian byte representation.
func F32Bytes(src []float32) []byte {
	out := make([]byte, 4*len(src))
	for i, v := range src {
		binary.LittleEndian.PutUint32(out[4*i:], math.Float32bits(v))
	}
	return out
}

// BytesF32 converts little-endian bytes to a float32 slice.
func BytesF32(src []byte) []float32 {
	n := len(src) / 4
	out := make([]float32, n)
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(src[4*i:]))
	}
	return out
}

// ReadF32 fills dst with len(dst) little-endian float32 values read from
// r, staging through buf (any length ≥ 4; only whole 4-byte groups are
// used). Neither slice is retained, so both can come from a pool: the
// streaming compressor reads slab windows this way without allocating.
func ReadF32(r io.Reader, dst []float32, buf []byte) error {
	if len(buf) < 4 {
		return fmt.Errorf("device: staging buffer too small (%d bytes)", len(buf))
	}
	buf = buf[:len(buf)-len(buf)%4]
	for pos := 0; pos < len(dst); {
		want := (len(dst) - pos) * 4
		if want > len(buf) {
			want = len(buf)
		}
		if _, err := io.ReadFull(r, buf[:want]); err != nil {
			return err
		}
		for i := 0; i < want/4; i++ {
			dst[pos+i] = math.Float32frombits(binary.LittleEndian.Uint32(buf[4*i:]))
		}
		pos += want / 4
	}
	return nil
}

// WriteF32 writes src as little-endian float32 bytes to w, staging through
// buf (any length ≥ 4). The mirror of ReadF32 for the decompression side.
func WriteF32(w io.Writer, src []float32, buf []byte) error {
	if len(buf) < 4 {
		return fmt.Errorf("device: staging buffer too small (%d bytes)", len(buf))
	}
	buf = buf[:len(buf)-len(buf)%4]
	for pos := 0; pos < len(src); {
		n := len(src) - pos
		if n > len(buf)/4 {
			n = len(buf) / 4
		}
		for i := 0; i < n; i++ {
			binary.LittleEndian.PutUint32(buf[4*i:], math.Float32bits(src[pos+i]))
		}
		if _, err := w.Write(buf[:4*n]); err != nil {
			return err
		}
		pos += n
	}
	return nil
}

// U16Bytes converts a uint16 slice to little-endian bytes.
func U16Bytes(src []uint16) []byte {
	out := make([]byte, 2*len(src))
	for i, v := range src {
		binary.LittleEndian.PutUint16(out[2*i:], v)
	}
	return out
}

// BytesU16 converts little-endian bytes to a uint16 slice.
func BytesU16(src []byte) []uint16 {
	n := len(src) / 2
	out := make([]uint16, n)
	for i := range out {
		out[i] = binary.LittleEndian.Uint16(src[2*i:])
	}
	return out
}

// U32Bytes converts a uint32 slice to little-endian bytes.
func U32Bytes(src []uint32) []byte {
	out := make([]byte, 4*len(src))
	for i, v := range src {
		binary.LittleEndian.PutUint32(out[4*i:], v)
	}
	return out
}

// BytesU32 converts little-endian bytes to a uint32 slice.
func BytesU32(src []byte) []uint32 {
	n := len(src) / 4
	out := make([]uint32, n)
	for i := range out {
		out[i] = binary.LittleEndian.Uint32(src[4*i:])
	}
	return out
}
