// Package device provides a simulated heterogeneous computing platform.
//
// The FZModules paper runs its modules as CUDA kernels on NVIDIA V100/H100
// GPUs. This reproduction has no GPU, so the package models the two things a
// GPU imposes on module code and that the framework must manage:
//
//  1. An execution place with massive flat parallelism. Kernels are written
//     as grid-stride functions and launched over a worker pool via
//     LaunchGrid, exactly mirroring how the CUDA kernels partition work.
//  2. A distinct memory space. Device allocations are separate Go slices;
//     data only crosses between host and device through CopyIn/CopyOut,
//     which account every byte moved and charge a modeled transfer time so
//     end-to-end measurements include the H2D/D2H discipline the paper's
//     Measured Bandwidth row (Table 1) captures.
//
// Two standard platforms are provided, modeled on Table 1 of the paper:
// NewH100Platform and NewV100Platform. They differ in modeled kernel width
// and host<->device bandwidth, which is what drives the Figure 2 vs Figure 3
// divergence in the paper's evaluation.
package device

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"fzmod/internal/kernels/dispatch"
)

// Place identifies where a kernel executes or where a buffer lives.
type Place int

const (
	// Host is the CPU execution place and host memory space.
	Host Place = iota
	// Accel is the simulated accelerator place ("the GPU").
	Accel
)

// String returns the conventional short name for the place.
func (p Place) String() string {
	switch p {
	case Host:
		return "host"
	case Accel:
		return "accel"
	default:
		return fmt.Sprintf("place(%d)", int(p))
	}
}

// Platform models one node of Table 1: an accelerator with a worker pool,
// a host CPU pool, and a host<->device link with a fixed modeled bandwidth.
//
// A Platform value is a view over shared runtime state (counters, scratch
// pool, persistent grid workers): WithWorkers derives a view with a
// narrower kernel width over the same state, which is how an operation's
// worker budget caps its total parallelism without partitioning the
// machine's warm pools. All methods are safe for concurrent use.
type Platform struct {
	Name string

	// AccelWorkers is the kernel width used for Accel launches: the number
	// of chunks a grid launch is decomposed into (deterministic for a fixed
	// width, so results are reproducible per view).
	AccelWorkers int
	// HostWorkers is the kernel width used for Host launches.
	HostWorkers int

	// LinkBandwidth is the modeled host<->device bandwidth in bytes/sec,
	// used both to charge simulated transfer time and as the BW term of
	// the paper's Eq. 1 overall-speedup model.
	LinkBandwidth float64

	// SimulateTransferTime, when true, sleeps CopyIn/CopyOut for
	// bytes/LinkBandwidth. Benchmarks that only need byte accounting
	// leave it false.
	SimulateTransferTime bool

	// shared holds the runtime state every view of this platform uses:
	// stats, the scratch pool, and the persistent grid workers. Initialized
	// lazily so literal-constructed Platforms keep working; WithWorkers
	// views alias it.
	shared atomic.Pointer[platformShared]
}

// platformShared is the runtime state common to all views of one platform.
type platformShared struct {
	stats   Stats
	scratch BufPool

	// Persistent grid workers: launches dispatch chunks to a fixed set of
	// parked goroutines per place (the simulated SMs) instead of spawning
	// goroutines per launch, started lazily on the first launch and
	// stopped by Close.
	workersOnce sync.Once
	closeOnce   sync.Once
	closed      atomic.Bool
	quit        chan struct{}
	hostCh      chan gridJob
	accelCh     chan gridJob
}

// state returns the shared runtime state, creating it on first use. The
// CAS loser's speculative state owns no goroutines, so losing the race
// leaks nothing.
func (p *Platform) state() *platformShared {
	if s := p.shared.Load(); s != nil {
		return s
	}
	s := &platformShared{}
	if p.shared.CompareAndSwap(nil, s) {
		return s
	}
	return p.shared.Load()
}

// WithWorkers returns a view of the platform whose kernel width at both
// places is capped at n (floored at 1), sharing the receiver's counters,
// scratch pool and grid workers. The chunked executor uses it to give an
// operation a total parallelism budget: a budget-1 view runs every kernel
// inline on the calling goroutine, so concurrency comes only from the
// task level. n <= 0 returns the receiver unchanged.
func (p *Platform) WithWorkers(n int) *Platform {
	if n <= 0 {
		return p
	}
	cp := &Platform{
		Name:                 p.Name,
		AccelWorkers:         minInt(p.workersFor(Accel), n),
		HostWorkers:          minInt(p.workersFor(Host), n),
		LinkBandwidth:        p.LinkBandwidth,
		SimulateTransferTime: p.SimulateTransferTime,
	}
	cp.shared.Store(p.state())
	return cp
}

func minInt(a, b int) int {
	if b < a {
		return b
	}
	return a
}

// Close stops the platform's persistent grid workers, the analogue of
// destroying the device context. It must not be called concurrently with
// launches; launches issued after Close execute inline on the caller.
// Close is idempotent, and a platform that never launched owns no workers.
// Closing any view closes the shared state.
func (p *Platform) Close() {
	s := p.state()
	s.closeOnce.Do(func() {
		s.closed.Store(true)
		if s.quit != nil {
			close(s.quit)
		}
	})
}

// gridJob is one contiguous chunk of a grid launch handed to a worker.
type gridJob struct {
	lo, hi int
	kernel func(lo, hi int)
	wg     *sync.WaitGroup
}

// ScratchPool returns the platform's shared size-classed buffer pool, the
// allocator kernels and the STF runtime draw scratch slabs from. Views
// share one pool.
func (p *Platform) ScratchPool() *BufPool { return &p.state().scratch }

// workChan returns the persistent worker queue for a place, starting the
// workers on first use. Workers live for the lifetime of the platform and
// are shared by every view; the pool is sized for the machine (at least
// the first toucher's width), so narrow views never starve wide ones.
func (p *Platform) workChan(place Place) chan gridJob {
	s := p.state()
	s.workersOnce.Do(func() {
		hostW := maxInt(p.workersFor(Host), runtime.GOMAXPROCS(0))
		accelW := maxInt(p.workersFor(Accel), runtime.GOMAXPROCS(0))
		s.quit = make(chan struct{})
		s.hostCh = make(chan gridJob, 4*hostW)
		s.accelCh = make(chan gridJob, 4*accelW)
		for i := 0; i < hostW; i++ {
			go gridWorker(s.hostCh, s.quit)
		}
		for i := 0; i < accelW; i++ {
			go gridWorker(s.accelCh, s.quit)
		}
	})
	if place == Accel {
		return s.accelCh
	}
	return s.hostCh
}

func maxInt(a, b int) int {
	if b > a {
		return b
	}
	return a
}

func gridWorker(ch chan gridJob, quit chan struct{}) {
	for {
		select {
		case j := <-ch:
			j.kernel(j.lo, j.hi)
			j.wg.Done()
		case <-quit:
			return
		}
	}
}

// runChunks fans the chunks of [0, n) out over the persistent workers of a
// place. When the queue is saturated the caller executes the chunk inline,
// which both bounds queue latency and makes nested launches deadlock-free
// (and is what keeps many concurrent narrow views work-conserving: their
// launches degrade to inline execution instead of convoying in the queue).
func (p *Platform) runChunks(place Place, n, chunk int, kernel func(lo, hi int)) {
	if p.state().closed.Load() {
		for lo := 0; lo < n; lo += chunk {
			hi := lo + chunk
			if hi > n {
				hi = n
			}
			kernel(lo, hi)
		}
		return
	}
	ch := p.workChan(place)
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		select {
		case ch <- gridJob{lo: lo, hi: hi, kernel: kernel, wg: &wg}:
		default:
			kernel(lo, hi)
			wg.Done()
		}
	}
	wg.Wait()
}

// Stats aggregates byte and launch counters for a platform. The hot
// counters are cache-line padded: they are bumped from every worker on the
// hot path, and without padding the adjacent atomics false-share one line.
type Stats struct {
	BytesH2D      atomic.Int64
	_             [56]byte
	BytesD2H      atomic.Int64
	_             [56]byte
	KernelLaunch  atomic.Int64
	_             [56]byte
	HostLaunch    atomic.Int64
	_             [56]byte
	TransferNanos atomic.Int64
	_             [56]byte
	// Region-read slab-cache counters, bumped by the region planner
	// (internal/core) as selections hit or miss decoded-slab cache entries.
	RegionCacheHits  atomic.Int64
	_                [56]byte
	RegionCacheMiss  atomic.Int64
	_                [56]byte
	RegionCacheEvict atomic.Int64
	_                [56]byte
}

// NewH100Platform returns a platform modeled on the paper's Quartz H100 node
// (Table 1): 4-way H100 SXM, measured multi-GPU host link ~35.7 GB/s.
func NewH100Platform() *Platform {
	return &Platform{
		Name:          "quartz-h100",
		AccelWorkers:  maxParallelism(),
		HostWorkers:   maxParallelism(),
		LinkBandwidth: 35.7e9,
	}
}

// NewV100Platform returns a platform modeled on the paper's Quartz V100 node
// (Table 1): 4-way V100 PCIe, measured multi-GPU host link ~6.91 GB/s.
func NewV100Platform() *Platform {
	return &Platform{
		Name:          "quartz-v100",
		AccelWorkers:  maxParallelism(),
		HostWorkers:   maxParallelism(),
		LinkBandwidth: 6.91e9,
	}
}

// NewTestPlatform returns a small deterministic platform for unit tests.
func NewTestPlatform() *Platform {
	return &Platform{
		Name:          "test",
		AccelWorkers:  4,
		HostWorkers:   2,
		LinkBandwidth: 1e9,
	}
}

func maxParallelism() int {
	n := runtime.GOMAXPROCS(0)
	if n < 1 {
		n = 1
	}
	return n
}

// Stats returns a pointer to the live counters for inspection. Views share
// one counter set.
func (p *Platform) Stats() *Stats { return &p.state().stats }

// KernelImpl reports the SIMD implementation tier the dispatched hot-loop
// kernels run with ("avx2", "neon", or "purego"), fixed at process start
// (auto-detected, or forced via the FZMOD_KERNELS environment variable /
// the `purego` build tag). It is process-global — every Platform shares
// the one dispatch — but lives on Platform because execution evidence is
// read through it.
func (p *Platform) KernelImpl() string { return dispatch.Active() }

// KernelDetail reports the implementation behind each dispatched kernel by
// name; on tiers where the assembler covers only part of the kernel set
// (arm64), individual kernels may read "purego" under an active "neon"
// tier.
func (p *Platform) KernelDetail() map[string]string { return dispatch.PerKernel() }

// ResetStats zeroes all counters.
func (p *Platform) ResetStats() {
	st := p.Stats()
	st.BytesH2D.Store(0)
	st.BytesD2H.Store(0)
	st.KernelLaunch.Store(0)
	st.HostLaunch.Store(0)
	st.TransferNanos.Store(0)
	st.RegionCacheHits.Store(0)
	st.RegionCacheMiss.Store(0)
	st.RegionCacheEvict.Store(0)
}

// workersFor returns the kernel width for a place.
func (p *Platform) workersFor(place Place) int {
	if place == Accel {
		if p.AccelWorkers > 0 {
			return p.AccelWorkers
		}
		return 1
	}
	if p.HostWorkers > 0 {
		return p.HostWorkers
	}
	return 1
}

// LaunchGrid executes kernel over the half-open index range [0, n) at the
// given place, mirroring a grid-stride CUDA launch. The kernel receives a
// contiguous [lo, hi) chunk; chunk decomposition is deterministic for a
// fixed worker count so results are reproducible.
//
// LaunchGrid blocks until every chunk has completed ("stream-synchronous"
// launch); use a Stream for asynchronous launches.
func (p *Platform) LaunchGrid(place Place, n int, kernel func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if place == Accel {
		p.Stats().KernelLaunch.Add(1)
	} else {
		p.Stats().HostLaunch.Add(1)
	}
	workers := p.workersFor(place)
	if workers == 1 || n < 2*minChunk {
		kernel(0, n)
		return
	}
	chunk := (n + workers - 1) / workers
	if chunk < minChunk {
		chunk = minChunk
	}
	p.runChunks(place, n, chunk, kernel)
}

// minChunk is the smallest per-worker chunk worth dispatching to a worker.
const minChunk = 1024

// LaunchBlocks executes kernel over the index range [0, n) where each index
// is a coarse-grained unit of work (a scan block, a codec chunk) rather than
// one element. Unlike LaunchGrid it applies no minimum-chunk floor, so even
// small n fans out across the place's workers; the decomposition is
// deterministic for a fixed worker count.
func (p *Platform) LaunchBlocks(place Place, n int, kernel func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if place == Accel {
		p.Stats().KernelLaunch.Add(1)
	} else {
		p.Stats().HostLaunch.Add(1)
	}
	workers := p.workersFor(place)
	if workers == 1 || n == 1 {
		kernel(0, n)
		return
	}
	chunk := (n + workers - 1) / workers
	p.runChunks(place, n, chunk, kernel)
}

// Buffer is an allocation in one memory space. The element type is byte;
// typed views are provided by the generic helpers in buffer.go.
type Buffer struct {
	place Place
	data  []byte
}

// Alloc allocates a buffer of size bytes in the memory space of place.
func (p *Platform) Alloc(place Place, size int) *Buffer {
	return &Buffer{place: place, data: make([]byte, size)}
}

// Place reports the memory space the buffer lives in.
func (b *Buffer) Place() Place { return b.place }

// Len reports the buffer size in bytes.
func (b *Buffer) Len() int { return len(b.data) }

// Bytes exposes the raw storage. Kernel code running at the buffer's place
// may read/write it; crossing places must go through CopyIn/CopyOut.
func (b *Buffer) Bytes() []byte { return b.data }

// CopyIn copies host bytes into a device buffer (H2D), charging the link.
func (p *Platform) CopyIn(dst *Buffer, src []byte) error {
	if dst.place != Accel {
		return fmt.Errorf("device: CopyIn destination is %v, want accel", dst.place)
	}
	if len(src) > len(dst.data) {
		return fmt.Errorf("device: CopyIn overflow: src %d bytes into %d-byte buffer", len(src), len(dst.data))
	}
	copy(dst.data, src)
	p.chargeTransfer(len(src), &p.Stats().BytesH2D)
	return nil
}

// CopyOut copies device bytes back to host memory (D2H), charging the link.
func (p *Platform) CopyOut(dst []byte, src *Buffer) error {
	if src.place != Accel {
		return fmt.Errorf("device: CopyOut source is %v, want accel", src.place)
	}
	if len(src.data) > len(dst) {
		return fmt.Errorf("device: CopyOut overflow: %d-byte buffer into %d-byte dst", len(src.data), len(dst))
	}
	copy(dst, src.data)
	p.chargeTransfer(len(src.data), &p.Stats().BytesD2H)
	return nil
}

func (p *Platform) chargeTransfer(n int, counter *atomic.Int64) {
	counter.Add(int64(n))
	if p.LinkBandwidth <= 0 {
		return
	}
	d := time.Duration(float64(n) / p.LinkBandwidth * 1e9)
	p.Stats().TransferNanos.Add(int64(d))
	if p.SimulateTransferTime && d > 0 {
		time.Sleep(d)
	}
}

// TransferTime returns the modeled time to move n bytes across the link.
func (p *Platform) TransferTime(n int) time.Duration {
	if p.LinkBandwidth <= 0 {
		return 0
	}
	return time.Duration(float64(n) / p.LinkBandwidth * 1e9)
}
