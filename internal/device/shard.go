package device

// PoolShard is a single-owner free-list cache over a BufPool, the
// shared-nothing tier of the scratch allocator: each STF worker owns one
// shard, so the slab churn of a chunk's task chain (quantization codes,
// serialized-container staging) recycles through plain unsynchronized
// slices instead of round-tripping the shared pool on every checkout. A
// shard must only ever be used by the goroutine that owns it; Drain hands
// cached slabs back to the shared pool when the owner retires.
//
// Get/Put fall back to (and keep the traffic counters of) the backing
// BufPool, so PoolStats still accounts every checkout and return, and a
// shard miss behaves exactly like a direct pool call.
type PoolShard struct {
	bp *BufPool

	bytes []*Slab[byte]
	u16   []*Slab[uint16]
	f32   []*Slab[float32]
}

// shardCap bounds the slabs a shard caches per element kind; overflow
// returns to the shared pool.
const shardCap = 4

// NewShard creates an empty shard over the pool.
func (bp *BufPool) NewShard() *PoolShard { return &PoolShard{bp: bp} }

// shardGet pops a cached slab of the exact size class, resizing it to n;
// a miss defers to the shared pool.
func shardGet[T any](cache *[]*Slab[T], n int, zeroed bool, fallback func() *Slab[T], count *stripedCounter, hits *stripedCounter) *Slab[T] {
	c := classFor(n)
	if n <= 1<<poolMaxClass {
		s := *cache
		for i := len(s) - 1; i >= 0; i-- {
			if int(s[i].class) == c {
				slab := s[i]
				s[i] = s[len(s)-1]
				*cache = s[:len(s)-1]
				count.add(c)
				hits.add(c)
				slab.Data = slab.Data[:n]
				if zeroed {
					clear(slab.Data)
				}
				return slab
			}
		}
	}
	return fallback()
}

// shardPut caches a slab for the owner's next checkout, overflowing to the
// shared pool.
func shardPut[T any](cache *[]*Slab[T], s *Slab[T], overflow func(*Slab[T]), count *stripedCounter) {
	if s == nil || s.class < 0 {
		return
	}
	if len(*cache) < shardCap {
		count.add(int(s.class))
		*cache = append(*cache, s)
		return
	}
	overflow(s)
}

// GetBytes checks out a byte slab of length n, preferring the shard cache.
func (sh *PoolShard) GetBytes(n int, zeroed bool) *Slab[byte] {
	return shardGet(&sh.bytes, n, zeroed, func() *Slab[byte] { return sh.bp.GetBytes(n, zeroed) }, &sh.bp.gets, &sh.bp.hits)
}

// PutBytes returns a byte slab to the shard cache.
func (sh *PoolShard) PutBytes(s *Slab[byte]) {
	shardPut(&sh.bytes, s, sh.bp.PutBytes, &sh.bp.puts)
}

// GetU16 checks out a uint16 slab of length n, preferring the shard cache.
func (sh *PoolShard) GetU16(n int, zeroed bool) *Slab[uint16] {
	return shardGet(&sh.u16, n, zeroed, func() *Slab[uint16] { return sh.bp.GetU16(n, zeroed) }, &sh.bp.gets, &sh.bp.hits)
}

// PutU16 returns a uint16 slab to the shard cache.
func (sh *PoolShard) PutU16(s *Slab[uint16]) {
	shardPut(&sh.u16, s, sh.bp.PutU16, &sh.bp.puts)
}

// GetF32 checks out a float32 slab of length n, preferring the shard cache.
func (sh *PoolShard) GetF32(n int, zeroed bool) *Slab[float32] {
	return shardGet(&sh.f32, n, zeroed, func() *Slab[float32] { return sh.bp.GetF32(n, zeroed) }, &sh.bp.gets, &sh.bp.hits)
}

// PutF32 returns a float32 slab to the shard cache.
func (sh *PoolShard) PutF32(s *Slab[float32]) {
	shardPut(&sh.f32, s, sh.bp.PutF32, &sh.bp.puts)
}

// Pool returns the backing shared pool (for element kinds the shard does
// not cache).
func (sh *PoolShard) Pool() *BufPool { return sh.bp }

// Drain returns every cached slab to the shared pool. Call when the owning
// goroutine retires; the shard remains usable (empty) afterwards. Cached
// slabs were already accounted as returned when the owner put them, so the
// transfer back to the class pools is not re-counted.
func (sh *PoolShard) Drain() {
	for _, s := range sh.bytes {
		sh.bp.bytes[s.class].Put(s)
	}
	sh.bytes = sh.bytes[:0]
	for _, s := range sh.u16 {
		sh.bp.u16[s.class].Put(s)
	}
	sh.u16 = sh.u16[:0]
	for _, s := range sh.f32 {
		sh.bp.f32[s.class].Put(s)
	}
	sh.f32 = sh.f32[:0]
}
