//go:build !race

package device

// RaceEnabled reports whether the race detector is compiled in. Under the
// race detector sync.Pool deliberately drops puts and randomizes gets to
// expose races, so tests asserting deterministic pool hit counts must
// relax themselves when it is on.
const RaceEnabled = false
