package device

import (
	"bytes"
	"io"
	"testing"
)

func TestReadWriteF32Staged(t *testing.T) {
	src := make([]float32, 1000)
	for i := range src {
		src[i] = float32(i) * 0.5
	}
	// Odd staging sizes exercise the partial-group handling; 4096 the
	// common case; 5 forces one value per round.
	for _, bufLen := range []int{5, 7, 64, 4096} {
		var sink bytes.Buffer
		if err := WriteF32(&sink, src, make([]byte, bufLen)); err != nil {
			t.Fatalf("WriteF32(buf %d): %v", bufLen, err)
		}
		if !bytes.Equal(sink.Bytes(), F32Bytes(src)) {
			t.Fatalf("WriteF32(buf %d): bytes differ from F32Bytes", bufLen)
		}
		dst := make([]float32, len(src))
		if err := ReadF32(bytes.NewReader(sink.Bytes()), dst, make([]byte, bufLen)); err != nil {
			t.Fatalf("ReadF32(buf %d): %v", bufLen, err)
		}
		for i := range src {
			if dst[i] != src[i] {
				t.Fatalf("ReadF32(buf %d): dst[%d] = %g, want %g", bufLen, i, dst[i], src[i])
			}
		}
	}
}

func TestReadF32Short(t *testing.T) {
	dst := make([]float32, 8)
	err := ReadF32(bytes.NewReader(make([]byte, 12)), dst, make([]byte, 64))
	if err == nil {
		t.Fatal("short read should fail")
	}
	if err != io.ErrUnexpectedEOF && err != io.EOF {
		t.Fatalf("short read: %v", err)
	}
	if err := ReadF32(bytes.NewReader(nil), dst, make([]byte, 3)); err == nil {
		t.Fatal("tiny staging buffer should fail")
	}
	if err := WriteF32(io.Discard, dst, make([]byte, 2)); err == nil {
		t.Fatal("tiny staging buffer should fail")
	}
}
