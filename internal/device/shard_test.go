package device

import (
	"sync/atomic"
	"testing"
)

func TestPoolShardCachesAndRecycles(t *testing.T) {
	var bp BufPool
	sh := bp.NewShard()

	a := sh.GetU16(2000, true)
	for i := range a.Data {
		if a.Data[i] != 0 {
			t.Fatal("zeroed slab is dirty")
		}
	}
	a.Data[0] = 42
	sh.PutU16(a)

	// Same class: must come from the shard cache (a pool hit), resized.
	b := sh.GetU16(1500, false)
	if &b.Data[0] != &a.Data[0] {
		t.Error("shard did not recycle the cached slab")
	}
	if len(b.Data) != 1500 {
		t.Errorf("len = %d, want 1500", len(b.Data))
	}
	sh.PutU16(b)

	// Zeroing on shard hits must clear reused contents (1200 shares the
	// 2^11 size class with the cached slab).
	c := sh.GetU16(1200, true)
	if &c.Data[0] != &a.Data[0] {
		t.Error("same-class request missed the shard cache")
	}
	for _, v := range c.Data {
		if v != 0 {
			t.Fatal("shard hit returned dirty data with zeroed=true")
		}
	}
	sh.PutU16(c)

	st := bp.Stats()
	if st.Gets != st.Puts {
		t.Errorf("gets %d != puts %d", st.Gets, st.Puts)
	}
	if st.Gets != 3 {
		t.Errorf("gets = %d, want 3", st.Gets)
	}
	if st.Hits != 2 {
		t.Errorf("hits = %d, want 2 (two shard hits)", st.Hits)
	}

	// Drain returns cached slabs to the shared pool without re-counting.
	sh.Drain()
	st = bp.Stats()
	if st.Gets != st.Puts {
		t.Errorf("after drain: gets %d != puts %d", st.Gets, st.Puts)
	}
	if !RaceEnabled {
		// The drained slab is now visible to direct pool checkouts (the
		// race detector's sync.Pool drops puts on purpose, so only assert
		// this in normal builds).
		d := bp.GetU16(2048, false)
		if &d.Data[0] != &a.Data[0] {
			t.Error("drained slab not in the shared pool")
		}
		bp.PutU16(d)
	}
}

func TestPoolShardOverflowsToSharedPool(t *testing.T) {
	var bp BufPool
	sh := bp.NewShard()
	slabs := make([]*Slab[byte], shardCap+3)
	for i := range slabs {
		slabs[i] = sh.GetBytes(4096, false)
	}
	for _, s := range slabs {
		sh.PutBytes(s)
	}
	st := bp.Stats()
	if st.Gets != int64(len(slabs)) || st.Puts != int64(len(slabs)) {
		t.Errorf("gets/puts = %d/%d, want %d/%d", st.Gets, st.Puts, len(slabs), len(slabs))
	}
	sh.Drain()
	if st := bp.Stats(); st.Gets != st.Puts {
		t.Errorf("after drain: gets %d != puts %d", st.Gets, st.Puts)
	}
}

func TestWithWorkersViewSharesState(t *testing.T) {
	p := NewTestPlatform()
	defer p.Close()
	v := p.WithWorkers(1)
	if v.workersFor(Accel) != 1 || v.workersFor(Host) != 1 {
		t.Fatalf("view widths = %d/%d, want 1/1", v.workersFor(Accel), v.workersFor(Host))
	}
	// Wider budgets clamp at the parent's width.
	wide := p.WithWorkers(64)
	if wide.workersFor(Accel) != p.workersFor(Accel) {
		t.Errorf("wide view accel width %d, want %d", wide.workersFor(Accel), p.workersFor(Accel))
	}
	if p.WithWorkers(0) != p {
		t.Error("WithWorkers(0) should return the receiver")
	}

	// Counters and scratch pool are shared.
	if v.ScratchPool() != p.ScratchPool() {
		t.Error("view has a different scratch pool")
	}
	if v.Stats() != p.Stats() {
		t.Error("view has different stats")
	}
	v.LaunchGrid(Accel, 10_000, func(lo, hi int) {})
	if p.Stats().KernelLaunch.Load() == 0 {
		t.Error("view launch not charged to the shared stats")
	}
}

func TestWithWorkersOneRunsInline(t *testing.T) {
	p := NewTestPlatform()
	defer p.Close()
	v := p.WithWorkers(1)
	var calls atomic.Int32
	v.LaunchGrid(Host, 1<<16, func(lo, hi int) {
		calls.Add(1)
		if lo != 0 || hi != 1<<16 {
			t.Errorf("width-1 view split the range: [%d,%d)", lo, hi)
		}
	})
	if calls.Load() != 1 {
		t.Errorf("width-1 view made %d kernel calls, want 1", calls.Load())
	}
	// The parent keeps its own decomposition.
	var parentCalls atomic.Int32
	p.LaunchGrid(Accel, 1<<16, func(lo, hi int) { parentCalls.Add(1) })
	if parentCalls.Load() != int32(p.workersFor(Accel)) {
		t.Errorf("parent made %d calls, want %d", parentCalls.Load(), p.workersFor(Accel))
	}
}
