package device

import (
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestPlaceString(t *testing.T) {
	if Host.String() != "host" {
		t.Errorf("Host.String() = %q, want host", Host.String())
	}
	if Accel.String() != "accel" {
		t.Errorf("Accel.String() = %q, want accel", Accel.String())
	}
	if Place(9).String() != "place(9)" {
		t.Errorf("Place(9).String() = %q", Place(9).String())
	}
}

func TestLaunchGridCoversRangeExactlyOnce(t *testing.T) {
	p := NewTestPlatform()
	for _, n := range []int{0, 1, 7, 1023, 1024, 1025, 10_000, 123_457} {
		seen := make([]int32, n)
		p.LaunchGrid(Accel, n, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&seen[i], 1)
			}
		})
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("n=%d: index %d visited %d times, want 1", n, i, c)
			}
		}
	}
}

func TestLaunchGridHostPlace(t *testing.T) {
	p := NewTestPlatform()
	var sum atomic.Int64
	p.LaunchGrid(Host, 50_000, func(lo, hi int) {
		var local int64
		for i := lo; i < hi; i++ {
			local += int64(i)
		}
		sum.Add(local)
	})
	want := int64(50_000) * 49_999 / 2
	if sum.Load() != want {
		t.Errorf("sum = %d, want %d", sum.Load(), want)
	}
}

func TestLaunchCounters(t *testing.T) {
	p := NewTestPlatform()
	p.LaunchGrid(Accel, 10, func(lo, hi int) {})
	p.LaunchGrid(Accel, 10, func(lo, hi int) {})
	p.LaunchGrid(Host, 10, func(lo, hi int) {})
	if got := p.Stats().KernelLaunch.Load(); got != 2 {
		t.Errorf("kernel launches = %d, want 2", got)
	}
	if got := p.Stats().HostLaunch.Load(); got != 1 {
		t.Errorf("host launches = %d, want 1", got)
	}
	p.ResetStats()
	if got := p.Stats().KernelLaunch.Load(); got != 0 {
		t.Errorf("after reset kernel launches = %d, want 0", got)
	}
}

func TestCopyInOutAccounting(t *testing.T) {
	p := NewTestPlatform()
	src := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	buf := p.Alloc(Accel, 8)
	if err := p.CopyIn(buf, src); err != nil {
		t.Fatal(err)
	}
	dst := make([]byte, 8)
	if err := p.CopyOut(dst, buf); err != nil {
		t.Fatal(err)
	}
	for i := range src {
		if dst[i] != src[i] {
			t.Fatalf("roundtrip mismatch at %d: got %d want %d", i, dst[i], src[i])
		}
	}
	if got := p.Stats().BytesH2D.Load(); got != 8 {
		t.Errorf("BytesH2D = %d, want 8", got)
	}
	if got := p.Stats().BytesD2H.Load(); got != 8 {
		t.Errorf("BytesD2H = %d, want 8", got)
	}
}

func TestCopyErrors(t *testing.T) {
	p := NewTestPlatform()
	host := p.Alloc(Host, 8)
	if err := p.CopyIn(host, make([]byte, 4)); err == nil {
		t.Error("CopyIn to host buffer should fail")
	}
	small := p.Alloc(Accel, 2)
	if err := p.CopyIn(small, make([]byte, 4)); err == nil {
		t.Error("CopyIn overflow should fail")
	}
	if err := p.CopyOut(make([]byte, 4), host); err == nil {
		t.Error("CopyOut from host buffer should fail")
	}
	big := p.Alloc(Accel, 16)
	if err := p.CopyOut(make([]byte, 4), big); err == nil {
		t.Error("CopyOut overflow should fail")
	}
}

func TestTransferTimeModel(t *testing.T) {
	p := &Platform{LinkBandwidth: 1e9} // 1 GB/s
	d := p.TransferTime(1e9)
	if d.Seconds() < 0.99 || d.Seconds() > 1.01 {
		t.Errorf("TransferTime(1GB @ 1GB/s) = %v, want ~1s", d)
	}
	p2 := &Platform{}
	if p2.TransferTime(100) != 0 {
		t.Error("zero-bandwidth platform should report zero transfer time")
	}
}

func TestBufferTypedAccess(t *testing.T) {
	p := NewTestPlatform()
	b := p.AllocF32(Accel, 4)
	b.SetF32(2, 3.5)
	if got := b.F32(2); got != 3.5 {
		t.Errorf("F32(2) = %v, want 3.5", got)
	}
	u := p.AllocU16(Host, 3)
	u.SetU16(1, 65535)
	if got := u.U16(1); got != 65535 {
		t.Errorf("U16(1) = %d, want 65535", got)
	}
	w := p.AllocU32(Host, 3)
	w.SetU32(0, 0xdeadbeef)
	if got := w.U32(0); got != 0xdeadbeef {
		t.Errorf("U32(0) = %#x", got)
	}
	if u.Place() != Host || b.Place() != Accel {
		t.Error("Place() mismatch")
	}
	if b.Len() != 16 {
		t.Errorf("Len = %d, want 16", b.Len())
	}
}

func TestSliceConversionsRoundtrip(t *testing.T) {
	f := func(vals []float32) bool {
		got := BytesF32(F32Bytes(vals))
		if len(got) != len(vals) {
			return false
		}
		for i := range vals {
			// Compare bit patterns so NaNs roundtrip too.
			if F32Bytes(vals[i : i+1])[0] != F32Bytes(got[i : i+1])[0] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	g := func(vals []uint16) bool {
		got := BytesU16(U16Bytes(vals))
		if len(got) != len(vals) {
			return false
		}
		for i := range vals {
			if got[i] != vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(g, nil); err != nil {
		t.Error(err)
	}
	h := func(vals []uint32) bool {
		got := BytesU32(U32Bytes(vals))
		if len(got) != len(vals) {
			return false
		}
		for i := range vals {
			if got[i] != vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(h, nil); err != nil {
		t.Error(err)
	}
}

func TestBufferF32SliceHelpers(t *testing.T) {
	p := NewTestPlatform()
	b := p.AllocF32(Host, 5)
	src := []float32{1, -2, 3.25, 0, 5}
	b.PutF32Slice(src)
	got := b.F32Slice(nil)
	for i := range src {
		if got[i] != src[i] {
			t.Fatalf("F32Slice[%d] = %v, want %v", i, got[i], src[i])
		}
	}
}

func TestStreamOrdering(t *testing.T) {
	p := NewTestPlatform()
	s := p.NewStream(Accel)
	var order []int
	for i := 0; i < 50; i++ {
		i := i
		s.Enqueue(func() { order = append(order, i) })
	}
	s.Sync()
	if len(order) != 50 {
		t.Fatalf("executed %d ops, want 50", len(order))
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("out-of-order execution at %d: got %d", i, v)
		}
	}
}

func TestStreamLaunch(t *testing.T) {
	p := NewTestPlatform()
	s := p.NewStream(Accel)
	data := make([]int32, 10_000)
	s.Launch(len(data), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			data[i] = int32(i)
		}
	})
	s.Sync()
	for i, v := range data {
		if v != int32(i) {
			t.Fatalf("data[%d] = %d", i, v)
		}
	}
}

func TestEventCrossStream(t *testing.T) {
	p := NewTestPlatform()
	a := p.NewStream(Accel)
	b := p.NewStream(Host)
	var x atomic.Int32
	a.Enqueue(func() { x.Store(42) })
	ev := a.Record()
	b.WaitEvent(ev)
	var got int32
	b.Enqueue(func() { got = x.Load() })
	b.Sync()
	if got != 42 {
		t.Errorf("cross-stream event: got %d, want 42", got)
	}
}

func TestPlatformConstructors(t *testing.T) {
	h := NewH100Platform()
	v := NewV100Platform()
	if h.LinkBandwidth <= v.LinkBandwidth {
		t.Error("H100 link bandwidth should exceed V100 (Table 1)")
	}
	if h.Name == "" || v.Name == "" {
		t.Error("platforms should be named")
	}
}
