package device

import "sync/atomic"

// StreamPool is a fixed set of streams at one place used to fan independent
// blocks of work out across the platform, the way a GPU compressor cycles
// chunks over a small ring of CUDA streams. Work items assigned to the same
// stream execute in order; items on different streams may overlap.
type StreamPool struct {
	streams []*Stream
	next    atomic.Uint64
}

// NewStreamPool creates a pool of n streams executing at place. n <= 0
// selects the platform's worker width for the place.
func (p *Platform) NewStreamPool(place Place, n int) *StreamPool {
	if n <= 0 {
		n = p.workersFor(place)
	}
	sp := &StreamPool{streams: make([]*Stream, n)}
	for i := range sp.streams {
		sp.streams[i] = p.NewStream(place)
	}
	return sp
}

// Size returns the number of streams in the pool.
func (sp *StreamPool) Size() int { return len(sp.streams) }

// Stream returns the stream for slot i (wrapping modulo the pool size), so
// a caller dispatching block i to Stream(i) gets a deterministic
// round-robin assignment.
func (sp *StreamPool) Stream(i int) *Stream {
	return sp.streams[i%len(sp.streams)]
}

// Next returns streams in rotation; concurrent callers each get a slot.
func (sp *StreamPool) Next() *Stream {
	n := sp.next.Add(1) - 1
	return sp.streams[int(n%uint64(len(sp.streams)))]
}

// Sync blocks until all work enqueued on every stream has completed.
func (sp *StreamPool) Sync() {
	for _, s := range sp.streams {
		s.Sync()
	}
}

// Workers reports the platform's worker-pool width for a place; the chunked
// executor uses it to size stream pools.
func (p *Platform) Workers(place Place) int { return p.workersFor(place) }
