package device

import "testing"

func TestBufPoolRecyclesSlabs(t *testing.T) {
	if RaceEnabled {
		t.Skip("sync.Pool drops puts nondeterministically under the race detector")
	}
	var bp BufPool
	s1 := bp.GetU32(1500, false)
	if len(s1.Data) != 1500 || cap(s1.Data) != 2048 {
		t.Fatalf("slab len/cap = %d/%d, want 1500/2048", len(s1.Data), cap(s1.Data))
	}
	s1.Data[0] = 42
	bp.PutU32(s1)
	s2 := bp.GetU32(1200, false)
	if cap(s2.Data) != 2048 {
		t.Errorf("reused slab cap = %d, want 2048", cap(s2.Data))
	}
	if s2.Data[0] != 42 {
		t.Error("dirty get did not reuse the slab storage")
	}
	bp.PutU32(s2)
	s3 := bp.GetU32(2000, true)
	if s3.Data[0] != 0 {
		t.Error("zeroed get returned dirty contents")
	}
	st := bp.Stats()
	if st.Gets != 3 || st.Hits != 2 || st.Puts != 2 {
		t.Errorf("stats = %+v, want gets 3 / hits 2 / puts 2", st)
	}
	if got := st.HitRate(); got < 0.66 || got > 0.67 {
		t.Errorf("hit rate = %v, want 2/3", got)
	}
}

func TestBufPoolTinyAndHugeRequests(t *testing.T) {
	var bp BufPool
	tiny := bp.GetF32(3, true)
	if len(tiny.Data) != 3 || cap(tiny.Data) != 1<<poolMinClass {
		t.Errorf("tiny slab len/cap = %d/%d", len(tiny.Data), cap(tiny.Data))
	}
	bp.PutF32(tiny)
	zero := bp.GetBytes(0, false)
	if len(zero.Data) != 0 {
		t.Errorf("zero-length slab has len %d", len(zero.Data))
	}
	bp.PutBytes(zero)
	huge := bp.GetBytes(1<<poolMaxClass+1, false)
	if huge.class != -1 {
		t.Error("oversized request should be unpooled")
	}
	bp.PutBytes(huge) // must be a no-op, not a panic
}

func TestBufPoolSteadyStateAllocFree(t *testing.T) {
	if RaceEnabled {
		t.Skip("sync.Pool drops puts nondeterministically under the race detector")
	}
	var bp BufPool
	bp.PutI32(bp.GetI32(4096, false)) // warm the class
	allocs := testing.AllocsPerRun(100, func() {
		s := bp.GetI32(4096, false)
		bp.PutI32(s)
	})
	if allocs > 0 {
		t.Errorf("steady-state get/put cycle allocates %.1f objects", allocs)
	}
}

func TestPlatformCloseStopsWorkersAndLaunchesInline(t *testing.T) {
	p := NewTestPlatform()
	sum := make([]int32, 8192)
	p.LaunchGrid(Accel, len(sum), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			sum[i]++
		}
	})
	p.Close()
	p.Close() // idempotent
	// Launches after Close must still complete (inline execution).
	p.LaunchGrid(Accel, len(sum), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			sum[i]++
		}
	})
	for i, v := range sum {
		if v != 2 {
			t.Fatalf("index %d ran %d times, want 2", i, v)
		}
	}
	// A platform that never launched has no workers to stop.
	NewTestPlatform().Close()
}

func TestLaunchBlocksCoversRange(t *testing.T) {
	p := NewTestPlatform()
	seen := make([]int32, 37)
	p.LaunchBlocks(Accel, len(seen), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			seen[i]++
		}
	})
	for i, v := range seen {
		if v != 1 {
			t.Fatalf("index %d visited %d times", i, v)
		}
	}
	if p.Stats().KernelLaunch.Load() != 1 {
		t.Errorf("LaunchBlocks should count one kernel launch")
	}
}
