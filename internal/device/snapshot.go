package device

// Snapshot is a read-only, point-in-time copy of a platform's live
// counters: transfer and launch traffic from Stats, the scratch-pool
// gets/hits/puts, the region-read slab-cache counters, and the SIMD
// kernel tier the dispatched hot loops run with. Unlike Stats — whose
// atomics are live and shared between all views of a platform — a
// Snapshot is plain data, safe to hand to metrics exporters and external
// callers without exposing the internals. Counters are loaded
// individually, so a snapshot taken while work is in flight is coherent
// per counter, not across counters.
type Snapshot struct {
	// BytesH2D and BytesD2H are the simulated host-to-device and
	// device-to-host transfer volumes.
	BytesH2D, BytesD2H int64
	// KernelLaunches and HostLaunches count grid launches at each place.
	KernelLaunches, HostLaunches int64
	// TransferNanos is the simulated time spent on transfers.
	TransferNanos int64
	// RegionCacheHits/Misses/Evictions are the region-read slab-cache
	// counters (zero when no region read ever ran).
	RegionCacheHits, RegionCacheMisses, RegionCacheEvictions int64
	// Pool is the scratch-pool traffic; Pool.Gets == Pool.Puts when every
	// checkout has been returned.
	Pool PoolStats
	// Kernels names the active SIMD tier ("avx2", "neon", or "purego").
	Kernels string
}

// Snapshot copies the platform's live counters into a read-only value.
// Views of one platform (WithWorkers) share counters, so their snapshots
// agree.
func (p *Platform) Snapshot() Snapshot {
	st := p.Stats()
	return Snapshot{
		BytesH2D:             st.BytesH2D.Load(),
		BytesD2H:             st.BytesD2H.Load(),
		KernelLaunches:       st.KernelLaunch.Load(),
		HostLaunches:         st.HostLaunch.Load(),
		TransferNanos:        st.TransferNanos.Load(),
		RegionCacheHits:      st.RegionCacheHits.Load(),
		RegionCacheMisses:    st.RegionCacheMiss.Load(),
		RegionCacheEvictions: st.RegionCacheEvict.Load(),
		Pool:                 p.ScratchPool().Stats(),
		Kernels:              p.KernelImpl(),
	}
}
