package device

import (
	"math/bits"
	"sync"
	"sync/atomic"
)

// BufPool is a size-classed scratch-slab pool, the reproduction of the
// pooled device-buffer allocator a GPU compressor keeps so per-chunk kernels
// never hit cudaMalloc on the hot path. Slabs are grouped into power-of-two
// size classes per element kind, each class backed by a sync.Pool arena.
//
// A checked-out slab travels inside a *Slab box; returning the box recycles
// both the storage and the box itself, so steady-state Get/Put cycles
// perform zero heap allocations. The zero value is ready to use; every
// Platform carries one (see Platform.ScratchPool) so concurrent compressions
// sharing a platform also share its warm slabs.
type BufPool struct {
	bytes, u16, u32, i32, i64, f32, f64 classPools

	gets stripedCounter
	hits stripedCounter
	puts stripedCounter
}

// counterStripes is the stripe count of the pool's traffic counters. The
// slab storage itself is already P-local (sync.Pool keeps per-P free
// lists), so under concurrent get/put the only shared-write hot spots are
// these counters; striping them by size class and padding each cell to a
// cache line keeps concurrent workers — which typically touch different
// classes at any instant — off each other's lines.
const counterStripes = 8

// stripedCounter is a cache-line padded, striped event counter.
type stripedCounter struct {
	cells [counterStripes]struct {
		v atomic.Int64
		_ [56]byte
	}
}

func (c *stripedCounter) add(stripe int) {
	c.cells[stripe&(counterStripes-1)].v.Add(1)
}

func (c *stripedCounter) load() int64 {
	var total int64
	for i := range c.cells {
		total += c.cells[i].v.Load()
	}
	return total
}

// PoolStats is a point-in-time snapshot of pool traffic.
type PoolStats struct {
	// Gets counts slab checkouts; Hits counts the subset served from the
	// pool rather than a fresh allocation; Puts counts returns.
	Gets, Hits, Puts int64
}

// Misses returns the checkouts that had to allocate.
func (s PoolStats) Misses() int64 { return s.Gets - s.Hits }

// HitRate returns Hits/Gets in [0, 1] (0 when the pool is untouched).
func (s PoolStats) HitRate() float64 {
	if s.Gets == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Gets)
}

// Stats snapshots the cumulative pool counters.
func (bp *BufPool) Stats() PoolStats {
	return PoolStats{Gets: bp.gets.load(), Hits: bp.hits.load(), Puts: bp.puts.load()}
}

const (
	// poolMinClass floors the class index: slabs smaller than 2^poolMinClass
	// elements round up to it, so tiny requests still recycle.
	poolMinClass = 10
	// poolMaxClass caps pooled slabs at 2^poolMaxClass elements; larger
	// requests fall through to plain allocation (class -1, never recycled).
	poolMaxClass = 30
)

type classPools [poolMaxClass + 1]sync.Pool

// Slab is one checked-out pool slab: Data has the requested length and a
// power-of-two capacity. Keep the box and hand it back with the matching
// Put method when the data's lifetime ends; a Slab must not be used after.
type Slab[T any] struct {
	Data  []T
	class int8
}

// classFor maps a length to its size class (ceil log2, floored).
func classFor(n int) int {
	if n <= 1 {
		return poolMinClass
	}
	c := bits.Len(uint(n - 1))
	if c < poolMinClass {
		c = poolMinClass
	}
	return c
}

func getSlab[T any](bp *BufPool, cp *classPools, n int, zeroed bool) *Slab[T] {
	c := classFor(n)
	bp.gets.add(c)
	if n > 1<<poolMaxClass {
		return &Slab[T]{Data: make([]T, n), class: -1}
	}
	if v := cp[c].Get(); v != nil {
		bp.hits.add(c)
		s := v.(*Slab[T])
		s.Data = s.Data[:n]
		if zeroed {
			clear(s.Data)
		}
		return s
	}
	// Fresh slabs arrive zeroed from the allocator.
	return &Slab[T]{Data: make([]T, n, 1<<c), class: int8(c)}
}

func putSlab[T any](bp *BufPool, cp *classPools, s *Slab[T]) {
	if s == nil || s.class < 0 {
		return
	}
	bp.puts.add(int(s.class))
	cp[s.class].Put(s)
}

// GetBytes checks out a byte slab of length n; zeroed selects cleared
// contents (reused slabs are otherwise dirty).
func (bp *BufPool) GetBytes(n int, zeroed bool) *Slab[byte] {
	return getSlab[byte](bp, &bp.bytes, n, zeroed)
}

// PutBytes returns a byte slab.
func (bp *BufPool) PutBytes(s *Slab[byte]) { putSlab(bp, &bp.bytes, s) }

// GetU16 checks out a uint16 slab of length n.
func (bp *BufPool) GetU16(n int, zeroed bool) *Slab[uint16] {
	return getSlab[uint16](bp, &bp.u16, n, zeroed)
}

// PutU16 returns a uint16 slab.
func (bp *BufPool) PutU16(s *Slab[uint16]) { putSlab(bp, &bp.u16, s) }

// GetU32 checks out a uint32 slab of length n.
func (bp *BufPool) GetU32(n int, zeroed bool) *Slab[uint32] {
	return getSlab[uint32](bp, &bp.u32, n, zeroed)
}

// PutU32 returns a uint32 slab.
func (bp *BufPool) PutU32(s *Slab[uint32]) { putSlab(bp, &bp.u32, s) }

// GetI32 checks out an int32 slab of length n.
func (bp *BufPool) GetI32(n int, zeroed bool) *Slab[int32] {
	return getSlab[int32](bp, &bp.i32, n, zeroed)
}

// PutI32 returns an int32 slab.
func (bp *BufPool) PutI32(s *Slab[int32]) { putSlab(bp, &bp.i32, s) }

// GetI64 checks out an int64 slab of length n.
func (bp *BufPool) GetI64(n int, zeroed bool) *Slab[int64] {
	return getSlab[int64](bp, &bp.i64, n, zeroed)
}

// PutI64 returns an int64 slab.
func (bp *BufPool) PutI64(s *Slab[int64]) { putSlab(bp, &bp.i64, s) }

// GetF32 checks out a float32 slab of length n.
func (bp *BufPool) GetF32(n int, zeroed bool) *Slab[float32] {
	return getSlab[float32](bp, &bp.f32, n, zeroed)
}

// PutF32 returns a float32 slab.
func (bp *BufPool) PutF32(s *Slab[float32]) { putSlab(bp, &bp.f32, s) }

// GetF64 checks out a float64 slab of length n.
func (bp *BufPool) GetF64(n int, zeroed bool) *Slab[float64] {
	return getSlab[float64](bp, &bp.f64, n, zeroed)
}

// PutF64 returns a float64 slab.
func (bp *BufPool) PutF64(s *Slab[float64]) { putSlab(bp, &bp.f64, s) }
