package device

import "sync"

// Stream is an in-order asynchronous work queue bound to one place,
// mirroring a CUDA stream: operations enqueued on the same stream execute
// sequentially; operations on different streams may overlap. The stf
// package schedules independent pipeline stages onto separate streams to
// obtain the branch-level concurrency the paper describes (§3.3.1).
type Stream struct {
	p     *Platform
	place Place

	mu      sync.Mutex
	tail    chan struct{} // closed when the last enqueued op completes
	started bool
}

// NewStream creates a stream executing at place.
func (p *Platform) NewStream(place Place) *Stream {
	done := make(chan struct{})
	close(done)
	return &Stream{p: p, place: place, tail: done}
}

// Place reports the execution place of the stream.
func (s *Stream) Place() Place { return s.place }

// Enqueue schedules fn after all previously enqueued work on this stream.
// It returns immediately; use Sync or an Event to wait.
func (s *Stream) Enqueue(fn func()) {
	s.mu.Lock()
	prev := s.tail
	done := make(chan struct{})
	s.tail = done
	s.mu.Unlock()
	go func() {
		<-prev
		fn()
		close(done)
	}()
}

// Launch enqueues a grid launch of kernel over [0, n) on this stream.
func (s *Stream) Launch(n int, kernel func(lo, hi int)) {
	s.Enqueue(func() { s.p.LaunchGrid(s.place, n, kernel) })
}

// Sync blocks until all work enqueued so far has completed.
func (s *Stream) Sync() {
	s.mu.Lock()
	tail := s.tail
	s.mu.Unlock()
	<-tail
}

// Event marks a point in a stream's work queue that other streams can wait
// on, mirroring cudaEvent.
type Event struct {
	done chan struct{}
}

// Record captures the stream's current tail as an event.
func (s *Stream) Record() *Event {
	s.mu.Lock()
	tail := s.tail
	s.mu.Unlock()
	return &Event{done: tail}
}

// Wait blocks the caller until the event has fired.
func (e *Event) Wait() { <-e.done }

// WaitEvent makes subsequent work on s wait for e without blocking the
// caller (cudaStreamWaitEvent).
func (s *Stream) WaitEvent(e *Event) {
	s.Enqueue(func() { <-e.done })
}
