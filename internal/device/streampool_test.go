package device

import (
	"sync/atomic"
	"testing"
)

func TestStreamPoolFanOut(t *testing.T) {
	p := NewTestPlatform()
	pool := p.NewStreamPool(Accel, 4)
	if pool.Size() != 4 {
		t.Fatalf("Size = %d, want 4", pool.Size())
	}
	var sum atomic.Int64
	for i := 0; i < 64; i++ {
		v := int64(i)
		pool.Stream(i).Enqueue(func() { sum.Add(v) })
	}
	pool.Sync()
	if got := sum.Load(); got != 64*63/2 {
		t.Errorf("sum = %d, want %d", got, 64*63/2)
	}
}

func TestStreamPoolDefaultsToPlatformWidth(t *testing.T) {
	p := NewTestPlatform()
	if got := p.NewStreamPool(Accel, 0).Size(); got != p.AccelWorkers {
		t.Errorf("accel pool size = %d, want %d", got, p.AccelWorkers)
	}
	if got := p.NewStreamPool(Host, -1).Size(); got != p.HostWorkers {
		t.Errorf("host pool size = %d, want %d", got, p.HostWorkers)
	}
	if got := p.Workers(Accel); got != p.AccelWorkers {
		t.Errorf("Workers(Accel) = %d, want %d", got, p.AccelWorkers)
	}
}

func TestStreamPoolPerStreamOrdering(t *testing.T) {
	p := NewTestPlatform()
	pool := p.NewStreamPool(Host, 2)
	// Items dispatched to the same slot must run in order even when other
	// streams interleave.
	var order [8]int
	var pos atomic.Int64
	for i := 0; i < 8; i++ {
		i := i
		pool.Stream(0).Enqueue(func() { order[pos.Add(1)-1] = i })
	}
	pool.Sync()
	for i, v := range order {
		if v != i {
			t.Fatalf("stream 0 ran out of order: %v", order)
		}
	}
}

func TestStreamPoolNextRotates(t *testing.T) {
	p := NewTestPlatform()
	pool := p.NewStreamPool(Host, 3)
	seen := map[*Stream]int{}
	for i := 0; i < 9; i++ {
		seen[pool.Next()]++
	}
	if len(seen) != 3 {
		t.Fatalf("Next visited %d distinct streams, want 3", len(seen))
	}
	for s, n := range seen {
		if n != 3 {
			t.Errorf("stream %p drew %d times, want 3", s, n)
		}
	}
}
