// Package core is the FZModules framework itself: the module interfaces
// each pipeline stage plugs into, the pipeline composer that chains
// preprocessing → prediction → primary lossless encoding → optional
// secondary encoding (§3.3), the serialization of every stage into the
// fzio container, and the preset pipelines the paper evaluates
// (FZMod-Default, FZMod-Speed, FZMod-Quality).
//
// A pipeline is data, not code: it is assembled from named modules, and
// the module names are recorded in the compressed container so any
// FZModules build with the same modules registered can decompress the
// stream. New modules register themselves in the package registry exactly
// the way the paper describes extending the framework.
package core

import (
	"fmt"
	"sort"
	"sync"

	"fzmod/internal/device"
	"fzmod/internal/grid"
	"fzmod/internal/preprocess"
)

// Prediction is the interchange format between the prediction stage and
// the lossless encoding stage: a dense stream of bounded quantization
// codes plus predictor-specific side data (outliers, anchors, interpolant
// choices) as named binary segments.
type Prediction struct {
	Codes  []uint16
	Radius int
	// Extras holds predictor-specific serialized side channels; they are
	// stored as container segments prefixed "pred.".
	Extras map[string][]byte
}

// Predictor is the prediction+quantization stage contract.
type Predictor interface {
	// Name is the registry key recorded in compressed containers.
	Name() string
	// Predict quantizes data within absolute bound eb at place.
	Predict(p *device.Platform, place device.Place, data []float32, dims grid.Dims, eb float64) (*Prediction, error)
	// Reconstruct inverts Predict.
	Reconstruct(p *device.Platform, place device.Place, pred *Prediction, dims grid.Dims, eb float64) ([]float32, error)
}

// CodesEncoder is the primary lossless stage contract: it compresses the
// quantization-code stream.
type CodesEncoder interface {
	Name() string
	EncodeCodes(p *device.Platform, place device.Place, codes []uint16, radius int) ([]byte, error)
	DecodeCodes(p *device.Platform, place device.Place, blob []byte) ([]uint16, error)
}

// Secondary is the optional second lossless pass (the zstd slot).
type Secondary interface {
	Name() string
	Compress(p *device.Platform, place device.Place, data []byte) ([]byte, error)
	Decompress(p *device.Platform, place device.Place, blob []byte) ([]byte, error)
}

// Compressor is the uniform external contract pipelines and baseline
// compressors share; the benchmark harness drives everything through it.
type Compressor interface {
	Name() string
	Compress(p *device.Platform, data []float32, dims grid.Dims, eb preprocess.ErrorBound) ([]byte, error)
	Decompress(p *device.Platform, blob []byte) ([]float32, grid.Dims, error)
}

// Registry maps module names to implementations so containers are
// self-describing. Registration normally happens in init functions.
var (
	regMu      sync.RWMutex
	predictors = map[string]Predictor{}
	encoders   = map[string]CodesEncoder{}
	secondary  = map[string]Secondary{}
)

// RegisterPredictor adds a predictor to the registry; it panics on
// duplicate names, which are programmer error.
func RegisterPredictor(pr Predictor) {
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := predictors[pr.Name()]; dup {
		panic("core: duplicate predictor " + pr.Name())
	}
	predictors[pr.Name()] = pr
}

// RegisterEncoder adds a primary encoder to the registry.
func RegisterEncoder(e CodesEncoder) {
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := encoders[e.Name()]; dup {
		panic("core: duplicate encoder " + e.Name())
	}
	encoders[e.Name()] = e
}

// RegisterSecondary adds a secondary encoder to the registry.
func RegisterSecondary(s Secondary) {
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := secondary[s.Name()]; dup {
		panic("core: duplicate secondary " + s.Name())
	}
	secondary[s.Name()] = s
}

// LookupPredictor resolves a registry name.
func LookupPredictor(name string) (Predictor, error) {
	regMu.RLock()
	defer regMu.RUnlock()
	pr, ok := predictors[name]
	if !ok {
		return nil, fmt.Errorf("core: unknown predictor %q (known: %v)", name, keys(predictors))
	}
	return pr, nil
}

// LookupEncoder resolves a registry name.
func LookupEncoder(name string) (CodesEncoder, error) {
	regMu.RLock()
	defer regMu.RUnlock()
	e, ok := encoders[name]
	if !ok {
		return nil, fmt.Errorf("core: unknown encoder %q (known: %v)", name, keys(encoders))
	}
	return e, nil
}

// LookupSecondary resolves a registry name.
func LookupSecondary(name string) (Secondary, error) {
	regMu.RLock()
	defer regMu.RUnlock()
	s, ok := secondary[name]
	if !ok {
		return nil, fmt.Errorf("core: unknown secondary %q (known: %v)", name, keys(secondary))
	}
	return s, nil
}

func keys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
