package core

import (
	"context"
	"fmt"

	"fzmod/internal/device"
	"fzmod/internal/fzio"
	"fzmod/internal/grid"
	"fzmod/internal/stf"
)

// This file is the framework's single execution engine: every public
// compress/decompress entry point lowers its pipeline to an STF task graph
// — per-chunk predict → encode → serialize (→ secondary) sub-graphs joined
// by an assembly task on the write path, fetch → decode → reconstruct
// sub-graphs scattering into the output field on the read path — and the
// stf scheduler executes it over per-place work-stealing worker pools with
// pooled scratch buffers. There is no other executor: the monolithic path
// is simply a one-chunk graph.

// ExecReport carries the execution evidence of one lowered pipeline run:
// the task trace (for checking stage overlap), the inferred DAG in
// Graphviz dot syntax, the critical-path length, and a snapshot of the
// platform buffer-pool counters taken when the run finished.
type ExecReport struct {
	Trace        []stf.TaskTrace
	DOT          string
	Tasks        int
	CriticalPath int
	// Pool snapshots the platform's cumulative scratch-pool counters at
	// report time; the hit rate approaches 1 as steady-state runs reuse
	// warm slabs.
	Pool device.PoolStats
	// Kernels names the SIMD implementation tier the dispatched hot-loop
	// kernels ran with ("avx2", "neon", or "purego") and KernelDetail the
	// per-kernel split — execution evidence for benchmark rows and for
	// confirming which implementation a profile measured.
	Kernels      string
	KernelDetail map[string]string
	// Region carries the chunk and slab-cache accounting of a region read
	// (nil for full compress/decompress runs).
	Region *RegionStats
}

// Overlapped reports whether any two tasks ran concurrently.
func (r *ExecReport) Overlapped() bool { return stf.Overlapped(r.Trace) }

// execReport assembles the report for a finalized context.
func execReport(ctx *stf.Ctx) *ExecReport {
	trace := ctx.Trace()
	return &ExecReport{
		Trace:        trace,
		DOT:          ctx.DOT(),
		Tasks:        len(trace),
		CriticalPath: ctx.CriticalPath(),
		Pool:         ctx.Platform().ScratchPool().Stats(),
		Kernels:      ctx.Platform().KernelImpl(),
		KernelDetail: ctx.Platform().KernelDetail(),
	}
}

// compressJob carries one chunk's dynamically sized intermediates through
// its task chain. Logical tokens express the dependencies; the payloads
// travel through the job because module outputs (code streams, container
// bytes) have sizes unknown at graph-build time — the pattern CUDASTF
// handles with oversized logical buffers.
type compressJob struct {
	pred    *Prediction
	payload []byte
	inner   *fzio.Container // built once encode finishes; sized, not copied
	blob    []byte
	encTok  stf.DataRef
	blobTok stf.DataRef
	// codesSlab is the pooled quantization-code buffer when the pipeline's
	// predictor supports PredictInto; the encode task returns it to the
	// pool once the code stream has been consumed.
	codesSlab *device.Slab[uint16]
	// blobSlab backs blob when the serialize task draws it from the pool
	// (the streaming path, which recycles each chunk's container bytes
	// after the frame is flushed).
	blobSlab *device.Slab[byte]
}

// releaseSlabs hands back any pooled slab the sub-graph still holds. The
// encode and secondary task bodies normally recycle codesSlab/blobSlab,
// but a failed or canceled graph skips those bodies — the caller must
// sweep after Finalize/Reset reports an error, or the checkout leaks and
// the pool's gets==puts accounting breaks. Safe only once the graph is
// drained (no task body can still touch the job).
func (job *compressJob) releaseSlabs(bp *device.BufPool) {
	if job.codesSlab != nil {
		bp.PutU16(job.codesSlab)
		job.codesSlab = nil
		if job.pred != nil {
			job.pred.Codes = nil
		}
	}
	if job.blobSlab != nil {
		bp.PutBytes(job.blobSlab)
		job.blobSlab = nil
	}
}

// sweepJobs releaseSlabs-es every declared job after a failed graph.
func sweepJobs(bp *device.BufPool, jobs []*compressJob) {
	for _, job := range jobs {
		if job != nil {
			job.releaseSlabs(bp)
		}
	}
}

// addPredictEncodeTasks declares the first half of one block's compression
// sub-graph: predict+quantize at the pipeline's predictor place and
// primary encoding at the encoder place. Task and token names are prefixed
// so the sub-graphs of several chunks coexist in one context; chunks share
// no logical data, so the scheduler is free to overlap them.
func (pl *Pipeline) addPredictEncodeTasks(ctx *stf.Ctx, prefix string, data []float32, dims grid.Dims, absEB float64) *compressJob {
	p := ctx.Platform()
	job := &compressJob{}
	predTok := stf.NewToken(ctx, prefix+"pred")
	encTok := stf.NewToken(ctx, prefix+"enc")
	job.encTok = encTok.D()

	ctx.Task(prefix + "predict").On(pl.PredPlace).Writes(predTok.D()).
		Do(func(ti *stf.TaskInstance) error {
			var (
				pred *Prediction
				err  error
			)
			if pi, ok := pl.Pred.(PredictorInto); ok {
				// Pooled codes drawn through the worker's shard: the slab is
				// recycled by the encode task, so a many-chunk run reuses a
				// window's worth of code buffers instead of allocating
				// 2 bytes per field element.
				job.codesSlab = ti.Shard().GetU16(dims.N(), false)
				pred, err = pi.PredictInto(p, ti.Place(), data, dims, absEB, job.codesSlab.Data)
			} else {
				pred, err = pl.Pred.Predict(p, ti.Place(), data, dims, absEB)
			}
			if err != nil {
				return fmt.Errorf("core: %s predict: %w", pl.Pred.Name(), err)
			}
			job.pred = pred
			return nil
		})

	ctx.Task(prefix + "encode").On(pl.EncPlace).Reads(predTok.D()).Writes(encTok.D()).
		Do(func(ti *stf.TaskInstance) error {
			defer func() {
				// The code stream is dead after encoding (serialization only
				// touches Extras and Radius); recycle the pooled buffer.
				if job.codesSlab != nil {
					ti.Shard().PutU16(job.codesSlab)
					job.codesSlab = nil
					job.pred.Codes = nil
				}
			}()
			payload, err := pl.Enc.EncodeCodes(p, ti.Place(), job.pred.Codes, job.pred.Radius)
			if err != nil {
				return fmt.Errorf("core: %s encode: %w", pl.Enc.Name(), err)
			}
			job.payload = payload
			return nil
		})
	return job
}

// addSerializeTasks appends the gather-serialize tail to a block's
// sub-graph: container serialization on the host into an exact-size buffer
// (pooled when pooledBlob is set — the streaming path returns the slab
// once the frame is flushed), and — when the pipeline carries a secondary
// encoder — the secondary pass rewriting the serialized blob.
func (pl *Pipeline) addSerializeTasks(ctx *stf.Ctx, prefix string, job *compressJob, dims grid.Dims, absEB, relEB float64, pooledBlob bool) {
	p := ctx.Platform()
	blobTok := stf.NewToken(ctx, prefix+"blob")
	job.blobTok = blobTok.D()

	ctx.Task(prefix + "serialize").On(device.Host).Reads(job.encTok).Writes(blobTok.D()).
		Do(func(ti *stf.TaskInstance) error {
			inner, err := pl.buildInner(dims, absEB, relEB, job.pred, job.payload)
			if err != nil {
				return err
			}
			size := inner.MarshaledSize()
			var buf []byte
			if pooledBlob {
				job.blobSlab = ti.Shard().GetBytes(size, false)
				buf = job.blobSlab.Data
			} else {
				buf = make([]byte, size)
			}
			n, err := inner.MarshalInto(buf)
			if err != nil {
				return err
			}
			job.blob = buf[:n]
			return nil
		})

	if pl.Sec != nil {
		ctx.Task(prefix + "secondary").On(pl.EncPlace).ReadsWrites(blobTok.D()).
			Do(func(ti *stf.TaskInstance) error {
				blob, err := pl.wrapSecondary(p, ti.Place(), job.blob, dims, absEB, relEB)
				if err != nil {
					return err
				}
				// The inner blob is dead once wrapped; recycle its slab.
				if job.blobSlab != nil {
					ti.Shard().PutBytes(job.blobSlab)
					job.blobSlab = nil
				}
				job.blob = blob
				return nil
			})
	}
}

// addCompressTasks declares the full gather-path compression sub-graph for
// one block: predict → encode → serialize (→ secondary).
func (pl *Pipeline) addCompressTasks(ctx *stf.Ctx, prefix string, data []float32, dims grid.Dims, absEB, relEB float64, pooledBlob bool) *compressJob {
	job := pl.addPredictEncodeTasks(ctx, prefix, data, dims, absEB)
	pl.addSerializeTasks(ctx, prefix, job, dims, absEB, relEB, pooledBlob)
	return job
}

// decompressJob carries one container's decode state through its task
// chain; sizes and module identities only become known as tasks execute.
type decompressJob struct {
	c    *fzio.Container
	pr   Predictor
	pred *Prediction
	dims grid.Dims
	eb   float64
	vals []float32
	// dst, when set, is the destination slice reconstruction writes into
	// directly for predictors supporting ReconstructInto (the chunked path
	// points it at the chunk's window of the assembled output field).
	dst []float32
}

// decode resolves the container's modules and decodes the primary code
// stream (at the accelerator place, as the presets assign it), populating
// the job for reconstruction.
func (job *decompressJob) decode(p *device.Platform) error {
	pr, enc, err := containerModules(job.c)
	if err != nil {
		return err
	}
	payload, err := job.c.Segment(segCodes)
	if err != nil {
		return err
	}
	codes, err := enc.DecodeCodes(p, device.Accel, payload)
	if err != nil {
		return fmt.Errorf("core: %s decode: %w", enc.Name(), err)
	}
	dims := job.c.Header.Dims
	if len(codes) != dims.N() {
		return fmt.Errorf("core: %d codes for dims %v", len(codes), dims)
	}
	job.pr = pr
	job.pred = containerPrediction(job.c, codes)
	job.dims = dims
	job.eb = job.c.Header.EB
	return nil
}

// reconstruct inverts the prediction stage, writing straight into job.dst
// when it is set and the predictor supports in-place reconstruction.
func (job *decompressJob) reconstruct(p *device.Platform) error {
	if job.dst != nil && len(job.dst) == job.dims.N() {
		if ri, ok := job.pr.(ReconstructorInto); ok {
			if err := ri.ReconstructInto(p, device.Accel, job.pred, job.dims, job.eb, job.dst); err != nil {
				return fmt.Errorf("core: %s reconstruct: %w", job.pr.Name(), err)
			}
			job.vals = job.dst
			return nil
		}
	}
	vals, err := job.pr.Reconstruct(p, device.Accel, job.pred, job.dims, job.eb)
	if err != nil {
		return fmt.Errorf("core: %s reconstruct: %w", job.pr.Name(), err)
	}
	job.vals = vals
	return nil
}

// decompressMonolithicReport lowers a monolithic container onto the graph
// secondary-decode (when present) → decode → reconstruct, bounded by gctx.
func decompressMonolithicReport(gctx context.Context, p *device.Platform, blob []byte) ([]float32, grid.Dims, *ExecReport, error) {
	c, err := fzio.Unmarshal(blob)
	if err != nil {
		return nil, grid.Dims{}, nil, err
	}
	ctx := stf.NewCtx(p).Bind(gctx)
	job := &decompressJob{c: c}
	innerTok := stf.NewToken(ctx, "container")
	codesTok := stf.NewToken(ctx, "codes")

	if c.Has(segSec) {
		ctx.Task("secondary-decode").On(device.Host).Writes(innerTok.D()).
			Do(func(ti *stf.TaskInstance) error {
				inner, err := unwrapSecondary(p, job.c)
				if err != nil {
					return err
				}
				job.c = inner
				return nil
			})
	}
	ctx.Task("decode").On(device.Accel).Reads(innerTok.D()).Writes(codesTok.D()).
		Do(func(ti *stf.TaskInstance) error { return job.decode(p) })
	ctx.Task("reconstruct").On(device.Accel).Reads(codesTok.D()).
		Do(func(ti *stf.TaskInstance) error { return job.reconstruct(p) })

	err = ctx.Finalize()
	report := execReport(ctx)
	ctx.Release()
	if err != nil {
		return nil, grid.Dims{}, report, err
	}
	return job.vals, job.dims, report, nil
}

// decompressChunkedReport lowers a chunked container onto per-chunk
// fetch → decode → reconstruct sub-graphs that scatter into one output
// field; the chunks share no logical data, so they decode fully in
// parallel across the context's worker pools. workers is the chunk-level
// scheduler width (0 selects the platform width); the caller narrows the
// platform itself when the budget should also cap kernel widths.
func decompressChunkedReport(gctx context.Context, p *device.Platform, blob []byte, workers int) ([]float32, grid.Dims, *ExecReport, error) {
	cc, err := fzio.UnmarshalChunked(blob)
	if err != nil {
		return nil, grid.Dims{}, nil, err
	}
	dims := cc.Header.Dims
	out := make([]float32, dims.N())
	plane := dims.PlaneElems()

	if workers <= 0 {
		workers = p.Workers(device.Accel)
	}
	if workers > cc.NumChunks() {
		workers = cc.NumChunks()
	}
	ctx := stf.NewCtxN(p, workers).Bind(gctx)
	nextLo := 0
	for i := range cc.Chunks {
		i, lo := i, nextLo
		nextLo += cc.Chunks[i].Planes * plane
		want := dims.WithSlowExtent(cc.Chunks[i].Planes)
		prefix := fmt.Sprintf("c%d.", i)
		job := &decompressJob{dst: out[lo : lo+want.N()]}
		fetchTok := stf.NewToken(ctx, prefix+"container")
		codesTok := stf.NewToken(ctx, prefix+"codes")

		ctx.Task(prefix + "fetch").On(device.Host).Writes(fetchTok.D()).
			Do(func(ti *stf.TaskInstance) error {
				cb, err := cc.Chunk(i)
				if err != nil {
					return err
				}
				if fzio.IsChunked(cb) {
					return fmt.Errorf("core: chunk %d: nested chunked container", i)
				}
				c, err := fzio.Unmarshal(cb)
				if err != nil {
					return err
				}
				if c.Has(segSec) {
					if c, err = unwrapSecondary(p, c); err != nil {
						return err
					}
				}
				job.c = c
				return nil
			})
		ctx.Task(prefix + "decode").On(device.Accel).Reads(fetchTok.D()).Writes(codesTok.D()).
			Do(func(ti *stf.TaskInstance) error { return job.decode(p) })
		ctx.Task(prefix + "reconstruct").On(device.Accel).Reads(codesTok.D()).
			Do(func(ti *stf.TaskInstance) error {
				if job.dims != want {
					return fmt.Errorf("core: chunk %d dims %v, want %v", i, job.dims, want)
				}
				if err := job.reconstruct(p); err != nil {
					return err
				}
				if &job.vals[0] != &out[lo] {
					copy(out[lo:lo+len(job.vals)], job.vals)
				}
				return nil
			})
	}

	err = ctx.Finalize()
	report := execReport(ctx)
	ctx.Release()
	if err != nil {
		return nil, grid.Dims{}, report, err
	}
	return out, dims, report, nil
}
