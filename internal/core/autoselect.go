package core

import (
	"fmt"
	"math"

	"fzmod/internal/device"
	"fzmod/internal/grid"
	"fzmod/internal/predictor/spline"
	"fzmod/internal/preprocess"
)

// This file implements the auto-selection mechanism the paper lists as
// future work (§5, item 3): "developing an auto-selection mechanism for
// compression modules based on data characteristics, intended hardware
// environment, and needed quality metrics of the end user." Selection is
// driven by a cheap sampled profile of the data plus the caller's
// objective, and returns a composed Pipeline.

// Objective expresses what the user needs from the compressor.
type Objective int

const (
	// Balanced trades ratio, quality and throughput (FZMod-Default's
	// philosophy).
	Balanced Objective = iota
	// MaxThroughput prioritizes speed: no trees, no histograms.
	MaxThroughput
	// MaxRatio prioritizes compressed size; quality follows from the
	// error bound either way.
	MaxRatio
)

// String names the objective.
func (o Objective) String() string {
	switch o {
	case MaxThroughput:
		return "max-throughput"
	case MaxRatio:
		return "max-ratio"
	default:
		return "balanced"
	}
}

// DataProfile is the sampled characterization used for module selection.
type DataProfile struct {
	// DeltaQuanta is the mean |neighbor delta| in quantization-lattice
	// units at the resolved bound; ≫1 means the bound is tight relative
	// to the data's local variability (hard to predict).
	DeltaQuanta float64
	// SplineAdvantage is lorenzo-extrapolation sampled squared error over
	// cubic-interpolation sampled squared error (>1 favors the spline).
	SplineAdvantage float64
	// ZeroDeltaFrac is the fraction of sampled neighbor deltas that
	// quantize to exactly zero — high values mean dictionary/zero
	// elimination style encoders already capture most of the win.
	ZeroDeltaFrac float64
	// Rank is the dimensionality of the field.
	Rank int
}

// sampleBudget bounds profiling work regardless of field size.
const sampleBudget = 1 << 14

// Profile samples the data and computes the selection statistics.
func Profile(p *device.Platform, data []float32, dims grid.Dims, absEB float64) (DataProfile, error) {
	if dims.N() != len(data) || len(data) == 0 {
		return DataProfile{}, fmt.Errorf("core: profile: dims %v vs %d values", dims, len(data))
	}
	if absEB <= 0 {
		return DataProfile{}, fmt.Errorf("core: profile: bound must be positive")
	}
	n := len(data)
	stride := n/sampleBudget + 1
	inv2eb := 1.0 / (2 * absEB)

	var sumDelta float64
	var zeroDeltas, samples int
	var sseLorenzo, sseCubic float64
	for i := 3 * stride; i+3*stride < n; i += stride {
		// 1-D neighbor statistics along the fastest dimension.
		d := float64(data[i]) - float64(data[i-stride])
		q := math.Abs(d) * inv2eb
		sumDelta += q
		if math.Round(q) == 0 {
			zeroDeltas++
		}
		// Predictor shoot-out on the same sample: Lorenzo-style
		// extrapolation from one side vs centered cubic interpolation.
		// Both use the same stride so the comparison is fair at the
		// finest refinement level.
		lo := 2*float64(data[i-stride]) - float64(data[i-2*stride])
		cu := (-float64(data[i-3*stride]) + 9*float64(data[i-stride]) +
			9*float64(data[i+stride]) - float64(data[i+3*stride])) / 16
		el := float64(data[i]) - lo
		ec := float64(data[i]) - cu
		sseLorenzo += el * el
		sseCubic += ec * ec
		samples++
	}
	if samples == 0 {
		return DataProfile{Rank: dims.Rank()}, nil
	}
	prof := DataProfile{
		DeltaQuanta:   sumDelta / float64(samples),
		ZeroDeltaFrac: float64(zeroDeltas) / float64(samples),
		Rank:          dims.Rank(),
	}
	if sseCubic > 0 {
		prof.SplineAdvantage = sseLorenzo / sseCubic
	} else if sseLorenzo > 0 {
		prof.SplineAdvantage = math.Inf(1)
	} else {
		prof.SplineAdvantage = 1
	}
	return prof, nil
}

// AutoSelect composes a pipeline for the data, bound and objective. The
// returned profile documents why.
//
// Decision structure:
//   - MaxThroughput → FZMod-Speed (single-pass encoder); the secondary
//     encoder is attached because the dictionary stream keeps exploitable
//     structure (measured ~-23% in the secondary ablation) only when the
//     caller also wants ratio, so here it stays off.
//   - Otherwise the predictor follows the sampled shoot-out: the spline
//     needs a clear accuracy advantage (>1.5×) to justify its anchor and
//     traversal overheads; particle-like streams (rank 1, weak advantage)
//     stay on Lorenzo, reproducing the paper's HACC guidance.
//   - The Huffman histogram variant follows the expected code
//     distribution: near-exact prediction (sub-quantum deltas) means few
//     distinct codes, where the top-k histogram is the better module.
//   - MaxRatio additionally attaches the secondary encoder.
func AutoSelect(p *device.Platform, data []float32, dims grid.Dims, eb preprocess.ErrorBound, obj Objective) (*Pipeline, DataProfile, error) {
	absEB, _, err := preprocess.Resolve(p, device.Host, data, eb)
	if err != nil {
		return nil, DataProfile{}, err
	}
	prof, err := Profile(p, data, dims, absEB)
	if err != nil {
		return nil, DataProfile{}, err
	}

	if obj == MaxThroughput {
		return NewSpeed(), prof, nil
	}

	var pl *Pipeline
	useSpline := prof.SplineAdvantage > 1.5 && prof.Rank >= 2
	if useSpline {
		pl = &Pipeline{
			PipelineName: "fzmod-auto-quality",
			Pred:         SplinePredictor{Config: spline.Config{Mode: spline.Auto, TuneOrder: true}},
			Enc:          HuffmanEncoder{Hist: histForProfile(prof)},
			PredPlace:    device.Accel,
			EncPlace:     device.Host,
		}
	} else {
		pl = &Pipeline{
			PipelineName: "fzmod-auto-default",
			Pred:         LorenzoPredictor{},
			Enc:          HuffmanEncoder{Hist: histForProfile(prof)},
			PredPlace:    device.Accel,
			EncPlace:     device.Host,
		}
	}
	if obj == MaxRatio {
		pl = pl.WithSecondary(LZSecondary{})
	}
	return pl, prof, nil
}

// histForProfile picks the histogram module: spiky code distributions
// (most deltas quantize to zero) suit the top-k variant (§3.2).
func histForProfile(prof DataProfile) HistKind {
	if prof.ZeroDeltaFrac > 0.5 {
		return HistTopK
	}
	return HistStandard
}
