package core

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"fzmod/internal/fzio"
	"fzmod/internal/grid"
	"fzmod/internal/preprocess"
	"fzmod/internal/sdrbench"
)

// naiveExtract slices a selection out of a fully decoded field with plain
// nested loops — the independent oracle region reads are compared against.
func naiveExtract(full []float32, dims grid.Dims, sel RegionSel) []float32 {
	od := sel.Dims()
	out := make([]float32, od.N())
	for z := sel.Z0; z < sel.Z1; z++ {
		for y := sel.Y0; y < sel.Y1; y++ {
			for x := sel.X0; x < sel.X1; x++ {
				out[od.Idx(x-sel.X0, y-sel.Y0, z-sel.Z0)] = full[dims.Idx(x, y, z)]
			}
		}
	}
	return out
}

// streamFromChunked rewrites an FZMC container as its FZMS serialization;
// per-chunk payloads are bit-identical, only the framing differs.
func streamFromChunked(t *testing.T, blob []byte) []byte {
	t.Helper()
	cc, err := fzio.UnmarshalChunked(blob)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	sw, err := fzio.NewStreamWriter(&buf, cc.Header)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < cc.NumChunks(); i++ {
		payload, err := cc.Chunk(i)
		if err != nil {
			t.Fatal(err)
		}
		if err := sw.WriteChunk(payload, cc.Chunks[i].Planes); err != nil {
			t.Fatal(err)
		}
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// regionSels covers the shapes the acceptance criteria name: chunk-interior,
// chunk-boundary-crossing, multi-chunk, full-field, and thin windows.
// Chunks in these tests cover 8 planes each.
func regionSels(dims grid.Dims) []RegionSel {
	return []RegionSel{
		{X0: 2, X1: dims.X - 3, Y0: 1, Y1: dims.Y - 1, Z0: 2, Z1: 6}, // interior of chunk 0
		{X0: 0, X1: dims.X, Y0: 0, Y1: dims.Y, Z0: 6, Z1: 10},        // crosses the chunk 0/1 boundary
		{X0: 3, X1: 9, Y0: 4, Y1: 12, Z0: 4, Z1: dims.Z - 4},         // multi-chunk, thin xy window
		FullRegion(dims), // every chunk
		{X0: 0, X1: 1, Y0: 0, Y1: 1, Z0: dims.Z - 1, Z1: dims.Z},             // single element, last plane
		{X0: 0, X1: dims.X, Y0: dims.Y / 2, Y1: dims.Y/2 + 1, Z0: 7, Z1: 25}, // single-y slice across chunks
	}
}

// TestRegionMatchesFullDecompress is the acceptance criterion: every
// preset × FZMC/FZMS, DecompressRegion must be bit-identical to slicing
// the same selection out of a full Decompress.
func TestRegionMatchesFullDecompress(t *testing.T) {
	dims := grid.D3(24, 20, 32)
	data := sdrbench.GenHURR(dims, 31)
	eb := preprocess.RelBound(1e-4)
	for _, pl := range Presets() {
		blob, err := pl.CompressChunked(tp, data, dims, eb, ChunkOpts{ChunkElems: dims.PlaneElems() * 8, Workers: 4})
		if err != nil {
			t.Fatalf("%s: %v", pl.Name(), err)
		}
		full, _, err := Decompress(tp, blob)
		if err != nil {
			t.Fatalf("%s: %v", pl.Name(), err)
		}
		flavors := map[string][]byte{"fzmc": blob, "fzms": streamFromChunked(t, blob)}
		for flavor, artifact := range flavors {
			r, err := OpenRegion(tp, fzio.NewBytesFetcher(artifact), RegionOpts{Workers: 3})
			if err != nil {
				t.Fatalf("%s/%s: OpenRegion: %v", pl.Name(), flavor, err)
			}
			if r.Dims() != dims {
				t.Fatalf("%s/%s: Dims = %v, want %v", pl.Name(), flavor, r.Dims(), dims)
			}
			for _, sel := range regionSels(dims) {
				got, err := r.Read(sel)
				if err != nil {
					t.Fatalf("%s/%s sel %v: %v", pl.Name(), flavor, sel, err)
				}
				want := naiveExtract(full, dims, sel)
				if len(got) != len(want) {
					t.Fatalf("%s/%s sel %v: %d values, want %d", pl.Name(), flavor, sel, len(got), len(want))
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("%s/%s sel %v: value %d differs: %v vs %v",
							pl.Name(), flavor, sel, i, got[i], want[i])
					}
				}
			}
		}
	}
}

// Region reads over a monolithic FZMD artifact go through the same planner
// (one whole-field chunk).
func TestRegionMonolithic(t *testing.T) {
	dims := grid.D3(16, 12, 10)
	data := sdrbench.GenHURR(dims, 7)
	pl := NewDefault()
	blob, err := pl.CompressMonolithic(tp, data, dims, preprocess.RelBound(1e-4))
	if err != nil {
		t.Fatal(err)
	}
	full, _, err := Decompress(tp, blob)
	if err != nil {
		t.Fatal(err)
	}
	sel := RegionSel{X0: 1, X1: 9, Y0: 2, Y1: 11, Z0: 3, Z1: 7}
	got, err := DecompressRegion(tp, fzio.NewBytesFetcher(blob), sel, RegionOpts{})
	if err != nil {
		t.Fatal(err)
	}
	want := naiveExtract(full, dims, sel)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("value %d differs", i)
		}
	}
}

// 2-D fields partition along y; the window copy must handle the rank-2
// slab-local coordinates.
func TestRegion2D(t *testing.T) {
	dims := grid.D2(40, 48)
	data := sdrbench.GenHURR(dims, 13)
	pl := NewDefault()
	blob, err := pl.CompressChunked(tp, data, dims, preprocess.RelBound(1e-4),
		ChunkOpts{ChunkElems: dims.PlaneElems() * 8, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	full, _, err := Decompress(tp, blob)
	if err != nil {
		t.Fatal(err)
	}
	for _, sel := range []RegionSel{
		{X0: 3, X1: 30, Y0: 2, Y1: 7, Z0: 0, Z1: 1},  // interior of slab 0
		{X0: 0, X1: 40, Y0: 6, Y1: 20, Z0: 0, Z1: 1}, // crosses slab boundaries
		FullRegion(dims),
	} {
		got, err := DecompressRegion(tp, fzio.NewBytesFetcher(blob), sel, RegionOpts{})
		if err != nil {
			t.Fatalf("sel %v: %v", sel, err)
		}
		want := naiveExtract(full, dims, sel)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("sel %v: value %d differs", sel, i)
			}
		}
	}
}

// TestRegionPartialFetch is the acceptance criterion on fetch economy: a
// selection inside 1 of 8 chunks must read at most 1/4 of the container
// bytes, and a repeated read must be served from the LRU cache.
func TestRegionPartialFetch(t *testing.T) {
	dims := grid.D3(48, 48, 64) // 8 chunks of 8 planes
	data := sdrbench.GenHURR(dims, 5)
	pl := NewDefault()
	blob, err := pl.CompressChunked(tp, data, dims, preprocess.RelBound(1e-4),
		ChunkOpts{ChunkElems: dims.PlaneElems() * 8, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	for flavor, artifact := range map[string][]byte{"fzmc": blob, "fzms": streamFromChunked(t, blob)} {
		cf := fzio.NewCountingFetcher(fzio.NewBytesFetcher(artifact))
		cache := NewSlabCache(64 << 20)
		r, err := OpenRegion(tp, cf, RegionOpts{Workers: 2, Cache: cache})
		if err != nil {
			t.Fatalf("%s: %v", flavor, err)
		}
		sel := RegionSel{X0: 4, X1: 40, Y0: 4, Y1: 40, Z0: 26, Z1: 30} // interior of chunk 3
		if _, report, err := r.ReadReport(sel); err != nil {
			t.Fatalf("%s: %v", flavor, err)
		} else if report.Region.Chunks != 1 || report.Region.Decoded != 1 {
			t.Fatalf("%s: region stats %+v, want 1 chunk decoded", flavor, report.Region)
		}
		if got, limit := cf.BytesRead(), int64(len(artifact))/4; got > limit {
			t.Errorf("%s: 1-of-8-chunk read fetched %d of %d container bytes (limit %d)",
				flavor, got, len(artifact), limit)
		}

		// Repeated read: served from the LRU, no further payload fetches.
		fetched := cf.BytesRead()
		tp.ResetStats()
		_, report, err := r.ReadReport(sel)
		if err != nil {
			t.Fatalf("%s: repeat read: %v", flavor, err)
		}
		if report.Region.CacheHits != 1 || report.Region.Decoded != 0 {
			t.Fatalf("%s: repeat read stats %+v, want pure cache hit", flavor, report.Region)
		}
		if cf.BytesRead() != fetched {
			t.Errorf("%s: repeat read fetched %d more bytes", flavor, cf.BytesRead()-fetched)
		}
		if hits := tp.Stats().RegionCacheHits.Load(); hits != 1 {
			t.Errorf("%s: platform hit counter = %d, want 1", flavor, hits)
		}
		if s := cache.Stats(); s.Hits != 1 || s.Entries != 1 {
			t.Errorf("%s: cache stats %+v, want 1 hit / 1 entry", flavor, s)
		}
	}
}

// Overlapping selections share cached slabs: a second read that straddles
// an already-decoded chunk decodes only the new ones.
func TestRegionCacheOverlap(t *testing.T) {
	dims := grid.D3(24, 20, 32)
	data := sdrbench.GenHURR(dims, 31)
	pl := NewDefault()
	blob, err := pl.CompressChunked(tp, data, dims, preprocess.RelBound(1e-4),
		ChunkOpts{ChunkElems: dims.PlaneElems() * 8, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	cache := NewSlabCache(64 << 20)
	r, err := OpenRegion(tp, fzio.NewBytesFetcher(blob), RegionOpts{Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if _, report, err := r.ReadReport(RegionSel{X0: 0, X1: 24, Y0: 0, Y1: 20, Z0: 0, Z1: 10}); err != nil {
		t.Fatal(err)
	} else if report.Region.Decoded != 2 {
		t.Fatalf("first read decoded %d chunks, want 2", report.Region.Decoded)
	}
	_, report, err := r.ReadReport(RegionSel{X0: 0, X1: 24, Y0: 0, Y1: 20, Z0: 8, Z1: 20})
	if err != nil {
		t.Fatal(err)
	}
	if report.Region.CacheHits != 1 || report.Region.Decoded != 1 {
		t.Fatalf("overlap read stats %+v, want 1 hit + 1 decode", report.Region)
	}
	// A second Region over the same bytes shares the cache via content keys.
	r2, err := OpenRegion(tp, fzio.NewBytesFetcher(append([]byte(nil), blob...)), RegionOpts{Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	_, report, err = r2.ReadReport(RegionSel{X0: 0, X1: 24, Y0: 0, Y1: 20, Z0: 0, Z1: 8})
	if err != nil {
		t.Fatal(err)
	}
	if report.Region.CacheHits != 1 || report.Region.Decoded != 0 {
		t.Fatalf("cross-Region read stats %+v, want pure cache hit", report.Region)
	}
}

func TestRegionSelValidation(t *testing.T) {
	dims := grid.D3(16, 12, 10)
	data := sdrbench.GenHURR(dims, 7)
	blob, err := NewDefault().CompressMonolithic(tp, data, dims, preprocess.RelBound(1e-4))
	if err != nil {
		t.Fatal(err)
	}
	r, err := OpenRegion(tp, fzio.NewBytesFetcher(blob), RegionOpts{})
	if err != nil {
		t.Fatal(err)
	}
	bad := []RegionSel{
		{X0: -1, X1: 4, Y0: 0, Y1: 1, Z0: 0, Z1: 1},   // negative lo
		{X0: 0, X1: 17, Y0: 0, Y1: 1, Z0: 0, Z1: 1},   // past the x extent
		{X0: 0, X1: 16, Y0: 5, Y1: 5, Z0: 0, Z1: 1},   // empty axis
		{X0: 4, X1: 2, Y0: 0, Y1: 1, Z0: 0, Z1: 1},    // inverted
		{X0: 0, X1: 16, Y0: 0, Y1: 12, Z0: 9, Z1: 12}, // past the z extent
		{}, // all-empty
	}
	for _, sel := range bad {
		if _, err := r.Read(sel); err == nil {
			t.Errorf("selection %v accepted against dims %v", sel, dims)
		} else if !strings.Contains(err.Error(), "region") {
			t.Errorf("selection %v: unhelpful error %v", sel, err)
		}
	}
}

// limitedShortFetcher serves small (index-sized) ranges faithfully but
// under-delivers large (chunk payload) ranges — a misbehaving backend the
// read path must reject rather than decode garbage from.
type limitedShortFetcher struct{ inner fzio.ChunkFetcher }

func (s limitedShortFetcher) ReadRange(off int64, n int) ([]byte, error) {
	b, err := s.inner.ReadRange(off, n)
	if err != nil || n < 512 {
		return b, err
	}
	return b[:n/2], nil
}
func (s limitedShortFetcher) Size() (int64, error) { return s.inner.Size() }

// truncatingFetcher serves index reads (which start at offset zero for
// FZMC) but drops the connection on payload reads past cut, as a truncated
// HTTP response mid-transfer would.
type truncatingFetcher struct {
	inner fzio.ChunkFetcher
	cut   int64
}

func (tf truncatingFetcher) ReadRange(off int64, n int) ([]byte, error) {
	if off >= tf.cut {
		return nil, fmt.Errorf("range response truncated: connection reset")
	}
	return tf.inner.ReadRange(off, n)
}
func (tf truncatingFetcher) Size() (int64, error) { return tf.inner.Size() }

func TestRegionCorruption(t *testing.T) {
	dims := grid.D3(24, 20, 32)
	data := sdrbench.GenHURR(dims, 31)
	pl := NewDefault()
	blob, err := pl.CompressChunked(tp, data, dims, preprocess.RelBound(1e-4),
		ChunkOpts{ChunkElems: dims.PlaneElems() * 8, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	sel := RegionSel{X0: 0, X1: 24, Y0: 0, Y1: 20, Z0: 0, Z1: 6} // chunk 0 only
	ix, err := fzio.FetchIndex(fzio.NewBytesFetcher(blob))
	if err != nil {
		t.Fatal(err)
	}

	t.Run("crc flip in fetched chunk", func(t *testing.T) {
		bad := append([]byte(nil), blob...)
		bad[ix.Chunks[0].Offset+ix.Chunks[0].Length/2] ^= 0x10
		_, err := DecompressRegion(tp, fzio.NewBytesFetcher(bad), sel, RegionOpts{})
		if err == nil || !strings.Contains(err.Error(), "CRC") {
			t.Fatalf("flipped payload: got %v, want CRC error", err)
		}
	})
	t.Run("truncated range response", func(t *testing.T) {
		tf := truncatingFetcher{inner: fzio.NewBytesFetcher(blob), cut: int64(ix.Chunks[0].Offset)}
		_, err := DecompressRegion(tp, tf, sel, RegionOpts{})
		if err == nil || !strings.Contains(err.Error(), "fetching chunk") {
			t.Fatalf("truncated response: got %v, want wrapped fetch error", err)
		}
	})
	t.Run("short reads", func(t *testing.T) {
		_, err := DecompressRegion(tp, limitedShortFetcher{fzio.NewBytesFetcher(blob)}, sel, RegionOpts{})
		if err == nil {
			t.Fatal("short-read fetcher: silent acceptance")
		}
	})
	t.Run("truncated artifact", func(t *testing.T) {
		_, err := OpenRegion(tp, fzio.NewBytesFetcher(blob[:len(blob)-64]), RegionOpts{})
		if err == nil {
			t.Fatal("truncated artifact: index accepted")
		}
	})
}

// Region reads honor the Workers budget (smoke: budget 1 must still be
// correct and strictly narrower than the platform).
func TestRegionWorkersBudget(t *testing.T) {
	dims := grid.D3(24, 20, 32)
	data := sdrbench.GenHURR(dims, 31)
	pl := NewDefault()
	blob, err := pl.CompressChunked(tp, data, dims, preprocess.RelBound(1e-4),
		ChunkOpts{ChunkElems: dims.PlaneElems() * 8, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	full, _, err := Decompress(tp, blob)
	if err != nil {
		t.Fatal(err)
	}
	sel := FullRegion(dims)
	got, err := DecompressRegion(tp, fzio.NewBytesFetcher(blob), sel, RegionOpts{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := naiveExtract(full, dims, sel)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("value %d differs under Workers=1", i)
		}
	}
}
