package core

import (
	"math"
	"strings"
	"testing"

	"fzmod/internal/device"
	"fzmod/internal/grid"
	"fzmod/internal/metrics"
	"fzmod/internal/preprocess"
	"fzmod/internal/sdrbench"
)

var tp = device.NewTestPlatform()

// testField returns a compressible field for pipeline tests.
func testField() ([]float32, grid.Dims) {
	dims := grid.D3(48, 40, 8)
	return sdrbench.GenCESM(dims, 11), dims
}

func checkRoundtrip(t *testing.T, pl *Pipeline, data []float32, dims grid.Dims, eb preprocess.ErrorBound) []byte {
	t.Helper()
	blob, err := pl.Compress(tp, data, dims, eb)
	if err != nil {
		t.Fatalf("%s compress: %v", pl.Name(), err)
	}
	got, gotDims, err := pl.Decompress(tp, blob)
	if err != nil {
		t.Fatalf("%s decompress: %v", pl.Name(), err)
	}
	if gotDims != dims {
		t.Fatalf("%s dims = %v, want %v", pl.Name(), gotDims, dims)
	}
	// Resolve the same absolute bound for verification.
	absEB, _, err := preprocess.Resolve(tp, device.Accel, data, eb)
	if err != nil {
		t.Fatal(err)
	}
	if i := metrics.VerifyBound(data, got, absEB); i != -1 {
		t.Fatalf("%s bound violated at %d: %v vs %v (eb %g)", pl.Name(), i, data[i], got[i], absEB)
	}
	return blob
}

func TestPresetsRoundtripAllBounds(t *testing.T) {
	data, dims := testField()
	for _, pl := range Presets() {
		for _, eb := range []float64{1e-2, 1e-4, 1e-6} {
			checkRoundtrip(t, pl, data, dims, preprocess.RelBound(eb))
		}
	}
}

func TestPresetsRoundtripAllDatasets(t *testing.T) {
	for _, ds := range sdrbench.All() {
		dims := grid.D3(24, 20, 6)
		if ds == sdrbench.HACC {
			dims = grid.D1(30000)
		}
		data := sdrbench.Generate(ds, dims, 3)
		for _, pl := range Presets() {
			checkRoundtrip(t, pl, data, dims, preprocess.RelBound(1e-3))
		}
	}
}

func TestAbsBoundRoundtrip(t *testing.T) {
	data, dims := testField()
	checkRoundtrip(t, NewDefault(), data, dims, preprocess.AbsBound(0.05))
}

func TestSecondaryEncoderShrinksStream(t *testing.T) {
	data, dims := testField()
	base := NewDefault()
	plain := checkRoundtrip(t, base, data, dims, preprocess.RelBound(1e-4))
	withSec := checkRoundtrip(t, base.WithSecondary(LZSecondary{}), data, dims, preprocess.RelBound(1e-4))
	// LZ over a Huffman stream rarely helps much, but must roundtrip and
	// must not significantly expand.
	if len(withSec) > len(plain)+len(plain)/10+256 {
		t.Errorf("secondary expanded stream: %d vs %d", len(withSec), len(plain))
	}
	if !strings.Contains(NewDefault().WithSecondary(LZSecondary{}).Name(), "+lz") {
		t.Error("secondary should be reflected in pipeline name")
	}
}

func TestSpeedTradesRatioForSimplicity(t *testing.T) {
	// The paper's §3.3 design intent: FZMod-Speed has lower CR than
	// FZMod-Default on the same data.
	data, dims := testField()
	eb := preprocess.RelBound(1e-4)
	blobD := checkRoundtrip(t, NewDefault(), data, dims, eb)
	blobS := checkRoundtrip(t, NewSpeed(), data, dims, eb)
	if len(blobS) <= len(blobD) {
		t.Errorf("expected speed pipeline CR below default: default=%d speed=%d bytes", len(blobD), len(blobS))
	}
}

func TestQualityCompetitiveWithDefault(t *testing.T) {
	// Table 3 shape: FZMod-Quality trades places with FZMod-Default per
	// dataset but stays competitive. On smooth layered climate data the
	// interpolation predictor matches or beats Lorenzo.
	dims := grid.D3(48, 48, 8)
	data := sdrbench.GenCESM(dims, 5)
	eb := preprocess.RelBound(1e-4)
	blobD := checkRoundtrip(t, NewDefault(), data, dims, eb)
	blobQ := checkRoundtrip(t, NewQuality(), data, dims, eb)
	// The paper's own CESM column has Default modestly ahead of Quality;
	// our synthetic field widens that to ~1.25x, still the same ordering.
	if float64(len(blobQ)) > 1.35*float64(len(blobD)) {
		t.Errorf("quality pipeline should be competitive on climate data: %d vs %d", len(blobQ), len(blobD))
	}
	// And on the lognormal cosmology field it stays within 30%.
	dims = grid.D3(48, 48, 48)
	data = sdrbench.GenNYX(dims, 5)
	blobD = checkRoundtrip(t, NewDefault(), data, dims, eb)
	blobQ = checkRoundtrip(t, NewQuality(), data, dims, eb)
	if float64(len(blobQ)) > 1.3*float64(len(blobD)) {
		t.Errorf("quality pipeline too far behind on NYX: %d vs %d", len(blobQ), len(blobD))
	}
}

func TestSplinePredictsBetterThanLorenzoOnSmoothData(t *testing.T) {
	// The §3.3 rationale for FZMod-Quality: higher prediction accuracy.
	dims := grid.D3(48, 48, 8)
	data := sdrbench.GenCESM(dims, 5)
	absEB, _, err := preprocess.Resolve(tp, device.Accel, data, preprocess.RelBound(1e-4))
	if err != nil {
		t.Fatal(err)
	}
	lq, err := LorenzoPredictor{}.Predict(tp, device.Accel, data, dims, absEB)
	if err != nil {
		t.Fatal(err)
	}
	sq, err := NewQuality().Pred.Predict(tp, device.Accel, data, dims, absEB)
	if err != nil {
		t.Fatal(err)
	}
	exact := func(codes []uint16, r int) float64 {
		n := 0
		for _, c := range codes {
			if int(c) == r {
				n++
			}
		}
		return float64(n) / float64(len(codes))
	}
	le := exact(lq.Codes, lq.Radius)
	se := exact(sq.Codes, sq.Radius)
	if se <= le {
		t.Errorf("spline exact-prediction rate %.3f should exceed lorenzo %.3f", se, le)
	}
}

func TestDecompressForeignContainerFails(t *testing.T) {
	if _, _, err := Decompress(tp, []byte("not a container")); err == nil {
		t.Error("garbage input should fail")
	}
}

func TestCompressDimsMismatch(t *testing.T) {
	if _, err := NewDefault().Compress(tp, make([]float32, 7), grid.D1(8), preprocess.RelBound(1e-3)); err == nil {
		t.Error("dims mismatch should fail")
	}
}

func TestCompressBadBound(t *testing.T) {
	if _, err := NewDefault().Compress(tp, make([]float32, 8), grid.D1(8), preprocess.AbsBound(0)); err == nil {
		t.Error("zero bound should fail")
	}
}

func TestRegistryLookups(t *testing.T) {
	for _, name := range []string{"lorenzo", "spline", "spline-auto"} {
		if _, err := LookupPredictor(name); err != nil {
			t.Errorf("predictor %q: %v", name, err)
		}
	}
	for _, name := range []string{"huffman", "huffman-topk", "fzg"} {
		if _, err := LookupEncoder(name); err != nil {
			t.Errorf("encoder %q: %v", name, err)
		}
	}
	if _, err := LookupSecondary("lz"); err != nil {
		t.Errorf("secondary lz: %v", err)
	}
	if _, err := LookupPredictor("nope"); err == nil {
		t.Error("unknown predictor should fail")
	}
	if _, err := LookupEncoder("nope"); err == nil {
		t.Error("unknown encoder should fail")
	}
	if _, err := LookupSecondary("nope"); err == nil {
		t.Error("unknown secondary should fail")
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate registration should panic")
		}
	}()
	RegisterPredictor(LorenzoPredictor{})
}

func TestDescribe(t *testing.T) {
	d := NewDefault().Describe()
	for _, want := range []string{"fzmod-default", "lorenzo", "huffman", "accel", "host"} {
		if !strings.Contains(d, want) {
			t.Errorf("Describe missing %q: %s", want, d)
		}
	}
}

func TestCrossPipelineDecompression(t *testing.T) {
	// A container produced by one Pipeline value decompresses through
	// another (registry-driven): the container is self-describing.
	data, dims := testField()
	blob, err := NewQuality().Compress(tp, data, dims, preprocess.RelBound(1e-3))
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := NewSpeed().Decompress(tp, blob) // different pipeline object
	if err != nil {
		t.Fatal(err)
	}
	absEB, _, _ := preprocess.Resolve(tp, device.Accel, data, preprocess.RelBound(1e-3))
	if i := metrics.VerifyBound(data, got, absEB); i != -1 {
		t.Fatalf("bound violated at %d", i)
	}
}

func TestCorruptContainerSurfacesError(t *testing.T) {
	data, dims := testField()
	blob, err := NewDefault().Compress(tp, data, dims, preprocess.RelBound(1e-3))
	if err != nil {
		t.Fatal(err)
	}
	mut := append([]byte(nil), blob...)
	mut[len(mut)-10] ^= 0x55
	if _, _, err := Decompress(tp, mut); err == nil {
		t.Error("corrupt container should fail CRC or decode")
	}
}

func TestHuffmanEncoderZeroRadius(t *testing.T) {
	h := HuffmanEncoder{}
	if _, err := h.EncodeCodes(tp, device.Accel, []uint16{1}, 0); err == nil {
		t.Error("zero radius should fail")
	}
}

func TestRateDistortionOrdering(t *testing.T) {
	// Tighter bounds must give higher PSNR and lower CR for each preset.
	data, dims := testField()
	for _, pl := range Presets() {
		var prevPSNR float64
		var prevSize int
		for _, eb := range []float64{1e-2, 1e-3, 1e-4} {
			blob, err := pl.Compress(tp, data, dims, preprocess.RelBound(eb))
			if err != nil {
				t.Fatal(err)
			}
			got, _, err := pl.Decompress(tp, blob)
			if err != nil {
				t.Fatal(err)
			}
			q, err := metrics.Evaluate(tp, device.Accel, data, got)
			if err != nil {
				t.Fatal(err)
			}
			if math.IsInf(q.PSNR, 1) {
				continue
			}
			if q.PSNR <= prevPSNR {
				t.Errorf("%s: PSNR not increasing with tighter bound (%.1f after %.1f)", pl.Name(), q.PSNR, prevPSNR)
			}
			if len(blob) <= prevSize {
				t.Errorf("%s: stream not growing with tighter bound", pl.Name())
			}
			prevPSNR, prevSize = q.PSNR, len(blob)
		}
	}
}
