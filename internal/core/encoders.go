package core

import (
	"fmt"

	"fzmod/internal/device"
	"fzmod/internal/encoder/fzg"
	"fzmod/internal/encoder/huffman"
	"fzmod/internal/encoder/lzr"
	"fzmod/internal/histogram"
)

// HistKind selects which data-analysis module feeds the Huffman encoder
// (§3.2: standard histogram vs the top-k variant).
type HistKind int

const (
	// HistStandard is the privatized exact histogram.
	HistStandard HistKind = iota
	// HistTopK is the two-pass top-k histogram, preferable for the spiky
	// code distributions high-quality predictors produce.
	HistTopK
)

// HuffmanEncoder is the Huffman primary encoder module. Following
// FZMod-Default's hybrid design, the histogram runs at the accelerator
// place while the Huffman coding itself runs at the pipeline's encoder
// place — the presets put it on the host ("CPU-based Huffman encoding due
// to low GPU performance of Huffman encoders", §3.3), but the module honors
// whatever place the pipeline assigns, which the place ablation exercises.
type HuffmanEncoder struct {
	Hist HistKind
	// TopK bounds the exact-count set when Hist == HistTopK (0 = default).
	TopK int
}

// Name implements CodesEncoder.
func (h HuffmanEncoder) Name() string {
	if h.Hist == HistTopK {
		return "huffman-topk"
	}
	return "huffman"
}

// EncodeCodes implements CodesEncoder: histogram at the accelerator,
// entropy coding at the given place.
func (h HuffmanEncoder) EncodeCodes(p *device.Platform, place device.Place, codes []uint16, radius int) ([]byte, error) {
	bins := 2 * radius
	if bins <= 0 {
		return nil, fmt.Errorf("core: huffman needs positive radius, got %d", radius)
	}
	// The histogram is the GPU-accelerated analysis stage regardless of
	// where the entropy coding itself runs (§3.2).
	var hist []uint32
	var err error
	switch h.Hist {
	case HistTopK:
		hist, err = histogram.TopK(p, device.Accel, codes, bins, h.TopK)
	default:
		hist, err = histogram.Standard(p, device.Accel, codes, bins)
	}
	if err != nil {
		return nil, err
	}
	if len(codes) == 0 {
		hist[0] = 1 // codec requires a non-empty alphabet
	}
	return huffman.Compress(p, place, codes, hist)
}

// DecodeCodes implements CodesEncoder.
func (HuffmanEncoder) DecodeCodes(p *device.Platform, place device.Place, blob []byte) ([]uint16, error) {
	return huffman.Decompress(p, place, blob)
}

// FZGEncoder is the FZ-GPU bitshuffle+dictionary primary encoder module —
// the throughput play of FZMod-Speed. It runs entirely at the accelerator
// place.
type FZGEncoder struct{}

// Name implements CodesEncoder.
func (FZGEncoder) Name() string { return "fzg" }

// EncodeCodes implements CodesEncoder. The quantizer radius is the
// recentering pivot (see package fzg).
func (FZGEncoder) EncodeCodes(p *device.Platform, place device.Place, codes []uint16, radius int) ([]byte, error) {
	return fzg.Encode(p, place, codes, radius), nil
}

// DecodeCodes implements CodesEncoder.
func (FZGEncoder) DecodeCodes(p *device.Platform, place device.Place, blob []byte) ([]uint16, error) {
	return fzg.Decode(p, place, blob)
}

// LZSecondary is the zstd-slot secondary encoder backed by the lzr module.
type LZSecondary struct{}

// Name implements Secondary.
func (LZSecondary) Name() string { return "lz" }

// Compress implements Secondary.
func (LZSecondary) Compress(p *device.Platform, place device.Place, data []byte) ([]byte, error) {
	return lzr.Compress(p, place, data), nil
}

// Decompress implements Secondary.
func (LZSecondary) Decompress(p *device.Platform, place device.Place, blob []byte) ([]byte, error) {
	return lzr.Decompress(p, place, blob)
}
