package core

import (
	"fzmod/internal/device"
)

// Opts is the one options surface every facade entry point shares. The
// four historical names — ChunkOpts, StreamOpts, DecompressOpts,
// RegionOpts — are aliases of this struct, so existing call sites keep
// compiling unchanged while servers and tools configure every operation
// through a single shape. Each entry point reads the fields it
// understands and documents its own zero-value defaults; fields an
// operation does not use are ignored (a Window on a chunked compress, a
// Cache on a stream read).
//
// The zero value is always valid and selects that operation's defaults.
type Opts struct {
	// Workers is the operation's total parallelism budget: it bounds the
	// chunk-level scheduler width at each place AND the kernel width of
	// every launch the operation performs (the scheduler runs the graph
	// over a narrowed platform view sharing the machine's pools). Workers
	// = 1 therefore runs strictly serially. 0 selects each entry point's
	// default — the platform's worker width for chunked compress,
	// decompress and region reads; one worker per in-flight window slab
	// (capped at the platform width) for the streaming entry points.
	Workers int

	// ChunkElems is the target elements per chunk for the chunked and
	// streaming write paths; the builder rounds it to whole planes of the
	// slowest-varying dimension. 0 selects DefaultChunkElems. Read paths
	// ignore it (chunk geometry is recorded in the container).
	ChunkElems int

	// Window caps the slabs in flight on the streaming entry points (and
	// with them resident memory: the pipeline holds at most Window input
	// slabs plus their intermediates). 0 selects DefaultStreamWindow.
	// Non-streaming entry points ignore it.
	Window int

	// Cache, when non-nil, holds decoded slabs across region reads (and
	// across Regions — entries are keyed by container content). nil
	// disables caching: every read decodes the chunks it needs. Entry
	// points other than the region read path ignore it.
	Cache *SlabCache

	// VerifyProofs makes region reads check every fetched chunk payload
	// against the container's Merkle root (fzio.ContainerIndex.VerifyProof)
	// before decoding it, refusing tampered bytes with
	// fzio.ErrProofMismatch even when the 32-bit chunk CRC happens to
	// collide. Proof checking is on by default when the Region's fetcher
	// is (or wraps) an fzio.HTTPFetcher — remote bytes are the threat
	// model — and opt-in through this field otherwise. Artifacts without
	// a Merkle root (format version 1, monolithic) verify vacuously
	// either way. Entry points other than the region read path ignore it.
	VerifyProofs bool
}

// ChunkOpts configures the chunked compression graph; it is an alias of
// the unified Opts (ChunkElems and Workers are read, the zero value
// selects DefaultChunkElems-sized chunks and a parallelism budget as wide
// as the platform's worker count).
type ChunkOpts = Opts

// StreamOpts configures the streaming entry points; it is an alias of the
// unified Opts (ChunkElems, Window and Workers are read; the zero value
// selects DefaultChunkElems-sized chunks, a DefaultStreamWindow window,
// and scheduler pools as wide as the window).
type StreamOpts = Opts

// DecompressOpts configures the decompression executor; it is an alias of
// the unified Opts (only Workers is read; the zero value selects the
// platform's full worker width).
type DecompressOpts = Opts

// RegionOpts configures region reads; it is an alias of the unified Opts
// (Workers and Cache are read; the zero value decodes with the platform's
// full worker width and no slab cache).
type RegionOpts = Opts

// window resolves the effective streaming window for n chunks.
func (o Opts) window(n int) int {
	w := o.Window
	if w <= 0 {
		w = DefaultStreamWindow
	}
	if w > n {
		w = n
	}
	return w
}

// workers resolves the streaming scheduler width for a window.
func (o Opts) workers(p *device.Platform, place device.Place, window int) int {
	w := o.Workers
	if w <= 0 {
		w = window
	}
	if pw := p.Workers(place); w > pw {
		w = pw
	}
	if w < 1 {
		w = 1
	}
	return w
}
