package core

// The PR 1 executors — direct sequential stage calls for the monolithic
// path, a hand-rolled stream-pool fan-out for the chunked path — are kept
// here as the golden reference implementation. The unified STF-lowered
// engine must produce byte-identical containers; once a few releases have
// validated the graphs in anger this file can be deleted.

import (
	"bytes"
	"fmt"
	"testing"

	"fzmod/internal/device"
	"fzmod/internal/fzio"
	"fzmod/internal/grid"
	"fzmod/internal/preprocess"
)

// legacyCompressMonolithic is the PR 1 Pipeline.CompressMonolithic body.
func legacyCompressMonolithic(pl *Pipeline, p *device.Platform, data []float32, dims grid.Dims, eb preprocess.ErrorBound) ([]byte, error) {
	if dims.N() != len(data) {
		return nil, fmt.Errorf("core: dims %v do not match %d values", dims, len(data))
	}
	absEB, _, err := preprocess.Resolve(p, pl.PredPlace, data, eb)
	if err != nil {
		return nil, err
	}
	pred, err := pl.Pred.Predict(p, pl.PredPlace, data, dims, absEB)
	if err != nil {
		return nil, fmt.Errorf("core: %s predict: %w", pl.Pred.Name(), err)
	}
	payload, err := pl.Enc.EncodeCodes(p, pl.EncPlace, pred.Codes, pred.Radius)
	if err != nil {
		return nil, fmt.Errorf("core: %s encode: %w", pl.Enc.Name(), err)
	}

	relEB := 0.0
	if eb.Mode == preprocess.Rel {
		relEB = eb.Value
	}
	inner := fzio.New(fzio.Header{
		Pipeline: pl.PipelineName,
		Dims:     dims,
		EB:       absEB,
		RelEB:    relEB,
		Extra:    uint64(pred.Radius),
	})
	if err := inner.Add(segModules, []byte(pl.Pred.Name()+"\x00"+pl.Enc.Name())); err != nil {
		return nil, err
	}
	if err := inner.Add(segCodes, payload); err != nil {
		return nil, err
	}
	for _, k := range sortedKeys(pred.Extras) {
		if err := inner.Add(predPrefix+k, pred.Extras[k]); err != nil {
			return nil, err
		}
	}
	blob, err := inner.Marshal()
	if err != nil {
		return nil, err
	}
	if pl.Sec == nil {
		return blob, nil
	}

	z, err := pl.Sec.Compress(p, pl.EncPlace, blob)
	if err != nil {
		return nil, fmt.Errorf("core: %s secondary: %w", pl.Sec.Name(), err)
	}
	outer := fzio.New(fzio.Header{Pipeline: pl.PipelineName, Dims: dims, EB: absEB, RelEB: relEB})
	if err := outer.Add(segSec, []byte(pl.Sec.Name())); err != nil {
		return nil, err
	}
	if err := outer.Add(segZ, z); err != nil {
		return nil, err
	}
	return outer.Marshal()
}

// legacyCompressChunked is the PR 1 Pipeline.CompressChunked body: the
// ad-hoc stream-pool fan-out the STF scheduler replaced.
func legacyCompressChunked(pl *Pipeline, p *device.Platform, data []float32, dims grid.Dims, eb preprocess.ErrorBound, opts ChunkOpts) ([]byte, error) {
	if dims.N() != len(data) {
		return nil, fmt.Errorf("core: dims %v do not match %d values", dims, len(data))
	}
	planes := planesFor(dims, opts.ChunkElems)
	slabs := grid.SplitSlabs(dims, planes)
	if len(slabs) < 2 {
		return legacyCompressMonolithic(pl, p, data, dims, eb)
	}
	absEB, _, err := preprocess.Resolve(p, pl.PredPlace, data, eb)
	if err != nil {
		return nil, err
	}

	workers := opts.Workers
	if workers <= 0 {
		workers = p.Workers(pl.PredPlace)
	}
	if workers > len(slabs) {
		workers = len(slabs)
	}
	pool := p.NewStreamPool(pl.PredPlace, workers)
	blobs := make([][]byte, len(slabs))
	errs := make([]error, len(slabs))
	chunkEB := preprocess.AbsBound(absEB)
	for i, sl := range slabs {
		i, sl := i, sl
		pool.Stream(i).Enqueue(func() {
			chunk := data[sl.Lo : sl.Lo+sl.Dims.N()]
			blobs[i], errs[i] = legacyCompressMonolithic(pl, p, chunk, sl.Dims, chunkEB)
		})
	}
	pool.Sync()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("core: chunk %d: %w", i, err)
		}
	}

	relEB := 0.0
	if eb.Mode == preprocess.Rel {
		relEB = eb.Value
	}
	perPlanes := make([]int, len(slabs))
	for i, sl := range slabs {
		perPlanes[i] = sl.Planes
	}
	return fzio.MarshalChunked(fzio.ChunkedHeader{
		Pipeline: pl.PipelineName,
		Dims:     dims,
		EB:       absEB,
		RelEB:    relEB,
		Planes:   planes,
	}, blobs, perPlanes)
}

// TestUnifiedExecutorBitIdenticalToLegacy asserts the central refactoring
// invariant: the STF-lowered engine emits byte-identical containers to the
// PR 1 executors for every preset, monolithic and chunked, with and
// without the secondary encoder.
func TestUnifiedExecutorBitIdenticalToLegacy(t *testing.T) {
	data, dims := chunkField()
	eb := preprocess.RelBound(1e-4)
	opts := ChunkOpts{ChunkElems: dims.PlaneElems() * 8, Workers: 3}
	for _, preset := range Presets() {
		for _, sec := range []bool{false, true} {
			pl := preset
			if sec {
				pl = pl.WithSecondary(LZSecondary{})
			}
			name := pl.Name()

			wantMono, err := legacyCompressMonolithic(pl, tp, data, dims, eb)
			if err != nil {
				t.Fatalf("%s legacy monolithic: %v", name, err)
			}
			gotMono, err := pl.CompressMonolithic(tp, data, dims, eb)
			if err != nil {
				t.Fatalf("%s unified monolithic: %v", name, err)
			}
			if !bytes.Equal(wantMono, gotMono) {
				t.Errorf("%s: monolithic container differs from legacy executor", name)
			}

			wantChunked, err := legacyCompressChunked(pl, tp, data, dims, eb, opts)
			if err != nil {
				t.Fatalf("%s legacy chunked: %v", name, err)
			}
			gotChunked, err := pl.CompressChunked(tp, data, dims, eb, opts)
			if err != nil {
				t.Fatalf("%s unified chunked: %v", name, err)
			}
			if !bytes.Equal(wantChunked, gotChunked) {
				t.Errorf("%s: chunked container differs from legacy executor", name)
			}

			// And the unified decoder round-trips the legacy bytes.
			vals, gotDims, err := Decompress(tp, wantChunked)
			if err != nil {
				t.Fatalf("%s decompress legacy container: %v", name, err)
			}
			if gotDims != dims || len(vals) != dims.N() {
				t.Errorf("%s: bad geometry %v", name, gotDims)
			}
		}
	}
}
