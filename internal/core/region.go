package core

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"fzmod/internal/device"
	"fzmod/internal/fzio"
	"fzmod/internal/fzio/cache"
	"fzmod/internal/grid"
	"fzmod/internal/stf"
)

// This file is the random-access read path: instead of decoding a whole
// container, a region read plans against the container's chunk index
// (fzio.FetchIndex), fetches and decodes only the slab chunks a requested
// subvolume intersects — as per-chunk fetch → decode → reconstruct STF
// sub-graphs on the same work-stealing executor as full decompression —
// and assembles the caller-sized output by copying each slab's overlap
// window, handling the halo where a selection crosses slab boundaries.
// Decoded slabs can be kept in a shared size-bounded LRU (SlabCache), so
// many readers of overlapping regions pay each chunk's fetch-and-decode
// cost once.

// RegionSel selects the half-open subvolume [X0,X1) × [Y0,Y1) × [Z0,Z1) of
// a field in its native x-fastest coordinates. For 2-D fields use Z0=0,
// Z1=1; for 1-D fields additionally Y0=0, Y1=1 (matching the trailing
// singleton extents of grid.Dims).
type RegionSel struct {
	X0, X1 int
	Y0, Y1 int
	Z0, Z1 int
}

// FullRegion selects the entire field.
func FullRegion(d grid.Dims) RegionSel {
	return RegionSel{X1: d.X, Y1: d.Y, Z1: d.Z}
}

// Dims returns the selection's output geometry.
func (s RegionSel) Dims() grid.Dims {
	return grid.Dims{X: s.X1 - s.X0, Y: s.Y1 - s.Y0, Z: s.Z1 - s.Z0}
}

// String renders the selection in the CLI's i0:i1,j0:j1,k0:k1 syntax.
func (s RegionSel) String() string {
	return fmt.Sprintf("%d:%d,%d:%d,%d:%d", s.X0, s.X1, s.Y0, s.Y1, s.Z0, s.Z1)
}

// validate checks the selection against the field geometry: every axis
// must be a non-empty half-open range inside the extent.
func (s RegionSel) validate(d grid.Dims) error {
	type axis struct {
		name   string
		lo, hi int
		extent int
	}
	for _, a := range []axis{
		{"x", s.X0, s.X1, d.X},
		{"y", s.Y0, s.Y1, d.Y},
		{"z", s.Z0, s.Z1, d.Z},
	} {
		if a.lo < 0 || a.hi > a.extent || a.lo >= a.hi {
			return fmt.Errorf("core: region %s selects %s range [%d,%d) of a field with %s extent %d",
				s, a.name, a.lo, a.hi, a.name, a.extent)
		}
	}
	return nil
}

// slowRange returns the selection's half-open range along the field's
// slowest-varying dimension — the axis chunks tile.
func (s RegionSel) slowRange(d grid.Dims) (int, int) {
	switch d.Rank() {
	case 3:
		return s.Z0, s.Z1
	case 2:
		return s.Y0, s.Y1
	default:
		return s.X0, s.X1
	}
}

// slabKey identifies one decoded slab across every reader of the same
// artifact: the container's content key plus the chunk index.
type slabKey struct {
	container uint64
	chunk     int
}

// SlabCache is a size-bounded LRU of decoded slabs shared between region
// reads (and safe for concurrent use). Entries are keyed by container
// content — two Regions over byte-identical artifacts share entries — and
// the budget counts decoded float32 bytes.
//
// The cache is also the single-flight rendezvous: concurrent reads that
// miss on the same slab share one fetch→decode→insert flight instead of
// redundantly fetching and decoding it N times. The first reader to reach
// a missing slab leads its flight; later readers wait for the leader's
// slab (counted as dedup hits) and fall back to decoding themselves only
// if the leader fails.
type SlabCache struct {
	lru *cache.LRU[slabKey, []float32]

	mu      sync.Mutex
	flights map[slabKey]*slabFlight
	dedup   atomic.Int64
}

// slabFlight is one in-progress fetch→decode→insert shared by every
// reader that missed on the same slab while it ran. done closes when the
// leader finishes; slab/err are valid after.
type slabFlight struct {
	done chan struct{}
	slab []float32
	err  error
}

// NewSlabCache creates a cache bounded to budgetBytes of decoded slabs.
func NewSlabCache(budgetBytes int64) *SlabCache {
	return &SlabCache{
		lru:     cache.New[slabKey, []float32](budgetBytes),
		flights: make(map[slabKey]*slabFlight),
	}
}

// join enters the single-flight protocol for key. Exactly one of the
// returns is meaningful: a non-nil slab (the key landed in the cache
// since the read planned — no work at all), a flight to wait on
// (leader=false), or a freshly-registered flight the caller now leads
// (leader=true) and must complete with finish.
func (c *SlabCache) join(key slabKey) (slab []float32, fl *slabFlight, leader bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if v, ok := c.lru.Peek(key); ok {
		return v, nil, false
	}
	if fl, ok := c.flights[key]; ok {
		return nil, fl, false
	}
	fl = &slabFlight{done: make(chan struct{})}
	c.flights[key] = fl
	return nil, fl, true
}

// finish completes a flight: on success the slab is admitted to the LRU
// and handed to every waiter; on error the flight is simply retired, so
// the next joiner becomes a fresh leader. Idempotent — decode graphs call
// it from their error sweep as well as their success path.
func (c *SlabCache) finish(key slabKey, fl *slabFlight, slab []float32, err error) {
	c.mu.Lock()
	if c.flights[key] != fl { // already finished
		c.mu.Unlock()
		return
	}
	delete(c.flights, key)
	fl.slab, fl.err = slab, err
	if err == nil {
		c.lru.Put(key, slab, int64(len(slab))*4)
	}
	c.mu.Unlock()
	close(fl.done)
}

// DedupHits returns the chunk decodes avoided by joining another reader's
// in-flight decode.
func (c *SlabCache) DedupHits() int64 { return c.dedup.Load() }

// SlabCacheStats extends the LRU counters with the single-flight
// accounting.
type SlabCacheStats struct {
	cache.Stats
	// DedupHits is the cumulative chunk decodes served by another
	// reader's in-flight decode instead of a redundant fetch+decode.
	DedupHits int64
	// Flights is the in-progress decodes at snapshot time.
	Flights int64
}

// Stats snapshots the cache counters.
func (c *SlabCache) Stats() SlabCacheStats {
	c.mu.Lock()
	flights := int64(len(c.flights))
	c.mu.Unlock()
	return SlabCacheStats{Stats: c.lru.Stats(), DedupHits: c.dedup.Load(), Flights: flights}
}

// Reset drops every cached slab and zeroes the counters. In-progress
// flights are left to complete; only the LRU and counters reset.
func (c *SlabCache) Reset() {
	c.lru.Reset()
	c.dedup.Store(0)
}

// RegionStats summarizes one region read for the ExecReport: how much of
// the container the selection touched and how the slab cache fared.
type RegionStats struct {
	// Sel is the selection the read served.
	Sel RegionSel
	// Chunks is the number of slab chunks the selection intersects.
	Chunks int
	// Decoded is how many of those this read fetched and decoded itself.
	Decoded int
	// CacheHits is how many were served from the slab cache.
	CacheHits int
	// DedupHits is how many were served by joining another reader's
	// in-flight decode (single-flight) instead of fetching redundantly.
	DedupHits int
	// FetchAttempts / FetchRetries count the fetcher tries behind the
	// decoded chunks: attempts is every try issued, retries the tries
	// beyond each fetch's first. Both stay at Decoded/0 unless the
	// Region's fetcher is (or wraps) an fzio.RetryFetcher.
	FetchAttempts int64
	FetchRetries  int64
	// ProofVerified counts the fetched payloads this read checked against
	// the container's Merkle root (substantive checks only — reads over
	// rootless v1 or monolithic artifacts report 0 even with verification
	// enabled).
	ProofVerified int64
	// PayloadBytes is the compressed payload volume fetched for the
	// decoded chunks (index bytes excluded).
	PayloadBytes int64
	// Cache snapshots the slab cache after the read (zero without one).
	Cache SlabCacheStats
}

// Region is an open container positioned for random-access reads: the
// parsed chunk index plus the fetcher and options to serve selections
// with. Open once, read many; concurrent Reads are safe.
type Region struct {
	p      *device.Platform
	f      fzio.ChunkFetcher
	ix     *fzio.ContainerIndex
	opts   RegionOpts
	verify bool // proof-check fetched payloads (Opts.VerifyProofs or HTTP-backed)
}

// OpenRegion fetches the container index behind f (never the payloads) and
// returns a Region serving subvolume reads from it. Works on chunked
// (FZMC), streamed (FZMS) and monolithic (FZMD) artifacts; a monolithic
// artifact is treated as a single whole-field chunk. Merkle proof
// verification of fetched payloads is enabled by opts.VerifyProofs, and
// unconditionally when f is (or wraps) an fzio.HTTPFetcher.
func OpenRegion(p *device.Platform, f fzio.ChunkFetcher, opts RegionOpts) (*Region, error) {
	ix, err := fzio.FetchIndex(f)
	if err != nil {
		return nil, fmt.Errorf("core: opening region reader: %w", err)
	}
	return &Region{p: p, f: f, ix: ix, opts: opts, verify: opts.VerifyProofs || fzio.IsHTTPBacked(f)}, nil
}

// Dims returns the full field geometry of the underlying container.
func (r *Region) Dims() grid.Dims { return r.ix.Header.Dims }

// Index returns the parsed container index.
func (r *Region) Index() *fzio.ContainerIndex { return r.ix }

// Read decodes the selected subvolume into a freshly allocated
// sel.Dims().N()-element field (x-fastest, like every field in the
// framework).
func (r *Region) Read(sel RegionSel) ([]float32, error) {
	vals, _, err := r.ReadReportCtx(context.Background(), sel)
	return vals, err
}

// ReadCtx is Read bounded by gctx: a cancellation or deadline stops
// fetch/decode task bodies not yet started at their dispatch boundary,
// drains the sub-graphs, and returns the context's error. Chunks already
// decoded are still admitted to the cache.
func (r *Region) ReadCtx(gctx context.Context, sel RegionSel) ([]float32, error) {
	vals, _, err := r.ReadReportCtx(gctx, sel)
	return vals, err
}

// ReadReport is Read returning the executor report; report.Region carries
// the chunk and cache accounting.
func (r *Region) ReadReport(sel RegionSel) ([]float32, *ExecReport, error) {
	return r.ReadReportCtx(context.Background(), sel)
}

// ReadReportCtx is ReadCtx returning the executor report.
func (r *Region) ReadReportCtx(gctx context.Context, sel RegionSel) ([]float32, *ExecReport, error) {
	dims := r.ix.Header.Dims
	if err := sel.validate(dims); err != nil {
		return nil, nil, err
	}
	s0, s1 := sel.slowRange(dims)

	// Plan: walk the chunk table accumulating plane coverage and keep the
	// chunks whose slab [lo, lo+planes) intersects the selection's slow
	// range.
	var needs []regionNeed
	lo := 0
	for i, ref := range r.ix.Chunks {
		if lo < s1 && lo+ref.Planes > s0 {
			needs = append(needs, regionNeed{chunk: i, lo: lo, planes: ref.Planes})
		}
		lo += ref.Planes
	}
	if lo != dims.SlowExtent() {
		return nil, nil, fmt.Errorf("core: index covers %d planes, field has %d", lo, dims.SlowExtent())
	}

	out := make([]float32, sel.Dims().N())
	stats := &RegionStats{Sel: sel, Chunks: len(needs)}
	st := r.p.Stats()
	var before SlabCacheStats
	if r.opts.Cache != nil {
		before = r.opts.Cache.Stats()
	}

	// Serve cache hits by direct window copy; collect the misses for the
	// decode graph.
	var misses []regionNeed
	for _, nd := range needs {
		if r.opts.Cache != nil {
			if slab, ok := r.opts.Cache.lru.Get(slabKey{r.ix.Key, nd.chunk}); ok {
				copyWindow(out, sel, dims, slab, nd.lo, nd.planes)
				stats.CacheHits++
				st.RegionCacheHits.Add(1)
				continue
			}
			st.RegionCacheMiss.Add(1)
		}
		misses = append(misses, nd)
	}
	report := &ExecReport{Region: stats}
	var decodeErr error
	if len(misses) > 0 {
		var acct fetchAccounting
		report, decodeErr = r.decodeMisses(gctx, out, sel, misses, &acct)
		report.Region = stats
		stats.DedupHits = int(acct.dedup.Load())
		stats.FetchAttempts = acct.attempts.Load()
		stats.FetchRetries = acct.retries.Load()
		stats.PayloadBytes = acct.payloadBytes.Load()
		stats.ProofVerified = acct.proofVerified.Load()
	}
	stats.Decoded = len(misses) - stats.DedupHits
	if r.opts.Cache != nil {
		after := r.opts.Cache.Stats()
		st.RegionCacheEvict.Add(after.Evictions - before.Evictions)
		stats.Cache = after
	}
	if decodeErr != nil {
		return nil, report, decodeErr
	}
	return out, report, nil
}

// regionNeed is one chunk a selection intersects: its index in the
// container's chunk table and the plane range its slab covers.
type regionNeed struct {
	chunk  int // index into the container's chunk table
	lo     int // first plane the slab covers
	planes int
}

// fetchAccounting accumulates per-read fetch evidence from concurrently
// running task bodies; ReadReportCtx folds it into RegionStats.
type fetchAccounting struct {
	dedup         atomic.Int64 // chunks served by another reader's flight
	attempts      atomic.Int64 // fetcher tries issued by this read
	retries       atomic.Int64 // tries beyond each fetch's first
	payloadBytes  atomic.Int64 // compressed bytes actually fetched
	proofVerified atomic.Int64 // payloads checked against the Merkle root
}

// attemptFetcher is the optional per-call attempt reporting surface of
// fzio.RetryFetcher; plain fetchers fall back to one attempt per fetch.
type attemptFetcher interface {
	ReadRangeAttempts(off int64, n int) ([]byte, int, error)
}

// missState carries one miss's single-flight position across its three
// tasks: the flight it leads (nil when the chunk is decoded privately or
// served by someone else's flight) and the slab another flight delivered
// (non-nil skips the decode entirely).
type missState struct {
	job    *decompressJob
	flight *slabFlight
	shared []float32
}

// decodeMisses runs the fetch → decode → reconstruct sub-graphs for the
// chunks not served from cache, scattering each slab's overlap window into
// out and (when a cache is configured) admitting the decoded slab. With a
// shared cache the misses are single-flight deduplicated: a chunk another
// reader is already decoding is awaited (in the Host-place fetch task,
// which blocks on I/O anyway) rather than fetched again, and a chunk this
// read decodes is published to every waiter.
func (r *Region) decodeMisses(gctx context.Context, out []float32, sel RegionSel, misses []regionNeed, acct *fetchAccounting) (*ExecReport, error) {
	dims := r.ix.Header.Dims
	workers := r.opts.Workers
	if workers <= 0 {
		workers = r.p.Workers(device.Accel)
	}
	if workers > len(misses) {
		workers = len(misses)
	}
	// The budget caps the whole operation: chunk-level width and, through
	// the narrowed platform view, every kernel launch.
	exec := r.p.WithWorkers(workers)
	ctx := stf.NewCtxN(exec, workers).Bind(gctx)
	states := make([]*missState, len(misses))

	for i, nd := range misses {
		nd := nd
		ref := r.ix.Chunks[nd.chunk]
		want := dims.WithSlowExtent(nd.planes)
		key := slabKey{r.ix.Key, nd.chunk}
		slab := make([]float32, want.N()) // plain alloc: may outlive the ctx in the cache
		prefix := fmt.Sprintf("r%d.", nd.chunk)
		ms := &missState{job: &decompressJob{dst: slab}}
		states[i] = ms
		fetchTok := stf.NewToken(ctx, prefix+"container")
		codesTok := stf.NewToken(ctx, prefix+"codes")

		ctx.Task(prefix + "fetch").On(device.Host).Writes(fetchTok.D()).
			Do(func(ti *stf.TaskInstance) error {
				if r.opts.Cache != nil {
					for {
						cached, fl, leader := r.opts.Cache.join(key)
						if cached != nil {
							// Landed in the cache since this read planned.
							ms.shared = cached
							r.opts.Cache.dedup.Add(1)
							acct.dedup.Add(1)
							return nil
						}
						if leader {
							ms.flight = fl
							break
						}
						select {
						case <-fl.done:
						case <-ctx.Context().Done():
							return ctx.Context().Err()
						}
						if fl.err == nil {
							ms.shared = fl.slab
							r.opts.Cache.dedup.Add(1)
							acct.dedup.Add(1)
							return nil
						}
						// The leader failed; loop to claim the flight and
						// decode it ourselves.
					}
				}
				payload, err := r.fetchChunk(nd.chunk, ref, acct)
				if err != nil {
					return err
				}
				c, err := fzio.Unmarshal(payload)
				if err != nil {
					return fmt.Errorf("core: parsing chunk %d: %w", nd.chunk, err)
				}
				if c.Has(segSec) {
					if c, err = unwrapSecondary(exec, c); err != nil {
						return fmt.Errorf("core: chunk %d: %w", nd.chunk, err)
					}
				}
				ms.job.c = c
				return nil
			})
		ctx.Task(prefix + "decode").On(device.Accel).Reads(fetchTok.D()).Writes(codesTok.D()).
			Do(func(ti *stf.TaskInstance) error {
				if ms.shared != nil {
					return nil
				}
				return ms.job.decode(exec)
			})
		ctx.Task(prefix + "reconstruct").On(device.Accel).Reads(codesTok.D()).
			Do(func(ti *stf.TaskInstance) error {
				if ms.shared != nil {
					copyWindow(out, sel, dims, ms.shared, nd.lo, nd.planes)
					return nil
				}
				job := ms.job
				if job.dims != want {
					return fmt.Errorf("core: chunk %d dims %v, want %v", nd.chunk, job.dims, want)
				}
				if err := job.reconstruct(exec); err != nil {
					return err
				}
				if &job.vals[0] != &slab[0] {
					copy(slab, job.vals)
				}
				copyWindow(out, sel, dims, slab, nd.lo, nd.planes)
				if r.opts.Cache != nil {
					r.opts.Cache.finish(key, ms.flight, slab, nil)
				}
				return nil
			})
	}

	err := ctx.Finalize()
	// Flights this read still leads — its tasks failed, were canceled, or
	// never dispatched — must complete with the graph's error, or waiters
	// (and every future joiner) would hang on an abandoned flight.
	if r.opts.Cache != nil {
		for i := range misses {
			if fl := states[i].flight; fl != nil {
				ferr := err
				if ferr == nil {
					ferr = fmt.Errorf("core: chunk decode abandoned")
				}
				r.opts.Cache.finish(slabKey{r.ix.Key, misses[i].chunk}, fl, nil, ferr)
			}
		}
	}
	report := execReport(ctx)
	ctx.Release()
	return report, err
}

// fetchChunk fetches and verifies one chunk payload, recording attempt
// and byte accounting.
func (r *Region) fetchChunk(chunk int, ref fzio.ChunkRef, acct *fetchAccounting) ([]byte, error) {
	var payload []byte
	var err error
	if af, ok := r.f.(attemptFetcher); ok {
		var attempts int
		payload, attempts, err = af.ReadRangeAttempts(int64(ref.Offset), ref.Length)
		acct.attempts.Add(int64(attempts))
		acct.retries.Add(int64(attempts - 1))
	} else {
		payload, err = r.f.ReadRange(int64(ref.Offset), ref.Length)
		acct.attempts.Add(1)
	}
	if err != nil {
		return nil, fmt.Errorf("core: fetching chunk %d: %w", chunk, err)
	}
	acct.payloadBytes.Add(int64(len(payload)))
	if err := r.ix.VerifyChunk(chunk, payload); err != nil {
		return nil, fmt.Errorf("core: fetching chunk %d: %w", chunk, err)
	}
	if r.verify && r.ix.HasProofs() {
		if err := r.ix.VerifyProof(chunk, payload); err != nil {
			return nil, fmt.Errorf("core: fetching chunk %d: %w", chunk, err)
		}
		acct.proofVerified.Add(1)
	}
	if fzio.IsChunked(payload) || fzio.IsStream(payload) {
		return nil, fmt.Errorf("core: chunk %d: nested chunked container", chunk)
	}
	return payload, nil
}

// copyWindow copies the overlap between the selection and one decoded slab
// into the output field. slab covers planes [slabLo, slabLo+planes) of the
// field's slowest dimension at full extent in the faster ones; rows along
// x are contiguous in both source and destination, so the copy runs
// row-at-a-time.
func copyWindow(out []float32, sel RegionSel, dims grid.Dims, slab []float32, slabLo, planes int) {
	od := sel.Dims()
	switch dims.Rank() {
	case 3:
		sd := grid.Dims{X: dims.X, Y: dims.Y, Z: planes}
		z0, z1 := maxInt(sel.Z0, slabLo), minInt(sel.Z1, slabLo+planes)
		nx := sel.X1 - sel.X0
		for z := z0; z < z1; z++ {
			for y := sel.Y0; y < sel.Y1; y++ {
				src := sd.Idx(sel.X0, y, z-slabLo)
				dst := od.Idx(0, y-sel.Y0, z-sel.Z0)
				copy(out[dst:dst+nx], slab[src:src+nx])
			}
		}
	case 2:
		sd := grid.Dims{X: dims.X, Y: planes, Z: 1}
		y0, y1 := maxInt(sel.Y0, slabLo), minInt(sel.Y1, slabLo+planes)
		nx := sel.X1 - sel.X0
		for y := y0; y < y1; y++ {
			src := sd.Idx(sel.X0, y-slabLo, 0)
			dst := od.Idx(0, y-sel.Y0, 0)
			copy(out[dst:dst+nx], slab[src:src+nx])
		}
	default:
		x0, x1 := maxInt(sel.X0, slabLo), minInt(sel.X1, slabLo+planes)
		copy(out[x0-sel.X0:x1-sel.X0], slab[x0-slabLo:x1-slabLo])
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// DecompressRegion decodes the selected subvolume of the container behind
// f, fetching only the chunks the selection intersects. One-shot
// convenience over OpenRegion + Read; use a Region (and a SlabCache in
// opts) when serving repeated selections from the same artifact.
func DecompressRegion(p *device.Platform, f fzio.ChunkFetcher, sel RegionSel, opts RegionOpts) ([]float32, error) {
	vals, _, err := DecompressRegionReport(p, f, sel, opts)
	return vals, err
}

// DecompressRegionCtx is DecompressRegion bounded by gctx, with the
// cancellation semantics of Region.ReadCtx.
func DecompressRegionCtx(gctx context.Context, p *device.Platform, f fzio.ChunkFetcher, sel RegionSel, opts RegionOpts) ([]float32, error) {
	r, err := OpenRegion(p, f, opts)
	if err != nil {
		return nil, err
	}
	vals, _, err := r.ReadReportCtx(gctx, sel)
	return vals, err
}

// DecompressRegionReport is DecompressRegion returning the executor
// report; report.Region carries the chunk and cache accounting.
func DecompressRegionReport(p *device.Platform, f fzio.ChunkFetcher, sel RegionSel, opts RegionOpts) ([]float32, *ExecReport, error) {
	r, err := OpenRegion(p, f, opts)
	if err != nil {
		return nil, nil, err
	}
	return r.ReadReport(sel)
}
