package core

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"fzmod/internal/device"
	"fzmod/internal/fzio"
	"fzmod/internal/grid"
	"fzmod/internal/preprocess"
	"fzmod/internal/stf"
)

// Pipeline composes registered modules into a compressor, the framework's
// central object (§3.3). PredPlace and EncPlace assign each stage to an
// execution place, expressing hybrid designs like FZMod-Default's
// GPU-predictor + CPU-Huffman split. Every entry point lowers to an STF
// task graph executed by the engine in exec.go; the methods here only
// validate inputs, resolve the error bound, and build graphs.
type Pipeline struct {
	PipelineName string
	Pred         Predictor
	Enc          CodesEncoder
	Sec          Secondary // nil disables the secondary stage
	PredPlace    device.Place
	EncPlace     device.Place
}

// Name implements Compressor.
func (pl *Pipeline) Name() string { return pl.PipelineName }

// WithSecondary returns a copy of the pipeline with the secondary encoder
// attached, as in "zstd can be attempted" (§3.2).
func (pl *Pipeline) WithSecondary(s Secondary) *Pipeline {
	cp := *pl
	cp.Sec = s
	cp.PipelineName = pl.PipelineName + "+" + s.Name()
	return &cp
}

// segment names used by the container layout.
const (
	segCodes   = "codes"
	segModules = "modules"
	segSec     = "sec"
	segZ       = "z"
	predPrefix = "pred."
)

// Compress implements Compressor. Fields of at least AutoChunkElems
// elements are routed through the chunked graph (several sub-graphs joined
// by an assembly task, see chunked.go); smaller fields lower to a
// single-chunk graph.
func (pl *Pipeline) Compress(p *device.Platform, data []float32, dims grid.Dims, eb preprocess.ErrorBound) ([]byte, error) {
	return pl.CompressCtx(context.Background(), p, data, dims, eb)
}

// CompressCtx is Compress bounded by gctx: a cancellation or deadline
// stops task bodies not yet started at their dispatch boundary, drains
// the graph, sweeps pooled intermediates back, and returns the context's
// error — the entry point a server maps request contexts onto.
func (pl *Pipeline) CompressCtx(gctx context.Context, p *device.Platform, data []float32, dims grid.Dims, eb preprocess.ErrorBound) ([]byte, error) {
	if dims.N() >= AutoChunkElems {
		return pl.CompressChunkedCtx(gctx, p, data, dims, eb, ChunkOpts{})
	}
	blob, _, err := pl.CompressMonolithicReportCtx(gctx, p, data, dims, eb)
	return blob, err
}

// CompressMonolithic compresses the whole field as one block — a
// single-chunk task graph — producing a monolithic container. It is the
// explicit opt-out from auto-chunking.
func (pl *Pipeline) CompressMonolithic(p *device.Platform, data []float32, dims grid.Dims, eb preprocess.ErrorBound) ([]byte, error) {
	blob, _, err := pl.CompressMonolithicReportCtx(context.Background(), p, data, dims, eb)
	return blob, err
}

// CompressMonolithicReport is CompressMonolithic returning the executor
// report alongside the container.
func (pl *Pipeline) CompressMonolithicReport(p *device.Platform, data []float32, dims grid.Dims, eb preprocess.ErrorBound) ([]byte, *ExecReport, error) {
	return pl.CompressMonolithicReportCtx(context.Background(), p, data, dims, eb)
}

// CompressMonolithicReportCtx is CompressMonolithicReport bounded by
// gctx, with the cancellation semantics of CompressCtx.
func (pl *Pipeline) CompressMonolithicReportCtx(gctx context.Context, p *device.Platform, data []float32, dims grid.Dims, eb preprocess.ErrorBound) ([]byte, *ExecReport, error) {
	if dims.N() != len(data) {
		return nil, nil, fmt.Errorf("core: dims %v do not match %d values", dims, len(data))
	}
	absEB, _, err := preprocess.Resolve(p, pl.PredPlace, data, eb)
	if err != nil {
		return nil, nil, err
	}
	relEB := 0.0
	if eb.Mode == preprocess.Rel {
		relEB = eb.Value
	}
	ctx := stf.NewCtx(p).Bind(gctx)
	job := pl.addCompressTasks(ctx, "", data, dims, absEB, relEB, false)
	err = ctx.Finalize()
	report := execReport(ctx)
	ctx.Release()
	if err != nil {
		job.releaseSlabs(p.ScratchPool())
		return nil, report, err
	}
	return job.blob, report, nil
}

// buildInner assembles one block's stages into the monolithic fzio
// container structure — header, module names, encoded code stream, and the
// predictor's side channels in sorted order — without serializing it:
// segments reference the stage outputs, so callers can size the container
// exactly (MarshaledSize) and serialize it straight into its final
// destination (MarshalInto), which is what lets the chunked executor
// scatter-write chunks into the assembled container with no staging blob.
func (pl *Pipeline) buildInner(dims grid.Dims, absEB, relEB float64, pred *Prediction, payload []byte) (*fzio.Container, error) {
	inner := fzio.New(fzio.Header{
		Pipeline: pl.PipelineName,
		Dims:     dims,
		EB:       absEB,
		RelEB:    relEB,
		Extra:    uint64(pred.Radius),
	})
	if err := inner.Add(segModules, []byte(pl.Pred.Name()+"\x00"+pl.Enc.Name())); err != nil {
		return nil, err
	}
	if err := inner.Add(segCodes, payload); err != nil {
		return nil, err
	}
	for _, k := range sortedKeys(pred.Extras) {
		if err := inner.Add(predPrefix+k, pred.Extras[k]); err != nil {
			return nil, err
		}
	}
	return inner, nil
}

// wrapSecondary applies the secondary encoder over a serialized inner
// container and wraps the result in the outer container layout.
func (pl *Pipeline) wrapSecondary(p *device.Platform, place device.Place, blob []byte, dims grid.Dims, absEB, relEB float64) ([]byte, error) {
	z, err := pl.Sec.Compress(p, place, blob)
	if err != nil {
		return nil, fmt.Errorf("core: %s secondary: %w", pl.Sec.Name(), err)
	}
	outer := fzio.New(fzio.Header{Pipeline: pl.PipelineName, Dims: dims, EB: absEB, RelEB: relEB})
	if err := outer.Add(segSec, []byte(pl.Sec.Name())); err != nil {
		return nil, err
	}
	if err := outer.Add(segZ, z); err != nil {
		return nil, err
	}
	return outer.Marshal()
}

// Decompress implements Compressor. It ignores the receiver's module
// configuration: containers are self-describing, so any registered module
// set can decode them.
func (pl *Pipeline) Decompress(p *device.Platform, blob []byte) ([]float32, grid.Dims, error) {
	return Decompress(p, blob)
}

// Decompress reconstructs a field from any FZModules container using the
// module registry, through the same task-graph engine as compression.
func Decompress(p *device.Platform, blob []byte) ([]float32, grid.Dims, error) {
	vals, dims, _, err := DecompressReport(p, blob)
	return vals, dims, err
}

// DecompressCtx is Decompress bounded by gctx, with the cancellation
// semantics of CompressCtx: unstarted task bodies are abandoned at their
// dispatch boundary and the context's error is returned.
func DecompressCtx(gctx context.Context, p *device.Platform, blob []byte) ([]float32, grid.Dims, error) {
	vals, dims, _, err := DecompressReportWithOptsCtx(gctx, p, blob, DecompressOpts{})
	return vals, dims, err
}

// DecompressWithOpts is Decompress with an explicit parallelism budget.
func DecompressWithOpts(p *device.Platform, blob []byte, opts DecompressOpts) ([]float32, grid.Dims, error) {
	vals, dims, _, err := DecompressReportWithOpts(p, blob, opts)
	return vals, dims, err
}

// DecompressWithOptsCtx is DecompressWithOpts bounded by gctx.
func DecompressWithOptsCtx(gctx context.Context, p *device.Platform, blob []byte, opts DecompressOpts) ([]float32, grid.Dims, error) {
	vals, dims, _, err := DecompressReportWithOptsCtx(gctx, p, blob, opts)
	return vals, dims, err
}

// DecompressReport is Decompress returning the executor report: chunked
// containers lower to per-chunk fetch → decode → reconstruct sub-graphs,
// monolithic containers to a single chain with the secondary-decode task
// inserted when the container carries a secondary layer.
func DecompressReport(p *device.Platform, blob []byte) ([]float32, grid.Dims, *ExecReport, error) {
	return DecompressReportWithOpts(p, blob, DecompressOpts{})
}

// DecompressReportWithOpts is DecompressReport with an explicit
// parallelism budget.
func DecompressReportWithOpts(p *device.Platform, blob []byte, opts DecompressOpts) ([]float32, grid.Dims, *ExecReport, error) {
	return DecompressReportWithOptsCtx(context.Background(), p, blob, opts)
}

// DecompressReportWithOptsCtx is DecompressReportWithOpts bounded by
// gctx.
func DecompressReportWithOptsCtx(gctx context.Context, p *device.Platform, blob []byte, opts DecompressOpts) ([]float32, grid.Dims, *ExecReport, error) {
	if opts.Workers > 0 {
		p = p.WithWorkers(opts.Workers)
	}
	if fzio.IsChunked(blob) {
		return decompressChunkedReport(gctx, p, blob, opts.Workers)
	}
	return decompressMonolithicReport(gctx, p, blob)
}

// unwrapSecondary decodes a container's secondary layer and parses the
// inner container it wraps.
func unwrapSecondary(p *device.Platform, c *fzio.Container) (*fzio.Container, error) {
	secName, _ := c.Segment(segSec)
	sec, err := LookupSecondary(string(secName))
	if err != nil {
		return nil, err
	}
	z, err := c.Segment(segZ)
	if err != nil {
		return nil, err
	}
	inner, err := sec.Decompress(p, device.Host, z)
	if err != nil {
		return nil, fmt.Errorf("core: %s secondary: %w", sec.Name(), err)
	}
	return fzio.Unmarshal(inner)
}

// containerModules resolves the predictor and encoder a container records.
func containerModules(c *fzio.Container) (Predictor, CodesEncoder, error) {
	modBytes, err := c.Segment(segModules)
	if err != nil {
		return nil, nil, err
	}
	names := strings.SplitN(string(modBytes), "\x00", 2)
	if len(names) != 2 {
		return nil, nil, fmt.Errorf("core: malformed modules segment")
	}
	pr, err := LookupPredictor(names[0])
	if err != nil {
		return nil, nil, err
	}
	enc, err := LookupEncoder(names[1])
	if err != nil {
		return nil, nil, err
	}
	return pr, enc, nil
}

// containerPrediction rebuilds the prediction interchange record from a
// container's decoded codes plus its "pred." side channels.
func containerPrediction(c *fzio.Container, codes []uint16) *Prediction {
	pred := &Prediction{
		Codes:  codes,
		Radius: int(c.Header.Extra),
		Extras: map[string][]byte{},
	}
	for _, name := range c.Names() {
		if strings.HasPrefix(name, predPrefix) {
			seg, _ := c.Segment(name)
			pred.Extras[strings.TrimPrefix(name, predPrefix)] = seg
		}
	}
	return pred
}

// Describe returns a one-line human-readable pipeline summary.
func (pl *Pipeline) Describe() string {
	sec := "none"
	if pl.Sec != nil {
		sec = pl.Sec.Name()
	}
	return fmt.Sprintf("%s: predict=%s@%v encode=%s@%v secondary=%s",
		pl.PipelineName, pl.Pred.Name(), pl.PredPlace, pl.Enc.Name(), pl.EncPlace, sec)
}

func sortedKeys(m map[string][]byte) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
