package core

import (
	"fmt"
	"sort"
	"strings"

	"fzmod/internal/device"
	"fzmod/internal/fzio"
	"fzmod/internal/grid"
	"fzmod/internal/preprocess"
)

// Pipeline composes registered modules into a compressor, the framework's
// central object (§3.3). PredPlace and EncPlace assign each stage to an
// execution place, expressing hybrid designs like FZMod-Default's
// GPU-predictor + CPU-Huffman split.
type Pipeline struct {
	PipelineName string
	Pred         Predictor
	Enc          CodesEncoder
	Sec          Secondary // nil disables the secondary stage
	PredPlace    device.Place
	EncPlace     device.Place
}

// Name implements Compressor.
func (pl *Pipeline) Name() string { return pl.PipelineName }

// WithSecondary returns a copy of the pipeline with the secondary encoder
// attached, as in "zstd can be attempted" (§3.2).
func (pl *Pipeline) WithSecondary(s Secondary) *Pipeline {
	cp := *pl
	cp.Sec = s
	cp.PipelineName = pl.PipelineName + "+" + s.Name()
	return &cp
}

// segment names used by the container layout.
const (
	segCodes   = "codes"
	segModules = "modules"
	segSec     = "sec"
	segZ       = "z"
	predPrefix = "pred."
)

// Compress implements Compressor. Fields of at least AutoChunkElems
// elements are routed through the chunked concurrent executor (see
// chunked.go); smaller fields take the monolithic single-stream path.
func (pl *Pipeline) Compress(p *device.Platform, data []float32, dims grid.Dims, eb preprocess.ErrorBound) ([]byte, error) {
	if dims.N() >= AutoChunkElems {
		return pl.CompressChunked(p, data, dims, eb, ChunkOpts{})
	}
	return pl.CompressMonolithic(p, data, dims, eb)
}

// CompressMonolithic compresses the whole field as a single block: resolve
// the bound, predict+quantize, encode codes, serialize all stages into an
// fzio container, and optionally apply the secondary encoder over the whole
// inner container. It is the per-chunk worker of the chunked executor and
// the explicit opt-out from auto-chunking.
func (pl *Pipeline) CompressMonolithic(p *device.Platform, data []float32, dims grid.Dims, eb preprocess.ErrorBound) ([]byte, error) {
	if dims.N() != len(data) {
		return nil, fmt.Errorf("core: dims %v do not match %d values", dims, len(data))
	}
	absEB, _, err := preprocess.Resolve(p, pl.PredPlace, data, eb)
	if err != nil {
		return nil, err
	}
	pred, err := pl.Pred.Predict(p, pl.PredPlace, data, dims, absEB)
	if err != nil {
		return nil, fmt.Errorf("core: %s predict: %w", pl.Pred.Name(), err)
	}
	payload, err := pl.Enc.EncodeCodes(p, pl.EncPlace, pred.Codes, pred.Radius)
	if err != nil {
		return nil, fmt.Errorf("core: %s encode: %w", pl.Enc.Name(), err)
	}

	relEB := 0.0
	if eb.Mode == preprocess.Rel {
		relEB = eb.Value
	}
	inner := fzio.New(fzio.Header{
		Pipeline: pl.PipelineName,
		Dims:     dims,
		EB:       absEB,
		RelEB:    relEB,
		Extra:    uint64(pred.Radius),
	})
	if err := inner.Add(segModules, []byte(pl.Pred.Name()+"\x00"+pl.Enc.Name())); err != nil {
		return nil, err
	}
	if err := inner.Add(segCodes, payload); err != nil {
		return nil, err
	}
	for _, k := range sortedKeys(pred.Extras) {
		if err := inner.Add(predPrefix+k, pred.Extras[k]); err != nil {
			return nil, err
		}
	}
	blob, err := inner.Marshal()
	if err != nil {
		return nil, err
	}
	if pl.Sec == nil {
		return blob, nil
	}

	z, err := pl.Sec.Compress(p, pl.EncPlace, blob)
	if err != nil {
		return nil, fmt.Errorf("core: %s secondary: %w", pl.Sec.Name(), err)
	}
	outer := fzio.New(fzio.Header{Pipeline: pl.PipelineName, Dims: dims, EB: absEB, RelEB: relEB})
	if err := outer.Add(segSec, []byte(pl.Sec.Name())); err != nil {
		return nil, err
	}
	if err := outer.Add(segZ, z); err != nil {
		return nil, err
	}
	return outer.Marshal()
}

// Decompress implements Compressor. It ignores the receiver's module
// configuration: containers are self-describing, so any registered module
// set can decode them.
func (pl *Pipeline) Decompress(p *device.Platform, blob []byte) ([]float32, grid.Dims, error) {
	return Decompress(p, blob)
}

// Decompress reconstructs a field from any FZModules container using the
// module registry. Chunked containers are dispatched to the parallel
// chunked read path; everything else is a monolithic container.
func Decompress(p *device.Platform, blob []byte) ([]float32, grid.Dims, error) {
	if fzio.IsChunked(blob) {
		return DecompressChunked(p, blob)
	}
	return decompressMonolithic(p, blob)
}

func decompressMonolithic(p *device.Platform, blob []byte) ([]float32, grid.Dims, error) {
	c, err := fzio.Unmarshal(blob)
	if err != nil {
		return nil, grid.Dims{}, err
	}
	if c.Has(segSec) {
		secName, _ := c.Segment(segSec)
		sec, err := LookupSecondary(string(secName))
		if err != nil {
			return nil, grid.Dims{}, err
		}
		z, err := c.Segment(segZ)
		if err != nil {
			return nil, grid.Dims{}, err
		}
		inner, err := sec.Decompress(p, device.Host, z)
		if err != nil {
			return nil, grid.Dims{}, fmt.Errorf("core: %s secondary: %w", sec.Name(), err)
		}
		if c, err = fzio.Unmarshal(inner); err != nil {
			return nil, grid.Dims{}, err
		}
	}

	modBytes, err := c.Segment(segModules)
	if err != nil {
		return nil, grid.Dims{}, err
	}
	names := strings.SplitN(string(modBytes), "\x00", 2)
	if len(names) != 2 {
		return nil, grid.Dims{}, fmt.Errorf("core: malformed modules segment")
	}
	pr, err := LookupPredictor(names[0])
	if err != nil {
		return nil, grid.Dims{}, err
	}
	enc, err := LookupEncoder(names[1])
	if err != nil {
		return nil, grid.Dims{}, err
	}

	payload, err := c.Segment(segCodes)
	if err != nil {
		return nil, grid.Dims{}, err
	}
	codes, err := enc.DecodeCodes(p, device.Accel, payload)
	if err != nil {
		return nil, grid.Dims{}, fmt.Errorf("core: %s decode: %w", enc.Name(), err)
	}
	dims := c.Header.Dims
	if len(codes) != dims.N() {
		return nil, grid.Dims{}, fmt.Errorf("core: %d codes for dims %v", len(codes), dims)
	}
	pred := &Prediction{
		Codes:  codes,
		Radius: int(c.Header.Extra),
		Extras: map[string][]byte{},
	}
	for _, name := range c.Names() {
		if strings.HasPrefix(name, predPrefix) {
			seg, _ := c.Segment(name)
			pred.Extras[strings.TrimPrefix(name, predPrefix)] = seg
		}
	}
	out, err := pr.Reconstruct(p, device.Accel, pred, dims, c.Header.EB)
	if err != nil {
		return nil, grid.Dims{}, fmt.Errorf("core: %s reconstruct: %w", pr.Name(), err)
	}
	return out, dims, nil
}

// Describe returns a one-line human-readable pipeline summary.
func (pl *Pipeline) Describe() string {
	sec := "none"
	if pl.Sec != nil {
		sec = pl.Sec.Name()
	}
	return fmt.Sprintf("%s: predict=%s@%v encode=%s@%v secondary=%s",
		pl.PipelineName, pl.Pred.Name(), pl.PredPlace, pl.Enc.Name(), pl.EncPlace, sec)
}

func sortedKeys(m map[string][]byte) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
