package core

import (
	"fmt"
	"strings"

	"fzmod/internal/device"
	"fzmod/internal/encoder/huffman"
	"fzmod/internal/fzio"
	"fzmod/internal/grid"
	"fzmod/internal/histogram"
	"fzmod/internal/predictor/lorenzo"
	"fzmod/internal/stf"
)

// STFReport carries the execution evidence of a task-flow run: the task
// trace (for checking stage overlap) and the inferred DAG in dot syntax.
type STFReport struct {
	Trace []stf.TaskTrace
	DOT   string
}

// Overlapped reports whether any two tasks ran concurrently.
func (r *STFReport) Overlapped() bool { return stf.Overlapped(r.Trace) }

// DecompressSTF decompresses an FZMod-Default (lorenzo+huffman) container
// through the task-flow engine, reproducing the paper's §3.3.1 example:
// one task populates outlier data at the accelerator while the host
// decodes the Huffman stream — the two stages share no data dependency
// until reconstruction combines them.
func DecompressSTF(p *device.Platform, blob []byte) ([]float32, grid.Dims, *STFReport, error) {
	c, err := fzio.Unmarshal(blob)
	if err != nil {
		return nil, grid.Dims{}, nil, err
	}
	if c.Has(segSec) {
		return nil, grid.Dims{}, nil, fmt.Errorf("core: STF pipeline does not support secondary-encoded containers")
	}
	modBytes, err := c.Segment(segModules)
	if err != nil {
		return nil, grid.Dims{}, nil, err
	}
	names := strings.SplitN(string(modBytes), "\x00", 2)
	if len(names) != 2 || names[0] != "lorenzo" || !strings.HasPrefix(names[1], "huffman") {
		return nil, grid.Dims{}, nil, fmt.Errorf("core: STF decompression supports lorenzo+huffman containers, got %q", modBytes)
	}
	payload, err := c.Segment(segCodes)
	if err != nil {
		return nil, grid.Dims{}, nil, err
	}
	// STF-written containers carry the explicit outlier index stream; for
	// plain containers the indices are derived from the escape codes in
	// the join task instead (the index branch then only decodes values).
	var outIdxRaw []byte
	hasIdx := c.Has(predPrefix + "outidx")
	if hasIdx {
		outIdxRaw, err = c.Segment(predPrefix + "outidx")
		if err != nil {
			return nil, grid.Dims{}, nil, err
		}
	}
	outValRaw, err := c.Segment(predPrefix + "outval")
	if err != nil {
		return nil, grid.Dims{}, nil, err
	}

	dims := c.Header.Dims
	n := dims.N()
	radius := int(c.Header.Extra)
	eb := c.Header.EB
	nOut := len(outValRaw) / 4

	ctx := stf.NewCtx(p)
	codesBlob := stf.NewData(ctx, "codes-blob", payload)
	idxBlob := stf.NewData(ctx, "outidx-blob", outIdxRaw)
	valBlob := stf.NewData(ctx, "outval-blob", outValRaw)
	codes := stf.NewScratch[uint16](ctx, "codes", n)
	outIdx := stf.NewScratch[uint32](ctx, "outidx", nOut)
	outVal := stf.NewScratch[int32](ctx, "outval", nOut)
	result := stf.NewScratch[float32](ctx, "result", n)

	// Branch 1: Huffman decode on the host.
	ctx.Task("huffman-decode").Reads(codesBlob.D()).Writes(codes.D()).On(device.Host).
		Do(func(ti *stf.TaskInstance) error {
			decoded, err := huffman.Decompress(p, device.Host, codesBlob.Acc(ti))
			if err != nil {
				return err
			}
			if len(decoded) != n {
				return fmt.Errorf("core: %d decoded codes for %d values", len(decoded), n)
			}
			copy(codes.Acc(ti), decoded)
			return nil
		})

	// Branch 2: populate outlier data at the accelerator, concurrently.
	ctx.Task("outlier-populate").Reads(idxBlob.D(), valBlob.D()).Writes(outIdx.D(), outVal.D()).
		On(device.Accel).Do(func(ti *stf.TaskInstance) error {
		ib, vb := idxBlob.Acc(ti), valBlob.Acc(ti)
		oi, ov := outIdx.Acc(ti), outVal.Acc(ti)
		ti.Launch(nOut, func(lo, hi int) {
			for j := lo; j < hi; j++ {
				if hasIdx {
					oi[j] = uint32(ib[4*j]) | uint32(ib[4*j+1])<<8 | uint32(ib[4*j+2])<<16 | uint32(ib[4*j+3])<<24
				}
				ov[j] = int32(uint32(vb[4*j]) | uint32(vb[4*j+1])<<8 | uint32(vb[4*j+2])<<16 | uint32(vb[4*j+3])<<24)
			}
		})
		return nil
	})

	// Join: inverse Lorenzo reconstruction consumes both branches.
	ctx.Task("reconstruct").Reads(codes.D(), outIdx.D(), outVal.D()).Writes(result.D()).
		On(device.Accel).Do(func(ti *stf.TaskInstance) error {
		idx := outIdx.Acc(ti)
		cds := codes.Acc(ti)
		if !hasIdx {
			idx = idx[:0]
			for i, cv := range cds {
				if cv == 0 {
					idx = append(idx, uint32(i))
				}
			}
			if len(idx) != nOut {
				return fmt.Errorf("core: %d escapes, %d outlier values", len(idx), nOut)
			}
		}
		q := &lorenzo.Quantized{
			Codes:  cds,
			OutIdx: idx,
			OutVal: outVal.Acc(ti),
			Radius: radius,
		}
		dec, err := lorenzo.Decode(p, ti.Place(), q, dims, eb)
		if err != nil {
			return err
		}
		copy(result.Acc(ti), dec)
		return nil
	})

	if err := ctx.Finalize(); err != nil {
		return nil, grid.Dims{}, nil, err
	}
	report := &STFReport{Trace: ctx.Trace(), DOT: ctx.DOT()}
	return result.Host(), dims, report, nil
}

// CompressSTF compresses with the FZMod-Default stages expressed as a task
// graph: prediction at the accelerator, then histogram (accelerator) and
// outlier serialization (host) proceed concurrently before host Huffman
// coding. The output container is byte-compatible with Pipeline.Compress
// followed by the standard Decompress.
func CompressSTF(p *device.Platform, data []float32, dims grid.Dims, absEB float64) ([]byte, *STFReport, error) {
	if dims.N() != len(data) {
		return nil, nil, fmt.Errorf("core: dims %v do not match %d values", dims, len(data))
	}
	n := dims.N()

	ctx := stf.NewCtx(p)
	input := stf.NewData(ctx, "input", data)
	codes := stf.NewScratch[uint16](ctx, "codes", n)
	// Outlier count is dynamic; tokens carry the dependency while the
	// payloads travel through captured variables (the same pattern CUDASTF
	// uses for dynamically-sized outputs via oversized logical buffers).
	outTok := stf.NewScratch[byte](ctx, "outliers-token", 1)
	histTok := stf.NewScratch[byte](ctx, "hist-token", 1)
	payloadTok := stf.NewScratch[byte](ctx, "payload-token", 1)

	var quant *lorenzo.Quantized
	var outIdxBytes, outValBytes []byte
	var hist []uint32
	var payload []byte

	ctx.Task("predict").Reads(input.D()).Writes(codes.D(), outTok.D()).On(device.Accel).
		Do(func(ti *stf.TaskInstance) error {
			q, err := lorenzo.Encode(p, ti.Place(), input.Acc(ti), dims, absEB, 0)
			if err != nil {
				return err
			}
			quant = q
			copy(codes.Acc(ti), q.Codes)
			return nil
		})

	ctx.Task("histogram").Reads(codes.D()).Writes(histTok.D()).On(device.Accel).
		Do(func(ti *stf.TaskInstance) error {
			h, err := histogramOf(p, ti.Place(), codes.Acc(ti), quant.Radius)
			if err != nil {
				return err
			}
			hist = h
			return nil
		})

	ctx.Task("outlier-serialize").Reads(outTok.D()).Writes(payloadTok.D()).On(device.Host).
		Do(func(ti *stf.TaskInstance) error {
			outIdxBytes = device.U32Bytes(quant.OutIdx)
			vals := make([]uint32, len(quant.OutVal))
			for i, v := range quant.OutVal {
				vals[i] = uint32(v)
			}
			outValBytes = device.U32Bytes(vals)
			return nil
		})

	ctx.Task("huffman-encode").Reads(codes.D(), histTok.D()).ReadsWrites(payloadTok.D()).On(device.Host).
		Do(func(ti *stf.TaskInstance) error {
			pl, err := huffman.Compress(p, device.Host, codes.Acc(ti), hist)
			if err != nil {
				return err
			}
			payload = pl
			return nil
		})

	if err := ctx.Finalize(); err != nil {
		return nil, nil, err
	}

	inner := fzio.New(fzio.Header{
		Pipeline: "fzmod-default",
		Dims:     dims,
		EB:       absEB,
		Extra:    uint64(quant.Radius),
	})
	if err := inner.Add(segModules, []byte("lorenzo\x00huffman")); err != nil {
		return nil, nil, err
	}
	if err := inner.Add(segCodes, payload); err != nil {
		return nil, nil, err
	}
	if err := inner.Add(predPrefix+"outidx", outIdxBytes); err != nil {
		return nil, nil, err
	}
	if err := inner.Add(predPrefix+"outval", outValBytes); err != nil {
		return nil, nil, err
	}
	blob, err := inner.Marshal()
	if err != nil {
		return nil, nil, err
	}
	report := &STFReport{Trace: ctx.Trace(), DOT: ctx.DOT()}
	return blob, report, nil
}

func histogramOf(p *device.Platform, place device.Place, codes []uint16, radius int) ([]uint32, error) {
	return histogram.Standard(p, place, codes, 2*radius)
}
