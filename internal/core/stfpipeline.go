package core

import (
	"fmt"
	"strings"

	"fzmod/internal/device"
	"fzmod/internal/encoder/huffman"
	"fzmod/internal/fzio"
	"fzmod/internal/grid"
	"fzmod/internal/histogram"
	"fzmod/internal/predictor/lorenzo"
	"fzmod/internal/stf"
)

// This file holds the fine-grained FZMod-Default task graphs of §3.3.1:
// where the generic lowering in exec.go treats each module stage as one
// task, these graphs split the stages into their intra-pipeline branches
// (histogram ∥ outlier serialization on the write path, Huffman decode ∥
// outlier population on the read path) to exhibit the paper's branch-level
// concurrency. They run on the same engine as everything else.

// STFReport is the historical name of ExecReport, kept for callers of the
// fine-grained graph entry points.
type STFReport = ExecReport

// DecompressSTF decompresses an FZMod-Default (lorenzo+huffman) container
// through the fine-grained task graph, reproducing the paper's §3.3.1
// example: one task populates outlier data at the accelerator while the
// host decodes the Huffman stream — the two stages share no data
// dependency until reconstruction combines them. Secondary-encoded
// containers insert a secondary-decode task ahead of the branches.
func DecompressSTF(p *device.Platform, blob []byte) ([]float32, grid.Dims, *ExecReport, error) {
	c, err := fzio.Unmarshal(blob)
	if err != nil {
		return nil, grid.Dims{}, nil, err
	}
	ctx := stf.NewCtx(p)
	if c.Has(segSec) {
		// The inner container's geometry is only known once the secondary
		// layer is decoded, so the task runs and the build synchronizes on
		// it (Barrier) before declaring the dependent branches.
		var inner *fzio.Container
		secTok := stf.NewToken(ctx, "inner-container")
		ctx.Task("secondary-decode").On(device.Host).Writes(secTok.D()).
			Do(func(ti *stf.TaskInstance) error {
				dec, err := unwrapSecondary(p, c)
				if err != nil {
					return err
				}
				inner = dec
				return nil
			})
		ctx.Barrier()
		if inner == nil {
			err := ctx.Finalize()
			ctx.Release()
			return nil, grid.Dims{}, nil, err
		}
		c = inner
	}
	modBytes, err := c.Segment(segModules)
	if err != nil {
		return nil, grid.Dims{}, nil, err
	}
	names := strings.SplitN(string(modBytes), "\x00", 2)
	if len(names) != 2 || names[0] != "lorenzo" || !strings.HasPrefix(names[1], "huffman") {
		return nil, grid.Dims{}, nil, fmt.Errorf("core: STF decompression supports lorenzo+huffman containers, got %q", modBytes)
	}
	payload, err := c.Segment(segCodes)
	if err != nil {
		return nil, grid.Dims{}, nil, err
	}
	// STF-written containers carry the explicit outlier index stream; for
	// plain containers the indices are derived from the escape codes in
	// the join task instead (the index branch then only decodes values).
	var outIdxRaw []byte
	hasIdx := c.Has(predPrefix + "outidx")
	if hasIdx {
		outIdxRaw, err = c.Segment(predPrefix + "outidx")
		if err != nil {
			return nil, grid.Dims{}, nil, err
		}
	}
	outValRaw, err := c.Segment(predPrefix + "outval")
	if err != nil {
		return nil, grid.Dims{}, nil, err
	}

	dims := c.Header.Dims
	n := dims.N()
	radius := int(c.Header.Extra)
	eb := c.Header.EB
	nOut := len(outValRaw) / 4

	codesBlob := stf.NewData(ctx, "codes-blob", payload)
	idxBlob := stf.NewData(ctx, "outidx-blob", outIdxRaw)
	valBlob := stf.NewData(ctx, "outval-blob", outValRaw)
	codes := stf.NewScratch[uint16](ctx, "codes", n)
	outIdx := stf.NewScratch[uint32](ctx, "outidx", nOut)
	outVal := stf.NewScratch[int32](ctx, "outval", nOut)
	result := stf.NewScratch[float32](ctx, "result", n)

	// Branch 1: Huffman decode on the host.
	ctx.Task("huffman-decode").Reads(codesBlob.D()).Writes(codes.D()).On(device.Host).
		Do(func(ti *stf.TaskInstance) error {
			decoded, err := huffman.Decompress(p, device.Host, codesBlob.Acc(ti))
			if err != nil {
				return err
			}
			if len(decoded) != n {
				return fmt.Errorf("core: %d decoded codes for %d values", len(decoded), n)
			}
			copy(codes.Acc(ti), decoded)
			return nil
		})

	// Branch 2: populate outlier data at the accelerator, concurrently.
	ctx.Task("outlier-populate").Reads(idxBlob.D(), valBlob.D()).Writes(outIdx.D(), outVal.D()).
		On(device.Accel).Do(func(ti *stf.TaskInstance) error {
		ib, vb := idxBlob.Acc(ti), valBlob.Acc(ti)
		oi, ov := outIdx.Acc(ti), outVal.Acc(ti)
		ti.Launch(nOut, func(lo, hi int) {
			for j := lo; j < hi; j++ {
				if hasIdx {
					oi[j] = uint32(ib[4*j]) | uint32(ib[4*j+1])<<8 | uint32(ib[4*j+2])<<16 | uint32(ib[4*j+3])<<24
				}
				ov[j] = int32(uint32(vb[4*j]) | uint32(vb[4*j+1])<<8 | uint32(vb[4*j+2])<<16 | uint32(vb[4*j+3])<<24)
			}
		})
		return nil
	})

	// Join: inverse Lorenzo reconstruction consumes both branches.
	ctx.Task("reconstruct").Reads(codes.D(), outIdx.D(), outVal.D()).Writes(result.D()).
		On(device.Accel).Do(func(ti *stf.TaskInstance) error {
		idx := outIdx.Acc(ti)
		cds := codes.Acc(ti)
		if !hasIdx {
			idx = idx[:0]
			for i, cv := range cds {
				if cv == 0 {
					idx = append(idx, uint32(i))
				}
			}
			if len(idx) != nOut {
				return fmt.Errorf("core: %d escapes, %d outlier values", len(idx), nOut)
			}
		}
		q := &lorenzo.Quantized{
			Codes:  cds,
			OutIdx: idx,
			OutVal: outVal.Acc(ti),
			Radius: radius,
		}
		dec, err := lorenzo.Decode(p, ti.Place(), q, dims, eb)
		if err != nil {
			return err
		}
		copy(result.Acc(ti), dec)
		return nil
	})

	if err := ctx.Finalize(); err != nil {
		ctx.Release()
		return nil, grid.Dims{}, nil, err
	}
	report := execReport(ctx)
	vals := result.Detach()
	ctx.Release()
	return vals, dims, report, nil
}

// stfBlockPlan collects the dynamically-sized outputs of one block's
// compression task sub-graph; the task bodies fill it in and marshal reads
// it after Finalize.
type stfBlockPlan struct {
	quant                    *lorenzo.Quantized
	hist                     []uint32
	payload                  []byte
	outIdxBytes, outValBytes []byte
}

// addDefaultCompressTasks declares the FZMod-Default compression task graph
// for one block of a field: prediction at the accelerator, then histogram
// (accelerator) and outlier serialization (host) proceed concurrently
// before host Huffman coding. Task and data names are prefixed so several
// blocks can coexist in one context; blocks share no logical data, so the
// engine is free to overlap them.
func addDefaultCompressTasks(ctx *stf.Ctx, p *device.Platform, prefix string, data []float32, dims grid.Dims, absEB float64) *stfBlockPlan {
	n := dims.N()
	plan := &stfBlockPlan{}

	input := stf.NewData(ctx, prefix+"input", data)
	codes := stf.NewScratch[uint16](ctx, prefix+"codes", n)
	// Outlier count is dynamic; tokens carry the dependency while the
	// payloads travel through captured variables (the same pattern CUDASTF
	// uses for dynamically-sized outputs via oversized logical buffers).
	outTok := stf.NewToken(ctx, prefix+"outliers")
	histTok := stf.NewToken(ctx, prefix+"hist")
	payloadTok := stf.NewToken(ctx, prefix+"payload")

	ctx.Task(prefix+"predict").Reads(input.D()).Writes(codes.D(), outTok.D()).On(device.Accel).
		Do(func(ti *stf.TaskInstance) error {
			q, err := lorenzo.Encode(p, ti.Place(), input.Acc(ti), dims, absEB, 0)
			if err != nil {
				return err
			}
			plan.quant = q
			copy(codes.Acc(ti), q.Codes)
			return nil
		})

	ctx.Task(prefix + "histogram").Reads(codes.D()).Writes(histTok.D()).On(device.Accel).
		Do(func(ti *stf.TaskInstance) error {
			h, err := histogramOf(p, ti.Place(), codes.Acc(ti), plan.quant.Radius)
			if err != nil {
				return err
			}
			plan.hist = h
			return nil
		})

	ctx.Task(prefix + "outlier-serialize").Reads(outTok.D()).Writes(payloadTok.D()).On(device.Host).
		Do(func(ti *stf.TaskInstance) error {
			plan.outIdxBytes = device.U32Bytes(plan.quant.OutIdx)
			vals := make([]uint32, len(plan.quant.OutVal))
			for i, v := range plan.quant.OutVal {
				vals[i] = uint32(v)
			}
			plan.outValBytes = device.U32Bytes(vals)
			return nil
		})

	ctx.Task(prefix+"huffman-encode").Reads(codes.D(), histTok.D()).ReadsWrites(payloadTok.D()).On(device.Host).
		Do(func(ti *stf.TaskInstance) error {
			pl, err := huffman.Compress(p, device.Host, codes.Acc(ti), plan.hist)
			if err != nil {
				return err
			}
			plan.payload = pl
			return nil
		})

	return plan
}

// marshal serializes one block's results into a monolithic container; call
// after the context has finalized.
func (plan *stfBlockPlan) marshal(dims grid.Dims, absEB float64) ([]byte, error) {
	inner := fzio.New(fzio.Header{
		Pipeline: "fzmod-default",
		Dims:     dims,
		EB:       absEB,
		Extra:    uint64(plan.quant.Radius),
	})
	if err := inner.Add(segModules, []byte("lorenzo\x00huffman")); err != nil {
		return nil, err
	}
	if err := inner.Add(segCodes, plan.payload); err != nil {
		return nil, err
	}
	if err := inner.Add(predPrefix+"outidx", plan.outIdxBytes); err != nil {
		return nil, err
	}
	if err := inner.Add(predPrefix+"outval", plan.outValBytes); err != nil {
		return nil, err
	}
	return inner.Marshal()
}

// CompressSTF compresses with the FZMod-Default stages expressed as a task
// graph. The output container is byte-compatible with Pipeline.Compress
// followed by the standard Decompress.
func CompressSTF(p *device.Platform, data []float32, dims grid.Dims, absEB float64) ([]byte, *ExecReport, error) {
	if dims.N() != len(data) {
		return nil, nil, fmt.Errorf("core: dims %v do not match %d values", dims, len(data))
	}
	ctx := stf.NewCtx(p)
	plan := addDefaultCompressTasks(ctx, p, "", data, dims, absEB)
	err := ctx.Finalize()
	report := execReport(ctx)
	ctx.Release()
	if err != nil {
		return nil, report, err
	}
	blob, err := plan.marshal(dims, absEB)
	if err != nil {
		return nil, report, err
	}
	return blob, report, nil
}

// CompressSTFChunked compresses through the task-flow engine with one
// fine-grained compression sub-graph per chunk: the field is partitioned
// into slabs along its slowest dimension (chunkElems elements per chunk,
// rounded to whole planes; 0 selects DefaultChunkElems) and every slab
// contributes an independent predict→{histogram, outliers}→encode task
// chain. The chains share no logical data, so the engine overlaps them
// across places, and the per-chunk containers are assembled into the same
// chunked container CompressChunked emits.
func CompressSTFChunked(p *device.Platform, data []float32, dims grid.Dims, absEB float64, chunkElems int) ([]byte, *ExecReport, error) {
	if dims.N() != len(data) {
		return nil, nil, fmt.Errorf("core: dims %v do not match %d values", dims, len(data))
	}
	planes := planesFor(dims, chunkElems)
	slabs := grid.SplitSlabs(dims, planes)

	ctx := stf.NewCtx(p)
	plans := make([]*stfBlockPlan, len(slabs))
	for i, sl := range slabs {
		chunk := data[sl.Lo : sl.Lo+sl.Dims.N()]
		plans[i] = addDefaultCompressTasks(ctx, p, fmt.Sprintf("c%d.", i), chunk, sl.Dims, absEB)
	}
	err := ctx.Finalize()
	report := execReport(ctx)
	if err != nil {
		ctx.Release()
		return nil, report, err
	}

	blobs := make([][]byte, len(slabs))
	perPlanes := make([]int, len(slabs))
	for i, sl := range slabs {
		b, err := plans[i].marshal(sl.Dims, absEB)
		if err != nil {
			ctx.Release()
			return nil, report, err
		}
		blobs[i] = b
		perPlanes[i] = sl.Planes
	}
	ctx.Release()
	blob, err := fzio.MarshalChunked(fzio.ChunkedHeader{
		Pipeline: "fzmod-default",
		Dims:     dims,
		EB:       absEB,
		Planes:   planes,
	}, blobs, perPlanes)
	if err != nil {
		return nil, report, err
	}
	return blob, report, nil
}

func histogramOf(p *device.Platform, place device.Place, codes []uint16, radius int) ([]uint32, error) {
	return histogram.Standard(p, place, codes, 2*radius)
}
