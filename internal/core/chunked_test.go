package core

import (
	"bytes"
	"strings"
	"testing"

	"fzmod/internal/device"
	"fzmod/internal/fzio"
	"fzmod/internal/grid"
	"fzmod/internal/metrics"
	"fzmod/internal/preprocess"
	"fzmod/internal/sdrbench"
)

// chunkField returns a field large enough to split into several slabs with
// a small ChunkElems setting.
func chunkField() ([]float32, grid.Dims) {
	dims := grid.D3(24, 20, 32)
	return sdrbench.GenHURR(dims, 31), dims
}

func TestCompressChunkedRoundtrip(t *testing.T) {
	data, dims := chunkField()
	eb := preprocess.RelBound(1e-4)
	for _, pl := range Presets() {
		opts := ChunkOpts{ChunkElems: dims.PlaneElems() * 8, Workers: 4}
		blob, err := pl.CompressChunked(tp, data, dims, eb, opts)
		if err != nil {
			t.Fatalf("%s: %v", pl.Name(), err)
		}
		if !fzio.IsChunked(blob) {
			t.Fatalf("%s: expected a chunked container", pl.Name())
		}
		cc, err := fzio.UnmarshalChunked(blob)
		if err != nil {
			t.Fatal(err)
		}
		if want := dims.SlowExtent() / 8; cc.NumChunks() != want {
			t.Errorf("%s: %d chunks, want %d", pl.Name(), cc.NumChunks(), want)
		}
		got, gotDims, err := Decompress(tp, blob)
		if err != nil {
			t.Fatalf("%s decompress: %v", pl.Name(), err)
		}
		if gotDims != dims {
			t.Fatalf("%s dims %v, want %v", pl.Name(), gotDims, dims)
		}
		absEB, _, _ := preprocess.Resolve(tp, device.Accel, data, eb)
		if i := metrics.VerifyBound(data, got, absEB); i != -1 {
			t.Errorf("%s: bound violated at %d", pl.Name(), i)
		}
	}
}

// TestChunkedMatchesMonolithicPerChunk is the equivalence check the chunked
// executor promises: with the globally resolved absolute bound, each
// chunk's reconstruction is bit-exact with the monolithic pipeline run on
// that same slab.
func TestChunkedMatchesMonolithicPerChunk(t *testing.T) {
	data, dims := chunkField()
	eb := preprocess.RelBound(1e-4)
	pl := NewDefault()
	planes := 8
	opts := ChunkOpts{ChunkElems: dims.PlaneElems() * planes, Workers: 3}
	blob, err := pl.CompressChunked(tp, data, dims, eb, opts)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := Decompress(tp, blob)
	if err != nil {
		t.Fatal(err)
	}
	absEB, _, err := preprocess.Resolve(tp, device.Accel, data, eb)
	if err != nil {
		t.Fatal(err)
	}
	for i, sl := range grid.SplitSlabs(dims, planes) {
		chunk := data[sl.Lo : sl.Lo+sl.Dims.N()]
		monoBlob, err := pl.CompressMonolithic(tp, chunk, sl.Dims, preprocess.AbsBound(absEB))
		if err != nil {
			t.Fatal(err)
		}
		want, _, err := Decompress(tp, monoBlob)
		if err != nil {
			t.Fatal(err)
		}
		for j := range want {
			if got[sl.Lo+j] != want[j] {
				t.Fatalf("chunk %d: value %d differs from monolithic path", i, j)
			}
		}
	}
}

func TestChunkedDeterministic(t *testing.T) {
	data, dims := chunkField()
	eb := preprocess.RelBound(1e-3)
	opts := ChunkOpts{ChunkElems: dims.PlaneElems() * 5, Workers: 4}
	a, err := NewDefault().CompressChunked(tp, data, dims, eb, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewDefault().CompressChunked(tp, data, dims, eb, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Error("chunked compression is nondeterministic")
	}
	// Worker count must not change the bytes, only the schedule.
	c, err := NewDefault().CompressChunked(tp, data, dims, eb, ChunkOpts{ChunkElems: opts.ChunkElems, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, c) {
		t.Error("worker count changed the compressed bytes")
	}
}

func TestChunkedSingleSlabFallsBackToMonolithic(t *testing.T) {
	data, dims := testField()
	blob, err := NewDefault().CompressChunked(tp, data, dims, preprocess.RelBound(1e-4), ChunkOpts{ChunkElems: dims.N() * 2})
	if err != nil {
		t.Fatal(err)
	}
	if fzio.IsChunked(blob) {
		t.Error("single-slab input should produce a monolithic container")
	}
	if _, _, err := Decompress(tp, blob); err != nil {
		t.Fatal(err)
	}
}

func TestChunkedWithSecondary(t *testing.T) {
	data, dims := chunkField()
	pl := NewDefault().WithSecondary(LZSecondary{})
	blob, err := pl.CompressChunked(tp, data, dims, preprocess.RelBound(1e-3), ChunkOpts{ChunkElems: dims.PlaneElems() * 8})
	if err != nil {
		t.Fatal(err)
	}
	if !fzio.IsChunked(blob) {
		t.Fatal("expected chunked container")
	}
	got, gotDims, err := Decompress(tp, blob)
	if err != nil {
		t.Fatal(err)
	}
	if gotDims != dims || len(got) != dims.N() {
		t.Fatalf("bad geometry %v", gotDims)
	}
}

func TestChunkedRejectsNestedContainers(t *testing.T) {
	data, dims := chunkField()
	inner, err := NewDefault().CompressChunked(tp, data, dims, preprocess.RelBound(1e-3), ChunkOpts{ChunkElems: dims.PlaneElems() * 8})
	if err != nil {
		t.Fatal(err)
	}
	outer, err := fzio.MarshalChunked(fzio.ChunkedHeader{
		Pipeline: "fzmod-default", Dims: grid.D1(1), Planes: 1,
	}, [][]byte{inner}, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Decompress(tp, outer); err == nil || !strings.Contains(err.Error(), "nested") {
		t.Errorf("nested chunked container should be rejected, got %v", err)
	}
}

func TestChunkedCorruptChunkSurfacesError(t *testing.T) {
	data, dims := chunkField()
	blob, err := NewDefault().CompressChunked(tp, data, dims, preprocess.RelBound(1e-3), ChunkOpts{ChunkElems: dims.PlaneElems() * 8})
	if err != nil {
		t.Fatal(err)
	}
	mut := append([]byte(nil), blob...)
	mut[len(mut)-10] ^= 0x5A // payload region of the last chunk
	if _, _, err := Decompress(tp, mut); err == nil {
		t.Error("corrupt chunk payload should fail decompression")
	}
}

func TestCompressAutoChunksLargeInputs(t *testing.T) {
	if testing.Short() {
		t.Skip("large allocation")
	}
	// A field right at the auto-chunk threshold: 16 Mi elements (64 MiB).
	dims := grid.D3(256, 256, 256)
	data := sdrbench.GenCESM(dims, 5)
	blob, err := NewSpeed().Compress(tp, data, dims, preprocess.RelBound(1e-2))
	if err != nil {
		t.Fatal(err)
	}
	if !fzio.IsChunked(blob) {
		t.Error("Compress should auto-chunk at AutoChunkElems")
	}
	got, gotDims, err := Decompress(tp, blob)
	if err != nil {
		t.Fatal(err)
	}
	if gotDims != dims {
		t.Fatalf("dims %v, want %v", gotDims, dims)
	}
	absEB, _, _ := preprocess.Resolve(tp, device.Accel, data, preprocess.RelBound(1e-2))
	if i := metrics.VerifyBound(data, got, absEB); i != -1 {
		t.Errorf("bound violated at %d", i)
	}
}

func TestCompressSTFChunked(t *testing.T) {
	data, dims := chunkField()
	eb := preprocess.RelBound(1e-4)
	absEB, _, err := preprocess.Resolve(tp, device.Accel, data, eb)
	if err != nil {
		t.Fatal(err)
	}
	blob, report, err := CompressSTFChunked(tp, data, dims, absEB, dims.PlaneElems()*8)
	if err != nil {
		t.Fatal(err)
	}
	if !fzio.IsChunked(blob) {
		t.Fatal("expected chunked container")
	}
	nChunks := dims.SlowExtent() / 8
	if want := 4 * nChunks; len(report.Trace) != want {
		t.Errorf("trace has %d tasks, want %d (4 per chunk)", len(report.Trace), want)
	}
	got, gotDims, err := Decompress(tp, blob)
	if err != nil {
		t.Fatal(err)
	}
	if gotDims != dims {
		t.Fatalf("dims %v, want %v", gotDims, dims)
	}
	if i := metrics.VerifyBound(data, got, absEB); i != -1 {
		t.Errorf("bound violated at %d", i)
	}
	// The STF graph and the stream-pool executor must reconstruct the
	// identical field (containers differ only by the STF path's explicit
	// outlier-index side channel).
	poolBlob, err := NewDefault().CompressChunked(tp, data, dims, preprocess.AbsBound(absEB), ChunkOpts{ChunkElems: dims.PlaneElems() * 8})
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := Decompress(tp, poolBlob)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("value %d: STF chunked reconstruction differs from stream-pool executor", i)
		}
	}
}
