package core

import (
	"bytes"
	"context"
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"

	"fzmod/internal/device"
	"fzmod/internal/fzio"
	"fzmod/internal/preprocess"
)

// TestMultiTenantSharedPlatform is the daemon's concurrency contract: many
// tenants mixing chunked compression, stream compression and cached region
// reads over one shared Platform (one BufPool, one SlabCache) must each
// observe exactly the bytes a serial run produces, and the pool must
// balance when they all finish. Run under -race, this is the test that
// guards internal/serve's sharing model.
func TestMultiTenantSharedPlatform(t *testing.T) {
	p := device.NewTestPlatform()
	data, dims := chunkField()
	eb := preprocess.RelBound(1e-3)
	pl := NewDefault()
	opts := ChunkOpts{ChunkElems: dims.PlaneElems() * 5, Workers: 2}

	// Serial references, computed before any concurrency starts.
	refChunk, err := pl.CompressChunked(p, data, dims, eb, opts)
	if err != nil {
		t.Fatal(err)
	}
	var raw bytes.Buffer
	if err := device.WriteF32(&raw, data, make([]byte, 64<<10)); err != nil {
		t.Fatal(err)
	}
	// Streaming needs an absolute bound (no whole-field range to resolve
	// a relative one against).
	absVal, _, err := preprocess.Resolve(p, device.Accel, data, eb)
	if err != nil {
		t.Fatal(err)
	}
	absEB := preprocess.AbsBound(absVal)
	var refStreamBuf bytes.Buffer
	if _, err := pl.CompressStream(p, bytes.NewReader(raw.Bytes()), dims, absEB,
		&refStreamBuf, StreamOpts{Window: dims.PlaneElems() * 4, Workers: 2}); err != nil {
		t.Fatal(err)
	}
	refStream := refStreamBuf.Bytes()
	cache := NewSlabCache(1 << 22)
	sel := RegionSel{X0: 3, X1: dims.X - 2, Y0: 1, Y1: dims.Y, Z0: 5, Z1: dims.Z - 4}
	refRegion, err := DecompressRegion(p, fzio.NewBytesFetcher(refChunk), sel, RegionOpts{Cache: cache})
	if err != nil {
		t.Fatal(err)
	}

	const tenants = 9
	const iters = 3
	var wg sync.WaitGroup
	errs := make([]error, tenants)
	for i := 0; i < tenants; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for it := 0; it < iters; it++ {
				switch (i + it) % 3 {
				case 0: // chunked compress
					blob, err := pl.CompressChunked(p, data, dims, eb, opts)
					if err != nil {
						errs[i] = err
						return
					}
					if !bytes.Equal(blob, refChunk) {
						errs[i] = errors.New("chunked bytes differ from serial run")
						return
					}
				case 1: // stream compress
					var buf bytes.Buffer
					if _, err := pl.CompressStream(p, bytes.NewReader(raw.Bytes()), dims, absEB,
						&buf, StreamOpts{Window: dims.PlaneElems() * 4, Workers: 2}); err != nil {
						errs[i] = err
						return
					}
					if !bytes.Equal(buf.Bytes(), refStream) {
						errs[i] = errors.New("stream bytes differ from serial run")
						return
					}
				case 2: // region read through the shared cache
					got, err := DecompressRegion(p, fzio.NewBytesFetcher(refChunk), sel,
						RegionOpts{Workers: 2, Cache: cache})
					if err != nil {
						errs[i] = err
						return
					}
					for j := range refRegion {
						if got[j] != refRegion[j] {
							errs[i] = errors.New("region read differs from serial run")
							return
						}
					}
				}
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("tenant %d: %v", i, err)
		}
	}
	if st := p.ScratchPool().Stats(); st.Gets != st.Puts {
		t.Fatalf("scratch pool unbalanced after multi-tenant run: gets=%d puts=%d", st.Gets, st.Puts)
	}
}

// waitBalanced polls the scratch pool until gets==puts (a canceled graph's
// already-running bodies return their slabs as they finish draining).
func waitBalanced(t *testing.T, p *device.Platform) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := p.ScratchPool().Stats()
		if st.Gets == st.Puts {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("scratch pool unbalanced after cancellation: gets=%d puts=%d", st.Gets, st.Puts)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestCompressCtxCancellation is the daemon's abort contract: an expired
// or canceled context stops a compression task graph at its next dispatch
// boundary, the error surfaces as the context's own error, no goroutines
// linger, and every pooled slab the graph checked out goes back.
func TestCompressCtxCancellation(t *testing.T) {
	p := device.NewTestPlatform()
	data, dims := chunkField()
	eb := preprocess.RelBound(1e-3)
	pl := NewDefault()
	opts := ChunkOpts{ChunkElems: dims.PlaneElems() * 5, Workers: 2}

	// Warm every execution path once so the platform's persistent worker
	// pools exist before the goroutine baseline: the leak check below must
	// catch graphs that fail to drain, not lazily created pool workers.
	warmBlob, err := pl.CompressChunked(p, data, dims, eb, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecompressRegion(p, fzio.NewBytesFetcher(warmBlob), FullRegion(dims), RegionOpts{}); err != nil {
		t.Fatal(err)
	}
	before := runtime.NumGoroutine()

	t.Run("expired deadline", func(t *testing.T) {
		ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
		defer cancel()
		if _, err := pl.CompressChunkedCtx(ctx, p, data, dims, eb, opts); !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("err = %v, want context.DeadlineExceeded", err)
		}
		waitBalanced(t, p)
	})

	t.Run("pre-canceled", func(t *testing.T) {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		if _, err := pl.CompressChunkedCtx(ctx, p, data, dims, eb, opts); !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
		if _, _, _, err := DecompressReportWithOptsCtx(ctx, p, nil, DecompressOpts{}); err == nil {
			t.Fatal("decompress of nil blob with canceled ctx should fail")
		}
		waitBalanced(t, p)
	})

	t.Run("mid-flight cancel", func(t *testing.T) {
		// Cancel shortly after dispatch: whether the graph finishes first
		// is timing-dependent, but the pool must balance either way.
		for i := 0; i < 4; i++ {
			ctx, cancel := context.WithCancel(context.Background())
			go func() {
				time.Sleep(time.Duration(i) * 200 * time.Microsecond)
				cancel()
			}()
			blob, err := pl.CompressChunkedCtx(ctx, p, data, dims, eb, opts)
			cancel()
			if err != nil && !errors.Is(err, context.Canceled) {
				t.Fatalf("iter %d: err = %v, want nil or context.Canceled", i, err)
			}
			if err == nil {
				if _, _, derr := Decompress(p, blob); derr != nil {
					t.Fatalf("iter %d: uncanceled result does not roundtrip: %v", i, derr)
				}
			}
			waitBalanced(t, p)
		}
	})

	t.Run("region read canceled", func(t *testing.T) {
		blob, err := pl.CompressChunked(p, data, dims, eb, opts)
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		if _, err := DecompressRegionCtx(ctx, p, fzio.NewBytesFetcher(blob),
			FullRegion(dims), RegionOpts{}); !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
		waitBalanced(t, p)
	})

	// No goroutine leak: canceled graphs must still drain their workers.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before+2 {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after cancellations", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}
