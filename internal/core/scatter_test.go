package core

import (
	"bytes"
	"strings"
	"testing"

	"fzmod/internal/fzio"
	"fzmod/internal/grid"
	"fzmod/internal/preprocess"
)

// TestScatterAssemblyMatchesGather is the byte-identity proof of the
// zero-copy container assembly: CompressChunked (scatter-write path) must
// emit exactly the container the PR-1/PR-4 gather path produced —
// MarshalChunked over the per-slab monolithic containers compressed under
// the same resolved absolute bound.
func TestScatterAssemblyMatchesGather(t *testing.T) {
	data, dims := chunkField()
	eb := preprocess.RelBound(1e-4)
	for _, pl := range Presets() {
		opts := ChunkOpts{ChunkElems: dims.PlaneElems() * 8, Workers: 3}
		scatter, err := pl.CompressChunked(tp, data, dims, eb, opts)
		if err != nil {
			t.Fatalf("%s: %v", pl.Name(), err)
		}

		absEB, _, err := preprocess.Resolve(tp, pl.PredPlace, data, eb)
		if err != nil {
			t.Fatal(err)
		}
		planes := planesFor(dims, opts.ChunkElems)
		slabs := grid.SplitSlabs(dims, planes)
		blobs := make([][]byte, len(slabs))
		perPlanes := make([]int, len(slabs))
		for i, sl := range slabs {
			chunk := data[sl.Lo : sl.Lo+sl.Dims.N()]
			b, err := pl.CompressMonolithic(tp, chunk, sl.Dims, preprocess.AbsBound(absEB))
			if err != nil {
				t.Fatalf("%s slab %d: %v", pl.Name(), i, err)
			}
			blobs[i] = b
			perPlanes[i] = sl.Planes
		}
		relEB := 0.0
		if eb.Mode == preprocess.Rel {
			relEB = eb.Value
		}
		gather, err := fzio.MarshalChunked(fzio.ChunkedHeader{
			Pipeline: pl.PipelineName,
			Dims:     dims,
			EB:       absEB,
			RelEB:    relEB,
			Planes:   planes,
		}, blobs, perPlanes)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(scatter, gather) {
			t.Fatalf("%s: scatter-assembled container differs from gather reference (%d vs %d bytes)",
				pl.Name(), len(scatter), len(gather))
		}
	}
}

// TestScatterContainerCorruptionDetected re-runs the corruption suite
// against containers produced by the scatter-write path: CRC payload
// flips and truncation must surface as decompression errors, exactly as
// for gather-built containers.
func TestScatterContainerCorruptionDetected(t *testing.T) {
	data, dims := chunkField()
	blob, err := NewDefault().CompressChunked(tp, data, dims, preprocess.RelBound(1e-4),
		ChunkOpts{ChunkElems: dims.PlaneElems() * 8, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Decompress(tp, blob); err != nil {
		t.Fatalf("pristine container: %v", err)
	}

	cc, err := fzio.UnmarshalChunked(blob)
	if err != nil {
		t.Fatal(err)
	}
	payloadLen := 0
	for _, ref := range cc.Chunks {
		payloadLen += ref.Length
	}
	payloadStart := len(blob) - payloadLen

	// Flip one byte in every chunk's payload window in turn.
	for i, ref := range cc.Chunks {
		mut := append([]byte(nil), blob...)
		mut[payloadStart+ref.Offset+ref.Length/2] ^= 0x01
		if _, _, err := Decompress(tp, mut); err == nil {
			t.Errorf("payload flip in chunk %d not detected", i)
		} else if !strings.Contains(err.Error(), "CRC") {
			t.Errorf("chunk %d: expected a CRC error, got %v", i, err)
		}
	}

	// Truncation inside the payload area.
	for _, cut := range []int{1, payloadLen / 3} {
		if _, _, err := Decompress(tp, blob[:len(blob)-cut]); err == nil {
			t.Errorf("truncation by %d bytes not detected", cut)
		}
	}

	// Flipping a sealed table CRC slot must fail its chunk — the slots the
	// scatter path writes are the ones the reader checks. The slot bytes
	// are located by diffing against a container rebuilt with one chunk's
	// payload modified (only that chunk's payload and CRC differ).
	ref, err := fzio.MarshalChunked(cc.Header, chunkPayloads(t, cc), chunkPlanes(cc))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ref, blob) {
		t.Fatal("gather rebuild of scatter container differs")
	}
	mut := append([]byte(nil), blob...)
	mut[payloadStart-2] ^= 0xff // inside the last chunk's planes/CRC tail
	if _, _, err := Decompress(tp, mut); err == nil {
		t.Error("table tail flip not detected")
	}
}

// chunkPayloads extracts (and CRC-verifies) every chunk payload.
func chunkPayloads(t *testing.T, cc *fzio.ChunkedContainer) [][]byte {
	t.Helper()
	out := make([][]byte, cc.NumChunks())
	for i := range out {
		b, err := cc.Chunk(i)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = b
	}
	return out
}

// chunkPlanes lists the per-chunk plane extents.
func chunkPlanes(cc *fzio.ChunkedContainer) []int {
	out := make([]int, cc.NumChunks())
	for i, ref := range cc.Chunks {
		out[i] = ref.Planes
	}
	return out
}

// TestDecompressWithWorkersBudget checks the read-path budget: every
// worker width reconstructs the identical field.
func TestDecompressWithWorkersBudget(t *testing.T) {
	data, dims := chunkField()
	blob, err := NewDefault().CompressChunked(tp, data, dims, preprocess.RelBound(1e-4),
		ChunkOpts{ChunkElems: dims.PlaneElems() * 8})
	if err != nil {
		t.Fatal(err)
	}
	ref, refDims, err := DecompressWithOpts(tp, blob, DecompressOpts{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if refDims != dims {
		t.Fatalf("dims %v, want %v", refDims, dims)
	}
	for _, workers := range []int{2, 3, 8} {
		got, _, err := DecompressWithOpts(tp, blob, DecompressOpts{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("workers=%d: value %d differs", workers, i)
			}
		}
	}
}

// TestChunkedWorkerBudgetBitIdentical pins the write-path budget contract:
// every worker budget (including the strictly serial w=1) produces the
// identical container bytes.
func TestChunkedWorkerBudgetBitIdentical(t *testing.T) {
	data, dims := chunkField()
	eb := preprocess.RelBound(1e-4)
	opts := ChunkOpts{ChunkElems: dims.PlaneElems() * 8, Workers: 1}
	ref, err := NewDefault().CompressChunked(tp, data, dims, eb, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 8} {
		opts.Workers = workers
		got, err := NewDefault().CompressChunked(tp, data, dims, eb, opts)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !bytes.Equal(ref, got) {
			t.Fatalf("workers=%d container differs from serial run", workers)
		}
	}
}
