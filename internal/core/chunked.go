package core

import (
	"fmt"

	"fzmod/internal/device"
	"fzmod/internal/fzio"
	"fzmod/internal/grid"
	"fzmod/internal/preprocess"
)

// The chunked executor partitions the field into independent slabs along
// its slowest-varying dimension, fans them out over a pool of streams (one
// per worker, at the pipeline's predictor place), runs the full
// predict→quantize→encode pipeline per slab, and assembles the per-slab
// containers into a chunked fzio container. Decompression mirrors this:
// every chunk decodes independently, so the read path is fully parallel.
//
// The error bound is resolved once against the whole field (a relative
// bound normalizes by the global value range, exactly as the monolithic
// path does) and applied to every chunk as an absolute bound, so chunked
// and monolithic compression enforce the identical tolerance and each
// chunk's reconstruction is bit-exact with the monolithic pipeline run on
// that slab.

const (
	// DefaultChunkElems is the target chunk granularity, in elements
	// (8 MiB of float32 — large enough to amortize per-chunk container
	// overhead, small enough to expose parallelism on modest fields).
	DefaultChunkElems = 2 << 20

	// AutoChunkElems is the input size, in elements, at which
	// Pipeline.Compress switches to the chunked executor automatically
	// (64 MiB of float32).
	AutoChunkElems = 16 << 20
)

// ChunkOpts configures the chunked executor. The zero value selects sane
// defaults: DefaultChunkElems-sized chunks and one worker stream per
// platform worker at the pipeline's predictor place.
type ChunkOpts struct {
	// ChunkElems is the target elements per chunk; the executor rounds it
	// to whole planes of the slowest-varying dimension. 0 selects
	// DefaultChunkElems.
	ChunkElems int
	// Workers caps the number of concurrent chunk streams. 0 selects the
	// platform's worker width for the predictor place.
	Workers int
}

// planesFor converts a target element count into whole planes of the
// slowest dimension (at least one).
func planesFor(dims grid.Dims, chunkElems int) int {
	if chunkElems <= 0 {
		chunkElems = DefaultChunkElems
	}
	planes := chunkElems / dims.PlaneElems()
	if planes < 1 {
		planes = 1
	}
	return planes
}

// CompressChunked compresses the field through the chunked concurrent
// executor. Fields that fit in a single chunk fall back to the monolithic
// path (producing a monolithic container); Decompress handles both.
func (pl *Pipeline) CompressChunked(p *device.Platform, data []float32, dims grid.Dims, eb preprocess.ErrorBound, opts ChunkOpts) ([]byte, error) {
	if dims.N() != len(data) {
		return nil, fmt.Errorf("core: dims %v do not match %d values", dims, len(data))
	}
	planes := planesFor(dims, opts.ChunkElems)
	slabs := grid.SplitSlabs(dims, planes)
	if len(slabs) < 2 {
		return pl.CompressMonolithic(p, data, dims, eb)
	}
	absEB, _, err := preprocess.Resolve(p, pl.PredPlace, data, eb)
	if err != nil {
		return nil, err
	}

	workers := opts.Workers
	if workers <= 0 {
		workers = p.Workers(pl.PredPlace)
	}
	if workers > len(slabs) {
		workers = len(slabs)
	}
	pool := p.NewStreamPool(pl.PredPlace, workers)
	blobs := make([][]byte, len(slabs))
	errs := make([]error, len(slabs))
	chunkEB := preprocess.AbsBound(absEB)
	for i, sl := range slabs {
		i, sl := i, sl
		pool.Stream(i).Enqueue(func() {
			chunk := data[sl.Lo : sl.Lo+sl.Dims.N()]
			blobs[i], errs[i] = pl.CompressMonolithic(p, chunk, sl.Dims, chunkEB)
		})
	}
	pool.Sync()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("core: chunk %d: %w", i, err)
		}
	}

	relEB := 0.0
	if eb.Mode == preprocess.Rel {
		relEB = eb.Value
	}
	perPlanes := make([]int, len(slabs))
	for i, sl := range slabs {
		perPlanes[i] = sl.Planes
	}
	return fzio.MarshalChunked(fzio.ChunkedHeader{
		Pipeline: pl.PipelineName,
		Dims:     dims,
		EB:       absEB,
		RelEB:    relEB,
		Planes:   planes,
	}, blobs, perPlanes)
}

// DecompressChunked reconstructs a field from a chunked container,
// decoding all chunks in parallel over a stream pool. Each chunk payload is
// a self-describing monolithic container, so any registered module set can
// decode it.
func DecompressChunked(p *device.Platform, blob []byte) ([]float32, grid.Dims, error) {
	cc, err := fzio.UnmarshalChunked(blob)
	if err != nil {
		return nil, grid.Dims{}, err
	}
	dims := cc.Header.Dims
	out := make([]float32, dims.N())
	plane := dims.PlaneElems()

	workers := p.Workers(device.Accel)
	if workers > cc.NumChunks() {
		workers = cc.NumChunks()
	}
	pool := p.NewStreamPool(device.Accel, workers)
	errs := make([]error, cc.NumChunks())
	nextLo := 0
	for i := range cc.Chunks {
		i, lo := i, nextLo
		nextLo += cc.Chunks[i].Planes * plane
		want := dims.WithSlowExtent(cc.Chunks[i].Planes)
		pool.Stream(i).Enqueue(func() {
			cb, err := cc.Chunk(i)
			if err != nil {
				errs[i] = err
				return
			}
			if fzio.IsChunked(cb) {
				errs[i] = fmt.Errorf("core: chunk %d: nested chunked container", i)
				return
			}
			vals, cdims, err := decompressMonolithic(p, cb)
			if err != nil {
				errs[i] = err
				return
			}
			if cdims != want {
				errs[i] = fmt.Errorf("core: chunk %d dims %v, want %v", i, cdims, want)
				return
			}
			copy(out[lo:lo+len(vals)], vals)
		})
	}
	pool.Sync()
	for i, err := range errs {
		if err != nil {
			return nil, grid.Dims{}, fmt.Errorf("core: chunk %d: %w", i, err)
		}
	}
	return out, dims, nil
}
