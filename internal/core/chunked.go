package core

import (
	"fmt"

	"fzmod/internal/device"
	"fzmod/internal/fzio"
	"fzmod/internal/grid"
	"fzmod/internal/preprocess"
	"fzmod/internal/stf"
)

// The chunked graph partitions the field into independent slabs along its
// slowest-varying dimension and declares one compression sub-graph per
// slab (predict → encode → serialize, plus the secondary pass when
// attached), joined by a single assembly task that reads every chunk's
// serialized container and emits the chunked fzio container. The STF
// scheduler executes the graph over bounded per-place stream pools, so
// chunk concurrency is a property of the engine, not of this builder.
// Decompression mirrors this shape (see exec.go): every chunk decodes
// through its own sub-graph, so the read path is fully parallel.
//
// The error bound is resolved once against the whole field (a relative
// bound normalizes by the global value range, exactly as the monolithic
// path does) and applied to every chunk as an absolute bound, so chunked
// and monolithic compression enforce the identical tolerance and each
// chunk's reconstruction is bit-exact with the monolithic pipeline run on
// that slab.

const (
	// DefaultChunkElems is the target chunk granularity, in elements
	// (8 MiB of float32 — large enough to amortize per-chunk container
	// overhead, small enough to expose parallelism on modest fields).
	DefaultChunkElems = 2 << 20

	// AutoChunkElems is the input size, in elements, at which
	// Pipeline.Compress switches to the chunked graph automatically
	// (64 MiB of float32).
	AutoChunkElems = 16 << 20
)

// ChunkOpts configures the chunked graph. The zero value selects sane
// defaults: DefaultChunkElems-sized chunks and stream pools as wide as the
// platform's worker count at each place.
type ChunkOpts struct {
	// ChunkElems is the target elements per chunk; the builder rounds it
	// to whole planes of the slowest-varying dimension. 0 selects
	// DefaultChunkElems.
	ChunkElems int
	// Workers caps the scheduler's per-place stream-pool width — the
	// number of task bodies in flight at one place. 0 selects the
	// platform's worker width.
	Workers int
}

// planesFor converts a target element count into whole planes of the
// slowest dimension (at least one).
func planesFor(dims grid.Dims, chunkElems int) int {
	if chunkElems <= 0 {
		chunkElems = DefaultChunkElems
	}
	planes := chunkElems / dims.PlaneElems()
	if planes < 1 {
		planes = 1
	}
	return planes
}

// CompressChunked compresses the field through the chunked task graph.
// Fields that fit in a single chunk lower to the monolithic one-chunk
// graph (producing a monolithic container); Decompress handles both.
func (pl *Pipeline) CompressChunked(p *device.Platform, data []float32, dims grid.Dims, eb preprocess.ErrorBound, opts ChunkOpts) ([]byte, error) {
	blob, _, err := pl.CompressChunkedReport(p, data, dims, eb, opts)
	return blob, err
}

// CompressChunkedReport is CompressChunked returning the executor report.
func (pl *Pipeline) CompressChunkedReport(p *device.Platform, data []float32, dims grid.Dims, eb preprocess.ErrorBound, opts ChunkOpts) ([]byte, *ExecReport, error) {
	if dims.N() != len(data) {
		return nil, nil, fmt.Errorf("core: dims %v do not match %d values", dims, len(data))
	}
	planes := planesFor(dims, opts.ChunkElems)
	slabs := grid.SplitSlabs(dims, planes)
	if len(slabs) < 2 {
		return pl.CompressMonolithicReport(p, data, dims, eb)
	}
	absEB, _, err := preprocess.Resolve(p, pl.PredPlace, data, eb)
	if err != nil {
		return nil, nil, err
	}
	relEB := 0.0
	if eb.Mode == preprocess.Rel {
		relEB = eb.Value
	}

	workers := opts.Workers
	if workers <= 0 {
		workers = p.Workers(pl.PredPlace)
	}
	if workers > len(slabs) {
		workers = len(slabs)
	}
	ctx := stf.NewCtxN(p, workers)

	// One sub-graph per slab; each chunk is compressed under the globally
	// resolved absolute bound, so per-chunk inner containers are
	// byte-identical to a monolithic run on that slab.
	jobs := make([]*compressJob, len(slabs))
	blobRefs := make([]stf.DataRef, len(slabs))
	for i, sl := range slabs {
		chunk := data[sl.Lo : sl.Lo+sl.Dims.N()]
		jobs[i] = pl.addCompressTasks(ctx, fmt.Sprintf("c%d.", i), chunk, sl.Dims, absEB, 0)
		blobRefs[i] = jobs[i].blobTok
	}

	// Assembly: the only task reading every chunk's serialized container.
	var out []byte
	ctx.Task("assemble").On(device.Host).Reads(blobRefs...).
		Do(func(ti *stf.TaskInstance) error {
			blobs := make([][]byte, len(slabs))
			perPlanes := make([]int, len(slabs))
			for i, sl := range slabs {
				blobs[i] = jobs[i].blob
				perPlanes[i] = sl.Planes
			}
			assembled, err := fzio.MarshalChunked(fzio.ChunkedHeader{
				Pipeline: pl.PipelineName,
				Dims:     dims,
				EB:       absEB,
				RelEB:    relEB,
				Planes:   planes,
			}, blobs, perPlanes)
			if err != nil {
				return err
			}
			out = assembled
			return nil
		})

	err = ctx.Finalize()
	report := execReport(ctx)
	ctx.Release()
	if err != nil {
		return nil, report, err
	}
	return out, report, nil
}

// DecompressChunked reconstructs a field from a chunked container through
// the per-chunk decode graph. Each chunk payload is a self-describing
// monolithic container, so any registered module set can decode it.
func DecompressChunked(p *device.Platform, blob []byte) ([]float32, grid.Dims, error) {
	vals, dims, _, err := decompressChunkedReport(p, blob)
	return vals, dims, err
}
