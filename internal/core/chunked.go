package core

import (
	"context"
	"fmt"

	"fzmod/internal/device"
	"fzmod/internal/fzio"
	"fzmod/internal/grid"
	"fzmod/internal/preprocess"
	"fzmod/internal/stf"
)

// The chunked graph partitions the field into independent slabs along its
// slowest-varying dimension and declares one compression sub-graph per
// slab. On the default (non-secondary) path the sub-graphs are joined by
// a layout task that computes the output container's chunk table from the
// chunks' exact serialized sizes, and per-chunk serialize tasks then
// scatter-write their containers (sealing the table CRCs) directly into
// the final output buffer — no staging blob, no gather copy. Pipelines
// with a secondary encoder keep the gather assembly (chunk sizes are
// unknown until the secondary pass runs). The STF scheduler executes the
// graph over per-place work-stealing worker pools, so chunk concurrency
// is a property of the engine, not of this builder.
// Decompression mirrors this shape (see exec.go): every chunk decodes
// through its own sub-graph, so the read path is fully parallel.
//
// The error bound is resolved once against the whole field (a relative
// bound normalizes by the global value range, exactly as the monolithic
// path does) and applied to every chunk as an absolute bound, so chunked
// and monolithic compression enforce the identical tolerance and each
// chunk's reconstruction is bit-exact with the monolithic pipeline run on
// that slab.

const (
	// DefaultChunkElems is the target chunk granularity, in elements
	// (8 MiB of float32 — large enough to amortize per-chunk container
	// overhead, small enough to expose parallelism on modest fields).
	DefaultChunkElems = 2 << 20

	// AutoChunkElems is the input size, in elements, at which
	// Pipeline.Compress switches to the chunked graph automatically
	// (64 MiB of float32).
	AutoChunkElems = 16 << 20
)

// planesFor converts a target element count into whole planes of the
// slowest dimension (at least one).
func planesFor(dims grid.Dims, chunkElems int) int {
	if chunkElems <= 0 {
		chunkElems = DefaultChunkElems
	}
	planes := chunkElems / dims.PlaneElems()
	if planes < 1 {
		planes = 1
	}
	return planes
}

// CompressChunked compresses the field through the chunked task graph.
// Fields that fit in a single chunk lower to the monolithic one-chunk
// graph (producing a monolithic container); Decompress handles both.
func (pl *Pipeline) CompressChunked(p *device.Platform, data []float32, dims grid.Dims, eb preprocess.ErrorBound, opts ChunkOpts) ([]byte, error) {
	blob, _, err := pl.CompressChunkedReportCtx(context.Background(), p, data, dims, eb, opts)
	return blob, err
}

// CompressChunkedCtx is CompressChunked bounded by gctx: once the context
// is canceled or its deadline passes, task bodies not yet started are
// abandoned at their dispatch boundary, the graph drains, and the
// context's error is returned (pooled intermediates are swept back, so a
// canceled request leaks neither goroutines nor slabs).
func (pl *Pipeline) CompressChunkedCtx(gctx context.Context, p *device.Platform, data []float32, dims grid.Dims, eb preprocess.ErrorBound, opts ChunkOpts) ([]byte, error) {
	blob, _, err := pl.CompressChunkedReportCtx(gctx, p, data, dims, eb, opts)
	return blob, err
}

// CompressChunkedReport is CompressChunked returning the executor report.
func (pl *Pipeline) CompressChunkedReport(p *device.Platform, data []float32, dims grid.Dims, eb preprocess.ErrorBound, opts ChunkOpts) ([]byte, *ExecReport, error) {
	return pl.CompressChunkedReportCtx(context.Background(), p, data, dims, eb, opts)
}

// CompressChunkedReportCtx is CompressChunkedCtx returning the executor
// report.
func (pl *Pipeline) CompressChunkedReportCtx(gctx context.Context, p *device.Platform, data []float32, dims grid.Dims, eb preprocess.ErrorBound, opts ChunkOpts) ([]byte, *ExecReport, error) {
	if dims.N() != len(data) {
		return nil, nil, fmt.Errorf("core: dims %v do not match %d values", dims, len(data))
	}
	planes := planesFor(dims, opts.ChunkElems)
	slabs := grid.SplitSlabs(dims, planes)
	if len(slabs) < 2 {
		return pl.CompressMonolithicReportCtx(gctx, p, data, dims, eb)
	}
	absEB, _, err := preprocess.Resolve(p, pl.PredPlace, data, eb)
	if err != nil {
		return nil, nil, err
	}
	relEB := 0.0
	if eb.Mode == preprocess.Rel {
		relEB = eb.Value
	}

	workers := opts.Workers
	if workers <= 0 {
		workers = p.Workers(pl.PredPlace)
	}
	if workers > len(slabs) {
		workers = len(slabs)
	}
	// The worker budget caps the whole operation: chunk-level scheduler
	// width and, through the narrowed platform view, the kernel width of
	// every launch. Chunk workers are therefore shared-nothing — each runs
	// its chunk's stages inline on one core when the budget equals the
	// chunk-level width.
	exec := p.WithWorkers(workers)
	ctx := stf.NewCtxN(exec, workers).Bind(gctx)

	hdr := fzio.ChunkedHeader{
		Pipeline: pl.PipelineName,
		Dims:     dims,
		EB:       absEB,
		RelEB:    relEB,
		Planes:   planes,
	}
	perPlanes := make([]int, len(slabs))
	for i, sl := range slabs {
		perPlanes[i] = sl.Planes
	}

	// One sub-graph per slab; each chunk is compressed under the globally
	// resolved absolute bound, so per-chunk inner containers are
	// byte-identical to a monolithic run on that slab.
	jobs := make([]*compressJob, len(slabs))

	if pl.Sec != nil {
		// Secondary-encoded chunks have unknown final sizes until the
		// secondary pass runs, so they keep the gather assembly: serialize
		// (→ secondary) per chunk, then one task concatenates the blobs.
		blobRefs := make([]stf.DataRef, len(slabs))
		for i, sl := range slabs {
			chunk := data[sl.Lo : sl.Lo+sl.Dims.N()]
			jobs[i] = pl.addCompressTasks(ctx, fmt.Sprintf("c%d.", i), chunk, sl.Dims, absEB, 0, false)
			blobRefs[i] = jobs[i].blobTok
		}
		var out []byte
		ctx.Task("assemble").On(device.Host).Reads(blobRefs...).
			Do(func(ti *stf.TaskInstance) error {
				blobs := make([][]byte, len(slabs))
				for i := range slabs {
					blobs[i] = jobs[i].blob
				}
				assembled, err := fzio.MarshalChunked(hdr, blobs, perPlanes)
				if err != nil {
					return err
				}
				out = assembled
				return nil
			})
		err = ctx.Finalize()
		report := execReport(ctx)
		ctx.Release()
		if err != nil {
			sweepJobs(p.ScratchPool(), jobs)
			return nil, report, err
		}
		return out, report, nil
	}

	// Zero-copy scatter assembly: every chunk's exact serialized size is
	// known once its encode finishes (the container layout is arithmetic
	// over the stage outputs), so the layout task computes the chunked
	// container's offset table up front and each chunk's serialize task
	// writes its container — and seals its table CRC — directly into its
	// disjoint window of the final output buffer. The serial gather task
	// and its whole-container staging copy are gone.
	encRefs := make([]stf.DataRef, len(slabs))
	for i, sl := range slabs {
		chunk := data[sl.Lo : sl.Lo+sl.Dims.N()]
		jobs[i] = pl.addPredictEncodeTasks(ctx, fmt.Sprintf("c%d.", i), chunk, sl.Dims, absEB)
		encRefs[i] = jobs[i].encTok
	}
	var asm *fzio.ChunkedAssembly
	layoutTok := stf.NewToken(ctx, "layout")
	ctx.Task("layout").On(device.Host).Reads(encRefs...).Writes(layoutTok.D()).
		Do(func(ti *stf.TaskInstance) error {
			sizes := make([]int, len(slabs))
			for i, sl := range slabs {
				inner, err := pl.buildInner(sl.Dims, absEB, 0, jobs[i].pred, jobs[i].payload)
				if err != nil {
					return err
				}
				jobs[i].inner = inner
				sizes[i] = inner.MarshaledSize()
			}
			a, err := fzio.NewChunkedAssembly(hdr, sizes, perPlanes)
			if err != nil {
				return err
			}
			asm = a
			return nil
		})
	for i := range slabs {
		i := i
		ctx.Task(fmt.Sprintf("c%d.serialize", i)).On(device.Host).Reads(layoutTok.D()).
			Do(func(ti *stf.TaskInstance) error {
				if _, err := jobs[i].inner.MarshalInto(asm.ChunkSlice(i)); err != nil {
					return err
				}
				asm.SealChunk(i)
				return nil
			})
	}

	err = ctx.Finalize()
	report := execReport(ctx)
	ctx.Release()
	if err != nil {
		sweepJobs(p.ScratchPool(), jobs)
		return nil, report, err
	}
	return asm.Bytes(), report, nil
}

// DecompressChunked reconstructs a field from a chunked container through
// the per-chunk decode graph. Each chunk payload is a self-describing
// monolithic container, so any registered module set can decode it.
func DecompressChunked(p *device.Platform, blob []byte) ([]float32, grid.Dims, error) {
	vals, dims, _, err := decompressChunkedReport(context.Background(), p, blob, 0)
	return vals, dims, err
}
