package core

import (
	"bytes"
	"io"
	"runtime"
	"testing"

	"fzmod/internal/device"
	"fzmod/internal/fzio"
	"fzmod/internal/grid"
	"fzmod/internal/metrics"
	"fzmod/internal/preprocess"
	"fzmod/internal/sdrbench"
)

// streamField builds the shared test workload: a small NYX field cut into
// several chunks so a narrow window genuinely cycles.
func streamField() ([]float32, grid.Dims, int) {
	dims := grid.D3(16, 16, 24)
	chunkElems := 16 * 16 * 4 // 4 planes per chunk, 6 chunks
	return sdrbench.GenNYX(dims, 11), dims, chunkElems
}

// TestCompressStreamEquivalence: for every preset, with and without the
// secondary encoder, the streamed container reassembles bit-identically to
// the in-memory chunked container — the guarantee that the out-of-core
// path is the same compressor, not a variant.
func TestCompressStreamEquivalence(t *testing.T) {
	p := device.NewTestPlatform()
	defer p.Close()
	data, dims, chunkElems := streamField()
	for _, base := range Presets() {
		for _, secondary := range []bool{false, true} {
			pl := base
			name := pl.Name()
			if secondary {
				pl = pl.WithSecondary(LZSecondary{})
				name = pl.Name()
			}
			t.Run(name, func(t *testing.T) {
				absEB, _, err := preprocess.Resolve(p, device.Host, data, preprocess.RelBound(1e-3))
				if err != nil {
					t.Fatal(err)
				}
				eb := preprocess.AbsBound(absEB)
				chunked, err := pl.CompressChunked(p, data, dims, eb, ChunkOpts{ChunkElems: chunkElems})
				if err != nil {
					t.Fatal(err)
				}
				if !fzio.IsChunked(chunked) {
					t.Fatal("reference path did not produce a chunked container")
				}
				var streamBuf bytes.Buffer
				written, err := pl.CompressStream(p, bytes.NewReader(device.F32Bytes(data)), dims, eb,
					&streamBuf, StreamOpts{ChunkElems: chunkElems, Window: 2})
				if err != nil {
					t.Fatal(err)
				}
				if written != int64(streamBuf.Len()) {
					t.Errorf("written = %d, buffer has %d", written, streamBuf.Len())
				}
				if !fzio.IsStream(streamBuf.Bytes()) {
					t.Fatal("CompressStream did not produce a stream container")
				}
				re, err := fzio.ReassembleChunked(bytes.NewReader(streamBuf.Bytes()))
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(re, chunked) {
					t.Error("reassembled stream differs from CompressChunked output")
				}

				// The streaming read path must reconstruct bit-identically
				// to the in-memory decoder.
				want, wantDims, err := Decompress(p, chunked)
				if err != nil {
					t.Fatal(err)
				}
				var out bytes.Buffer
				gotDims, err := DecompressStream(p, bytes.NewReader(streamBuf.Bytes()), &out, StreamOpts{Window: 2})
				if err != nil {
					t.Fatal(err)
				}
				if gotDims != wantDims {
					t.Fatalf("dims %v, want %v", gotDims, wantDims)
				}
				if !bytes.Equal(out.Bytes(), device.F32Bytes(want)) {
					t.Error("streamed reconstruction differs from in-memory reconstruction")
				}
				got := device.BytesF32(out.Bytes())
				if i := metrics.VerifyBound(data, got, absEB); i != -1 {
					t.Errorf("bound violated at index %d", i)
				}
			})
		}
	}
}

// TestCompressStreamWindows: every window width (including 1, a width
// larger than the chunk count, and one that does not divide it) produces
// the identical stream.
func TestCompressStreamWindows(t *testing.T) {
	p := device.NewTestPlatform()
	defer p.Close()
	data, dims, chunkElems := streamField()
	pl := NewDefault()
	absEB, _, err := preprocess.Resolve(p, device.Host, data, preprocess.RelBound(1e-3))
	if err != nil {
		t.Fatal(err)
	}
	eb := preprocess.AbsBound(absEB)
	var ref bytes.Buffer
	if _, err := pl.CompressStream(p, bytes.NewReader(device.F32Bytes(data)), dims, eb,
		&ref, StreamOpts{ChunkElems: chunkElems, Window: 2}); err != nil {
		t.Fatal(err)
	}
	for _, window := range []int{1, 3, 4, 99} {
		var buf bytes.Buffer
		if _, err := pl.CompressStream(p, bytes.NewReader(device.F32Bytes(data)), dims, eb,
			&buf, StreamOpts{ChunkElems: chunkElems, Window: window}); err != nil {
			t.Fatalf("window %d: %v", window, err)
		}
		if !bytes.Equal(buf.Bytes(), ref.Bytes()) {
			t.Errorf("window %d: stream differs from window 2", window)
		}
		var out bytes.Buffer
		if _, err := DecompressStream(p, bytes.NewReader(buf.Bytes()), &out, StreamOpts{Window: window}); err != nil {
			t.Fatalf("window %d decompress: %v", window, err)
		}
		got := device.BytesF32(out.Bytes())
		if i := metrics.VerifyBound(data, got, absEB); i != -1 {
			t.Errorf("window %d: bound violated at %d", window, i)
		}
	}
}

// TestCompressStreamSingleChunk: a field that fits one chunk still streams
// (unlike CompressChunked, which falls back to a monolithic container, the
// stream format always frames).
func TestCompressStreamSingleChunk(t *testing.T) {
	p := device.NewTestPlatform()
	defer p.Close()
	dims := grid.D3(8, 8, 4)
	data := sdrbench.GenNYX(dims, 3)
	absEB, _, err := preprocess.Resolve(p, device.Host, data, preprocess.RelBound(1e-3))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := NewDefault().CompressStream(p, bytes.NewReader(device.F32Bytes(data)), dims,
		preprocess.AbsBound(absEB), &buf, StreamOpts{}); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	gotDims, err := DecompressStream(p, bytes.NewReader(buf.Bytes()), &out, StreamOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if gotDims != dims {
		t.Fatalf("dims %v, want %v", gotDims, dims)
	}
	got := device.BytesF32(out.Bytes())
	if i := metrics.VerifyBound(data, got, absEB); i != -1 {
		t.Errorf("bound violated at %d", i)
	}
}

func TestCompressStreamErrors(t *testing.T) {
	p := device.NewTestPlatform()
	defer p.Close()
	pl := NewDefault()
	dims := grid.D3(8, 8, 8)
	data := sdrbench.GenNYX(dims, 3)
	raw := device.F32Bytes(data)
	absEB, _, err := preprocess.Resolve(p, device.Host, data, preprocess.RelBound(1e-3))
	if err != nil {
		t.Fatal(err)
	}
	eb := preprocess.AbsBound(absEB)

	// Relative bounds need the whole field; streaming must refuse.
	if _, err := pl.CompressStream(p, bytes.NewReader(raw), dims, preprocess.RelBound(1e-3), io.Discard, StreamOpts{}); err == nil {
		t.Error("relative bound should be rejected")
	}
	if _, err := pl.CompressStream(p, bytes.NewReader(raw), dims, preprocess.AbsBound(0), io.Discard, StreamOpts{}); err == nil {
		t.Error("zero bound should be rejected")
	}
	if _, err := pl.CompressStream(p, bytes.NewReader(raw), grid.Dims{}, eb, io.Discard, StreamOpts{}); err == nil {
		t.Error("invalid dims should be rejected")
	}
	// Input shorter than dims: the slab read must fail cleanly.
	if _, err := pl.CompressStream(p, bytes.NewReader(raw[:len(raw)/2]), dims, eb, io.Discard, StreamOpts{ChunkElems: 128}); err == nil {
		t.Error("short input should be rejected")
	}
	// Truncated stream into the decoder.
	var buf bytes.Buffer
	if _, err := pl.CompressStream(p, bytes.NewReader(raw), dims, eb, &buf, StreamOpts{ChunkElems: 128}); err != nil {
		t.Fatal(err)
	}
	if _, err := DecompressStream(p, bytes.NewReader(buf.Bytes()[:buf.Len()-9]), io.Discard, StreamOpts{}); err == nil {
		t.Error("truncated stream should be rejected")
	}
	if _, err := DecompressStream(p, bytes.NewReader([]byte("FZMDnope")), io.Discard, StreamOpts{}); err == nil {
		t.Error("non-stream input should be rejected")
	}
}

// TestCompressStreamMemoryBounded is the out-of-core guarantee: steady-state
// compression of a field 8× larger than the window allocates a small
// multiple of the window, not of the field. The first run warms the
// platform pool; the second is measured.
func TestCompressStreamMemoryBounded(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation measurement")
	}
	if device.RaceEnabled {
		t.Skip("sync.Pool drops puts nondeterministically under the race detector")
	}
	p := device.NewTestPlatform()
	defer p.Close()
	dims := grid.D3(64, 64, 64) // 256 Ki elements, 1 MiB
	data := sdrbench.GenNYX(dims, 7)
	raw := device.F32Bytes(data)
	chunkElems := dims.N() / 8 // 8 chunks
	opts := StreamOpts{ChunkElems: chunkElems, Window: 1}
	windowBytes := 4 * chunkElems // one slab resident at a time
	fieldBytes := len(raw)
	pl := NewDefault()

	absEB, _, err := preprocess.Resolve(p, device.Host, data, preprocess.RelBound(1e-3))
	if err != nil {
		t.Fatal(err)
	}
	run := func() {
		if _, err := pl.CompressStream(p, bytes.NewReader(raw), dims, preprocess.AbsBound(absEB), io.Discard, opts); err != nil {
			t.Fatal(err)
		}
	}
	run() // warm the pool
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	run()
	runtime.ReadMemStats(&after)
	bytesPerOp := after.TotalAlloc - before.TotalAlloc

	// The pin: comfortably below the field (the in-memory path cannot go
	// below 1× field just for the input) and a small multiple of the
	// window. Both margins are generous; the steady-state measurement on a
	// warm pool sits far under them.
	if bytesPerOp > uint64(fieldBytes)/2 {
		t.Errorf("steady-state bytes/op = %d, want < field/2 = %d (field %d bytes)",
			bytesPerOp, fieldBytes/2, fieldBytes)
	}
	if bytesPerOp > uint64(3*windowBytes) {
		t.Errorf("steady-state bytes/op = %d, want < 3x window = %d (window %d bytes)",
			bytesPerOp, 3*windowBytes, windowBytes)
	}
	t.Logf("field %d bytes, window %d bytes, steady-state bytes/op %d", fieldBytes, windowBytes, bytesPerOp)
}
