package core

import (
	"fzmod/internal/device"
	"fzmod/internal/predictor/spline"
)

// The three pipelines the paper highlights and evaluates (§3.3).

// NewDefault builds FZMod-Default: the hybrid design — highly parallel
// Lorenzo predictor+quantizer at the accelerator, GPU-style histogram, and
// CPU Huffman coding. Balances throughput, ratio and quality.
func NewDefault() *Pipeline {
	return &Pipeline{
		PipelineName: "fzmod-default",
		Pred:         LorenzoPredictor{},
		Enc:          HuffmanEncoder{Hist: HistStandard},
		PredPlace:    device.Accel,
		EncPlace:     device.Host,
	}
}

// NewSpeed builds FZMod-Speed: same Lorenzo prediction, but the slow
// Huffman stage is swapped for the FZ-GPU bitshuffle+dictionary encoder,
// trading compression ratio for throughput.
func NewSpeed() *Pipeline {
	return &Pipeline{
		PipelineName: "fzmod-speed",
		Pred:         LorenzoPredictor{},
		Enc:          FZGEncoder{},
		PredPlace:    device.Accel,
		EncPlace:     device.Accel,
	}
}

// NewQuality builds FZMod-Quality: the Lorenzo predictor is replaced by
// the G-Interp interpolation predictor for higher prediction accuracy, and
// Huffman (with the top-k histogram, which suits the spiky code
// distribution interpolation produces) keeps the ratio high.
func NewQuality() *Pipeline {
	return &Pipeline{
		PipelineName: "fzmod-quality",
		Pred:         SplinePredictor{Config: spline.Config{Mode: spline.Cubic, TuneOrder: true}},
		Enc:          HuffmanEncoder{Hist: HistTopK},
		PredPlace:    device.Accel,
		EncPlace:     device.Host,
	}
}

// Presets returns the three evaluated pipelines in paper order.
func Presets() []*Pipeline {
	return []*Pipeline{NewDefault(), NewQuality(), NewSpeed()}
}

func init() {
	RegisterPredictor(LorenzoPredictor{})
	RegisterPredictor(SplinePredictor{Config: spline.Config{Mode: spline.Cubic, TuneOrder: true}})
	RegisterPredictor(SplinePredictor{Config: spline.Config{Mode: spline.Auto, TuneOrder: true}})
	RegisterEncoder(HuffmanEncoder{Hist: HistStandard})
	RegisterEncoder(HuffmanEncoder{Hist: HistTopK})
	RegisterEncoder(FZGEncoder{})
	RegisterSecondary(LZSecondary{})
}
