package core

import (
	"context"
	"fmt"
	"io"

	"fzmod/internal/device"
	"fzmod/internal/fzio"
	"fzmod/internal/grid"
	"fzmod/internal/preprocess"
	"fzmod/internal/stf"
)

// This file is the out-of-core layer over the task-graph engine: instead
// of requiring the whole field (and the whole compressed blob) resident in
// memory, CompressStream consumes an io.Reader slab window by slab window
// and DecompressStream produces an io.Writer the same way. Each window
// lowers onto the identical per-chunk sub-graphs the in-memory chunked
// path declares (so per-chunk output is bit-identical to CompressChunked),
// executed over one reused stf context whose worker pools stay warm across
// windows; slab inputs, staging buffers and quantization codes all cycle
// through the platform's BufPool, keeping resident memory O(window)
// regardless of field size. The on-wire format is the FZMS streaming
// container (see fzio/stream.go): chunks flush as they finish, the index
// rides in a trailer.

const (
	// DefaultStreamWindow is the default number of slabs in flight: deep
	// enough to keep every stage of the per-chunk graphs busy, shallow
	// enough that resident memory stays a small multiple of the chunk
	// size.
	DefaultStreamWindow = 4

	// streamStageBytes is the staging-buffer size for io<->float32
	// conversion (drawn from the platform pool, recycled per call).
	streamStageBytes = 256 << 10
)

// CompressStream compresses a dims-shaped field of little-endian float32
// values read from r into a streaming (FZMS) container written to w,
// holding at most opts.Window slabs in memory at a time. The error bound
// must be absolute: a value-range-relative bound needs a pass over the
// whole field, which an out-of-core compressor by definition cannot take —
// resolve it first (preprocess.Resolve) and pass the absolute bound.
// Per-chunk payloads are bit-identical to CompressChunked on the same
// field, so reassembling the stream yields that container byte for byte.
// Returns the compressed bytes written.
func (pl *Pipeline) CompressStream(p *device.Platform, r io.Reader, dims grid.Dims, eb preprocess.ErrorBound, w io.Writer, opts StreamOpts) (int64, error) {
	return pl.CompressStreamCtx(context.Background(), p, r, dims, eb, w, opts)
}

// CompressStreamCtx is CompressStream bounded by gctx: cancellation stops
// the current window's unstarted task bodies at their dispatch boundary,
// drains the graph, sweeps pooled intermediates back, and returns the
// context's error with the bytes written so far (the stream is left
// truncated mid-container, exactly as any other mid-stream error leaves
// it).
func (pl *Pipeline) CompressStreamCtx(gctx context.Context, p *device.Platform, r io.Reader, dims grid.Dims, eb preprocess.ErrorBound, w io.Writer, opts StreamOpts) (int64, error) {
	if !dims.Valid() {
		return 0, fmt.Errorf("core: invalid dims %v", dims)
	}
	if eb.Mode != preprocess.Abs {
		return 0, fmt.Errorf("core: streaming compression requires an absolute error bound (a relative bound needs the whole field's value range; resolve it first)")
	}
	if eb.Value <= 0 {
		return 0, fmt.Errorf("core: error bound must be positive, got %g", eb.Value)
	}
	absEB := eb.Value
	planes := planesFor(dims, opts.ChunkElems)
	slabs := grid.SplitSlabs(dims, planes)

	sw, err := fzio.NewStreamWriter(w, fzio.ChunkedHeader{
		Pipeline: pl.PipelineName,
		Dims:     dims,
		EB:       absEB,
		Planes:   planes,
	})
	if err != nil {
		return 0, err
	}

	window := opts.window(len(slabs))
	workers := opts.workers(p, pl.PredPlace, window)
	// The worker budget caps the whole operation, exactly as in the
	// in-memory chunked path: scheduler width and kernel width both come
	// from the narrowed platform view.
	exec := p.WithWorkers(workers)
	bp := p.ScratchPool()
	stage := bp.GetBytes(streamStageBytes, false)
	defer bp.PutBytes(stage)
	ctx := stf.NewCtxN(exec, workers).Bind(gctx)
	defer ctx.Release()

	for start := 0; start < len(slabs); start += window {
		batch := slabs[start:min(start+window, len(slabs))]
		bufs := make([]*device.Slab[float32], len(batch))
		jobs := make([]*compressJob, len(batch))
		var readErr error
		for i, sl := range batch {
			bufs[i] = bp.GetF32(sl.Elems(), false)
			if err := device.ReadF32(r, bufs[i].Data, stage.Data); err != nil {
				readErr = fmt.Errorf("core: reading slab %d (%d values): %w", start+i, sl.Elems(), err)
				break
			}
			// Pooled serialize: each chunk's container is written into an
			// exact-size pooled slab, flushed as a frame below, and the
			// slab recycled — the window's staging cost is the frames
			// themselves, not a fresh blob per chunk.
			jobs[i] = pl.addCompressTasks(ctx, fmt.Sprintf("s%d.", start+i), bufs[i].Data, sl.Dims, absEB, 0, true)
		}
		// Reset drains whatever was declared (possibly a partial batch on a
		// read error) before the input slabs go back to the pool.
		err := ctx.Reset()
		for _, b := range bufs {
			bp.PutF32(b)
		}
		release := func(from int) {
			// Failed or canceled sub-graphs may still hold their pooled code
			// buffers as well as the container slab; sweep both.
			sweepJobs(bp, jobs[from:])
		}
		if readErr != nil {
			release(0)
			return sw.BytesWritten(), readErr
		}
		if err != nil {
			release(0)
			return sw.BytesWritten(), err
		}
		for i, sl := range batch {
			werr := sw.WriteChunk(jobs[i].blob, sl.Planes)
			if jobs[i].blobSlab != nil {
				bp.PutBytes(jobs[i].blobSlab)
				jobs[i].blobSlab = nil
			}
			if werr != nil {
				release(i + 1)
				return sw.BytesWritten(), werr
			}
		}
	}
	if err := sw.Close(); err != nil {
		return sw.BytesWritten(), err
	}
	return sw.BytesWritten(), nil
}

// DecompressStream reconstructs a streaming (FZMS) container read from r,
// writing the field to w as little-endian float32 bytes in storage order,
// with at most opts.Window chunks in flight. Chunks within a window decode
// in parallel through the same fetch → decode → reconstruct sub-graphs the
// in-memory chunked read path uses; output is flushed in order as each
// window completes. Returns the decoded field geometry.
func DecompressStream(p *device.Platform, r io.Reader, w io.Writer, opts StreamOpts) (grid.Dims, error) {
	return DecompressStreamCtx(context.Background(), p, r, w, opts)
}

// DecompressStreamCtx is DecompressStream bounded by gctx, with the
// cancellation semantics of CompressStreamCtx: the current window drains,
// nothing further is read, and the context's error is returned.
func DecompressStreamCtx(gctx context.Context, p *device.Platform, r io.Reader, w io.Writer, opts StreamOpts) (grid.Dims, error) {
	sr, err := fzio.NewStreamReader(r)
	if err != nil {
		return grid.Dims{}, err
	}
	dims := sr.Header().Dims
	nChunks := 1
	if sr.Header().Planes > 0 {
		nChunks = (dims.SlowExtent() + sr.Header().Planes - 1) / sr.Header().Planes
	}
	window := opts.window(nChunks)
	workers := opts.workers(p, device.Accel, window)
	exec := p.WithWorkers(workers)
	bp := p.ScratchPool()
	stage := bp.GetBytes(streamStageBytes, false)
	defer bp.PutBytes(stage)
	ctx := stf.NewCtxN(exec, workers).Bind(gctx)
	defer ctx.Release()

	// Per-slot payload buffers are reused across windows; they grow to the
	// largest chunk seen and stay there, so steady-state reading allocates
	// nothing.
	payloads := make([][]byte, window)
	jobs := make([]*decompressJob, window)
	chunkIdx := 0
	for done := false; !done; {
		n := 0 // chunks in this window
		for ; n < window; n++ {
			payload, planes, err := sr.Next(payloads[n])
			if err == io.EOF {
				done = true
				break
			}
			if err != nil {
				// Drain any already-declared sub-graphs before returning.
				ctx.Reset()
				return grid.Dims{}, err
			}
			payloads[n] = payload
			idx := chunkIdx + n
			want := dims.WithSlowExtent(planes)
			job := &decompressJob{}
			jobs[n] = job
			prefix := fmt.Sprintf("s%d.", idx)
			fetchTok := stf.NewToken(ctx, prefix+"container")
			codesTok := stf.NewToken(ctx, prefix+"codes")
			blob := payload
			ctx.Task(prefix + "fetch").On(device.Host).Writes(fetchTok.D()).
				Do(func(ti *stf.TaskInstance) error {
					if fzio.IsChunked(blob) || fzio.IsStream(blob) {
						return fmt.Errorf("core: chunk %d: nested container", idx)
					}
					c, err := fzio.Unmarshal(blob)
					if err != nil {
						return err
					}
					if c.Has(segSec) {
						if c, err = unwrapSecondary(exec, c); err != nil {
							return err
						}
					}
					job.c = c
					return nil
				})
			ctx.Task(prefix + "decode").On(device.Accel).Reads(fetchTok.D()).Writes(codesTok.D()).
				Do(func(ti *stf.TaskInstance) error { return job.decode(exec) })
			ctx.Task(prefix + "reconstruct").On(device.Accel).Reads(codesTok.D()).
				Do(func(ti *stf.TaskInstance) error {
					if job.dims != want {
						return fmt.Errorf("core: chunk %d dims %v, want %v", idx, job.dims, want)
					}
					return job.reconstruct(exec)
				})
		}
		if err := ctx.Reset(); err != nil {
			return grid.Dims{}, err
		}
		for i := 0; i < n; i++ {
			if err := device.WriteF32(w, jobs[i].vals, stage.Data); err != nil {
				return grid.Dims{}, fmt.Errorf("core: writing chunk %d: %w", chunkIdx+i, err)
			}
			jobs[i] = nil
		}
		chunkIdx += n
	}
	return dims, nil
}
