package core

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"fzmod/internal/device"
	"fzmod/internal/fzio"
	"fzmod/internal/grid"
	"fzmod/internal/preprocess"
	"fzmod/internal/sdrbench"
)

// This file is the chaos suite: region reads driven through the seeded
// fault injector (fzio.FaultFetcher) behind the retry layer
// (fzio.RetryFetcher), concurrent readers sharing one SlabCache through
// the single-flight protocol, and the pool-balance / bit-identity
// invariants that must hold under every injected failure. Run under
// -race: the flight map, the LRU and the per-read accounting are exactly
// the shared mutable state the detector exists for.

// chaosContainer compresses a deterministic field into an 8-chunk FZMC
// container and returns it with its fault-free full decompression.
func chaosContainer(t *testing.T) ([]byte, []float32, grid.Dims) {
	t.Helper()
	dims := grid.D3(24, 20, 32)
	data := sdrbench.GenHURR(dims, 31)
	blob, err := NewDefault().CompressChunked(tp, data, dims, preprocess.RelBound(1e-4),
		ChunkOpts{ChunkElems: dims.PlaneElems() * 4, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	full, _, err := Decompress(tp, blob)
	if err != nil {
		t.Fatal(err)
	}
	return blob, full, dims
}

// retryOver wraps a fetcher in the chaos suite's retry policy: enough
// attempts that a 30% per-attempt fault rate cannot plausibly exhaust
// them, and a no-op sleep so the suite spends its time decoding, not
// backing off.
func retryOver(f fzio.ChunkFetcher) *fzio.RetryFetcher {
	return fzio.NewRetryFetcher(f, fzio.RetryPolicy{
		MaxAttempts: 16,
		Sleep:       func(time.Duration) {},
	})
}

// TestChaosRegionBitIdentical is the acceptance criterion: with the
// injector at a 30% transient error rate plus truncation faults, every
// region read over every selection shape returns bytes identical to the
// fault-free full decompression, with the retries visible in RegionStats.
func TestChaosRegionBitIdentical(t *testing.T) {
	blob, full, dims := chaosContainer(t)
	faulty := fzio.NewFaultFetcher(fzio.NewBytesFetcher(blob), fzio.FaultConfig{
		Seed:         99,
		ErrorRate:    0.3,
		TruncateRate: 0.1,
	})
	retrying := retryOver(faulty)
	reg, err := OpenRegion(tp, retrying, RegionOpts{Workers: 4})
	if err != nil {
		t.Fatalf("OpenRegion over faulty store: %v", err)
	}
	var attempts, retries int64
	for _, sel := range regionSels(dims) {
		got, rep, err := reg.ReadReport(sel)
		if err != nil {
			t.Fatalf("read %v under faults: %v", sel, err)
		}
		want := naiveExtract(full, dims, sel)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("read %v: byte-diverged at element %d under faults", sel, i)
			}
		}
		attempts += rep.Region.FetchAttempts
		retries += rep.Region.FetchRetries
	}
	if retries == 0 {
		t.Fatal("no retries recorded at a 30% fault rate — RegionStats accounting broken")
	}
	if attempts <= retries {
		t.Fatalf("attempts=%d retries=%d: attempts must include every fetch's first try", attempts, retries)
	}
	injected, _, truncated, _ := faulty.Injected()
	if injected == 0 || truncated == 0 {
		t.Fatalf("injector inert: %d errors, %d truncations", injected, truncated)
	}
}

// TestChaosSingleFlightLoad is the concurrent-reader load test: 16
// goroutines share one SlabCache over one flaky fetcher, and the
// single-flight protocol must hold the distinct-slab fetch count to
// exactly one successful fetch per distinct slab, every reader
// bit-identical to the serial decode.
func TestChaosSingleFlightLoad(t *testing.T) {
	blob, full, dims := chaosContainer(t)
	faulty := fzio.NewFaultFetcher(fzio.NewBytesFetcher(blob), fzio.FaultConfig{
		Seed:      7,
		ErrorRate: 0.3,
	})
	// The counter sits above the retry layer: it sees region-level
	// fetches (one per led flight), not per-attempt traffic.
	counting := fzio.NewCountingFetcher(retryOver(faulty))
	cache := NewSlabCache(int64(len(full)) * 8)
	reg, err := OpenRegion(tp, counting, RegionOpts{Workers: 2, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	counting.Reset() // drop the index fetch; count only slab traffic
	sel := FullRegion(dims)
	const readers = 16
	var wg sync.WaitGroup
	outs := make([][]float32, readers)
	stats := make([]RegionStats, readers)
	errs := make([]error, readers)
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got, rep, err := reg.ReadReport(sel)
			outs[i], errs[i] = got, err
			if rep != nil && rep.Region != nil {
				stats[i] = *rep.Region
			}
		}(i)
	}
	wg.Wait()

	nChunks := reg.Index().NumChunks()
	for i := 0; i < readers; i++ {
		if errs[i] != nil {
			t.Fatalf("reader %d: %v", i, errs[i])
		}
		for j := range full {
			if outs[i][j] != full[j] {
				t.Fatalf("reader %d diverged from the serial decode at element %d", i, j)
			}
		}
		if got := stats[i].Decoded + stats[i].CacheHits + stats[i].DedupHits; got != nChunks {
			t.Fatalf("reader %d accounting: decoded=%d + cacheHits=%d + dedupHits=%d != %d chunks",
				i, stats[i].Decoded, stats[i].CacheHits, stats[i].DedupHits, nChunks)
		}
	}
	// The single-flight guarantee: every distinct slab was fetched through
	// the region path exactly once, however the 16 readers interleaved.
	if counting.Reads() != int64(nChunks) {
		t.Fatalf("region-level fetches = %d, want exactly %d (one per distinct slab)",
			counting.Reads(), nChunks)
	}
	var dedup int
	for i := range stats {
		dedup += stats[i].DedupHits
	}
	if int64(dedup) != cache.DedupHits() {
		t.Fatalf("per-read dedup sum %d != cache dedup counter %d", dedup, cache.DedupHits())
	}
	if cs := cache.Stats(); cs.Flights != 0 {
		t.Fatalf("%d flights still registered after all readers returned", cs.Flights)
	}
}

// TestChaosPoolBalancedAfterFailures: every failing read — retries
// exhausted, CRC corruption — must leave the platform's scratch pool
// balanced (gets == puts), or the daemon would leak slabs under sustained
// faults.
func TestChaosPoolBalancedAfterFailures(t *testing.T) {
	blob, full, dims := chaosContainer(t)
	p := device.NewTestPlatform() // private platform: pool deltas are ours alone
	sel := FullRegion(dims)

	// Exhausted retries: 100% error rate, so every fetch fails after its
	// last attempt.
	dead := retryOver(fzio.NewFaultFetcher(fzio.NewBytesFetcher(blob), fzio.FaultConfig{ErrorRate: 1}))
	if _, err := DecompressRegion(p, dead, sel, RegionOpts{Workers: 2}); err == nil {
		t.Fatal("read over a dead store succeeded")
	} else if !fzio.Transient(err) {
		t.Fatalf("exhausted-retries error %v must stay transient-classified for callers", err)
	}

	// Corruption: the CRC check must refuse the bytes (never silently
	// decode) and must not be retried — the store's bytes are wrong.
	corrupting := fzio.NewFaultFetcher(fzio.NewBytesFetcher(blob), fzio.FaultConfig{Seed: 3, CorruptRate: 1})
	corrRetry := retryOver(corrupting)
	if _, err := DecompressRegion(p, corrRetry, sel, RegionOpts{Workers: 2}); err == nil {
		t.Fatal("corrupted payload decoded silently")
	} else if !errors.Is(err, fzio.ErrCRCMismatch) {
		t.Fatalf("corrupted payload: got %v, want ErrCRCMismatch", err)
	}
	if corrRetry.Retries() != 0 {
		t.Fatalf("CRC failures were retried %d times; the taxonomy forbids it", corrRetry.Retries())
	}

	if st := p.ScratchPool().Stats(); st.Gets != st.Puts {
		t.Fatalf("scratch pool unbalanced after injected failures: gets=%d puts=%d", st.Gets, st.Puts)
	}

	// And after the failures, the same platform still serves a clean read.
	got, err := DecompressRegion(p, fzio.NewBytesFetcher(blob), sel, RegionOpts{Workers: 2})
	if err != nil {
		t.Fatalf("clean read after failures: %v", err)
	}
	for i := range full {
		if got[i] != full[i] {
			t.Fatalf("post-failure read diverged at element %d", i)
		}
	}
}

// TestChaosLeaderFailurePromotesFollower: when the reader leading a
// flight fails, a waiting reader must claim the flight and decode the
// slab itself rather than inherit the leader's error.
func TestChaosLeaderFailurePromotesFollower(t *testing.T) {
	blob, full, dims := chaosContainer(t)
	// A store that — once armed, after OpenRegion has fetched the index —
	// fails the FIRST fetch of every offset fatally (404, never retried),
	// then serves cleanly.
	inner := fzio.NewBytesFetcher(blob)
	var armed atomic.Bool
	var mu sync.Mutex
	seen := make(map[int64]bool)
	fickle := fetcherFunc{
		read: func(off int64, n int) ([]byte, error) {
			if armed.Load() {
				mu.Lock()
				first := !seen[off]
				seen[off] = true
				mu.Unlock()
				if first {
					return nil, fmt.Errorf("fickle: %w", &fzio.HTTPStatusError{Code: 404, Status: "404 Not Found"})
				}
			}
			return inner.ReadRange(off, n)
		},
		size: inner.Size,
	}
	cache := NewSlabCache(int64(len(full)) * 8)
	reg, err := OpenRegion(tp, fickle, RegionOpts{Workers: 1, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	armed.Store(true)
	sel := RegionSel{X0: 0, X1: dims.X, Y0: 0, Y1: dims.Y, Z0: 0, Z1: 4} // chunk 0 only

	var wg sync.WaitGroup
	outs := make([][]float32, 2)
	errs := make([]error, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			outs[i], errs[i] = reg.Read(sel)
		}(i)
	}
	wg.Wait()

	// Exactly one reader absorbs the injected 404; the other — follower
	// promoted after the leader's failure, or an independent second flight
	// — must succeed with exact bytes.
	failed, succeeded := 0, -1
	for i := 0; i < 2; i++ {
		if errs[i] != nil {
			if !strings.Contains(errs[i].Error(), "404") {
				t.Fatalf("reader %d failed with %v, want the injected 404", i, errs[i])
			}
			failed++
		} else {
			succeeded = i
		}
	}
	if failed != 1 || succeeded < 0 {
		t.Fatalf("want exactly one failed and one successful reader, got %d failures", failed)
	}
	want := naiveExtract(full, dims, sel)
	for i := range want {
		if outs[succeeded][i] != want[i] {
			t.Fatalf("surviving reader diverged at element %d", i)
		}
	}
	if cs := cache.Stats(); cs.Flights != 0 {
		t.Fatalf("%d abandoned flights after a leader failure", cs.Flights)
	}
}

// TestChaosProofCatchesCRCCollision is the adversarial acceptance
// criterion: corruption crafted to preserve each range's CRC32 slips
// past the checksum, so the proof-checked read must refuse it with
// ErrProofMismatch (not a CRC or decode error), without retries — while
// a salvage pass over the same damaged artifact still recovers every
// untampered chunk bit-identically.
func TestChaosProofCatchesCRCCollision(t *testing.T) {
	blob, full, dims := chaosContainer(t)

	ix, err := fzio.FetchIndex(fzio.NewBytesFetcher(blob))
	if err != nil {
		t.Fatal(err)
	}
	victim := 3
	ref := ix.Chunks[victim]

	// Live tampering: the injector corrupts every fetched range while
	// preserving its CRC32, so only proof verification can object.
	faulty := fzio.NewFaultFetcher(fzio.NewBytesFetcher(blob), fzio.FaultConfig{Seed: 41, CollideCRCRate: 1})
	colliding := retryOver(faulty)

	_, err = DecompressRegion(tp, colliding, FullRegion(dims), RegionOpts{Workers: 2, VerifyProofs: true})
	if err == nil {
		t.Fatal("CRC-colliding corruption decoded silently")
	}
	if !errors.Is(err, fzio.ErrProofMismatch) {
		t.Fatalf("got %v, want ErrProofMismatch (not a CRC or decode error)", err)
	}
	if errors.Is(err, fzio.ErrCRCMismatch) {
		t.Fatalf("proof-checked read failed as a CRC mismatch: %v", err)
	}
	if colliding.Retries() != 0 {
		t.Fatalf("proof failures were retried %d times; the taxonomy forbids it", colliding.Retries())
	}
	if faulty.CRCCollisions() == 0 {
		t.Fatal("injector never collided a CRC — the test exercised nothing")
	}

	// The accounting side: a clean proof-checked read counts one
	// substantive verification per decoded chunk.
	_, rep, err := DecompressRegionReport(tp, fzio.NewBytesFetcher(blob), FullRegion(dims),
		RegionOpts{Workers: 2, VerifyProofs: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Region.ProofVerified != int64(rep.Region.Decoded) || rep.Region.ProofVerified == 0 {
		t.Fatalf("ProofVerified=%d, Decoded=%d: want one verification per decoded chunk",
			rep.Region.ProofVerified, rep.Region.Decoded)
	}

	// Salvage the persistently tampered artifact: one chunk is lost, the
	// rest come back bit-identical.
	tampered2 := append([]byte(nil), blob...)
	payload := tampered2[ref.Offset : ref.Offset+ref.Length]
	ok := false
	for delta := uint32(1); delta < 16 && !ok; delta++ {
		ok = fzio.CorruptPreservingCRC32(payload, delta)
	}
	if !ok {
		t.Fatal("could not build a CRC-preserving tamper")
	}
	salvaged, survey, err := fzio.SalvageChunked(fzio.NewBytesFetcher(tampered2))
	if err != nil {
		t.Fatalf("SalvageChunked: %v", err)
	}
	if survey.Intact() != len(ix.Chunks)-1 || survey.Chunks[victim].State != fzio.ChunkCorrupt {
		t.Fatalf("survey = %d intact, victim %q", survey.Intact(), survey.Chunks[victim].State)
	}
	out, mask, err := DecompressSalvage(tp, fzio.NewBytesFetcher(tampered2), DecompressOpts{})
	if err != nil {
		t.Fatalf("DecompressSalvage: %v", err)
	}
	if !mask.Any() {
		t.Fatal("damage mask empty for a tampered artifact")
	}
	plane := dims.PlaneElems()
	lo := 0
	for i, ref := range ix.Chunks {
		for z := lo; z < lo+ref.Planes; z++ {
			for e := z * plane; e < (z+1)*plane; e++ {
				if i == victim {
					if !mask.Planes[z] || out[e] != 0 {
						t.Fatalf("damaged plane %d not zero-masked", z)
					}
				} else {
					if mask.Planes[z] {
						t.Fatalf("intact plane %d flagged damaged", z)
					}
					if out[e] != full[e] {
						t.Fatalf("salvage-read diverged at element %d", e)
					}
				}
			}
		}
		lo += ref.Planes
	}
	// The rebuilt container decodes end to end and matches the surviving
	// planes of the original decode exactly.
	recovered, _, err := Decompress(tp, salvaged)
	if err != nil {
		t.Fatalf("decoding the salvaged container: %v", err)
	}
	wantElems := (dims.SlowExtent() - ix.Chunks[victim].Planes) * plane
	if len(recovered) != wantElems {
		t.Fatalf("salvaged decode has %d elements, want %d", len(recovered), wantElems)
	}
}

// fetcherFunc adapts closures to fzio.ChunkFetcher for fault shaping the
// injector doesn't model.
type fetcherFunc struct {
	read func(off int64, n int) ([]byte, error)
	size func() (int64, error)
}

func (f fetcherFunc) ReadRange(off int64, n int) ([]byte, error) { return f.read(off, n) }
func (f fetcherFunc) Size() (int64, error)                       { return f.size() }
