package core

import (
	"strings"
	"testing"

	"fzmod/internal/device"
	"fzmod/internal/grid"
	"fzmod/internal/metrics"
	"fzmod/internal/preprocess"
)

func TestSTFDecompressMatchesStandard(t *testing.T) {
	data, dims := testField()
	eb := preprocess.RelBound(1e-4)
	blob, err := NewDefault().Compress(tp, data, dims, eb)
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := Decompress(tp, blob)
	if err != nil {
		t.Fatal(err)
	}
	got, gotDims, report, err := DecompressSTF(tp, blob)
	if err != nil {
		t.Fatal(err)
	}
	if gotDims != dims {
		t.Fatalf("dims = %v, want %v", gotDims, dims)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("STF and standard decompression diverge at %d: %v vs %v", i, got[i], want[i])
		}
	}
	if report == nil || len(report.Trace) != 3 {
		t.Fatalf("expected 3-task trace, got %+v", report)
	}
	for _, want := range []string{"huffman-decode", "outlier-populate", "reconstruct"} {
		if !strings.Contains(report.DOT, want) {
			t.Errorf("DAG missing task %q:\n%s", want, report.DOT)
		}
	}
}

func TestSTFCompressInteroperates(t *testing.T) {
	data, dims := testField()
	absEB, _, err := preprocess.Resolve(tp, device.Accel, data, preprocess.RelBound(1e-4))
	if err != nil {
		t.Fatal(err)
	}
	blob, report, err := CompressSTF(tp, data, dims, absEB)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Trace) != 4 {
		t.Errorf("expected 4-task compression trace, got %d", len(report.Trace))
	}
	// Standard registry decompression must read the STF container.
	got, _, err := Decompress(tp, blob)
	if err != nil {
		t.Fatal(err)
	}
	if i := metrics.VerifyBound(data, got, absEB); i != -1 {
		t.Fatalf("bound violated at %d", i)
	}
	// And the STF decompressor as well.
	got2, _, _, err := DecompressSTF(tp, blob)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != got2[i] {
			t.Fatalf("mismatch at %d", i)
		}
	}
}

func TestSTFRejectsUnsupportedContainers(t *testing.T) {
	data, dims := testField()
	// Spline container: STF path only handles lorenzo+huffman.
	blob, err := NewQuality().Compress(tp, data, dims, preprocess.RelBound(1e-3))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := DecompressSTF(tp, blob); err == nil {
		t.Error("spline container should be rejected by STF path")
	}
	if _, _, _, err := DecompressSTF(tp, []byte("junk")); err == nil {
		t.Error("garbage should be rejected")
	}
}

// TestSTFDecompressSecondary checks the secondary-decode task insertion:
// a +lz container decodes through the STF graph and matches the standard
// registry path bit for bit.
func TestSTFDecompressSecondary(t *testing.T) {
	data, dims := testField()
	blob, err := NewDefault().WithSecondary(LZSecondary{}).Compress(tp, data, dims, preprocess.RelBound(1e-3))
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := Decompress(tp, blob)
	if err != nil {
		t.Fatal(err)
	}
	got, gotDims, report, err := DecompressSTF(tp, blob)
	if err != nil {
		t.Fatal(err)
	}
	if gotDims != dims {
		t.Fatalf("dims = %v, want %v", gotDims, dims)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("mismatch at %d", i)
		}
	}
	if len(report.Trace) != 4 {
		t.Errorf("trace has %d tasks, want 4 (secondary-decode + 3)", len(report.Trace))
	}
	if !strings.Contains(report.DOT, "secondary-decode") {
		t.Errorf("DAG missing secondary-decode task:\n%s", report.DOT)
	}
}

func TestSTFDimsMismatch(t *testing.T) {
	if _, _, err := CompressSTF(tp, make([]float32, 3), grid.D1(8), 1e-3); err == nil {
		t.Error("dims mismatch should fail")
	}
}
