package core

import (
	"encoding/binary"
	"fmt"

	"fzmod/internal/device"
	"fzmod/internal/grid"
	"fzmod/internal/kernels/dispatch"
	"fzmod/internal/predictor/lorenzo"
	"fzmod/internal/predictor/spline"
)

// LorenzoPredictor adapts the cuSZ Lorenzo module (package lorenzo) to the
// framework's Predictor contract. It is the prediction stage of
// FZMod-Default and FZMod-Speed.
type LorenzoPredictor struct {
	// Radius overrides the quantization radius; 0 uses the module default.
	Radius int
}

// Name implements Predictor.
func (LorenzoPredictor) Name() string { return "lorenzo" }

// PredictorInto is the optional extension of Predictor for modules that
// can quantize into a caller-provided codes buffer: the executor draws the
// buffer from the platform pool and recycles it once the encoder has
// consumed the codes, so per-chunk compression allocates O(chunk) scratch
// instead of O(field) across a run. The buffer may hold garbage; the
// predictor clears it. The returned Prediction aliases codes.
type PredictorInto interface {
	Predictor
	PredictInto(p *device.Platform, place device.Place, data []float32, dims grid.Dims, eb float64, codes []uint16) (*Prediction, error)
}

// Predict implements Predictor.
func (lp LorenzoPredictor) Predict(p *device.Platform, place device.Place, data []float32, dims grid.Dims, eb float64) (*Prediction, error) {
	return lp.PredictInto(p, place, data, dims, eb, nil)
}

// PredictInto implements PredictorInto.
func (lp LorenzoPredictor) PredictInto(p *device.Platform, place device.Place, data []float32, dims grid.Dims, eb float64, codes []uint16) (*Prediction, error) {
	q, err := lorenzo.EncodeInto(p, place, data, dims, eb, lp.Radius, codes)
	if err != nil {
		return nil, err
	}
	outVal := make([]uint32, len(q.OutVal))
	for i, v := range q.OutVal {
		outVal[i] = uint32(v)
	}
	// The outlier index stream is redundant on the wire: code 0 marks
	// outlier positions, and the compaction emits values in ascending
	// index order, so the decoder can rebuild indices from the codes.
	return &Prediction{
		Codes:  q.Codes,
		Radius: q.Radius,
		Extras: map[string][]byte{
			"outval": device.U32Bytes(outVal),
		},
	}, nil
}

// ReconstructorInto is the optional extension of Predictor for modules
// that can reconstruct into a caller-provided output buffer: chunked
// decompression scatters each chunk's field straight into the assembled
// result instead of copying through a per-chunk allocation.
type ReconstructorInto interface {
	Predictor
	ReconstructInto(p *device.Platform, place device.Place, pred *Prediction, dims grid.Dims, eb float64, dst []float32) error
}

// Reconstruct implements Predictor.
func (lp LorenzoPredictor) Reconstruct(p *device.Platform, place device.Place, pred *Prediction, dims grid.Dims, eb float64) ([]float32, error) {
	out := make([]float32, dims.N())
	if err := lp.ReconstructInto(p, place, pred, dims, eb, out); err != nil {
		return nil, err
	}
	return out, nil
}

// ReconstructInto implements ReconstructorInto.
func (LorenzoPredictor) ReconstructInto(p *device.Platform, place device.Place, pred *Prediction, dims grid.Dims, eb float64, dst []float32) error {
	outValU := device.BytesU32(pred.Extras["outval"])
	outVal := make([]int32, len(outValU))
	for i, v := range outValU {
		outVal[i] = int32(v)
	}
	// STF containers carry an explicit index side-channel (it is what
	// lets outlier scatter run concurrently with Huffman decode); plain
	// containers omit it and the indices are rebuilt from the escapes.
	var outIdx []uint32
	if raw, ok := pred.Extras["outidx"]; ok {
		outIdx = device.BytesU32(raw)
	} else {
		outIdx = outlierIndices(pred.Codes, len(outVal))
	}
	q := &lorenzo.Quantized{
		Codes:  pred.Codes,
		OutIdx: outIdx,
		OutVal: outVal,
		Radius: pred.Radius,
	}
	if len(q.OutIdx) != len(outVal) {
		return fmt.Errorf("core: %d outlier escapes in codes, %d values", len(q.OutIdx), len(outVal))
	}
	return lorenzo.DecodeInto(p, place, q, dims, eb, dst)
}

// outlierIndices rebuilds the ascending outlier index stream from the
// escape codes (code 0). cap bounds the scan so a corrupt stream cannot
// allocate unboundedly. Escapes are rare, so the scan hops zero to zero
// with the dispatched NextZero kernel (one vector compare covers sixteen
// codes on AVX2; the pure-Go fallback keeps the branch-free borrow-trick
// word scan) instead of testing every code.
func outlierIndices(codes []uint16, cap int) []uint32 {
	out := make([]uint32, 0, cap)
	base := 0
	for {
		k := dispatch.NextZero(codes[base:])
		if k < 0 {
			return out
		}
		out = append(out, uint32(base+k))
		base += k + 1
	}
}

// SplinePredictor adapts the G-Interp interpolation module (package
// spline) — the prediction stage of FZMod-Quality, and with Mode=Auto the
// SZ3 baseline's predictor.
type SplinePredictor struct {
	Config spline.Config
}

// Name implements Predictor.
func (sp SplinePredictor) Name() string {
	if sp.Config.Mode == spline.Auto {
		return "spline-auto"
	}
	return "spline"
}

// Predict implements Predictor.
func (sp SplinePredictor) Predict(p *device.Platform, place device.Place, data []float32, dims grid.Dims, eb float64) (*Prediction, error) {
	q, err := spline.Encode(p, place, data, dims, eb, sp.Config)
	if err != nil {
		return nil, err
	}
	meta := binary.AppendUvarint(nil, uint64(q.MaxLevel))
	meta = binary.AppendUvarint(meta, uint64(len(q.Choices)))
	meta = append(meta, q.Choices...)
	meta = binary.AppendUvarint(meta, uint64(len(q.Orders)))
	meta = append(meta, q.Orders...)
	return &Prediction{
		Codes:  q.Codes,
		Radius: q.Radius,
		Extras: map[string][]byte{
			"anchors": device.F32Bytes(q.Anchors),
			"outval":  device.F32Bytes(q.OutVal),
			"meta":    meta,
		},
	}, nil
}

// Reconstruct implements Predictor.
func (sp SplinePredictor) Reconstruct(p *device.Platform, place device.Place, pred *Prediction, dims grid.Dims, eb float64) ([]float32, error) {
	meta := pred.Extras["meta"]
	maxLevel, k := binary.Uvarint(meta)
	if k <= 0 {
		return nil, fmt.Errorf("core: spline meta segment corrupt")
	}
	pos := k
	nChoices, k2 := binary.Uvarint(meta[pos:])
	if k2 <= 0 || pos+k2+int(nChoices) > len(meta) {
		return nil, fmt.Errorf("core: spline choices corrupt")
	}
	pos += k2
	choices := meta[pos : pos+int(nChoices)]
	pos += int(nChoices)
	nOrders, k3 := binary.Uvarint(meta[pos:])
	if k3 <= 0 || pos+k3+int(nOrders) > len(meta) {
		return nil, fmt.Errorf("core: spline orders corrupt")
	}
	pos += k3
	orders := meta[pos : pos+int(nOrders)]
	outVal := device.BytesF32(pred.Extras["outval"])
	q := &spline.Quantized{
		Codes:    pred.Codes,
		Anchors:  device.BytesF32(pred.Extras["anchors"]),
		OutIdx:   outlierIndices(pred.Codes, len(outVal)),
		OutVal:   outVal,
		Choices:  choices,
		Orders:   orders,
		Radius:   pred.Radius,
		MaxLevel: int(maxLevel),
	}
	if len(q.OutIdx) != len(outVal) {
		return nil, fmt.Errorf("core: %d outlier escapes in codes, %d values", len(q.OutIdx), len(outVal))
	}
	return spline.Decode(p, place, q, dims, eb)
}
