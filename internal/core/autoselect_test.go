package core

import (
	"strings"
	"testing"

	"fzmod/internal/device"
	"fzmod/internal/grid"
	"fzmod/internal/metrics"
	"fzmod/internal/preprocess"
	"fzmod/internal/sdrbench"
)

func TestProfileSmoothVsNoisy(t *testing.T) {
	dims := grid.D2(128, 128)
	smooth := sdrbench.GenCESM(grid.D3(128, 128, 1), 1)
	noisy := sdrbench.GenHACC(dims.N(), 1)

	absS, _, _ := preprocess.Resolve(tp, device.Host, smooth, preprocess.RelBound(1e-3))
	ps, err := Profile(tp, smooth, dims, absS)
	if err != nil {
		t.Fatal(err)
	}
	absN, _, _ := preprocess.Resolve(tp, device.Host, noisy, preprocess.RelBound(1e-3))
	pn, err := Profile(tp, noisy, grid.D1(dims.N()), absN)
	if err != nil {
		t.Fatal(err)
	}
	if ps.DeltaQuanta >= pn.DeltaQuanta {
		t.Errorf("smooth DeltaQuanta %.2f should be below noisy %.2f", ps.DeltaQuanta, pn.DeltaQuanta)
	}
	if ps.Rank != 2 || pn.Rank != 1 {
		t.Error("rank detection")
	}
}

func TestProfileErrors(t *testing.T) {
	if _, err := Profile(tp, make([]float32, 3), grid.D1(4), 1e-3); err == nil {
		t.Error("dims mismatch should fail")
	}
	if _, err := Profile(tp, make([]float32, 4), grid.D1(4), 0); err == nil {
		t.Error("zero bound should fail")
	}
	if _, err := Profile(tp, nil, grid.D1(0), 1e-3); err == nil {
		t.Error("empty data should fail")
	}
}

func TestProfileTinyInput(t *testing.T) {
	// Fewer points than the sampling window: must not panic, returns a
	// neutral profile.
	prof, err := Profile(tp, []float32{1, 2}, grid.D1(2), 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	if prof.Rank != 1 {
		t.Error("rank")
	}
}

func TestAutoSelectThroughputObjective(t *testing.T) {
	data, dims := testField()
	pl, _, err := AutoSelect(tp, data, dims, preprocess.RelBound(1e-3), MaxThroughput)
	if err != nil {
		t.Fatal(err)
	}
	if pl.Name() != "fzmod-speed" {
		t.Errorf("throughput objective chose %s", pl.Name())
	}
}

func TestAutoSelectParticleDataAvoidsSpline(t *testing.T) {
	// HACC-like 1-D particle stream: interpolation has no advantage; the
	// selector must stay on Lorenzo (the paper's Table 3 shows Quality
	// collapsing on HACC).
	n := 1 << 16
	data := sdrbench.GenHACC(n, 3)
	pl, prof, err := AutoSelect(tp, data, grid.D1(n), preprocess.RelBound(1e-3), Balanced)
	if err != nil {
		t.Fatal(err)
	}
	if pl.Pred.Name() != "lorenzo" {
		t.Errorf("particle data selected predictor %s (profile %+v)", pl.Pred.Name(), prof)
	}
}

func TestAutoSelectMaxRatioAttachesSecondary(t *testing.T) {
	data, dims := testField()
	pl, _, err := AutoSelect(tp, data, dims, preprocess.RelBound(1e-3), MaxRatio)
	if err != nil {
		t.Fatal(err)
	}
	if pl.Sec == nil || !strings.Contains(pl.Name(), "+lz") {
		t.Errorf("max-ratio objective should attach the secondary encoder: %s", pl.Name())
	}
}

func TestAutoSelectedPipelineRoundtrips(t *testing.T) {
	for _, obj := range []Objective{Balanced, MaxThroughput, MaxRatio} {
		for _, ds := range []sdrbench.Dataset{sdrbench.CESM, sdrbench.NYX} {
			dims := grid.D3(32, 32, 8)
			data := sdrbench.Generate(ds, dims, 4)
			pl, _, err := AutoSelect(tp, data, dims, preprocess.RelBound(1e-3), obj)
			if err != nil {
				t.Fatal(err)
			}
			blob, err := pl.Compress(tp, data, dims, preprocess.RelBound(1e-3))
			if err != nil {
				t.Fatalf("%v/%v: %v", obj, ds, err)
			}
			back, _, err := Decompress(tp, blob)
			if err != nil {
				t.Fatalf("%v/%v: %v", obj, ds, err)
			}
			absEB, _, _ := preprocess.Resolve(tp, device.Host, data, preprocess.RelBound(1e-3))
			if i := metrics.VerifyBound(data, back, absEB); i != -1 {
				t.Fatalf("%v/%v: bound violated at %d", obj, ds, i)
			}
		}
	}
}

func TestAutoSelectBeatsWorstPreset(t *testing.T) {
	// The selector should never pick a pipeline that is the worst of the
	// three presets for a ratio objective on smooth data.
	dims := grid.D3(64, 64, 8)
	data := sdrbench.GenCESM(dims, 6)
	eb := preprocess.RelBound(1e-3)
	pl, _, err := AutoSelect(tp, data, dims, eb, MaxRatio)
	if err != nil {
		t.Fatal(err)
	}
	auto, err := pl.Compress(tp, data, dims, eb)
	if err != nil {
		t.Fatal(err)
	}
	worst := 0
	for _, preset := range Presets() {
		blob, err := preset.Compress(tp, data, dims, eb)
		if err != nil {
			t.Fatal(err)
		}
		if len(blob) > worst {
			worst = len(blob)
		}
	}
	if len(auto) >= worst {
		t.Errorf("auto-selected stream %d B not better than the worst preset %d B", len(auto), worst)
	}
}

func TestObjectiveString(t *testing.T) {
	if Balanced.String() != "balanced" || MaxThroughput.String() != "max-throughput" || MaxRatio.String() != "max-ratio" {
		t.Error("objective names")
	}
}
