package core

import (
	"context"
	"fmt"

	"fzmod/internal/device"
	"fzmod/internal/fzio"
	"fzmod/internal/grid"
	"fzmod/internal/stf"
)

// This file is the salvage read: where every normal decode path refuses a
// damaged artifact outright, DecompressSalvage surveys it
// (fzio.SurveyArtifact), decodes the chunks that survived, and returns
// the full-geometry field with the damaged planes zero-filled plus a
// DamageMask saying exactly which planes are fabrication. The caller gets
// everything the artifact still proves correct, and an explicit record of
// what it does not.

// DamageMask records which planes of a salvage-read field are real. The
// field keeps the artifact's full recorded geometry; planes no intact
// chunk covers are zero-filled and flagged here.
type DamageMask struct {
	// Dims is the full field geometry the mask (and the salvaged field)
	// covers.
	Dims grid.Dims
	// Planes flags each plane of the slowest-varying dimension: true
	// means the plane was damaged or missing and its values are zeros,
	// false means an intact, integrity-checked chunk supplied it.
	Planes []bool
}

// DamagedPlanes returns how many planes are zero-filled.
func (m *DamageMask) DamagedPlanes() int {
	n := 0
	for _, d := range m.Planes {
		if d {
			n++
		}
	}
	return n
}

// Any reports whether the mask flags any damage at all.
func (m *DamageMask) Any() bool { return m.DamagedPlanes() > 0 }

// DecompressSalvage decodes whatever survives of the (possibly damaged)
// artifact behind f: the field comes back at the artifact's full recorded
// geometry with every plane an intact chunk covers decoded normally and
// every damaged or missing plane zero-filled, as recorded by the returned
// DamageMask. Intact chunks pass the same integrity checks as a normal
// read (CRC32 plus, on version ≥ 2 artifacts, the recorded leaf hash), so
// salvaged values are never silently wrong — the mask is the only place
// uncertainty lives. Errors only when the artifact is unsalvageable
// (unrecognizable, or no chunk survived).
func DecompressSalvage(p *device.Platform, f fzio.ChunkFetcher, opts DecompressOpts) ([]float32, *DamageMask, error) {
	return DecompressSalvageCtx(context.Background(), p, f, opts)
}

// DecompressSalvageCtx is DecompressSalvage bounded by gctx.
func DecompressSalvageCtx(gctx context.Context, p *device.Platform, f fzio.ChunkFetcher, opts DecompressOpts) ([]float32, *DamageMask, error) {
	s, err := fzio.SurveyArtifact(f)
	if err != nil {
		return nil, nil, err
	}
	dims := s.Header.Dims
	mask := &DamageMask{Dims: dims, Planes: make([]bool, dims.SlowExtent())}
	for z := range mask.Planes {
		mask.Planes[z] = true // proven false per plane as intact chunks decode
	}
	out := make([]float32, dims.N())
	plane := dims.PlaneElems()

	// The surveyed chunks tile the slow dimension in order; collect the
	// intact ones with their plane windows. A survey of a derailed stream
	// can overrun the geometry — chunks past the extent are undecodable
	// (no window exists for them) and stay masked.
	type salvageNeed struct {
		chunk   int
		lo      int // first plane the chunk covers
		payload []byte
		planes  int
	}
	var needs []salvageNeed
	lo := 0
	for _, sc := range s.Chunks {
		if lo+sc.Planes > dims.SlowExtent() {
			break
		}
		if sc.State == fzio.ChunkIntact {
			needs = append(needs, salvageNeed{chunk: sc.Index, lo: lo, payload: sc.Payload(), planes: sc.Planes})
		}
		lo += sc.Planes
	}
	if len(needs) == 0 {
		return nil, nil, fmt.Errorf("core: nothing to salvage: no intact chunk in %s artifact", s.Flavor)
	}

	workers := opts.Workers
	if workers <= 0 {
		workers = p.Workers(device.Accel)
	}
	if workers > len(needs) {
		workers = len(needs)
	}
	exec := p.WithWorkers(workers)
	ctx := stf.NewCtxN(exec, workers).Bind(gctx)
	for _, nd := range needs {
		nd := nd
		want := dims.WithSlowExtent(nd.planes)
		o := nd.lo * plane
		prefix := fmt.Sprintf("s%d.", nd.chunk)
		job := &decompressJob{dst: out[o : o+want.N()]}
		fetchTok := stf.NewToken(ctx, prefix+"container")
		codesTok := stf.NewToken(ctx, prefix+"codes")

		ctx.Task(prefix + "parse").On(device.Host).Writes(fetchTok.D()).
			Do(func(ti *stf.TaskInstance) error {
				if fzio.IsChunked(nd.payload) || fzio.IsStream(nd.payload) {
					return fmt.Errorf("core: chunk %d: nested chunked container", nd.chunk)
				}
				c, err := fzio.Unmarshal(nd.payload)
				if err != nil {
					return fmt.Errorf("core: parsing chunk %d: %w", nd.chunk, err)
				}
				if c.Has(segSec) {
					if c, err = unwrapSecondary(exec, c); err != nil {
						return fmt.Errorf("core: chunk %d: %w", nd.chunk, err)
					}
				}
				job.c = c
				return nil
			})
		ctx.Task(prefix + "decode").On(device.Accel).Reads(fetchTok.D()).Writes(codesTok.D()).
			Do(func(ti *stf.TaskInstance) error { return job.decode(exec) })
		ctx.Task(prefix + "reconstruct").On(device.Accel).Reads(codesTok.D()).
			Do(func(ti *stf.TaskInstance) error {
				if job.dims != want {
					return fmt.Errorf("core: chunk %d dims %v, want %v", nd.chunk, job.dims, want)
				}
				if err := job.reconstruct(exec); err != nil {
					return err
				}
				if &job.vals[0] != &out[o] {
					copy(out[o:o+len(job.vals)], job.vals)
				}
				for z := nd.lo; z < nd.lo+nd.planes; z++ {
					mask.Planes[z] = false
				}
				return nil
			})
	}
	err = ctx.Finalize()
	ctx.Release()
	if err != nil {
		return nil, nil, err
	}
	return out, mask, nil
}
