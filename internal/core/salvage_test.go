package core

import (
	"bytes"
	"encoding/binary"
	"math"
	"testing"

	"fzmod/internal/device"
	"fzmod/internal/fzio"
	"fzmod/internal/grid"
	"fzmod/internal/preprocess"
	"fzmod/internal/sdrbench"
)

// A truncated stream upload: the salvage read recovers every complete
// frame's planes bit-identically and zero-masks the tail.
func TestDecompressSalvageTruncatedStream(t *testing.T) {
	dims := grid.D3(16, 12, 20)
	data := sdrbench.GenNYX(dims, 5)
	var buf bytes.Buffer
	raw := make([]byte, 4*len(data))
	for i, v := range data {
		binary.LittleEndian.PutUint32(raw[4*i:], math.Float32bits(v))
	}
	absEB, _, err := preprocess.Resolve(tp, device.Host, data, preprocess.RelBound(1e-4))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewDefault().CompressStream(tp, bytes.NewReader(raw), dims,
		preprocess.AbsBound(absEB), &buf, StreamOpts{ChunkElems: dims.PlaneElems() * 4, Workers: 2}); err != nil {
		t.Fatal(err)
	}
	blob := buf.Bytes()
	reassembled, err := fzio.ReassembleChunked(bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	full, _, err := Decompress(tp, reassembled)
	if err != nil {
		t.Fatal(err)
	}

	// Cut the stream mid-way: keep roughly the first 60% of the bytes.
	cut := blob[:len(blob)*6/10]
	survey, err := fzio.SurveyArtifact(fzio.NewBytesFetcher(cut))
	if err != nil {
		t.Fatalf("SurveyArtifact: %v", err)
	}
	if !survey.Truncated || survey.Intact() == 0 {
		t.Fatalf("survey = truncated=%v intact=%d; the cut should leave complete frames",
			survey.Truncated, survey.Intact())
	}

	out, mask, err := DecompressSalvage(tp, fzio.NewBytesFetcher(cut), DecompressOpts{Workers: 2})
	if err != nil {
		t.Fatalf("DecompressSalvage: %v", err)
	}
	if len(out) != dims.N() || len(mask.Planes) != dims.SlowExtent() {
		t.Fatalf("salvage geometry = %d elems / %d planes, want %d / %d",
			len(out), len(mask.Planes), dims.N(), dims.SlowExtent())
	}
	plane := dims.PlaneElems()
	intactPlanes := 0
	for z := 0; z < dims.SlowExtent(); z++ {
		for e := z * plane; e < (z+1)*plane; e++ {
			if mask.Planes[z] {
				if out[e] != 0 {
					t.Fatalf("masked plane %d has nonzero element %d", z, e)
				}
			} else if out[e] != full[e] {
				t.Fatalf("recovered plane %d diverged at element %d", z, e)
			}
		}
		if !mask.Planes[z] {
			intactPlanes++
		}
	}
	if intactPlanes == 0 || intactPlanes == dims.SlowExtent() {
		t.Fatalf("intact planes = %d of %d: the cut should damage some, not all", intactPlanes, dims.SlowExtent())
	}
	if mask.DamagedPlanes() != dims.SlowExtent()-intactPlanes || !mask.Any() {
		t.Fatalf("DamagedPlanes = %d, want %d", mask.DamagedPlanes(), dims.SlowExtent()-intactPlanes)
	}
}

// An undamaged artifact salvage-reads identically to a normal decode,
// with an all-clear mask; an artifact with nothing intact errors.
func TestDecompressSalvageEdges(t *testing.T) {
	dims := grid.D3(12, 10, 8)
	data := sdrbench.GenNYX(dims, 9)
	blob, err := NewDefault().CompressChunked(tp, data, dims, preprocess.RelBound(1e-4),
		ChunkOpts{ChunkElems: dims.PlaneElems() * 2, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	full, _, err := Decompress(tp, blob)
	if err != nil {
		t.Fatal(err)
	}
	out, mask, err := DecompressSalvage(tp, fzio.NewBytesFetcher(blob), DecompressOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if mask.Any() {
		t.Fatalf("pristine artifact masked %d planes", mask.DamagedPlanes())
	}
	for i := range full {
		if out[i] != full[i] {
			t.Fatalf("salvage read of a pristine artifact diverged at %d", i)
		}
	}

	ix, err := fzio.FetchIndex(fzio.NewBytesFetcher(blob))
	if err != nil {
		t.Fatal(err)
	}
	dead := append([]byte(nil), blob...)
	for _, ref := range ix.Chunks {
		dead[ref.Offset] ^= 0xFF
	}
	if _, _, err := DecompressSalvage(tp, fzio.NewBytesFetcher(dead), DecompressOpts{}); err == nil {
		t.Fatal("DecompressSalvage succeeded with zero intact chunks")
	}
}
