package core

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"fzmod/internal/device"
	"fzmod/internal/grid"
	"fzmod/internal/metrics"
	"fzmod/internal/preprocess"
	"fzmod/internal/sdrbench"
)

// TestExecReportShape checks the evidence the unified executor surfaces:
// per-chunk sub-graphs joined by the layout barrier with scatter-serialize
// tails, a critical path of one chunk chain through layout and serialize,
// and live buffer-pool counters.
func TestExecReportShape(t *testing.T) {
	data, dims := chunkField()
	opts := ChunkOpts{ChunkElems: dims.PlaneElems() * 8, Workers: 4}
	blob, report, err := NewDefault().CompressChunkedReport(tp, data, dims, preprocess.RelBound(1e-4), opts)
	if err != nil {
		t.Fatal(err)
	}
	nChunks := dims.SlowExtent() / 8
	if want := 3*nChunks + 1; report.Tasks != want {
		t.Errorf("report.Tasks = %d, want %d (3 per chunk + layout)", report.Tasks, want)
	}
	if report.CriticalPath != 4 {
		t.Errorf("critical path = %d, want 4 (predict→encode→layout→serialize)", report.CriticalPath)
	}
	for _, task := range []string{"c0.predict", "c0.encode", "c0.serialize", "layout"} {
		if !strings.Contains(report.DOT, task) {
			t.Errorf("DAG missing task %q:\n%s", task, report.DOT)
		}
	}
	if report.Pool.Gets == 0 {
		t.Error("report carries no buffer-pool traffic")
	}
	if _, _, decReport, err := DecompressReport(tp, blob); err != nil {
		t.Fatal(err)
	} else if want := 3 * nChunks; decReport.Tasks != want {
		t.Errorf("decompress report.Tasks = %d, want %d (3 per chunk)", decReport.Tasks, want)
	}

	// The secondary pass adds one task per chunk.
	_, secReport, err := NewDefault().WithSecondary(LZSecondary{}).
		CompressChunkedReport(tp, data, dims, preprocess.RelBound(1e-4), opts)
	if err != nil {
		t.Fatal(err)
	}
	if want := 4*nChunks + 1; secReport.Tasks != want {
		t.Errorf("secondary report.Tasks = %d, want %d", secReport.Tasks, want)
	}
}

// TestConcurrentCompressSharedPlatform stresses concurrent Compress /
// Decompress calls sharing one Platform — and therefore one scratch pool
// and one set of persistent grid workers. Run under -race in CI.
func TestConcurrentCompressSharedPlatform(t *testing.T) {
	data, dims := chunkField()
	eb := preprocess.RelBound(1e-3)
	absEB, _, err := preprocess.Resolve(tp, device.Accel, data, eb)
	if err != nil {
		t.Fatal(err)
	}
	want, err := NewDefault().CompressChunked(tp, data, dims, eb, ChunkOpts{ChunkElems: dims.PlaneElems() * 5})
	if err != nil {
		t.Fatal(err)
	}
	const goroutines = 8
	var wg sync.WaitGroup
	errs := make([]error, goroutines)
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for iter := 0; iter < 3; iter++ {
				pl := Presets()[g%len(Presets())]
				opts := ChunkOpts{ChunkElems: dims.PlaneElems() * 5, Workers: 1 + g%4}
				blob, err := pl.CompressChunked(tp, data, dims, eb, opts)
				if err != nil {
					errs[g] = err
					return
				}
				dec, _, err := Decompress(tp, blob)
				if err != nil {
					errs[g] = err
					return
				}
				if i := metrics.VerifyBound(data, dec, absEB); i != -1 {
					errs[g] = fmt.Errorf("bound violated at %d", i)
					return
				}
			}
			// Determinism under contention: the default preset's bytes
			// must match the quiet-run reference.
			blob, err := NewDefault().CompressChunked(tp, data, dims, eb, ChunkOpts{ChunkElems: dims.PlaneElems() * 5})
			if err != nil {
				errs[g] = err
				return
			}
			if string(blob) != string(want) {
				errs[g] = errNondeterministic
			}
		}()
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", g, err)
		}
	}
}

var errNondeterministic = errors.New("concurrent chunked compression is nondeterministic")

// TestSteadyStateChunkedAllocs pins the per-operation allocation count of
// steady-state chunked compression. PR 1's stream-pool executor spent
// ~10.6k allocs on this workload shape per op (scaled); the pooled
// STF-lowered engine must stay far below it. The bound has ~2x headroom
// over the measured steady state so scheduler jitter cannot flake the
// test, while still catching any return of per-chunk scratch allocation.
func TestSteadyStateChunkedAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation measurement")
	}
	if device.RaceEnabled {
		t.Skip("sync.Pool drops puts nondeterministically under the race detector")
	}
	dims := grid.D3(64, 64, 64)
	data := sdrbench.GenNYX(dims, 7)
	pl := NewDefault()
	eb := preprocess.RelBound(1e-4)
	opts := ChunkOpts{ChunkElems: dims.N() / 8, Workers: 4}
	compress := func() {
		if _, err := pl.CompressChunked(tp, data, dims, eb, opts); err != nil {
			t.Fatal(err)
		}
	}
	compress() // warm the pool and the grid workers
	allocs := testing.AllocsPerRun(5, compress)
	// Steady state measures ~1.1k allocs for 8 chunks — graph declaration,
	// per-chunk codec tables and container segments; the data-sized scratch
	// is all pooled (PR 1 spent >10k on the same shape at 256³). 1500 is
	// the regression tripwire with headroom for scheduler jitter.
	if allocs > 1500 {
		t.Errorf("steady-state chunked compress = %.0f allocs/op, want <= 1500", allocs)
	}
}
