// Package metrics implements the paper's evaluation metrics (§4.2):
// compression ratio, bitrate, PSNR for rate–distortion, error-bound
// verification, and the overall-speedup model of Eq. 1, which relates a
// compressor's throughput and ratio to the bandwidth of the transfer
// medium the compressed data crosses.
package metrics

import (
	"fmt"
	"math"

	"fzmod/internal/device"
	"fzmod/internal/kernels"
)

// CompressionRatio is input size over compressed size.
func CompressionRatio(inputBytes, compressedBytes int) float64 {
	if compressedBytes == 0 {
		return math.Inf(1)
	}
	return float64(inputBytes) / float64(compressedBytes)
}

// Bitrate is the average compressed bits per input value (float32 input:
// 32/CR), the x-axis of the paper's Figure 4.
func Bitrate(n int, compressedBytes int) float64 {
	if n == 0 {
		return 0
	}
	return float64(compressedBytes) * 8 / float64(n)
}

// Quality bundles the reconstruction-quality statistics of one roundtrip.
type Quality struct {
	PSNR      float64 // dB, using the data value range as peak
	NRMSE     float64 // RMSE normalized by the value range
	MaxAbsErr float64
	MSE       float64
	Range     float64
}

// Evaluate computes reconstruction quality of dec against org in parallel.
func Evaluate(p *device.Platform, place device.Place, org, dec []float32) (Quality, error) {
	if len(org) != len(dec) {
		return Quality{}, fmt.Errorf("metrics: length mismatch %d vs %d", len(org), len(dec))
	}
	if len(org) == 0 {
		return Quality{}, fmt.Errorf("metrics: empty input")
	}
	mn, mx := kernels.MinMaxF32(p, place, org)
	rng := float64(mx) - float64(mn)

	// Per-chunk partial sums of squared error and max error.
	sq := make([]float64, len(org))
	p.LaunchGrid(place, len(org), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			d := float64(org[i]) - float64(dec[i])
			sq[i] = d * d
		}
	})
	mse := kernels.SumF64(p, place, sq) / float64(len(org))
	var maxErr float64
	for i := range org {
		if d := math.Abs(float64(org[i]) - float64(dec[i])); d > maxErr {
			maxErr = d
		}
	}
	q := Quality{MSE: mse, MaxAbsErr: maxErr, Range: rng}
	if mse == 0 {
		q.PSNR = math.Inf(1)
	} else if rng > 0 {
		q.PSNR = 20*math.Log10(rng) - 10*math.Log10(mse)
	}
	if rng > 0 {
		q.NRMSE = math.Sqrt(mse) / rng
	}
	return q, nil
}

// VerifyBound reports whether every reconstructed value is within eb of the
// original, allowing half a float32 ULP of the data magnitude (the slack
// discussed on package lorenzo). It returns the first violating index, or
// -1 when the bound holds.
func VerifyBound(org, dec []float32, eb float64) int {
	var maxMag float64
	for _, v := range org {
		if a := math.Abs(float64(v)); a > maxMag {
			maxMag = a
		}
	}
	tol := eb + maxMag/(1<<23) + 1e-12
	for i := range org {
		if math.Abs(float64(org[i])-float64(dec[i])) > tol {
			return i
		}
	}
	return -1
}

// OverallSpeedup implements Eq. 1 of the paper:
//
//	speedup = [ (BW·CR)⁻¹ + T⁻¹ ]⁻¹ · BW⁻¹
//
// i.e. the time per byte of moving raw data (1/BW) divided by the time per
// byte of compressing (1/T) plus moving the compressed form (1/(BW·CR)).
// With BW = 100 GB/s and CR = 2, a compressor needs T > 200 GB/s for
// speedup > 1 — the worked example in §4.2.
func OverallSpeedup(throughput, bandwidth, ratio float64) float64 {
	if throughput <= 0 || bandwidth <= 0 || ratio <= 0 {
		return 0
	}
	withCompr := 1/(bandwidth*ratio) + 1/throughput
	return (1 / withCompr) / bandwidth
}

// Throughput converts bytes processed in d seconds to GB/s.
func Throughput(bytes int, seconds float64) float64 {
	if seconds <= 0 {
		return 0
	}
	return float64(bytes) / seconds / 1e9
}
