package metrics

import (
	"math"
	"testing"

	"fzmod/internal/device"
)

var tp = device.NewTestPlatform()

func TestCompressionRatio(t *testing.T) {
	if got := CompressionRatio(1000, 100); got != 10 {
		t.Errorf("CR = %v, want 10", got)
	}
	if !math.IsInf(CompressionRatio(10, 0), 1) {
		t.Error("CR with zero compressed size should be +Inf")
	}
}

func TestBitrate(t *testing.T) {
	// 1000 float32 values compressed to 500 bytes → 4 bits/value.
	if got := Bitrate(1000, 500); got != 4 {
		t.Errorf("bitrate = %v, want 4", got)
	}
	if Bitrate(0, 100) != 0 {
		t.Error("empty input bitrate should be 0")
	}
}

func TestEvaluatePerfectReconstruction(t *testing.T) {
	org := []float32{1, 2, 3, 4, 5}
	q, err := Evaluate(tp, device.Accel, org, org)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(q.PSNR, 1) {
		t.Errorf("perfect PSNR = %v, want +Inf", q.PSNR)
	}
	if q.MaxAbsErr != 0 || q.MSE != 0 || q.NRMSE != 0 {
		t.Error("perfect reconstruction should have zero errors")
	}
	if q.Range != 4 {
		t.Errorf("range = %v, want 4", q.Range)
	}
}

func TestEvaluateKnownMSE(t *testing.T) {
	org := []float32{0, 0, 0, 0}
	dec := []float32{1, -1, 1, -1}
	q, err := Evaluate(tp, device.Accel, org, dec)
	if err != nil {
		t.Fatal(err)
	}
	if q.MSE != 1 {
		t.Errorf("MSE = %v, want 1", q.MSE)
	}
	if q.MaxAbsErr != 1 {
		t.Errorf("MaxAbsErr = %v, want 1", q.MaxAbsErr)
	}
}

func TestEvaluatePSNRFormula(t *testing.T) {
	// range=10, mse=0.01 → PSNR = 20log10(10) - 10log10(0.01) = 20+20 = 40.
	org := make([]float32, 1000)
	dec := make([]float32, 1000)
	for i := range org {
		org[i] = float32(i%2) * 10
		dec[i] = org[i] + 0.1
	}
	q, err := Evaluate(tp, device.Accel, org, dec)
	if err != nil {
		t.Fatal(err)
	}
	want := 20*math.Log10(10) - 10*math.Log10(0.01)
	if math.Abs(q.PSNR-want) > 0.5 {
		t.Errorf("PSNR = %v, want ~%v", q.PSNR, want)
	}
}

func TestEvaluateErrors(t *testing.T) {
	if _, err := Evaluate(tp, device.Accel, []float32{1}, []float32{1, 2}); err == nil {
		t.Error("length mismatch should fail")
	}
	if _, err := Evaluate(tp, device.Accel, nil, nil); err == nil {
		t.Error("empty input should fail")
	}
}

func TestVerifyBound(t *testing.T) {
	org := []float32{1, 2, 3}
	dec := []float32{1.0005, 1.9995, 3.0004}
	if i := VerifyBound(org, dec, 1e-3); i != -1 {
		t.Errorf("bound should hold, got violation at %d", i)
	}
	dec2 := []float32{1.0005, 2.5, 3}
	if i := VerifyBound(org, dec2, 1e-3); i != 1 {
		t.Errorf("violation index = %d, want 1", i)
	}
}

func TestOverallSpeedupWorkedExample(t *testing.T) {
	// §4.2: on a 100 GB/s link with CR 2, T = 200 GB/s gives speedup 1.
	s := OverallSpeedup(200, 100, 2)
	if math.Abs(s-1) > 1e-9 {
		t.Errorf("speedup = %v, want 1", s)
	}
	// Faster compressor → speedup > 1; approaching CR as T → ∞.
	if s := OverallSpeedup(1e12, 100, 2); math.Abs(s-2) > 0.01 {
		t.Errorf("asymptotic speedup = %v, want ~CR=2", s)
	}
	// Slow compressor → below 1.
	if s := OverallSpeedup(50, 100, 2); s >= 1 {
		t.Errorf("slow compressor speedup = %v, want < 1", s)
	}
}

func TestOverallSpeedupDegenerate(t *testing.T) {
	if OverallSpeedup(0, 100, 2) != 0 || OverallSpeedup(100, 0, 2) != 0 || OverallSpeedup(100, 100, 0) != 0 {
		t.Error("degenerate inputs should give 0")
	}
}

func TestOverallSpeedupMonotonicInCR(t *testing.T) {
	prev := 0.0
	for cr := 1.0; cr < 100; cr *= 2 {
		s := OverallSpeedup(300, 35.7, cr)
		if s <= prev {
			t.Fatalf("speedup not increasing in CR at %v", cr)
		}
		prev = s
	}
}

func TestThroughput(t *testing.T) {
	if got := Throughput(2e9, 2); got != 1 {
		t.Errorf("throughput = %v, want 1 GB/s", got)
	}
	if Throughput(100, 0) != 0 {
		t.Error("zero time throughput should be 0")
	}
}
