package fzio

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"io"
	"math"
	"testing"

	"fzmod/internal/grid"
)

// buildV1Chunked hand-serializes a version-1 FZMC container — the
// pre-integrity layout with no leaf hashes and no Merkle root — exactly
// as the v1 writer emitted it. The compatibility tests parse these bytes
// through every current reader.
func buildV1Chunked(h ChunkedHeader, chunks [][]byte, planes []int) []byte {
	out := []byte(ChunkedMagic)
	out = binary.LittleEndian.AppendUint16(out, chunkedVersionLegacy)
	out = appendString(out, h.Pipeline)
	out = binary.AppendUvarint(out, uint64(h.Dims.X))
	out = binary.AppendUvarint(out, uint64(h.Dims.Y))
	out = binary.AppendUvarint(out, uint64(h.Dims.Z))
	out = binary.LittleEndian.AppendUint64(out, math.Float64bits(h.EB))
	out = binary.LittleEndian.AppendUint64(out, math.Float64bits(h.RelEB))
	out = binary.AppendUvarint(out, uint64(h.Planes))
	out = binary.AppendUvarint(out, uint64(len(chunks)))
	off := 0
	for i, c := range chunks {
		out = binary.AppendUvarint(out, uint64(off))
		out = binary.AppendUvarint(out, uint64(len(c)))
		out = binary.LittleEndian.AppendUint32(out, crc32.ChecksumIEEE(c))
		out = binary.AppendUvarint(out, uint64(planes[i]))
		off += len(c)
	}
	for _, c := range chunks {
		out = append(out, c...)
	}
	return out
}

// buildV1Stream hand-serializes a version-1 FZMS stream: v1 prologue,
// self-describing frames, end marker, and the v1 trailer (no hashes, no
// root).
func buildV1Stream(t *testing.T, h ChunkedHeader, chunks [][]byte, planes []int) []byte {
	t.Helper()
	out := appendStreamPrologueV(nil, h, streamVersionLegacy)
	out = binary.LittleEndian.AppendUint32(out, crc32.ChecksumIEEE(out))
	refs := make([]ChunkRef, len(chunks))
	for i, c := range chunks {
		crc := crc32.ChecksumIEEE(c)
		out = binary.AppendUvarint(out, uint64(len(c)))
		out = binary.AppendUvarint(out, uint64(planes[i]))
		out = binary.LittleEndian.AppendUint32(out, crc)
		out = append(out, c...)
		refs[i] = ChunkRef{Length: len(c), Planes: planes[i], CRC: crc}
	}
	out = binary.AppendUvarint(out, 0) // end marker
	trailer, err := appendIndexV(nil, refs, streamVersionLegacy)
	if err != nil {
		t.Fatalf("appendIndexV: %v", err)
	}
	trailer = binary.LittleEndian.AppendUint32(trailer, crc32.ChecksumIEEE(trailer))
	trailer = binary.LittleEndian.AppendUint64(trailer, uint64(len(trailer)))
	trailer = append(trailer, streamEndMagic...)
	return append(out, trailer...)
}

// Version-1 artifacts — no hashes, no root — must still parse and decode
// through every current reader: UnmarshalChunked, FetchIndex (with
// vacuous proofs), and the salvage survey.
func TestV1ChunkedCompat(t *testing.T) {
	dims := grid.Dims{X: 4, Y: 4, Z: 4}
	h := ChunkedHeader{Pipeline: "test-pipe", Dims: dims, EB: 1e-3, Planes: 2}
	chunks := [][]byte{bytes.Repeat([]byte{0xAA}, 40), bytes.Repeat([]byte{0xBB}, 56)}
	blob := buildV1Chunked(h, chunks, []int{2, 2})

	c, err := UnmarshalChunked(blob)
	if err != nil {
		t.Fatalf("UnmarshalChunked(v1): %v", err)
	}
	if c.Root != nil {
		t.Fatalf("v1 container reports a Merkle root: %x", c.Root)
	}
	for i, want := range chunks {
		got, err := c.Chunk(i)
		if err != nil {
			t.Fatalf("Chunk(%d): %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("chunk %d bytes diverge", i)
		}
	}

	ix, err := FetchIndex(NewBytesFetcher(blob))
	if err != nil {
		t.Fatalf("FetchIndex(v1): %v", err)
	}
	if ix.HasProofs() {
		t.Fatal("v1 index claims proofs")
	}
	// Proof verification on a rootless artifact is vacuous, not an error.
	if err := ix.VerifyProof(0, chunks[0]); err != nil {
		t.Fatalf("vacuous VerifyProof: %v", err)
	}
	if err := ix.VerifyChunk(1, chunks[1]); err != nil {
		t.Fatalf("VerifyChunk: %v", err)
	}

	s, err := SurveyArtifact(NewBytesFetcher(blob))
	if err != nil {
		t.Fatalf("SurveyArtifact(v1): %v", err)
	}
	if s.Damaged() || s.Intact() != 2 || s.Root != nil {
		t.Fatalf("v1 survey = damaged=%v intact=%d root=%x", s.Damaged(), s.Intact(), s.Root)
	}
}

func TestV1StreamCompat(t *testing.T) {
	dims := grid.Dims{X: 4, Y: 4, Z: 6}
	h := ChunkedHeader{Pipeline: "test-pipe", Dims: dims, EB: 1e-3, Planes: 2}
	chunks := [][]byte{bytes.Repeat([]byte{1}, 33), bytes.Repeat([]byte{2}, 47), bytes.Repeat([]byte{3}, 21)}
	blob := buildV1Stream(t, h, chunks, []int{2, 2, 2})

	sr, err := NewStreamReader(bytes.NewReader(blob))
	if err != nil {
		t.Fatalf("NewStreamReader(v1): %v", err)
	}
	for i := 0; ; i++ {
		payload, planes, err := sr.Next(nil)
		if err != nil {
			if i == len(chunks) && errors.Is(err, io.EOF) {
				break
			}
			t.Fatalf("Next(%d): %v", i, err)
		}
		if planes != 2 || !bytes.Equal(payload, chunks[i]) {
			t.Fatalf("frame %d diverges", i)
		}
	}

	ix, err := FetchIndex(NewBytesFetcher(blob))
	if err != nil {
		t.Fatalf("FetchIndex(v1 stream): %v", err)
	}
	if ix.HasProofs() {
		t.Fatal("v1 stream index claims proofs")
	}

	s, err := SurveyArtifact(NewBytesFetcher(blob))
	if err != nil {
		t.Fatalf("SurveyArtifact(v1 stream): %v", err)
	}
	if s.Damaged() || s.Intact() != 3 {
		t.Fatalf("v1 stream survey = damaged=%v intact=%d", s.Damaged(), s.Intact())
	}
}

func TestSurveyChunkedDamage(t *testing.T) {
	dims := grid.Dims{X: 8, Y: 8, Z: 8}
	blob, _, chunks := testChunkedBlob(t, dims, 4)

	// Pristine artifact: everything intact.
	s, err := SurveyArtifact(NewBytesFetcher(blob))
	if err != nil {
		t.Fatal(err)
	}
	if s.Damaged() || s.Intact() != 4 || !s.RootVerified || s.Root == nil {
		t.Fatalf("pristine survey = %+v", s)
	}
	for i, sc := range s.Chunks {
		if !bytes.Equal(sc.Payload(), chunks[i]) {
			t.Fatalf("chunk %d payload diverges", i)
		}
	}

	// Flip a byte inside chunk 2's payload: exactly that chunk corrupt.
	ix, err := FetchIndex(NewBytesFetcher(blob))
	if err != nil {
		t.Fatal(err)
	}
	bad := append([]byte(nil), blob...)
	bad[ix.Chunks[2].Offset+5] ^= 0x10
	s, err = SurveyArtifact(NewBytesFetcher(bad))
	if err != nil {
		t.Fatal(err)
	}
	if !s.Damaged() || s.Intact() != 3 {
		t.Fatalf("tampered survey: damaged=%v intact=%d", s.Damaged(), s.Intact())
	}
	if s.Chunks[2].State != ChunkCorrupt {
		t.Fatalf("chunk 2 state = %q, want corrupt", s.Chunks[2].State)
	}

	// Truncate inside the last chunk: it goes missing, the rest survive.
	cut := blob[:ix.Chunks[3].Offset+ix.Chunks[3].Length/2]
	s, err = SurveyArtifact(NewBytesFetcher(cut))
	if err != nil {
		t.Fatal(err)
	}
	if !s.Truncated || s.Intact() != 3 || s.Chunks[3].State != ChunkMissing {
		t.Fatalf("truncated survey: truncated=%v intact=%d state=%q",
			s.Truncated, s.Intact(), s.Chunks[3].State)
	}

	// Tamper with the recorded root: the survey flags it but still vouches
	// for every chunk via CRC + leaf hash.
	badRoot := append([]byte(nil), blob...)
	rootPos := ix.Chunks[0].Offset - HashSize
	badRoot[rootPos] ^= 0xFF
	s, err = SurveyArtifact(NewBytesFetcher(badRoot))
	if err != nil {
		t.Fatal(err)
	}
	if s.RootVerified || !s.Damaged() || s.Intact() != 4 {
		t.Fatalf("bad-root survey: rootVerified=%v damaged=%v intact=%d",
			s.RootVerified, s.Damaged(), s.Intact())
	}
	// The strict readers must refuse the same artifact outright.
	if _, err := UnmarshalChunked(badRoot); !errors.Is(err, ErrProofMismatch) {
		t.Fatalf("UnmarshalChunked(bad root) = %v, want ErrProofMismatch", err)
	}
	if _, err := FetchIndex(NewBytesFetcher(badRoot)); !errors.Is(err, ErrProofMismatch) {
		t.Fatalf("FetchIndex(bad root) = %v, want ErrProofMismatch", err)
	}
}

// A corruption crafted to preserve the CRC32 must still be classified
// corrupt — by the recorded leaf hash.
func TestSurveyCatchesCRCCollision(t *testing.T) {
	dims := grid.Dims{X: 8, Y: 8, Z: 8}
	blob, _, _ := testChunkedBlob(t, dims, 4)
	ix, err := FetchIndex(NewBytesFetcher(blob))
	if err != nil {
		t.Fatal(err)
	}
	bad := append([]byte(nil), blob...)
	ref := ix.Chunks[1]
	payload := bad[ref.Offset : ref.Offset+ref.Length]
	if !corruptPreservingCRC32(payload, 1) {
		t.Fatal("collision injector declined the payload")
	}
	if crc32.ChecksumIEEE(payload) != ref.CRC {
		t.Fatal("injector failed to preserve the CRC")
	}
	s, err := SurveyArtifact(NewBytesFetcher(bad))
	if err != nil {
		t.Fatal(err)
	}
	if s.Chunks[1].State != ChunkCorrupt {
		t.Fatalf("CRC-colliding chunk classified %q, want corrupt", s.Chunks[1].State)
	}
}

func TestSalvageChunkedRebuilds(t *testing.T) {
	dims := grid.Dims{X: 8, Y: 8, Z: 8}
	blob, h, chunks := testChunkedBlob(t, dims, 4)
	ix, err := FetchIndex(NewBytesFetcher(blob))
	if err != nil {
		t.Fatal(err)
	}
	bad := append([]byte(nil), blob...)
	bad[ix.Chunks[1].Offset] ^= 0x01 // chunk 1 corrupt

	out, s, err := SalvageChunked(NewBytesFetcher(bad))
	if err != nil {
		t.Fatalf("SalvageChunked: %v", err)
	}
	if s.Intact() != 3 {
		t.Fatalf("salvaged %d chunks, want 3", s.Intact())
	}
	// The rebuilt container is a fully valid v2 artifact covering the
	// surviving planes, every payload bit-identical to the original.
	c, err := UnmarshalChunked(out)
	if err != nil {
		t.Fatalf("UnmarshalChunked(salvaged): %v", err)
	}
	if c.Root == nil {
		t.Fatal("salvaged container has no Merkle root")
	}
	if got, want := c.Header.Dims, h.Dims.WithSlowExtent(6); got != want {
		t.Fatalf("salvaged dims = %v, want %v", got, want)
	}
	survivors := [][]byte{chunks[0], chunks[2], chunks[3]}
	if len(c.Chunks) != len(survivors) {
		t.Fatalf("salvaged %d chunks, want %d", len(c.Chunks), len(survivors))
	}
	for i, want := range survivors {
		got, err := c.Chunk(i)
		if err != nil {
			t.Fatalf("Chunk(%d): %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("salvaged chunk %d not bit-identical", i)
		}
	}
	// And it survives its own survey unscathed.
	s2, err := SurveyArtifact(NewBytesFetcher(out))
	if err != nil {
		t.Fatal(err)
	}
	if s2.Damaged() {
		t.Fatal("salvaged container surveys as damaged")
	}

	// Nothing intact at all → a hard error.
	allBad := append([]byte(nil), blob...)
	for _, ref := range ix.Chunks {
		allBad[ref.Offset] ^= 0xFF
	}
	if _, _, err := SalvageChunked(NewBytesFetcher(allBad)); err == nil {
		t.Fatal("SalvageChunked succeeded with zero intact chunks")
	}
}

func TestSurveyMonolithic(t *testing.T) {
	c := New(Header{Pipeline: "test-pipe", Dims: grid.Dims{X: 4, Y: 4, Z: 4}, EB: 1e-3})
	if err := c.Add("quant", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	blob, err := c.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	s, err := SurveyArtifact(NewBytesFetcher(blob))
	if err != nil {
		t.Fatal(err)
	}
	if s.Flavor != FlavorMonolithic || s.Damaged() || s.Intact() != 1 {
		t.Fatalf("monolithic survey = %+v", s)
	}
	bad := append([]byte(nil), blob...)
	bad[len(bad)-3] ^= 0x04
	s, err = SurveyArtifact(NewBytesFetcher(bad))
	if err != nil {
		t.Fatal(err)
	}
	if !s.Damaged() || s.Chunks[0].State != ChunkCorrupt {
		t.Fatalf("corrupt monolithic survey = %+v", s.Chunks[0])
	}
}

// The truncation contract, exhaustively: for EVERY prefix length of a
// multi-frame stream, the survey recovers exactly the frames the prefix
// fully contains, bit-identically — never a partial frame, never a
// spurious error once one complete frame exists.
func TestStreamSalvageEveryPrefix(t *testing.T) {
	dims := grid.Dims{X: 4, Y: 4, Z: 6}
	h := ChunkedHeader{Pipeline: "test-pipe", Dims: dims, EB: 1e-3, Planes: 2}
	chunks := [][]byte{bytes.Repeat([]byte{7}, 25), bytes.Repeat([]byte{8}, 41), bytes.Repeat([]byte{9}, 17)}
	blob := testStreamBlob(t, h, chunks, func(int) int { return 2 })

	// Frame end offsets: prologue, then each frame's header+payload.
	prologue := len(appendStreamPrologueV(nil, h, StreamVersion)) + 4
	frameEnds := make([]int, len(chunks))
	pos := prologue
	for i, c := range chunks {
		pos += uvarintSize(uint64(len(c))) + uvarintSize(2) + 4 + len(c)
		frameEnds[i] = pos
	}

	for n := 0; n <= len(blob); n++ {
		wantFrames := 0
		for _, end := range frameEnds {
			if n >= end {
				wantFrames++
			}
		}
		s, err := SurveyArtifact(NewBytesFetcher(blob[:n]))
		if err != nil {
			if wantFrames > 0 {
				t.Fatalf("prefix %d: survey errored with %d complete frames present: %v", n, wantFrames, err)
			}
			continue
		}
		if got := s.Intact(); got != wantFrames {
			t.Fatalf("prefix %d: recovered %d frames, want %d", n, got, wantFrames)
		}
		k := 0
		for _, sc := range s.Chunks {
			if sc.State != ChunkIntact {
				continue
			}
			if !bytes.Equal(sc.Payload(), chunks[k]) {
				t.Fatalf("prefix %d: frame %d not bit-identical", n, k)
			}
			k++
		}
		if n < len(blob) && !s.Truncated {
			t.Fatalf("prefix %d of %d not flagged truncated", n, len(blob))
		}
		if n == len(blob) && s.Damaged() {
			t.Fatalf("full stream surveys as damaged")
		}
	}
}

// A tampered frame inside an intact-length stream: the frame CRC catches
// a plain flip; a CRC-preserving tamper is caught by the v2 trailer leaf
// hash.
func TestStreamSurveyCatchesTampering(t *testing.T) {
	dims := grid.Dims{X: 4, Y: 4, Z: 4}
	h := ChunkedHeader{Pipeline: "test-pipe", Dims: dims, EB: 1e-3, Planes: 2}
	chunks := [][]byte{bytes.Repeat([]byte{5}, 64), bytes.Repeat([]byte{6}, 64)}
	blob := testStreamBlob(t, h, chunks, func(int) int { return 2 })
	prologue := len(appendStreamPrologueV(nil, h, StreamVersion)) + 4
	frame0Payload := prologue + uvarintSize(64) + uvarintSize(2) + 4

	flip := append([]byte(nil), blob...)
	flip[frame0Payload+3] ^= 0x20
	s, err := SurveyArtifact(NewBytesFetcher(flip))
	if err != nil {
		t.Fatal(err)
	}
	if s.Chunks[0].State != ChunkCorrupt || s.Chunks[1].State != ChunkIntact {
		t.Fatalf("flip survey = %q/%q", s.Chunks[0].State, s.Chunks[1].State)
	}

	collide := append([]byte(nil), blob...)
	payload := collide[frame0Payload : frame0Payload+64]
	if !corruptPreservingCRC32(payload, 2) {
		t.Fatal("collision injector declined the payload")
	}
	s, err = SurveyArtifact(NewBytesFetcher(collide))
	if err != nil {
		t.Fatal(err)
	}
	if s.Chunks[0].State != ChunkCorrupt {
		t.Fatalf("CRC-colliding frame classified %q, want corrupt", s.Chunks[0].State)
	}
}

func uvarintSize(v uint64) int {
	var buf [binary.MaxVarintLen64]byte
	return binary.PutUvarint(buf[:], v)
}
