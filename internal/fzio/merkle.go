package fzio

import (
	"crypto/sha256"
	"errors"
	"fmt"
)

// This file is the integrity layer of the container formats: a Merkle
// tree over per-chunk content hashes. Version 2 FZMC and FZMS artifacts
// record each chunk's SHA-256 leaf hash in the chunk table and the
// tree's root alongside it, so a reader holding only the index can
// verify any subset of fetched chunks against the root via inclusion
// proofs — tamper evidence a per-chunk CRC32 cannot give, because a
// CRC is 32 bits, trivially forgeable, and stored next to the bytes it
// covers. The tree shape follows the classic audit-log construction:
// leaves are hashed with a 0x00 domain-separation prefix, interior
// nodes with 0x01 (so a leaf can never be replayed as a node), levels
// are built pairwise with the odd trailing node duplicated, and a
// proof is the sibling hash plus its side (left/right) per level.

// HashSize is the byte length of chunk leaf hashes and the Merkle root
// (SHA-256).
const HashSize = sha256.Size

// Domain-separation prefixes: a leaf hash and an interior-node hash of
// the same bytes must differ, or a forged "leaf" equal to a serialized
// node pair would verify (the classic second-preimage attack on
// unprefixed Merkle trees).
const (
	leafPrefix = 0x00
	nodePrefix = 0x01
)

// ErrProofMismatch marks a payload (or chunk table) whose hash
// contradicts the container's Merkle root: tampering or corruption that
// slipped past — or was crafted to pass — the CRC32 check. Like
// ErrCRCMismatch it is never retried: the store's bytes are wrong, and
// fetching them again cannot help.
var ErrProofMismatch = errors.New("fzio: Merkle proof mismatch")

// LeafHash computes the content hash of one chunk payload:
// SHA-256(0x00 ‖ payload).
func LeafHash(payload []byte) [HashSize]byte {
	h := sha256.New()
	h.Write([]byte{leafPrefix})
	h.Write(payload)
	var out [HashSize]byte
	h.Sum(out[:0])
	return out
}

// nodeHash combines two child hashes: SHA-256(0x01 ‖ left ‖ right).
func nodeHash(left, right [HashSize]byte) [HashSize]byte {
	h := sha256.New()
	h.Write([]byte{nodePrefix})
	h.Write(left[:])
	h.Write(right[:])
	var out [HashSize]byte
	h.Sum(out[:0])
	return out
}

// ProofStep is one level of an inclusion proof: the sibling hash to
// combine with, and the side it sits on (Left true means the sibling is
// the left operand of the parent hash).
type ProofStep struct {
	Hash [HashSize]byte
	Left bool
}

// MerkleTree is a complete Merkle tree over chunk leaf hashes. Level 0
// holds the leaves; each higher level hashes adjacent pairs, with an
// odd trailing node paired against a duplicate of itself, up to the
// single root. Build once with NewMerkleTree; all methods are
// read-only afterwards and safe for concurrent use.
type MerkleTree struct {
	levels [][][HashSize]byte
}

// NewMerkleTree builds the tree over leaves. At least one leaf is
// required (containers always hold at least one chunk).
func NewMerkleTree(leaves [][HashSize]byte) (*MerkleTree, error) {
	if len(leaves) == 0 {
		return nil, fmt.Errorf("fzio: Merkle tree needs at least one leaf")
	}
	level := append([][HashSize]byte(nil), leaves...)
	t := &MerkleTree{levels: [][][HashSize]byte{level}}
	for len(level) > 1 {
		next := make([][HashSize]byte, (len(level)+1)/2)
		for i := range next {
			left := level[2*i]
			right := left // odd trailing node: duplicated
			if 2*i+1 < len(level) {
				right = level[2*i+1]
			}
			next[i] = nodeHash(left, right)
		}
		t.levels = append(t.levels, next)
		level = next
	}
	return t, nil
}

// NumLeaves returns the leaf count.
func (t *MerkleTree) NumLeaves() int { return len(t.levels[0]) }

// Root returns the tree's root hash.
func (t *MerkleTree) Root() [HashSize]byte {
	top := t.levels[len(t.levels)-1]
	return top[0]
}

// Proof returns the inclusion proof for leaf i: one sibling per level,
// bottom-up, such that folding the leaf hash through the steps
// reproduces the root.
func (t *MerkleTree) Proof(i int) ([]ProofStep, error) {
	if i < 0 || i >= t.NumLeaves() {
		return nil, fmt.Errorf("fzio: Merkle leaf %d out of range [0,%d)", i, t.NumLeaves())
	}
	var proof []ProofStep
	for _, level := range t.levels[:len(t.levels)-1] {
		sib := i ^ 1
		if sib >= len(level) {
			sib = i // odd trailing node pairs with itself
		}
		proof = append(proof, ProofStep{Hash: level[sib], Left: sib < i})
		i /= 2
	}
	return proof, nil
}

// VerifyProof folds leaf through proof and reports whether the result
// equals root — the check a client performs on a fetched chunk knowing
// only the chunk bytes, the proof, and the trusted root.
func VerifyProof(leaf [HashSize]byte, proof []ProofStep, root [HashSize]byte) bool {
	cur := leaf
	for _, step := range proof {
		if step.Left {
			cur = nodeHash(step.Hash, cur)
		} else {
			cur = nodeHash(cur, step.Hash)
		}
	}
	return cur == root
}

// merkleRoot builds the tree over the chunk table's recorded leaf
// hashes and returns its root — the value a v2 writer stores in the
// container.
func merkleRoot(refs []ChunkRef) ([HashSize]byte, error) {
	leaves := make([][HashSize]byte, len(refs))
	for i, ref := range refs {
		leaves[i] = ref.Hash
	}
	t, err := NewMerkleTree(leaves)
	if err != nil {
		return [HashSize]byte{}, err
	}
	return t.Root(), nil
}
