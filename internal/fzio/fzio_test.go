package fzio

import (
	"bytes"
	"testing"
	"testing/quick"

	"fzmod/internal/grid"
)

func sampleContainer() *Container {
	c := New(Header{
		Pipeline: "fzmod-default",
		Dims:     grid.D3(10, 20, 30),
		EB:       1.5e-4,
		RelEB:    1e-4,
		Extra:    512,
	})
	_ = c.Add("codes", []byte{1, 2, 3, 4, 5})
	_ = c.Add("outliers", []byte{9, 9})
	_ = c.Add("empty", nil)
	return c
}

func TestMarshalUnmarshalRoundtrip(t *testing.T) {
	c := sampleContainer()
	blob, err := c.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(blob)
	if err != nil {
		t.Fatal(err)
	}
	if got.Header != c.Header {
		t.Errorf("header mismatch: %+v vs %+v", got.Header, c.Header)
	}
	for _, name := range []string{"codes", "outliers", "empty"} {
		want, _ := c.Segment(name)
		gotSeg, err := got.Segment(name)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(gotSeg, want) {
			t.Errorf("segment %q mismatch", name)
		}
	}
}

func TestDuplicateSegmentRejected(t *testing.T) {
	c := New(Header{Dims: grid.D1(1)})
	if err := c.Add("x", nil); err != nil {
		t.Fatal(err)
	}
	if err := c.Add("x", nil); err == nil {
		t.Error("duplicate segment should fail")
	}
	if err := c.Add("", nil); err == nil {
		t.Error("empty name should fail")
	}
}

func TestSegmentLookup(t *testing.T) {
	c := sampleContainer()
	if !c.Has("codes") || c.Has("nope") {
		t.Error("Has misbehaves")
	}
	if _, err := c.Segment("nope"); err == nil {
		t.Error("missing segment should error")
	}
	names := c.Names()
	if len(names) != 3 || names[0] != "codes" || names[2] != "empty" {
		t.Errorf("Names = %v", names)
	}
	if c.Size() != 7 {
		t.Errorf("Size = %d, want 7", c.Size())
	}
}

func TestCorruptionDetected(t *testing.T) {
	c := sampleContainer()
	blob, err := c.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte (the last byte belongs to "outliers" payload).
	mut := append([]byte(nil), blob...)
	mut[len(mut)-1] ^= 0xFF
	if _, err := Unmarshal(mut); err == nil {
		t.Error("payload corruption must be detected via CRC")
	}
}

func TestUnmarshalErrors(t *testing.T) {
	c := sampleContainer()
	blob, _ := c.Marshal()
	cases := map[string][]byte{
		"empty":       nil,
		"bad magic":   []byte("NOPE\x01\x00"),
		"bad version": append([]byte(Magic), 9, 0),
		"truncated":   blob[:8],
		"half header": blob[:20],
		"cut payload": blob[:len(blob)-3],
	}
	for name, b := range cases {
		if _, err := Unmarshal(b); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestMarshalInvalidDims(t *testing.T) {
	c := New(Header{Dims: grid.Dims{X: 0, Y: 1, Z: 1}})
	if _, err := c.Marshal(); err == nil {
		t.Error("invalid dims should fail to marshal")
	}
}

func TestPropertyRoundtrip(t *testing.T) {
	f := func(a, b []byte, x, y, z uint8, eb float64) bool {
		dims := grid.Dims{X: int(x) + 1, Y: int(y) + 1, Z: int(z) + 1}
		c := New(Header{Pipeline: "p", Dims: dims, EB: eb})
		if err := c.Add("a", a); err != nil {
			return false
		}
		if err := c.Add("b", b); err != nil {
			return false
		}
		blob, err := c.Marshal()
		if err != nil {
			return false
		}
		got, err := Unmarshal(blob)
		if err != nil {
			return false
		}
		ga, _ := got.Segment("a")
		gb, _ := got.Segment("b")
		return bytes.Equal(ga, a) && bytes.Equal(gb, b) && got.Header.Dims == dims
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
