package fzio

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"

	"fzmod/internal/grid"
)

// This file defines the chunked container format, the on-disk shape of the
// block-parallel executor: the field is partitioned into slabs along its
// slowest-varying dimension and each slab is compressed independently into
// a regular (self-describing) FZModules container. The outer chunked
// container records the global geometry, the resolved error bound and a
// chunk table of per-chunk offsets, lengths, CRCs and plane counts, so the
// read path can validate the table up front and then decode every chunk in
// parallel without touching the others.

// ChunkedMagic identifies chunked FZModules containers.
const ChunkedMagic = "FZMC"

// ChunkedVersion is the chunked container format version writers emit.
// Version 2 extends each chunk-table entry with the chunk's SHA-256
// leaf hash and appends the Merkle root after the table (see merkle.go
// and docs/FORMAT.md §Integrity); readers accept versions 1 and 2, so
// v1 artifacts stay decodable everywhere.
const ChunkedVersion = 2

// chunkedVersionLegacy is the pre-integrity table layout (no hashes,
// no root) still accepted by every parser.
const chunkedVersionLegacy = 1

// maxChunksLimit bounds the chunk count a container may declare, so a
// corrupt header cannot drive a huge allocation.
const maxChunksLimit = 1 << 20

// maxFieldElems bounds the element count a chunked header may declare
// (16 Gi elements = 64 GiB of float32), so a crafted header can neither
// overflow int arithmetic nor drive an absurd output allocation before any
// chunk CRC has been checked.
const maxFieldElems = 1 << 34

// ChunkedHeader carries the global metadata of a chunked container.
type ChunkedHeader struct {
	Pipeline string    // pipeline identifier, e.g. "fzmod-default"
	Dims     grid.Dims // full field geometry
	EB       float64   // resolved absolute error bound shared by all chunks
	RelEB    float64   // user-specified relative bound (0 if absolute)
	Planes   int       // nominal planes per chunk along the slowest dimension
}

// ChunkRef locates one chunk inside the container's payload area.
type ChunkRef struct {
	Offset int    // byte offset into the payload area
	Length int    // payload bytes
	CRC    uint32 // CRC32 (IEEE) of the chunk payload
	Planes int    // planes of the slowest dimension this chunk covers
	// Hash is the chunk's Merkle leaf hash (SHA-256 over 0x00 ‖ payload)
	// recorded by version ≥ 2 containers; all zero for v1 artifacts,
	// whose tables carry no hashes.
	Hash [HashSize]byte
}

// ChunkedContainer is a decoded chunked container: the header, the chunk
// table, and the (not yet CRC-verified) payload area. Chunk payloads are
// verified lazily by Chunk so the checks can run on the parallel read path.
type ChunkedContainer struct {
	Header ChunkedHeader
	Chunks []ChunkRef
	// Root is the Merkle root over the chunk table's leaf hashes for
	// version ≥ 2 containers; nil for v1 artifacts. UnmarshalChunked has
	// already checked it against the table entries, so a non-nil Root
	// means the table itself is tamper-evident.
	Root    []byte
	payload []byte
}

// IsChunked reports whether blob starts with the chunked container magic.
func IsChunked(blob []byte) bool {
	return len(blob) >= 4 && string(blob[:4]) == ChunkedMagic
}

// MarshalChunked serializes chunk payloads under a chunked header. planes
// gives the slowest-dimension extent each chunk covers; the extents must be
// positive and sum to the header geometry's slow extent.
//
// Layout: "FZMC" ‖ u16 version ‖ pipeline string ‖ uvarint dims X/Y/Z ‖
// EB bits ‖ RelEB bits ‖ uvarint nominal planes ‖ uvarint chunk count;
// then per chunk: uvarint offset, uvarint length, CRC32(payload), uvarint
// planes, SHA-256 leaf hash (version ≥ 2); then the 32-byte Merkle root
// (version ≥ 2); then the concatenated chunk payloads.
//
// MarshalChunked is the gather path (chunk payloads already materialized,
// e.g. under a secondary encoder whose output size is unknown up front);
// it lowers onto the same layout engine as the scatter path, so the two
// produce identical bytes for identical chunk contents.
func MarshalChunked(h ChunkedHeader, chunks [][]byte, planes []int) ([]byte, error) {
	lengths := make([]int, len(chunks))
	for i, c := range chunks {
		lengths[i] = len(c)
	}
	a, err := NewChunkedAssembly(h, lengths, planes)
	if err != nil {
		return nil, err
	}
	for i, c := range chunks {
		copy(a.ChunkSlice(i), c)
		a.SealChunk(i)
	}
	return a.Bytes(), nil
}

// ChunkedAssembly is the zero-copy (scatter) writer of the chunked
// container: the full layout — prologue, chunk table offsets and lengths,
// payload area — is computed up front from the chunks' exact encoded
// sizes, so each worker serializes its chunk directly into its disjoint
// ChunkSlice window of the final buffer and then seals the table CRC,
// with no per-chunk staging blob and no serial gather copy.
type ChunkedAssembly struct {
	buf      []byte
	start    int   // payload area offset
	offsets  []int // per chunk, relative to start
	lengths  []int
	crcOffs  []int // absolute offset of each chunk's table CRC slot
	hashOffs []int // absolute offset of each chunk's table hash slot
	rootOff  int   // absolute offset of the Merkle root slot
}

// NewChunkedAssembly validates the geometry exactly as MarshalChunked does
// and writes the container prologue plus the chunk table (CRC slots
// zeroed) into a single exact-size buffer.
func NewChunkedAssembly(h ChunkedHeader, lengths, planes []int) (*ChunkedAssembly, error) {
	if !h.Dims.Valid() {
		return nil, fmt.Errorf("fzio: invalid dims %v", h.Dims)
	}
	if len(lengths) == 0 {
		return nil, fmt.Errorf("fzio: chunked container needs at least one chunk")
	}
	if len(lengths) != len(planes) {
		return nil, fmt.Errorf("fzio: %d chunks but %d plane counts", len(lengths), len(planes))
	}
	total := 0
	for i, k := range planes {
		if k <= 0 {
			return nil, fmt.Errorf("fzio: chunk %d covers %d planes", i, k)
		}
		total += k
	}
	if total != h.Dims.SlowExtent() {
		return nil, fmt.Errorf("fzio: chunks cover %d planes, field has %d", total, h.Dims.SlowExtent())
	}
	// Exact layout: prologue + table size depend only on the header values
	// and the chunk lengths, both known here.
	size := len(ChunkedMagic) + 2 + stringLen(h.Pipeline)
	size += uvarintLen(uint64(h.Dims.X)) + uvarintLen(uint64(h.Dims.Y)) + uvarintLen(uint64(h.Dims.Z))
	size += 16 // EB + RelEB
	size += uvarintLen(uint64(h.Planes)) + uvarintLen(uint64(len(lengths)))
	payload := 0
	for i, l := range lengths {
		if l < 0 {
			return nil, fmt.Errorf("fzio: chunk %d has negative length", i)
		}
		size += uvarintLen(uint64(payload)) + uvarintLen(uint64(l)) + 4 + uvarintLen(uint64(planes[i])) + HashSize
		payload += l
	}
	size += HashSize // Merkle root after the table
	size += payload

	a := &ChunkedAssembly{
		buf:      make([]byte, 0, size),
		offsets:  make([]int, len(lengths)),
		lengths:  append([]int(nil), lengths...),
		crcOffs:  make([]int, len(lengths)),
		hashOffs: make([]int, len(lengths)),
	}
	out := append(a.buf, ChunkedMagic...)
	out = binary.LittleEndian.AppendUint16(out, ChunkedVersion)
	out = appendString(out, h.Pipeline)
	out = binary.AppendUvarint(out, uint64(h.Dims.X))
	out = binary.AppendUvarint(out, uint64(h.Dims.Y))
	out = binary.AppendUvarint(out, uint64(h.Dims.Z))
	out = binary.LittleEndian.AppendUint64(out, math.Float64bits(h.EB))
	out = binary.LittleEndian.AppendUint64(out, math.Float64bits(h.RelEB))
	out = binary.AppendUvarint(out, uint64(h.Planes))
	out = binary.AppendUvarint(out, uint64(len(lengths)))
	off := 0
	for i, l := range lengths {
		a.offsets[i] = off
		out = binary.AppendUvarint(out, uint64(off))
		out = binary.AppendUvarint(out, uint64(l))
		a.crcOffs[i] = len(out)
		out = binary.LittleEndian.AppendUint32(out, 0) // sealed by SealChunk
		out = binary.AppendUvarint(out, uint64(planes[i]))
		a.hashOffs[i] = len(out)
		out = append(out, make([]byte, HashSize)...) // sealed by SealChunk
		off += l
	}
	a.rootOff = len(out)
	out = append(out, make([]byte, HashSize)...) // finalized by Bytes
	a.start = len(out)
	if a.start+payload != size {
		return nil, fmt.Errorf("fzio: assembly layout drifted: %d != %d", a.start+payload, size)
	}
	a.buf = out[:size]
	return a, nil
}

// NumChunks returns the chunk count of the layout.
func (a *ChunkedAssembly) NumChunks() int { return len(a.lengths) }

// ChunkSlice returns chunk i's disjoint window of the payload area; the
// chunk's serializer fills it completely and then calls SealChunk. Safe to
// use concurrently for distinct indices.
func (a *ChunkedAssembly) ChunkSlice(i int) []byte {
	lo := a.start + a.offsets[i]
	return a.buf[lo : lo+a.lengths[i] : lo+a.lengths[i]]
}

// SealChunk computes chunk i's payload CRC and Merkle leaf hash and
// writes its chunk-table slots. Call once after ChunkSlice(i) has been
// filled; distinct chunks may seal concurrently (the table slots are
// disjoint).
func (a *ChunkedAssembly) SealChunk(i int) {
	payload := a.ChunkSlice(i)
	binary.LittleEndian.PutUint32(a.buf[a.crcOffs[i]:], crc32.ChecksumIEEE(payload))
	leaf := LeafHash(payload)
	copy(a.buf[a.hashOffs[i]:], leaf[:])
}

// Bytes finalizes the Merkle root over the sealed leaf hashes and
// returns the assembled container. Valid once every chunk has been
// filled and sealed; idempotent (the root is recomputed from the table
// slots each call).
func (a *ChunkedAssembly) Bytes() []byte {
	leaves := make([][HashSize]byte, len(a.lengths))
	for i := range leaves {
		copy(leaves[i][:], a.buf[a.hashOffs[i]:])
	}
	t, err := NewMerkleTree(leaves)
	if err != nil {
		// Unreachable: NewChunkedAssembly rejects zero-chunk layouts.
		panic(err)
	}
	root := t.Root()
	copy(a.buf[a.rootOff:], root[:])
	return a.buf
}

// UnmarshalChunked parses a chunked container, verifying magic, version and
// the consistency of the chunk table: offsets must be contiguous from zero
// and every chunk must lie inside the payload area. Chunk payload CRCs are
// checked by Chunk, not here, so decoders can verify them in parallel.
func UnmarshalChunked(blob []byte) (*ChunkedContainer, error) {
	hdr, chunks, root, pos, err := parseChunkedTable(blob, int64(len(blob)))
	if err != nil {
		return nil, err
	}
	wantOff := 0
	for _, ref := range chunks {
		wantOff += ref.Length
	}
	if pos+wantOff > len(blob) {
		return nil, fmt.Errorf("fzio: payload truncated: need %d bytes, have %d", wantOff, len(blob)-pos)
	}
	return &ChunkedContainer{Header: hdr, Chunks: chunks, Root: root, payload: blob[pos : pos+wantOff]}, nil
}

// parseChunkedTable parses the FZMC prologue and chunk table from blob,
// which may be only a prefix of the container: truncation mid-parse
// surfaces as a truncatedErr (see index.go), so FetchIndex can grow its
// prefix and retry, while UnmarshalChunked reports it verbatim. maxPayload
// bounds the cumulative chunk payload — the blob length for in-memory
// parses, the artifact size for index-only ones. Returns the header, the
// validated chunk table, the Merkle root (nil for v1 containers; already
// checked against the table's leaf hashes for v2), and the payload
// area's byte offset.
func parseChunkedTable(blob []byte, maxPayload int64) (ChunkedHeader, []ChunkRef, []byte, int, error) {
	hdr, chunks, root, rootOK, pos, err := parseChunkedTableLoose(blob, maxPayload)
	if err != nil {
		return hdr, nil, nil, 0, err
	}
	if root != nil && !rootOK {
		// The root must reproduce from the table's own leaf hashes — a
		// tampered table (or root) surfaces here, before any payload is
		// fetched or trusted.
		return hdr, nil, nil, 0, fmt.Errorf("%w: chunk table root disagrees with entries", ErrProofMismatch)
	}
	return hdr, chunks, root, pos, nil
}

// parseChunkedTableLoose is parseChunkedTable with the root check relaxed
// for the salvage survey: a recorded Merkle root that fails to reproduce
// from the entries is reported through rootOK instead of failing the
// parse, so a tampered root still yields the chunk map salvage walks.
// Callers that trust payloads (UnmarshalChunked, FetchIndex) go through
// the strict wrapper above.
func parseChunkedTableLoose(blob []byte, maxPayload int64) (hdr ChunkedHeader, chunks []ChunkRef, root []byte, rootOK bool, pos int, err error) {
	if !IsChunked(blob) {
		return hdr, nil, nil, false, 0, fmt.Errorf("fzio: not a chunked FZModules container")
	}
	if len(blob) < 6 {
		return hdr, nil, nil, false, 0, truncf("fzio: truncated chunked header")
	}
	version := int(binary.LittleEndian.Uint16(blob[4:]))
	if version != chunkedVersionLegacy && version != ChunkedVersion {
		return hdr, nil, nil, false, 0, fmt.Errorf("fzio: unsupported chunked version %d", version)
	}
	pos = 6
	if hdr.Pipeline, pos, err = readStringT(blob, pos); err != nil {
		return hdr, nil, nil, false, 0, err
	}
	dims := [3]uint64{}
	nElems := uint64(1)
	for i := range dims {
		v, k := binary.Uvarint(blob[pos:])
		if k <= 0 {
			return hdr, nil, nil, false, 0, truncf("fzio: truncated dims")
		}
		dims[i], pos = v, pos+k
		// Overflow-safe product bound: decoders allocate dims.N() output
		// elements before any chunk CRC is checked. Zero extents fall
		// through to the Valid check below.
		if v > maxFieldElems || (v > 0 && nElems > maxFieldElems/v) {
			return hdr, nil, nil, false, 0, fmt.Errorf("fzio: declared field too large")
		}
		if v > 0 {
			nElems *= v
		}
	}
	hdr.Dims = grid.Dims{X: int(dims[0]), Y: int(dims[1]), Z: int(dims[2])}
	if !hdr.Dims.Valid() {
		return hdr, nil, nil, false, 0, fmt.Errorf("fzio: invalid dims %v", hdr.Dims)
	}
	if pos+16 > len(blob) {
		return hdr, nil, nil, false, 0, truncf("fzio: truncated chunked header")
	}
	hdr.EB = math.Float64frombits(binary.LittleEndian.Uint64(blob[pos:]))
	hdr.RelEB = math.Float64frombits(binary.LittleEndian.Uint64(blob[pos+8:]))
	pos += 16
	nominal, k := binary.Uvarint(blob[pos:])
	if k <= 0 {
		return hdr, nil, nil, false, 0, truncf("fzio: truncated nominal plane count")
	}
	hdr.Planes = int(nominal)
	pos += k
	nChunks, k := binary.Uvarint(blob[pos:])
	if k <= 0 || nChunks == 0 || nChunks > maxChunksLimit {
		return hdr, nil, nil, false, 0, fmt.Errorf("fzio: bad chunk count")
	}
	pos += k
	chunks = make([]ChunkRef, nChunks)
	wantOff, totalPlanes := 0, 0
	for i := range chunks {
		fields := [2]uint64{}
		for j := range fields {
			v, k := binary.Uvarint(blob[pos:])
			if k <= 0 {
				return hdr, nil, nil, false, 0, truncf("fzio: truncated chunk table")
			}
			fields[j], pos = v, pos+k
		}
		if pos+4 > len(blob) {
			return hdr, nil, nil, false, 0, truncf("fzio: truncated chunk CRC")
		}
		crc := binary.LittleEndian.Uint32(blob[pos:])
		pos += 4
		planes, k := binary.Uvarint(blob[pos:])
		if k <= 0 {
			return hdr, nil, nil, false, 0, truncf("fzio: truncated chunk planes")
		}
		pos += k
		ref := ChunkRef{Offset: int(fields[0]), Length: int(fields[1]), CRC: crc, Planes: int(planes)}
		if version >= 2 {
			if pos+HashSize > len(blob) {
				return hdr, nil, nil, false, 0, truncf("fzio: truncated chunk hash")
			}
			copy(ref.Hash[:], blob[pos:])
			pos += HashSize
		}
		if ref.Offset != wantOff {
			return hdr, nil, nil, false, 0, fmt.Errorf("fzio: chunk %d offset %d, want %d", i, ref.Offset, wantOff)
		}
		if ref.Length < 0 || ref.Planes <= 0 || ref.Planes > maxFieldElems {
			return hdr, nil, nil, false, 0, fmt.Errorf("fzio: chunk %d malformed", i)
		}
		// Overflow-safe accumulation: wantOff stays <= maxPayload, so the
		// caller's bounds arithmetic cannot wrap.
		if int64(ref.Length) > maxPayload-int64(wantOff) {
			return hdr, nil, nil, false, 0, fmt.Errorf("fzio: payload truncated: chunk %d needs %d bytes", i, ref.Length)
		}
		wantOff += ref.Length
		totalPlanes += ref.Planes
		chunks[i] = ref
	}
	if totalPlanes != hdr.Dims.SlowExtent() {
		return hdr, nil, nil, false, 0, fmt.Errorf("fzio: chunks cover %d planes, field has %d", totalPlanes, hdr.Dims.SlowExtent())
	}
	if version >= 2 {
		if pos+HashSize > len(blob) {
			return hdr, nil, nil, false, 0, truncf("fzio: truncated Merkle root")
		}
		root = append([]byte(nil), blob[pos:pos+HashSize]...)
		pos += HashSize
		want, err := merkleRoot(chunks)
		if err != nil {
			return hdr, nil, nil, false, 0, err
		}
		rootOK = string(root) == string(want[:])
	}
	return hdr, chunks, root, rootOK, pos, nil
}

// NumChunks returns the chunk count.
func (c *ChunkedContainer) NumChunks() int { return len(c.Chunks) }

// Chunk returns chunk i's payload after verifying its CRC. Safe to call
// concurrently for distinct (or identical) indices.
func (c *ChunkedContainer) Chunk(i int) ([]byte, error) {
	if i < 0 || i >= len(c.Chunks) {
		return nil, fmt.Errorf("fzio: chunk index %d out of range [0,%d)", i, len(c.Chunks))
	}
	ref := c.Chunks[i]
	data := c.payload[ref.Offset : ref.Offset+ref.Length]
	if crc32.ChecksumIEEE(data) != ref.CRC {
		return nil, fmt.Errorf("fzio: chunk %d CRC mismatch (corrupt container)", i)
	}
	return data, nil
}
