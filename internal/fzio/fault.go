package fzio

import (
	"fmt"
	"io"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// FaultFetcher is a seeded deterministic fault injector for chaos tests
// and the fzbench faults experiment. It wraps any ChunkFetcher and, per
// ReadRange, may inject a transient error, a latency spike, a truncated
// range (surfaced as the short-read error the fetcher contract demands),
// or bit corruption in the returned payload. The injected error classes
// are all transient under the Transient taxonomy except corruption, which
// is not an error at the fetcher at all: it must travel undetected until
// the container CRC check refuses it — that refusal, not a retry, is the
// correct answer to wrong bytes.
//
// Faults draw from one seeded PRNG, so a given seed and call count
// produce the same fault decisions run over run (concurrent callers
// interleave their draws, but the aggregate mix is stable). The injector
// is safe for concurrent use.
type FaultFetcher struct {
	inner ChunkFetcher
	cfg   FaultConfig

	mu    sync.Mutex
	rng   *rand.Rand
	calls int64 // ReadRange calls, for the every-Nth trigger

	stats struct {
		calls       atomic.Int64
		errors      atomic.Int64
		latencies   atomic.Int64
		truncations atomic.Int64
		corruptions atomic.Int64
	}
}

// FaultConfig selects the injected fault mix. All rates are per-ReadRange
// probabilities in [0,1]; zero disables that class.
type FaultConfig struct {
	// Seed fixes the PRNG; runs with the same seed inject the same fault
	// sequence.
	Seed int64
	// ErrorRate injects a transient error (wrapping ErrTransient) before
	// the inner fetch runs.
	ErrorRate float64
	// ErrorEveryN deterministically fails every Nth ReadRange call
	// (counted across the fetcher's lifetime) the same way; 0 disables.
	// Combines with ErrorRate.
	ErrorEveryN int
	// LatencyRate delays the call by Latency before serving it.
	LatencyRate float64
	Latency     time.Duration
	// TruncateRate makes the fetch come back short: the fetcher surfaces
	// the short-read error (io.ErrUnexpectedEOF class) a truncated range
	// response produces, which the taxonomy retries.
	TruncateRate float64
	// CorruptRate flips one random bit of the returned payload — the
	// silent-corruption fault the container CRC check must catch.
	CorruptRate float64
}

// NewFaultFetcher wraps inner with the injector.
func NewFaultFetcher(inner ChunkFetcher, cfg FaultConfig) *FaultFetcher {
	return &FaultFetcher{inner: inner, cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// decide draws this call's fault plan under the lock, so the PRNG stream
// stays one deterministic sequence.
func (f *FaultFetcher) decide(n int) (fail, spike, truncate bool, corruptBit int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.calls++
	if f.cfg.ErrorEveryN > 0 && f.calls%int64(f.cfg.ErrorEveryN) == 0 {
		fail = true
	}
	if f.cfg.ErrorRate > 0 && f.rng.Float64() < f.cfg.ErrorRate {
		fail = true
	}
	if f.cfg.LatencyRate > 0 && f.rng.Float64() < f.cfg.LatencyRate {
		spike = true
	}
	if f.cfg.TruncateRate > 0 && f.rng.Float64() < f.cfg.TruncateRate {
		truncate = true
	}
	corruptBit = -1
	if f.cfg.CorruptRate > 0 && f.rng.Float64() < f.cfg.CorruptRate {
		corruptBit = f.rng.Intn(n * 8)
	}
	return fail, spike, truncate, corruptBit
}

// ReadRange implements ChunkFetcher, injecting this call's faults.
func (f *FaultFetcher) ReadRange(off int64, n int) ([]byte, error) {
	f.stats.calls.Add(1)
	fail, spike, truncate, corruptBit := f.decide(n)
	if spike {
		f.stats.latencies.Add(1)
		time.Sleep(f.cfg.Latency)
	}
	if fail {
		f.stats.errors.Add(1)
		return nil, fmt.Errorf("%w: injected error for [%d,%d)", ErrTransient, off, off+int64(n))
	}
	if truncate {
		// Serve a genuinely shortened range and let the wrapped fetcher
		// contract turn it into the short-read error a flaky server causes.
		f.stats.truncations.Add(1)
		short := n / 2
		if short < 1 {
			short = 1
		}
		out, err := f.inner.ReadRange(off, short)
		if err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("fzio: fetcher short read: %d of %d bytes at %d: %w",
			len(out), n, off, io.ErrUnexpectedEOF)
	}
	out, err := f.inner.ReadRange(off, n)
	if err != nil {
		return nil, err
	}
	if corruptBit >= 0 && len(out) > 0 {
		f.stats.corruptions.Add(1)
		out[(corruptBit/8)%len(out)] ^= 1 << (corruptBit % 8)
	}
	return out, nil
}

// Size implements ChunkFetcher; sizing is served fault-free so chaos runs
// fail in the fetch path under test, not while opening the container.
func (f *FaultFetcher) Size() (int64, error) { return f.inner.Size() }

// Injected reports the faults delivered so far by class.
func (f *FaultFetcher) Injected() (errors, latencies, truncations, corruptions int64) {
	return f.stats.errors.Load(), f.stats.latencies.Load(),
		f.stats.truncations.Load(), f.stats.corruptions.Load()
}

// Calls reports the ReadRange calls observed.
func (f *FaultFetcher) Calls() int64 { return f.stats.calls.Load() }
