package fzio

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math/bits"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// FaultFetcher is a seeded deterministic fault injector for chaos tests
// and the fzbench faults experiment. It wraps any ChunkFetcher and, per
// ReadRange, may inject a transient error, a latency spike, a truncated
// range (surfaced as the short-read error the fetcher contract demands),
// or bit corruption in the returned payload — either a random bit flip
// (caught by the container CRC check) or a crafted CRC32-preserving
// tail corruption (invisible to the CRC, caught only by Merkle proof
// verification). The injected error classes are all transient under the
// Transient taxonomy except the corruptions, which are not errors at
// the fetcher at all: they must travel undetected until an integrity
// check refuses them — that refusal, not a retry, is the correct answer
// to wrong bytes.
//
// Faults draw from one seeded PRNG, so a given seed and call count
// produce the same fault decisions run over run (concurrent callers
// interleave their draws, but the aggregate mix is stable). The injector
// is safe for concurrent use.
type FaultFetcher struct {
	inner ChunkFetcher
	cfg   FaultConfig

	mu    sync.Mutex
	rng   *rand.Rand
	calls int64 // ReadRange calls, for the every-Nth trigger

	stats struct {
		calls       atomic.Int64
		errors      atomic.Int64
		latencies   atomic.Int64
		truncations atomic.Int64
		corruptions atomic.Int64
		collisions  atomic.Int64
	}
}

// FaultConfig selects the injected fault mix. All rates are per-ReadRange
// probabilities in [0,1]; zero disables that class.
type FaultConfig struct {
	// Seed fixes the PRNG; runs with the same seed inject the same fault
	// sequence.
	Seed int64
	// ErrorRate injects a transient error (wrapping ErrTransient) before
	// the inner fetch runs.
	ErrorRate float64
	// ErrorEveryN deterministically fails every Nth ReadRange call
	// (counted across the fetcher's lifetime) the same way; 0 disables.
	// Combines with ErrorRate.
	ErrorEveryN int
	// LatencyRate delays the call by Latency before serving it.
	LatencyRate float64
	Latency     time.Duration
	// TruncateRate makes the fetch come back short: the fetcher surfaces
	// the short-read error (io.ErrUnexpectedEOF class) a truncated range
	// response produces, which the taxonomy retries.
	TruncateRate float64
	// CorruptRate flips one random bit of the returned payload — the
	// silent-corruption fault the container CRC check must catch.
	CorruptRate float64
	// CollideCRCRate corrupts the tail of the returned payload with a
	// nonzero error pattern chosen so the payload's CRC32 (IEEE) is
	// unchanged — the adversarial fault a 32-bit checksum cannot see,
	// which only Merkle proof verification catches. Ranges shorter than
	// 8 bytes pass through untouched.
	CollideCRCRate float64
}

// NewFaultFetcher wraps inner with the injector.
func NewFaultFetcher(inner ChunkFetcher, cfg FaultConfig) *FaultFetcher {
	return &FaultFetcher{inner: inner, cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// decide draws this call's fault plan under the lock, so the PRNG stream
// stays one deterministic sequence.
func (f *FaultFetcher) decide(n int) (fail, spike, truncate bool, corruptBit int, collideDelta uint32) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.calls++
	if f.cfg.ErrorEveryN > 0 && f.calls%int64(f.cfg.ErrorEveryN) == 0 {
		fail = true
	}
	if f.cfg.ErrorRate > 0 && f.rng.Float64() < f.cfg.ErrorRate {
		fail = true
	}
	if f.cfg.LatencyRate > 0 && f.rng.Float64() < f.cfg.LatencyRate {
		spike = true
	}
	if f.cfg.TruncateRate > 0 && f.rng.Float64() < f.cfg.TruncateRate {
		truncate = true
	}
	corruptBit = -1
	if f.cfg.CorruptRate > 0 && f.rng.Float64() < f.cfg.CorruptRate {
		corruptBit = f.rng.Intn(n * 8)
	}
	if f.cfg.CollideCRCRate > 0 && f.rng.Float64() < f.cfg.CollideCRCRate {
		for collideDelta == 0 {
			collideDelta = f.rng.Uint32()
		}
	}
	return fail, spike, truncate, corruptBit, collideDelta
}

// ReadRange implements ChunkFetcher, injecting this call's faults.
func (f *FaultFetcher) ReadRange(off int64, n int) ([]byte, error) {
	f.stats.calls.Add(1)
	fail, spike, truncate, corruptBit, collideDelta := f.decide(n)
	if spike {
		f.stats.latencies.Add(1)
		time.Sleep(f.cfg.Latency)
	}
	if fail {
		f.stats.errors.Add(1)
		return nil, fmt.Errorf("%w: injected error for [%d,%d)", ErrTransient, off, off+int64(n))
	}
	if truncate {
		// Serve a genuinely shortened range and let the wrapped fetcher
		// contract turn it into the short-read error a flaky server causes.
		f.stats.truncations.Add(1)
		short := n / 2
		if short < 1 {
			short = 1
		}
		out, err := f.inner.ReadRange(off, short)
		if err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("fzio: fetcher short read: %d of %d bytes at %d: %w",
			len(out), n, off, io.ErrUnexpectedEOF)
	}
	out, err := f.inner.ReadRange(off, n)
	if err != nil {
		return nil, err
	}
	if corruptBit >= 0 && len(out) > 0 {
		f.stats.corruptions.Add(1)
		out[(corruptBit/8)%len(out)] ^= 1 << (corruptBit % 8)
	}
	if collideDelta != 0 && corruptPreservingCRC32(out, collideDelta) {
		f.stats.collisions.Add(1)
	}
	return out, nil
}

// Size implements ChunkFetcher; sizing is served fault-free so chaos runs
// fail in the fetch path under test, not while opening the container.
func (f *FaultFetcher) Size() (int64, error) { return f.inner.Size() }

// Injected reports the faults delivered so far by class.
func (f *FaultFetcher) Injected() (errors, latencies, truncations, corruptions int64) {
	return f.stats.errors.Load(), f.stats.latencies.Load(),
		f.stats.truncations.Load(), f.stats.corruptions.Load()
}

// CRCCollisions reports the CRC-preserving corruptions delivered so far.
func (f *FaultFetcher) CRCCollisions() int64 { return f.stats.collisions.Load() }

// Calls reports the ReadRange calls observed.
func (f *FaultFetcher) Calls() int64 { return f.stats.calls.Load() }

// Inner returns the wrapped fetcher.
func (f *FaultFetcher) Inner() ChunkFetcher { return f.inner }

// CorruptPreservingCRC32 tampers with out while preserving its CRC32 —
// the adversarial corruption a 32-bit checksum cannot detect. Exported
// for chaos suites and integrity tests that need a deterministic
// CRC-colliding tamper without routing traffic through a FaultFetcher;
// see corruptPreservingCRC32 for the construction.
func CorruptPreservingCRC32(out []byte, delta uint32) bool {
	return corruptPreservingCRC32(out, delta)
}

// corruptPreservingCRC32 XORs a nonzero error pattern into the last 8
// bytes of out, chosen so crc32.ChecksumIEEE(out) is unchanged, and
// reports whether it applied (ranges shorter than 8 bytes are left
// untouched). delta seeds the first half of the pattern; the second
// half is solved for.
//
// CRC32 is affine over GF(2): crc(a⊕b) = crc(a) ⊕ crc(b) ⊕ crc(0^len)
// for equal-length inputs, so the checksum is preserved exactly when
// the error pattern E (zeros outside the 8-byte tail window) satisfies
// crc(E) = crc(0^len). Writing E's window as d‖c with d fixed from
// delta, the condition is linear in c, and the 32×32 system over the
// window's last four bytes is invertible (its columns are the CRC
// residues of x^0..x^31 at the message end), so a compensation c always
// exists and is found by Gaussian elimination.
func corruptPreservingCRC32(out []byte, delta uint32) bool {
	if delta == 0 || len(out) < 8 {
		return false
	}
	// CRC state after the unchanged zero prefix; φ(e) is then the CRC of
	// the full-length pattern 0^{len-8} ‖ e.
	base := crc32OfZeros(len(out) - 8)
	phi := func(e *[8]byte) uint32 { return crc32.Update(base, crc32.IEEETable, e[:]) }
	var zero [8]byte
	phi0 := phi(&zero)

	var d8 [8]byte
	binary.LittleEndian.PutUint32(d8[:4], delta)
	target := phi(&d8) ^ phi0 // ψ(d‖0): the CRC delta the tail must cancel

	// Basis: the CRC delta of each single bit of the window's last four
	// bytes.
	var cols [32]uint32
	for k := 0; k < 32; k++ {
		var b [8]byte
		b[4+k/8] = 1 << (k % 8)
		cols[k] = phi(&b) ^ phi0
	}
	x, ok := solveGF2(cols, target)
	if !ok {
		return false // unreachable: the system is invertible
	}
	w := out[len(out)-8:]
	for i := 0; i < 4; i++ {
		w[i] ^= d8[i]
	}
	for k := 0; k < 32; k++ {
		if x&(1<<k) != 0 {
			w[4+k/8] ^= 1 << (k % 8)
		}
	}
	return true
}

// crc32OfZeros returns the IEEE CRC32 state after n zero bytes.
func crc32OfZeros(n int) uint32 {
	var zeros [4096]byte
	crc := uint32(0)
	for n > 0 {
		k := n
		if k > len(zeros) {
			k = len(zeros)
		}
		crc = crc32.Update(crc, crc32.IEEETable, zeros[:k])
		n -= k
	}
	return crc
}

// solveGF2 solves A·x = target over GF(2), where A's k-th column is
// cols[k], by Gaussian elimination with combination tracking. Reports
// false when target is outside A's span.
func solveGF2(cols [32]uint32, target uint32) (uint32, bool) {
	var vec [32]uint32   // reduced vectors, indexed by leading bit
	var combo [32]uint32 // original columns composing each reduced vector
	for k := 0; k < 32; k++ {
		v, c := cols[k], uint32(1)<<k
		for v != 0 {
			b := bits.Len32(v) - 1
			if vec[b] == 0 {
				vec[b], combo[b] = v, c
				break
			}
			v ^= vec[b]
			c ^= combo[b]
		}
	}
	var x uint32
	for t := target; t != 0; {
		b := bits.Len32(t) - 1
		if vec[b] == 0 {
			return 0, false
		}
		t ^= vec[b]
		x ^= combo[b]
	}
	return x, true
}
