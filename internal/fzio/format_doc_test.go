package fzio

import (
	"bytes"
	"encoding/hex"
	"fmt"
	"os"
	"strings"
	"testing"

	"fzmod/internal/grid"
)

// This file pins docs/FORMAT.md to the implementation: the worked hex
// dumps in §8 are re-generated from the same parameters the document
// states and compared byte-for-byte. A layout change that isn't reflected
// in the spec (or vice versa) fails here.

// docDump extracts the hex dump tagged `<!-- dump:<name> -->` from
// FORMAT.md: the fenced code block following the marker, parsed as
// `offset  byte byte ...` lines.
func docDump(t *testing.T, doc, name string) []byte {
	t.Helper()
	marker := fmt.Sprintf("<!-- dump:%s -->", name)
	_, rest, ok := strings.Cut(doc, marker)
	if !ok {
		t.Fatalf("FORMAT.md has no %q marker", marker)
	}
	_, rest, ok = strings.Cut(rest, "```text\n")
	if !ok {
		t.Fatalf("no fenced dump after %q", marker)
	}
	block, _, ok := strings.Cut(rest, "```")
	if !ok {
		t.Fatalf("unterminated dump block after %q", marker)
	}
	var out []byte
	for _, line := range strings.Split(strings.TrimSpace(block), "\n") {
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		off, err := hex.DecodeString(fields[0])
		if err != nil || len(off) != 4 {
			t.Fatalf("bad offset column %q in %s dump", fields[0], name)
		}
		for _, f := range fields[1:] {
			b, err := hex.DecodeString(f)
			if err != nil || len(b) != 1 {
				t.Fatalf("bad byte %q in %s dump", f, name)
			}
			out = append(out, b[0])
		}
	}
	if len(out) == 0 {
		t.Fatalf("empty %s dump", name)
	}
	return out
}

// docHeader is the example header every §8 container shares.
func docHeader() ChunkedHeader {
	return ChunkedHeader{
		Pipeline: "demo",
		Dims:     grid.D3(2, 2, 2),
		EB:       0.5,
		RelEB:    0,
		Planes:   1,
	}
}

func TestFormatDocDumpsMatchImplementation(t *testing.T) {
	blob, err := os.ReadFile("../../docs/FORMAT.md")
	if err != nil {
		t.Fatalf("reading spec: %v", err)
	}
	doc := string(blob)
	chunks := [][]byte{{0xAA, 0xBB}, {0xCC}}
	planes := []int{1, 1}

	t.Run("fzmd", func(t *testing.T) {
		c := New(Header{Pipeline: "demo", Dims: grid.D3(2, 2, 2), EB: 0.5, Extra: 7})
		if err := c.Add("q", []byte{0xAA, 0xBB, 0xCC}); err != nil {
			t.Fatal(err)
		}
		got, err := c.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		compareDump(t, docDump(t, doc, "fzmd"), got)
		// The documented bytes must round-trip as a valid container.
		back, err := Unmarshal(got)
		if err != nil {
			t.Fatalf("documented FZMD does not parse: %v", err)
		}
		if back.Header.Extra != 7 || !back.Has("q") {
			t.Errorf("documented FZMD parsed to %+v", back.Header)
		}
	})

	t.Run("fzmc", func(t *testing.T) {
		got, err := MarshalChunked(docHeader(), chunks, planes)
		if err != nil {
			t.Fatal(err)
		}
		compareDump(t, docDump(t, doc, "fzmc"), got)
		cc, err := UnmarshalChunked(got)
		if err != nil {
			t.Fatalf("documented FZMC does not parse: %v", err)
		}
		for i, want := range chunks {
			p, err := cc.Chunk(i)
			if err != nil || !bytes.Equal(p, want) {
				t.Errorf("chunk %d: %x, %v", i, p, err)
			}
		}
	})

	t.Run("fzms", func(t *testing.T) {
		var buf bytes.Buffer
		sw, err := NewStreamWriter(&buf, docHeader())
		if err != nil {
			t.Fatal(err)
		}
		for i, c := range chunks {
			if err := sw.WriteChunk(c, planes[i]); err != nil {
				t.Fatal(err)
			}
		}
		if err := sw.Close(); err != nil {
			t.Fatal(err)
		}
		compareDump(t, docDump(t, doc, "fzms"), buf.Bytes())
		// And the documented bytes must satisfy the random-access path:
		// index fetched from the trailer alone.
		ix, err := FetchIndex(NewBytesFetcher(buf.Bytes()))
		if err != nil {
			t.Fatalf("documented FZMS index fetch: %v", err)
		}
		if ix.NumChunks() != 2 {
			t.Errorf("documented FZMS has %d chunks in its index", ix.NumChunks())
		}
	})
}

func compareDump(t *testing.T, doc, got []byte) {
	t.Helper()
	if bytes.Equal(doc, got) {
		return
	}
	n := len(doc)
	if len(got) < n {
		n = len(got)
	}
	for i := 0; i < n; i++ {
		if doc[i] != got[i] {
			t.Fatalf("spec dump diverges from implementation at byte 0x%02x: doc %02x, impl %02x", i, doc[i], got[i])
		}
	}
	t.Fatalf("spec dump is %d bytes, implementation produced %d", len(doc), len(got))
}
