package fzio

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"hash/crc64"
	"math"
	"sync"

	"fzmod/internal/grid"
)

// This file builds a ContainerIndex — the chunk map a region read plans
// against — from a ChunkFetcher without ever transferring chunk payloads.
// FZMC containers carry the chunk table up front, so the index comes from a
// growing prefix; FZMS containers defer it to the CRC'd trailer, so the
// index comes from a fixed-size tail plus the prologue; monolithic FZMD
// containers degrade to a single whole-artifact chunk. All three flavors
// therefore serve random-access reads through one planner, and only the
// bytes the format spec (docs/FORMAT.md) designates as index are fetched.

// Container flavors distinguished by a ContainerIndex.
const (
	// FlavorChunked is a random-access FZMC container.
	FlavorChunked = "chunked"
	// FlavorStream is an append-mode FZMS container.
	FlavorStream = "stream"
	// FlavorMonolithic is a single FZMD container treated as one chunk.
	FlavorMonolithic = "monolithic"
)

// indexPrefixBytes is the initial (and growth-step) prefix fetched while
// parsing a front-loaded index; it covers the prologue plus a few hundred
// chunk-table entries in one round trip.
const indexPrefixBytes = 4096

// ContainerIndex is the chunk map of one container artifact: the global
// header, and for every chunk its absolute payload byte range in the
// artifact, its payload CRC, and the planes of the slowest dimension it
// covers. It is the only part of a container a region read must have
// resident; payloads are fetched per intersecting chunk.
type ContainerIndex struct {
	// Flavor is the container format the index came from (FlavorChunked,
	// FlavorStream or FlavorMonolithic).
	Flavor string
	// Header is the container's global metadata.
	Header ChunkedHeader
	// Chunks locates each chunk payload; unlike ChunkedContainer's table,
	// Offset here is absolute in the artifact, so ChunkFetcher.ReadRange
	// can serve it directly.
	Chunks []ChunkRef
	// Root is the container's Merkle root over the chunk leaf hashes,
	// recorded by version ≥ 2 FZMC and FZMS artifacts; nil for v1 and
	// monolithic artifacts, which carry no integrity tree. FetchIndex
	// has already checked a non-nil Root against the table's own leaf
	// hashes, so the index is tamper-evident as a whole; per-payload
	// verification is VerifyProof.
	Root []byte
	// ArtifactSize is the container's total byte length.
	ArtifactSize int64
	// Key is a content fingerprint of the header and chunk table (CRC64
	// over their canonical serialization): two indexes with equal keys
	// describe byte-identical chunk layouts, which is what lets a shared
	// decoded-slab cache serve every reader of the same artifact.
	Key uint64

	treeOnce sync.Once
	tree     *MerkleTree
	treeErr  error
}

// NumChunks returns the chunk count.
func (ix *ContainerIndex) NumChunks() int { return len(ix.Chunks) }

// VerifyChunk checks a fetched payload for chunk i against the index:
// exact length, and — for flavors whose index records payload CRCs — the
// CRC32. Monolithic artifacts have no container-level CRC; their integrity
// is covered by the per-segment CRCs Unmarshal verifies.
func (ix *ContainerIndex) VerifyChunk(i int, payload []byte) error {
	if i < 0 || i >= len(ix.Chunks) {
		return fmt.Errorf("fzio: chunk index %d out of range [0,%d)", i, len(ix.Chunks))
	}
	ref := ix.Chunks[i]
	if len(payload) != ref.Length {
		return fmt.Errorf("fzio: chunk %d payload is %d bytes, index records %d", i, len(payload), ref.Length)
	}
	if ix.Flavor == FlavorMonolithic {
		return nil
	}
	if crc32.ChecksumIEEE(payload) != ref.CRC {
		return fmt.Errorf("%w: chunk %d (corrupt or tampered payload)", ErrCRCMismatch, i)
	}
	return nil
}

// merkleTree lazily builds (once) the Merkle tree over the index's leaf
// hashes. Safe for concurrent use — the region read path verifies
// chunks from many goroutines.
func (ix *ContainerIndex) merkleTree() (*MerkleTree, error) {
	ix.treeOnce.Do(func() {
		leaves := make([][HashSize]byte, len(ix.Chunks))
		for i, ref := range ix.Chunks {
			leaves[i] = ref.Hash
		}
		ix.tree, ix.treeErr = NewMerkleTree(leaves)
	})
	return ix.tree, ix.treeErr
}

// Proof returns chunk i's Merkle inclusion proof — the per-level
// sibling hashes a client folds a fetched payload's leaf hash through
// to reproduce Root. Errors when the index carries no root (v1 or
// monolithic artifact).
func (ix *ContainerIndex) Proof(i int) ([]ProofStep, error) {
	if ix.Root == nil {
		return nil, fmt.Errorf("fzio: %s artifact carries no Merkle root", ix.Flavor)
	}
	t, err := ix.merkleTree()
	if err != nil {
		return nil, err
	}
	return t.Proof(i)
}

// VerifyProof checks a fetched payload for chunk i against the
// container's Merkle root: the payload's leaf hash must match the
// table's, and its inclusion proof must fold to Root. Returns an
// ErrProofMismatch-wrapped error on divergence. Indexes without a root
// (v1 or monolithic artifacts) verify vacuously — there is nothing to
// prove against — so callers can apply it unconditionally; HasProofs
// reports whether the check is substantive.
func (ix *ContainerIndex) VerifyProof(i int, payload []byte) error {
	if ix.Root == nil {
		return nil
	}
	if i < 0 || i >= len(ix.Chunks) {
		return fmt.Errorf("fzio: chunk index %d out of range [0,%d)", i, len(ix.Chunks))
	}
	leaf := LeafHash(payload)
	if leaf != ix.Chunks[i].Hash {
		return fmt.Errorf("%w: chunk %d payload hash diverges from the index", ErrProofMismatch, i)
	}
	proof, err := ix.Proof(i)
	if err != nil {
		return err
	}
	var root [HashSize]byte
	copy(root[:], ix.Root)
	if !VerifyProof(leaf, proof, root) {
		return fmt.Errorf("%w: chunk %d inclusion proof does not fold to the root", ErrProofMismatch, i)
	}
	return nil
}

// HasProofs reports whether the index carries a Merkle root, i.e.
// whether VerifyProof performs a substantive check.
func (ix *ContainerIndex) HasProofs() bool { return ix.Root != nil }

// truncatedErr marks a parse that ran off the end of the bytes at hand —
// corruption when the whole artifact was present, "fetch a longer prefix"
// when only a prefix was.
type truncatedErr struct{ msg string }

func (e truncatedErr) Error() string { return e.msg }

// truncf builds a truncatedErr.
func truncf(format string, args ...any) error {
	return truncatedErr{msg: fmt.Sprintf(format, args...)}
}

// isTruncated reports whether err marks a parse that needs more bytes.
func isTruncated(err error) bool {
	var t truncatedErr
	return errors.As(err, &t)
}

// readStringT is readString returning a truncatedErr when the string runs
// off the buffer, so prefix parsers can distinguish "short prefix" from
// real corruption.
func readStringT(blob []byte, pos int) (string, int, error) {
	n, k := binary.Uvarint(blob[pos:])
	if k <= 0 {
		return "", 0, truncf("fzio: bad string length")
	}
	if n > 1<<16 {
		return "", 0, fmt.Errorf("fzio: bad string length")
	}
	pos += k
	if pos+int(n) > len(blob) {
		return "", 0, truncf("fzio: truncated string")
	}
	return string(blob[pos : pos+int(n)]), pos + int(n), nil
}

// FetchIndex reads just enough of the artifact behind f to build its
// ContainerIndex: a growing prefix for FZMC and FZMD (header plus chunk
// table), the prologue plus the trailer for FZMS. Chunk payloads are never
// transferred.
func FetchIndex(f ChunkFetcher) (*ContainerIndex, error) {
	size, err := f.Size()
	if err != nil {
		return nil, fmt.Errorf("fzio: sizing artifact: %w", err)
	}
	if size < 6 {
		return nil, fmt.Errorf("fzio: artifact of %d bytes is not an FZModules container", size)
	}
	prefix, err := fetchPrefix(f, size, nil)
	if err != nil {
		return nil, err
	}
	switch {
	case IsChunked(prefix):
		return fetchChunkedIndex(f, size, prefix)
	case IsStream(prefix):
		return fetchStreamIndex(f, size, prefix)
	case string(prefix[:4]) == Magic:
		return fetchMonolithicIndex(f, size, prefix)
	default:
		return nil, fmt.Errorf("fzio: unrecognized container magic %q", prefix[:4])
	}
}

// fetchPrefix returns a prefix of the artifact at least one growth step
// longer than the current one (the whole artifact at most).
func fetchPrefix(f ChunkFetcher, size int64, cur []byte) ([]byte, error) {
	if int64(len(cur)) >= size {
		return nil, fmt.Errorf("fzio: container index truncated")
	}
	n := int64(len(cur)) * 2
	if n < indexPrefixBytes {
		n = indexPrefixBytes
	}
	if n > size {
		n = size
	}
	blob, err := fetchExact(f, 0, int(n), "container index")
	if err != nil {
		return nil, err
	}
	return blob, nil
}

// fetchExact reads a range and enforces the ChunkFetcher contract: exactly
// n bytes or an error, so a misbehaving fetcher surfaces as a wrapped
// error instead of a misparse.
func fetchExact(f ChunkFetcher, off int64, n int, what string) ([]byte, error) {
	blob, err := f.ReadRange(off, n)
	if err != nil {
		return nil, fmt.Errorf("fzio: fetching %s: %w", what, err)
	}
	if len(blob) != n {
		return nil, fmt.Errorf("fzio: fetching %s: fetcher returned %d of %d bytes at %d", what, len(blob), n, off)
	}
	return blob, nil
}

// fetchChunkedIndex parses the FZMC prologue and chunk table from a
// growing prefix and rebases chunk offsets to absolute artifact offsets.
func fetchChunkedIndex(f ChunkFetcher, size int64, prefix []byte) (*ContainerIndex, error) {
	for {
		hdr, chunks, root, payloadStart, err := parseChunkedTable(prefix, size)
		if err == nil {
			payload := int64(0)
			for i := range chunks {
				chunks[i].Offset += payloadStart
				payload += int64(chunks[i].Length)
			}
			if int64(payloadStart)+payload > size {
				return nil, fmt.Errorf("fzio: payload truncated: need %d bytes, have %d",
					payload, size-int64(payloadStart))
			}
			return finishIndex(FlavorChunked, hdr, chunks, root, size), nil
		}
		if !isTruncated(err) {
			return nil, err
		}
		if prefix, err = fetchPrefix(f, size, prefix); err != nil {
			return nil, err
		}
	}
}

// fetchStreamIndex builds the index of an FZMS stream from its prologue
// and CRC'd index trailer, then recomputes every frame's absolute payload
// offset from the recorded lengths — the frame headers are uvarint-exact,
// so the offsets are arithmetic, not a scan.
func fetchStreamIndex(f ChunkFetcher, size int64, prefix []byte) (*ContainerIndex, error) {
	// Prologue (with its own CRC) from the prefix.
	hdr, version, prologueLen, err := parseStreamPrologue(prefix)
	for isTruncated(err) {
		if prefix, err = fetchPrefix(f, size, prefix); err != nil {
			return nil, err
		}
		hdr, version, prologueLen, err = parseStreamPrologue(prefix)
	}
	if err != nil {
		return nil, err
	}

	// Tail: CRC32(index) ‖ u64 trailer length ‖ "FZME".
	if size < int64(prologueLen)+1+16 {
		return nil, fmt.Errorf("fzio: stream too short for an index trailer")
	}
	tail, err := fetchExact(f, size-16, 16, "stream trailer")
	if err != nil {
		return nil, err
	}
	if string(tail[12:16]) != streamEndMagic {
		return nil, fmt.Errorf("fzio: missing stream end magic (truncated or still-streaming container)")
	}
	trailerLen := binary.LittleEndian.Uint64(tail[4:12]) // len(index) + CRC
	idxCRC := binary.LittleEndian.Uint32(tail[:4])
	if trailerLen < 5 || int64(trailerLen)+12 > size-int64(prologueLen) {
		return nil, fmt.Errorf("fzio: bad stream trailer length %d", trailerLen)
	}
	idxLen := int(trailerLen) - 4
	idxStart := size - 16 - int64(idxLen)
	idx, err := fetchExact(f, idxStart, idxLen, "stream index")
	if err != nil {
		return nil, err
	}
	if crc32.ChecksumIEEE(idx) != idxCRC {
		return nil, fmt.Errorf("fzio: stream trailer CRC mismatch")
	}

	// Parse the index table: count, then length/planes/CRC per chunk.
	pos := 0
	nChunks, k := binary.Uvarint(idx[pos:])
	if k <= 0 || nChunks == 0 || nChunks > maxChunksLimit {
		return nil, fmt.Errorf("fzio: bad stream chunk count")
	}
	pos += k
	chunks := make([]ChunkRef, nChunks)
	totalPlanes := 0
	off := int64(prologueLen)
	for i := range chunks {
		length, k := binary.Uvarint(idx[pos:])
		if k <= 0 {
			return nil, fmt.Errorf("fzio: truncated stream index")
		}
		pos += k
		planes, k := binary.Uvarint(idx[pos:])
		if k <= 0 {
			return nil, fmt.Errorf("fzio: truncated stream index")
		}
		pos += k
		if pos+4 > len(idx) {
			return nil, fmt.Errorf("fzio: truncated stream index")
		}
		crc := binary.LittleEndian.Uint32(idx[pos:])
		pos += 4
		if length == 0 || length > maxStreamChunkBytes {
			return nil, fmt.Errorf("fzio: stream chunk %d length %d out of range", i, length)
		}
		if planes == 0 || planes > maxFieldElems {
			return nil, fmt.Errorf("fzio: stream chunk %d plane count %d out of range", i, planes)
		}
		// The frame header (length ‖ planes ‖ CRC32) precedes each payload;
		// its size follows exactly from the recorded values.
		off += int64(uvarintLen(length)) + int64(uvarintLen(planes)) + 4
		chunks[i] = ChunkRef{Offset: int(off), Length: int(length), CRC: crc, Planes: int(planes)}
		if version >= 2 {
			if pos+HashSize > len(idx) {
				return nil, fmt.Errorf("fzio: truncated stream index")
			}
			copy(chunks[i].Hash[:], idx[pos:])
			pos += HashSize
		}
		off += int64(length)
		totalPlanes += int(planes)
	}
	var root []byte
	if version >= 2 {
		if pos+HashSize > len(idx) {
			return nil, fmt.Errorf("fzio: truncated stream index")
		}
		root = append([]byte(nil), idx[pos:pos+HashSize]...)
		pos += HashSize
		// The root must reproduce from the entries' own leaf hashes: a
		// tampered trailer surfaces before any payload is trusted.
		want, err := merkleRoot(chunks)
		if err != nil {
			return nil, err
		}
		if string(root) != string(want[:]) {
			return nil, fmt.Errorf("%w: stream index root disagrees with entries", ErrProofMismatch)
		}
	}
	if pos != len(idx) {
		return nil, fmt.Errorf("fzio: stream index has %d trailing bytes", len(idx)-pos)
	}
	if totalPlanes != hdr.Dims.SlowExtent() {
		return nil, fmt.Errorf("fzio: chunks cover %d planes, field has %d", totalPlanes, hdr.Dims.SlowExtent())
	}
	// The end marker (uvarint 0, one byte) sits between the last frame and
	// the index; the reconstructed frame walk must land exactly there.
	if off+1 != idxStart {
		return nil, fmt.Errorf("fzio: stream frames end at %d, index begins at %d", off+1, idxStart)
	}
	return finishIndex(FlavorStream, hdr, chunks, root, size), nil
}

// parseStreamPrologue parses and CRC-verifies the FZMS prologue from a
// prefix, returning the header, the format version, and the prologue's
// byte length.
func parseStreamPrologue(blob []byte) (ChunkedHeader, int, int, error) {
	var hdr ChunkedHeader
	if len(blob) < 6 {
		return hdr, 0, 0, truncf("fzio: truncated stream prologue")
	}
	if string(blob[:4]) != StreamMagic {
		return hdr, 0, 0, fmt.Errorf("fzio: not a streaming FZModules container")
	}
	version := int(binary.LittleEndian.Uint16(blob[4:]))
	if version != streamVersionLegacy && version != StreamVersion {
		return hdr, 0, 0, fmt.Errorf("fzio: unsupported stream version %d", version)
	}
	pos := 6
	var err error
	if hdr.Pipeline, pos, err = readStringT(blob, pos); err != nil {
		return hdr, 0, 0, err
	}
	dims := [3]uint64{}
	nElems := uint64(1)
	for i := range dims {
		v, k := binary.Uvarint(blob[pos:])
		if k <= 0 {
			return hdr, 0, 0, truncf("fzio: truncated stream dims")
		}
		dims[i], pos = v, pos+k
		if v > maxFieldElems || (v > 0 && nElems > maxFieldElems/v) {
			return hdr, 0, 0, fmt.Errorf("fzio: declared field too large")
		}
		if v > 0 {
			nElems *= v
		}
	}
	hdr.Dims = grid.Dims{X: int(dims[0]), Y: int(dims[1]), Z: int(dims[2])}
	if !hdr.Dims.Valid() {
		return hdr, 0, 0, fmt.Errorf("fzio: invalid dims %v", hdr.Dims)
	}
	if pos+16 > len(blob) {
		return hdr, 0, 0, truncf("fzio: truncated stream prologue")
	}
	hdr.EB = math.Float64frombits(binary.LittleEndian.Uint64(blob[pos:]))
	hdr.RelEB = math.Float64frombits(binary.LittleEndian.Uint64(blob[pos+8:]))
	pos += 16
	nominal, k := binary.Uvarint(blob[pos:])
	if k <= 0 {
		return hdr, 0, 0, truncf("fzio: truncated stream prologue")
	}
	if nominal > maxFieldElems {
		return hdr, 0, 0, fmt.Errorf("fzio: bad nominal plane count")
	}
	hdr.Planes = int(nominal)
	pos += k
	if pos+4 > len(blob) {
		return hdr, 0, 0, truncf("fzio: truncated prologue CRC")
	}
	want := crc32.ChecksumIEEE(appendStreamPrologueV(nil, hdr, version))
	if binary.LittleEndian.Uint32(blob[pos:]) != want {
		return hdr, 0, 0, fmt.Errorf("fzio: stream prologue CRC mismatch")
	}
	return hdr, version, pos + 4, nil
}

// fetchMonolithicIndex maps an FZMD container to a one-chunk index
// covering the whole artifact, so the region planner serves monolithic
// containers through the same path. The payload has no container-level
// CRC (VerifyChunk skips it); Unmarshal's per-segment CRCs cover
// integrity at decode time.
func fetchMonolithicIndex(f ChunkFetcher, size int64, prefix []byte) (*ContainerIndex, error) {
	hdr, err := parseMonolithicHeader(prefix)
	for isTruncated(err) {
		if prefix, err = fetchPrefix(f, size, prefix); err != nil {
			return nil, err
		}
		hdr, err = parseMonolithicHeader(prefix)
	}
	if err != nil {
		return nil, err
	}
	if size > int64(maxStreamChunkBytes) {
		return nil, fmt.Errorf("fzio: monolithic artifact of %d bytes exceeds the single-chunk limit", size)
	}
	chunks := []ChunkRef{{Offset: 0, Length: int(size), Planes: hdr.Dims.SlowExtent()}}
	return finishIndex(FlavorMonolithic, hdr, chunks, nil, size), nil
}

// parseMonolithicHeader reads the FZMD header fields shared with the
// chunked formats (pipeline, dims, bounds) from a prefix.
func parseMonolithicHeader(blob []byte) (ChunkedHeader, error) {
	var hdr ChunkedHeader
	if len(blob) < 6 || string(blob[:4]) != Magic {
		return hdr, fmt.Errorf("fzio: not an FZModules container")
	}
	if v := binary.LittleEndian.Uint16(blob[4:]); v != Version {
		return hdr, fmt.Errorf("fzio: unsupported version %d", v)
	}
	pos := 6
	var err error
	if hdr.Pipeline, pos, err = readStringT(blob, pos); err != nil {
		return hdr, err
	}
	dims := [3]uint64{}
	nElems := uint64(1)
	for i := range dims {
		v, k := binary.Uvarint(blob[pos:])
		if k <= 0 {
			return hdr, truncf("fzio: truncated dims")
		}
		dims[i], pos = v, pos+k
		if v > maxFieldElems || (v > 0 && nElems > maxFieldElems/v) {
			return hdr, fmt.Errorf("fzio: declared field too large")
		}
		if v > 0 {
			nElems *= v
		}
	}
	hdr.Dims = grid.Dims{X: int(dims[0]), Y: int(dims[1]), Z: int(dims[2])}
	if !hdr.Dims.Valid() {
		return hdr, fmt.Errorf("fzio: invalid dims %v", hdr.Dims)
	}
	if pos+16 > len(blob) {
		return hdr, truncf("fzio: truncated header")
	}
	hdr.EB = math.Float64frombits(binary.LittleEndian.Uint64(blob[pos:]))
	hdr.RelEB = math.Float64frombits(binary.LittleEndian.Uint64(blob[pos+8:]))
	hdr.Planes = hdr.Dims.SlowExtent()
	return hdr, nil
}

// finishIndex stamps the content key and artifact size onto an index.
func finishIndex(flavor string, hdr ChunkedHeader, chunks []ChunkRef, root []byte, size int64) *ContainerIndex {
	ix := &ContainerIndex{Flavor: flavor, Header: hdr, Chunks: chunks, Root: root, ArtifactSize: size}
	ix.Key = contentKey(ix)
	return ix
}

// contentKey fingerprints an index: CRC64 (ECMA) over the canonical
// header serialization plus every chunk's offset/length/CRC/planes. Two
// artifacts with the same key have byte-identical chunk layouts, so a
// shared decoded-slab cache can serve both from one set of entries.
func contentKey(ix *ContainerIndex) uint64 {
	buf := appendStreamPrologue(nil, ix.Header)
	buf = append(buf, ix.Flavor...)
	for _, ref := range ix.Chunks {
		buf = binary.AppendUvarint(buf, uint64(ref.Offset))
		buf = binary.AppendUvarint(buf, uint64(ref.Length))
		buf = binary.LittleEndian.AppendUint32(buf, ref.CRC)
		buf = binary.AppendUvarint(buf, uint64(ref.Planes))
	}
	return crc64.Checksum(buf, crc64Table)
}

var crc64Table = crc64.MakeTable(crc64.ECMA)
