// Package fzio defines the self-describing container format FZModules
// pipelines serialize into: a fixed header carrying the geometry and
// error-bound metadata a decompressor needs, followed by a table of named,
// CRC-checked segments (quantization codes, outliers, anchors, encoder
// tables...). Each pipeline stores its stages as separate segments, which
// is what lets the STF decompression pipeline start independent tasks from
// independent segments (§3.3.1).
package fzio

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"

	"fzmod/internal/grid"
)

// Magic identifies FZModules containers.
const Magic = "FZMD"

// Version is the container format version.
const Version = 1

// Header carries the metadata common to every pipeline.
type Header struct {
	Pipeline string    // pipeline identifier, e.g. "fzmod-default"
	Dims     grid.Dims // original field geometry
	EB       float64   // effective absolute error bound used
	RelEB    float64   // user-specified relative bound (0 if absolute)
	Extra    uint64    // pipeline-specific scalar (e.g. radius)
}

// Container is a decoded container: header plus named segments.
type Container struct {
	Header   Header
	segments []segment
}

type segment struct {
	name string
	data []byte
}

// New creates an empty container with the given header.
func New(h Header) *Container { return &Container{Header: h} }

// Add appends a named segment. Names must be unique and non-empty.
func (c *Container) Add(name string, data []byte) error {
	if name == "" {
		return fmt.Errorf("fzio: empty segment name")
	}
	for _, s := range c.segments {
		if s.name == name {
			return fmt.Errorf("fzio: duplicate segment %q", name)
		}
	}
	c.segments = append(c.segments, segment{name, data})
	return nil
}

// Segment returns the named segment's bytes, or an error if absent.
func (c *Container) Segment(name string) ([]byte, error) {
	for _, s := range c.segments {
		if s.name == name {
			return s.data, nil
		}
	}
	return nil, fmt.Errorf("fzio: segment %q not found", name)
}

// Has reports whether a named segment exists.
func (c *Container) Has(name string) bool {
	for _, s := range c.segments {
		if s.name == name {
			return true
		}
	}
	return false
}

// Names lists segment names in insertion order.
func (c *Container) Names() []string {
	out := make([]string, len(c.segments))
	for i, s := range c.segments {
		out[i] = s.name
	}
	return out
}

// Size returns the total payload bytes across segments (header excluded).
func (c *Container) Size() int {
	n := 0
	for _, s := range c.segments {
		n += len(s.data)
	}
	return n
}

// uvarintLen returns the encoded size of v in bytes.
func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// stringLen returns the encoded size of a length-prefixed string.
func stringLen(s string) int { return uvarintLen(uint64(len(s))) + len(s) }

// MarshaledSize returns the exact byte size Marshal/MarshalInto produce.
// The chunked executor uses it to lay out the final container before any
// chunk has serialized, so workers can scatter-write their chunks directly
// into the assembled output.
func (c *Container) MarshaledSize() int {
	n := len(Magic) + 2 // magic + version
	n += stringLen(c.Header.Pipeline)
	n += uvarintLen(uint64(c.Header.Dims.X)) + uvarintLen(uint64(c.Header.Dims.Y)) + uvarintLen(uint64(c.Header.Dims.Z))
	n += 16 // EB + RelEB
	n += uvarintLen(c.Header.Extra)
	n += uvarintLen(uint64(len(c.segments)))
	for _, s := range c.segments {
		n += stringLen(s.name) + uvarintLen(uint64(len(s.data))) + 4 + len(s.data)
	}
	return n
}

// Marshal serializes the container into a single exact-size allocation.
//
// Layout: "FZMD" ‖ u16 version ‖ uvarint fields:
// pipeline, dims X/Y/Z, EB bits, RelEB bits, Extra, segment count; then per
// segment: name, length, CRC32(payload); then concatenated payloads.
func (c *Container) Marshal() ([]byte, error) {
	out := make([]byte, c.MarshaledSize())
	if _, err := c.MarshalInto(out); err != nil {
		return nil, err
	}
	return out, nil
}

// MarshalInto serializes the container into dst, which must hold at least
// MarshaledSize bytes, and returns the bytes written. The byte stream is
// identical to Marshal's.
func (c *Container) MarshalInto(dst []byte) (int, error) {
	if !c.Header.Dims.Valid() {
		return 0, fmt.Errorf("fzio: invalid dims %v", c.Header.Dims)
	}
	size := c.MarshaledSize()
	if len(dst) < size {
		return 0, fmt.Errorf("fzio: container needs %d bytes, dst has %d", size, len(dst))
	}
	out := append(dst[:0], Magic...)
	out = binary.LittleEndian.AppendUint16(out, Version)
	out = appendString(out, c.Header.Pipeline)
	out = binary.AppendUvarint(out, uint64(c.Header.Dims.X))
	out = binary.AppendUvarint(out, uint64(c.Header.Dims.Y))
	out = binary.AppendUvarint(out, uint64(c.Header.Dims.Z))
	out = binary.LittleEndian.AppendUint64(out, math.Float64bits(c.Header.EB))
	out = binary.LittleEndian.AppendUint64(out, math.Float64bits(c.Header.RelEB))
	out = binary.AppendUvarint(out, c.Header.Extra)
	out = binary.AppendUvarint(out, uint64(len(c.segments)))
	for _, s := range c.segments {
		out = appendString(out, s.name)
		out = binary.AppendUvarint(out, uint64(len(s.data)))
		out = binary.LittleEndian.AppendUint32(out, crc32.ChecksumIEEE(s.data))
	}
	for _, s := range c.segments {
		out = append(out, s.data...)
	}
	if len(out) != size {
		return 0, fmt.Errorf("fzio: marshaled %d bytes, computed %d", len(out), size)
	}
	return size, nil
}

// Unmarshal parses a container, verifying magic, version and segment CRCs.
func Unmarshal(blob []byte) (*Container, error) {
	if len(blob) < 6 || string(blob[:4]) != Magic {
		return nil, fmt.Errorf("fzio: not an FZModules container")
	}
	if v := binary.LittleEndian.Uint16(blob[4:]); v != Version {
		return nil, fmt.Errorf("fzio: unsupported version %d", v)
	}
	pos := 6
	var err error
	c := &Container{}
	if c.Header.Pipeline, pos, err = readString(blob, pos); err != nil {
		return nil, err
	}
	dims := [3]uint64{}
	for i := range dims {
		v, k := binary.Uvarint(blob[pos:])
		if k <= 0 {
			return nil, fmt.Errorf("fzio: truncated dims")
		}
		dims[i], pos = v, pos+k
	}
	c.Header.Dims = grid.Dims{X: int(dims[0]), Y: int(dims[1]), Z: int(dims[2])}
	if !c.Header.Dims.Valid() {
		return nil, fmt.Errorf("fzio: invalid dims %v", c.Header.Dims)
	}
	if pos+16 > len(blob) {
		return nil, fmt.Errorf("fzio: truncated header")
	}
	c.Header.EB = math.Float64frombits(binary.LittleEndian.Uint64(blob[pos:]))
	c.Header.RelEB = math.Float64frombits(binary.LittleEndian.Uint64(blob[pos+8:]))
	pos += 16
	extra, k := binary.Uvarint(blob[pos:])
	if k <= 0 {
		return nil, fmt.Errorf("fzio: truncated extra field")
	}
	c.Header.Extra = extra
	pos += k
	nSeg, k := binary.Uvarint(blob[pos:])
	if k <= 0 || nSeg > 1<<20 {
		return nil, fmt.Errorf("fzio: bad segment count")
	}
	pos += k
	type segMeta struct {
		name string
		size int
		crc  uint32
	}
	metas := make([]segMeta, nSeg)
	for i := range metas {
		if metas[i].name, pos, err = readString(blob, pos); err != nil {
			return nil, err
		}
		sz, k := binary.Uvarint(blob[pos:])
		if k <= 0 {
			return nil, fmt.Errorf("fzio: truncated segment size")
		}
		metas[i].size = int(sz)
		pos += k
		if pos+4 > len(blob) {
			return nil, fmt.Errorf("fzio: truncated segment CRC")
		}
		metas[i].crc = binary.LittleEndian.Uint32(blob[pos:])
		pos += 4
	}
	for _, m := range metas {
		if pos+m.size > len(blob) {
			return nil, fmt.Errorf("fzio: segment %q exceeds container", m.name)
		}
		data := blob[pos : pos+m.size]
		if crc32.ChecksumIEEE(data) != m.crc {
			return nil, fmt.Errorf("fzio: segment %q CRC mismatch (corrupt container)", m.name)
		}
		c.segments = append(c.segments, segment{m.name, data})
		pos += m.size
	}
	return c, nil
}

func appendString(out []byte, s string) []byte {
	out = binary.AppendUvarint(out, uint64(len(s)))
	return append(out, s...)
}

func readString(blob []byte, pos int) (string, int, error) {
	n, k := binary.Uvarint(blob[pos:])
	if k <= 0 || n > 1<<16 {
		return "", 0, fmt.Errorf("fzio: bad string length")
	}
	pos += k
	if pos+int(n) > len(blob) {
		return "", 0, fmt.Errorf("fzio: truncated string")
	}
	return string(blob[pos : pos+int(n)]), pos + int(n), nil
}
