package fzio

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// flakyFetcher fails the first failures calls to each method with err,
// then delegates.
type flakyFetcher struct {
	inner    ChunkFetcher
	err      error
	mu       sync.Mutex
	failures int
	calls    int
}

func (f *flakyFetcher) fault() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.calls++
	if f.failures > 0 {
		f.failures--
		return f.err
	}
	return nil
}

func (f *flakyFetcher) ReadRange(off int64, n int) ([]byte, error) {
	if err := f.fault(); err != nil {
		return nil, err
	}
	return f.inner.ReadRange(off, n)
}

func (f *flakyFetcher) Size() (int64, error) {
	if err := f.fault(); err != nil {
		return 0, err
	}
	return f.inner.Size()
}

func TestTransientTaxonomy(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want bool
	}{
		{"nil", nil, false},
		{"marked transient", fmt.Errorf("wrapped: %w", ErrTransient), true},
		{"short read", fmt.Errorf("short: %w", io.ErrUnexpectedEOF), true},
		{"http 503", fmt.Errorf("range: %w", &HTTPStatusError{Code: 503, Status: "503 Service Unavailable"}), true},
		{"http 500", &HTTPStatusError{Code: 500, Status: "500 Internal Server Error"}, true},
		{"http 429", fmt.Errorf("range: %w", &HTTPStatusError{Code: 429, Status: "429 Too Many Requests"}), true},
		{"http 404", &HTTPStatusError{Code: 404, Status: "404 Not Found"}, false},
		{"http 416", &HTTPStatusError{Code: 416, Status: "416 Range Not Satisfiable"}, false},
		{"net timeout", &net.DNSError{Err: "timeout", IsTimeout: true}, true},
		{"range violation", fmt.Errorf("x: %w", ErrRangeViolation), false},
		{"crc mismatch", fmt.Errorf("x: %w", ErrCRCMismatch), false},
		{"proof mismatch", fmt.Errorf("x: %w", ErrProofMismatch), false},
		{"crc beats transient mark", fmt.Errorf("%w: %w", ErrTransient, ErrCRCMismatch), false},
		{"plain error", errors.New("nope"), false},
	}
	for _, tc := range cases {
		if got := Transient(tc.err); got != tc.want {
			t.Errorf("Transient(%s) = %v, want %v", tc.name, got, tc.want)
		}
	}
}

// noSleep is the injectable clock chaos tests run retries under: backoff
// delays are recorded, not slept.
func noSleep(t *testing.T) (func(time.Duration), *[]time.Duration) {
	t.Helper()
	var slept []time.Duration
	return func(d time.Duration) { slept = append(slept, d) }, &slept
}

func TestRetryFetcherRecoversTransient(t *testing.T) {
	blob := []byte("0123456789abcdef")
	sleep, slept := noSleep(t)
	flaky := &flakyFetcher{inner: NewBytesFetcher(blob), err: fmt.Errorf("%w: blip", ErrTransient), failures: 2}
	r := NewRetryFetcher(flaky, RetryPolicy{MaxAttempts: 4, BaseDelay: 10 * time.Millisecond, Sleep: sleep})

	got, attempts, err := r.ReadRangeAttempts(10, 4)
	if err != nil {
		t.Fatalf("ReadRangeAttempts: %v", err)
	}
	if string(got) != "abcd" || attempts != 3 {
		t.Fatalf("got %q in %d attempts, want \"abcd\" in 3", got, attempts)
	}
	if r.Attempts() != 3 || r.Retries() != 2 || r.Exhausted() != 0 {
		t.Fatalf("counters = %d/%d/%d, want 3/2/0", r.Attempts(), r.Retries(), r.Exhausted())
	}
	// Deterministic schedule without jitter: 10ms then 20ms.
	if len(*slept) != 2 || (*slept)[0] != 10*time.Millisecond || (*slept)[1] != 20*time.Millisecond {
		t.Fatalf("backoff schedule = %v, want [10ms 20ms]", *slept)
	}
}

func TestRetryFetcherBackoffCapAndJitter(t *testing.T) {
	pol := RetryPolicy{BaseDelay: 10 * time.Millisecond, MaxDelay: 35 * time.Millisecond}.withDefaults()
	for attempt, want := range map[int]time.Duration{
		1: 10 * time.Millisecond,
		2: 20 * time.Millisecond,
		3: 35 * time.Millisecond, // capped
		9: 35 * time.Millisecond,
	} {
		if got := pol.delay(attempt); got != want {
			t.Errorf("delay(%d) = %v, want %v", attempt, got, want)
		}
	}
	pol.Jitter = func(d time.Duration) time.Duration { return d / 2 }
	if got := pol.delay(2); got != 10*time.Millisecond {
		t.Errorf("jittered delay(2) = %v, want 10ms", got)
	}
}

func TestRetryFetcherNeverRetriesFatal(t *testing.T) {
	for _, fatal := range []error{
		fmt.Errorf("status: %w", &HTTPStatusError{Code: 404, Status: "404 Not Found"}),
		fmt.Errorf("verify: %w", ErrCRCMismatch),
		fmt.Errorf("plan: %w", ErrRangeViolation),
	} {
		sleep, slept := noSleep(t)
		flaky := &flakyFetcher{inner: NewBytesFetcher(make([]byte, 8)), err: fatal, failures: 99}
		r := NewRetryFetcher(flaky, RetryPolicy{Sleep: sleep})
		if _, err := r.ReadRange(0, 4); !errors.Is(err, fatal) && err == nil {
			t.Fatalf("want the fatal error surfaced, got %v", err)
		}
		if flaky.calls != 1 || len(*slept) != 0 {
			t.Fatalf("fatal %v: %d calls, %d sleeps — must not retry", fatal, flaky.calls, len(*slept))
		}
	}
}

func TestRetryFetcherExhausts(t *testing.T) {
	sleep, _ := noSleep(t)
	flaky := &flakyFetcher{inner: NewBytesFetcher(make([]byte, 8)), err: fmt.Errorf("%w: down", ErrTransient), failures: 99}
	r := NewRetryFetcher(flaky, RetryPolicy{MaxAttempts: 3, Sleep: sleep})
	_, attempts, err := r.ReadRangeAttempts(0, 4)
	if err == nil || !Transient(err) {
		t.Fatalf("want a transient exhaustion error, got %v", err)
	}
	if attempts != 3 || flaky.calls != 3 || r.Exhausted() != 1 {
		t.Fatalf("attempts=%d calls=%d exhausted=%d, want 3/3/1", attempts, flaky.calls, r.Exhausted())
	}
}

func TestRetryFetcherBudgetDeadline(t *testing.T) {
	// A fake clock: every Now() call advances 1ms, every sleep its delay.
	now := time.Unix(0, 0)
	pol := RetryPolicy{
		MaxAttempts: 10,
		BaseDelay:   40 * time.Millisecond,
		Budget:      100 * time.Millisecond,
		Now:         func() time.Time { return now },
		Sleep:       func(d time.Duration) { now = now.Add(d) },
	}
	flaky := &flakyFetcher{inner: NewBytesFetcher(make([]byte, 8)), err: fmt.Errorf("%w: down", ErrTransient), failures: 99}
	r := NewRetryFetcher(flaky, pol)
	_, attempts, err := r.ReadRangeAttempts(0, 4)
	if err == nil {
		t.Fatal("want budget-exhaustion error")
	}
	// Schedule: attempt 1, sleep 40ms, attempt 2, sleep 80ms would land at
	// 120ms > 100ms budget — so exactly 2 attempts.
	if attempts != 2 {
		t.Fatalf("attempts = %d, want 2 (deadline-aware backoff)", attempts)
	}
}

func TestRetryFetcherAttemptTimeout(t *testing.T) {
	stall := make(chan struct{})
	var once sync.Once
	inner := fetcherFunc{
		read: func(off int64, n int) ([]byte, error) {
			var stalled bool
			once.Do(func() { stalled = true })
			if stalled {
				<-stall // first attempt hangs until the test ends
			}
			return make([]byte, n), nil
		},
		size: func() (int64, error) { return 1 << 20, nil },
	}
	defer close(stall)
	sleep, _ := noSleep(t)
	r := NewRetryFetcher(inner, RetryPolicy{
		MaxAttempts:    3,
		AttemptTimeout: 20 * time.Millisecond,
		Sleep:          sleep,
	})
	got, attempts, err := r.ReadRangeAttempts(0, 4)
	if err != nil || len(got) != 4 {
		t.Fatalf("ReadRangeAttempts = %d bytes, %v", len(got), err)
	}
	if attempts != 2 {
		t.Fatalf("attempts = %d, want 2 (stuck attempt abandoned)", attempts)
	}
}

func TestRetryFetcherSize(t *testing.T) {
	sleep, _ := noSleep(t)
	flaky := &flakyFetcher{inner: NewBytesFetcher(make([]byte, 123)), err: fmt.Errorf("%w: blip", ErrTransient), failures: 1}
	r := NewRetryFetcher(flaky, RetryPolicy{Sleep: sleep})
	if size, err := r.Size(); err != nil || size != 123 {
		t.Fatalf("Size = %d, %v; want 123", size, err)
	}
	if r.Retries() != 1 {
		t.Fatalf("Retries = %d, want 1", r.Retries())
	}
}

// A server throttling with 429 is saying "later", not "no": the retry
// layer must absorb it and succeed once the server relents.
func TestRetryFetcherRecovers429(t *testing.T) {
	blob := []byte("0123456789abcdef")
	sleep, slept := noSleep(t)
	flaky := &flakyFetcher{
		inner:    NewBytesFetcher(blob),
		err:      fmt.Errorf("range: %w", &HTTPStatusError{Code: 429, Status: "429 Too Many Requests"}),
		failures: 1,
	}
	r := NewRetryFetcher(flaky, RetryPolicy{MaxAttempts: 4, BaseDelay: 10 * time.Millisecond, Sleep: sleep})
	got, attempts, err := r.ReadRangeAttempts(10, 4)
	if err != nil || string(got) != "abcd" {
		t.Fatalf("ReadRangeAttempts = %q, %v", got, err)
	}
	if attempts != 2 || r.Retries() != 1 || len(*slept) != 1 {
		t.Fatalf("attempts=%d retries=%d sleeps=%d, want 2/1/1", attempts, r.Retries(), len(*slept))
	}
}

// The same recovery end to end: a real HTTP server answers the first
// range request 429-with-Retry-After, then 200 — and the server's hint
// overrides the policy's own backoff schedule.
func TestRetryFetcherHTTP429ThenOK(t *testing.T) {
	blob := []byte("0123456789abcdef")
	var mu sync.Mutex
	throttled := true
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodHead {
			w.Header().Set("Content-Length", fmt.Sprint(len(blob)))
			return
		}
		mu.Lock()
		first := throttled
		throttled = false
		mu.Unlock()
		if first {
			w.Header().Set("Retry-After", "2")
			http.Error(w, "slow down", http.StatusTooManyRequests)
			return
		}
		http.ServeContent(w, r, "a.fzmc", time.Time{}, bytes.NewReader(blob))
	}))
	defer srv.Close()

	sleep, slept := noSleep(t)
	r := NewRetryFetcher(NewHTTPFetcher(srv.URL, srv.Client()),
		RetryPolicy{MaxAttempts: 4, BaseDelay: 10 * time.Millisecond, Sleep: sleep})
	got, attempts, err := r.ReadRangeAttempts(10, 4)
	if err != nil || string(got) != "abcd" {
		t.Fatalf("ReadRangeAttempts = %q, %v", got, err)
	}
	if attempts != 2 || r.Retries() != 1 {
		t.Fatalf("attempts=%d retries=%d, want 2/1", attempts, r.Retries())
	}
	// Retry-After: 2 must win over the 10ms BaseDelay.
	if len(*slept) != 1 || (*slept)[0] != 2*time.Second {
		t.Fatalf("backoff = %v, want [2s] from the Retry-After header", *slept)
	}
}

func TestParseRetryAfter(t *testing.T) {
	if d := parseRetryAfter("7"); d != 7*time.Second {
		t.Fatalf("parseRetryAfter(7) = %v", d)
	}
	if d := parseRetryAfter(""); d != 0 {
		t.Fatalf("parseRetryAfter(empty) = %v", d)
	}
	if d := parseRetryAfter("-3"); d != 0 {
		t.Fatalf("parseRetryAfter(-3) = %v", d)
	}
	if d := parseRetryAfter("garbage"); d != 0 {
		t.Fatalf("parseRetryAfter(garbage) = %v", d)
	}
	// HTTP-date form: a date in the future yields a positive delay.
	future := time.Now().Add(90 * time.Second).UTC().Format(http.TimeFormat)
	if d := parseRetryAfter(future); d < 80*time.Second || d > 91*time.Second {
		t.Fatalf("parseRetryAfter(http-date) = %v, want ~90s", d)
	}
}

// fetcherFunc adapts closures to ChunkFetcher.
type fetcherFunc struct {
	read func(off int64, n int) ([]byte, error)
	size func() (int64, error)
}

func (f fetcherFunc) ReadRange(off int64, n int) ([]byte, error) { return f.read(off, n) }
func (f fetcherFunc) Size() (int64, error)                       { return f.size() }
