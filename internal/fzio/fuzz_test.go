package fzio

import (
	"bytes"
	"io"
	"testing"

	"fzmod/internal/grid"
)

// Native go-fuzz targets for both container formats. CI runs each for a
// short smoke window (see .github/workflows/ci.yml); locally:
//
//	go test -run='^$' -fuzz='^FuzzChunkedContainer$' -fuzztime=30s ./internal/fzio
//	go test -run='^$' -fuzz='^FuzzStreamReader$'     -fuzztime=30s ./internal/fzio
//
// The invariant in both cases is totality: arbitrary bytes must produce
// either a decoded result or an error — never a panic, never an
// out-of-bounds access, never an allocation proportional to a declared
// (rather than actual) size.

func fuzzSeedChunked() []byte {
	blob, err := MarshalChunked(ChunkedHeader{
		Pipeline: "fzmod-default",
		Dims:     grid.D3(6, 5, 9),
		EB:       2.5e-4,
		RelEB:    1e-4,
		Planes:   3,
	}, [][]byte{[]byte("chunk-zero-payload"), []byte("chunk-one"), {}, {0xde, 0xad, 0xbe, 0xef}}, []int{3, 3, 2, 1})
	if err != nil {
		panic(err)
	}
	return blob
}

func fuzzSeedStream() []byte {
	var buf bytes.Buffer
	sw, err := NewStreamWriter(&buf, ChunkedHeader{
		Pipeline: "fzmod-default",
		Dims:     grid.D3(5, 4, 9),
		EB:       1.5e-3,
		RelEB:    1e-4,
		Planes:   4,
	})
	if err != nil {
		panic(err)
	}
	for i, c := range [][]byte{[]byte("stream-chunk-zero"), []byte("c1"), {0xca, 0xfe}} {
		if err := sw.WriteChunk(c, []int{4, 3, 2}[i]); err != nil {
			panic(err)
		}
	}
	if err := sw.Close(); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

// FuzzChunkedContainer exercises the random-access chunked (FZMC) parser:
// UnmarshalChunked plus a CRC verification pass over every chunk.
func FuzzChunkedContainer(f *testing.F) {
	seed := fuzzSeedChunked()
	f.Add(seed)
	f.Add(seed[:len(seed)/2])
	f.Add([]byte(ChunkedMagic))
	f.Add([]byte{})
	mut := append([]byte(nil), seed...)
	mut[len(mut)-3] ^= 0xA5
	f.Add(mut)
	f.Fuzz(func(t *testing.T, blob []byte) {
		c, err := UnmarshalChunked(blob)
		if err != nil {
			return
		}
		for i := 0; i < c.NumChunks(); i++ {
			_, _ = c.Chunk(i)
		}
	})
}

// FuzzStreamReader exercises the sequential stream (FZMS) parser: the
// prologue, every frame, and the trailer cross-check, against truncated
// and corrupt inputs.
func FuzzStreamReader(f *testing.F) {
	seed := fuzzSeedStream()
	f.Add(seed)
	f.Add(seed[:len(seed)/3])
	f.Add(seed[:len(seed)-5]) // cut into the trailer
	f.Add([]byte(StreamMagic))
	f.Add([]byte{})
	mut := append([]byte(nil), seed...)
	mut[len(mut)/2] ^= 0x5A
	f.Add(mut)
	f.Fuzz(func(t *testing.T, blob []byte) {
		sr, err := NewStreamReader(bytes.NewReader(blob))
		if err != nil {
			return
		}
		var buf []byte
		for {
			payload, planes, err := sr.Next(buf)
			if err == io.EOF {
				// A clean EOF certifies the trailer matched every frame;
				// the accounting must line up.
				if sr.NumChunks() < 0 || planes != 0 {
					t.Fatalf("EOF with planes %d", planes)
				}
				return
			}
			if err != nil {
				return
			}
			if planes <= 0 {
				t.Fatalf("accepted frame with %d planes", planes)
			}
			buf = payload
		}
	})
}
