package fzio

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"fzmod/internal/grid"
)

// testChunkedBlob builds a small FZMC container with synthetic payloads:
// nChunks slabs tiling a dims.SlowExtent()-plane field.
func testChunkedBlob(t *testing.T, dims grid.Dims, nChunks int) ([]byte, ChunkedHeader, [][]byte) {
	t.Helper()
	h := ChunkedHeader{Pipeline: "test-pipe", Dims: dims, EB: 1e-3, Planes: (dims.SlowExtent() + nChunks - 1) / nChunks}
	chunks := make([][]byte, nChunks)
	planes := make([]int, nChunks)
	left := dims.SlowExtent()
	for i := range chunks {
		k := h.Planes
		if k > left {
			k = left
		}
		planes[i] = k
		left -= k
		chunks[i] = bytes.Repeat([]byte{byte(i + 1)}, 64+i*17)
	}
	blob, err := MarshalChunked(h, chunks, planes)
	if err != nil {
		t.Fatalf("MarshalChunked: %v", err)
	}
	return blob, h, chunks
}

// testStreamBlob builds the FZMS serialization of the same chunks.
func testStreamBlob(t *testing.T, h ChunkedHeader, chunks [][]byte, planesOf func(i int) int) []byte {
	t.Helper()
	var buf bytes.Buffer
	sw, err := NewStreamWriter(&buf, h)
	if err != nil {
		t.Fatalf("NewStreamWriter: %v", err)
	}
	for i, c := range chunks {
		if err := sw.WriteChunk(c, planesOf(i)); err != nil {
			t.Fatalf("WriteChunk(%d): %v", i, err)
		}
	}
	if err := sw.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	return buf.Bytes()
}

func TestFetchersServeIdenticalRanges(t *testing.T) {
	blob := make([]byte, 10000)
	for i := range blob {
		blob[i] = byte(i * 31)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "artifact.fzmc")
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	ff, err := NewFileFetcher(path)
	if err != nil {
		t.Fatalf("NewFileFetcher: %v", err)
	}
	defer ff.Close()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.ServeContent(w, r, "artifact.fzmc", modTime(t, path), bytes.NewReader(blob))
	}))
	defer srv.Close()

	fetchers := map[string]ChunkFetcher{
		"bytes":    NewBytesFetcher(blob),
		"readerAt": NewReaderAtFetcher(bytes.NewReader(blob), int64(len(blob))),
		"file":     ff,
		"http":     NewHTTPFetcher(srv.URL, srv.Client()),
	}
	windows := [][2]int64{{0, 1}, {0, 6}, {17, 333}, {9999, 1}, {0, 10000}, {5000, 5000}}
	for name, f := range fetchers {
		size, err := f.Size()
		if err != nil {
			t.Fatalf("%s: Size: %v", name, err)
		}
		if size != int64(len(blob)) {
			t.Fatalf("%s: Size = %d, want %d", name, size, len(blob))
		}
		for _, w := range windows {
			got, err := f.ReadRange(w[0], int(w[1]))
			if err != nil {
				t.Fatalf("%s: ReadRange(%d,%d): %v", name, w[0], w[1], err)
			}
			if !bytes.Equal(got, blob[w[0]:w[0]+w[1]]) {
				t.Fatalf("%s: ReadRange(%d,%d) returned wrong bytes", name, w[0], w[1])
			}
		}
		// Out-of-bounds and degenerate windows must error, not truncate.
		for _, w := range [][2]int64{{-1, 4}, {0, 0}, {0, -3}, {9999, 2}, {10000, 1}} {
			if _, err := f.ReadRange(w[0], int(w[1])); err == nil {
				t.Fatalf("%s: ReadRange(%d,%d) succeeded on bad window", name, w[0], w[1])
			}
		}
	}
}

func modTime(t *testing.T, path string) time.Time {
	t.Helper()
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	return fi.ModTime()
}

// HTTPFetcher must cope with a server that ignores Range and replies 200
// with the full body.
func TestHTTPFetcherFullBodyFallback(t *testing.T) {
	blob := []byte("0123456789abcdef")
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodHead {
			w.Header().Set("Content-Length", fmt.Sprint(len(blob)))
			return
		}
		w.WriteHeader(http.StatusOK) // Range ignored on purpose.
		w.Write(blob)
	}))
	defer srv.Close()
	f := NewHTTPFetcher(srv.URL, srv.Client())
	if size, err := f.Size(); err != nil || size != int64(len(blob)) {
		t.Fatalf("Size = %d, %v", size, err)
	}
	got, err := f.ReadRange(10, 4)
	if err != nil {
		t.Fatalf("ReadRange: %v", err)
	}
	if string(got) != "abcd" {
		t.Fatalf("ReadRange = %q, want %q", got, "abcd")
	}
}

// A range response shorter than requested must error, never silently
// return fewer bytes.
func TestHTTPFetcherTruncatedResponse(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Length", "100") // promises 100 bytes...
		w.WriteHeader(http.StatusPartialContent)
		w.Write(make([]byte, 10)) // ...delivers 10
	}))
	defer srv.Close()
	f := NewHTTPFetcher(srv.URL, srv.Client())
	_, err := f.ReadRange(0, 100)
	if err == nil || !strings.Contains(err.Error(), "truncated") {
		t.Fatalf("want truncated-response error, got %v", err)
	}
}

func TestHTTPFetcherErrorStatus(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "nope", http.StatusForbidden)
	}))
	defer srv.Close()
	f := NewHTTPFetcher(srv.URL, srv.Client())
	if _, err := f.ReadRange(0, 4); err == nil {
		t.Fatal("want error on 403 response")
	}
	if _, err := f.Size(); err == nil {
		t.Fatal("want error on HEAD of 403 response")
	}
}

func TestCountingFetcher(t *testing.T) {
	f := NewCountingFetcher(NewBytesFetcher(make([]byte, 100)))
	if _, err := f.ReadRange(0, 40); err != nil {
		t.Fatal(err)
	}
	if _, err := f.ReadRange(50, 10); err != nil {
		t.Fatal(err)
	}
	if f.Reads() != 2 || f.BytesRead() != 50 {
		t.Fatalf("counters = %d reads / %d bytes, want 2 / 50", f.Reads(), f.BytesRead())
	}
	f.Reset()
	if f.Reads() != 0 || f.BytesRead() != 0 {
		t.Fatal("Reset did not zero counters")
	}
}

func TestFetchIndexChunked(t *testing.T) {
	dims := grid.Dims{X: 8, Y: 8, Z: 8}
	blob, h, chunks := testChunkedBlob(t, dims, 4)
	ix, err := FetchIndex(NewBytesFetcher(blob))
	if err != nil {
		t.Fatalf("FetchIndex: %v", err)
	}
	if ix.Flavor != FlavorChunked {
		t.Fatalf("Flavor = %q", ix.Flavor)
	}
	if ix.Header.Pipeline != h.Pipeline || ix.Header.Dims != h.Dims || ix.Header.EB != h.EB {
		t.Fatalf("header mismatch: %+v vs %+v", ix.Header, h)
	}
	if ix.NumChunks() != len(chunks) {
		t.Fatalf("NumChunks = %d, want %d", ix.NumChunks(), len(chunks))
	}
	if ix.ArtifactSize != int64(len(blob)) {
		t.Fatalf("ArtifactSize = %d, want %d", ix.ArtifactSize, len(blob))
	}
	// Absolute offsets must address the exact payload bytes.
	for i, want := range chunks {
		ref := ix.Chunks[i]
		got := blob[ref.Offset : ref.Offset+ref.Length]
		if !bytes.Equal(got, want) {
			t.Fatalf("chunk %d: index addresses wrong bytes", i)
		}
		if err := ix.VerifyChunk(i, got); err != nil {
			t.Fatalf("VerifyChunk(%d): %v", i, err)
		}
	}
}

func TestFetchIndexStream(t *testing.T) {
	dims := grid.Dims{X: 8, Y: 8, Z: 8}
	_, h, chunks := testChunkedBlob(t, dims, 4)
	blob := testStreamBlob(t, h, chunks, func(i int) int { return 2 })
	ix, err := FetchIndex(NewBytesFetcher(blob))
	if err != nil {
		t.Fatalf("FetchIndex: %v", err)
	}
	if ix.Flavor != FlavorStream {
		t.Fatalf("Flavor = %q", ix.Flavor)
	}
	if ix.Header.Pipeline != h.Pipeline || ix.Header.Dims != h.Dims {
		t.Fatalf("header mismatch: %+v vs %+v", ix.Header, h)
	}
	for i, want := range chunks {
		ref := ix.Chunks[i]
		if ref.Planes != 2 {
			t.Fatalf("chunk %d: planes = %d, want 2", i, ref.Planes)
		}
		got := blob[ref.Offset : ref.Offset+ref.Length]
		if !bytes.Equal(got, want) {
			t.Fatalf("chunk %d: index addresses wrong bytes", i)
		}
		if err := ix.VerifyChunk(i, got); err != nil {
			t.Fatalf("VerifyChunk(%d): %v", i, err)
		}
	}
}

func TestFetchIndexMonolithic(t *testing.T) {
	c := New(Header{Pipeline: "test-pipe", Dims: grid.Dims{X: 4, Y: 4, Z: 4}, EB: 1e-3})
	if err := c.Add("quant", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	blob, err := c.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	ix, err := FetchIndex(NewBytesFetcher(blob))
	if err != nil {
		t.Fatalf("FetchIndex: %v", err)
	}
	if ix.Flavor != FlavorMonolithic {
		t.Fatalf("Flavor = %q", ix.Flavor)
	}
	if ix.NumChunks() != 1 || ix.Chunks[0].Offset != 0 || ix.Chunks[0].Length != len(blob) {
		t.Fatalf("monolithic index = %+v, want one whole-artifact chunk", ix.Chunks)
	}
	if ix.Chunks[0].Planes != 4 {
		t.Fatalf("Planes = %d, want slow extent 4", ix.Chunks[0].Planes)
	}
	if err := ix.VerifyChunk(0, blob); err != nil {
		t.Fatalf("VerifyChunk: %v", err)
	}
}

// FetchIndex across flavors must agree on content keys: same artifact →
// same key, different layout → different key.
func TestContentKey(t *testing.T) {
	dims := grid.Dims{X: 8, Y: 8, Z: 8}
	blob, h, chunks := testChunkedBlob(t, dims, 4)
	ix1, err := FetchIndex(NewBytesFetcher(blob))
	if err != nil {
		t.Fatal(err)
	}
	ix2, err := FetchIndex(NewBytesFetcher(append([]byte(nil), blob...)))
	if err != nil {
		t.Fatal(err)
	}
	if ix1.Key != ix2.Key {
		t.Fatal("identical artifacts produced different content keys")
	}
	stream := testStreamBlob(t, h, chunks, func(int) int { return 2 })
	ix3, err := FetchIndex(NewBytesFetcher(stream))
	if err != nil {
		t.Fatal(err)
	}
	if ix3.Key == ix1.Key {
		t.Fatal("FZMC and FZMS serializations share a content key")
	}
	chunks[0][0] ^= 0xFF
	blob2, err := MarshalChunked(h, chunks, []int{2, 2, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	ix4, err := FetchIndex(NewBytesFetcher(blob2))
	if err != nil {
		t.Fatal(err)
	}
	if ix4.Key == ix1.Key {
		t.Fatal("different payloads produced the same content key")
	}
}

// The index of an FZMC container must come from a bounded prefix, and the
// FZMS one from prefix + tail — never the chunk payloads.
func TestFetchIndexReadsOnlyIndexBytes(t *testing.T) {
	dims := grid.Dims{X: 64, Y: 64, Z: 8}
	h := ChunkedHeader{Pipeline: "test-pipe", Dims: dims, EB: 1e-3, Planes: 2}
	chunks := make([][]byte, 4)
	for i := range chunks {
		chunks[i] = bytes.Repeat([]byte{byte(i)}, 1<<20) // 1 MiB each
	}
	blob, err := MarshalChunked(h, chunks, []int{2, 2, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	cf := NewCountingFetcher(NewBytesFetcher(blob))
	if _, err := FetchIndex(cf); err != nil {
		t.Fatal(err)
	}
	if cf.BytesRead() > 64<<10 {
		t.Fatalf("FZMC index fetch read %d bytes of a %d-byte artifact", cf.BytesRead(), len(blob))
	}

	stream := testStreamBlob(t, h, chunks, func(int) int { return 2 })
	cf = NewCountingFetcher(NewBytesFetcher(stream))
	if _, err := FetchIndex(cf); err != nil {
		t.Fatal(err)
	}
	if cf.BytesRead() > 64<<10 {
		t.Fatalf("FZMS index fetch read %d bytes of a %d-byte artifact", cf.BytesRead(), len(stream))
	}
}

// A chunk table larger than the initial prefix must be parsed by growing
// the prefix, not fail.
func TestFetchIndexLargeTable(t *testing.T) {
	n := 2000 // ~2000 table entries ≫ 4 KiB initial prefix
	dims := grid.Dims{X: 2, Y: 2, Z: n}
	h := ChunkedHeader{Pipeline: "test-pipe", Dims: dims, EB: 1e-3, Planes: 1}
	chunks := make([][]byte, n)
	planes := make([]int, n)
	for i := range chunks {
		chunks[i] = []byte{byte(i), byte(i >> 8)}
		planes[i] = 1
	}
	blob, err := MarshalChunked(h, chunks, planes)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := FetchIndex(NewBytesFetcher(blob))
	if err != nil {
		t.Fatalf("FetchIndex: %v", err)
	}
	if ix.NumChunks() != n {
		t.Fatalf("NumChunks = %d, want %d", ix.NumChunks(), n)
	}
	last := ix.Chunks[n-1]
	if !bytes.Equal(blob[last.Offset:last.Offset+last.Length], chunks[n-1]) {
		t.Fatal("grown-prefix parse mis-addressed the last chunk")
	}
}

func TestFetchIndexCorruption(t *testing.T) {
	dims := grid.Dims{X: 8, Y: 8, Z: 8}
	blob, h, chunks := testChunkedBlob(t, dims, 4)
	stream := testStreamBlob(t, h, chunks, func(int) int { return 2 })

	cases := []struct {
		name string
		blob []byte
	}{
		{"empty", nil},
		{"bad magic", []byte("NOPE....")},
		{"chunked truncated mid-table", blob[:20]},
		{"chunked truncated payload", blob[:len(blob)-5]},
		{"stream missing tail", stream[:len(stream)-3]},
		{"stream truncated index", stream[:len(stream)-20]},
		{"stream prologue only", stream[:10]},
	}
	for _, tc := range cases {
		if _, err := FetchIndex(NewBytesFetcher(tc.blob)); err == nil {
			t.Errorf("%s: FetchIndex succeeded on corrupt input", tc.name)
		}
	}

	// Flip a bit inside the stream's index trailer: the trailer CRC check
	// must reject it.
	bad := append([]byte(nil), stream...)
	bad[len(bad)-20] ^= 0x01
	if _, err := FetchIndex(NewBytesFetcher(bad)); err == nil || !strings.Contains(err.Error(), "CRC") {
		t.Errorf("trailer corruption: got %v, want CRC error", err)
	}

	// Corrupt the recorded trailer length so the backward walk lands in
	// the wrong place.
	bad = append([]byte(nil), stream...)
	binary.LittleEndian.PutUint64(bad[len(bad)-12:], 1<<40)
	if _, err := FetchIndex(NewBytesFetcher(bad)); err == nil {
		t.Error("absurd trailer length accepted")
	}
}

func TestVerifyChunkRejectsCorruption(t *testing.T) {
	dims := grid.Dims{X: 8, Y: 8, Z: 8}
	blob, _, chunks := testChunkedBlob(t, dims, 4)
	ix, err := FetchIndex(NewBytesFetcher(blob))
	if err != nil {
		t.Fatal(err)
	}
	good := append([]byte(nil), chunks[1]...)
	if err := ix.VerifyChunk(1, good); err != nil {
		t.Fatalf("VerifyChunk on good payload: %v", err)
	}
	good[3] ^= 0x40
	if err := ix.VerifyChunk(1, good); err == nil || !strings.Contains(err.Error(), "CRC") {
		t.Fatalf("VerifyChunk on flipped payload: %v", err)
	}
	if err := ix.VerifyChunk(1, chunks[1][:len(chunks[1])-1]); err == nil {
		t.Fatal("VerifyChunk accepted short payload")
	}
	if err := ix.VerifyChunk(-1, nil); err == nil {
		t.Fatal("VerifyChunk accepted negative index")
	}
	if err := ix.VerifyChunk(99, nil); err == nil {
		t.Fatal("VerifyChunk accepted out-of-range index")
	}
}

// FetchIndex over HTTP: the realistic remote-dataset path, end to end.
func TestFetchIndexOverHTTP(t *testing.T) {
	dims := grid.Dims{X: 8, Y: 8, Z: 8}
	blob, _, chunks := testChunkedBlob(t, dims, 4)
	var reqs int
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		reqs++
		http.ServeContent(w, r, "a.fzmc", modTime(t, os.Args[0]), bytes.NewReader(blob))
	}))
	defer srv.Close()
	f := NewHTTPFetcher(srv.URL, srv.Client())
	ix, err := FetchIndex(f)
	if err != nil {
		t.Fatalf("FetchIndex over HTTP: %v", err)
	}
	if ix.NumChunks() != len(chunks) {
		t.Fatalf("NumChunks = %d, want %d", ix.NumChunks(), len(chunks))
	}
	payload, err := f.ReadRange(int64(ix.Chunks[2].Offset), ix.Chunks[2].Length)
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.VerifyChunk(2, payload); err != nil {
		t.Fatalf("VerifyChunk over HTTP: %v", err)
	}
}

// A fetcher whose ReadRange silently under-delivers must be caught by the
// consumer (FetchIndex validates sizes; VerifyChunk validates lengths).
type shortFetcher struct{ inner ChunkFetcher }

func (s shortFetcher) ReadRange(off int64, n int) ([]byte, error) {
	b, err := s.inner.ReadRange(off, n)
	if err != nil {
		return nil, err
	}
	return b[:len(b)/2], nil
}
func (s shortFetcher) Size() (int64, error) { return s.inner.Size() }

func TestFetchIndexShortReads(t *testing.T) {
	dims := grid.Dims{X: 8, Y: 8, Z: 8}
	blob, _, _ := testChunkedBlob(t, dims, 4)
	if _, err := FetchIndex(shortFetcher{NewBytesFetcher(blob)}); err == nil {
		t.Fatal("FetchIndex accepted a fetcher that under-delivers")
	}
}

var _ io.ReaderAt = (*bytes.Reader)(nil) // documents the ReaderAtFetcher pairing

// A server that rejects HEAD outright must still be sizable through the
// one-byte Range GET fallback.
func TestHTTPFetcherSizeHeadRejected(t *testing.T) {
	blob := make([]byte, 12345)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodHead {
			http.Error(w, "HEAD not allowed", http.StatusMethodNotAllowed)
			return
		}
		if rng := r.Header.Get("Range"); rng != "bytes=0-0" {
			t.Errorf("fallback sent Range %q, want bytes=0-0", rng)
		}
		w.Header().Set("Content-Range", fmt.Sprintf("bytes 0-0/%d", len(blob)))
		w.WriteHeader(http.StatusPartialContent)
		w.Write(blob[:1])
	}))
	defer srv.Close()
	f := NewHTTPFetcher(srv.URL, srv.Client())
	size, err := f.Size()
	if err != nil {
		t.Fatalf("Size: %v", err)
	}
	if size != int64(len(blob)) {
		t.Fatalf("Size = %d, want %d", size, len(blob))
	}
}

// A server that answers HEAD without Content-Length (chunked proxies do
// this) is sized through the same fallback; one that also ignores Range
// resolves through the 200 answer's Content-Length.
func TestHTTPFetcherSizeHeadNoLengthRangeIgnored(t *testing.T) {
	blob := make([]byte, 777)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodHead {
			w.Header()["Content-Length"] = nil // suppress the implicit header
			w.(http.Flusher).Flush()           // forces chunked, no length
			return
		}
		w.WriteHeader(http.StatusOK) // Range ignored
		w.Write(blob)
	}))
	defer srv.Close()
	f := NewHTTPFetcher(srv.URL, srv.Client())
	size, err := f.Size()
	if err != nil {
		t.Fatalf("Size: %v", err)
	}
	if size != int64(len(blob)) {
		t.Fatalf("Size = %d, want %d", size, len(blob))
	}
}

// When both HEAD and the probe GET fail, the HEAD error (the more
// fundamental diagnosis) surfaces.
func TestHTTPFetcherSizeBothFail(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "nope", http.StatusForbidden)
	}))
	defer srv.Close()
	f := NewHTTPFetcher(srv.URL, srv.Client())
	_, err := f.Size()
	if err == nil || !strings.Contains(err.Error(), "HEAD") {
		t.Fatalf("want the HEAD error surfaced, got %v", err)
	}
}

func TestParseContentRangeTotal(t *testing.T) {
	cases := []struct {
		in   string
		want int64
		ok   bool
	}{
		{"bytes 0-0/12345", 12345, true},
		{"bytes 0-0/0", 0, true},
		{" bytes 5-9/100 ", 100, true},
		{"bytes 0-0/*", 0, false},
		{"items 0-0/10", 0, false},
		{"bytes 0-0", 0, false},
		{"", 0, false},
	}
	for _, tc := range cases {
		got, ok := parseContentRangeTotal(tc.in)
		if got != tc.want || ok != tc.ok {
			t.Errorf("parseContentRangeTotal(%q) = %d,%v; want %d,%v", tc.in, got, ok, tc.want, tc.ok)
		}
	}
}
