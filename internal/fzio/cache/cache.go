// Package cache provides the size-bounded LRU the random-access read path
// keeps decoded slabs in: many concurrent readers of overlapping regions
// pay each chunk's fetch-and-decode cost once, and a byte budget (rather
// than an entry count) bounds residency because decoded slabs vary widely
// in size. The cache is generic over key and value so tests can exercise
// it with small synthetic types, but its one production instantiation is
// internal/core's SlabCache mapping (container key, chunk index) to
// decoded float32 slabs.
package cache

import (
	"container/list"
	"sync"
)

// Stats is a point-in-time snapshot of a cache's counters. Hits, Misses
// and Evictions are cumulative; Entries and Bytes describe current
// residency.
type Stats struct {
	Hits      int64 // Get calls that found a resident entry
	Misses    int64 // Get calls that found nothing
	Evictions int64 // entries displaced to fit newer ones
	Entries   int64 // entries currently resident
	Bytes     int64 // cost currently resident, vs. the byte budget
}

// LRU is a size-bounded least-recently-used cache. Every entry carries a
// caller-assessed cost (bytes, for slab caching); inserting beyond the
// budget evicts from the cold end until the new entry fits. All methods
// are safe for concurrent use.
type LRU[K comparable, V any] struct {
	mu      sync.Mutex
	budget  int64
	used    int64
	order   *list.List // front = hottest
	entries map[K]*list.Element

	hits      int64
	misses    int64
	evictions int64
}

type entry[K comparable, V any] struct {
	key  K
	val  V
	cost int64
}

// New creates an LRU holding at most budget cost units. A budget <= 0
// disables caching entirely: Get always misses and Put is a no-op, so
// callers can thread a nil-object through without branching.
func New[K comparable, V any](budget int64) *LRU[K, V] {
	return &LRU[K, V]{
		budget:  budget,
		order:   list.New(),
		entries: make(map[K]*list.Element),
	}
}

// Get returns the value under key, marking it most recently used.
func (c *LRU[K, V]) Get(key K) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		c.order.MoveToFront(el)
		c.hits++
		return el.Value.(*entry[K, V]).val, true
	}
	c.misses++
	var zero V
	return zero, false
}

// Peek returns the value under key without touching recency order or the
// hit/miss counters — the single-flight double-check uses it to spot a
// slab that landed between a read's plan and its fetch without skewing
// the cache statistics the plan already recorded.
func (c *LRU[K, V]) Peek(key K) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		return el.Value.(*entry[K, V]).val, true
	}
	var zero V
	return zero, false
}

// Put inserts val under key at the given cost, evicting cold entries as
// needed to respect the budget. An entry whose cost alone exceeds the
// budget is not admitted (and evicts nothing); re-putting an existing key
// replaces its value and cost.
func (c *LRU[K, V]) Put(key K, val V, cost int64) {
	if cost < 0 || cost > c.budget {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		e := el.Value.(*entry[K, V])
		c.used += cost - e.cost
		e.val, e.cost = val, cost
		c.order.MoveToFront(el)
	} else {
		c.entries[key] = c.order.PushFront(&entry[K, V]{key: key, val: val, cost: cost})
		c.used += cost
	}
	for c.used > c.budget {
		c.evictOldest()
	}
}

// evictOldest drops the coldest entry. Caller holds mu.
func (c *LRU[K, V]) evictOldest() {
	el := c.order.Back()
	if el == nil {
		return
	}
	e := el.Value.(*entry[K, V])
	c.order.Remove(el)
	delete(c.entries, e.key)
	c.used -= e.cost
	c.evictions++
}

// Len returns the resident entry count.
func (c *LRU[K, V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Bytes returns the resident cost total.
func (c *LRU[K, V]) Bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.used
}

// Stats snapshots the cache's counters.
func (c *LRU[K, V]) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
		Entries:   int64(len(c.entries)),
		Bytes:     c.used,
	}
}

// Reset drops every entry and zeroes the cumulative counters.
func (c *LRU[K, V]) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.order.Init()
	clear(c.entries)
	c.used, c.hits, c.misses, c.evictions = 0, 0, 0, 0
}
