package cache

import (
	"fmt"
	"sync"
	"testing"
)

func TestGetPut(t *testing.T) {
	c := New[string, int](100)
	if _, ok := c.Get("a"); ok {
		t.Fatal("empty cache returned a hit")
	}
	c.Put("a", 1, 10)
	c.Put("b", 2, 20)
	if v, ok := c.Get("a"); !ok || v != 1 {
		t.Fatalf("Get(a) = %d, %v", v, ok)
	}
	if v, ok := c.Get("b"); !ok || v != 2 {
		t.Fatalf("Get(b) = %d, %v", v, ok)
	}
	s := c.Stats()
	if s.Hits != 2 || s.Misses != 1 || s.Entries != 2 || s.Bytes != 30 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestEvictionOrder(t *testing.T) {
	c := New[int, string](30)
	c.Put(1, "one", 10)
	c.Put(2, "two", 10)
	c.Put(3, "three", 10)
	c.Get(1) // heat 1: the cold end is now 2
	c.Put(4, "four", 10)
	if _, ok := c.Get(2); ok {
		t.Fatal("LRU evicted the wrong entry: 2 should be gone")
	}
	for _, k := range []int{1, 3, 4} {
		if _, ok := c.Get(k); !ok {
			t.Fatalf("entry %d missing after eviction", k)
		}
	}
	if s := c.Stats(); s.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", s.Evictions)
	}
}

func TestBudgetRespected(t *testing.T) {
	c := New[int, int](100)
	for i := 0; i < 50; i++ {
		c.Put(i, i, 30)
	}
	if b := c.Bytes(); b > 100 {
		t.Fatalf("resident %d bytes over a 100-byte budget", b)
	}
	if n := c.Len(); n != 3 {
		t.Fatalf("Len = %d, want 3 (3×30 fits, 4×30 does not)", n)
	}
}

func TestOversizedEntryRejected(t *testing.T) {
	c := New[int, int](100)
	c.Put(1, 1, 50)
	c.Put(2, 2, 500) // over budget by itself: not admitted, evicts nothing
	if _, ok := c.Get(2); ok {
		t.Fatal("oversized entry admitted")
	}
	if _, ok := c.Get(1); !ok {
		t.Fatal("oversized Put evicted resident entries")
	}
	c.Put(3, 3, -1) // negative cost: rejected
	if _, ok := c.Get(3); ok {
		t.Fatal("negative-cost entry admitted")
	}
}

func TestReplaceAdjustsCost(t *testing.T) {
	c := New[int, string](100)
	c.Put(1, "small", 10)
	c.Put(1, "large", 90)
	if b := c.Bytes(); b != 90 {
		t.Fatalf("Bytes = %d after replace, want 90", b)
	}
	if v, _ := c.Get(1); v != "large" {
		t.Fatalf("Get = %q, want replacement", v)
	}
	c.Put(1, "tiny", 5)
	if b := c.Bytes(); b != 5 {
		t.Fatalf("Bytes = %d after shrink, want 5", b)
	}
}

func TestZeroBudgetDisables(t *testing.T) {
	c := New[int, int](0)
	c.Put(1, 1, 10)
	if _, ok := c.Get(1); ok {
		t.Fatal("zero-budget cache cached")
	}
	if s := c.Stats(); s.Entries != 0 || s.Bytes != 0 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestReset(t *testing.T) {
	c := New[int, int](100)
	c.Put(1, 1, 10)
	c.Get(1)
	c.Get(2)
	c.Reset()
	if s := c.Stats(); s != (Stats{}) {
		t.Fatalf("stats after Reset = %+v", s)
	}
	if _, ok := c.Get(1); ok {
		t.Fatal("entry survived Reset")
	}
}

func TestConcurrentAccess(t *testing.T) {
	c := New[int, int](1 << 10)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				k := (g*31 + i) % 64
				if v, ok := c.Get(k); ok && v != k {
					panic(fmt.Sprintf("key %d holds %d", k, v))
				}
				c.Put(k, k, 16)
			}
		}(g)
	}
	wg.Wait()
	if b := c.Bytes(); b > 1<<10 {
		t.Fatalf("budget exceeded under concurrency: %d", b)
	}
}

func TestPeekDoesNotTouchStatsOrRecency(t *testing.T) {
	c := New[string, int](2)
	c.Put("a", 1, 1)
	c.Put("b", 2, 1)
	if v, ok := c.Peek("a"); !ok || v != 1 {
		t.Fatalf("Peek(a) = %d,%v", v, ok)
	}
	if _, ok := c.Peek("zzz"); ok {
		t.Fatal("Peek found a phantom entry")
	}
	s := c.Stats()
	if s.Hits != 0 || s.Misses != 0 {
		t.Fatalf("Peek moved the counters: %+v", s)
	}
	// "a" must still be the cold end: Peek must not refresh recency.
	c.Put("c", 3, 1)
	if _, ok := c.Peek("a"); ok {
		t.Fatal("Peek refreshed recency: a survived an eviction that should have taken it")
	}
}
