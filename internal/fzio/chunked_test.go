package fzio

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"testing"

	"fzmod/internal/grid"
)

func sampleChunked(t *testing.T) ([]byte, [][]byte) {
	t.Helper()
	chunks := [][]byte{
		[]byte("chunk-zero-payload"),
		[]byte("chunk-one"),
		{},
		[]byte{0xde, 0xad, 0xbe, 0xef},
	}
	blob, err := MarshalChunked(ChunkedHeader{
		Pipeline: "fzmod-default",
		Dims:     grid.D3(6, 5, 9),
		EB:       2.5e-4,
		RelEB:    1e-4,
		Planes:   3,
	}, chunks, []int{3, 3, 2, 1})
	if err != nil {
		t.Fatal(err)
	}
	return blob, chunks
}

func TestChunkedRoundtrip(t *testing.T) {
	blob, chunks := sampleChunked(t)
	if !IsChunked(blob) {
		t.Fatal("IsChunked false on chunked container")
	}
	c, err := UnmarshalChunked(blob)
	if err != nil {
		t.Fatal(err)
	}
	want := ChunkedHeader{Pipeline: "fzmod-default", Dims: grid.D3(6, 5, 9), EB: 2.5e-4, RelEB: 1e-4, Planes: 3}
	if c.Header != want {
		t.Errorf("header %+v, want %+v", c.Header, want)
	}
	if c.NumChunks() != len(chunks) {
		t.Fatalf("NumChunks = %d, want %d", c.NumChunks(), len(chunks))
	}
	for i, wantChunk := range chunks {
		got, err := c.Chunk(i)
		if err != nil {
			t.Fatalf("Chunk(%d): %v", i, err)
		}
		if !bytes.Equal(got, wantChunk) {
			t.Errorf("chunk %d payload mismatch", i)
		}
	}
	if _, err := c.Chunk(-1); err == nil {
		t.Error("negative chunk index should error")
	}
	if _, err := c.Chunk(len(chunks)); err == nil {
		t.Error("out-of-range chunk index should error")
	}
}

func TestChunkedMonolithicMagicsDisjoint(t *testing.T) {
	mono, err := sampleContainer().Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if IsChunked(mono) {
		t.Error("monolithic container misidentified as chunked")
	}
	blob, _ := sampleChunked(t)
	if _, err := Unmarshal(blob); err == nil {
		t.Error("chunked container should not parse as monolithic")
	}
}

func TestChunkedMarshalValidation(t *testing.T) {
	h := ChunkedHeader{Pipeline: "p", Dims: grid.D3(4, 4, 8), Planes: 4}
	if _, err := MarshalChunked(h, nil, nil); err == nil {
		t.Error("zero chunks should fail")
	}
	if _, err := MarshalChunked(h, [][]byte{{1}}, []int{4, 4}); err == nil {
		t.Error("chunk/planes length mismatch should fail")
	}
	if _, err := MarshalChunked(h, [][]byte{{1}, {2}}, []int{4, 3}); err == nil {
		t.Error("plane sum mismatch should fail")
	}
	if _, err := MarshalChunked(h, [][]byte{{1}, {2}}, []int{8, 0}); err == nil {
		t.Error("zero-plane chunk should fail")
	}
	if _, err := MarshalChunked(ChunkedHeader{Dims: grid.Dims{}}, [][]byte{{1}}, []int{1}); err == nil {
		t.Error("invalid dims should fail")
	}
}

// TestChunkedCorruptHeader mirrors the corruption suite in
// internal/baseline/compare: flips, truncations and garbage against the
// header region must surface as errors, never panics or silent success.
func TestChunkedCorruptHeader(t *testing.T) {
	blob, _ := sampleChunked(t)
	cases := map[string][]byte{
		"empty":       nil,
		"short":       blob[:3],
		"bad magic":   append([]byte("NOPE"), blob[4:]...),
		"bad version": append([]byte(ChunkedMagic), 9, 0),
		"cut header":  blob[:10],
		"cut table":   blob[:30],
	}
	for name, b := range cases {
		if _, err := UnmarshalChunked(b); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestChunkedTruncatedPayload(t *testing.T) {
	blob, chunks := sampleChunked(t)
	// Remove bytes from the payload area: the container must fail to parse
	// (payload bounds) or the affected chunk must fail its CRC.
	for cut := 1; cut < len(chunks[3])+2; cut++ {
		c, err := UnmarshalChunked(blob[:len(blob)-cut])
		if err != nil {
			continue
		}
		sawErr := false
		for i := 0; i < c.NumChunks(); i++ {
			if _, err := c.Chunk(i); err != nil {
				sawErr = true
			}
		}
		if !sawErr {
			t.Errorf("truncation by %d bytes went undetected", cut)
		}
	}
}

func TestChunkedBadOffset(t *testing.T) {
	// Rebuild a container by hand with a hole between chunk 0 and chunk 1;
	// UnmarshalChunked must reject the non-contiguous offset.
	h := ChunkedHeader{Pipeline: "p", Dims: grid.D3(2, 2, 2), Planes: 1}
	good, err := MarshalChunked(h, [][]byte{{1, 2}, {3}}, []int{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := UnmarshalChunked(good); err != nil {
		t.Fatal(err)
	}
	// The chunk table is near the end of the header; find chunk 1's offset
	// varint (value 2, encoded as 0x02 following chunk 0's entry) and bump
	// it. Locate it by scanning for the exact serialized table suffix.
	mut := append([]byte(nil), good...)
	payload := []byte{1, 2, 3}
	tableStart := len(mut) - len(payload)
	// chunk 1 entry: offset varint, length varint, 4-byte CRC, planes
	// varint, 32-byte leaf hash; the 32-byte Merkle root follows the table.
	off1Pos := tableStart - HashSize - (1 + 1 + 4 + 1 + HashSize)
	if mut[off1Pos] != 2 {
		t.Fatalf("test layout assumption broken: byte %d is %d, want 2", off1Pos, mut[off1Pos])
	}
	mut[off1Pos] = 3
	if _, err := UnmarshalChunked(mut); err == nil {
		t.Error("non-contiguous chunk offset should be rejected")
	}
}

func TestChunkedCRCDetectsPayloadFlip(t *testing.T) {
	blob, chunks := sampleChunked(t)
	payloadLen := 0
	for _, c := range chunks {
		payloadLen += len(c)
	}
	for i := 0; i < payloadLen; i++ {
		mut := append([]byte(nil), blob...)
		mut[len(mut)-1-i] ^= 0xA5
		c, err := UnmarshalChunked(mut)
		if err != nil {
			continue
		}
		sawErr := false
		for j := 0; j < c.NumChunks(); j++ {
			if _, err := c.Chunk(j); err != nil {
				sawErr = true
			}
		}
		if !sawErr {
			t.Errorf("payload flip at -%d went undetected", i+1)
		}
	}
}

// appendChunkedHeader hand-builds a chunked container prefix up to the
// chunk table, for crafting adversarial inputs the marshaller refuses to
// produce.
func appendChunkedHeader(pipeline string, x, y, z, nominal, nChunks uint64) []byte {
	out := []byte(ChunkedMagic)
	out = binary.LittleEndian.AppendUint16(out, ChunkedVersion)
	out = binary.AppendUvarint(out, uint64(len(pipeline)))
	out = append(out, pipeline...)
	out = binary.AppendUvarint(out, x)
	out = binary.AppendUvarint(out, y)
	out = binary.AppendUvarint(out, z)
	out = append(out, make([]byte, 16)...) // EB, RelEB
	out = binary.AppendUvarint(out, nominal)
	out = binary.AppendUvarint(out, nChunks)
	return out
}

// TestChunkedCraftedLengthOverflow: a chunk declaring a near-MaxInt64
// length must be rejected, not wrap the bounds arithmetic into a panic.
func TestChunkedCraftedLengthOverflow(t *testing.T) {
	blob := appendChunkedHeader("p", 2, 2, 2, 2, 1)
	blob = binary.AppendUvarint(blob, 0)             // offset
	blob = binary.AppendUvarint(blob, 1<<63-1)       // absurd length
	blob = binary.LittleEndian.AppendUint32(blob, 0) // CRC
	blob = binary.AppendUvarint(blob, 2)             // planes
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("panic on crafted chunk length: %v", r)
		}
	}()
	if _, err := UnmarshalChunked(blob); err == nil {
		t.Error("crafted chunk length should be rejected")
	}
}

// TestChunkedCraftedHugeDims: a header declaring an overflowing or absurd
// element count must fail before any decoder allocates the output field.
func TestChunkedCraftedHugeDims(t *testing.T) {
	for _, dims := range [][3]uint64{
		{3, 1, 1 << 62},       // N overflows int64
		{1 << 21, 1 << 21, 2}, // no single-dim overflow, product too large
		{1 << 40, 1, 1},       // single dim over the limit
	} {
		blob := appendChunkedHeader("p", dims[0], dims[1], dims[2], 1, 1)
		blob = binary.AppendUvarint(blob, 0)
		blob = binary.AppendUvarint(blob, 0)
		blob = binary.LittleEndian.AppendUint32(blob, 0)
		blob = binary.AppendUvarint(blob, dims[2])
		if _, err := UnmarshalChunked(blob); err == nil {
			t.Errorf("dims %v should be rejected", dims)
		}
	}
}

func TestChunkedFuzzNeverPanics(t *testing.T) {
	blob, _ := sampleChunked(t)
	rng := rand.New(rand.NewSource(41))
	try := func(b []byte) {
		defer func() {
			if r := recover(); r != nil {
				t.Errorf("panic on corrupt chunked container: %v", r)
			}
		}()
		c, err := UnmarshalChunked(b)
		if err != nil {
			return
		}
		for i := 0; i < c.NumChunks(); i++ {
			_, _ = c.Chunk(i)
		}
	}
	for trial := 0; trial < 256; trial++ {
		mut := append([]byte(nil), blob...)
		mut[rng.Intn(len(mut))] ^= byte(1 + rng.Intn(255))
		try(mut)
	}
	for trial := 0; trial < 64; trial++ {
		try(blob[:rng.Intn(len(blob))])
	}
	junk := make([]byte, 256)
	rng.Read(junk)
	copy(junk, ChunkedMagic)
	binary.LittleEndian.PutUint16(junk[4:], ChunkedVersion)
	try(junk)
}
