package fzio

import (
	"fmt"
	"io"
	"net/http"
	"os"
	"sync/atomic"
)

// This file defines the pluggable byte-range storage abstraction the
// random-access read path is built on. A ChunkFetcher serves ranges of one
// container artifact — a local file, an in-memory blob, or an HTTP object
// behind Range requests — and the region planner (internal/core) asks it
// only for the index and the payloads of the chunks a selection actually
// intersects, so serving a small subvolume of a huge remote dataset never
// transfers the whole container.

// ChunkFetcher serves byte ranges of one container artifact. Implementations
// must be safe for concurrent ReadRange calls: the region read path fetches
// the chunks of a selection in parallel.
type ChunkFetcher interface {
	// ReadRange returns exactly n bytes of the artifact starting at byte
	// offset off. A response shorter than n bytes is an error, never a
	// silent truncation; the returned slice is owned by the caller.
	ReadRange(off int64, n int) ([]byte, error)
	// Size returns the artifact's total length in bytes.
	Size() (int64, error)
}

// BytesFetcher serves ranges of an in-memory container blob — the
// zero-dependency fetcher for artifacts already resident, and the reference
// implementation the others are tested against.
type BytesFetcher struct {
	blob []byte
}

// NewBytesFetcher wraps blob as a ChunkFetcher. The blob is not copied.
func NewBytesFetcher(blob []byte) *BytesFetcher { return &BytesFetcher{blob: blob} }

// ReadRange implements ChunkFetcher.
func (b *BytesFetcher) ReadRange(off int64, n int) ([]byte, error) {
	if err := checkRange(off, n, int64(len(b.blob))); err != nil {
		return nil, err
	}
	out := make([]byte, n)
	copy(out, b.blob[off:])
	return out, nil
}

// Size implements ChunkFetcher.
func (b *BytesFetcher) Size() (int64, error) { return int64(len(b.blob)), nil }

// ReaderAtFetcher adapts any io.ReaderAt of known size — the local-storage
// fetcher (os.File implements io.ReaderAt) and the adapter for mmap'd or
// sectioned sources.
type ReaderAtFetcher struct {
	r    io.ReaderAt
	size int64
}

// NewReaderAtFetcher wraps r, which must serve [0, size).
func NewReaderAtFetcher(r io.ReaderAt, size int64) *ReaderAtFetcher {
	return &ReaderAtFetcher{r: r, size: size}
}

// ReadRange implements ChunkFetcher.
func (f *ReaderAtFetcher) ReadRange(off int64, n int) ([]byte, error) {
	if err := checkRange(off, n, f.size); err != nil {
		return nil, err
	}
	out := make([]byte, n)
	if k, err := f.r.ReadAt(out, off); k < n {
		if err == nil || err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, fmt.Errorf("fzio: fetcher short read: %d of %d bytes at %d: %w", k, n, off, err)
	}
	return out, nil
}

// Size implements ChunkFetcher.
func (f *ReaderAtFetcher) Size() (int64, error) { return f.size, nil }

// FileFetcher serves ranges of a container file on local storage.
type FileFetcher struct {
	ReaderAtFetcher
	f *os.File
}

// NewFileFetcher opens path for random-access reads. Close releases the
// file handle.
func NewFileFetcher(path string) (*FileFetcher, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	return &FileFetcher{ReaderAtFetcher: ReaderAtFetcher{r: f, size: fi.Size()}, f: f}, nil
}

// Close releases the underlying file handle.
func (f *FileFetcher) Close() error { return f.f.Close() }

// HTTPFetcher serves ranges of a container published over HTTP using Range
// requests (RFC 9110 §14), so region reads against an object store or a
// plain file server transfer only the chunks a selection needs. Servers
// that ignore Range and answer 200 with the full body still work — the
// fetcher discards the prefix and truncates — but lose the partial-read
// economy.
type HTTPFetcher struct {
	client *http.Client
	url    string
}

// NewHTTPFetcher builds a fetcher for the container at url. A nil client
// selects http.DefaultClient.
func NewHTTPFetcher(url string, client *http.Client) *HTTPFetcher {
	if client == nil {
		client = http.DefaultClient
	}
	return &HTTPFetcher{client: client, url: url}
}

// ReadRange implements ChunkFetcher with a single Range GET.
func (h *HTTPFetcher) ReadRange(off int64, n int) ([]byte, error) {
	if n <= 0 || off < 0 {
		return nil, fmt.Errorf("fzio: bad range [%d,%d+%d)", off, off, n)
	}
	req, err := http.NewRequest(http.MethodGet, h.url, nil)
	if err != nil {
		return nil, fmt.Errorf("fzio: range request: %w", err)
	}
	req.Header.Set("Range", fmt.Sprintf("bytes=%d-%d", off, off+int64(n)-1))
	resp, err := h.client.Do(req)
	if err != nil {
		return nil, fmt.Errorf("fzio: range request: %w", err)
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusPartialContent:
		// The requested window, as asked.
	case http.StatusOK:
		// Range ignored: the body is the whole artifact. Skip to the
		// window so the caller still gets exactly its bytes.
		if _, err := io.CopyN(io.Discard, resp.Body, off); err != nil {
			return nil, fmt.Errorf("fzio: range response truncated before offset %d: %w", off, err)
		}
	default:
		return nil, fmt.Errorf("fzio: range request for [%d,%d): %s", off, off+int64(n), resp.Status)
	}
	out := make([]byte, n)
	if k, err := io.ReadFull(resp.Body, out); k < n {
		if err == nil {
			err = io.ErrUnexpectedEOF
		}
		return nil, fmt.Errorf("fzio: range response truncated: %d of %d bytes at %d: %w", k, n, off, err)
	}
	return out, nil
}

// Size implements ChunkFetcher with a HEAD request.
func (h *HTTPFetcher) Size() (int64, error) {
	resp, err := h.client.Head(h.url)
	if err != nil {
		return 0, fmt.Errorf("fzio: HEAD: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("fzio: HEAD: %s", resp.Status)
	}
	if resp.ContentLength < 0 {
		return 0, fmt.Errorf("fzio: HEAD response carries no Content-Length")
	}
	return resp.ContentLength, nil
}

// CountingFetcher wraps a fetcher with atomic request/byte counters — the
// instrument behind the "a 1-of-8-chunk region reads a fraction of the
// container" guarantee, used by tests, the region benchmark, and the
// regionread example.
type CountingFetcher struct {
	inner ChunkFetcher
	reads atomic.Int64
	bytes atomic.Int64
}

// NewCountingFetcher wraps inner.
func NewCountingFetcher(inner ChunkFetcher) *CountingFetcher {
	return &CountingFetcher{inner: inner}
}

// ReadRange implements ChunkFetcher, counting the request and its bytes.
func (c *CountingFetcher) ReadRange(off int64, n int) ([]byte, error) {
	out, err := c.inner.ReadRange(off, n)
	c.reads.Add(1)
	c.bytes.Add(int64(len(out)))
	return out, err
}

// Size implements ChunkFetcher.
func (c *CountingFetcher) Size() (int64, error) { return c.inner.Size() }

// Reads returns the ReadRange calls observed so far.
func (c *CountingFetcher) Reads() int64 { return c.reads.Load() }

// BytesRead returns the payload bytes returned so far.
func (c *CountingFetcher) BytesRead() int64 { return c.bytes.Load() }

// Reset zeroes both counters.
func (c *CountingFetcher) Reset() {
	c.reads.Store(0)
	c.bytes.Store(0)
}

// checkRange validates a [off, off+n) window against an artifact size.
func checkRange(off int64, n int, size int64) error {
	if off < 0 || n <= 0 || off+int64(n) > size {
		return fmt.Errorf("fzio: range [%d,%d) outside artifact of %d bytes", off, off+int64(n), size)
	}
	return nil
}
