package fzio

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// This file defines the pluggable byte-range storage abstraction the
// random-access read path is built on. A ChunkFetcher serves ranges of one
// container artifact — a local file, an in-memory blob, or an HTTP object
// behind Range requests — and the region planner (internal/core) asks it
// only for the index and the payloads of the chunks a selection actually
// intersects, so serving a small subvolume of a huge remote dataset never
// transfers the whole container.

// ErrRangeViolation marks a request for bytes outside the artifact — a
// caller bug or a poisoned index, never a storage hiccup, so Transient
// reports false and RetryFetcher fails it without retrying.
var ErrRangeViolation = errors.New("fzio: range violation")

// HTTPStatusError is a non-success HTTP response surfaced by HTTPFetcher.
// It preserves the status code so the retry taxonomy can separate server
// trouble (5xx and 429, worth retrying) from request trouble (other
// 4xx, never), and the server's Retry-After hint so the retry loop can
// honor the server's own backoff request instead of guessing.
type HTTPStatusError struct {
	Code   int
	Status string
	// RetryAfter is the parsed Retry-After header of a 429 or 503
	// response (0 when absent or unparseable). RetryFetcher uses it as
	// the backoff before the next attempt.
	RetryAfter time.Duration
}

// Error implements error.
func (e *HTTPStatusError) Error() string { return "fzio: http status " + e.Status }

// newHTTPStatusError captures a non-success response, including the
// Retry-After hint on the status codes that conventionally carry one.
func newHTTPStatusError(resp *http.Response) *HTTPStatusError {
	e := &HTTPStatusError{Code: resp.StatusCode, Status: resp.Status}
	if resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode == http.StatusServiceUnavailable {
		e.RetryAfter = parseRetryAfter(resp.Header.Get("Retry-After"))
	}
	return e
}

// parseRetryAfter parses a Retry-After value: delay-seconds or an
// HTTP-date (RFC 9110 §10.2.3). Absent, unparseable or past values
// report 0.
func parseRetryAfter(v string) time.Duration {
	v = strings.TrimSpace(v)
	if v == "" {
		return 0
	}
	if secs, err := strconv.Atoi(v); err == nil {
		if secs < 0 {
			return 0
		}
		return time.Duration(secs) * time.Second
	}
	if t, err := http.ParseTime(v); err == nil {
		if d := time.Until(t); d > 0 {
			return d
		}
	}
	return 0
}

// ChunkFetcher serves byte ranges of one container artifact. Implementations
// must be safe for concurrent ReadRange calls: the region read path fetches
// the chunks of a selection in parallel.
type ChunkFetcher interface {
	// ReadRange returns exactly n bytes of the artifact starting at byte
	// offset off. A response shorter than n bytes is an error, never a
	// silent truncation; the returned slice is owned by the caller.
	ReadRange(off int64, n int) ([]byte, error)
	// Size returns the artifact's total length in bytes.
	Size() (int64, error)
}

// BytesFetcher serves ranges of an in-memory container blob — the
// zero-dependency fetcher for artifacts already resident, and the reference
// implementation the others are tested against.
type BytesFetcher struct {
	blob []byte
}

// NewBytesFetcher wraps blob as a ChunkFetcher. The blob is not copied.
func NewBytesFetcher(blob []byte) *BytesFetcher { return &BytesFetcher{blob: blob} }

// ReadRange implements ChunkFetcher.
func (b *BytesFetcher) ReadRange(off int64, n int) ([]byte, error) {
	if err := checkRange(off, n, int64(len(b.blob))); err != nil {
		return nil, err
	}
	out := make([]byte, n)
	copy(out, b.blob[off:])
	return out, nil
}

// Size implements ChunkFetcher.
func (b *BytesFetcher) Size() (int64, error) { return int64(len(b.blob)), nil }

// ReaderAtFetcher adapts any io.ReaderAt of known size — the local-storage
// fetcher (os.File implements io.ReaderAt) and the adapter for mmap'd or
// sectioned sources.
type ReaderAtFetcher struct {
	r    io.ReaderAt
	size int64
}

// NewReaderAtFetcher wraps r, which must serve [0, size).
func NewReaderAtFetcher(r io.ReaderAt, size int64) *ReaderAtFetcher {
	return &ReaderAtFetcher{r: r, size: size}
}

// ReadRange implements ChunkFetcher.
func (f *ReaderAtFetcher) ReadRange(off int64, n int) ([]byte, error) {
	if err := checkRange(off, n, f.size); err != nil {
		return nil, err
	}
	out := make([]byte, n)
	if k, err := f.r.ReadAt(out, off); k < n {
		if err == nil || err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, fmt.Errorf("fzio: fetcher short read: %d of %d bytes at %d: %w", k, n, off, err)
	}
	return out, nil
}

// Size implements ChunkFetcher.
func (f *ReaderAtFetcher) Size() (int64, error) { return f.size, nil }

// FileFetcher serves ranges of a container file on local storage.
type FileFetcher struct {
	ReaderAtFetcher
	f *os.File
}

// NewFileFetcher opens path for random-access reads. Close releases the
// file handle.
func NewFileFetcher(path string) (*FileFetcher, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	return &FileFetcher{ReaderAtFetcher: ReaderAtFetcher{r: f, size: fi.Size()}, f: f}, nil
}

// Close releases the underlying file handle.
func (f *FileFetcher) Close() error { return f.f.Close() }

// HTTPFetcher serves ranges of a container published over HTTP using Range
// requests (RFC 9110 §14), so region reads against an object store or a
// plain file server transfer only the chunks a selection needs. Servers
// that ignore Range and answer 200 with the full body still work — the
// fetcher discards the prefix and truncates — but lose the partial-read
// economy.
type HTTPFetcher struct {
	client *http.Client
	url    string
}

// NewHTTPFetcher builds a fetcher for the container at url. A nil client
// selects http.DefaultClient.
func NewHTTPFetcher(url string, client *http.Client) *HTTPFetcher {
	if client == nil {
		client = http.DefaultClient
	}
	return &HTTPFetcher{client: client, url: url}
}

// ReadRange implements ChunkFetcher with a single Range GET.
func (h *HTTPFetcher) ReadRange(off int64, n int) ([]byte, error) {
	if n <= 0 || off < 0 {
		return nil, fmt.Errorf("%w: bad range [%d,%d+%d)", ErrRangeViolation, off, off, n)
	}
	req, err := http.NewRequest(http.MethodGet, h.url, nil)
	if err != nil {
		return nil, fmt.Errorf("fzio: range request: %w", err)
	}
	req.Header.Set("Range", fmt.Sprintf("bytes=%d-%d", off, off+int64(n)-1))
	resp, err := h.client.Do(req)
	if err != nil {
		return nil, fmt.Errorf("fzio: range request: %w", err)
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusPartialContent:
		// The requested window, as asked.
	case http.StatusOK:
		// Range ignored: the body is the whole artifact. Skip to the
		// window so the caller still gets exactly its bytes.
		if _, err := io.CopyN(io.Discard, resp.Body, off); err != nil {
			return nil, fmt.Errorf("fzio: range response truncated before offset %d: %w", off, err)
		}
	default:
		return nil, fmt.Errorf("fzio: range request for [%d,%d): %w",
			off, off+int64(n), newHTTPStatusError(resp))
	}
	out := make([]byte, n)
	if k, err := io.ReadFull(resp.Body, out); k < n {
		if err == nil {
			err = io.ErrUnexpectedEOF
		}
		return nil, fmt.Errorf("fzio: range response truncated: %d of %d bytes at %d: %w", k, n, off, err)
	}
	return out, nil
}

// Size implements ChunkFetcher with a HEAD request. Servers that reject
// HEAD (405/403/501 are all seen in the wild) or answer it without a
// Content-Length fall back to a one-byte Range GET whose Content-Range
// header carries the artifact's total length.
func (h *HTTPFetcher) Size() (int64, error) {
	resp, err := h.client.Head(h.url)
	if err != nil {
		return h.sizeViaRange(fmt.Errorf("fzio: HEAD: %w", err))
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return h.sizeViaRange(fmt.Errorf("fzio: HEAD: %w", newHTTPStatusError(resp)))
	}
	if resp.ContentLength < 0 {
		return h.sizeViaRange(errors.New("fzio: HEAD response carries no Content-Length"))
	}
	return resp.ContentLength, nil
}

// sizeViaRange recovers the artifact size from a `Range: bytes=0-0` GET
// when HEAD failed with headErr: a 206 answer states the total after the
// slash in Content-Range (RFC 9110 §14.4), and a 200 answer (Range
// ignored) states it in Content-Length. Any other outcome surfaces the
// original HEAD error, which names the more fundamental problem.
func (h *HTTPFetcher) sizeViaRange(headErr error) (int64, error) {
	req, err := http.NewRequest(http.MethodGet, h.url, nil)
	if err != nil {
		return 0, headErr
	}
	req.Header.Set("Range", "bytes=0-0")
	resp, err := h.client.Do(req)
	if err != nil {
		return 0, headErr
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusPartialContent:
		total, ok := parseContentRangeTotal(resp.Header.Get("Content-Range"))
		if !ok {
			return 0, fmt.Errorf("fzio: probe GET carries no usable Content-Range (HEAD failed: %w)", headErr)
		}
		return total, nil
	case http.StatusOK:
		if resp.ContentLength >= 0 {
			return resp.ContentLength, nil
		}
	}
	return 0, headErr
}

// parseContentRangeTotal extracts the complete length from a
// "bytes first-last/complete" Content-Range value. An unknown total
// ("bytes 0-0/*") or any other shape reports false.
func parseContentRangeTotal(v string) (int64, bool) {
	v = strings.TrimSpace(v)
	if !strings.HasPrefix(v, "bytes") {
		return 0, false
	}
	_, totalStr, ok := strings.Cut(v, "/")
	if !ok {
		return 0, false
	}
	total, err := strconv.ParseInt(strings.TrimSpace(totalStr), 10, 64)
	if err != nil || total < 0 {
		return 0, false
	}
	return total, true
}

// CountingFetcher wraps a fetcher with atomic request/byte counters — the
// instrument behind the "a 1-of-8-chunk region reads a fraction of the
// container" guarantee, used by tests, the region benchmark, and the
// regionread example.
type CountingFetcher struct {
	inner ChunkFetcher
	reads atomic.Int64
	bytes atomic.Int64
}

// NewCountingFetcher wraps inner.
func NewCountingFetcher(inner ChunkFetcher) *CountingFetcher {
	return &CountingFetcher{inner: inner}
}

// ReadRange implements ChunkFetcher, counting the request and its bytes.
func (c *CountingFetcher) ReadRange(off int64, n int) ([]byte, error) {
	out, err := c.inner.ReadRange(off, n)
	c.reads.Add(1)
	c.bytes.Add(int64(len(out)))
	return out, err
}

// Size implements ChunkFetcher.
func (c *CountingFetcher) Size() (int64, error) { return c.inner.Size() }

// Reads returns the ReadRange calls observed so far.
func (c *CountingFetcher) Reads() int64 { return c.reads.Load() }

// BytesRead returns the payload bytes returned so far.
func (c *CountingFetcher) BytesRead() int64 { return c.bytes.Load() }

// Reset zeroes both counters.
func (c *CountingFetcher) Reset() {
	c.reads.Store(0)
	c.bytes.Store(0)
}

// WrappedFetcher is implemented by fetcher decorators (RetryFetcher,
// CountingFetcher, FaultFetcher) that delegate to an inner fetcher, so
// policy code can inspect the base storage behind a decoration stack.
type WrappedFetcher interface {
	// Inner returns the fetcher this one wraps.
	Inner() ChunkFetcher
}

// IsHTTPBacked reports whether f is an HTTPFetcher or a decoration
// stack bottoming out in one — the untrusted-transport case where
// region reads turn Merkle proof verification on by default.
func IsHTTPBacked(f ChunkFetcher) bool {
	for f != nil {
		if _, ok := f.(*HTTPFetcher); ok {
			return true
		}
		w, ok := f.(WrappedFetcher)
		if !ok {
			return false
		}
		f = w.Inner()
	}
	return false
}

// Inner returns the wrapped fetcher.
func (c *CountingFetcher) Inner() ChunkFetcher { return c.inner }

// checkRange validates a [off, off+n) window against an artifact size.
func checkRange(off int64, n int, size int64) error {
	if off < 0 || n <= 0 || off+int64(n) > size {
		return fmt.Errorf("%w: [%d,%d) outside artifact of %d bytes", ErrRangeViolation, off, off+int64(n), size)
	}
	return nil
}
