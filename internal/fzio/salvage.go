package fzio

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// This file is the salvage path for damaged artifacts: where the normal
// readers refuse a container on the first integrity violation (the right
// default — wrong bytes must never decode silently), the survey here
// walks the whole artifact, classifies every chunk as intact, corrupt or
// missing, and lets SalvageChunked rebuild a fully valid container from
// the chunks that survived. A truncated stream upload, a torn disk
// write, or a tampered chunk store therefore costs the damaged chunks,
// not the artifact.

// Chunk survey states.
const (
	// ChunkIntact marks a chunk whose payload is present and passes every
	// integrity check the artifact carries (CRC32, and the Merkle leaf
	// hash on version ≥ 2 containers).
	ChunkIntact = "intact"
	// ChunkCorrupt marks a chunk whose payload is present but fails an
	// integrity check.
	ChunkCorrupt = "corrupt"
	// ChunkMissing marks a chunk whose payload lies (at least partly)
	// beyond the end of the artifact — truncation damage.
	ChunkMissing = "missing"
)

// SurveyChunk is one chunk's salvage verdict.
type SurveyChunk struct {
	// Index is the chunk's position in the container's chunk order.
	Index int
	// Length and Planes echo the chunk's recorded geometry.
	Length int
	Planes int
	// State is ChunkIntact, ChunkCorrupt or ChunkMissing.
	State string
	// Detail names the failed check for damaged chunks ("" when intact).
	Detail string

	payload []byte // retained for intact chunks, so salvage needs no refetch
}

// Payload returns the chunk's integrity-checked payload bytes — non-nil
// exactly for ChunkIntact chunks. Callers must not mutate it (it aliases
// the surveyed artifact).
func (c *SurveyChunk) Payload() []byte { return c.payload }

// Survey is the damage report of one artifact: per-chunk verdicts plus
// the container-level facts salvage and verification report on.
type Survey struct {
	// Flavor is the container format surveyed (FlavorChunked,
	// FlavorStream or FlavorMonolithic).
	Flavor string
	// Header is the container's global metadata.
	Header ChunkedHeader
	// Root is the recorded Merkle root when the artifact carries one
	// (version ≥ 2 and the bytes holding it survived); nil otherwise.
	Root []byte
	// RootVerified reports whether Root reproduces from the chunk table's
	// own leaf hashes. False with a non-nil Root means the table or the
	// root itself is damaged; intact chunks are then vouched for by their
	// CRC and recorded leaf hash only.
	RootVerified bool
	// Truncated reports that the artifact ends before its recorded layout
	// does (missing chunks, a cut trailer, or a lost end marker).
	Truncated bool
	// Chunks holds one verdict per chunk the survey could locate.
	Chunks []SurveyChunk
}

// Intact returns how many surveyed chunks are undamaged.
func (s *Survey) Intact() int {
	n := 0
	for _, c := range s.Chunks {
		if c.State == ChunkIntact {
			n++
		}
	}
	return n
}

// Damaged reports whether the survey found any damage — chunk-level or
// container-level (truncation, an unverifiable root).
func (s *Survey) Damaged() bool {
	if s.Truncated || (s.Root != nil && !s.RootVerified) {
		return true
	}
	return s.Intact() != len(s.Chunks)
}

// SurveyArtifact fetches the whole artifact behind f and walks it
// chunk by chunk, classifying each as intact, corrupt or missing. It
// tolerates the damage the normal readers refuse: a truncated payload
// area, a tampered root, a cut stream trailer. It still errors when
// nothing can be salvaged at all — an unrecognizable magic, or a header
// too damaged to locate any chunk.
func SurveyArtifact(f ChunkFetcher) (*Survey, error) {
	size, err := f.Size()
	if err != nil {
		return nil, fmt.Errorf("fzio: sizing artifact: %w", err)
	}
	if size < 6 {
		return nil, fmt.Errorf("fzio: artifact of %d bytes is not an FZModules container", size)
	}
	if size > maxSalvageBytes {
		return nil, fmt.Errorf("fzio: artifact of %d bytes exceeds the salvage limit", size)
	}
	blob, err := fetchExact(f, 0, int(size), "artifact")
	if err != nil {
		return nil, err
	}
	switch {
	case IsChunked(blob):
		return surveyChunked(blob)
	case IsStream(blob):
		return surveyStream(blob)
	case string(blob[:4]) == Magic:
		return surveyMonolithic(blob)
	default:
		return nil, fmt.Errorf("fzio: unrecognized container magic %q", blob[:4])
	}
}

// maxSalvageBytes bounds the artifact size the survey will hold in
// memory (the salvage path reads the whole artifact once, by design —
// damage classification needs every payload byte anyway).
const maxSalvageBytes = 1 << 32

// surveyChunked walks an FZMC artifact. The chunk table sits up front,
// so even a truncated payload area still yields every chunk's recorded
// geometry; the table itself being cut is unsalvageable (the chunk
// boundaries are unrecoverable).
func surveyChunked(blob []byte) (*Survey, error) {
	// Permissive payload bound: a truncated artifact declares more payload
	// than it holds, which is exactly the damage the per-chunk walk below
	// classifies.
	hdr, chunks, root, rootOK, pos, err := parseChunkedTableLoose(blob, maxSalvageBytes)
	if err != nil {
		return nil, fmt.Errorf("fzio: unsalvageable chunked artifact: %w", err)
	}
	s := &Survey{Flavor: FlavorChunked, Header: hdr, Root: root, RootVerified: rootOK}
	for i, ref := range chunks {
		sc := SurveyChunk{Index: i, Length: ref.Length, Planes: ref.Planes}
		lo := pos + ref.Offset
		hi := lo + ref.Length
		switch {
		case hi > len(blob):
			sc.State = ChunkMissing
			sc.Detail = fmt.Sprintf("payload [%d,%d) extends past the %d-byte artifact", lo, hi, len(blob))
			s.Truncated = true
		case crc32.ChecksumIEEE(blob[lo:hi]) != ref.CRC:
			sc.State = ChunkCorrupt
			sc.Detail = "payload CRC32 disagrees with the chunk table"
		case root != nil && LeafHash(blob[lo:hi]) != ref.Hash:
			sc.State = ChunkCorrupt
			sc.Detail = "payload hash disagrees with the chunk table (CRC collision)"
		default:
			sc.State = ChunkIntact
			sc.payload = blob[lo:hi]
		}
		s.Chunks = append(s.Chunks, sc)
	}
	return s, nil
}

// surveyStream walks an FZMS artifact frame by frame from the prologue —
// the frames are self-describing, so the walk survives a missing or cut
// trailer and stops cleanly at a truncation point. When the trailer is
// present and sane, its per-chunk leaf hashes (version ≥ 2) upgrade the
// per-frame verdicts: a CRC-colliding tamper is caught by the hash.
func surveyStream(blob []byte) (*Survey, error) {
	hdr, version, prologueLen, err := parseStreamPrologue(blob)
	if err != nil {
		return nil, fmt.Errorf("fzio: unsalvageable stream artifact: %w", err)
	}
	s := &Survey{Flavor: FlavorStream, Header: hdr}

	// The trailer index, when it survived, is the authority on chunk
	// count, CRCs and (v2) leaf hashes.
	refs, root, rootOK, trailerErr := parseStreamTrailer(blob, version, prologueLen)
	s.Root, s.RootVerified = root, rootOK

	// Frame walk: each frame carries its own length ‖ planes ‖ CRC header,
	// so intact frames before the damage point are recoverable even when
	// everything after is gone.
	pos := prologueLen
	sawEnd := false
	for {
		length, k := binary.Uvarint(blob[pos:])
		if k <= 0 {
			s.Truncated = true
			break
		}
		if length == 0 {
			sawEnd = true
			break
		}
		if length > maxStreamChunkBytes {
			// A frame header this insane means the walk has derailed (the
			// previous frame's length field was damaged); everything from
			// here on is unrecoverable.
			s.Truncated = true
			break
		}
		pos += k
		planes, k := binary.Uvarint(blob[pos:])
		if k <= 0 || planes == 0 || planes > maxFieldElems {
			s.Truncated = true
			break
		}
		pos += k
		if pos+4 > len(blob) {
			s.Truncated = true
			break
		}
		crc := binary.LittleEndian.Uint32(blob[pos:])
		pos += 4
		i := len(s.Chunks)
		sc := SurveyChunk{Index: i, Length: int(length), Planes: int(planes)}
		if pos+int(length) > len(blob) {
			sc.State = ChunkMissing
			sc.Detail = fmt.Sprintf("frame payload extends past the %d-byte artifact", len(blob))
			s.Truncated = true
			s.Chunks = append(s.Chunks, sc)
			break
		}
		payload := blob[pos : pos+int(length)]
		pos += int(length)
		switch {
		case crc32.ChecksumIEEE(payload) != crc:
			sc.State = ChunkCorrupt
			sc.Detail = "frame payload CRC32 disagrees with its header"
		case trailerErr == nil && i < len(refs) && refs[i].CRC != crc:
			sc.State = ChunkCorrupt
			sc.Detail = "frame CRC disagrees with the trailer index"
		case trailerErr == nil && version >= 2 && i < len(refs) && LeafHash(payload) != refs[i].Hash:
			sc.State = ChunkCorrupt
			sc.Detail = "frame payload hash disagrees with the trailer index (CRC collision)"
		default:
			sc.State = ChunkIntact
			sc.payload = payload
		}
		s.Chunks = append(s.Chunks, sc)
	}
	if sawEnd && trailerErr != nil {
		// Frames ended cleanly but the trailer would not parse: the damage
		// is in the index, not the payloads.
		s.Truncated = true
	}
	if trailerErr == nil && len(s.Chunks) < len(refs) {
		// The trailer promises more chunks than the frame walk found.
		for i := len(s.Chunks); i < len(refs); i++ {
			s.Chunks = append(s.Chunks, SurveyChunk{
				Index: i, Length: refs[i].Length, Planes: refs[i].Planes,
				State: ChunkMissing, Detail: "frame never arrived (truncated stream)",
			})
		}
		s.Truncated = true
	}
	if len(s.Chunks) == 0 {
		return nil, fmt.Errorf("fzio: unsalvageable stream artifact: no complete frame before the damage point")
	}
	return s, nil
}

// parseStreamTrailer parses the FZMS index trailer from a full artifact,
// returning the recorded refs, the Merkle root (nil below version 2) and
// whether the root reproduces from the entries. Any structural damage —
// missing end magic, bad trailer length, CRC mismatch — is an error; the
// stream survey then falls back to the frames alone.
func parseStreamTrailer(blob []byte, version, prologueLen int) ([]ChunkRef, []byte, bool, error) {
	if len(blob) < prologueLen+1+16 || string(blob[len(blob)-4:]) != streamEndMagic {
		return nil, nil, false, fmt.Errorf("fzio: missing stream end magic")
	}
	tail := blob[len(blob)-16:]
	trailerLen := binary.LittleEndian.Uint64(tail[4:12])
	if trailerLen < 5 || int64(trailerLen)+12 > int64(len(blob)-prologueLen) {
		return nil, nil, false, fmt.Errorf("fzio: bad stream trailer length %d", trailerLen)
	}
	idxLen := int(trailerLen) - 4
	idx := blob[len(blob)-16-idxLen : len(blob)-16]
	if crc32.ChecksumIEEE(idx) != binary.LittleEndian.Uint32(tail[:4]) {
		return nil, nil, false, fmt.Errorf("fzio: stream trailer CRC mismatch")
	}
	pos := 0
	nChunks, k := binary.Uvarint(idx[pos:])
	if k <= 0 || nChunks == 0 || nChunks > maxChunksLimit {
		return nil, nil, false, fmt.Errorf("fzio: bad stream chunk count")
	}
	pos += k
	refs := make([]ChunkRef, nChunks)
	for i := range refs {
		length, k := binary.Uvarint(idx[pos:])
		if k <= 0 {
			return nil, nil, false, fmt.Errorf("fzio: truncated stream index")
		}
		pos += k
		planes, k := binary.Uvarint(idx[pos:])
		if k <= 0 {
			return nil, nil, false, fmt.Errorf("fzio: truncated stream index")
		}
		pos += k
		if pos+4 > len(idx) {
			return nil, nil, false, fmt.Errorf("fzio: truncated stream index")
		}
		refs[i] = ChunkRef{Length: int(length), Planes: int(planes), CRC: binary.LittleEndian.Uint32(idx[pos:])}
		pos += 4
		if version >= 2 {
			if pos+HashSize > len(idx) {
				return nil, nil, false, fmt.Errorf("fzio: truncated stream index")
			}
			copy(refs[i].Hash[:], idx[pos:])
			pos += HashSize
		}
	}
	var root []byte
	rootOK := false
	if version >= 2 {
		if pos+HashSize > len(idx) {
			return nil, nil, false, fmt.Errorf("fzio: truncated stream index")
		}
		root = append([]byte(nil), idx[pos:pos+HashSize]...)
		pos += HashSize
		want, err := merkleRoot(refs)
		if err != nil {
			return nil, nil, false, err
		}
		rootOK = string(root) == string(want[:])
	}
	if pos != len(idx) {
		return nil, nil, false, fmt.Errorf("fzio: stream index has %d trailing bytes", len(idx)-pos)
	}
	return refs, root, rootOK, nil
}

// surveyMonolithic classifies an FZMD artifact as a single chunk: intact
// when it parses (Unmarshal verifies every segment CRC), corrupt
// otherwise. A monolithic container has no independent sub-units, so
// there is no finer salvage granularity.
func surveyMonolithic(blob []byte) (*Survey, error) {
	hdr, err := parseMonolithicHeader(blob)
	if err != nil {
		return nil, fmt.Errorf("fzio: unsalvageable monolithic artifact: %w", err)
	}
	s := &Survey{Flavor: FlavorMonolithic, Header: hdr}
	sc := SurveyChunk{Index: 0, Length: len(blob), Planes: hdr.Dims.SlowExtent()}
	if _, err := Unmarshal(blob); err != nil {
		sc.State = ChunkCorrupt
		sc.Detail = err.Error()
	} else {
		sc.State = ChunkIntact
		sc.payload = blob
	}
	s.Chunks = append(s.Chunks, sc)
	return s, nil
}

// SalvageChunked rebuilds a fully valid FZMC container from every intact
// chunk of the artifact behind f. The salvaged container covers the
// intact chunks' planes contiguously — its slow extent is the sum of the
// surviving plane counts, recorded via the header geometry — and every
// recovered payload is bit-identical to the original chunk, so decoding
// the salvaged container reproduces the surviving slabs exactly. The
// returned Survey says which chunks made it. Errors when no chunk at all
// survived.
//
// A salvaged container is a standard version-2 FZMC artifact: CRCs, leaf
// hashes and Merkle root are recomputed over the surviving chunks, so
// every reader (including proof-checked region reads) accepts it.
func SalvageChunked(f ChunkFetcher) ([]byte, *Survey, error) {
	s, err := SurveyArtifact(f)
	if err != nil {
		return nil, nil, err
	}
	var chunks [][]byte
	var planes []int
	total := 0
	for _, sc := range s.Chunks {
		if sc.State != ChunkIntact {
			continue
		}
		chunks = append(chunks, sc.payload)
		planes = append(planes, sc.Planes)
		total += sc.Planes
	}
	if len(chunks) == 0 {
		return nil, s, fmt.Errorf("fzio: nothing to salvage: no intact chunk in %s artifact", s.Flavor)
	}
	hdr := s.Header
	hdr.Dims = hdr.Dims.WithSlowExtent(total)
	out, err := MarshalChunked(hdr, chunks, planes)
	if err != nil {
		return nil, s, fmt.Errorf("fzio: rebuilding salvaged container: %w", err)
	}
	return out, s, nil
}
