package fzio

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"testing"
)

func merklePayloads(n int) [][]byte {
	ps := make([][]byte, n)
	for i := range ps {
		ps[i] = bytes.Repeat([]byte{byte(i + 1)}, 16+i*7)
	}
	return ps
}

func merkleLeaves(payloads [][]byte) [][HashSize]byte {
	leaves := make([][HashSize]byte, len(payloads))
	for i, p := range payloads {
		leaves[i] = LeafHash(p)
	}
	return leaves
}

func buildTree(t *testing.T, leaves [][HashSize]byte) *MerkleTree {
	t.Helper()
	tree, err := NewMerkleTree(leaves)
	if err != nil {
		t.Fatalf("NewMerkleTree: %v", err)
	}
	return tree
}

func TestLeafHashDomainSeparation(t *testing.T) {
	payload := []byte("abc")
	// The leaf hash must NOT be the plain SHA-256 of the payload: the 0x00
	// prefix separates leaves from interior nodes so serialized node pairs
	// can never be replayed as leaves.
	plain := sha256.Sum256(payload)
	leaf := LeafHash(payload)
	if leaf == plain {
		t.Fatal("LeafHash equals plain SHA-256 — missing domain separation")
	}
	want := sha256.Sum256(append([]byte{0x00}, payload...))
	if leaf != want {
		t.Fatal("LeafHash diverges from SHA-256(0x00 || payload)")
	}
}

func TestMerkleProofsVerify(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 5, 7, 8, 9, 31} {
		t.Run(fmt.Sprint(n), func(t *testing.T) {
			payloads := merklePayloads(n)
			tree := buildTree(t, merkleLeaves(payloads))
			root := tree.Root()
			if tree.NumLeaves() != n {
				t.Fatalf("NumLeaves = %d, want %d", tree.NumLeaves(), n)
			}
			for i, p := range payloads {
				proof, err := tree.Proof(i)
				if err != nil {
					t.Fatalf("Proof(%d): %v", i, err)
				}
				if !VerifyProof(LeafHash(p), proof, root) {
					t.Fatalf("VerifyProof(%d) rejected a valid proof", i)
				}
			}
			if _, err := tree.Proof(n); err == nil {
				t.Fatal("Proof accepted out-of-range index")
			}
			if _, err := tree.Proof(-1); err == nil {
				t.Fatal("Proof accepted negative index")
			}
		})
	}
}

func TestMerkleProofRejectsTampering(t *testing.T) {
	payloads := merklePayloads(8)
	tree := buildTree(t, merkleLeaves(payloads))
	root := tree.Root()
	proof, err := tree.Proof(3)
	if err != nil {
		t.Fatal(err)
	}

	// Tampered payload.
	bad := append([]byte(nil), payloads[3]...)
	bad[0] ^= 0x80
	if VerifyProof(LeafHash(bad), proof, root) {
		t.Fatal("tampered payload verified")
	}
	// Right payload, wrong position: a proof binds the leaf to its index,
	// so chunk 4's proof must not vouch for chunk 3's bytes.
	wrongPos, err := tree.Proof(4)
	if err != nil {
		t.Fatal(err)
	}
	if VerifyProof(LeafHash(payloads[3]), wrongPos, root) {
		t.Fatal("payload verified at the wrong position")
	}
	// Tampered proof step.
	crooked := append([]ProofStep(nil), proof...)
	crooked[1].Hash[0] ^= 0x01
	if VerifyProof(LeafHash(payloads[3]), crooked, root) {
		t.Fatal("tampered proof verified")
	}
	// Tampered root.
	badRoot := root
	badRoot[31] ^= 0xFF
	if VerifyProof(LeafHash(payloads[3]), proof, badRoot) {
		t.Fatal("proof verified against the wrong root")
	}
}

// Odd-level duplication must not let [a b] and [a b b] collide — the
// duplicated node changes the tree shape and therefore the root.
func TestMerkleRootOddDuplication(t *testing.T) {
	a, b := LeafHash([]byte("a")), LeafHash([]byte("b"))
	two := buildTree(t, [][HashSize]byte{a, b}).Root()
	three := buildTree(t, [][HashSize]byte{a, b, b}).Root()
	if two == three {
		t.Fatal("[a b] and [a b b] share a root")
	}
}

func TestMerkleDeterministic(t *testing.T) {
	payloads := merklePayloads(5)
	r1 := buildTree(t, merkleLeaves(payloads)).Root()
	r2 := buildTree(t, merkleLeaves(payloads)).Root()
	if r1 != r2 {
		t.Fatal("same leaves, different roots")
	}
	payloads[2][0] ^= 1
	if r3 := buildTree(t, merkleLeaves(payloads)).Root(); r3 == r1 {
		t.Fatal("changed leaf, unchanged root")
	}
	if _, err := NewMerkleTree(nil); err == nil {
		t.Fatal("empty tree accepted")
	}
}
