package fzio

import (
	"bytes"
	"encoding/binary"
	"strings"
	"testing"

	"fzmod/internal/grid"
)

// assemblyHeader is the sample header shared by the scatter-writer tests.
var assemblyHeader = ChunkedHeader{
	Pipeline: "fzmod-default",
	Dims:     grid.D3(6, 5, 9),
	EB:       2.5e-4,
	RelEB:    1e-4,
	Planes:   3,
}

// scatterAssemble builds a container through the zero-copy path: layout
// from lengths, then each chunk written into its slice and sealed.
func scatterAssemble(t *testing.T, h ChunkedHeader, chunks [][]byte, planes []int) []byte {
	t.Helper()
	lengths := make([]int, len(chunks))
	for i, c := range chunks {
		lengths[i] = len(c)
	}
	a, err := NewChunkedAssembly(h, lengths, planes)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumChunks() != len(chunks) {
		t.Fatalf("NumChunks = %d, want %d", a.NumChunks(), len(chunks))
	}
	// Fill out of order to prove the windows are position-independent.
	for i := len(chunks) - 1; i >= 0; i-- {
		dst := a.ChunkSlice(i)
		if len(dst) != len(chunks[i]) {
			t.Fatalf("chunk %d slice is %d bytes, want %d", i, len(dst), len(chunks[i]))
		}
		copy(dst, chunks[i])
		a.SealChunk(i)
	}
	return a.Bytes()
}

// TestChunkedAssemblyByteIdentity proves the scatter-write path emits the
// same bytes as the gather path for identical chunk contents — the
// container format is one, regardless of which assembly produced it.
func TestChunkedAssemblyByteIdentity(t *testing.T) {
	chunks := [][]byte{
		[]byte("chunk-zero-payload"),
		[]byte("chunk-one"),
		{},
		[]byte{0xde, 0xad, 0xbe, 0xef},
	}
	planes := []int{3, 3, 2, 1}
	gather, err := MarshalChunked(assemblyHeader, chunks, planes)
	if err != nil {
		t.Fatal(err)
	}
	scatter := scatterAssemble(t, assemblyHeader, chunks, planes)
	if !bytes.Equal(gather, scatter) {
		t.Fatalf("scatter-assembled container differs from gather path:\n%x\n%x", scatter, gather)
	}
	// And it parses back to the same chunks with valid CRCs.
	c, err := UnmarshalChunked(scatter)
	if err != nil {
		t.Fatal(err)
	}
	for i := range chunks {
		got, err := c.Chunk(i)
		if err != nil {
			t.Fatalf("Chunk(%d): %v", i, err)
		}
		if !bytes.Equal(got, chunks[i]) {
			t.Errorf("chunk %d payload mismatch", i)
		}
	}
}

// TestChunkedAssemblyCorruption re-runs the corruption suite against a
// scatter-written container: payload CRC flips and truncation must be
// detected exactly as on gather-path containers.
func TestChunkedAssemblyCorruption(t *testing.T) {
	chunks := [][]byte{
		[]byte("first-chunk-data"),
		[]byte("second-chunk-data!"),
		[]byte("third"),
		[]byte("fourth-chunk"),
	}
	planes := []int{3, 3, 2, 1}
	blob := scatterAssemble(t, assemblyHeader, chunks, planes)

	c, err := UnmarshalChunked(blob)
	if err != nil {
		t.Fatal(err)
	}
	payloadStart := len(blob)
	for _, ref := range c.Chunks {
		payloadStart -= ref.Length
	}

	// CRC flip: every single-bit payload flip must fail exactly its chunk.
	for pos := payloadStart; pos < len(blob); pos++ {
		mut := append([]byte(nil), blob...)
		mut[pos] ^= 0x40
		mc, err := UnmarshalChunked(mut)
		if err != nil {
			t.Fatalf("payload flip at %d broke the header parse: %v", pos, err)
		}
		failures := 0
		for i := range chunks {
			if _, err := mc.Chunk(i); err != nil {
				failures++
				if !strings.Contains(err.Error(), "CRC") {
					t.Fatalf("flip at %d: unexpected error %v", pos, err)
				}
			}
		}
		if failures != 1 {
			t.Fatalf("flip at %d: %d chunks failed CRC, want exactly 1", pos, failures)
		}
	}

	// Truncation anywhere inside the payload area must be rejected at
	// parse time (the chunk table still claims the full extent).
	for _, cut := range []int{1, len(chunks[3]) / 2, len(chunks[3])} {
		if _, err := UnmarshalChunked(blob[:len(blob)-cut]); err == nil {
			t.Errorf("truncation by %d bytes not rejected", cut)
		}
	}

	// Missing seal: an unsealed chunk (CRC slot still zero) must fail its
	// CRC check rather than pass silently.
	lengths := []int{len(chunks[0]), len(chunks[1]), len(chunks[2]), len(chunks[3])}
	a, err := NewChunkedAssembly(assemblyHeader, lengths, planes)
	if err != nil {
		t.Fatal(err)
	}
	for i := range chunks {
		copy(a.ChunkSlice(i), chunks[i])
		if i != 2 {
			a.SealChunk(i)
		}
	}
	uc, err := UnmarshalChunked(a.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := uc.Chunk(2); err == nil {
		t.Error("unsealed chunk passed its CRC check")
	}
}

// TestChunkedOverlappingOffsetsRejected crafts a chunk table whose second
// entry's offset points back into the first chunk's payload; the parser
// must reject the overlap (offsets are required to be contiguous from
// zero), on both the scatter- and gather-produced prologue.
func TestChunkedOverlappingOffsetsRejected(t *testing.T) {
	chunks := [][]byte{
		bytes.Repeat([]byte{0x11}, 20),
		bytes.Repeat([]byte{0x22}, 20),
	}
	blob := scatterAssemble(t, ChunkedHeader{
		Pipeline: "p", Dims: grid.D3(4, 4, 6), EB: 1e-3, Planes: 3,
	}, chunks, []int{3, 3})

	// Locate chunk 1's table entry: its offset uvarint encodes 20 (one
	// byte) and immediately follows chunk 0's entry. Scan for the byte
	// sequence [offset=20][len=20] ahead of the payload area.
	payloadStart := len(blob) - 40
	idx := -1
	for pos := 0; pos < payloadStart-1; pos++ {
		if blob[pos] == 20 && blob[pos+1] == 20 {
			idx = pos // chunk 1 entry: offset 20, length 20
		}
	}
	if idx < 0 {
		t.Fatal("could not locate chunk 1 table entry")
	}
	mut := append([]byte(nil), blob...)
	mut[idx] = 10 // overlaps chunk 0's [0,20) payload window
	if _, err := UnmarshalChunked(mut); err == nil {
		t.Fatal("overlapping chunk offset not rejected")
	} else if !strings.Contains(err.Error(), "offset") {
		t.Fatalf("unexpected rejection: %v", err)
	}

	// Sanity: the unmodified container still parses.
	if _, err := UnmarshalChunked(blob); err != nil {
		t.Fatal(err)
	}
}

// TestChunkedAssemblyValidation mirrors MarshalChunked's geometry checks.
func TestChunkedAssemblyValidation(t *testing.T) {
	h := ChunkedHeader{Pipeline: "p", Dims: grid.D3(4, 4, 6), EB: 1e-3, Planes: 3}
	cases := []struct {
		name    string
		lengths []int
		planes  []int
	}{
		{"no chunks", nil, nil},
		{"mismatched planes", []int{4, 4}, []int{3}},
		{"nonpositive planes", []int{4, 4}, []int{6, 0}},
		{"planes exceed extent", []int{4, 4}, []int{4, 4}},
		{"negative length", []int{-1, 4}, []int{3, 3}},
	}
	for _, tc := range cases {
		if _, err := NewChunkedAssembly(h, tc.lengths, tc.planes); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	if _, err := NewChunkedAssembly(ChunkedHeader{Pipeline: "p", Planes: 3}, []int{4}, []int{3}); err == nil {
		t.Error("invalid dims accepted")
	}
}

// TestMarshalIntoMatchesMarshal pins the exact-size serializer against the
// historical allocation path across header shapes.
func TestMarshalIntoMatchesMarshal(t *testing.T) {
	c := New(Header{Pipeline: "fzmod-default", Dims: grid.D3(300, 2, 1), EB: 1e-6, RelEB: 1e-3, Extra: 512})
	if err := c.Add("modules", []byte("lorenzo\x00huffman")); err != nil {
		t.Fatal(err)
	}
	if err := c.Add("codes", bytes.Repeat([]byte{0xab}, 300)); err != nil {
		t.Fatal(err)
	}
	if err := c.Add("pred.outval", nil); err != nil {
		t.Fatal(err)
	}
	want, err := c.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if len(want) != c.MarshaledSize() {
		t.Fatalf("MarshaledSize %d, Marshal produced %d", c.MarshaledSize(), len(want))
	}
	dst := make([]byte, c.MarshaledSize()+7)
	n, err := c.MarshalInto(dst)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dst[:n], want) {
		t.Fatal("MarshalInto bytes differ from Marshal")
	}
	if _, err := c.MarshalInto(make([]byte, c.MarshaledSize()-1)); err == nil {
		t.Error("short destination accepted")
	}
	if _, err := Unmarshal(want); err != nil {
		t.Fatal(err)
	}
	// uvarint length arithmetic across multi-byte sizes.
	big := New(Header{Pipeline: "p", Dims: grid.D1(1), Extra: 1 << 40})
	if err := big.Add("codes", make([]byte, 1<<15)); err != nil {
		t.Fatal(err)
	}
	bb, err := big.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if len(bb) != big.MarshaledSize() {
		t.Fatalf("big container: size %d, marshal %d", big.MarshaledSize(), len(bb))
	}
}

// TestAssemblyCRCSlotPosition double-checks SealChunk writes the table
// slot UnmarshalChunked reads: seal, parse, compare recorded CRCs.
func TestAssemblyCRCSlotPosition(t *testing.T) {
	chunks := [][]byte{[]byte("aaaa"), []byte("bbbbbb")}
	blob := scatterAssemble(t, ChunkedHeader{
		Pipeline: "p", Dims: grid.D3(4, 4, 6), EB: 1e-3, Planes: 3,
	}, chunks, []int{3, 3})
	c, err := UnmarshalChunked(blob)
	if err != nil {
		t.Fatal(err)
	}
	for i, ref := range c.Chunks {
		var crc [4]byte
		binary.LittleEndian.PutUint32(crc[:], ref.CRC)
		if ref.CRC == 0 {
			t.Errorf("chunk %d CRC slot still zero", i)
		}
		if _, err := c.Chunk(i); err != nil {
			t.Errorf("chunk %d: %v", i, err)
		}
	}
}
