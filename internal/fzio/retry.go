package fzio

import (
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync/atomic"
	"time"
)

// This file is the retry layer of the resilient read path: an error
// taxonomy separating storage hiccups from real failures, and a
// RetryFetcher that wraps any ChunkFetcher with deadline-aware capped
// exponential backoff. The taxonomy is deliberately conservative — a
// retried 4xx would hammer a server that already said no, a retried CRC
// failure would re-fetch bytes an upstream bug corrupted deterministically
// — so only faults that plausibly heal on their own (5xx, timeouts, short
// reads, connection drops) are retried.

// ErrCRCMismatch marks a payload whose checksum contradicts the container
// index: corruption or tampering, detected — never silently decoded, and
// never retried (the bytes the store holds are wrong; fetching them again
// cannot help).
var ErrCRCMismatch = errors.New("fzio: CRC mismatch")

// ErrTransient marks a fault worth retrying. Fault injectors and custom
// fetchers wrap it to opt an error into the retry taxonomy explicitly;
// Transient also recognizes the common organic shapes (HTTP 5xx, net
// timeouts, short reads) without it.
var ErrTransient = errors.New("fzio: transient fault")

// errAttemptTimeout marks an attempt the RetryFetcher gave up waiting on.
// It wraps ErrTransient: a stuck attempt is exactly the fault class the
// next attempt may dodge.
var errAttemptTimeout = fmt.Errorf("%w: attempt timed out", ErrTransient)

// Transient classifies err for the retry loop: true for faults a fresh
// attempt may dodge — anything marked ErrTransient, HTTP 5xx answers,
// HTTP 429 (the server said "later", not "no"), network errors and
// timeouts, and short reads (io.ErrUnexpectedEOF) — and false for
// everything that will fail identically on the next try: other HTTP
// 4xx, range violations, CRC mismatches, Merkle proof mismatches,
// cancellation, and nil.
func Transient(err error) bool {
	if err == nil {
		return false
	}
	// The definitive non-transient classes win even when wrapped alongside
	// transient markers: wrong bytes and bad requests never heal.
	if errors.Is(err, ErrCRCMismatch) || errors.Is(err, ErrProofMismatch) || errors.Is(err, ErrRangeViolation) {
		return false
	}
	if errors.Is(err, ErrTransient) || errors.Is(err, io.ErrUnexpectedEOF) {
		return true
	}
	var httpErr *HTTPStatusError
	if errors.As(err, &httpErr) {
		return httpErr.Code >= 500 || httpErr.Code == http.StatusTooManyRequests
	}
	var netErr net.Error
	return errors.As(err, &netErr)
}

// RetryPolicy shapes a RetryFetcher's loop. The zero value selects the
// defaults documented per field; Jitter, Sleep and Now are injectable so
// tests (and deterministic chaos suites) control time completely.
type RetryPolicy struct {
	// MaxAttempts bounds the tries per call, first attempt included.
	// Default 4.
	MaxAttempts int
	// BaseDelay is the backoff before the second attempt; each further
	// attempt doubles it, capped at MaxDelay. Defaults 10ms and 1s.
	BaseDelay time.Duration
	MaxDelay  time.Duration
	// AttemptTimeout bounds each individual attempt; an attempt still
	// running when it elapses is abandoned (its goroutine finishes in the
	// background) and counted as a transient fault. 0 waits forever.
	AttemptTimeout time.Duration
	// Budget bounds the whole call, attempts and backoffs included: the
	// loop never starts a sleep or an attempt that cannot finish before
	// the budget elapses, surfacing the last transient error instead.
	// 0 means no overall deadline.
	Budget time.Duration
	// Jitter perturbs a computed backoff delay. nil applies none, keeping
	// the schedule fully deterministic; production callers wanting
	// decorrelation inject their own source.
	Jitter func(d time.Duration) time.Duration
	// Sleep and Now are the loop's clock. nil selects time.Sleep and
	// time.Now.
	Sleep func(d time.Duration)
	Now   func() time.Time
}

// withDefaults resolves the zero values.
func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts < 1 {
		p.MaxAttempts = 4
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 10 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = time.Second
	}
	if p.Sleep == nil {
		p.Sleep = time.Sleep
	}
	if p.Now == nil {
		p.Now = time.Now
	}
	return p
}

// delay computes the backoff after the given 1-based attempt: capped
// exponential doubling from BaseDelay, then the caller's jitter.
func (p RetryPolicy) delay(attempt int) time.Duration {
	d := p.BaseDelay
	for i := 1; i < attempt && d < p.MaxDelay; i++ {
		d *= 2
	}
	if d > p.MaxDelay {
		d = p.MaxDelay
	}
	if p.Jitter != nil {
		d = p.Jitter(d)
	}
	return d
}

// RetryFetcher wraps a ChunkFetcher with the retry loop: transient
// failures (per Transient) are re-attempted under the policy's backoff
// schedule, everything else fails immediately. Counters expose the
// traffic: Attempts is every try issued, Retries the tries beyond each
// call's first, Exhausted the calls that failed with their transient
// error after the last allowed attempt. Safe for concurrent use when the
// inner fetcher is.
type RetryFetcher struct {
	inner ChunkFetcher
	pol   RetryPolicy

	attempts  atomic.Int64
	retries   atomic.Int64
	exhausted atomic.Int64
}

// NewRetryFetcher wraps inner under pol (zero value: 4 attempts, 10ms
// base backoff doubling to 1s, no jitter, no deadlines).
func NewRetryFetcher(inner ChunkFetcher, pol RetryPolicy) *RetryFetcher {
	return &RetryFetcher{inner: inner, pol: pol.withDefaults()}
}

// retry drives op under the policy, returning its result and the attempts
// spent. Methods route through it so ReadRange and Size share one loop.
func retry[T any](r *RetryFetcher, op func() (T, error)) (T, int, error) {
	var zero T
	var deadline time.Time
	if r.pol.Budget > 0 {
		deadline = r.pol.Now().Add(r.pol.Budget)
	}
	var lastErr error
	for attempt := 1; ; attempt++ {
		r.attempts.Add(1)
		out, err := runAttempt(r.pol.AttemptTimeout, op)
		if err == nil {
			return out, attempt, nil
		}
		lastErr = err
		if !Transient(err) {
			return zero, attempt, err
		}
		if attempt >= r.pol.MaxAttempts {
			r.exhausted.Add(1)
			return zero, attempt, fmt.Errorf("fzio: %d attempts exhausted: %w", attempt, lastErr)
		}
		d := r.pol.delay(attempt)
		// A Retry-After hint from the server (429/503 responses carry one)
		// overrides the computed backoff: the server knows its own recovery
		// horizon better than an exponential guess. The hint stays subject
		// to the overall budget below.
		if hint := retryAfterHint(err); hint > 0 {
			d = hint
		}
		if !deadline.IsZero() && r.pol.Now().Add(d).After(deadline) {
			r.exhausted.Add(1)
			return zero, attempt, fmt.Errorf("fzio: retry budget %v exhausted after %d attempts: %w",
				r.pol.Budget, attempt, lastErr)
		}
		r.retries.Add(1)
		r.pol.Sleep(d)
	}
}

// retryAfterHint extracts a server-provided Retry-After duration from
// an HTTPStatusError chain, or 0 when the error carries none.
func retryAfterHint(err error) time.Duration {
	var httpErr *HTTPStatusError
	if errors.As(err, &httpErr) {
		return httpErr.RetryAfter
	}
	return 0
}

// runAttempt runs one attempt, bounding it by timeout when one is set. A
// timed-out attempt's goroutine is abandoned to finish in the background;
// its late result is discarded.
func runAttempt[T any](timeout time.Duration, op func() (T, error)) (T, error) {
	if timeout <= 0 {
		return op()
	}
	type result struct {
		out T
		err error
	}
	ch := make(chan result, 1)
	go func() {
		out, err := op()
		ch <- result{out, err}
	}()
	t := time.NewTimer(timeout)
	defer t.Stop()
	select {
	case res := <-ch:
		return res.out, res.err
	case <-t.C:
		var zero T
		return zero, fmt.Errorf("%w after %v", errAttemptTimeout, timeout)
	}
}

// ReadRange implements ChunkFetcher with retries.
func (r *RetryFetcher) ReadRange(off int64, n int) ([]byte, error) {
	out, _, err := r.ReadRangeAttempts(off, n)
	return out, err
}

// ReadRangeAttempts is ReadRange additionally reporting the attempts this
// call spent — the per-fetch accounting behind RegionStats.FetchAttempts.
func (r *RetryFetcher) ReadRangeAttempts(off int64, n int) ([]byte, int, error) {
	return retry(r, func() ([]byte, error) { return r.inner.ReadRange(off, n) })
}

// Size implements ChunkFetcher with retries.
func (r *RetryFetcher) Size() (int64, error) {
	size, _, err := retry(r, func() (int64, error) { return r.inner.Size() })
	return size, err
}

// Inner returns the wrapped fetcher.
func (r *RetryFetcher) Inner() ChunkFetcher { return r.inner }

// Attempts returns the tries issued so far, first attempts included.
func (r *RetryFetcher) Attempts() int64 { return r.attempts.Load() }

// Retries returns the tries issued beyond each call's first.
func (r *RetryFetcher) Retries() int64 { return r.retries.Load() }

// Exhausted returns the calls that failed after their last allowed
// attempt (or after the budget ran out) with a transient error.
func (r *RetryFetcher) Exhausted() int64 { return r.exhausted.Load() }
