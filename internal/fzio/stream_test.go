package fzio

import (
	"bytes"
	"encoding/binary"
	"io"
	"strings"
	"testing"

	"fzmod/internal/grid"
)

func sampleStream(t *testing.T) ([]byte, [][]byte, []int) {
	t.Helper()
	chunks := [][]byte{
		[]byte("stream-chunk-zero"),
		[]byte("c1"),
		[]byte{0xca, 0xfe, 0xba, 0xbe},
	}
	planes := []int{4, 3, 2}
	var buf bytes.Buffer
	sw, err := NewStreamWriter(&buf, ChunkedHeader{
		Pipeline: "fzmod-default",
		Dims:     grid.D3(5, 4, 9),
		EB:       1.5e-3,
		RelEB:    1e-4,
		Planes:   4,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range chunks {
		if err := sw.WriteChunk(c, planes[i]); err != nil {
			t.Fatalf("WriteChunk(%d): %v", i, err)
		}
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	if sw.BytesWritten() != int64(buf.Len()) {
		t.Fatalf("BytesWritten %d, buffer %d", sw.BytesWritten(), buf.Len())
	}
	return buf.Bytes(), chunks, planes
}

func TestStreamRoundtrip(t *testing.T) {
	blob, chunks, planes := sampleStream(t)
	if !IsStream(blob) {
		t.Fatal("IsStream false on stream container")
	}
	sr, err := NewStreamReader(bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	want := ChunkedHeader{Pipeline: "fzmod-default", Dims: grid.D3(5, 4, 9), EB: 1.5e-3, RelEB: 1e-4, Planes: 4}
	if sr.Header() != want {
		t.Errorf("header %+v, want %+v", sr.Header(), want)
	}
	var buf []byte
	for i := 0; ; i++ {
		payload, k, err := sr.Next(buf)
		if err == io.EOF {
			if i != len(chunks) {
				t.Fatalf("EOF after %d chunks, want %d", i, len(chunks))
			}
			break
		}
		if err != nil {
			t.Fatalf("Next(%d): %v", i, err)
		}
		if !bytes.Equal(payload, chunks[i]) || k != planes[i] {
			t.Errorf("chunk %d: payload/planes mismatch", i)
		}
		buf = payload
	}
	if sr.NumChunks() != len(chunks) {
		t.Errorf("NumChunks = %d, want %d", sr.NumChunks(), len(chunks))
	}
	// Next after EOF stays EOF.
	if _, _, err := sr.Next(nil); err != io.EOF {
		t.Errorf("Next after end = %v, want io.EOF", err)
	}
}

func TestStreamReassembleChunked(t *testing.T) {
	blob, chunks, planes := sampleStream(t)
	re, err := ReassembleChunked(bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	direct, err := MarshalChunked(ChunkedHeader{
		Pipeline: "fzmod-default", Dims: grid.D3(5, 4, 9), EB: 1.5e-3, RelEB: 1e-4, Planes: 4,
	}, chunks, planes)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(re, direct) {
		t.Error("reassembled stream differs from directly marshalled chunked container")
	}
}

func TestStreamMagicsDisjoint(t *testing.T) {
	blob, _, _ := sampleStream(t)
	if IsChunked(blob) {
		t.Error("stream container misidentified as chunked")
	}
	chunked, _ := sampleChunked(t)
	if IsStream(chunked) {
		t.Error("chunked container misidentified as stream")
	}
	if _, err := NewStreamReader(bytes.NewReader(chunked)); err == nil {
		t.Error("chunked container should not parse as stream")
	}
}

func TestStreamWriterValidation(t *testing.T) {
	if _, err := NewStreamWriter(io.Discard, ChunkedHeader{}); err == nil {
		t.Error("invalid dims should fail")
	}
	sw, err := NewStreamWriter(io.Discard, ChunkedHeader{Pipeline: "p", Dims: grid.D3(2, 2, 4), Planes: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := sw.WriteChunk(nil, 2); err == nil {
		t.Error("empty payload should fail")
	}
	if err := sw.WriteChunk([]byte{1}, 0); err == nil {
		t.Error("zero planes should fail")
	}
	if err := sw.WriteChunk([]byte{1}, 5); err == nil {
		t.Error("over-covering chunk should fail")
	}
	if err := sw.Close(); err == nil {
		t.Error("Close before full coverage should fail")
	}
	if err := sw.WriteChunk([]byte{1}, 4); err != nil {
		t.Fatal(err)
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := sw.Close(); err != nil {
		t.Errorf("second Close should be a no-op, got %v", err)
	}
	if err := sw.WriteChunk([]byte{1}, 1); err == nil {
		t.Error("WriteChunk after Close should fail")
	}
}

// TestStreamTruncation: every proper prefix of a valid stream must fail
// with an error, never panic, never succeed.
func TestStreamTruncation(t *testing.T) {
	blob, _, _ := sampleStream(t)
	for cut := 0; cut < len(blob); cut++ {
		sr, err := NewStreamReader(bytes.NewReader(blob[:cut]))
		if err != nil {
			continue
		}
		sawErr := false
		for {
			_, _, err := sr.Next(nil)
			if err == io.EOF {
				break
			}
			if err != nil {
				sawErr = true
				break
			}
		}
		if !sawErr {
			t.Errorf("truncation to %d bytes went undetected", cut)
		}
	}
}

// TestStreamCorruption: single-byte flips anywhere in the stream must be
// caught by a frame CRC, the trailer cross-check, or a parse error.
func TestStreamCorruption(t *testing.T) {
	blob, _, _ := sampleStream(t)
	for i := 0; i < len(blob); i++ {
		mut := append([]byte(nil), blob...)
		mut[i] ^= 0x5A
		sr, err := NewStreamReader(bytes.NewReader(mut))
		if err != nil {
			continue
		}
		sawErr := false
		for {
			_, _, err := sr.Next(nil)
			if err == io.EOF {
				break
			}
			if err != nil {
				sawErr = true
				break
			}
		}
		if !sawErr {
			t.Errorf("byte flip at %d went undetected", i)
		}
	}
}

// TestStreamCraftedHugeFrame: a frame declaring a near-limit length over a
// short stream must fail from truncation without committing the declared
// allocation.
func TestStreamCraftedHugeFrame(t *testing.T) {
	var buf bytes.Buffer
	if _, err := NewStreamWriter(&buf, ChunkedHeader{Pipeline: "p", Dims: grid.D3(2, 2, 8), Planes: 4}); err != nil {
		t.Fatal(err)
	}
	crafted := append([]byte(nil), buf.Bytes()...)
	crafted = binary.AppendUvarint(crafted, maxStreamChunkBytes) // huge length
	crafted = binary.AppendUvarint(crafted, 4)                   // planes
	crafted = append(crafted, 0, 0, 0, 0)                        // CRC
	crafted = append(crafted, []byte("tiny")...)
	sr, err := NewStreamReader(bytes.NewReader(crafted))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := sr.Next(nil); err == nil {
		t.Error("huge declared frame over short stream should fail")
	}
	// Over the limit entirely: rejected before any read.
	crafted2 := append([]byte(nil), buf.Bytes()...)
	crafted2 = binary.AppendUvarint(crafted2, maxStreamChunkBytes+1)
	sr2, err := NewStreamReader(bytes.NewReader(crafted2))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := sr2.Next(nil); err == nil || !strings.Contains(err.Error(), "limit") {
		t.Errorf("over-limit frame: got %v, want limit error", err)
	}
	// A planes count >= 2^63 would wrap negative after int conversion and
	// slip past the tiling arithmetic; it must be rejected outright.
	crafted3 := append([]byte(nil), buf.Bytes()...)
	crafted3 = binary.AppendUvarint(crafted3, 4)     // plausible length
	crafted3 = binary.AppendUvarint(crafted3, 1<<63) // absurd planes
	crafted3 = append(crafted3, 0, 0, 0, 0)          // CRC
	crafted3 = append(crafted3, []byte("data")...)   // payload
	sr3, err := NewStreamReader(bytes.NewReader(crafted3))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := sr3.Next(nil); err == nil || !strings.Contains(err.Error(), "plane") {
		t.Errorf("wrapping planes count: got %v, want plane-count error", err)
	}
}

// TestStreamTrailerTamper rewrites trailer bytes of a valid stream and
// checks the reader refuses the index even though every frame was intact.
func TestStreamTrailerTamper(t *testing.T) {
	blob, _, _ := sampleStream(t)
	// The trailer occupies the tail: count+entries+CRC+len+magic. Flip each
	// of the last 24 bytes in turn.
	for i := 1; i <= 24 && i <= len(blob); i++ {
		mut := append([]byte(nil), blob...)
		mut[len(mut)-i] ^= 0xFF
		sr, err := NewStreamReader(bytes.NewReader(mut))
		if err != nil {
			continue
		}
		sawErr := false
		for {
			_, _, err := sr.Next(nil)
			if err == io.EOF {
				break
			}
			if err != nil {
				sawErr = true
				break
			}
		}
		if !sawErr {
			t.Errorf("trailer tamper at -%d went undetected", i)
		}
	}
}

func TestStreamCraftedHugeDims(t *testing.T) {
	for _, dims := range [][3]uint64{
		{3, 1, 1 << 62},
		{1 << 21, 1 << 21, 2},
		{1 << 40, 1, 1},
	} {
		out := []byte(StreamMagic)
		out = binary.LittleEndian.AppendUint16(out, StreamVersion)
		out = binary.AppendUvarint(out, 1)
		out = append(out, 'p')
		out = binary.AppendUvarint(out, dims[0])
		out = binary.AppendUvarint(out, dims[1])
		out = binary.AppendUvarint(out, dims[2])
		out = append(out, make([]byte, 16)...)
		out = binary.AppendUvarint(out, 1)
		if _, err := NewStreamReader(bytes.NewReader(out)); err == nil {
			t.Errorf("dims %v should be rejected", dims)
		}
	}
}
