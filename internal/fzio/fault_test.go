package fzio

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"time"
)

func TestFaultFetcherDeterministicSequence(t *testing.T) {
	blob := make([]byte, 4096)
	for i := range blob {
		blob[i] = byte(i)
	}
	run := func() []bool {
		f := NewFaultFetcher(NewBytesFetcher(blob), FaultConfig{Seed: 42, ErrorRate: 0.5})
		var outcomes []bool
		for i := 0; i < 64; i++ {
			_, err := f.ReadRange(0, 16)
			outcomes = append(outcomes, err == nil)
		}
		return outcomes
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("fault sequence diverged at call %d despite identical seeds", i)
		}
	}
}

func TestFaultFetcherErrorEveryN(t *testing.T) {
	f := NewFaultFetcher(NewBytesFetcher(make([]byte, 64)), FaultConfig{ErrorEveryN: 3})
	var failed int
	for i := 1; i <= 12; i++ {
		_, err := f.ReadRange(0, 8)
		if i%3 == 0 {
			if err == nil {
				t.Fatalf("call %d: want injected error", i)
			}
			if !Transient(err) {
				t.Fatalf("call %d: injected error %v must classify transient", i, err)
			}
			failed++
		} else if err != nil {
			t.Fatalf("call %d: unexpected error %v", i, err)
		}
	}
	injected, _, _, _ := f.Injected()
	if failed != 4 || injected != 4 {
		t.Fatalf("failed=%d injected=%d, want 4/4", failed, injected)
	}
}

func TestFaultFetcherTruncationIsTransientShortRead(t *testing.T) {
	f := NewFaultFetcher(NewBytesFetcher(make([]byte, 64)), FaultConfig{TruncateRate: 1})
	_, err := f.ReadRange(0, 16)
	if !errors.Is(err, io.ErrUnexpectedEOF) || !Transient(err) {
		t.Fatalf("truncation fault = %v, want a transient short-read error", err)
	}
}

func TestFaultFetcherCorruptionFlipsOneBit(t *testing.T) {
	blob := make([]byte, 256)
	f := NewFaultFetcher(NewBytesFetcher(blob), FaultConfig{Seed: 7, CorruptRate: 1})
	out, err := f.ReadRange(0, 256)
	if err != nil {
		t.Fatalf("ReadRange: %v", err)
	}
	diff := 0
	for i := range out {
		if out[i] != blob[i] {
			for b := 0; b < 8; b++ {
				if (out[i]^blob[i])>>b&1 == 1 {
					diff++
				}
			}
		}
	}
	if diff != 1 {
		t.Fatalf("corruption flipped %d bits, want exactly 1", diff)
	}
}

func TestFaultFetcherLatencySpike(t *testing.T) {
	f := NewFaultFetcher(NewBytesFetcher(make([]byte, 64)), FaultConfig{
		LatencyRate: 1, Latency: 20 * time.Millisecond,
	})
	t0 := time.Now()
	if _, err := f.ReadRange(0, 8); err != nil {
		t.Fatalf("ReadRange: %v", err)
	}
	if d := time.Since(t0); d < 20*time.Millisecond {
		t.Fatalf("latency spike not applied: call took %v", d)
	}
	if _, lat, _, _ := f.Injected(); lat != 1 {
		t.Fatalf("latency counter = %d, want 1", lat)
	}
}

// The headline composition: a retrying fetcher over a heavily faulty
// store still serves exact bytes.
func TestRetryOverFaultFetcherBitIdentical(t *testing.T) {
	blob := make([]byte, 1<<16)
	for i := range blob {
		blob[i] = byte(i * 31)
	}
	faulty := NewFaultFetcher(NewBytesFetcher(blob), FaultConfig{
		Seed:         1,
		ErrorRate:    0.3,
		TruncateRate: 0.1,
	})
	sleep := func(time.Duration) {}
	r := NewRetryFetcher(faulty, RetryPolicy{MaxAttempts: 12, Sleep: sleep})
	for off := int64(0); off < int64(len(blob)); off += 4096 {
		got, err := r.ReadRange(off, 4096)
		if err != nil {
			t.Fatalf("ReadRange(%d): %v", off, err)
		}
		if !bytes.Equal(got, blob[off:off+4096]) {
			t.Fatalf("bytes at %d differ from the fault-free artifact", off)
		}
	}
	if r.Retries() == 0 {
		t.Fatal("no retries recorded at a 30% fault rate — injector inert?")
	}
}
