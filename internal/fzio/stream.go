package fzio

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"fzmod/internal/grid"
)

// This file defines the streaming (append-mode) variant of the chunked
// container: where FZMC records an up-front chunk table, FZMS frames each
// chunk as it is produced and defers the index to a trailer, so a writer
// can flush chunks the moment they finish without knowing how many will
// follow or how large they will be. A pure io.Reader can decode the stream
// sequentially from the frames alone; the trailer lets the reader
// cross-check the whole index at end-of-stream (and lets seek-capable
// consumers locate the table without scanning).
//
// Layout:
//
//	"FZMS" ‖ u16 version ‖ pipeline string ‖ uvarint dims X/Y/Z ‖
//	EB bits ‖ RelEB bits ‖ uvarint nominal planes ‖
//	CRC32(prologue)                                        (prologue)
//	{ uvarint length≥1 ‖ uvarint planes ‖ CRC32(payload) ‖ payload }*
//	uvarint 0                                              (end marker)
//	uvarint chunk count ‖
//	{ uvarint length ‖ uvarint planes ‖ CRC32 ‖ hash (v≥2) }* ‖
//	Merkle root (v≥2) ‖
//	CRC32(trailer) ‖ u64 trailer length ‖ "FZME"           (trailer)
//
// The trailer CRC covers the bytes from the chunk count through the last
// table entry (and, for version ≥ 2, the per-chunk SHA-256 leaf hashes
// and the 32-byte Merkle root that follow the entries); the u64 length
// counts the same span plus the trailer CRC, so a consumer holding the
// tail can walk backwards to the table start.

// StreamMagic identifies streaming FZModules containers.
const StreamMagic = "FZMS"

// StreamVersion is the streaming container format version writers emit.
// Version 2 extends each trailer entry with the chunk's SHA-256 leaf
// hash and appends the Merkle root after the entries (see merkle.go and
// docs/FORMAT.md §Integrity); readers accept versions 1 and 2, so v1
// artifacts stay decodable everywhere.
const StreamVersion = 2

// streamVersionLegacy is the pre-integrity trailer layout (no hashes,
// no root) still accepted by every parser.
const streamVersionLegacy = 1

// streamEndMagic terminates a well-formed stream.
const streamEndMagic = "FZME"

// maxStreamChunkBytes bounds a single frame's declared payload length so a
// corrupt length cannot drive an absurd allocation (1 GiB per chunk is far
// beyond any slab the compressor emits).
const maxStreamChunkBytes = 1 << 30

// IsStream reports whether blob starts with the streaming container magic.
// Four bytes of lookahead suffice.
func IsStream(blob []byte) bool {
	return len(blob) >= 4 && string(blob[:4]) == StreamMagic
}

// StreamWriter emits a streaming container chunk by chunk. Create with
// NewStreamWriter (which writes the prologue), call WriteChunk as chunks
// finish, then Close to emit the end marker and index trailer. The writer
// validates that chunk plane extents exactly tile the header geometry.
type StreamWriter struct {
	w       io.Writer
	header  ChunkedHeader
	refs    []ChunkRef
	planes  int // planes covered so far
	written int64
	scratch [binary.MaxVarintLen64]byte
	closed  bool
}

// NewStreamWriter validates the header and writes the stream prologue.
func NewStreamWriter(w io.Writer, h ChunkedHeader) (*StreamWriter, error) {
	if !h.Dims.Valid() {
		return nil, fmt.Errorf("fzio: invalid dims %v", h.Dims)
	}
	out := appendStreamPrologue(nil, h)
	out = binary.LittleEndian.AppendUint32(out, crc32.ChecksumIEEE(out))
	sw := &StreamWriter{w: w, header: h}
	if err := sw.write(out); err != nil {
		return nil, err
	}
	return sw, nil
}

func (sw *StreamWriter) write(b []byte) error {
	n, err := sw.w.Write(b)
	sw.written += int64(n)
	return err
}

func (sw *StreamWriter) writeUvarint(v uint64) error {
	n := binary.PutUvarint(sw.scratch[:], v)
	return sw.write(sw.scratch[:n])
}

// WriteChunk frames one chunk payload covering planes planes of the
// slowest dimension. Payloads must be non-empty (an inner container is
// never empty; zero length is the end-of-chunks marker).
func (sw *StreamWriter) WriteChunk(payload []byte, planes int) error {
	if sw.closed {
		return fmt.Errorf("fzio: WriteChunk on closed stream")
	}
	if len(payload) == 0 {
		return fmt.Errorf("fzio: empty chunk payload")
	}
	if planes <= 0 {
		return fmt.Errorf("fzio: chunk covers %d planes", planes)
	}
	if sw.planes+planes > sw.header.Dims.SlowExtent() {
		return fmt.Errorf("fzio: chunks cover %d planes, field has %d",
			sw.planes+planes, sw.header.Dims.SlowExtent())
	}
	crc := crc32.ChecksumIEEE(payload)
	if err := sw.writeUvarint(uint64(len(payload))); err != nil {
		return err
	}
	if err := sw.writeUvarint(uint64(planes)); err != nil {
		return err
	}
	var crcBuf [4]byte
	binary.LittleEndian.PutUint32(crcBuf[:], crc)
	if err := sw.write(crcBuf[:]); err != nil {
		return err
	}
	if err := sw.write(payload); err != nil {
		return err
	}
	sw.planes += planes
	sw.refs = append(sw.refs, ChunkRef{Length: len(payload), CRC: crc, Planes: planes, Hash: LeafHash(payload)})
	return nil
}

// Close writes the end marker and the index trailer. The chunks written
// must exactly tile the header geometry. Close does not close the
// underlying writer.
func (sw *StreamWriter) Close() error {
	if sw.closed {
		return nil
	}
	if sw.planes != sw.header.Dims.SlowExtent() {
		return fmt.Errorf("fzio: chunks cover %d planes, field has %d",
			sw.planes, sw.header.Dims.SlowExtent())
	}
	sw.closed = true
	if err := sw.writeUvarint(0); err != nil { // end-of-chunks marker
		return err
	}
	trailer, err := appendIndexV(nil, sw.refs, StreamVersion)
	if err != nil {
		return err
	}
	trailer = binary.LittleEndian.AppendUint32(trailer, crc32.ChecksumIEEE(trailer))
	trailer = binary.LittleEndian.AppendUint64(trailer, uint64(len(trailer)))
	trailer = append(trailer, streamEndMagic...)
	return sw.write(trailer)
}

// BytesWritten reports the total bytes emitted so far, prologue included.
func (sw *StreamWriter) BytesWritten() int64 { return sw.written }

// NumChunks reports the chunks framed so far.
func (sw *StreamWriter) NumChunks() int { return len(sw.refs) }

// StreamReader decodes a streaming container sequentially from an
// io.Reader. Create with NewStreamReader (which consumes the prologue),
// then call Next until it returns io.EOF; the reader verifies each frame's
// CRC as it is read and the index trailer once the end marker arrives, so
// an io.EOF from Next means the whole stream checked out.
type StreamReader struct {
	r       *bufio.Reader
	header  ChunkedHeader
	version int
	refs    []ChunkRef
	planes  int
	done    bool
}

// NewStreamReader consumes and validates the stream prologue.
func NewStreamReader(r io.Reader) (*StreamReader, error) {
	br, ok := r.(*bufio.Reader)
	if !ok {
		br = bufio.NewReader(r)
	}
	magic := make([]byte, 6)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("fzio: truncated stream prologue")
	}
	if string(magic[:4]) != StreamMagic {
		return nil, fmt.Errorf("fzio: not a streaming FZModules container")
	}
	version := int(binary.LittleEndian.Uint16(magic[4:]))
	if version != streamVersionLegacy && version != StreamVersion {
		return nil, fmt.Errorf("fzio: unsupported stream version %d", version)
	}
	sr := &StreamReader{r: br, version: version}
	pipeline, err := readStreamString(br)
	if err != nil {
		return nil, err
	}
	sr.header.Pipeline = pipeline
	dims := [3]uint64{}
	nElems := uint64(1)
	for i := range dims {
		v, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("fzio: truncated stream dims")
		}
		dims[i] = v
		// Same overflow-safe product bound as the chunked table: decoders
		// allocate per-chunk output before the trailer is seen.
		if v > maxFieldElems || (v > 0 && nElems > maxFieldElems/v) {
			return nil, fmt.Errorf("fzio: declared field too large")
		}
		if v > 0 {
			nElems *= v
		}
	}
	sr.header.Dims = grid.Dims{X: int(dims[0]), Y: int(dims[1]), Z: int(dims[2])}
	if !sr.header.Dims.Valid() {
		return nil, fmt.Errorf("fzio: invalid dims %v", sr.header.Dims)
	}
	var ebBits [16]byte
	if _, err := io.ReadFull(br, ebBits[:]); err != nil {
		return nil, fmt.Errorf("fzio: truncated stream prologue")
	}
	sr.header.EB = math.Float64frombits(binary.LittleEndian.Uint64(ebBits[:8]))
	sr.header.RelEB = math.Float64frombits(binary.LittleEndian.Uint64(ebBits[8:]))
	nominal, err := binary.ReadUvarint(br)
	if err != nil || nominal > maxFieldElems {
		return nil, fmt.Errorf("fzio: bad nominal plane count")
	}
	sr.header.Planes = int(nominal)
	// The prologue carries its own CRC; verify it against the canonical
	// re-serialization of the parsed fields, so any header corruption that
	// survived parsing still surfaces before chunks are decoded.
	var crcBuf [4]byte
	if _, err := io.ReadFull(br, crcBuf[:]); err != nil {
		return nil, fmt.Errorf("fzio: truncated prologue CRC")
	}
	want := crc32.ChecksumIEEE(appendStreamPrologueV(nil, sr.header, sr.version))
	if binary.LittleEndian.Uint32(crcBuf[:]) != want {
		return nil, fmt.Errorf("fzio: stream prologue CRC mismatch")
	}
	return sr, nil
}

// appendIndexV serializes the chunk-index table in its canonical
// encoding for the given format version — the single definition the
// writer's trailer, the reader's verification and the remote index
// fetcher all share. Version 1 writes count, then length/planes/CRC per
// chunk; version ≥ 2 additionally writes each chunk's leaf hash and,
// after the entries, the Merkle root over them.
func appendIndexV(out []byte, refs []ChunkRef, version int) ([]byte, error) {
	out = binary.AppendUvarint(out, uint64(len(refs)))
	for _, ref := range refs {
		out = binary.AppendUvarint(out, uint64(ref.Length))
		out = binary.AppendUvarint(out, uint64(ref.Planes))
		out = binary.LittleEndian.AppendUint32(out, ref.CRC)
		if version >= 2 {
			out = append(out, ref.Hash[:]...)
		}
	}
	if version >= 2 {
		root, err := merkleRoot(refs)
		if err != nil {
			return nil, err
		}
		out = append(out, root[:]...)
	}
	return out, nil
}

// appendStreamPrologueV serializes the prologue fields (everything the
// CRC covers) in their canonical encoding, stamping the given format
// version.
func appendStreamPrologueV(out []byte, h ChunkedHeader, version int) []byte {
	out = append(out, StreamMagic...)
	out = binary.LittleEndian.AppendUint16(out, uint16(version))
	out = appendString(out, h.Pipeline)
	out = binary.AppendUvarint(out, uint64(h.Dims.X))
	out = binary.AppendUvarint(out, uint64(h.Dims.Y))
	out = binary.AppendUvarint(out, uint64(h.Dims.Z))
	out = binary.LittleEndian.AppendUint64(out, math.Float64bits(h.EB))
	out = binary.LittleEndian.AppendUint64(out, math.Float64bits(h.RelEB))
	out = binary.AppendUvarint(out, uint64(h.Planes))
	return out
}

// appendStreamPrologue is appendStreamPrologueV at the version writers
// emit.
func appendStreamPrologue(out []byte, h ChunkedHeader) []byte {
	return appendStreamPrologueV(out, h, StreamVersion)
}

// Header returns the stream's global metadata.
func (sr *StreamReader) Header() ChunkedHeader { return sr.header }

// NumChunks reports the chunks decoded so far (the final count once Next
// has returned io.EOF).
func (sr *StreamReader) NumChunks() int { return len(sr.refs) }

// Next reads the next chunk frame, verifying its CRC, and returns the
// payload together with the planes it covers. dst is reused when its
// capacity suffices, so a caller cycling one buffer reads the stream with
// no per-chunk allocation. At the end marker Next verifies the index
// trailer against every frame seen and returns io.EOF.
func (sr *StreamReader) Next(dst []byte) ([]byte, int, error) {
	if sr.done {
		return nil, 0, io.EOF
	}
	length, err := binary.ReadUvarint(sr.r)
	if err != nil {
		return nil, 0, fmt.Errorf("fzio: truncated stream: missing frame header")
	}
	if length == 0 {
		sr.done = true
		if err := sr.verifyTrailer(); err != nil {
			return nil, 0, err
		}
		return nil, 0, io.EOF
	}
	if length > maxStreamChunkBytes {
		return nil, 0, fmt.Errorf("fzio: chunk length %d exceeds limit", length)
	}
	planes, err := binary.ReadUvarint(sr.r)
	if err != nil {
		return nil, 0, fmt.Errorf("fzio: truncated chunk planes")
	}
	// Bound before the int conversion: a crafted >= 2^63 value would wrap
	// negative and slip past the tiling check below.
	if planes == 0 || planes > maxFieldElems {
		return nil, 0, fmt.Errorf("fzio: bad chunk plane count %d", planes)
	}
	if sr.planes+int(planes) > sr.header.Dims.SlowExtent() {
		return nil, 0, fmt.Errorf("fzio: chunks cover %d planes, field has %d",
			sr.planes+int(planes), sr.header.Dims.SlowExtent())
	}
	var crcBuf [4]byte
	if _, err := io.ReadFull(sr.r, crcBuf[:]); err != nil {
		return nil, 0, fmt.Errorf("fzio: truncated chunk CRC")
	}
	crc := binary.LittleEndian.Uint32(crcBuf[:])
	payload, err := readN(sr.r, dst, int(length))
	if err != nil {
		return nil, 0, fmt.Errorf("fzio: truncated chunk payload: %w", err)
	}
	if crc32.ChecksumIEEE(payload) != crc {
		return nil, 0, fmt.Errorf("fzio: chunk %d CRC mismatch (corrupt stream)", len(sr.refs))
	}
	sr.planes += int(planes)
	ref := ChunkRef{Length: int(length), CRC: crc, Planes: int(planes)}
	if sr.version >= 2 {
		// Hash what was actually read: a tampered frame whose CRC still
		// matches (32 bits are forgeable) diverges from the trailer's leaf
		// hash and Merkle root at verifyTrailer.
		ref.Hash = LeafHash(payload)
	}
	sr.refs = append(sr.refs, ref)
	return payload, int(planes), nil
}

// verifyTrailer reads the index trailer and checks it against the frames
// already decoded: same count, lengths, plane extents and CRCs, plus the
// trailer's own CRC, length record and end magic.
func (sr *StreamReader) verifyTrailer() error {
	if sr.planes != sr.header.Dims.SlowExtent() {
		return fmt.Errorf("fzio: chunks cover %d planes, field has %d",
			sr.planes, sr.header.Dims.SlowExtent())
	}
	// Re-serialize the expected table — for v2 including the leaf hashes
	// of the payloads actually read and the Merkle root over them — and
	// compare byte-for-byte with what the stream carries; any divergence
	// (count, entry, CRC, hash, root) surfaces.
	want, err := appendIndexV(nil, sr.refs, sr.version)
	if err != nil {
		return err
	}
	got := make([]byte, len(want))
	if _, err := io.ReadFull(sr.r, got); err != nil {
		return fmt.Errorf("fzio: truncated stream trailer")
	}
	for i := range want {
		if got[i] != want[i] {
			return fmt.Errorf("fzio: stream trailer disagrees with frames at byte %d", i)
		}
	}
	var tail [16]byte // trailer CRC (4) + trailer length (8) + end magic (4)
	if _, err := io.ReadFull(sr.r, tail[:]); err != nil {
		return fmt.Errorf("fzio: truncated stream trailer")
	}
	if binary.LittleEndian.Uint32(tail[:4]) != crc32.ChecksumIEEE(want) {
		return fmt.Errorf("fzio: stream trailer CRC mismatch")
	}
	if got := binary.LittleEndian.Uint64(tail[4:12]); got != uint64(len(want)+4) {
		return fmt.Errorf("fzio: stream trailer length %d, want %d", got, len(want)+4)
	}
	if string(tail[12:]) != streamEndMagic {
		return fmt.Errorf("fzio: missing stream end magic")
	}
	return nil
}

// readN reads exactly n bytes into dst (reused when capacity allows),
// growing incrementally so a corrupt length cannot force a huge up-front
// allocation: memory committed never exceeds the bytes actually present.
func readN(r io.Reader, dst []byte, n int) ([]byte, error) {
	const step = 1 << 20
	if cap(dst) >= n {
		dst = dst[:n]
		_, err := io.ReadFull(r, dst)
		return dst, err
	}
	dst = dst[:0]
	for len(dst) < n {
		k := n - len(dst)
		if k > step {
			k = step
		}
		lo := len(dst)
		dst = append(dst, make([]byte, k)...)
		if _, err := io.ReadFull(r, dst[lo:]); err != nil {
			return nil, err
		}
	}
	return dst, nil
}

// readStreamString reads a uvarint-prefixed string from the stream.
func readStreamString(r *bufio.Reader) (string, error) {
	n, err := binary.ReadUvarint(r)
	if err != nil || n > 1<<16 {
		return "", fmt.Errorf("fzio: bad string length")
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", fmt.Errorf("fzio: truncated string")
	}
	return string(buf), nil
}

// ReassembleChunked reads an entire stream and re-serializes it as a
// random-access chunked (FZMC) container. Because both formats carry the
// identical header fields and chunk payloads, a stream produced from the
// same per-chunk compression is bit-identical, after reassembly, to the
// container the in-memory chunked path emits.
func ReassembleChunked(r io.Reader) ([]byte, error) {
	sr, err := NewStreamReader(r)
	if err != nil {
		return nil, err
	}
	var chunks [][]byte
	var planes []int
	for {
		payload, k, err := sr.Next(nil)
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		chunks = append(chunks, payload)
		planes = append(planes, k)
	}
	return MarshalChunked(sr.Header(), chunks, planes)
}
