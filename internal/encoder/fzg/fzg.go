// Package fzg implements the FZ-GPU-style primary lossless encoder used by
// FZMod-Speed (§3.3): quantization codes are bit-shuffled within fixed-size
// tiles so that the near-zero residuals produced by a good predictor
// concentrate into all-zero bit-planes, then a per-tile dictionary bitmap
// eliminates the zero sub-blocks. The trade the paper describes holds by
// construction: one cheap pass with no tree or histogram (much faster than
// Huffman) at the cost of a coarser, block-granular compression ratio.
package fzg

import (
	"encoding/binary"
	"fmt"
	"math/bits"

	"fzmod/internal/device"
	"fzmod/internal/kernels"
)

// tileValues is the number of uint16 codes per independent tile.
const tileValues = 1024

// planeBytes is the per-plane byte count of a full tile (1024 values / 8).
const planeBytes = tileValues / 8

// tileBytes is the shuffled size of one tile (16 planes).
const tileBytes = 16 * planeBytes

// blockBytes is the zero-elimination granularity.
const blockBytes = 32

// blocksPerTile = 2048/32 = 64, so one uint64 bitmap per tile.
const blocksPerTile = tileBytes / blockBytes

// Encode compresses codes. center is the alphabet value representing a
// zero residual (the quantizer radius): codes are zigzag-remapped (wrapping, a
// bijection on uint16) around it
// before shuffling so that near-perfect predictions concentrate into the
// low bit-planes, which is where the dictionary stage gets its wins — the
// fused FZ-GPU kernel performs the same recentering inline after its
// Lorenzo stage. Pass center 0 to encode raw values.
//
// Layout: uvarint(n) ‖ uvarint(center) ‖ bitmaps (8 B per tile) ‖
// concatenated nonzero 32-byte blocks. Tiles are processed in parallel.
func Encode(p *device.Platform, place device.Place, codes []uint16, center int) []byte {
	n := len(codes)
	nTiles := (n + tileValues - 1) / tileValues
	bitmaps := make([]uint64, nTiles)
	shuffled := make([]byte, nTiles*tileBytes)

	p.LaunchGrid(place, nTiles, func(lo, hi int) {
		var tile [tileValues]uint16
		for t := lo; t < hi; t++ {
			start, end := t*tileValues, (t+1)*tileValues
			if end > n {
				end = n
			}
			if center == 0 {
				copy(tile[:], codes[start:end])
			} else {
				for i, c := range codes[start:end] {
					tile[i] = kernels.ZigZag16(int16(c - uint16(center)))
				}
			}
			for i := end - start; i < tileValues; i++ {
				tile[i] = 0
			}
			sh := kernels.Bitshuffle(tile[:])
			copy(shuffled[t*tileBytes:], sh)
			var bm uint64
			for b := 0; b < blocksPerTile; b++ {
				blk := sh[b*blockBytes : (b+1)*blockBytes]
				for _, by := range blk {
					if by != 0 {
						bm |= 1 << uint(b)
						break
					}
				}
			}
			bitmaps[t] = bm
		}
	})

	// Offsets of each tile's payload via popcount prefix sum.
	sizes := make([]uint32, nTiles)
	for t, bm := range bitmaps {
		sizes[t] = uint32(bits.OnesCount64(bm) * blockBytes)
	}
	offsets, total := kernels.ExclusiveScan(p, place, sizes)

	out := binary.AppendUvarint(nil, uint64(n))
	out = binary.AppendUvarint(out, uint64(center))
	headLen := len(out)
	out = append(out, make([]byte, nTiles*8+int(total))...)
	for t, bm := range bitmaps {
		binary.LittleEndian.PutUint64(out[headLen+8*t:], bm)
	}
	payload := headLen + nTiles*8
	p.LaunchGrid(place, nTiles, func(lo, hi int) {
		for t := lo; t < hi; t++ {
			dst := payload + int(offsets[t])
			bm := bitmaps[t]
			src := t * tileBytes
			for b := 0; b < blocksPerTile; b++ {
				if bm&(1<<uint(b)) != 0 {
					copy(out[dst:dst+blockBytes], shuffled[src+b*blockBytes:])
					dst += blockBytes
				}
			}
		}
	})
	return out
}

// Decode inverts Encode.
func Decode(p *device.Platform, place device.Place, blob []byte) ([]uint16, error) {
	n64, k := binary.Uvarint(blob)
	if k <= 0 {
		return nil, fmt.Errorf("fzg: truncated header")
	}
	n := int(n64)
	c64, k2 := binary.Uvarint(blob[k:])
	if k2 <= 0 {
		return nil, fmt.Errorf("fzg: truncated center field")
	}
	k += k2
	center := int(c64)
	nTiles := (n + tileValues - 1) / tileValues
	if len(blob) < k+nTiles*8 {
		return nil, fmt.Errorf("fzg: stream shorter than bitmap table")
	}
	bitmaps := make([]uint64, nTiles)
	sizes := make([]uint32, nTiles)
	for t := range bitmaps {
		bitmaps[t] = binary.LittleEndian.Uint64(blob[k+8*t:])
		sizes[t] = uint32(bits.OnesCount64(bitmaps[t]) * blockBytes)
	}
	offsets, total := kernels.ExclusiveScan(p, place, sizes)
	payload := k + nTiles*8
	if len(blob) < payload+int(total) {
		return nil, fmt.Errorf("fzg: stream shorter than payload (%d < %d)", len(blob), payload+int(total))
	}

	out := make([]uint16, n)
	p.LaunchGrid(place, nTiles, func(lo, hi int) {
		var sh [tileBytes]byte
		for t := lo; t < hi; t++ {
			for i := range sh {
				sh[i] = 0
			}
			src := payload + int(offsets[t])
			bm := bitmaps[t]
			for b := 0; b < blocksPerTile; b++ {
				if bm&(1<<uint(b)) != 0 {
					copy(sh[b*blockBytes:(b+1)*blockBytes], blob[src:])
					src += blockBytes
				}
			}
			vals := kernels.Unbitshuffle(sh[:], tileValues)
			start, end := t*tileValues, (t+1)*tileValues
			if end > n {
				end = n
			}
			if center == 0 {
				copy(out[start:end], vals[:end-start])
			} else {
				for i, v := range vals[:end-start] {
					out[start+i] = uint16(kernels.UnZigZag16(v)) + uint16(center)
				}
			}
		}
	})
	return out, nil
}

// CompressedSize reports what Encode would produce without materializing
// it, for ratio estimation.
func CompressedSize(codes []uint16, center int) int {
	n := len(codes)
	nTiles := (n + tileValues - 1) / tileValues
	size := 12 + nTiles*8 // varint bounds + bitmaps
	var tile [tileValues]uint16
	for t := 0; t < nTiles; t++ {
		start, end := t*tileValues, (t+1)*tileValues
		if end > n {
			end = n
		}
		if center == 0 {
			copy(tile[:], codes[start:end])
		} else {
			for i, c := range codes[start:end] {
				tile[i] = kernels.ZigZag16(int16(c - uint16(center)))
			}
		}
		for i := end - start; i < tileValues; i++ {
			tile[i] = 0
		}
		sh := kernels.Bitshuffle(tile[:])
		for b := 0; b < blocksPerTile; b++ {
			blk := sh[b*blockBytes : (b+1)*blockBytes]
			for _, by := range blk {
				if by != 0 {
					size += blockBytes
					break
				}
			}
		}
	}
	return size
}
