package fzg

import (
	"math/rand"
	"testing"
	"testing/quick"

	"fzmod/internal/device"
)

var tp = device.NewTestPlatform()

func roundtrip(t *testing.T, codes []uint16) []byte {
	t.Helper()
	return roundtripC(t, codes, 0)
}

func roundtripC(t *testing.T, codes []uint16, center int) []byte {
	t.Helper()
	blob := Encode(tp, device.Accel, codes, center)
	got, err := Decode(tp, device.Accel, blob)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if len(got) != len(codes) {
		t.Fatalf("len = %d, want %d", len(got), len(codes))
	}
	for i := range codes {
		if got[i] != codes[i] {
			t.Fatalf("mismatch at %d: %d vs %d", i, got[i], codes[i])
		}
	}
	return blob
}

func TestRoundtripSizes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{0, 1, 7, 1023, 1024, 1025, 4096, 100_000} {
		codes := make([]uint16, n)
		for i := range codes {
			codes[i] = uint16(rng.Intn(1024))
		}
		roundtrip(t, codes)
	}
}

func TestCompressesNearZeroResiduals(t *testing.T) {
	// Predictor-like output: values clustered tightly around 512.
	rng := rand.New(rand.NewSource(2))
	codes := make([]uint16, 200_000)
	for i := range codes {
		codes[i] = uint16(512 + rng.Intn(3) - 1)
	}
	blob := roundtripC(t, codes, 512)
	ratio := float64(2*len(codes)) / float64(len(blob))
	if ratio < 3 {
		t.Errorf("ratio on near-constant codes = %.2f, want ≥ 3", ratio)
	}
	// Without recentering the same codes barely compress — the recenter
	// step is load-bearing, as in the fused FZ-GPU kernel.
	raw := roundtripC(t, codes, 0)
	if len(raw) < 2*len(blob) {
		t.Errorf("recentering should shrink stream ≥ 2x: %d vs %d", len(raw), len(blob))
	}
}

func TestAllZeros(t *testing.T) {
	codes := make([]uint16, 50_000)
	blob := roundtrip(t, codes)
	// Only header + bitmaps remain.
	if len(blob) > 12+8*((len(codes)+1023)/1024) {
		t.Errorf("all-zero stream %d bytes, want bitmaps only", len(blob))
	}
}

func TestIncompressibleDataDoesNotExplode(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	codes := make([]uint16, 100_000)
	for i := range codes {
		codes[i] = uint16(rng.Uint32())
	}
	blob := roundtrip(t, codes)
	nTiles := (len(codes) + 1023) / 1024
	// Worst case: every padded tile fully materialized plus bitmaps.
	if len(blob) > nTiles*2048+8*nTiles+16 {
		t.Errorf("random data expanded beyond tile+bitmap overhead: %d bytes", len(blob))
	}
}

func TestCompressedSizeMatchesEncode(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	codes := make([]uint16, 30_000)
	for i := range codes {
		if rng.Float64() < 0.9 {
			codes[i] = 512
		} else {
			codes[i] = uint16(rng.Intn(1024))
		}
	}
	blob := Encode(tp, device.Accel, codes, 512)
	est := CompressedSize(codes, 512)
	// Estimate uses the varint upper bound (12); actual header is smaller.
	if diff := est - len(blob); diff < 0 || diff > 12 {
		t.Errorf("CompressedSize = %d, actual %d", est, len(blob))
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode(tp, device.Accel, nil); err == nil {
		t.Error("empty blob should fail")
	}
	codes := make([]uint16, 5000)
	for i := range codes {
		codes[i] = uint16(i)
	}
	blob := Encode(tp, device.Accel, codes, 0)
	if _, err := Decode(tp, device.Accel, blob[:12]); err == nil {
		t.Error("truncated bitmap table should fail")
	}
	if _, err := Decode(tp, device.Accel, blob[:len(blob)-5]); err == nil {
		t.Error("truncated payload should fail")
	}
}

func TestPropertyRoundtrip(t *testing.T) {
	for _, center := range []int{0, 512} {
		center := center
		f := func(codes []uint16) bool {
			blob := Encode(tp, device.Accel, codes, center)
			got, err := Decode(tp, device.Accel, blob)
			if err != nil || len(got) != len(codes) {
				return false
			}
			for i := range codes {
				if got[i] != codes[i] {
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
			t.Errorf("center %d: %v", center, err)
		}
	}
}
