package huffman

import (
	"encoding/binary"
	"math/rand"
	"testing"
	"testing/quick"

	"fzmod/internal/device"
	"fzmod/internal/kernels/dispatch"
)

var tp = device.NewTestPlatform()

func histOf(codes []uint16, bins int) []uint32 {
	h := make([]uint32, bins)
	for _, c := range codes {
		h[c]++
	}
	return h
}

func genSkewed(n int, seed int64) []uint16 {
	rng := rand.New(rand.NewSource(seed))
	codes := make([]uint16, n)
	for i := range codes {
		r := rng.Float64()
		switch {
		case r < 0.7:
			codes[i] = 512
		case r < 0.85:
			codes[i] = uint16(510 + rng.Intn(5))
		default:
			codes[i] = uint16(rng.Intn(1024))
		}
	}
	return codes
}

func TestRoundtripSkewed(t *testing.T) {
	codes := genSkewed(200_000, 1)
	blob, err := Compress(tp, device.Host, codes, histOf(codes, 1024))
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decompress(tp, device.Host, blob)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(codes) {
		t.Fatalf("len = %d, want %d", len(got), len(codes))
	}
	for i := range codes {
		if got[i] != codes[i] {
			t.Fatalf("mismatch at %d: %d vs %d", i, got[i], codes[i])
		}
	}
	if len(blob) >= 2*len(codes) {
		t.Errorf("no compression achieved: %d bytes for %d codes", len(blob), len(codes))
	}
}

func TestCompressionBeatsRawOnSkewedData(t *testing.T) {
	codes := genSkewed(100_000, 2)
	blob, err := Compress(tp, device.Host, codes, histOf(codes, 1024))
	if err != nil {
		t.Fatal(err)
	}
	// 70% of symbols are one value → entropy ≪ 16 bits/sym; expect ≥ 2.5x.
	if ratio := float64(2*len(codes)) / float64(len(blob)); ratio < 2.5 {
		t.Errorf("ratio = %.2f, want ≥ 2.5", ratio)
	}
}

func TestRoundtripUniform(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	codes := make([]uint16, 70_000)
	for i := range codes {
		codes[i] = uint16(rng.Intn(256))
	}
	blob, err := Compress(tp, device.Host, codes, histOf(codes, 256))
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decompress(tp, device.Host, blob)
	if err != nil {
		t.Fatal(err)
	}
	for i := range codes {
		if got[i] != codes[i] {
			t.Fatalf("mismatch at %d", i)
		}
	}
}

func TestRoundtripTinyInputs(t *testing.T) {
	for _, codes := range [][]uint16{
		{},
		{0},
		{5},
		{1, 1, 1, 1},
		{0, 1},
	} {
		bins := 8
		h := histOf(codes, bins)
		if len(codes) == 0 {
			h[0] = 1 // codec needs at least one symbol
		}
		blob, err := Compress(tp, device.Host, codes, h)
		if err != nil {
			t.Fatalf("%v: %v", codes, err)
		}
		got, err := Decompress(tp, device.Host, blob)
		if err != nil {
			t.Fatalf("%v: %v", codes, err)
		}
		if len(got) != len(codes) {
			t.Fatalf("%v: len %d", codes, len(got))
		}
		for i := range codes {
			if got[i] != codes[i] {
				t.Fatalf("%v: mismatch at %d", codes, i)
			}
		}
	}
}

func TestSingleSymbolAlphabet(t *testing.T) {
	codes := make([]uint16, 10_000)
	for i := range codes {
		codes[i] = 7
	}
	blob, err := Compress(tp, device.Host, codes, histOf(codes, 16))
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decompress(tp, device.Host, blob)
	if err != nil {
		t.Fatal(err)
	}
	for i := range codes {
		if got[i] != 7 {
			t.Fatalf("mismatch at %d", i)
		}
	}
	// 1 bit/symbol + headers.
	if len(blob) > len(codes)/8+200 {
		t.Errorf("single-symbol stream too large: %d bytes", len(blob))
	}
}

func TestMissingSymbolReported(t *testing.T) {
	codes := []uint16{1, 2, 3}
	h := []uint32{0, 5, 5, 0} // symbol 3 missing from histogram
	if _, err := Compress(tp, device.Host, codes, h); err == nil {
		t.Error("symbol absent from histogram must be an error")
	}
}

func TestBuildErrors(t *testing.T) {
	if _, err := Build(nil); err == nil {
		t.Error("empty alphabet should fail")
	}
	if _, err := Build(make([]uint32, 4)); err == nil {
		t.Error("all-zero histogram should fail")
	}
	if _, err := Build(make([]uint32, 1<<17)); err == nil {
		t.Error("oversized alphabet should fail")
	}
}

func TestTableRoundtrip(t *testing.T) {
	codes := genSkewed(50_000, 4)
	c, err := Build(histOf(codes, 1024))
	if err != nil {
		t.Fatal(err)
	}
	tbl := c.SerializeTable()
	c2, n, err := ParseTable(tbl)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(tbl) {
		t.Errorf("ParseTable consumed %d of %d bytes", n, len(tbl))
	}
	if c2.Alphabet() != c.Alphabet() {
		t.Fatal("alphabet mismatch")
	}
	for s := 0; s < c.Alphabet(); s++ {
		if c.CodeLen(uint16(s)) != c2.CodeLen(uint16(s)) {
			t.Fatalf("length mismatch at symbol %d", s)
		}
	}
}

func TestParseTableCorrupt(t *testing.T) {
	for _, blob := range [][]byte{
		nil,
		{0},
		{255, 255, 255, 255, 255, 255, 255, 255, 255, 255}, // huge varint
		{4, 10, 3}, // run overflow: claims 10 symbols of alphabet 4
		{2, 1, 99}, // code length 99 > max
		{8, 2, 3},  // truncated: only 2 of 8 lengths
	} {
		if _, _, err := ParseTable(blob); err == nil {
			t.Errorf("ParseTable(%v) should fail", blob)
		}
	}
}

func TestDecodeCorruptStream(t *testing.T) {
	codes := genSkewed(1000, 5)
	blob, err := Compress(tp, device.Host, codes, histOf(codes, 1024))
	if err != nil {
		t.Fatal(err)
	}
	// Truncate payload.
	if _, err := Decompress(tp, device.Host, blob[:len(blob)/2]); err == nil {
		t.Error("truncated stream should fail or be detected")
	}
}

func TestExpectedBitsMatchesActual(t *testing.T) {
	codes := genSkewed(80_000, 6)
	h := histOf(codes, 1024)
	c, err := Build(h)
	if err != nil {
		t.Fatal(err)
	}
	payload, err := c.Encode(tp, device.Host, codes)
	if err != nil {
		t.Fatal(err)
	}
	wantBits := c.ExpectedBits(h)
	// Payload has per-chunk byte alignment + headers; allow that slack.
	nChunks := (len(codes) + chunkSize - 1) / chunkSize
	maxOverhead := uint64(nChunks*8+32) * 8
	gotBits := uint64(len(payload)) * 8
	if gotBits < wantBits || gotBits > wantBits+maxOverhead {
		t.Errorf("payload bits = %d, expected ~%d", gotBits, wantBits)
	}
}

func TestDeepTreeLengthLimiting(t *testing.T) {
	// Fibonacci-like frequencies force maximal depth; the rebuild loop
	// must cap lengths at maxCodeLen.
	h := make([]uint32, 64)
	a, b := uint32(1), uint32(1)
	for i := range h {
		h[i] = a
		a, b = b, a+b
		if a > 1<<30 {
			a, b = 1, 1
		}
	}
	c, err := Build(h)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 64; s++ {
		if c.CodeLen(uint16(s)) > maxCodeLen {
			t.Fatalf("symbol %d has length %d > %d", s, c.CodeLen(uint16(s)), maxCodeLen)
		}
	}
	// And it still roundtrips.
	rng := rand.New(rand.NewSource(7))
	codes := make([]uint16, 5000)
	for i := range codes {
		codes[i] = uint16(rng.Intn(64))
	}
	blob, err := Compress(tp, device.Host, codes, histOf(codes, 64))
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decompress(tp, device.Host, blob)
	if err != nil {
		t.Fatal(err)
	}
	for i := range codes {
		if got[i] != codes[i] {
			t.Fatalf("mismatch at %d", i)
		}
	}
}

func TestPropertyRoundtrip(t *testing.T) {
	f := func(raw []byte) bool {
		if len(raw) == 0 {
			return true
		}
		codes := make([]uint16, len(raw))
		for i, b := range raw {
			codes[i] = uint16(b) // alphabet 256
		}
		blob, err := Compress(tp, device.Host, codes, histOf(codes, 256))
		if err != nil {
			return false
		}
		got, err := Decompress(tp, device.Host, blob)
		if err != nil || len(got) != len(codes) {
			return false
		}
		for i := range codes {
			if got[i] != codes[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestMultiChunkBoundary(t *testing.T) {
	// Exactly at, below and above the chunk boundary.
	for _, n := range []int{chunkSize - 1, chunkSize, chunkSize + 1, 2*chunkSize + 17} {
		codes := genSkewed(n, int64(n))
		blob, err := Compress(tp, device.Host, codes, histOf(codes, 1024))
		if err != nil {
			t.Fatal(err)
		}
		got, err := Decompress(tp, device.Host, blob)
		if err != nil {
			t.Fatal(err)
		}
		for i := range codes {
			if got[i] != codes[i] {
				t.Fatalf("n=%d mismatch at %d", n, i)
			}
		}
	}
}

// genDeepCodes returns a histogram whose Fibonacci-like frequencies force
// canonical code lengths past tableBits, plus a symbol stream that uses
// every symbol — including the rare deep ones — so decoding must exercise
// the canonical slow path of the reservoir decoder.
func genDeepCodes(t *testing.T, nSyms, n int, seed int64) ([]uint16, []uint32) {
	t.Helper()
	h := make([]uint32, nSyms)
	a, b := uint32(1), uint32(1)
	for i := range h {
		h[i] = a
		if a < 1<<28 {
			a, b = b, a+b
		}
	}
	c, err := Build(h)
	if err != nil {
		t.Fatal(err)
	}
	if c.maxLen <= tableBits {
		t.Fatalf("deep histogram built maxLen %d, need > %d to hit the slow path", c.maxLen, tableBits)
	}
	rng := rand.New(rand.NewSource(seed))
	codes := make([]uint16, n)
	for i := range codes {
		if rng.Intn(16) == 0 {
			codes[i] = uint16(rng.Intn(nSyms)) // uniform: hits deep codes
		} else {
			codes[i] = uint16(nSyms - 1 - rng.Intn(4)) // frequent short codes
		}
	}
	return codes, h
}

func TestSlowPathDeepCodesRoundtrip(t *testing.T) {
	// Crosses a chunk boundary so the reservoir decoder also runs its
	// scalar tail on a mid-stream chunk end.
	codes, h := genDeepCodes(t, 24, chunkSize+4097, 11)
	blob, err := Compress(tp, device.Host, codes, h)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decompress(tp, device.Host, blob)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(codes) {
		t.Fatalf("len = %d, want %d", len(got), len(codes))
	}
	for i := range codes {
		if got[i] != codes[i] {
			t.Fatalf("mismatch at %d: %d vs %d", i, got[i], codes[i])
		}
	}
}

func TestDecodeCorruptChunkEndsMidRefill(t *testing.T) {
	codes, h := genDeepCodes(t, 24, 4096, 13)
	c, err := Build(h)
	if err != nil {
		t.Fatal(err)
	}
	payload, err := c.Encode(tp, device.Host, codes)
	if err != nil {
		t.Fatal(err)
	}
	// Strip the intact container framing down to the raw chunk bits.
	total, k := binary.Uvarint(payload)
	pos := k
	nChunks, k := binary.Uvarint(payload[pos:])
	pos += k
	if total != uint64(len(codes)) || nChunks != 1 {
		t.Fatalf("unexpected framing: total=%d chunks=%d", total, nChunks)
	}
	_, k = binary.Uvarint(payload[pos:]) // chunk size
	pos += k
	chunk := payload[pos:]
	// Rebuild a consistent stream whose single chunk is cut to a handful
	// of bytes: the reservoir decoder exhausts the stream inside its
	// byte-wise tail refill and must report corruption, never invent
	// symbols or read past the buffer.
	for _, keep := range []int{1, 3, 5, 7} {
		if keep >= len(chunk) {
			t.Fatalf("chunk only %d bytes", len(chunk))
		}
		trunc := binary.AppendUvarint(nil, total)
		trunc = binary.AppendUvarint(trunc, 1)
		trunc = binary.AppendUvarint(trunc, uint64(keep))
		trunc = append(trunc, chunk[:keep]...)
		if _, err := c.Decode(tp, device.Host, trunc); err == nil {
			t.Errorf("keep=%d: truncated chunk must fail to decode", keep)
		}
	}
}

func TestEncodeErrorReturnsAllSlabs(t *testing.T) {
	// A symbol without a code in a late chunk fails Encode after earlier
	// chunks already checked out slabs; every slab must come back.
	p := device.NewTestPlatform()
	codes := make([]uint16, 3*chunkSize)
	codes[len(codes)-1] = 9 // histogram below misses it
	h := histOf(codes[:len(codes)-1], 16)
	c, err := Build(h)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Encode(p, device.Host, codes); err == nil {
		t.Fatal("uncoded symbol must fail Encode")
	}
	if st := p.ScratchPool().Stats(); st.Gets != st.Puts {
		t.Errorf("encode error path leaked pool slabs: %d gets, %d puts", st.Gets, st.Puts)
	}
}

func benchCodes(n int) ([]uint16, []uint32) {
	rng := rand.New(rand.NewSource(42))
	codes := make([]uint16, n)
	for i := range codes {
		r := rng.Float64()
		switch {
		case r < 0.8:
			codes[i] = 512
		case r < 0.95:
			codes[i] = uint16(508 + rng.Intn(9))
		default:
			codes[i] = uint16(rng.Intn(1024))
		}
	}
	return codes, histOf(codes, 1024)
}

// benchKernelTiers runs f once per kernel implementation tier this build
// supports, so one run reports the sizing pre-pass (dispatch.SumLengths)
// under both the vector tier and the purego fallback.
func benchKernelTiers(b *testing.B, f func(b *testing.B)) {
	b.Helper()
	defer func() { _ = dispatch.Use("auto") }()
	for _, tier := range dispatch.Tiers() {
		if err := dispatch.Use(tier); err != nil {
			b.Fatalf("Use(%q): %v", tier, err)
		}
		b.Run(tier, f)
	}
}

func BenchmarkHuffmanEncode(b *testing.B) {
	codes, h := benchCodes(1 << 21)
	c, err := Build(h)
	if err != nil {
		b.Fatal(err)
	}
	benchKernelTiers(b, func(b *testing.B) {
		b.SetBytes(int64(2 * len(codes)))
		for i := 0; i < b.N; i++ {
			if _, err := c.Encode(tp, device.Host, codes); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkHuffmanDecode(b *testing.B) {
	codes, h := benchCodes(1 << 21)
	c, err := Build(h)
	if err != nil {
		b.Fatal(err)
	}
	payload, err := c.Encode(tp, device.Host, codes)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(2 * len(codes)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Decode(tp, device.Host, payload); err != nil {
			b.Fatal(err)
		}
	}
}
