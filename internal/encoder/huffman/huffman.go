// Package huffman implements the canonical Huffman codec used as the
// primary lossless encoder of FZMod-Default and FZMod-Quality. Following
// the paper's design (§3.3: "CPU-based Huffman encoding due to low GPU
// performance of Huffman encoders"), encoding is chunked so independent
// chunks are processed in parallel on the host, and decoding uses a
// table-accelerated canonical decoder per chunk.
//
// The codec is built from a histogram of the quantization codes (provided
// by the histogram module) and never inspects the code stream itself, so an
// inaccurate histogram that assigns zero frequency to an occurring symbol
// is detected and reported as an error rather than producing a corrupt
// stream.
package huffman

import (
	"encoding/binary"
	"fmt"
	"sort"
	"sync"

	"fzmod/internal/device"
)

// maxCodeLen bounds code lengths; histograms inducing longer codes are
// rescaled (halved frequencies) until the bound holds.
const maxCodeLen = 32

// tableBits sizes the fast decode table: codes up to this length decode in
// one lookup, longer ones fall back to the canonical bit-by-bit path.
const tableBits = 12

// chunkSize is the number of symbols encoded per independent chunk.
const chunkSize = 1 << 16

// Codec holds a canonical Huffman code for a dense alphabet [0, n).
type Codec struct {
	lengths []uint8  // per symbol; 0 = symbol absent
	codes   []uint32 // canonical code bits (MSB-first semantics)

	// Canonical decode state.
	minLen, maxLen int
	firstCode      []uint32 // by length
	firstIdx       []int    // by length
	symByIdx       []uint16
	fast           []fastEntry
}

type fastEntry struct {
	sym uint16
	len uint8
}

// buildScratch holds the transient arrays of one codebook construction
// (frequencies, parent links, heap). They are recycled through a
// package-level pool: a chunked or streaming run builds one codebook per
// chunk, and without recycling the tree scratch dominates steady-state
// allocation.
type buildScratch struct {
	freqs  []uint64
	parent []int32
	heap   nodeHeap
}

var buildPool = sync.Pool{New: func() any { return new(buildScratch) }}

// grow returns s[:n], reallocating only when capacity is short.
func grow[T any](s []T, n int) []T {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]T, n)
}

// Build constructs a codec from a histogram. Every symbol with a nonzero
// count receives a code; at least one symbol must be present.
func Build(hist []uint32) (*Codec, error) {
	if len(hist) == 0 || len(hist) > 1<<16 {
		return nil, fmt.Errorf("huffman: alphabet size %d out of range", len(hist))
	}
	sc := buildPool.Get().(*buildScratch)
	defer buildPool.Put(sc)
	sc.freqs = grow(sc.freqs, len(hist))
	freqs := sc.freqs
	nonzero := 0
	for i, h := range hist {
		freqs[i] = uint64(h)
		if h > 0 {
			nonzero++
		}
	}
	if nonzero == 0 {
		return nil, fmt.Errorf("huffman: empty histogram")
	}
	lengths := buildLengths(freqs, sc)
	for maxOf(lengths) > maxCodeLen {
		for i := range freqs {
			if freqs[i] > 1 {
				freqs[i] = (freqs[i] + 1) / 2
			}
		}
		lengths = buildLengths(freqs, sc)
	}
	return fromLengths(lengths)
}

func maxOf(lengths []uint8) int {
	m := 0
	for _, l := range lengths {
		if int(l) > m {
			m = int(l)
		}
	}
	return m
}

// node heap for tree construction. A hand-rolled binary min-heap rather
// than container/heap: the interface-based API boxes every Push/Pop
// element, which dominated allocation counts on the chunked hot path. The
// comparator is a strict total order (idx is unique), so the pop sequence —
// and therefore the tree — is identical to the boxed implementation.
type hnode struct {
	freq uint64
	idx  int // < len(alphabet): leaf symbol; else internal
}
type nodeHeap []hnode

func (h nodeHeap) less(i, j int) bool {
	if h[i].freq != h[j].freq {
		return h[i].freq < h[j].freq
	}
	return h[i].idx < h[j].idx // deterministic tie-break
}

func (h nodeHeap) down(i int) {
	n := len(h)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		m := l
		if r := l + 1; r < n && h.less(r, l) {
			m = r
		}
		if !h.less(m, i) {
			return
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
}

func (h nodeHeap) init() {
	for i := len(h)/2 - 1; i >= 0; i-- {
		h.down(i)
	}
}

func (h *nodeHeap) push(x hnode) {
	a := append(*h, x)
	*h = a
	for i := len(a) - 1; i > 0; {
		p := (i - 1) / 2
		if !a.less(i, p) {
			break
		}
		a[i], a[p] = a[p], a[i]
		i = p
	}
}

func (h *nodeHeap) pop() hnode {
	a := *h
	n := len(a) - 1
	a[0], a[n] = a[n], a[0]
	x := a[n]
	*h = a[:n]
	a[:n].down(0)
	return x
}

// buildLengths runs the classic heap construction and returns per-symbol
// code lengths. The parent table and heap live in sc; the returned lengths
// are freshly allocated (they outlive the call inside the Codec).
func buildLengths(freqs []uint64, sc *buildScratch) []uint8 {
	n := len(freqs)
	// Capacity is sufficient for every append below (≤ 2n parent entries,
	// ≤ n heap nodes), so the backing arrays stored back into sc are the
	// ones the appends fill.
	sc.parent = grow(sc.parent, 2*n)
	sc.heap = grow(sc.heap, n)
	parent := sc.parent[:0]
	h := sc.heap[:0]
	for i, f := range freqs {
		parent = append(parent, -1)
		if f > 0 {
			h = append(h, hnode{f, i})
		}
	}
	if len(h) == 1 {
		// Single symbol: give it a 1-bit code.
		lengths := make([]uint8, n)
		lengths[h[0].idx] = 1
		return lengths
	}
	h.init()
	next := n
	for len(h) > 1 {
		a := h.pop()
		b := h.pop()
		parent = append(parent, -1)
		parent[a.idx] = int32(next)
		parent[b.idx] = int32(next)
		h.push(hnode{a.freq + b.freq, next})
		next++
	}
	lengths := make([]uint8, n)
	for i := 0; i < n; i++ {
		if freqs[i] == 0 {
			continue
		}
		d := 0
		for j := i; parent[j] >= 0; j = int(parent[j]) {
			d++
		}
		lengths[i] = uint8(d)
	}
	return lengths
}

// fromLengths assigns canonical codes and builds decode structures.
func fromLengths(lengths []uint8) (*Codec, error) {
	c := &Codec{lengths: lengths, codes: make([]uint32, len(lengths))}
	c.minLen, c.maxLen = maxCodeLen+1, 0
	count := make([]int, maxCodeLen+1)
	for _, l := range lengths {
		if l == 0 {
			continue
		}
		count[l]++
		if int(l) < c.minLen {
			c.minLen = int(l)
		}
		if int(l) > c.maxLen {
			c.maxLen = int(l)
		}
	}
	if c.maxLen == 0 {
		return nil, fmt.Errorf("huffman: no coded symbols")
	}
	// Kraft check guards corrupted tables at parse time.
	var kraft uint64
	for l := 1; l <= c.maxLen; l++ {
		kraft += uint64(count[l]) << uint(c.maxLen-l)
	}
	if kraft > 1<<uint(c.maxLen) {
		return nil, fmt.Errorf("huffman: invalid code lengths (Kraft violation)")
	}

	c.firstCode = make([]uint32, c.maxLen+2)
	c.firstIdx = make([]int, c.maxLen+2)
	var code uint32
	idx := 0
	for l := c.minLen; l <= c.maxLen; l++ {
		c.firstCode[l] = code
		c.firstIdx[l] = idx
		code = (code + uint32(count[l])) << 1
		idx += count[l]
	}
	// Symbols sorted by (length, symbol) get consecutive canonical codes.
	c.symByIdx = make([]uint16, idx)
	type ls struct {
		sym int
		l   uint8
	}
	syms := make([]ls, 0, idx)
	for s, l := range lengths {
		if l > 0 {
			syms = append(syms, ls{s, l})
		}
	}
	sort.Slice(syms, func(i, j int) bool {
		if syms[i].l != syms[j].l {
			return syms[i].l < syms[j].l
		}
		return syms[i].sym < syms[j].sym
	})
	perLen := make([]int, c.maxLen+1)
	for _, e := range syms {
		l := int(e.l)
		offset := perLen[l]
		perLen[l]++
		c.codes[e.sym] = c.firstCode[l] + uint32(offset)
		c.symByIdx[c.firstIdx[l]+offset] = uint16(e.sym)
	}

	// Fast table.
	tb := c.maxLen
	if tb > tableBits {
		tb = tableBits
	}
	c.fast = make([]fastEntry, 1<<uint(tb))
	for s, l := range lengths {
		if l == 0 || int(l) > tb {
			continue
		}
		code := c.codes[s]
		// Stream packs code bits MSB-first at increasing bit positions;
		// lookahead index packs stream bits LSB-first.
		var base uint32
		for j := 0; j < int(l); j++ {
			bit := (code >> uint(int(l)-1-j)) & 1
			base |= bit << uint(j)
		}
		for fill := 0; fill < 1<<uint(tb-int(l)); fill++ {
			c.fast[base|uint32(fill)<<uint(l)] = fastEntry{uint16(s), l}
		}
	}
	return c, nil
}

// Alphabet returns the dense alphabet size.
func (c *Codec) Alphabet() int { return len(c.lengths) }

// CodeLen returns the code length of symbol s (0 if absent).
func (c *Codec) CodeLen(s uint16) int { return int(c.lengths[s]) }

// ExpectedBits returns the exact encoded payload size in bits for a stream
// with the given histogram.
func (c *Codec) ExpectedBits(hist []uint32) uint64 {
	var bits uint64
	for s, n := range hist {
		if s < len(c.lengths) {
			bits += uint64(n) * uint64(c.lengths[s])
		}
	}
	return bits
}

// SerializeTable emits the code-length table (alphabet size + RLE lengths).
func (c *Codec) SerializeTable() []byte {
	out := binary.AppendUvarint(nil, uint64(len(c.lengths)))
	i := 0
	for i < len(c.lengths) {
		j := i
		for j < len(c.lengths) && c.lengths[j] == c.lengths[i] {
			j++
		}
		out = binary.AppendUvarint(out, uint64(j-i))
		out = append(out, c.lengths[i])
		i = j
	}
	return out
}

// ParseTable reconstructs a codec from SerializeTable output, returning the
// codec and the number of bytes consumed.
func ParseTable(data []byte) (*Codec, int, error) {
	n, k := binary.Uvarint(data)
	if k <= 0 || n == 0 || n > 1<<16 {
		return nil, 0, fmt.Errorf("huffman: bad table header")
	}
	pos := k
	lengths := make([]uint8, 0, n)
	for uint64(len(lengths)) < n {
		run, k := binary.Uvarint(data[pos:])
		if k <= 0 || pos+k >= len(data) {
			return nil, 0, fmt.Errorf("huffman: truncated table")
		}
		pos += k
		l := data[pos]
		pos++
		if l > maxCodeLen {
			return nil, 0, fmt.Errorf("huffman: code length %d exceeds limit", l)
		}
		if uint64(len(lengths))+run > n {
			return nil, 0, fmt.Errorf("huffman: table run overflow")
		}
		for r := uint64(0); r < run; r++ {
			lengths = append(lengths, l)
		}
	}
	c, err := fromLengths(lengths)
	if err != nil {
		return nil, 0, err
	}
	return c, pos, nil
}

// Encode compresses codes into a chunked bitstream (table not included).
// Chunks are encoded in parallel at place (LaunchBlocks, so even a few
// chunks fan out) into pooled scratch slabs released once assembled.
func (c *Codec) Encode(p *device.Platform, place device.Place, codes []uint16) ([]byte, error) {
	pool := p.ScratchPool()
	nChunks := (len(codes) + chunkSize - 1) / chunkSize
	chunkBufs := make([][]byte, nChunks)
	slabs := make([]*device.Slab[byte], nChunks)
	var errMu sync.Mutex
	var firstErr error
	p.LaunchBlocks(place, nChunks, func(lo, hi int) {
		for ci := lo; ci < hi; ci++ {
			start, end := ci*chunkSize, (ci+1)*chunkSize
			if end > len(codes) {
				end = len(codes)
			}
			slab := pool.GetBytes((end-start)/2+8, false)
			buf, err := c.encodeChunk(codes[start:end], slab.Data[:0])
			if err != nil {
				pool.PutBytes(slab)
				errMu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				errMu.Unlock()
				return
			}
			chunkBufs[ci] = buf
			slabs[ci] = slab
		}
	})
	errMu.Lock()
	firstErr2 := firstErr
	errMu.Unlock()
	if firstErr2 != nil {
		for ci, slab := range slabs {
			if chunkBufs[ci] != nil && cap(chunkBufs[ci]) == cap(slab.Data) {
				pool.PutBytes(slab)
			}
		}
		return nil, firstErr2
	}
	size := binary.MaxVarintLen64 * (2 + nChunks)
	for _, buf := range chunkBufs {
		size += len(buf)
	}
	out := binary.AppendUvarint(make([]byte, 0, size), uint64(len(codes)))
	out = binary.AppendUvarint(out, uint64(nChunks))
	for _, buf := range chunkBufs {
		out = binary.AppendUvarint(out, uint64(len(buf)))
	}
	for ci, buf := range chunkBufs {
		out = append(out, buf...)
		// A chunk that outgrew its slab reallocated; only return slabs whose
		// storage the encoder still owns (growth always increases capacity).
		if cap(buf) == cap(slabs[ci].Data) {
			pool.PutBytes(slabs[ci])
		}
	}
	return out, nil
}

func (c *Codec) encodeChunk(codes []uint16, out []byte) ([]byte, error) {
	var acc uint64
	var nbits uint
	for _, s := range codes {
		if int(s) >= len(c.lengths) || c.lengths[s] == 0 {
			return nil, fmt.Errorf("huffman: symbol %d has no code (histogram missed it)", s)
		}
		l := uint(c.lengths[s])
		code := c.codes[s]
		// Append code bits MSB-first at increasing stream positions.
		var rev uint64
		for j := uint(0); j < l; j++ {
			rev |= uint64((code>>(l-1-j))&1) << j
		}
		acc |= rev << nbits
		nbits += l
		for nbits >= 8 {
			out = append(out, byte(acc))
			acc >>= 8
			nbits -= 8
		}
	}
	if nbits > 0 {
		out = append(out, byte(acc))
	}
	return out, nil
}

// Decode expands a chunked bitstream produced by Encode back into n codes,
// decoding chunks in parallel at place.
func (c *Codec) Decode(p *device.Platform, place device.Place, data []byte) ([]uint16, error) {
	total, k := binary.Uvarint(data)
	if k <= 0 {
		return nil, fmt.Errorf("huffman: truncated stream header")
	}
	pos := k
	nChunks, k := binary.Uvarint(data[pos:])
	if k <= 0 {
		return nil, fmt.Errorf("huffman: truncated chunk count")
	}
	pos += k
	if want := (total + chunkSize - 1) / chunkSize; nChunks != want && !(total == 0 && nChunks == 0) {
		return nil, fmt.Errorf("huffman: chunk count %d inconsistent with %d symbols", nChunks, total)
	}
	sizes := make([]int, nChunks)
	for i := range sizes {
		sz, k := binary.Uvarint(data[pos:])
		if k <= 0 {
			return nil, fmt.Errorf("huffman: truncated chunk size table")
		}
		pos += k
		sizes[i] = int(sz)
	}
	offsets := make([]int, nChunks+1)
	offsets[0] = pos
	for i, sz := range sizes {
		offsets[i+1] = offsets[i] + sz
	}
	if offsets[nChunks] > len(data) {
		return nil, fmt.Errorf("huffman: stream shorter than chunk table claims")
	}

	out := make([]uint16, total)
	var errMu sync.Mutex
	var firstErr error
	p.LaunchBlocks(place, int(nChunks), func(lo, hi int) {
		for ci := lo; ci < hi; ci++ {
			start := ci * chunkSize
			end := start + chunkSize
			if end > int(total) {
				end = int(total)
			}
			if err := c.decodeChunk(data[offsets[ci]:offsets[ci+1]], out[start:end]); err != nil {
				errMu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				errMu.Unlock()
			}
		}
	})
	errMu.Lock()
	defer errMu.Unlock()
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}

func (c *Codec) decodeChunk(data []byte, out []uint16) error {
	totalBits := len(data) * 8
	bitPos := 0
	tb := c.maxLen
	if tb > tableBits {
		tb = tableBits
	}
	peek := func(pos, nb int) uint32 {
		var v uint32
		for j := 0; j < nb && pos+j < totalBits; j++ {
			bp := pos + j
			v |= uint32(data[bp/8]>>(uint(bp)%8)&1) << uint(j)
		}
		return v
	}
	for oi := range out {
		if e := c.fast[peek(bitPos, tb)]; e.len > 0 && bitPos+int(e.len) <= totalBits {
			out[oi] = e.sym
			bitPos += int(e.len)
			continue
		}
		// Slow canonical path for long codes.
		var acc uint32
		l := 0
		matched := false
		for bitPos+l < totalBits && l < c.maxLen {
			acc = acc<<1 | uint32(data[(bitPos+l)/8]>>(uint(bitPos+l)%8)&1)
			l++
			if l < c.minLen {
				continue
			}
			rel := int(acc) - int(c.firstCode[l])
			if rel >= 0 && c.firstIdx[l]+rel < firstIdxEnd(c, l) {
				out[oi] = c.symByIdx[c.firstIdx[l]+rel]
				bitPos += l
				matched = true
				break
			}
		}
		if !matched {
			return fmt.Errorf("huffman: corrupt chunk at symbol %d", oi)
		}
	}
	return nil
}

func firstIdxEnd(c *Codec, l int) int {
	if l+1 <= c.maxLen {
		return c.firstIdx[l+1]
	}
	return len(c.symByIdx)
}

// Compress is the single-shot convenience: builds the codec from hist,
// serializes the table, and appends the encoded stream.
func Compress(p *device.Platform, place device.Place, codes []uint16, hist []uint32) ([]byte, error) {
	c, err := Build(hist)
	if err != nil {
		return nil, err
	}
	payload, err := c.Encode(p, place, codes)
	if err != nil {
		return nil, err
	}
	table := c.SerializeTable()
	out := make([]byte, 0, len(table)+len(payload))
	out = append(out, table...)
	out = append(out, payload...)
	return out, nil
}

// Decompress inverts Compress.
func Decompress(p *device.Platform, place device.Place, blob []byte) ([]uint16, error) {
	c, n, err := ParseTable(blob)
	if err != nil {
		return nil, err
	}
	return c.Decode(p, place, blob[n:])
}
