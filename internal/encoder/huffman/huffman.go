// Package huffman implements the canonical Huffman codec used as the
// primary lossless encoder of FZMod-Default and FZMod-Quality. Following
// the paper's design (§3.3: "CPU-based Huffman encoding due to low GPU
// performance of Huffman encoders"), encoding is chunked so independent
// chunks are processed in parallel on the host, and decoding uses a
// table-accelerated canonical decoder per chunk.
//
// The codec is built from a histogram of the quantization codes (provided
// by the histogram module) and never inspects the code stream itself, so an
// inaccurate histogram that assigns zero frequency to an occurring symbol
// is detected and reported as an error rather than producing a corrupt
// stream.
package huffman

import (
	"encoding/binary"
	"fmt"
	"math/bits"
	"sort"
	"sync"

	"fzmod/internal/device"
	"fzmod/internal/kernels/dispatch"
)

// maxCodeLen bounds code lengths; histograms inducing longer codes are
// rescaled (halved frequencies) until the bound holds.
const maxCodeLen = 32

// tableBits sizes the fast decode table: codes up to this length decode in
// one lookup, longer ones fall back to the canonical bit-by-bit path.
const tableBits = 12

// multiBits sizes the multi-symbol decode table: every multiBits-wide
// lookahead window is pre-decoded into the run of complete codes it
// contains, so skewed codebooks (1–2 bit dominant codes are the norm for
// quantization residuals) decode several symbols per table lookup. Kept
// below tableBits so the table stays L1-resident.
const multiBits = 10

// maxMultiSyms caps the symbols pre-decoded per window entry.
const maxMultiSyms = 6

// chunkSize is the number of symbols encoded per independent chunk.
const chunkSize = 1 << 16

// Codec holds a canonical Huffman code for a dense alphabet [0, n).
type Codec struct {
	lengths []uint8 // per symbol; 0 = symbol absent
	// lengths32 mirrors lengths widened to uint32 for the vectorized
	// encode sizing pre-pass (dispatch.SumLengths gathers 32-bit table
	// entries; a uint8 table would need per-lane masking).
	lengths32 []uint32
	codes     []uint32 // canonical code bits (MSB-first semantics)
	// revCodes holds each code with its bits reversed into stream order
	// (the stream packs code bits MSB-first at increasing LSB-first bit
	// positions), precomputed once at table-build time so the encoder's
	// inner loop is a single lookup+shift instead of a per-bit reversal.
	revCodes []uint32

	// Canonical decode state.
	minLen, maxLen int
	firstCode      []uint32 // by length
	firstIdx       []int    // by length
	symByIdx       []uint16
	fast           []fastEntry
	multi          []multiEntry
}

type fastEntry struct {
	sym uint16
	len uint8
}

// multiEntry pre-decodes one lookahead window: the first n complete codes
// it contains (bits consumed in total). n == 0 means the window's first
// code is longer than the window and the per-symbol paths must decode it.
type multiEntry struct {
	syms [maxMultiSyms]uint16
	n    uint8
	bits uint8
}

// buildScratch holds the transient arrays of one codebook construction
// (frequencies, parent links, heap). They are recycled through a
// package-level pool: a chunked or streaming run builds one codebook per
// chunk, and without recycling the tree scratch dominates steady-state
// allocation.
type buildScratch struct {
	freqs  []uint64
	parent []int32
	heap   nodeHeap
}

var buildPool = sync.Pool{New: func() any { return new(buildScratch) }}

// grow returns s[:n], reallocating only when capacity is short.
func grow[T any](s []T, n int) []T {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]T, n)
}

// Build constructs a codec from a histogram. Every symbol with a nonzero
// count receives a code; at least one symbol must be present.
func Build(hist []uint32) (*Codec, error) {
	if len(hist) == 0 || len(hist) > 1<<16 {
		return nil, fmt.Errorf("huffman: alphabet size %d out of range", len(hist))
	}
	sc := buildPool.Get().(*buildScratch)
	defer buildPool.Put(sc)
	sc.freqs = grow(sc.freqs, len(hist))
	freqs := sc.freqs
	nonzero := 0
	for i, h := range hist {
		freqs[i] = uint64(h)
		if h > 0 {
			nonzero++
		}
	}
	if nonzero == 0 {
		return nil, fmt.Errorf("huffman: empty histogram")
	}
	lengths := buildLengths(freqs, sc)
	for maxOf(lengths) > maxCodeLen {
		for i := range freqs {
			if freqs[i] > 1 {
				freqs[i] = (freqs[i] + 1) / 2
			}
		}
		lengths = buildLengths(freqs, sc)
	}
	return fromLengths(lengths)
}

func maxOf(lengths []uint8) int {
	m := 0
	for _, l := range lengths {
		if int(l) > m {
			m = int(l)
		}
	}
	return m
}

// node heap for tree construction. A hand-rolled binary min-heap rather
// than container/heap: the interface-based API boxes every Push/Pop
// element, which dominated allocation counts on the chunked hot path. The
// comparator is a strict total order (idx is unique), so the pop sequence —
// and therefore the tree — is identical to the boxed implementation.
type hnode struct {
	freq uint64
	idx  int // < len(alphabet): leaf symbol; else internal
}
type nodeHeap []hnode

func (h nodeHeap) less(i, j int) bool {
	if h[i].freq != h[j].freq {
		return h[i].freq < h[j].freq
	}
	return h[i].idx < h[j].idx // deterministic tie-break
}

func (h nodeHeap) down(i int) {
	n := len(h)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		m := l
		if r := l + 1; r < n && h.less(r, l) {
			m = r
		}
		if !h.less(m, i) {
			return
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
}

func (h nodeHeap) init() {
	for i := len(h)/2 - 1; i >= 0; i-- {
		h.down(i)
	}
}

func (h *nodeHeap) push(x hnode) {
	a := append(*h, x)
	*h = a
	for i := len(a) - 1; i > 0; {
		p := (i - 1) / 2
		if !a.less(i, p) {
			break
		}
		a[i], a[p] = a[p], a[i]
		i = p
	}
}

func (h *nodeHeap) pop() hnode {
	a := *h
	n := len(a) - 1
	a[0], a[n] = a[n], a[0]
	x := a[n]
	*h = a[:n]
	a[:n].down(0)
	return x
}

// buildLengths runs the classic heap construction and returns per-symbol
// code lengths. The parent table and heap live in sc; the returned lengths
// are freshly allocated (they outlive the call inside the Codec).
func buildLengths(freqs []uint64, sc *buildScratch) []uint8 {
	n := len(freqs)
	// Capacity is sufficient for every append below (≤ 2n parent entries,
	// ≤ n heap nodes), so the backing arrays stored back into sc are the
	// ones the appends fill.
	sc.parent = grow(sc.parent, 2*n)
	sc.heap = grow(sc.heap, n)
	parent := sc.parent[:0]
	h := sc.heap[:0]
	for i, f := range freqs {
		parent = append(parent, -1)
		if f > 0 {
			h = append(h, hnode{f, i})
		}
	}
	if len(h) == 1 {
		// Single symbol: give it a 1-bit code.
		lengths := make([]uint8, n)
		lengths[h[0].idx] = 1
		return lengths
	}
	h.init()
	next := n
	for len(h) > 1 {
		a := h.pop()
		b := h.pop()
		parent = append(parent, -1)
		parent[a.idx] = int32(next)
		parent[b.idx] = int32(next)
		h.push(hnode{a.freq + b.freq, next})
		next++
	}
	lengths := make([]uint8, n)
	for i := 0; i < n; i++ {
		if freqs[i] == 0 {
			continue
		}
		d := 0
		for j := i; parent[j] >= 0; j = int(parent[j]) {
			d++
		}
		lengths[i] = uint8(d)
	}
	return lengths
}

// fromLengths assigns canonical codes and builds decode structures.
func fromLengths(lengths []uint8) (*Codec, error) {
	c := &Codec{lengths: lengths, codes: make([]uint32, len(lengths))}
	c.lengths32 = make([]uint32, len(lengths))
	for s, l := range lengths {
		c.lengths32[s] = uint32(l)
	}
	c.minLen, c.maxLen = maxCodeLen+1, 0
	count := make([]int, maxCodeLen+1)
	for _, l := range lengths {
		if l == 0 {
			continue
		}
		count[l]++
		if int(l) < c.minLen {
			c.minLen = int(l)
		}
		if int(l) > c.maxLen {
			c.maxLen = int(l)
		}
	}
	if c.maxLen == 0 {
		return nil, fmt.Errorf("huffman: no coded symbols")
	}
	// Kraft check guards corrupted tables at parse time.
	var kraft uint64
	for l := 1; l <= c.maxLen; l++ {
		kraft += uint64(count[l]) << uint(c.maxLen-l)
	}
	if kraft > 1<<uint(c.maxLen) {
		return nil, fmt.Errorf("huffman: invalid code lengths (Kraft violation)")
	}

	c.firstCode = make([]uint32, c.maxLen+2)
	c.firstIdx = make([]int, c.maxLen+2)
	var code uint32
	idx := 0
	for l := c.minLen; l <= c.maxLen; l++ {
		c.firstCode[l] = code
		c.firstIdx[l] = idx
		code = (code + uint32(count[l])) << 1
		idx += count[l]
	}
	// Symbols sorted by (length, symbol) get consecutive canonical codes.
	c.symByIdx = make([]uint16, idx)
	type ls struct {
		sym int
		l   uint8
	}
	syms := make([]ls, 0, idx)
	for s, l := range lengths {
		if l > 0 {
			syms = append(syms, ls{s, l})
		}
	}
	sort.Slice(syms, func(i, j int) bool {
		if syms[i].l != syms[j].l {
			return syms[i].l < syms[j].l
		}
		return syms[i].sym < syms[j].sym
	})
	perLen := make([]int, c.maxLen+1)
	for _, e := range syms {
		l := int(e.l)
		offset := perLen[l]
		perLen[l]++
		c.codes[e.sym] = c.firstCode[l] + uint32(offset)
		c.symByIdx[c.firstIdx[l]+offset] = uint16(e.sym)
	}

	// Stream-order codes: the per-symbol bit reversal happens here, once,
	// instead of per emitted symbol in encodeChunk.
	c.revCodes = make([]uint32, len(lengths))
	for s, l := range lengths {
		if l > 0 {
			c.revCodes[s] = bits.Reverse32(c.codes[s]) >> (32 - uint(l))
		}
	}

	// Fast table.
	tb := c.maxLen
	if tb > tableBits {
		tb = tableBits
	}
	c.fast = make([]fastEntry, 1<<uint(tb))
	for s, l := range lengths {
		if l == 0 || int(l) > tb {
			continue
		}
		// Stream packs code bits MSB-first at increasing bit positions;
		// lookahead index packs stream bits LSB-first — exactly revCodes.
		base := c.revCodes[s]
		for fill := 0; fill < 1<<uint(tb-int(l)); fill++ {
			c.fast[base|uint32(fill)<<uint(l)] = fastEntry{uint16(s), l}
		}
	}

	// Multi-symbol table: simulate fast-path decoding inside each window.
	// A symbol is committed only when its full code lies within the
	// window's remaining bits, so a window never implies symbols the
	// canonical decoder would not produce.
	mb := c.maxLen
	if mb > multiBits {
		mb = multiBits
	}
	c.multi = make([]multiEntry, 1<<uint(mb))
	for w := range c.multi {
		acc := uint32(w)
		rem := mb
		me := &c.multi[w]
		for me.n < maxMultiSyms {
			e := c.fast[acc&uint32(len(c.fast)-1)]
			if e.len == 0 || int(e.len) > rem {
				break
			}
			me.syms[me.n] = e.sym
			me.n++
			me.bits += e.len
			acc >>= e.len
			rem -= int(e.len)
		}
	}
	return c, nil
}

// Alphabet returns the dense alphabet size.
func (c *Codec) Alphabet() int { return len(c.lengths) }

// CodeLen returns the code length of symbol s (0 if absent).
func (c *Codec) CodeLen(s uint16) int { return int(c.lengths[s]) }

// ExpectedBits returns the exact encoded payload size in bits for a stream
// with the given histogram.
func (c *Codec) ExpectedBits(hist []uint32) uint64 {
	var bits uint64
	for s, n := range hist {
		if s < len(c.lengths) {
			bits += uint64(n) * uint64(c.lengths[s])
		}
	}
	return bits
}

// SerializeTable emits the code-length table (alphabet size + RLE lengths).
func (c *Codec) SerializeTable() []byte {
	out := binary.AppendUvarint(nil, uint64(len(c.lengths)))
	i := 0
	for i < len(c.lengths) {
		j := i
		for j < len(c.lengths) && c.lengths[j] == c.lengths[i] {
			j++
		}
		out = binary.AppendUvarint(out, uint64(j-i))
		out = append(out, c.lengths[i])
		i = j
	}
	return out
}

// ParseTable reconstructs a codec from SerializeTable output, returning the
// codec and the number of bytes consumed.
func ParseTable(data []byte) (*Codec, int, error) {
	n, k := binary.Uvarint(data)
	if k <= 0 || n == 0 || n > 1<<16 {
		return nil, 0, fmt.Errorf("huffman: bad table header")
	}
	pos := k
	lengths := make([]uint8, 0, n)
	for uint64(len(lengths)) < n {
		run, k := binary.Uvarint(data[pos:])
		if k <= 0 || pos+k >= len(data) {
			return nil, 0, fmt.Errorf("huffman: truncated table")
		}
		pos += k
		l := data[pos]
		pos++
		if l > maxCodeLen {
			return nil, 0, fmt.Errorf("huffman: code length %d exceeds limit", l)
		}
		if uint64(len(lengths))+run > n {
			return nil, 0, fmt.Errorf("huffman: table run overflow")
		}
		for r := uint64(0); r < run; r++ {
			lengths = append(lengths, l)
		}
	}
	c, err := fromLengths(lengths)
	if err != nil {
		return nil, 0, err
	}
	return c, pos, nil
}

// Encode compresses codes into a chunked bitstream (table not included).
// Chunks are encoded in parallel at place (LaunchBlocks, so even a few
// chunks fan out) into pooled scratch slabs released once assembled. A
// cheap length-summing pre-pass sizes each chunk's slab exactly (plus word
// headroom) and validates the symbols, so the emission loop itself is
// branch-light and never reallocates; every checked-out slab is returned to
// the pool on both the success and the error path.
func (c *Codec) Encode(p *device.Platform, place device.Place, codes []uint16) ([]byte, error) {
	return c.encodePrefixed(p, place, codes, nil)
}

// encodePrefixed is Encode emitting into a buffer that starts with prefix,
// sized exactly up front — Compress uses it to lay the stream directly
// behind the serialized table instead of concatenating two full buffers.
func (c *Codec) encodePrefixed(p *device.Platform, place device.Place, codes []uint16, prefix []byte) ([]byte, error) {
	pool := p.ScratchPool()
	nChunks := (len(codes) + chunkSize - 1) / chunkSize
	chunkBufs := make([][]byte, nChunks)
	slabs := make([]*device.Slab[byte], nChunks)
	var errMu sync.Mutex
	var firstErr error
	p.LaunchBlocks(place, nChunks, func(lo, hi int) {
		for ci := lo; ci < hi; ci++ {
			start, end := ci*chunkSize, (ci+1)*chunkSize
			if end > len(codes) {
				end = len(codes)
			}
			bits, err := c.chunkBits(codes[start:end])
			if err != nil {
				errMu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				errMu.Unlock()
				return
			}
			// Exact payload bytes plus 8 bytes of headroom for the 64-bit
			// flushes, which store a full word at the last partial position.
			slab := pool.GetBytes(int(bits>>3)+9, false)
			chunkBufs[ci] = c.encodeChunk(codes[start:end], slab.Data)
			slabs[ci] = slab
		}
	})
	release := func() {
		for _, slab := range slabs {
			if slab != nil {
				pool.PutBytes(slab)
			}
		}
	}
	errMu.Lock()
	firstErr2 := firstErr
	errMu.Unlock()
	if firstErr2 != nil {
		// A mid-stream failure leaves earlier chunks' slabs checked out;
		// hand every one back before surfacing the error.
		release()
		return nil, firstErr2
	}
	size := len(prefix) + binary.MaxVarintLen64*(2+nChunks)
	for _, buf := range chunkBufs {
		size += len(buf)
	}
	out := append(make([]byte, 0, size), prefix...)
	out = binary.AppendUvarint(out, uint64(len(codes)))
	out = binary.AppendUvarint(out, uint64(nChunks))
	for _, buf := range chunkBufs {
		out = binary.AppendUvarint(out, uint64(len(buf)))
	}
	for _, buf := range chunkBufs {
		out = append(out, buf...)
	}
	release()
	return out, nil
}

// chunkBits returns the exact encoded size of a chunk in bits, failing on
// any symbol the codebook has no code for. It doubles as the validation
// pass: encodeChunk afterwards assumes every symbol is coded. The sum runs
// through the dispatched SIMD kernel (a gather-accumulate on AVX2); only
// when that reports a bad symbol does the scalar re-scan run to name the
// exact offender in the error.
func (c *Codec) chunkBits(codes []uint16) (uint64, error) {
	if bits, ok := dispatch.SumLengths(c.lengths32, codes); ok {
		return bits, nil
	}
	for _, s := range codes {
		if int(s) >= len(c.lengths) || c.lengths[s] == 0 {
			return 0, fmt.Errorf("huffman: symbol %d has no code (histogram missed it)", s)
		}
	}
	return 0, fmt.Errorf("huffman: sizing pre-pass failed without an uncoded symbol")
}

// encodeChunk emits the chunk's bitstream into buf word-at-a-time: codes
// are looked up in stream order (revCodes), packed into a 64-bit
// accumulator, and flushed eight bytes at a time with a single
// little-endian store. buf must be sized by chunkBits (content + 8 bytes of
// headroom) and every symbol must be coded; the filled prefix is returned.
// The byte stream is identical to the historical bit-by-bit emission.
func (c *Codec) encodeChunk(codes []uint16, buf []byte) []byte {
	var acc uint64
	var nbits uint
	pos := 0
	for _, s := range codes {
		acc |= uint64(c.revCodes[s]) << nbits
		nbits += uint(c.lengths[s])
		if nbits >= 32 {
			// Store the whole accumulator; only the complete low bytes
			// advance pos, so the partial tail is rewritten by the next
			// flush. nbits stays < 32 before the next merge, which keeps
			// the shift above in range for codes up to maxCodeLen bits.
			binary.LittleEndian.PutUint64(buf[pos:], acc)
			adv := nbits >> 3
			pos += int(adv)
			acc >>= adv << 3
			nbits &= 7
		}
	}
	for nbits > 0 {
		buf[pos] = byte(acc)
		pos++
		acc >>= 8
		if nbits >= 8 {
			nbits -= 8
		} else {
			nbits = 0
		}
	}
	return buf[:pos]
}

// Decode expands a chunked bitstream produced by Encode back into n codes,
// decoding chunks in parallel at place.
func (c *Codec) Decode(p *device.Platform, place device.Place, data []byte) ([]uint16, error) {
	total, k := binary.Uvarint(data)
	if k <= 0 {
		return nil, fmt.Errorf("huffman: truncated stream header")
	}
	pos := k
	nChunks, k := binary.Uvarint(data[pos:])
	if k <= 0 {
		return nil, fmt.Errorf("huffman: truncated chunk count")
	}
	pos += k
	if want := (total + chunkSize - 1) / chunkSize; nChunks != want && !(total == 0 && nChunks == 0) {
		return nil, fmt.Errorf("huffman: chunk count %d inconsistent with %d symbols", nChunks, total)
	}
	// Per-chunk payload offsets, pooled: Decode runs once per codec chunk
	// group on the decompression hot path, and the size/offset table was a
	// steady-state allocation. Sizes are parsed into the tail slots and
	// folded into offsets in place.
	pool := p.ScratchPool()
	offSlab := pool.GetI64(int(nChunks)+1, false)
	offsets := offSlab.Data
	for i := 0; i < int(nChunks); i++ {
		sz, k := binary.Uvarint(data[pos:])
		if k <= 0 {
			pool.PutI64(offSlab)
			return nil, fmt.Errorf("huffman: truncated chunk size table")
		}
		if sz > uint64(len(data)) {
			pool.PutI64(offSlab)
			return nil, fmt.Errorf("huffman: stream shorter than chunk table claims")
		}
		pos += k
		offsets[i+1] = int64(sz)
	}
	offsets[0] = int64(pos)
	for i := 1; i <= int(nChunks); i++ {
		offsets[i] += offsets[i-1]
	}
	if offsets[nChunks] > int64(len(data)) {
		pool.PutI64(offSlab)
		return nil, fmt.Errorf("huffman: stream shorter than chunk table claims")
	}

	out := make([]uint16, total)
	var errMu sync.Mutex
	var firstErr error
	p.LaunchBlocks(place, int(nChunks), func(lo, hi int) {
		for ci := lo; ci < hi; ci++ {
			start := ci * chunkSize
			end := start + chunkSize
			if end > int(total) {
				end = int(total)
			}
			if err := c.decodeChunk(data[offsets[ci]:offsets[ci+1]], out[start:end]); err != nil {
				errMu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				errMu.Unlock()
			}
		}
	})
	pool.PutI64(offSlab)
	errMu.Lock()
	defer errMu.Unlock()
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}

// decodeChunk expands one chunk's bitstream through a 64-bit bit reservoir:
// eight bytes are loaded per refill with a single little-endian read, the
// multi-symbol table decodes every complete code inside the lookahead
// window per lookup (with the single-symbol fast table as fallback at
// window boundaries), and the reservoir refills only once it drops below
// 32 bits (a byte-wise scalar tail takes over inside the last word of the
// stream). The canonical slow path for codes longer than tableBits reads
// its bits from the same reservoir, so no per-bit byte indexing survives
// anywhere in the loop.
func (c *Codec) decodeChunk(data []byte, out []uint16) error {
	n := len(data)
	tb := c.maxLen
	if tb > tableBits {
		tb = tableBits
	}
	mask := uint64(1)<<uint(tb) - 1
	fast := c.fast
	multi := c.multi
	mmask := uint64(len(multi) - 1)
	var acc uint64 // stream bits, LSB-first; bits ≥ navail are zero
	var navail uint
	pos := 0
	for oi := 0; oi < len(out); {
		if navail < 32 {
			if pos+8 <= n {
				// Word refill: absorb as many whole bytes as fit; the
				// partial top byte is reloaded by the next refill.
				acc |= binary.LittleEndian.Uint64(data[pos:]) << navail
				adv := (63 - navail) >> 3
				pos += int(adv)
				navail += adv << 3
			} else {
				// Scalar tail: byte-wise refill over the final few bytes.
				for navail <= 56 && pos < n {
					acc |= uint64(data[pos]) << navail
					pos++
					navail += 8
				}
			}
		}
		// Multi-symbol path: one lookup decodes every complete code in
		// the lookahead window.
		if me := &multi[acc&mmask]; me.n > 0 && uint(me.bits) <= navail && oi+int(me.n) <= len(out) {
			for k := 0; k < int(me.n); k++ {
				out[oi+k] = me.syms[k]
			}
			oi += int(me.n)
			acc >>= me.bits
			navail -= uint(me.bits)
			continue
		}
		if e := fast[acc&mask]; e.len > 0 && uint(e.len) <= navail {
			out[oi] = e.sym
			oi++
			acc >>= e.len
			navail -= uint(e.len)
			continue
		}
		// Slow canonical path for long codes (and the stream tail, where
		// fewer than a full lookahead's bits remain).
		var code uint32
		l := 0
		lMax := c.maxLen
		if uint(lMax) > navail {
			lMax = int(navail)
		}
		matched := false
		for l < lMax {
			code = code<<1 | uint32(acc>>uint(l))&1
			l++
			if l < c.minLen {
				continue
			}
			rel := int(code) - int(c.firstCode[l])
			if rel >= 0 && c.firstIdx[l]+rel < firstIdxEnd(c, l) {
				out[oi] = c.symByIdx[c.firstIdx[l]+rel]
				oi++
				acc >>= uint(l)
				navail -= uint(l)
				matched = true
				break
			}
		}
		if !matched {
			return fmt.Errorf("huffman: corrupt chunk at symbol %d", oi)
		}
	}
	return nil
}

func firstIdxEnd(c *Codec, l int) int {
	if l+1 <= c.maxLen {
		return c.firstIdx[l+1]
	}
	return len(c.symByIdx)
}

// Compress is the single-shot convenience: builds the codec from hist,
// serializes the table, and lays the encoded stream directly behind it in
// one buffer — no table‖payload concatenation copy, which on the chunked
// hot path used to re-copy every chunk's whole code stream.
func Compress(p *device.Platform, place device.Place, codes []uint16, hist []uint32) ([]byte, error) {
	c, err := Build(hist)
	if err != nil {
		return nil, err
	}
	return c.encodePrefixed(p, place, codes, c.SerializeTable())
}

// Decompress inverts Compress.
func Decompress(p *device.Platform, place device.Place, blob []byte) ([]uint16, error) {
	c, n, err := ParseTable(blob)
	if err != nil {
		return nil, err
	}
	return c.Decode(p, place, blob[n:])
}
