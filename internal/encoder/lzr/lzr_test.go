package lzr

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"fzmod/internal/device"
)

var tp = device.NewTestPlatform()

func roundtrip(t *testing.T, src []byte) []byte {
	t.Helper()
	blob := Compress(tp, device.Host, src)
	got, err := Decompress(tp, device.Host, blob)
	if err != nil {
		t.Fatalf("Decompress: %v", err)
	}
	if !bytes.Equal(got, src) {
		t.Fatalf("roundtrip mismatch: %d bytes in, %d out", len(src), len(got))
	}
	return blob
}

func TestRoundtripEmpty(t *testing.T)  { roundtrip(t, nil) }
func TestRoundtripSingle(t *testing.T) { roundtrip(t, []byte{42}) }

func TestRoundtripShortInputs(t *testing.T) {
	for n := 0; n < 40; n++ {
		src := make([]byte, n)
		for i := range src {
			src[i] = byte(i * 7)
		}
		roundtrip(t, src)
	}
}

func TestCompressesRepetitiveData(t *testing.T) {
	src := bytes.Repeat([]byte("scientific data reduction "), 10_000)
	blob := roundtrip(t, src)
	if ratio := float64(len(src)) / float64(len(blob)); ratio < 20 {
		t.Errorf("ratio on repetitive text = %.1f, want ≥ 20", ratio)
	}
}

func TestCompressesZeros(t *testing.T) {
	src := make([]byte, 500_000)
	blob := roundtrip(t, src)
	if ratio := float64(len(src)) / float64(len(blob)); ratio < 100 {
		t.Errorf("ratio on zeros = %.1f, want ≥ 100", ratio)
	}
}

func TestRandomDataDoesNotExplode(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	src := make([]byte, 300_000)
	rng.Read(src)
	blob := roundtrip(t, src)
	if len(blob) > len(src)+len(src)/100+64 {
		t.Errorf("random data expanded: %d → %d", len(src), len(blob))
	}
}

func TestMultiBlockBoundaries(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{blockSize - 1, blockSize, blockSize + 1, 2*blockSize + 333} {
		src := make([]byte, n)
		for i := range src {
			if rng.Float64() < 0.7 && i > 0 {
				src[i] = src[i-1]
			} else {
				src[i] = byte(rng.Intn(256))
			}
		}
		roundtrip(t, src)
	}
}

func TestOverlappingMatchesRLE(t *testing.T) {
	// "abcabcabc..." forces overlapping match copies.
	src := bytes.Repeat([]byte("abc"), 50_000)
	roundtrip(t, src)
}

func TestQuantCodeBytesCompressWell(t *testing.T) {
	// Typical secondary-encoder input: Huffman/fzg output has structure;
	// simulate with low-entropy bytes.
	rng := rand.New(rand.NewSource(3))
	src := make([]byte, 200_000)
	for i := range src {
		src[i] = byte(rng.Intn(4))
	}
	blob := roundtrip(t, src)
	// LZ token coding is not entropy coding; ~1.5x on 2-bit-entropy noise
	// is the realistic floor (zstd's edge comes from its FSE stage).
	if float64(len(src))/float64(len(blob)) < 1.5 {
		t.Errorf("low-entropy bytes should compress ≥ 1.5x, got %.2f",
			float64(len(src))/float64(len(blob)))
	}
}

func TestDecompressErrors(t *testing.T) {
	for _, blob := range [][]byte{
		nil,
		{200},                  // truncated varint
		{10},                   // missing block count
		{10, 5},                // block count inconsistent with length
		{10, 1},                // missing size table
		{10, 1, 50},            // size table claims more than present
		{10, 1, 2, 0xFF, 0xFF}, // garbage payload
	} {
		if _, err := Decompress(tp, device.Host, blob); err == nil {
			t.Errorf("Decompress(%v) should fail", blob)
		}
	}
}

func TestCorruptPayloadDetected(t *testing.T) {
	src := bytes.Repeat([]byte("hello world "), 1000)
	blob := Compress(tp, device.Host, src)
	// Flip bytes in the payload region; decoder must not crash, and for
	// structural corruption should usually error.
	for i := len(blob) / 2; i < len(blob)/2+8 && i < len(blob); i++ {
		mut := append([]byte(nil), blob...)
		mut[i] ^= 0xFF
		got, err := Decompress(tp, device.Host, mut)
		if err == nil && bytes.Equal(got, src) {
			continue // flip landed in literals; output differs elsewhere
		}
	}
}

func TestPropertyRoundtrip(t *testing.T) {
	f := func(src []byte) bool {
		blob := Compress(tp, device.Host, src)
		got, err := Decompress(tp, device.Host, blob)
		return err == nil && bytes.Equal(got, src)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestPropertyStructuredRoundtrip(t *testing.T) {
	// Random-walk bytes exercise match-heavy paths better than uniform.
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 20; trial++ {
		n := rng.Intn(100_000)
		src := make([]byte, n)
		v := byte(0)
		for i := range src {
			if rng.Float64() < 0.1 {
				v = byte(rng.Intn(256))
			}
			src[i] = v
		}
		roundtrip(t, src)
	}
}

func TestMatchAtExactWindowBoundary(t *testing.T) {
	// Regression: a match at distance exactly 64 KiB used to be emitted
	// with a wrapped 2-byte offset of 0 (caught by the module benchmark on
	// quantization-code bytes). Construct a block with an identical run at
	// precisely that distance.
	src := make([]byte, maxOffset+256)
	pattern := []byte("0123456789abcdefghijklmnop")
	copy(src, pattern)
	copy(src[maxOffset:], pattern)
	roundtrip(t, src)
}
