// Package lzr is a from-scratch LZ77 byte codec filling the "secondary
// lossless encoder" slot of FZModules pipelines, the role zstd plays in the
// paper (§3.2: "if the compression ratios are still in need of improvement,
// a secondary lossless encoder, zstd, can be attempted"). The format is an
// LZ4-style token stream — greedy hash-chain matching, 64 KiB window —
// compressed in independent 256 KiB blocks so both directions parallelize.
package lzr

import (
	"encoding/binary"
	"fmt"

	"fzmod/internal/device"
)

const (
	blockSize = 256 << 10
	minMatch  = 4
	// maxOffset is the largest encodable match distance: offsets are
	// stored in 2 bytes, so 64 KiB exactly would wrap to zero.
	maxOffset    = 64<<10 - 1
	hashBits     = 15
	maxChainHops = 16
)

// Compress encodes src. Layout: uvarint(srcLen) ‖ uvarint(nBlocks) ‖
// per-block uvarint compressed sizes ‖ concatenated block payloads.
func Compress(p *device.Platform, place device.Place, src []byte) []byte {
	nBlocks := (len(src) + blockSize - 1) / blockSize
	bufs := make([][]byte, nBlocks)
	p.LaunchGrid(place, nBlocks, func(lo, hi int) {
		for b := lo; b < hi; b++ {
			start, end := b*blockSize, (b+1)*blockSize
			if end > len(src) {
				end = len(src)
			}
			bufs[b] = compressBlock(src[start:end])
		}
	})
	out := binary.AppendUvarint(nil, uint64(len(src)))
	out = binary.AppendUvarint(out, uint64(nBlocks))
	for _, buf := range bufs {
		out = binary.AppendUvarint(out, uint64(len(buf)))
	}
	for _, buf := range bufs {
		out = append(out, buf...)
	}
	return out
}

func hash4(v uint32) uint32 { return (v * 2654435761) >> (32 - hashBits) }

func load4(src []byte, i int) uint32 { return binary.LittleEndian.Uint32(src[i:]) }

// compressBlock emits an LZ4-style token stream for one block.
func compressBlock(src []byte) []byte {
	out := make([]byte, 0, len(src)/2+16)
	n := len(src)
	if n < minMatch+4 {
		return emitSeq(out, src, 0, 0)
	}
	head := make([]int32, 1<<hashBits)
	chain := make([]int32, n)
	for i := range head {
		head[i] = -1
	}
	litStart := 0
	i := 0
	limit := n - minMatch // last position where a match can start (room for load4)
	for i < limit {
		h := hash4(load4(src, i))
		cand := head[h]
		chain[i] = cand
		head[h] = int32(i)

		bestLen, bestOff := 0, 0
		hops := 0
		for cand >= 0 && hops < maxChainHops && i-int(cand) <= maxOffset {
			if load4(src, int(cand)) == load4(src, i) {
				l := matchLen(src, int(cand), i)
				if l > bestLen {
					bestLen, bestOff = l, i-int(cand)
				}
			}
			cand = chain[cand]
			hops++
		}
		if bestLen >= minMatch {
			out = emitSeq(out, src[litStart:i], bestLen, bestOff)
			// Insert skipped positions sparsely to keep the chain useful.
			end := i + bestLen
			for j := i + 1; j < end && j < limit; j += 2 {
				hj := hash4(load4(src, j))
				chain[j] = head[hj]
				head[hj] = int32(j)
			}
			i = end
			litStart = i
		} else {
			i++
		}
	}
	return emitSeq(out, src[litStart:], 0, 0)
}

func matchLen(src []byte, a, b int) int {
	l := 0
	for b+l < len(src) && src[a+l] == src[b+l] {
		l++
	}
	return l
}

// emitSeq writes one sequence: token, extended literal length, literals,
// then (if matchLen > 0) 2-byte offset and extended match length.
func emitSeq(out, literals []byte, matchLen, offset int) []byte {
	ll := len(literals)
	ml := 0
	if matchLen > 0 {
		ml = matchLen - minMatch
	}
	tok := byte(0)
	if ll >= 15 {
		tok = 15 << 4
	} else {
		tok = byte(ll) << 4
	}
	hasMatch := matchLen > 0
	if hasMatch {
		if ml >= 15 {
			tok |= 15
		} else {
			tok |= byte(ml)
		}
	}
	out = append(out, tok)
	if ll >= 15 {
		out = appendExt(out, ll-15)
	}
	out = append(out, literals...)
	if hasMatch {
		out = append(out, byte(offset), byte(offset>>8))
		if ml >= 15 {
			out = appendExt(out, ml-15)
		}
	}
	return out
}

func appendExt(out []byte, v int) []byte {
	for v >= 255 {
		out = append(out, 255)
		v -= 255
	}
	return append(out, byte(v))
}

// Decompress inverts Compress.
func Decompress(p *device.Platform, place device.Place, blob []byte) ([]byte, error) {
	srcLen, k := binary.Uvarint(blob)
	if k <= 0 {
		return nil, fmt.Errorf("lzr: truncated header")
	}
	pos := k
	nBlocks, k := binary.Uvarint(blob[pos:])
	if k <= 0 {
		return nil, fmt.Errorf("lzr: truncated block count")
	}
	pos += k
	if want := (srcLen + blockSize - 1) / blockSize; nBlocks != want && !(srcLen == 0 && nBlocks == 0) {
		return nil, fmt.Errorf("lzr: block count %d inconsistent with length %d", nBlocks, srcLen)
	}
	sizes := make([]int, nBlocks)
	for i := range sizes {
		sz, k := binary.Uvarint(blob[pos:])
		if k <= 0 {
			return nil, fmt.Errorf("lzr: truncated size table")
		}
		pos += k
		sizes[i] = int(sz)
	}
	offsets := make([]int, nBlocks+1)
	offsets[0] = pos
	for i, sz := range sizes {
		offsets[i+1] = offsets[i] + sz
	}
	if offsets[nBlocks] > len(blob) {
		return nil, fmt.Errorf("lzr: stream shorter than size table claims")
	}

	out := make([]byte, srcLen)
	errs := make([]error, nBlocks)
	p.LaunchGrid(place, int(nBlocks), func(lo, hi int) {
		for b := lo; b < hi; b++ {
			start, end := b*blockSize, (b+1)*blockSize
			if end > int(srcLen) {
				end = int(srcLen)
			}
			errs[b] = decompressBlock(blob[offsets[b]:offsets[b+1]], out[start:end])
		}
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

func decompressBlock(src, dst []byte) error {
	di, si := 0, 0
	for si < len(src) {
		tok := src[si]
		si++
		ll := int(tok >> 4)
		if ll == 15 {
			var err error
			ll, si, err = readExt(src, si, ll)
			if err != nil {
				return err
			}
		}
		if si+ll > len(src) || di+ll > len(dst) {
			return fmt.Errorf("lzr: literal run overflows block")
		}
		copy(dst[di:], src[si:si+ll])
		si += ll
		di += ll
		if si >= len(src) {
			break // final sequence carries no match
		}
		if si+2 > len(src) {
			return fmt.Errorf("lzr: truncated match offset")
		}
		offset := int(src[si]) | int(src[si+1])<<8
		si += 2
		ml := int(tok & 15)
		if ml == 15 {
			var err error
			ml, si, err = readExt(src, si, ml)
			if err != nil {
				return err
			}
		}
		ml += minMatch
		if offset == 0 || offset > di || di+ml > len(dst) {
			return fmt.Errorf("lzr: invalid match (offset %d, len %d, at %d)", offset, ml, di)
		}
		// Byte-wise copy: overlapping matches are the RLE case.
		for j := 0; j < ml; j++ {
			dst[di] = dst[di-offset]
			di++
		}
	}
	if di != len(dst) {
		return fmt.Errorf("lzr: block decoded to %d bytes, want %d", di, len(dst))
	}
	return nil
}

func readExt(src []byte, si, base int) (int, int, error) {
	v := base
	for {
		if si >= len(src) {
			return 0, 0, fmt.Errorf("lzr: truncated length extension")
		}
		b := src[si]
		si++
		v += int(b)
		if b != 255 {
			return v, si, nil
		}
	}
}
