package stf

import (
	"errors"
	"testing"

	"fzmod/internal/device"
)

// TestCtxReset drives one context through several windowed batches, the
// usage pattern of the streaming compressor: declare a batch of tasks,
// Reset, declare the next batch over fresh logical data.
func TestCtxReset(t *testing.T) {
	p := device.NewTestPlatform()
	defer p.Close()
	ctx := NewCtxN(p, 2)
	total := 0
	for batch := 0; batch < 4; batch++ {
		sum := 0
		in := NewData(ctx, "in", []uint32{1, 2, 3, 4})
		out := NewScratch[uint32](ctx, "out", 4)
		ctx.Task("double").Reads(in.D()).Writes(out.D()).On(device.Accel).
			Do(func(ti *TaskInstance) error {
				for i, v := range in.Acc(ti) {
					out.Acc(ti)[i] = 2 * v
				}
				return nil
			})
		ctx.Task("sum").Reads(out.D()).On(device.Host).
			Do(func(ti *TaskInstance) error {
				for _, v := range out.Acc(ti) {
					sum += int(v)
				}
				return nil
			})
		if err := ctx.Reset(); err != nil {
			t.Fatalf("batch %d: %v", batch, err)
		}
		if sum != 20 {
			t.Fatalf("batch %d: sum = %d, want 20", batch, sum)
		}
		total += sum
	}
	if total != 80 {
		t.Fatalf("total = %d, want 80", total)
	}
}

// TestCtxResetErrorIsolation: a failing batch reports its error through
// Reset and does not poison the batches that follow.
func TestCtxResetErrorIsolation(t *testing.T) {
	p := device.NewTestPlatform()
	defer p.Close()
	ctx := NewCtx(p)
	boom := errors.New("boom")
	tok := NewToken(ctx, "t")
	ctx.Task("fail").Writes(tok.D()).Do(func(ti *TaskInstance) error { return boom })
	ctx.Task("skipped").Reads(tok.D()).Do(func(ti *TaskInstance) error { return nil })
	if err := ctx.Reset(); !errors.Is(err, boom) {
		t.Fatalf("Reset = %v, want %v", err, boom)
	}
	ran := false
	ctx.Task("ok").Do(func(ti *TaskInstance) error { ran = true; return nil })
	if err := ctx.Reset(); err != nil {
		t.Fatalf("post-failure batch: %v", err)
	}
	if !ran {
		t.Fatal("task after failed batch did not run")
	}
}
