package stf

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// TaskTrace records one executed task for profiling and for verifying that
// independent stages actually overlapped (the §3.3.1 concurrency claim).
type TaskTrace struct {
	ID    int
	Name  string
	Place string
	// Worker is the pool slot of the place's work-stealing pool that
	// executed the task; the scaling tests use it to check that skewed
	// graphs still keep every worker busy.
	Worker int
	Start  time.Time
	End    time.Time
	Err    error
}

// Trace returns per-task execution records ordered by start time. Valid
// after Finalize.
func (c *Ctx) Trace() []TaskTrace {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]TaskTrace, 0, len(c.tasks))
	for _, t := range c.tasks {
		out = append(out, TaskTrace{
			ID: t.id, Name: t.name, Place: t.place.String(), Worker: t.worker,
			Start: t.started, End: t.ended, Err: t.err,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start.Before(out[j].Start) })
	return out
}

// Overlapped reports whether any two distinct tasks' execution windows
// intersected — evidence of task-level concurrency.
func Overlapped(traces []TaskTrace) bool {
	for i := range traces {
		for j := i + 1; j < len(traces); j++ {
			a, b := traces[i], traces[j]
			if a.Start.IsZero() || b.Start.IsZero() {
				continue
			}
			if a.Start.Before(b.End) && b.Start.Before(a.End) {
				return true
			}
		}
	}
	return false
}

// DOT renders the inferred dependency DAG in Graphviz dot syntax, the same
// visualization CUDASTF offers for debugging task graphs.
func (c *Ctx) DOT() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	var b strings.Builder
	b.WriteString("digraph stf {\n  rankdir=LR;\n")
	for _, t := range c.tasks {
		shape := "box"
		if t.place.String() == "accel" {
			shape = "box3d"
		}
		fmt.Fprintf(&b, "  t%d [label=%q shape=%s];\n", t.id, fmt.Sprintf("%s@%s", t.name, t.place), shape)
	}
	type edge struct{ from, to int }
	edges := make([]edge, 0, len(c.edges))
	for e := range c.edges {
		edges = append(edges, edge{e[0], e[1]})
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].from != edges[j].from {
			return edges[i].from < edges[j].from
		}
		return edges[i].to < edges[j].to
	})
	for _, e := range edges {
		fmt.Fprintf(&b, "  t%d -> t%d;\n", e.from, e.to)
	}
	b.WriteString("}\n")
	return b.String()
}

// CriticalPath returns the longest chain length (in tasks) through the DAG,
// a quick measure of available parallelism: total tasks / critical path.
func (c *Ctx) CriticalPath() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	depth := make(map[int]int, len(c.tasks))
	longest := 0
	// Tasks were appended in submission order, which is a topological
	// order because dependencies always point backwards in program order.
	for _, t := range c.tasks {
		d := 1
		for _, dep := range t.deps {
			if depth[dep.id]+1 > d {
				d = depth[dep.id] + 1
			}
		}
		depth[t.id] = d
		if d > longest {
			longest = d
		}
	}
	return longest
}
