package stf

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"fzmod/internal/device"
)

// Ctx owns a task graph: logical data registration, dependency inference,
// and asynchronous execution. Create with NewCtx, submit tasks, then call
// Finalize exactly once. A Ctx is not reusable after Finalize.
type Ctx struct {
	p *Platform

	mu       sync.Mutex
	nextData int
	nextTask int
	tasks    []*task
	edges    map[[2]int]struct{} // dedup for DOT export

	// maxConc bounds concurrently executing task bodies per place,
	// mirroring a finite stream pool.
	sem map[device.Place]chan struct{}
}

// Platform is the subset of device.Platform the engine needs; using the
// concrete type keeps call sites simple.
type Platform = device.Platform

// NewCtx creates a task-flow context over a platform. maxConcurrent bounds
// in-flight task bodies per place; 16 streams per place by default.
func NewCtx(p *Platform) *Ctx {
	return NewCtxN(p, 16)
}

// NewCtxN creates a context with an explicit per-place concurrency bound.
func NewCtxN(p *Platform, maxConcurrent int) *Ctx {
	if maxConcurrent < 1 {
		maxConcurrent = 1
	}
	return &Ctx{
		p:     p,
		edges: make(map[[2]int]struct{}),
		sem: map[device.Place]chan struct{}{
			device.Host:  make(chan struct{}, maxConcurrent),
			device.Accel: make(chan struct{}, maxConcurrent),
		},
	}
}

// Platform returns the underlying execution platform.
func (c *Ctx) Platform() *Platform { return c.p }

func (c *Ctx) register(m *dataMeta, name string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	m.id = c.nextData
	c.nextData++
	m.name = name
}

// task is one node of the DAG.
type task struct {
	id      int
	name    string
	place   device.Place
	deps    []*task
	access  []taskAccess
	body    func(*TaskInstance) error
	done    chan struct{}
	err     error
	started time.Time
	ended   time.Time
}

type taskAccess struct {
	data DataRef
	mode AccessMode
}

// TaskBuilder accumulates a task declaration; created by Ctx.Task and
// consumed by Do.
type TaskBuilder struct {
	ctx    *Ctx
	name   string
	place  device.Place
	access []taskAccess
}

// Task starts declaring a named task. The default place is Host.
func (c *Ctx) Task(name string) *TaskBuilder {
	return &TaskBuilder{ctx: c, name: name, place: device.Host}
}

// On sets the execution place of the task.
func (b *TaskBuilder) On(place device.Place) *TaskBuilder {
	b.place = place
	return b
}

// Reads declares read access to each datum.
func (b *TaskBuilder) Reads(ds ...DataRef) *TaskBuilder {
	for _, d := range ds {
		b.access = append(b.access, taskAccess{d, Read})
	}
	return b
}

// Writes declares full-overwrite access to each datum.
func (b *TaskBuilder) Writes(ds ...DataRef) *TaskBuilder {
	for _, d := range ds {
		b.access = append(b.access, taskAccess{d, Write})
	}
	return b
}

// ReadsWrites declares read-modify-write access to each datum.
func (b *TaskBuilder) ReadsWrites(ds ...DataRef) *TaskBuilder {
	for _, d := range ds {
		b.access = append(b.access, taskAccess{d, ReadWrite})
	}
	return b
}

// TaskInstance is passed to a task body: it identifies the resolved
// execution place and the declared access set (used by Data.Acc for
// misuse detection), and gives the body a grid-launch helper at its place.
type TaskInstance struct {
	ctx    *Ctx
	name   string
	place  device.Place
	access map[*dataMeta]AccessMode
}

// Place reports where the task is executing.
func (ti *TaskInstance) Place() device.Place { return ti.place }

// Name reports the task's debug name.
func (ti *TaskInstance) Name() string { return ti.name }

// Launch runs a grid kernel over [0, n) at the task's place.
func (ti *TaskInstance) Launch(n int, kernel func(lo, hi int)) {
	ti.ctx.p.LaunchGrid(ti.place, n, kernel)
}

// Do finalizes the declaration and submits the task for asynchronous
// execution. Dependencies are inferred from the access declarations against
// the sequential program order of prior submissions:
//
//   - Read  depends on the datum's last writer (RAW).
//   - Write/ReadWrite depends on the last writer (WAW) and on every reader
//     admitted since (WAR), then becomes the new last writer.
//
// Do returns immediately; the task runs once its dependencies complete.
func (b *TaskBuilder) Do(body func(*TaskInstance) error) {
	c := b.ctx
	t := &task{
		name:   b.name,
		place:  b.place,
		access: b.access,
		body:   body,
		done:   make(chan struct{}),
	}

	c.mu.Lock()
	t.id = c.nextTask
	c.nextTask++
	depSet := make(map[*task]struct{})
	for _, a := range b.access {
		m := a.data.metaRef()
		switch a.mode {
		case Read:
			if m.lastWriter != nil {
				depSet[m.lastWriter] = struct{}{}
			}
			m.readers = append(m.readers, t)
		case Write, ReadWrite:
			if m.lastWriter != nil {
				depSet[m.lastWriter] = struct{}{}
			}
			for _, r := range m.readers {
				if r != t {
					depSet[r] = struct{}{}
				}
			}
			m.lastWriter = t
			m.readers = m.readers[:0]
		}
	}
	delete(depSet, t)
	for d := range depSet {
		t.deps = append(t.deps, d)
		c.edges[[2]int{d.id, t.id}] = struct{}{}
	}
	c.tasks = append(c.tasks, t)
	sem := c.sem[t.place]
	c.mu.Unlock()

	go func() {
		// Wait for dependencies; a failed dependency skips this task.
		var depErr error
		for _, d := range t.deps {
			<-d.done
			if d.err != nil && depErr == nil {
				depErr = fmt.Errorf("%w: %q failed: %v", ErrSkipped, d.name, d.err)
			}
		}
		if depErr != nil {
			t.err = depErr
			close(t.done)
			return
		}

		sem <- struct{}{}
		defer func() { <-sem }()

		// Coherence: materialize every declared datum at the task's place.
		for _, a := range t.access {
			a.data.ensureAt(t.place, a.mode)
		}

		ti := &TaskInstance{
			ctx:    c,
			name:   t.name,
			place:  t.place,
			access: make(map[*dataMeta]AccessMode, len(t.access)),
		}
		for _, a := range t.access {
			ti.access[a.data.metaRef()] = a.mode
		}

		t.started = time.Now()
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.err = fmt.Errorf("stf: task %q panicked: %v", t.name, r)
				}
			}()
			t.err = t.body(ti)
		}()
		t.ended = time.Now()
		close(t.done)
	}()
}

// Finalize waits for every submitted task, writes device-dirty data back to
// the host, and returns the joined errors of all failed tasks (skips are
// folded into their root cause). The Ctx must not be used afterwards.
func (c *Ctx) Finalize() error {
	c.mu.Lock()
	tasks := c.tasks
	c.mu.Unlock()
	var errs []error
	seen := make(map[string]bool)
	for _, t := range tasks {
		<-t.done
		if t.err != nil && !errors.Is(t.err, ErrSkipped) {
			key := t.name + ":" + t.err.Error()
			if !seen[key] {
				seen[key] = true
				errs = append(errs, fmt.Errorf("task %q: %w", t.name, t.err))
			}
		}
	}
	// Flush all data home so Host() observes results.
	flushed := make(map[DataRef]bool)
	for _, t := range tasks {
		for _, a := range t.access {
			if !flushed[a.data] {
				flushed[a.data] = true
				a.data.writeBackLocked()
			}
		}
	}
	return errors.Join(errs...)
}
