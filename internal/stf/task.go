package stf

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"fzmod/internal/device"
)

// Ctx owns a task graph: logical data registration, dependency inference,
// and asynchronous execution. Create with NewCtx, submit tasks, then call
// Finalize exactly once (Barrier may be used to drain mid-build). Release
// returns pooled scratch to the platform pool and retires the worker
// pools once results have been read; a Ctx is not reusable after Finalize
// (Reset is the reuse path and keeps the workers warm).
//
// Execution model: each place owns a bounded work-stealing worker pool. A
// task becomes ready the moment its last dependency completes (dependency
// counting, no waiting goroutines) and is pushed onto the completing
// worker's own deque — the chunk sub-graph stays on the worker whose
// caches (and scratch-pool shard) are warm — while idle workers steal the
// oldest ready task from a sibling, so uneven sub-graphs rebalance. The
// pool width bounds in-flight task bodies per place, the bounded-worker
// discipline a finite ring of CUDA streams imposes.
type Ctx struct {
	p *Platform

	// gctx, when non-nil, bounds the graph's execution (see Bind): the
	// scheduler checks it at every dispatch boundary, so a cancellation or
	// deadline stops declared-but-not-started work instead of orphaning it.
	gctx context.Context

	mu       sync.Mutex
	nextData int
	nextTask int
	tasks    []*task
	edges    map[[2]int]struct{} // dedup for DOT export
	scheds   map[device.Place]*sched
	maxConc  int
	cleanups []func() // pooled-slab returns, run by Release
}

// Platform is the subset of device.Platform the engine needs; using the
// concrete type keeps call sites simple.
type Platform = device.Platform

// NewCtx creates a task-flow context over a platform with the platform's
// worker width as the per-place stream-pool size.
func NewCtx(p *Platform) *Ctx {
	return NewCtxN(p, 0)
}

// NewCtxN creates a context with an explicit per-place worker-pool width
// bounding in-flight task bodies; n <= 0 selects the platform worker width.
func NewCtxN(p *Platform, maxConcurrent int) *Ctx {
	return &Ctx{
		p:       p,
		edges:   make(map[[2]int]struct{}),
		scheds:  make(map[device.Place]*sched),
		maxConc: maxConcurrent,
	}
}

// Platform returns the underlying execution platform.
func (c *Ctx) Platform() *Platform { return c.p }

// Bind attaches a cancellation context to the graph and returns the Ctx
// for chaining. Once gctx is done, every task body not yet started fails
// with the context's error at its dispatch boundary (already-running
// bodies finish normally), dependents skip through the usual ErrSkipped
// chain, and Finalize/Reset drain the whole graph and surface the
// cancellation once — so no goroutine or pooled buffer is orphaned, work
// just stops being done. Bind before submitting tasks; a nil gctx (or not
// calling Bind) leaves the graph unbounded, exactly as context.Background.
func (c *Ctx) Bind(gctx context.Context) *Ctx {
	if gctx != nil && gctx != context.Background() {
		c.gctx = gctx
	}
	return c
}

// Context returns the bound cancellation context (context.Background when
// none was bound) — task bodies pass it to context-aware I/O.
func (c *Ctx) Context() context.Context {
	if c.gctx == nil {
		return context.Background()
	}
	return c.gctx
}

// ctxErr reports the bound context's cancellation error, or nil.
func (c *Ctx) ctxErr() error {
	if c.gctx == nil {
		return nil
	}
	select {
	case <-c.gctx.Done():
		return c.gctx.Err()
	default:
		return nil
	}
}

func (c *Ctx) register(m *dataMeta, name string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	m.id = c.nextData
	c.nextData++
	m.name = name
}

func (c *Ctx) addCleanup(fn func()) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.cleanups = append(c.cleanups, fn)
}

// task is one node of the DAG.
type task struct {
	id     int
	name   string
	place  device.Place
	deps   []*task
	access []taskAccess
	body   func(*TaskInstance) error
	done   chan struct{}
	err    error

	// Scheduler state, guarded by Ctx.mu: the count of incomplete
	// dependencies, the tasks to notify on completion, and whether this
	// task has completed (so late dependents don't register).
	pending    int
	dependents []*task
	completed  bool

	started time.Time
	ended   time.Time
	worker  int // pool slot that executed the task (for the trace)
}

type taskAccess struct {
	data DataRef
	mode AccessMode
}

// TaskBuilder accumulates a task declaration; created by Ctx.Task and
// consumed by Do.
type TaskBuilder struct {
	ctx    *Ctx
	name   string
	place  device.Place
	access []taskAccess
}

// Task starts declaring a named task. The default place is Host.
func (c *Ctx) Task(name string) *TaskBuilder {
	return &TaskBuilder{ctx: c, name: name, place: device.Host}
}

// On sets the execution place of the task.
func (b *TaskBuilder) On(place device.Place) *TaskBuilder {
	b.place = place
	return b
}

// Reads declares read access to each datum.
func (b *TaskBuilder) Reads(ds ...DataRef) *TaskBuilder {
	for _, d := range ds {
		b.access = append(b.access, taskAccess{d, Read})
	}
	return b
}

// Writes declares full-overwrite access to each datum.
func (b *TaskBuilder) Writes(ds ...DataRef) *TaskBuilder {
	for _, d := range ds {
		b.access = append(b.access, taskAccess{d, Write})
	}
	return b
}

// ReadsWrites declares read-modify-write access to each datum.
func (b *TaskBuilder) ReadsWrites(ds ...DataRef) *TaskBuilder {
	for _, d := range ds {
		b.access = append(b.access, taskAccess{d, ReadWrite})
	}
	return b
}

// TaskInstance is passed to a task body: it identifies the resolved
// execution place and the declared access set (used by Data.Acc for
// misuse detection), and gives the body a grid-launch helper at its place
// plus the executing worker's private scratch-pool shard.
type TaskInstance struct {
	ctx    *Ctx
	name   string
	place  device.Place
	access map[*dataMeta]AccessMode
	shard  *device.PoolShard
}

// Place reports where the task is executing.
func (ti *TaskInstance) Place() device.Place { return ti.place }

// Name reports the task's debug name.
func (ti *TaskInstance) Name() string { return ti.name }

// Launch runs a grid kernel over [0, n) at the task's place.
func (ti *TaskInstance) Launch(n int, kernel func(lo, hi int)) {
	ti.ctx.p.LaunchGrid(ti.place, n, kernel)
}

// Shard returns the executing worker's private scratch-pool shard: slab
// checkouts through it skip the shared pool when the worker has a cached
// slab of the right class. The shard must not escape the task body.
func (ti *TaskInstance) Shard() *device.PoolShard { return ti.shard }

// Do finalizes the declaration and submits the task for asynchronous
// execution. Dependencies are inferred from the access declarations against
// the sequential program order of prior submissions:
//
//   - Read  depends on the datum's last writer (RAW).
//   - Write/ReadWrite depends on the last writer (WAW) and on every reader
//     admitted since (WAR), then becomes the new last writer.
//
// Do returns immediately; the task is dispatched onto one of its place's
// streams once every dependency has completed.
func (b *TaskBuilder) Do(body func(*TaskInstance) error) {
	c := b.ctx
	t := &task{
		name:   b.name,
		place:  b.place,
		access: b.access,
		body:   body,
		done:   make(chan struct{}),
	}

	c.mu.Lock()
	t.id = c.nextTask
	c.nextTask++
	depSet := make(map[*task]struct{})
	for _, a := range b.access {
		m := a.data.metaRef()
		switch a.mode {
		case Read:
			if m.lastWriter != nil {
				depSet[m.lastWriter] = struct{}{}
			}
			m.readers = append(m.readers, t)
		case Write, ReadWrite:
			if m.lastWriter != nil {
				depSet[m.lastWriter] = struct{}{}
			}
			for _, r := range m.readers {
				if r != t {
					depSet[r] = struct{}{}
				}
			}
			m.lastWriter = t
			m.readers = m.readers[:0]
		}
	}
	delete(depSet, t)
	for d := range depSet {
		t.deps = append(t.deps, d)
		c.edges[[2]int{d.id, t.id}] = struct{}{}
		if !d.completed {
			t.pending++
			d.dependents = append(d.dependents, t)
		}
	}
	c.tasks = append(c.tasks, t)
	ready := t.pending == 0
	c.mu.Unlock()

	if ready {
		c.dispatch(t, nil)
	}
}

// dispatch hands a ready task to its place's worker pool; from is the
// worker that made it ready (nil for declaration-time submissions), so
// same-pool completions keep the sub-graph on the warm worker.
func (c *Ctx) dispatch(t *task, from *schedWorker) {
	c.schedFor(t.place).submit(t, from)
}

// schedFor returns the worker pool of a place, spawning it on first use
// with the context's concurrency bound (or the platform worker width).
func (c *Ctx) schedFor(place device.Place) *sched {
	c.mu.Lock()
	s := c.scheds[place]
	if s == nil {
		n := c.maxConc
		if n <= 0 {
			n = c.p.Workers(place)
		}
		s = newSched(c, n)
		c.scheds[place] = s
	}
	c.mu.Unlock()
	return s
}

// runOn executes a dispatched task body on a pool worker and notifies
// dependents. All dependencies are complete when it is called.
func (c *Ctx) runOn(t *task, w *schedWorker) {
	var depErr error
	for _, d := range t.deps {
		if d.err != nil {
			depErr = fmt.Errorf("%w: %q failed: %v", ErrSkipped, d.name, d.err)
			break
		}
	}
	if depErr != nil {
		t.err = depErr
	} else if gerr := c.ctxErr(); gerr != nil {
		// Dispatch boundary of the bound context: the body never starts.
		// The message carries no task name so Finalize folds the fate of
		// every not-yet-started task into one reported cancellation.
		t.err = fmt.Errorf("stf: graph canceled: %w", gerr)
	} else {
		// Coherence: materialize every declared datum at the task's place.
		for _, a := range t.access {
			a.data.ensureAt(t.place, a.mode)
		}
		ti := &TaskInstance{
			ctx:    c,
			name:   t.name,
			place:  t.place,
			access: make(map[*dataMeta]AccessMode, len(t.access)),
			shard:  w.shard,
		}
		for _, a := range t.access {
			ti.access[a.data.metaRef()] = a.mode
		}
		t.started = time.Now()
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.err = fmt.Errorf("stf: task %q panicked: %v", t.name, r)
				}
			}()
			t.err = t.body(ti)
		}()
		t.ended = time.Now()
	}

	c.mu.Lock()
	t.completed = true
	t.worker = w.id
	var ready []*task
	for _, dep := range t.dependents {
		dep.pending--
		if dep.pending == 0 {
			ready = append(ready, dep)
		}
	}
	t.dependents = nil
	c.mu.Unlock()
	close(t.done)
	for _, r := range ready {
		c.dispatch(r, w)
	}
}

// Barrier blocks until every task submitted so far has completed, the STF
// equivalent of a stream synchronize. Unlike Finalize it performs no
// write-back and the context remains usable, so graph construction can
// consume intermediate results (e.g. a decoded container that determines
// the shape of downstream tasks).
func (c *Ctx) Barrier() {
	c.mu.Lock()
	tasks := append([]*task(nil), c.tasks...)
	c.mu.Unlock()
	for _, t := range tasks {
		<-t.done
	}
}

// Finalize waits for every submitted task, writes device-dirty data back to
// the host, and returns the joined errors of all failed tasks (skips are
// folded into their root cause). The Ctx must not be used afterwards except
// to read results and call Release.
func (c *Ctx) Finalize() error {
	c.mu.Lock()
	tasks := c.tasks
	c.mu.Unlock()
	var errs []error
	seen := make(map[string]bool)
	for _, t := range tasks {
		<-t.done
		if t.err != nil && !errors.Is(t.err, ErrSkipped) {
			key := t.name + ":" + t.err.Error()
			wrapped := fmt.Errorf("task %q: %w", t.name, t.err)
			if errors.Is(t.err, context.Canceled) || errors.Is(t.err, context.DeadlineExceeded) {
				// A canceled graph fails every unstarted task identically;
				// report the cancellation once, unattributed.
				key = t.err.Error()
				wrapped = t.err
			}
			if !seen[key] {
				seen[key] = true
				errs = append(errs, wrapped)
			}
		}
	}
	// Flush all data home so Host() observes results.
	flushed := make(map[DataRef]bool)
	for _, t := range tasks {
		for _, a := range t.access {
			if !flushed[a.data] {
				flushed[a.data] = true
				a.data.writeBackLocked()
			}
		}
	}
	return errors.Join(errs...)
}

// Reset drains the graph like Finalize, returns pooled scratch like
// Release, and then clears the task and data registry so the context can
// be reused for the next batch of a windowed pipeline: the per-place
// worker pools stay warm across batches, which is what lets a streaming
// compressor run thousands of window-sized graphs over one context.
// Logical data created before Reset must not be used afterwards (register
// fresh Data for the next batch); results must be copied out first.
// Returns the joined errors of the drained batch, exactly as Finalize
// reports them.
func (c *Ctx) Reset() error {
	err := c.Finalize()
	c.releaseData()
	c.mu.Lock()
	c.tasks = nil
	c.edges = make(map[[2]int]struct{})
	c.nextTask = 0
	c.nextData = 0
	c.mu.Unlock()
	return err
}

// releaseData returns every pooled scratch slab and device-side copy owned
// by the context to the platform's buffer pool.
func (c *Ctx) releaseData() {
	c.mu.Lock()
	fns := c.cleanups
	c.cleanups = nil
	c.mu.Unlock()
	for _, fn := range fns {
		fn()
	}
}

// Release returns every pooled scratch slab and device-side copy owned by
// the context to the platform's buffer pool and retires the worker pools
// (their shard caches drain back to the shared pool). Call after Finalize
// or Reset, once all results have been copied out or Detach-ed; data
// accessors must not be used and no further tasks may be submitted
// afterwards. Release is idempotent.
func (c *Ctx) Release() {
	c.releaseData()
	c.mu.Lock()
	scheds := c.scheds
	c.scheds = make(map[device.Place]*sched)
	c.mu.Unlock()
	for _, s := range scheds {
		s.close()
	}
}
