package stf

import (
	"sync"

	"fzmod/internal/device"
)

// This file is the engine's scheduler: one work-stealing worker pool per
// execution place. Each worker owns a bounded deque of ready tasks and a
// private scratch-pool shard; tasks made ready by a completion are pushed
// onto the completing worker's own deque (the chunk sub-graph keeps
// executing on the worker whose caches are warm), idle workers first drain
// the shared inject queue and then steal the oldest task from a sibling,
// so chunk sub-graphs with uneven stage costs redistribute instead of
// convoying behind the slowest worker. The pool width is the per-place
// in-flight bound the bounded stream pools used to impose.

// workerQueueCap bounds each worker's deque; overflow spills to the
// shared inject queue, keeping the rings allocation-free in steady state.
const workerQueueCap = 64

// sched is the worker pool of one place.
type sched struct {
	c  *Ctx
	ws []*schedWorker

	mu      sync.Mutex
	cond    *sync.Cond
	inject  []*task // shared overflow/entry queue, FIFO via injHead
	injHead int
	parked  int
	closed  bool
	exited  sync.WaitGroup
}

// schedWorker is one worker goroutine's state. The deque is guarded by its
// own mutex (the critical sections are a few pointer moves); padding keeps
// neighbouring workers' hot state off one cache line.
type schedWorker struct {
	id    int
	s     *sched
	shard *device.PoolShard

	mu sync.Mutex
	dq []*task // owner pushes/pops the tail; thieves pop the head
	_  [64]byte
}

// newSched spawns n workers executing tasks of the context at one place.
func newSched(c *Ctx, n int) *sched {
	if n < 1 {
		n = 1
	}
	s := &sched{c: c}
	s.cond = sync.NewCond(&s.mu)
	bp := c.p.ScratchPool()
	s.ws = make([]*schedWorker, n)
	for i := range s.ws {
		s.ws[i] = &schedWorker{id: i, s: s, shard: bp.NewShard(), dq: make([]*task, 0, workerQueueCap)}
	}
	s.exited.Add(n)
	for _, w := range s.ws {
		go w.loop()
	}
	return s
}

// submit hands a ready task to the pool. When the submitter is one of this
// pool's workers the task lands on its own deque (bounded; overflow goes
// to the inject queue); external submissions (graph declaration, workers
// of another place) go through the inject queue.
func (s *sched) submit(t *task, from *schedWorker) {
	if from != nil && from.s == s && from.tryPush(t) {
		s.wake()
		return
	}
	s.mu.Lock()
	s.inject = append(s.inject, t)
	if s.parked > 0 {
		s.cond.Signal()
	}
	s.mu.Unlock()
}

// wake signals one parked worker, if any. Callers must not hold any worker
// deque lock (lock order is sched.mu before worker.mu).
func (s *sched) wake() {
	s.mu.Lock()
	if s.parked > 0 {
		s.cond.Signal()
	}
	s.mu.Unlock()
}

// tryPush appends to the owner's deque unless it is full.
func (w *schedWorker) tryPush(t *task) bool {
	w.mu.Lock()
	if len(w.dq) >= workerQueueCap {
		w.mu.Unlock()
		return false
	}
	w.dq = append(w.dq, t)
	w.mu.Unlock()
	return true
}

// popTail removes the owner's most recently pushed task (LIFO: the tail is
// the task whose inputs the owner just produced).
func (w *schedWorker) popTail() *task {
	w.mu.Lock()
	n := len(w.dq)
	if n == 0 {
		w.mu.Unlock()
		return nil
	}
	t := w.dq[n-1]
	w.dq[n-1] = nil
	w.dq = w.dq[:n-1]
	w.mu.Unlock()
	return t
}

// stealHead removes a victim's oldest task (FIFO end: the task that has
// waited longest, typically the root of an untouched sub-graph).
func (w *schedWorker) stealHead() *task {
	w.mu.Lock()
	if len(w.dq) == 0 {
		w.mu.Unlock()
		return nil
	}
	t := w.dq[0]
	copy(w.dq, w.dq[1:])
	w.dq[len(w.dq)-1] = nil
	w.dq = w.dq[:len(w.dq)-1]
	w.mu.Unlock()
	return t
}

// popInjectLocked takes the oldest injected task; requires s.mu.
func (s *sched) popInjectLocked() *task {
	if s.injHead >= len(s.inject) {
		return nil
	}
	t := s.inject[s.injHead]
	s.inject[s.injHead] = nil
	s.injHead++
	if s.injHead == len(s.inject) {
		s.inject = s.inject[:0]
		s.injHead = 0
	}
	return t
}

// acquire blocks until work is available for w or the pool closes (nil).
// The scan runs under s.mu: a submitter that pushed before the scan is
// seen by it, and one that pushes after acquires s.mu once the worker is
// parked and signals it — no lost wakeups.
func (s *sched) acquire(w *schedWorker) *task {
	s.mu.Lock()
	for {
		if t := s.popInjectLocked(); t != nil {
			s.mu.Unlock()
			return t
		}
		for i := 1; i < len(s.ws); i++ {
			victim := s.ws[(w.id+i)%len(s.ws)]
			if t := victim.stealHead(); t != nil {
				s.mu.Unlock()
				return t
			}
		}
		if s.closed {
			s.mu.Unlock()
			return nil
		}
		s.parked++
		s.cond.Wait()
		s.parked--
	}
}

// loop is the worker body: drain own deque, then the shared queues, then
// park. On exit the worker's pool shard drains back to the shared pool.
func (w *schedWorker) loop() {
	defer func() {
		w.shard.Drain()
		w.s.exited.Done()
	}()
	for {
		t := w.popTail()
		if t == nil {
			t = w.s.acquire(w)
			if t == nil {
				return
			}
		}
		w.s.c.runOn(t, w)
	}
}

// close wakes every worker and waits for them to exit (draining their
// shards), so pool accounting is settled when it returns. All submitted
// tasks must have completed (Finalize/Reset) before closing.
func (s *sched) close() {
	s.mu.Lock()
	s.closed = true
	s.cond.Broadcast()
	s.mu.Unlock()
	s.exited.Wait()
}
